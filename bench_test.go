package repro

// The benchmark harness: one benchmark per paper table and figure (the
// cost of regenerating that artifact from an analyzed corpus), the
// end-to-end stages (generate -> filter -> analyze), and the ablations
// called out in DESIGN.md §5.
//
// Run everything with:
//
//	go test -bench=. -benchmem

import (
	"encoding/csv"
	"strings"
	"sync"
	"testing"
	"time"

	"syriafilter/internal/bittorrent"
	"syriafilter/internal/core"
	"syriafilter/internal/geoip"
	"syriafilter/internal/logfmt"
	"syriafilter/internal/pipeline"
	"syriafilter/internal/proxysim"
	"syriafilter/internal/stats"
	"syriafilter/internal/strmatch"
	"syriafilter/internal/synth"
)

const benchCorpusSize = 200_000

type benchFixture struct {
	gen      *synth.Generator
	analyzer *core.Analyzer
	records  []logfmt.Record
}

var (
	benchOnce sync.Once
	benchFix  *benchFixture
)

func fixture(b *testing.B) *benchFixture {
	b.Helper()
	benchOnce.Do(func() {
		gen, err := synth.New(synth.Config{Seed: 99, TotalRequests: benchCorpusSize})
		if err != nil {
			panic(err)
		}
		cluster := proxysim.NewCluster(proxysim.Config{
			Seed: 99, Engine: gen.Engine(), Consensus: gen.Consensus(),
		})
		an := core.NewAnalyzer(core.Options{
			Categories: gen.CategoryDB(),
			Consensus:  gen.Consensus(),
			TitleDB:    bittorrent.NewTitleDB(),
		})
		var recs []logfmt.Record
		var rec logfmt.Record
		for {
			req, ok := gen.Next()
			if !ok {
				break
			}
			cluster.Process(&req, &rec)
			an.Observe(&rec)
			recs = append(recs, rec)
		}
		benchFix = &benchFixture{gen: gen, analyzer: an, records: recs}
	})
	return benchFix
}

func aug(day, hour int) int64 {
	return time.Date(2011, 8, day, hour, 0, 0, 0, time.UTC).Unix()
}

// --- End-to-end stages ---

func BenchmarkGenerateAndFilter(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		gen, err := synth.New(synth.Config{Seed: uint64(i + 1), TotalRequests: 50_000})
		if err != nil {
			b.Fatal(err)
		}
		cluster := proxysim.NewCluster(proxysim.Config{
			Seed: uint64(i + 1), Engine: gen.Engine(), Consensus: gen.Consensus(),
		})
		var rec logfmt.Record
		n := 0
		for {
			req, ok := gen.Next()
			if !ok {
				break
			}
			cluster.Process(&req, &rec)
			n++
		}
		b.SetBytes(int64(n))
	}
}

func BenchmarkAnalyzerObserve(b *testing.B) {
	f := fixture(b)
	an := core.NewAnalyzer(core.Options{
		Categories: f.gen.CategoryDB(),
		Consensus:  f.gen.Consensus(),
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		an.Observe(&f.records[i%len(f.records)])
	}
}

// --- Tables ---

func BenchmarkTable1Datasets(b *testing.B) {
	f := fixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := f.analyzer.Table1(); len(got) != 4 {
			b.Fatal("bad table 1")
		}
	}
}

func BenchmarkTable3Traffic(b *testing.B) {
	f := fixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t3 := f.analyzer.Table3()
		if t3[core.DFull].Total == 0 {
			b.Fatal("empty")
		}
	}
}

func BenchmarkTable4TopDomains(b *testing.B) {
	f := fixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a, c := f.analyzer.TopDomains(10)
		if len(a) == 0 || len(c) == 0 {
			b.Fatal("empty")
		}
	}
}

func BenchmarkTable5PeakDomains(b *testing.B) {
	f := fixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := f.analyzer.Table5(aug(3, 6), aug(3, 12), 2*3600, 10); len(got) != 3 {
			b.Fatal("bad windows")
		}
	}
}

func BenchmarkTable6Similarity(b *testing.B) {
	f := fixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if m := f.analyzer.ProxySimilarity(); len(m) != 7 {
			b.Fatal("bad matrix")
		}
	}
}

func BenchmarkTable7Redirects(b *testing.B) {
	f := fixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.analyzer.RedirectHosts(5)
	}
}

func BenchmarkTable8DomainDiscovery(b *testing.B) {
	f := fixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := f.analyzer.DiscoverFilters(0)
		if len(d.Domains) == 0 {
			b.Fatal("no domains")
		}
	}
}

func BenchmarkTable9Categories(b *testing.B) {
	f := fixture(b)
	d := f.analyzer.DiscoverFilters(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rows := f.analyzer.Table9(d); len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

func BenchmarkTable10Keywords(b *testing.B) {
	f := fixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := f.analyzer.DiscoverFilters(0)
		if len(d.Keywords) == 0 {
			b.Fatal("no keywords")
		}
	}
}

func BenchmarkTable11Countries(b *testing.B) {
	f := fixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rows := f.analyzer.CountryRatios(); len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

func BenchmarkTable12Subnets(b *testing.B) {
	f := fixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.analyzer.IsraeliSubnets()
	}
}

func BenchmarkTable13OSN(b *testing.B) {
	f := fixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rows := f.analyzer.SocialNetworks(); len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

func BenchmarkTable14FBPages(b *testing.B) {
	f := fixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.analyzer.FacebookPages()
	}
}

func BenchmarkTable15Plugins(b *testing.B) {
	f := fixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.analyzer.SocialPlugins(10)
	}
}

// --- Figures ---

func BenchmarkFig1Ports(b *testing.B) {
	f := fixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a, c := f.analyzer.PortDistribution()
		if len(a) == 0 || len(c) == 0 {
			b.Fatal("empty")
		}
	}
}

func BenchmarkFig2PowerLaw(b *testing.B) {
	f := fixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s := f.analyzer.DomainFreqDistribution(); len(s) != 3 {
			b.Fatal("bad series")
		}
	}
}

func BenchmarkFig3Categories(b *testing.B) {
	f := fixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rows := f.analyzer.CensoredCategories(false); len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

func BenchmarkFig4Users(b *testing.B) {
	f := fixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rep := f.analyzer.UserAnalysis(); rep.TotalUsers == 0 {
			b.Fatal("no users")
		}
	}
}

func BenchmarkFig5TimeSeries(b *testing.B) {
	f := fixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s := f.analyzer.TimeSeries(aug(1, 0), aug(7, 0)); len(s) == 0 {
			b.Fatal("empty")
		}
	}
}

func BenchmarkFig6RCV(b *testing.B) {
	f := fixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if pts := f.analyzer.RCV(aug(3, 0), aug(4, 0)); len(pts) != 288 {
			b.Fatal("bad points")
		}
	}
}

func BenchmarkFig7ProxyLoad(b *testing.B) {
	f := fixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.analyzer.ProxyLoads()
		f.analyzer.ProxyShareSeries(aug(3, 0), aug(5, 0), true)
	}
}

func BenchmarkFig8Tor(b *testing.B) {
	f := fixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.analyzer.TorAnalysis()
		f.analyzer.TorHourly(aug(1, 0), aug(7, 0))
	}
}

func BenchmarkFig9RFilter(b *testing.B) {
	f := fixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.analyzer.RFilter(aug(1, 0), aug(7, 0))
	}
}

func BenchmarkFig10Anonymizers(b *testing.B) {
	f := fixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rep := f.analyzer.Anonymizers(); rep.Hosts == 0 {
			b.Fatal("no hosts")
		}
	}
}

func BenchmarkHTTPS(b *testing.B) {
	f := fixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rep := f.analyzer.HTTPSAnalysis(); rep.Total == 0 {
			b.Fatal("no https")
		}
	}
}

func BenchmarkBitTorrent(b *testing.B) {
	f := fixture(b)
	kws := []string{"proxy", "hotspotshield", "ultrareach", "israel", "ultrasurf"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rep := f.analyzer.BitTorrent(kws); rep.Announces == 0 {
			b.Fatal("no announces")
		}
	}
}

func BenchmarkGoogleCache(b *testing.B) {
	f := fixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.analyzer.GoogleCache()
	}
}

// --- Ablations (DESIGN.md §5) ---

var ablationText = "www.facebook.com/plugins/like.php?href=http%3A%2F%2Fsite-042.example.com&layout=standard&app_id=123456"

func BenchmarkAblationKeywordMatchAhoCorasick(b *testing.B) {
	ac := strmatch.NewAhoCorasick([]string{"proxy", "hotspotshield", "ultrareach", "israel", "ultrasurf"})
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ac.Contains(ablationText)
	}
}

func BenchmarkAblationKeywordMatchNaive(b *testing.B) {
	pats := []string{"proxy", "hotspotshield", "ultrareach", "israel", "ultrasurf"}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		strmatch.ContainsNaive(pats, ablationText)
	}
}

func BenchmarkAblationTopKSketch(b *testing.B) {
	f := fixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tk := stats.NewTopK(256)
		for j := range f.records {
			tk.Add(f.records[j].Host)
		}
		if len(tk.Top(10)) == 0 {
			b.Fatal("empty")
		}
	}
}

func BenchmarkAblationTopKExact(b *testing.B) {
	f := fixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := stats.NewCounter()
		for j := range f.records {
			c.Add(f.records[j].Host)
		}
		if len(c.Top(10)) == 0 {
			b.Fatal("empty")
		}
	}
}

func benchPipeline(b *testing.B, workers int) {
	f := fixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		acc, err := pipeline.Run(pipeline.NewSliceScanner(f.records), workers,
			func() *core.Analyzer {
				return core.NewAnalyzer(core.Options{
					Categories: f.gen.CategoryDB(),
					Consensus:  f.gen.Consensus(),
				})
			},
			func(a *core.Analyzer, r *logfmt.Record) { a.Observe(r) },
			func(dst, src *core.Analyzer) { dst.Merge(src) },
		)
		if err != nil {
			b.Fatal(err)
		}
		if acc.Dataset(core.DFull).Total == 0 {
			b.Fatal("empty")
		}
	}
	b.SetBytes(int64(len(f.records)))
}

func BenchmarkAblationPipelineSerial(b *testing.B)   { benchPipeline(b, 1) }
func BenchmarkAblationPipelineParallel(b *testing.B) { benchPipeline(b, 0) }

func BenchmarkAblationGeoIPBinary(b *testing.B) {
	db := geoip.SyriaEra()
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		db.Lookup(0xd4960701) // 212.150.7.1
	}
}

func BenchmarkAblationGeoIPLinear(b *testing.B) {
	db := geoip.SyriaEra()
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		db.LookupLinear(0xd4960701)
	}
}

func BenchmarkAblationParseFast(b *testing.B) {
	f := fixture(b)
	var sb strings.Builder
	w := logfmt.NewWriter(&sb)
	for i := 0; i < 1000; i++ {
		_ = w.Write(&f.records[i])
	}
	_ = w.Flush()
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	var rec logfmt.Record
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := logfmt.ParseLine(lines[i%len(lines)], &rec); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationParseEncodingCSV(b *testing.B) {
	f := fixture(b)
	var sb strings.Builder
	w := logfmt.NewWriter(&sb)
	for i := 0; i < 1000; i++ {
		_ = w.Write(&f.records[i])
	}
	_ = w.Flush()
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := csv.NewReader(strings.NewReader(lines[i%len(lines)]))
		if _, err := r.Read(); err != nil {
			b.Fatal(err)
		}
	}
}
