package repro

// The benchmark harness: one benchmark per paper table and figure (the
// cost of regenerating that artifact from an analyzed corpus), the
// end-to-end stages (generate -> filter -> analyze), and the ablations
// called out in DESIGN.md §10.
//
// Run everything with:
//
//	go test -bench=. -benchmem

import (
	"bytes"
	"context"
	"encoding/csv"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"syriafilter/internal/bittorrent"
	"syriafilter/internal/core"
	"syriafilter/internal/geoip"
	"syriafilter/internal/logfmt"
	"syriafilter/internal/obs/trace"
	"syriafilter/internal/pipeline"
	"syriafilter/internal/proxysim"
	"syriafilter/internal/serve"
	"syriafilter/internal/stats"
	"syriafilter/internal/strmatch"
	"syriafilter/internal/synth"
	"syriafilter/internal/timewin"
)

const benchCorpusSize = 200_000

type benchFixture struct {
	gen      *synth.Generator
	analyzer *core.Analyzer
	records  []logfmt.Record
}

var (
	benchOnce sync.Once
	benchFix  *benchFixture
)

func fixture(b *testing.B) *benchFixture {
	b.Helper()
	benchOnce.Do(func() {
		gen, err := synth.New(synth.Config{Seed: 99, TotalRequests: benchCorpusSize})
		if err != nil {
			panic(err)
		}
		cluster := proxysim.NewCluster(proxysim.Config{
			Seed: 99, Engine: gen.Engine(), Consensus: gen.Consensus(),
		})
		an := core.NewAnalyzer(core.Options{
			Categories: gen.CategoryDB(),
			Consensus:  gen.Consensus(),
			TitleDB:    bittorrent.NewTitleDB(),
		})
		var recs []logfmt.Record
		var rec logfmt.Record
		for {
			req, ok := gen.Next()
			if !ok {
				break
			}
			cluster.Process(&req, &rec)
			an.Observe(&rec)
			recs = append(recs, rec)
		}
		benchFix = &benchFixture{gen: gen, analyzer: an, records: recs}
	})
	return benchFix
}

func aug(day, hour int) int64 {
	return time.Date(2011, 8, day, hour, 0, 0, 0, time.UTC).Unix()
}

// --- End-to-end stages ---

func BenchmarkGenerateAndFilter(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		gen, err := synth.New(synth.Config{Seed: uint64(i + 1), TotalRequests: 50_000})
		if err != nil {
			b.Fatal(err)
		}
		cluster := proxysim.NewCluster(proxysim.Config{
			Seed: uint64(i + 1), Engine: gen.Engine(), Consensus: gen.Consensus(),
		})
		var rec logfmt.Record
		n := 0
		for {
			req, ok := gen.Next()
			if !ok {
				break
			}
			cluster.Process(&req, &rec)
			n++
		}
		b.SetBytes(int64(n))
	}
}

func BenchmarkAnalyzerObserve(b *testing.B) {
	f := fixture(b)
	an := core.NewAnalyzer(core.Options{
		Categories: f.gen.CategoryDB(),
		Consensus:  f.gen.Consensus(),
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		an.Observe(&f.records[i%len(f.records)])
	}
}

// --- End-to-end file ingestion: scanner layer vs block layer ---

var (
	ingestFileOnce sync.Once
	ingestFileDir  string
	ingestFilePath string
	ingestFileSize int64
)

// TestMain cleans up the benchmark corpus file, which outlives any one
// (sub-)benchmark and therefore cannot live in a b.TempDir.
func TestMain(m *testing.M) {
	code := m.Run()
	if ingestFileDir != "" {
		os.RemoveAll(ingestFileDir)
	}
	os.Exit(code)
}

// ingestBenchFile serializes the whole benchmark corpus into ONE large
// log file — the worst case for the scanner layer, whose parsing runs on
// a single goroutine per file.
func ingestBenchFile(b *testing.B) (string, int64) {
	f := fixture(b)
	ingestFileOnce.Do(func() {
		dir, err := os.MkdirTemp("", "ingestbench")
		if err != nil {
			panic(err)
		}
		ingestFileDir = dir
		path := filepath.Join(dir, "corpus.csv")
		fh, err := os.Create(path)
		if err != nil {
			panic(err)
		}
		w := logfmt.NewWriter(fh)
		if err := w.WriteHeader(); err != nil {
			panic(err)
		}
		for i := range f.records {
			if err := w.Write(&f.records[i]); err != nil {
				panic(err)
			}
		}
		if err := w.Flush(); err != nil {
			panic(err)
		}
		if err := fh.Close(); err != nil {
			panic(err)
		}
		st, err := os.Stat(path)
		if err != nil {
			panic(err)
		}
		ingestFilePath, ingestFileSize = path, st.Size()
	})
	return ingestFilePath, ingestFileSize
}

// BenchmarkIngestEndToEnd measures the whole file -> full-engine path
// (read, split, parse, observe, merge) on a single large input file, in
// MB/s of file bytes. The scanner sub-benchmark decodes on one goroutine
// feeding the worker pool; the blocks sub-benchmark ships raw
// line-aligned blocks to the pool so the parse itself parallelizes —
// the speedup scales with GOMAXPROCS.
func BenchmarkIngestEndToEnd(b *testing.B) {
	f := fixture(b)
	path, size := ingestBenchFile(b)
	opts := benchOpts(f)
	newAcc := func() *core.Analyzer { return core.NewAnalyzer(opts) }
	observe := func(a *core.Analyzer, r *logfmt.Record) { a.Observe(r) }
	merge := func(dst, src *core.Analyzer) { dst.Merge(src) }

	b.Run("scanner", func(b *testing.B) {
		b.SetBytes(size)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			an, err := pipeline.RunFiles([]string{path}, 0, newAcc, observe, merge)
			if err != nil {
				b.Fatal(err)
			}
			if an.Dataset(core.DFull).Total == 0 {
				b.Fatal("empty")
			}
		}
	})
	b.Run("blocks", func(b *testing.B) {
		b.SetBytes(size)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			an, stats, err := pipeline.RunFilesBlocks([]string{path}, 0, newAcc, observe, merge)
			if err != nil {
				b.Fatal(err)
			}
			if stats.Records == 0 || an.Dataset(core.DFull).Total == 0 {
				b.Fatal("empty")
			}
		}
	})
	b.Run("blocks-sketch", func(b *testing.B) {
		sketchOpts := opts.WithSketches(0, 0)
		newSketch := func() *core.Analyzer { return core.NewAnalyzer(sketchOpts) }
		b.SetBytes(size)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			an, stats, err := pipeline.RunFilesBlocks([]string{path}, 0, newSketch, observe, merge)
			if err != nil {
				b.Fatal(err)
			}
			if stats.Records == 0 || an.Dataset(core.DFull).Total == 0 {
				b.Fatal("empty")
			}
		}
	})
}

// --- Tables and figures: subset-engine benchmarks ---
//
// Each benchmark measures producing one paper artifact end to end on a
// subset engine: ingest the 200k-record corpus into exactly the metric
// modules that experiment reads, then compute its results. The
// *FullEngine variants ingest into all modules, quantifying what the
// subset selection saves.

func benchOpts(f *benchFixture) core.Options {
	return core.Options{
		Categories: f.gen.CategoryDB(),
		Consensus:  f.gen.Consensus(),
		TitleDB:    bittorrent.NewTitleDB(),
	}
}

func benchExperiment(b *testing.B, ids []string, full bool, result func(*core.Analyzer)) {
	f := fixture(b)
	var mods []string
	if !full {
		var err error
		mods, err = core.ModulesFor(ids...)
		if err != nil {
			b.Fatal(err)
		}
	}
	opts := benchOpts(f)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		an, err := core.NewAnalyzerFor(opts, mods...)
		if err != nil {
			b.Fatal(err)
		}
		for j := range f.records {
			an.Observe(&f.records[j])
		}
		result(an)
	}
	b.SetBytes(int64(len(f.records)))
}

func BenchmarkTable1Datasets(b *testing.B) {
	benchExperiment(b, []string{"table1"}, false, func(a *core.Analyzer) {
		if got := a.Table1(); len(got) != 4 {
			b.Fatal("bad table 1")
		}
	})
}

func BenchmarkTable3Traffic(b *testing.B) {
	benchExperiment(b, []string{"table3"}, false, func(a *core.Analyzer) {
		t3 := a.Table3()
		if t3[core.DFull].Total == 0 {
			b.Fatal("empty")
		}
	})
}

func BenchmarkTable4TopDomains(b *testing.B) {
	benchExperiment(b, []string{"table4"}, false, func(a *core.Analyzer) {
		al, ce := a.TopDomains(10)
		if len(al) == 0 || len(ce) == 0 {
			b.Fatal("empty")
		}
	})
}

func BenchmarkTable5PeakDomains(b *testing.B) {
	benchExperiment(b, []string{"table5"}, false, func(a *core.Analyzer) {
		if got := a.Table5(aug(3, 6), aug(3, 12), 2*3600, 10); len(got) != 3 {
			b.Fatal("bad windows")
		}
	})
}

func BenchmarkTable6Similarity(b *testing.B) {
	benchExperiment(b, []string{"table6"}, false, func(a *core.Analyzer) {
		if m := a.ProxySimilarity(); len(m) != 7 {
			b.Fatal("bad matrix")
		}
	})
}

func BenchmarkTable7Redirects(b *testing.B) {
	benchExperiment(b, []string{"table7"}, false, func(a *core.Analyzer) {
		a.RedirectHosts(5)
	})
}

func BenchmarkTable8DomainDiscovery(b *testing.B) {
	benchExperiment(b, []string{"table8"}, false, func(a *core.Analyzer) {
		if d := a.DiscoverFilters(0); len(d.Domains) == 0 {
			b.Fatal("no domains")
		}
	})
}

func BenchmarkTable9Categories(b *testing.B) {
	benchExperiment(b, []string{"table9"}, false, func(a *core.Analyzer) {
		if rows := a.Table9(a.DiscoverFilters(0)); len(rows) == 0 {
			b.Fatal("no rows")
		}
	})
}

func BenchmarkTable10Keywords(b *testing.B) {
	benchExperiment(b, []string{"table10"}, false, func(a *core.Analyzer) {
		if d := a.DiscoverFilters(0); len(d.Keywords) == 0 {
			b.Fatal("no keywords")
		}
	})
}

func BenchmarkTable11Countries(b *testing.B) {
	benchExperiment(b, []string{"table11"}, false, func(a *core.Analyzer) {
		if rows := a.CountryRatios(); len(rows) == 0 {
			b.Fatal("no rows")
		}
	})
}

func BenchmarkTable12Subnets(b *testing.B) {
	benchExperiment(b, []string{"table12"}, false, func(a *core.Analyzer) {
		a.IsraeliSubnets()
	})
}

// BenchmarkTable12SubnetsFullEngine is the acceptance baseline: the same
// artifact computed on a full engine. The subset variant above must be at
// least 2x faster.
func BenchmarkTable12SubnetsFullEngine(b *testing.B) {
	benchExperiment(b, nil, true, func(a *core.Analyzer) {
		a.IsraeliSubnets()
	})
}

func BenchmarkTable13OSN(b *testing.B) {
	benchExperiment(b, []string{"table13"}, false, func(a *core.Analyzer) {
		if rows := a.SocialNetworks(); len(rows) == 0 {
			b.Fatal("no rows")
		}
	})
}

func BenchmarkTable14FBPages(b *testing.B) {
	benchExperiment(b, []string{"table14"}, false, func(a *core.Analyzer) {
		a.FacebookPages()
	})
}

func BenchmarkTable15Plugins(b *testing.B) {
	benchExperiment(b, []string{"table15"}, false, func(a *core.Analyzer) {
		a.SocialPlugins(10)
	})
}

func BenchmarkFig1Ports(b *testing.B) {
	benchExperiment(b, []string{"fig1"}, false, func(a *core.Analyzer) {
		al, ce := a.PortDistribution()
		if len(al) == 0 || len(ce) == 0 {
			b.Fatal("empty")
		}
	})
}

func BenchmarkFig2PowerLaw(b *testing.B) {
	benchExperiment(b, []string{"fig2"}, false, func(a *core.Analyzer) {
		if s := a.DomainFreqDistribution(); len(s) != 3 {
			b.Fatal("bad series")
		}
	})
}

func BenchmarkFig3Categories(b *testing.B) {
	benchExperiment(b, []string{"fig3"}, false, func(a *core.Analyzer) {
		if rows := a.CensoredCategories(false); len(rows) == 0 {
			b.Fatal("no rows")
		}
	})
}

func BenchmarkFig4Users(b *testing.B) {
	benchExperiment(b, []string{"fig4"}, false, func(a *core.Analyzer) {
		if rep := a.UserAnalysis(); rep.TotalUsers == 0 {
			b.Fatal("no users")
		}
	})
}

func BenchmarkFig5TimeSeries(b *testing.B) {
	benchExperiment(b, []string{"fig5"}, false, func(a *core.Analyzer) {
		if s := a.TimeSeries(aug(1, 0), aug(7, 0)); len(s) == 0 {
			b.Fatal("empty")
		}
	})
}

func BenchmarkFig6RCV(b *testing.B) {
	benchExperiment(b, []string{"fig6"}, false, func(a *core.Analyzer) {
		if pts := a.RCV(aug(3, 0), aug(4, 0)); len(pts) != 288 {
			b.Fatal("bad points")
		}
	})
}

func BenchmarkFig7ProxyLoad(b *testing.B) {
	benchExperiment(b, []string{"fig7"}, false, func(a *core.Analyzer) {
		a.ProxyLoads()
		a.ProxyShareSeries(aug(3, 0), aug(5, 0), true)
	})
}

func BenchmarkFig8Tor(b *testing.B) {
	benchExperiment(b, []string{"fig8"}, false, func(a *core.Analyzer) {
		a.TorAnalysis()
		a.TorHourly(aug(1, 0), aug(7, 0))
	})
}

func BenchmarkFig9RFilter(b *testing.B) {
	benchExperiment(b, []string{"fig9"}, false, func(a *core.Analyzer) {
		a.RFilter(aug(1, 0), aug(7, 0))
	})
}

func BenchmarkFig10Anonymizers(b *testing.B) {
	benchExperiment(b, []string{"fig10"}, false, func(a *core.Analyzer) {
		if rep := a.Anonymizers(); rep.Hosts == 0 {
			b.Fatal("no hosts")
		}
	})
}

func BenchmarkHTTPS(b *testing.B) {
	benchExperiment(b, []string{"https"}, false, func(a *core.Analyzer) {
		if rep := a.HTTPSAnalysis(); rep.Total == 0 {
			b.Fatal("no https")
		}
	})
}

func BenchmarkBitTorrent(b *testing.B) {
	kws := []string{"proxy", "hotspotshield", "ultrareach", "israel", "ultrasurf"}
	benchExperiment(b, []string{"bt"}, false, func(a *core.Analyzer) {
		if rep := a.BitTorrent(kws); rep.Announces == 0 {
			b.Fatal("no announces")
		}
	})
}

func BenchmarkGoogleCache(b *testing.B) {
	benchExperiment(b, []string{"gcache"}, false, func(a *core.Analyzer) {
		a.GoogleCache()
	})
}

// --- Ablations (DESIGN.md §10) ---

var ablationText = "www.facebook.com/plugins/like.php?href=http%3A%2F%2Fsite-042.example.com&layout=standard&app_id=123456"

func BenchmarkAblationKeywordMatchAhoCorasick(b *testing.B) {
	ac := strmatch.NewAhoCorasick([]string{"proxy", "hotspotshield", "ultrareach", "israel", "ultrasurf"})
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ac.Contains(ablationText)
	}
}

func BenchmarkAblationKeywordMatchNaive(b *testing.B) {
	pats := []string{"proxy", "hotspotshield", "ultrareach", "israel", "ultrasurf"}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		strmatch.ContainsNaive(pats, ablationText)
	}
}

func BenchmarkAblationTopKSketch(b *testing.B) {
	f := fixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tk := stats.NewTopK(256)
		for j := range f.records {
			tk.Add(f.records[j].Host)
		}
		if len(tk.Top(10)) == 0 {
			b.Fatal("empty")
		}
	}
}

func BenchmarkAblationTopKExact(b *testing.B) {
	f := fixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := stats.NewCounter()
		for j := range f.records {
			c.Add(f.records[j].Host)
		}
		if len(c.Top(10)) == 0 {
			b.Fatal("empty")
		}
	}
}

func benchPipeline(b *testing.B, workers int) {
	f := fixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		acc, err := pipeline.Run(pipeline.NewSliceScanner(f.records), workers,
			func() *core.Analyzer {
				return core.NewAnalyzer(core.Options{
					Categories: f.gen.CategoryDB(),
					Consensus:  f.gen.Consensus(),
				})
			},
			func(a *core.Analyzer, r *logfmt.Record) { a.Observe(r) },
			func(dst, src *core.Analyzer) { dst.Merge(src) },
		)
		if err != nil {
			b.Fatal(err)
		}
		if acc.Dataset(core.DFull).Total == 0 {
			b.Fatal("empty")
		}
	}
	b.SetBytes(int64(len(f.records)))
}

func BenchmarkAblationPipelineSerial(b *testing.B)   { benchPipeline(b, 1) }
func BenchmarkAblationPipelineParallel(b *testing.B) { benchPipeline(b, 0) }

func BenchmarkAblationGeoIPBinary(b *testing.B) {
	db := geoip.SyriaEra()
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		db.Lookup(0xd4960701) // 212.150.7.1
	}
}

func BenchmarkAblationGeoIPLinear(b *testing.B) {
	db := geoip.SyriaEra()
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		db.LookupLinear(0xd4960701)
	}
}

func BenchmarkAblationParseFast(b *testing.B) {
	f := fixture(b)
	var sb strings.Builder
	w := logfmt.NewWriter(&sb)
	for i := 0; i < 1000; i++ {
		_ = w.Write(&f.records[i])
	}
	_ = w.Flush()
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	var rec logfmt.Record
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := logfmt.ParseLine(lines[i%len(lines)], &rec); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationParseEncodingCSV(b *testing.B) {
	f := fixture(b)
	var sb strings.Builder
	w := logfmt.NewWriter(&sb)
	for i := 0; i < 1000; i++ {
		_ = w.Write(&f.records[i])
	}
	_ = w.Flush()
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := csv.NewReader(strings.NewReader(lines[i%len(lines)]))
		if _, err := r.Read(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Range queries: merge-on-query cost vs bucket count ---

// BenchmarkRangeQuery measures what a timewin full-range query costs as
// the bucket ring grows: one transient engine construction plus one
// Merge per covered bucket. The corpus is fixed; only the partition
// width (and therefore the bucket count) varies, so the sub-benchmarks
// expose the merge cost curve that sizes cmd/censord's -bucket flag.
func BenchmarkRangeQuery(b *testing.B) {
	f := fixture(b)
	opt := core.Options{
		Categories: f.gen.CategoryDB(),
		Consensus:  f.gen.Consensus(),
		TitleDB:    bittorrent.NewTitleDB(),
	}
	var lo, hi int64
	for i := range f.records {
		t := f.records[i].Time
		if lo == 0 || t < lo {
			lo = t
		}
		if t > hi {
			hi = t
		}
	}
	for _, nb := range []int{8, 64, 256} {
		width := (hi - lo + int64(nb)) / int64(nb) // ceil: corpus spans <= nb buckets
		p, err := timewin.New(timewin.Config{Options: opt, Bucket: time.Duration(width) * time.Second})
		if err != nil {
			b.Fatal(err)
		}
		for i := range f.records {
			p.Observe(&f.records[i])
		}
		b.Run(fmt.Sprintf("buckets=%d", p.Buckets()), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				dst, err := core.NewEngine(opt)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := p.RangeInto(dst, timewin.Window{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCheckpointRoundTrip measures the state codec on a full
// analyzed engine: encode + decode of every metric module's state (the
// per-shard work of a serve.Store checkpoint/restore cycle, before
// gzip). SetBytes is the encoded state size, so ns/op converts to
// codec MB/s in BENCH_core.json.
func BenchmarkCheckpointRoundTrip(b *testing.B) {
	f := fixture(b)
	state := f.analyzer.MarshalState()
	opt := core.Options{
		Categories: f.gen.CategoryDB(),
		Consensus:  f.gen.Consensus(),
		TitleDB:    bittorrent.NewTitleDB(),
	}
	b.ReportAllocs()
	b.SetBytes(int64(len(state)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enc := f.analyzer.MarshalState()
		restored := core.NewAnalyzer(opt)
		if err := restored.UnmarshalState(enc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCheckpointEncode isolates the write half (what a periodic
// checkpoint costs the shard goroutine, before gzip).
func BenchmarkCheckpointEncode(b *testing.B) {
	f := fixture(b)
	state := f.analyzer.MarshalState()
	b.ReportAllocs()
	b.SetBytes(int64(len(state)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(f.analyzer.MarshalState()) == 0 {
			b.Fatal("empty state")
		}
	}
}

// BenchmarkObsOverhead quantifies what the internal/obs instrumentation
// costs the hot ingest path: the same block ingest into a serve.Store,
// once with the metrics registry wired (the default) and once with
// Config.DisableObs (the zero-value storeMetrics, whose nil counters
// and histograms no-op). The acceptance bar is instrumented within a
// few percent of baseline MB/s.
func BenchmarkObsOverhead(b *testing.B) {
	f := fixture(b)
	var buf bytes.Buffer
	w := logfmt.NewWriter(&buf)
	if err := w.WriteHeader(); err != nil {
		b.Fatal(err)
	}
	for i := range f.records {
		if err := w.Write(&f.records[i]); err != nil {
			b.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	opts := benchOpts(f)

	run := func(b *testing.B, disable bool) {
		b.SetBytes(int64(len(data)))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			st, err := serve.NewStore(serve.Config{Options: opts, Shards: 4, DisableObs: disable})
			if err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			added, _, err := st.IngestBlocks(logfmt.NewBlockReader(bytes.NewReader(data)), 0)
			b.StopTimer()
			if err != nil {
				b.Fatal(err)
			}
			if added == 0 {
				b.Fatal("empty ingest")
			}
			st.Close()
			b.StartTimer()
		}
	}
	b.Run("instrumented", func(b *testing.B) { run(b, false) })
	b.Run("baseline", func(b *testing.B) { run(b, true) })
}

// BenchmarkTraceOverhead quantifies what request-scoped tracing costs
// the hot ingest path: the same block ingest into a serve.Store, once
// with a Tracer wired (the censord default, spans created and recorded
// per batch/shard) and once without (the nil-receiver no-op path). The
// acceptance bar is traced within ~2% of disabled MB/s — tracing is
// always on in production, so this is the price of every byte ingested.
func BenchmarkTraceOverhead(b *testing.B) {
	f := fixture(b)
	var buf bytes.Buffer
	w := logfmt.NewWriter(&buf)
	if err := w.WriteHeader(); err != nil {
		b.Fatal(err)
	}
	for i := range f.records {
		if err := w.Write(&f.records[i]); err != nil {
			b.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	opts := benchOpts(f)

	run := func(b *testing.B, tr *trace.Tracer) {
		b.SetBytes(int64(len(data)))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			st, err := serve.NewStore(serve.Config{Options: opts, Shards: 4, Tracer: tr})
			if err != nil {
				b.Fatal(err)
			}
			// The traced arm ingests under a live root span — the shape
			// of a POST /v1/ingest request — so per-shard apply spans,
			// the pipeline child span and publication all run for real.
			// With tr == nil the identical call sites no-op.
			ctx := trace.NewContext(context.Background(), tr.Root("bench.ingest"))
			b.StartTimer()
			added, _, err := st.IngestBlocksCtx(ctx, logfmt.NewBlockReader(bytes.NewReader(data)), 0)
			b.StopTimer()
			trace.FromContext(ctx).End()
			if err != nil {
				b.Fatal(err)
			}
			if added == 0 {
				b.Fatal("empty ingest")
			}
			st.Close()
			b.StartTimer()
		}
	}
	b.Run("traced", func(b *testing.B) {
		run(b, trace.New(trace.Config{Slow: trace.DefaultSlow}))
	})
	b.Run("disabled", func(b *testing.B) { run(b, nil) })
}

// BenchmarkDocCache quantifies the read paths PR "read-path caching"
// trades between: cold is the pre-cache behavior (every GET renders the
// experiment from the snapshot), hit serves the cached bytes, and
// etag-304 revalidates with If-None-Match — no render, no body. The CI
// bench-smoke gate holds hit to >= 10x cold; byte-identity between the
// arms is pinned by TestDocCacheByteIdentity in internal/serve.
func BenchmarkDocCache(b *testing.B) {
	f := fixture(b)
	store, err := serve.NewStore(serve.Config{Options: benchOpts(f), Shards: 4})
	if err != nil {
		b.Fatal(err)
	}
	defer store.Close()
	if _, err := store.Add(f.records); err != nil {
		b.Fatal(err)
	}
	if _, err := store.Refresh(); err != nil {
		b.Fatal(err)
	}

	const path = "/v1/tables/4"
	run := func(b *testing.B, srv *serve.Server, inm string, want int) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			req := httptest.NewRequest("GET", path, nil)
			if inm != "" {
				req.Header.Set("If-None-Match", inm)
			}
			rw := httptest.NewRecorder()
			srv.ServeHTTP(rw, req)
			if rw.Code != want {
				b.Fatalf("status %d, want %d: %.200s", rw.Code, want, rw.Body.String())
			}
		}
	}

	b.Run("cold", func(b *testing.B) {
		srv := serve.NewServer(store, f.gen, serve.WithDocCacheBytes(0))
		run(b, srv, "", 200)
	})
	srv := serve.NewServer(store, f.gen)
	warm := httptest.NewRecorder()
	srv.ServeHTTP(warm, httptest.NewRequest("GET", path, nil))
	if warm.Code != 200 || warm.Header().Get("ETag") == "" {
		b.Fatalf("warmup: status %d, etag %q", warm.Code, warm.Header().Get("ETag"))
	}
	b.Run("hit", func(b *testing.B) { run(b, srv, "", 200) })
	b.Run("etag-304", func(b *testing.B) { run(b, srv, warm.Header().Get("ETag"), 304) })
}
