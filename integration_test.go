package repro

// End-to-end integration tests across package boundaries: the full
// generate -> filter -> serialize-to-disk -> parse -> parallel-analyze
// path, plus failure injection on the on-disk corpus.

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"syriafilter/internal/bittorrent"
	"syriafilter/internal/core"
	"syriafilter/internal/logfmt"
	"syriafilter/internal/pipeline"
	"syriafilter/internal/proxysim"
	"syriafilter/internal/render"
	"syriafilter/internal/synth"
)

// buildCorpusFiles writes a small corpus split per proxy into dir and
// returns the generator plus the in-memory analyzer reference.
func buildCorpusFiles(t *testing.T, dir string, seed uint64, n int) (*synth.Generator, *core.Analyzer, []string) {
	t.Helper()
	gen, err := synth.New(synth.Config{Seed: seed, TotalRequests: n})
	if err != nil {
		t.Fatal(err)
	}
	cluster := proxysim.NewCluster(proxysim.Config{
		Seed: seed, Engine: gen.Engine(), Consensus: gen.Consensus(),
	})
	ref := core.NewAnalyzer(core.Options{
		Categories: gen.CategoryDB(), Consensus: gen.Consensus(),
	})

	writers := map[int]*logfmt.Writer{}
	var paths []string
	for sg := logfmt.FirstProxy; sg <= logfmt.LastProxy; sg++ {
		path := filepath.Join(dir, "sg.csv")
		path = filepath.Join(dir, "sg-"+string(rune('0'+sg/10))+string(rune('0'+sg%10))+".csv")
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		w := logfmt.NewWriter(f)
		if err := w.WriteHeader(); err != nil {
			t.Fatal(err)
		}
		writers[sg] = w
		paths = append(paths, path)
	}

	var rec logfmt.Record
	for {
		req, ok := gen.Next()
		if !ok {
			break
		}
		cluster.Process(&req, &rec)
		ref.Observe(&rec)
		if err := writers[rec.Proxy()].Write(&rec); err != nil {
			t.Fatal(err)
		}
	}
	for _, w := range writers {
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	return gen, ref, paths
}

func analyzeFiles(t *testing.T, gen *synth.Generator, paths []string, workers int) *core.Analyzer {
	t.Helper()
	var scanners []pipeline.Scanner
	for _, path := range paths {
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		scanners = append(scanners, logfmt.NewReader(f))
	}
	an, err := pipeline.Run(pipeline.NewMultiScanner(scanners...), workers,
		func() *core.Analyzer {
			return core.NewAnalyzer(core.Options{
				Categories: gen.CategoryDB(), Consensus: gen.Consensus(),
			})
		},
		func(a *core.Analyzer, r *logfmt.Record) { a.Observe(r) },
		func(dst, src *core.Analyzer) { dst.Merge(src) },
	)
	if err != nil {
		t.Fatal(err)
	}
	return an
}

// The corpus must survive a full disk round trip: serializing all records
// and re-analyzing them in parallel yields the same results as analyzing
// the live stream.
func TestFileRoundTripMatchesInMemory(t *testing.T) {
	dir := t.TempDir()
	gen, ref, paths := buildCorpusFiles(t, dir, 77, 60000)
	got := analyzeFiles(t, gen, paths, 4)

	if got.Dataset(core.DFull) != ref.Dataset(core.DFull) {
		t.Errorf("Dfull differs:\n got %+v\nwant %+v",
			got.Dataset(core.DFull), ref.Dataset(core.DFull))
	}
	ga, gc := got.TopDomains(10)
	wa, wc := ref.TopDomains(10)
	for i := range wa {
		if ga[i] != wa[i] {
			t.Errorf("allowed[%d]: %+v != %+v", i, ga[i], wa[i])
		}
	}
	for i := range wc {
		if gc[i] != wc[i] {
			t.Errorf("censored[%d]: %+v != %+v", i, gc[i], wc[i])
		}
	}
	if got.TorAnalysis() != ref.TorAnalysis() {
		t.Error("Tor reports differ after round trip")
	}
	gd := got.DiscoverFilters(0)
	rd := ref.DiscoverFilters(0)
	if len(gd.Keywords) != len(rd.Keywords) {
		t.Fatalf("keyword sets differ: %v vs %v", gd.Keywords, rd.Keywords)
	}
	for i := range rd.Keywords {
		if gd.Keywords[i].Keyword != rd.Keywords[i].Keyword {
			t.Errorf("keyword[%d]: %q != %q", i, gd.Keywords[i].Keyword, rd.Keywords[i].Keyword)
		}
	}
}

// Failure injection: corrupting lines in one proxy file must not break the
// analysis — the readers skip malformed lines and everything else is
// still counted.
func TestCorruptedCorpusIsTolerated(t *testing.T) {
	dir := t.TempDir()
	gen, ref, paths := buildCorpusFiles(t, dir, 78, 40000)

	// Vandalize one file: truncate its final line and inject garbage.
	data, err := os.ReadFile(paths[2])
	if err != nil {
		t.Fatal(err)
	}
	data = data[:len(data)-40] // truncate mid-record
	data = append(data, []byte("\ngarbage,line,here\nnot,a,record\n")...)
	if err := os.WriteFile(paths[2], data, 0o644); err != nil {
		t.Fatal(err)
	}

	got := analyzeFiles(t, gen, paths, 2)
	gotTotal := got.Dataset(core.DFull).Total
	refTotal := ref.Dataset(core.DFull).Total
	if gotTotal == 0 || gotTotal >= refTotal {
		t.Fatalf("corrupted corpus total %d vs reference %d", gotTotal, refTotal)
	}
	if refTotal-gotTotal > 3 {
		t.Errorf("lost %d records to a 1-line corruption", refTotal-gotTotal)
	}
}

// The acceptance criterion for the block ingestion layer: block-parallel
// ingest (pipeline.RunFilesBlocks — raw byte blocks parsed on the worker
// pool) must produce identical tables and figures to the scanner path
// for every experiment id, on the same syngen corpus. Run under -race in
// CI, this also proves the concurrent parse workers are race-free.
func TestBlockIngestMatchesScannerPath(t *testing.T) {
	dir := t.TempDir()
	gen, _, paths := buildCorpusFiles(t, dir, 91, 60000)
	newAcc := func() *core.Analyzer {
		return core.NewAnalyzer(core.Options{
			Categories: gen.CategoryDB(), Consensus: gen.Consensus(),
			TitleDB: bittorrent.NewTitleDB(),
		})
	}
	observe := func(a *core.Analyzer, r *logfmt.Record) { a.Observe(r) }
	merge := func(dst, src *core.Analyzer) { dst.Merge(src) }

	scanner, err := pipeline.RunFiles(paths, 4, newAcc, observe, merge)
	if err != nil {
		t.Fatal(err)
	}
	blocks, stats, err := pipeline.RunFilesBlocks(paths, 8, newAcc, observe, merge)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Malformed != 0 {
		t.Fatalf("clean corpus reported %d malformed lines", stats.Malformed)
	}
	if stats.Records == 0 || stats.Lines <= stats.Records {
		t.Fatalf("implausible stats: %+v", stats)
	}

	for _, id := range render.Order() {
		want, err := render.Render(id, render.Context{An: scanner, Gen: gen})
		if err != nil {
			t.Fatal(err)
		}
		got, err := render.Render(id, render.Context{An: blocks, Gen: gen})
		if err != nil {
			t.Fatal(err)
		}
		wb, _ := json.Marshal(want)
		gb, _ := json.Marshal(got)
		if string(wb) != string(gb) {
			t.Errorf("%s: block path differs from scanner path\n got: %.300s\nwant: %.300s", id, gb, wb)
		}
	}
}

// Determinism across the whole stack: two independent builds of the same
// seed produce byte-identical corpora on disk.
func TestEndToEndDeterminism(t *testing.T) {
	dirA, dirB := t.TempDir(), t.TempDir()
	_, _, pathsA := buildCorpusFiles(t, dirA, 123, 30000)
	_, _, pathsB := buildCorpusFiles(t, dirB, 123, 30000)
	for i := range pathsA {
		a, err := os.ReadFile(pathsA[i])
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(pathsB[i])
		if err != nil {
			t.Fatal(err)
		}
		if string(a) != string(b) {
			t.Fatalf("file %s differs between same-seed builds", filepath.Base(pathsA[i]))
		}
	}
}

// The state-codec invariant at the engine/render layer: an analyzer
// serialized to disk (the `censorlyzer -save-state` format) and read
// back renders byte-identical documents for every experiment id.
func TestEngineStateFileRoundTripRendersIdentically(t *testing.T) {
	dir := t.TempDir()
	gen, _, paths := buildCorpusFiles(t, dir, 55, 60000)
	opt := core.Options{
		Categories: gen.CategoryDB(), Consensus: gen.Consensus(),
		TitleDB: bittorrent.NewTitleDB(),
	}
	an, _, err := pipeline.RunFilesBlocks(paths, 4,
		func() *core.Analyzer { return core.NewAnalyzer(opt) },
		func(a *core.Analyzer, r *logfmt.Record) { a.Observe(r) },
		func(dst, src *core.Analyzer) { dst.Merge(src) },
	)
	if err != nil {
		t.Fatal(err)
	}

	statePath := filepath.Join(dir, "state.bin")
	f, err := os.Create(statePath)
	if err != nil {
		t.Fatal(err)
	}
	if err := an.WriteState(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	restored := core.NewAnalyzer(opt)
	rf, err := os.Open(statePath)
	if err != nil {
		t.Fatal(err)
	}
	defer rf.Close()
	if err := restored.ReadState(rf); err != nil {
		t.Fatal(err)
	}

	for _, id := range render.Order() {
		want, err := render.Render(id, render.Context{An: an, Gen: gen})
		if err != nil {
			t.Fatal(err)
		}
		got, err := render.Render(id, render.Context{An: restored, Gen: gen})
		if err != nil {
			t.Fatal(err)
		}
		wb, _ := json.Marshal(want)
		gb, _ := json.Marshal(got)
		if string(wb) != string(gb) {
			t.Errorf("%s: restored analyzer renders differently\n got: %.300s\nwant: %.300s", id, gb, wb)
		}
	}
}
