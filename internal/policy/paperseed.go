package policy

// This file encodes the censorship policy the paper recovers from the
// logs, as a ground-truth ruleset. The synthetic corpus is filtered by
// exactly this policy, so the analysis layer's inference algorithms can be
// validated against it.

// PaperKeywords are the five blacklisted keywords of Table 10, in the
// paper's frequency order.
var PaperKeywords = []string{
	"proxy",
	"hotspotshield",
	"ultrareach",
	"israel",
	"ultrasurf",
}

// PaperDomains are the URL-suffix blacklist entries the paper names
// explicitly: the Table 8 top-10 suspected domains, the .il TLD, the
// always-censored social networks of §6 (netlog, badoo), the news and
// opposition sites quoted in §8, and the MSN messenger hosts behind
// live.com's presence in Table 4. The traffic generator extends this list
// with procedurally generated news/forum domains to reach the paper's 105
// suspected domains with Table 9's category mix.
var PaperDomains = []string{
	"metacafe.com",
	"skype.com",
	"wikimedia.org",
	"il", // whole TLD: the paper finds all .il domains blocked
	"amazon.com",
	"aawsat.com",
	"jumblo.com",
	"jeddahbikers.com",
	"badoo.com",
	"islamway.com",
	"netlog.com",
	"ceipmsn.com",
	"all4syria.info",
	"islammemo.cc",
	"alquds.co.uk",
	"new-syria.com",
	"free-syria.com",
	// live.com is "always censored" as an IM service (§4) yet absent from
	// Table 8, implying the messenger hosts were blocked rather than the
	// whole registered domain (other live.com traffic stayed allowed).
	"messenger.live.com",
	"ceip.live.com",
}

// PaperBlockedSubnets are the fully blocked Israeli subnets (Table 12's
// "almost always censored" group).
var PaperBlockedSubnets = []string{
	"84.229.0.0/16",
	"46.120.0.0/15",
	"89.138.0.0/15",
	"212.235.64.0/19",
}

// PaperBlockedIPs are individually blocked addresses: the handful of
// censored hosts inside the mostly-allowed 212.150.0.0/16 (Table 12 shows
// 3 censored IPs there) plus two anonymizer servers (§4: HTTPS IP-literal
// blocking targets Israeli ASes and Anonymizer services).
var PaperBlockedIPs = []string{
	"212.150.10.1",
	"212.150.20.2",
	"212.150.30.3",
	"94.75.200.10", // anonymizer endpoints, NL (synthetic)
	"94.75.200.11", // anonymizer endpoint, NL
	"31.170.160.5", // anonymizer endpoint, GB — gives Table 11 its small
	"93.158.77.9",  // non-IL censored counts (UK/RU rows)
}

// PaperRedirectHosts are the Table 7 hosts whose every request redirects.
var PaperRedirectHosts = []string{
	"upload.youtube.com",
	"competition.mbc.net",
	"sharek.aljazeera.net",
}

// PaperPages are the custom-category Facebook page rules of Table 14. The
// narrow query sets reproduce §6's observation that only specific
// cs-uri-path + cs-uri-query combinations trigger the category (e.g.
// ?ref=ts is caught, the ajaxpipe variant is not).
var PaperPages = []PageRule{
	{Host: "www.facebook.com", Path: "/Syrian.Revolution", Queries: []string{"", "ref=ts", "sk=wall"}},
	{Host: "ar-ar.facebook.com", Path: "/Syrian.Revolution", Queries: []string{"", "ref=ts"}},
	{Host: "www.facebook.com", Path: "/Syrian.revolution", Queries: []string{"", "ref=ts"}},
	{Host: "www.facebook.com", Path: "/syria.news.F.N.N", Queries: []string{"", "ref=ts"}},
	{Host: "www.facebook.com", Path: "/ShaamNews", Queries: []string{"", "ref=ts"}},
	{Host: "www.facebook.com", Path: "/fffm14", Queries: []string{"", "ref=ts"}},
	{Host: "www.facebook.com", Path: "/barada.channel", Queries: []string{"", "ref=ts"}},
	{Host: "www.facebook.com", Path: "/DaysOfRage", Queries: []string{"", "ref=ts"}},
	{Host: "www.facebook.com", Path: "/Syrian.R.V", Queries: []string{"", "ref=ts"}},
	{Host: "www.facebook.com", Path: "/YouthFreeSyria", Queries: []string{""}},
	{Host: "www.facebook.com", Path: "/sooryoon", Queries: []string{""}},
	{Host: "www.facebook.com", Path: "/Freedom.Of.Syria", Queries: []string{""}},
	{Host: "www.facebook.com", Path: "/SyrianDayOfRage", Queries: []string{""}},
}

// PaperRuleset assembles the full ground-truth policy. It panics only on
// programming errors in the seed tables.
func PaperRuleset() *Ruleset {
	rs := &Ruleset{
		Keywords:      append([]string(nil), PaperKeywords...),
		Domains:       append([]string(nil), PaperDomains...),
		RedirectHosts: append([]string(nil), PaperRedirectHosts...),
		Pages:         append([]PageRule(nil), PaperPages...),
		CategoryLabel: "Blocked sites",
	}
	for _, cidr := range PaperBlockedSubnets {
		if err := rs.AddCIDR(cidr); err != nil {
			panic("policy: bad seed subnet " + cidr)
		}
	}
	for _, addr := range PaperBlockedIPs {
		if err := rs.AddIP(addr); err != nil {
			panic("policy: bad seed address " + addr)
		}
	}
	return rs
}
