package policy

import (
	"testing"
	"testing/quick"

	"syriafilter/internal/urlx"
)

func paperEngine() *Engine { return Compile(PaperRuleset()) }

func req(host, path, query string) *Request {
	return &Request{Host: host, Path: path, Query: query, Scheme: "http", Method: "GET", Port: 80}
}

func TestKeywordFiltering(t *testing.T) {
	e := paperEngine()
	cases := []struct {
		host, path, query string
		want              Action
		kind              RuleKind
		match             string
	}{
		// The Google toolbar collateral damage of §5.4.
		{"www.google.com", "/tbproxy/af/query", "q=hello", Deny, KindKeyword, "proxy"},
		// Facebook social plugins (Table 15).
		{"www.facebook.com", "/ajax/proxy.php", "x=1", Deny, KindKeyword, "proxy"},
		{"www.facebook.com", "/plugins/like.php", "href=a&proxy=b", Deny, KindKeyword, "proxy"},
		// Keyword in the host itself.
		{"myproxy4u.example", "/", "", Deny, KindKeyword, "proxy"},
		{"www.hotspotshield.com", "/download", "", Deny, KindKeyword, "hotspotshield"},
		{"ultrareach.example", "/", "", Deny, KindKeyword, "ultrareach"},
		{"news.example", "/world/israel-report", "", Deny, KindKeyword, "israel"},
		{"dl.example", "/ultrasurf.zip", "", Deny, KindKeyword, "ultrasurf"},
		// Benign.
		{"www.google.com", "/search", "q=weather", Allow, KindNone, ""},
	}
	for _, tc := range cases {
		v := e.Evaluate(req(tc.host, tc.path, tc.query))
		if v.Action != tc.want || v.Kind != tc.kind || (tc.match != "" && v.Match != tc.match) {
			t.Errorf("Evaluate(%s%s?%s) = %+v, want %v/%v/%q",
				tc.host, tc.path, tc.query, v, tc.want, tc.kind, tc.match)
		}
	}
}

func TestDomainFiltering(t *testing.T) {
	e := paperEngine()
	deny := []string{
		"metacafe.com", "www.metacafe.com", "skype.com", "download.skype.com",
		"wikimedia.org", "upload.wikimedia.org", "panet.co.il", "anything.il",
		"amazon.com", "jumblo.com", "badoo.com", "netlog.com", "ceipmsn.com",
		"messenger.live.com",
	}
	for _, h := range deny {
		v := e.Evaluate(req(h, "/", ""))
		if v.Action != Deny || v.Kind != KindDomain {
			t.Errorf("domain %s: %+v", h, v)
		}
	}
	allow := []string{
		"www.live.com", // only messenger hosts are blocked
		"mail.google.com", "twitter.com", "notmetacafe.com", "ilx.example",
	}
	for _, h := range allow {
		v := e.Evaluate(req(h, "/", ""))
		if v.Action != Allow {
			t.Errorf("host %s should be allowed: %+v", h, v)
		}
	}
}

func TestIPRangeFiltering(t *testing.T) {
	e := paperEngine()
	deny := []string{
		"84.229.0.0", "84.229.255.255", "46.120.1.2", "46.121.200.9",
		"89.138.0.1", "89.139.255.254", "212.235.64.1", "212.235.95.255",
		"212.150.10.1", "212.150.20.2", "212.150.30.3",
		"94.75.200.10", "94.75.200.11",
	}
	for _, h := range deny {
		v := e.Evaluate(req(h, "", ""))
		if v.Action != Deny || v.Kind != KindIPRange {
			t.Errorf("IP %s: %+v", h, v)
		}
	}
	allow := []string{
		"212.150.10.2", // inside the mostly-allowed /16 but not blacklisted
		"212.235.96.0", // just past the /19
		"8.8.8.8",
		"84.228.255.255",
	}
	for _, h := range allow {
		v := e.Evaluate(req(h, "", ""))
		if v.Action != Allow {
			t.Errorf("IP %s should be allowed: %+v", h, v)
		}
	}
	// IP rules must not fire on hostnames that merely contain digits.
	if v := e.Evaluate(req("84.229.fake.example", "/", "")); v.Action != Allow {
		t.Errorf("hostname hit IP rule: %+v", v)
	}
}

func TestRedirectHosts(t *testing.T) {
	e := paperEngine()
	for _, h := range PaperRedirectHosts {
		v := e.Evaluate(req(h, "/any/path", "q=1"))
		if v.Action != Redirect || v.Kind != KindCategory {
			t.Errorf("redirect host %s: %+v", h, v)
		}
	}
	// youtube.com itself is not a redirect host.
	if v := e.Evaluate(req("www.youtube.com", "/watch", "v=abc")); v.Action != Allow {
		t.Errorf("www.youtube.com: %+v", v)
	}
}

func TestCustomCategoryPages(t *testing.T) {
	e := paperEngine()
	// Exact page + narrow query: redirect.
	v := e.Evaluate(req("www.facebook.com", "/Syrian.Revolution", "ref=ts"))
	if v.Action != Redirect || v.Kind != KindCategory {
		t.Fatalf("targeted page: %+v", v)
	}
	v = e.Evaluate(req("www.facebook.com", "/Syrian.Revolution", ""))
	if v.Action != Redirect {
		t.Fatalf("targeted page bare: %+v", v)
	}
	// The paper's observed escape: extra ajax query params slip through.
	v = e.Evaluate(req("www.facebook.com", "/Syrian.Revolution",
		"ref=ts&__a=11&ajaxpipe=1&quickling[version]=414343%3B0"))
	if v.Action != Allow {
		t.Fatalf("ajaxpipe variant should slip through: %+v", v)
	}
	// Pages not in the list are fine.
	v = e.Evaluate(req("www.facebook.com", "/Syrian.Revolution.Army", ""))
	if v.Action != Allow {
		t.Fatalf("untargeted page: %+v", v)
	}
	// Plain facebook browsing is fine.
	v = e.Evaluate(req("www.facebook.com", "/home.php", ""))
	if v.Action != Allow {
		t.Fatalf("facebook home: %+v", v)
	}
}

func TestPrecedencePageOverKeyword(t *testing.T) {
	// A ruleset where a page rule and keyword rule both match: the page
	// (custom category / redirect) must win, as observed in the logs where
	// targeted pages raise policy_redirect, not policy_denied.
	rs := &Ruleset{
		Keywords: []string{"revolution"},
		Pages:    []PageRule{{Host: "fb.example", Path: "/revolution", Queries: []string{""}}},
	}
	e := Compile(rs)
	v := e.Evaluate(req("fb.example", "/revolution", ""))
	if v.Action != Redirect || v.Kind != KindCategory {
		t.Fatalf("precedence: %+v", v)
	}
}

func TestPrecedenceDomainOverKeyword(t *testing.T) {
	rs := &Ruleset{
		Keywords: []string{"proxy"},
		Domains:  []string{"blocked.example"},
	}
	e := Compile(rs)
	v := e.Evaluate(req("blocked.example", "/proxy", ""))
	if v.Kind != KindDomain {
		t.Fatalf("domain should take precedence over keyword: %+v", v)
	}
}

func TestRequestURLSurface(t *testing.T) {
	r := req("h.example", "/p", "q=1")
	if got := r.URL(); got != "h.example/p?q=1" {
		t.Errorf("URL = %q", got)
	}
	r = req("h.example", "", "")
	if got := r.URL(); got != "h.example" {
		t.Errorf("URL = %q", got)
	}
}

func TestRulesetAddErrors(t *testing.T) {
	var rs Ruleset
	if err := rs.AddCIDR("garbage"); err == nil {
		t.Error("bad CIDR accepted")
	}
	if err := rs.AddCIDR("1.2.3.4/40"); err == nil {
		t.Error("bad prefix accepted")
	}
	if err := rs.AddIP("not-an-ip"); err == nil {
		t.Error("bad IP accepted")
	}
}

func TestCategoryLabelDefault(t *testing.T) {
	e := Compile(&Ruleset{})
	if e.CategoryLabel() != "Blocked sites" {
		t.Errorf("label = %q", e.CategoryLabel())
	}
	e = Compile(&Ruleset{CategoryLabel: "Custom"})
	if e.CategoryLabel() != "Custom" {
		t.Errorf("label = %q", e.CategoryLabel())
	}
}

// Invariant from the paper's discovery algorithm: the engine must be
// deterministic — the same request always gets the same verdict (NA=0
// criterion only works if a URL can never be both allowed and censored).
func TestEvaluateDeterministic(t *testing.T) {
	e := paperEngine()
	hosts := []string{"metacafe.com", "google.com", "84.229.1.1", "www.facebook.com", "x.il"}
	paths := []string{"", "/", "/tbproxy/af/query", "/Syrian.Revolution", "/watch"}
	queries := []string{"", "ref=ts", "proxy=1", "q=x"}
	if err := quick.Check(func(h, p, q uint8) bool {
		r := req(hosts[int(h)%len(hosts)], paths[int(p)%len(paths)], queries[int(q)%len(queries)])
		v1 := e.Evaluate(r)
		v2 := e.Evaluate(r)
		return v1 == v2
	}, nil); err != nil {
		t.Fatal(err)
	}
}

// The blocked-subnet seeds must agree with urlx/geoip range math.
func TestBlockedRangesCoverSubnets(t *testing.T) {
	rs := PaperRuleset()
	e := Compile(rs)
	for _, cidr := range PaperBlockedSubnets {
		slash := 0
		for i, c := range cidr {
			if c == '/' {
				slash = i
			}
		}
		base, ok := urlx.ParseIPv4(cidr[:slash])
		if !ok {
			t.Fatalf("bad seed %q", cidr)
		}
		if _, hit := e.lookupRange(base); !hit {
			t.Errorf("subnet base %s not covered", cidr)
		}
	}
}

func BenchmarkEvaluateAllowed(b *testing.B) {
	e := paperEngine()
	r := req("www.example.com", "/some/ordinary/page.html", "id=12345&lang=ar")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.Evaluate(r)
	}
}

func BenchmarkEvaluateKeywordHit(b *testing.B) {
	e := paperEngine()
	r := req("www.facebook.com", "/plugins/like.php", "href=x&proxy=1")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.Evaluate(r)
	}
}
