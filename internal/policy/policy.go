// Package policy implements the Blue Coat filtering policy engine whose
// *output* the paper reverse-engineers: the ruleset abstraction (keywords,
// URL/domain suffixes, destination IP ranges, and the custom-category page
// rules behind policy_redirect), and a compiled Engine that evaluates a
// request against all rule families in the documented precedence.
//
// The engine is the ground truth of the reproduction: the traffic
// generator runs every synthetic request through it, the proxy simulator
// logs the verdicts, and the analysis layer (internal/core) must then
// recover the ruleset from the logs alone — which lets us validate the
// paper's §5.4 inference algorithms exactly.
package policy

import (
	"sort"
	"strings"

	"syriafilter/internal/strmatch"
	"syriafilter/internal/urlx"
)

// Action is a filtering decision.
type Action uint8

const (
	// Allow serves the request.
	Allow Action = iota
	// Deny blocks it with a policy_denied exception.
	Deny
	// Redirect answers with a policy_redirect exception, sending the
	// client to an unknown (government-hosted) page.
	Redirect
)

// String names the action.
func (a Action) String() string {
	switch a {
	case Allow:
		return "allow"
	case Deny:
		return "deny"
	case Redirect:
		return "redirect"
	}
	return "unknown"
}

// RuleKind identifies which rule family produced a verdict, matching the
// paper's taxonomy in §5.4/§6.
type RuleKind uint8

const (
	// KindNone means no rule matched.
	KindNone RuleKind = iota
	// KindKeyword is substring matching over host+path+query.
	KindKeyword
	// KindDomain is URL/domain-suffix matching (incl. the .il TLD).
	KindDomain
	// KindIPRange is destination-IP matching for IP-literal hosts.
	KindIPRange
	// KindCategory is the custom "Blocked sites" category (targeted
	// Facebook pages and the Table 7 redirect hosts).
	KindCategory
)

// String names the rule kind.
func (k RuleKind) String() string {
	switch k {
	case KindKeyword:
		return "keyword"
	case KindDomain:
		return "domain"
	case KindIPRange:
		return "ip-range"
	case KindCategory:
		return "category"
	}
	return "none"
}

// Request is the slice of a request the filtering engine sees. Host must
// be lowercase (the log pipeline normalizes at parse time).
type Request struct {
	Host   string
	Port   uint16
	Path   string
	Query  string
	Scheme string // "http", "https", "tcp"
	Method string // GET/POST/CONNECT/...
}

// URL returns the string-matching surface: host + path + "?" + query,
// the exact field combination §5.4 identifies.
func (q *Request) URL() string {
	var b strings.Builder
	b.Grow(len(q.Host) + len(q.Path) + len(q.Query) + 1)
	b.WriteString(q.Host)
	b.WriteString(q.Path)
	if q.Query != "" {
		b.WriteByte('?')
		b.WriteString(q.Query)
	}
	return b.String()
}

// Verdict is the engine's decision plus provenance for ground-truth
// validation.
type Verdict struct {
	Action Action
	Kind   RuleKind
	Match  string // matched keyword / domain suffix / CIDR / page
}

// Allowed is the zero verdict.
var Allowed = Verdict{Action: Allow, Kind: KindNone}

// PageRule targets one social-media page with the custom category, the §6
// mechanism: only a narrow set of exact path+query combinations triggers
// (e.g. /Syrian.Revolution with query "" or "ref=ts", but not the
// ajax-pipelined variants).
type PageRule struct {
	Host    string   // e.g. "www.facebook.com"
	Path    string   // e.g. "/Syrian.Revolution" (exact match)
	Queries []string // exact queries that trigger; nil means only ""
}

// IPRange is one blocked destination range (inclusive).
type IPRange struct {
	Start uint32
	End   uint32
	Label string // CIDR or address the range came from
}

// Ruleset is the declarative policy. Compile it into an Engine to use.
type Ruleset struct {
	// Keywords are blacklisted substrings of host+path+query.
	Keywords []string
	// Domains are blacklisted URL suffixes; "il" blocks the whole TLD.
	Domains []string
	// Ranges are blocked destination IP ranges (for IP-literal hosts).
	Ranges []IPRange
	// RedirectHosts redirect every request (Table 7: upload.youtube.com,
	// competition.mbc.net, sharek.aljazeera.net, ...).
	RedirectHosts []string
	// Pages are the custom-category page rules (Table 14).
	Pages []PageRule
	// CategoryLabel is the cs-categories value stamped on custom-category
	// hits ("Blocked sites"); combined by the proxy with its default label.
	CategoryLabel string
}

// AddCIDR appends a blocked CIDR to the ruleset.
func (rs *Ruleset) AddCIDR(cidr string) error {
	start, end, err := parseCIDR(cidr)
	if err != nil {
		return err
	}
	rs.Ranges = append(rs.Ranges, IPRange{Start: start, End: end, Label: cidr})
	return nil
}

// AddIP appends a single blocked address.
func (rs *Ruleset) AddIP(addr string) error {
	ip, ok := urlx.ParseIPv4(addr)
	if !ok {
		return errBadAddr(addr)
	}
	rs.Ranges = append(rs.Ranges, IPRange{Start: ip, End: ip, Label: addr})
	return nil
}

// Engine is the compiled policy. It is immutable and safe for concurrent
// use; the proxy cluster shares one engine across all workers.
type Engine struct {
	keywords *strmatch.AhoCorasick
	domains  *strmatch.SuffixSet
	ranges   []IPRange // sorted by Start; may contain overlaps
	redirect map[string]struct{}
	pages    map[string]map[string]struct{} // host+path -> allowed query set
	label    string
}

// Compile builds an Engine from a ruleset.
func Compile(rs *Ruleset) *Engine {
	e := &Engine{
		keywords: strmatch.NewAhoCorasick(lowerAll(rs.Keywords)),
		domains:  strmatch.NewSuffixSet(rs.Domains),
		redirect: make(map[string]struct{}, len(rs.RedirectHosts)),
		pages:    make(map[string]map[string]struct{}, len(rs.Pages)),
		label:    rs.CategoryLabel,
	}
	if e.label == "" {
		e.label = "Blocked sites"
	}
	e.ranges = make([]IPRange, len(rs.Ranges))
	copy(e.ranges, rs.Ranges)
	sort.Slice(e.ranges, func(i, j int) bool { return e.ranges[i].Start < e.ranges[j].Start })
	for _, h := range rs.RedirectHosts {
		e.redirect[strings.ToLower(h)] = struct{}{}
	}
	for _, p := range rs.Pages {
		key := strings.ToLower(p.Host) + p.Path
		qs, ok := e.pages[key]
		if !ok {
			qs = make(map[string]struct{})
			e.pages[key] = qs
		}
		if len(p.Queries) == 0 {
			qs[""] = struct{}{}
		}
		for _, q := range p.Queries {
			qs[q] = struct{}{}
		}
	}
	return e
}

// CategoryLabel returns the custom-category label stamped on page hits.
func (e *Engine) CategoryLabel() string { return e.label }

// Evaluate runs a request through all rule families. Precedence follows
// the observed behaviour: custom-category pages and redirect hosts first
// (policy_redirect), then IP ranges, domain suffixes, and keywords
// (policy_denied).
func (e *Engine) Evaluate(req *Request) Verdict {
	// 1. Custom category (targeted pages) -> redirect.
	if len(e.pages) > 0 {
		if qs, ok := e.pages[req.Host+req.Path]; ok {
			if _, ok := qs[req.Query]; ok {
				return Verdict{Action: Redirect, Kind: KindCategory, Match: req.Host + req.Path}
			}
		}
	}
	// 2. Redirect hosts.
	if _, ok := e.redirect[req.Host]; ok {
		return Verdict{Action: Redirect, Kind: KindCategory, Match: req.Host}
	}
	// 3. Destination IP ranges (IP-literal hosts only).
	if ip, ok := urlx.ParseIPv4(req.Host); ok {
		if r, hit := e.lookupRange(ip); hit {
			return Verdict{Action: Deny, Kind: KindIPRange, Match: r.Label}
		}
	}
	// 4. Domain suffixes.
	if suffix, ok := e.domains.Match(req.Host); ok {
		return Verdict{Action: Deny, Kind: KindDomain, Match: suffix}
	}
	// 5. Keywords over the URL surface.
	if idx := e.keywords.First(req.URL()); idx >= 0 {
		return Verdict{Action: Deny, Kind: KindKeyword, Match: e.keywords.Patterns()[idx]}
	}
	return Allowed
}

// lookupRange finds a blocked range containing ip. Blocklists are small
// (a handful of subnets plus individual addresses) and may overlap, so a
// linear scan over the sorted table with early exit is both simplest and
// provably correct; the sort bound lets us stop at the first Start > ip.
func (e *Engine) lookupRange(ip uint32) (IPRange, bool) {
	for _, r := range e.ranges {
		if r.Start > ip {
			break
		}
		if ip <= r.End {
			return r, true
		}
	}
	return IPRange{}, false
}

func lowerAll(ss []string) []string {
	out := make([]string, len(ss))
	for i, s := range ss {
		out[i] = strings.ToLower(s)
	}
	return out
}

type errBadAddr string

func (e errBadAddr) Error() string { return "policy: bad IPv4 address " + string(e) }

func parseCIDR(cidr string) (uint32, uint32, error) {
	slash := strings.IndexByte(cidr, '/')
	if slash < 0 {
		return 0, 0, errBadAddr(cidr)
	}
	base, ok := urlx.ParseIPv4(cidr[:slash])
	if !ok {
		return 0, 0, errBadAddr(cidr)
	}
	bits := 0
	ls := cidr[slash+1:]
	if ls == "" {
		return 0, 0, errBadAddr(cidr)
	}
	for _, c := range ls {
		if c < '0' || c > '9' {
			return 0, 0, errBadAddr(cidr)
		}
		bits = bits*10 + int(c-'0')
		if bits > 32 {
			return 0, 0, errBadAddr(cidr)
		}
	}
	var mask uint32
	if bits > 0 {
		mask = ^uint32(0) << (32 - bits)
	}
	return base & mask, (base & mask) | ^mask, nil
}
