package logfmt

import (
	"strings"
	"testing"
)

// validSeedLine is a well-formed 26-field line (the format Writer emits).
const validSeedLine = "2011-08-03,14:05:59,10,10.1.2.3,-,-,200,TCP_NC_MISS,1000,300," +
	"GET,http,host-a.example.com,80,/path,-,-,Mozilla/5.0,82.137.200.42," +
	"OBSERVED,-,-,-,-,-,-"

// FuzzParseLine throws arbitrary lines at the parser: it must never
// panic, and any line it accepts must survive a Writer round trip — the
// re-serialized line parses back to an identical Record. This pins down
// the quoted-field escaping (splitCSVQuoted) against the Writer's
// quoting rules.
func FuzzParseLine(f *testing.F) {
	f.Add(validSeedLine)
	// Quoted-field edge cases: embedded commas, escaped quotes, quoted
	// empty and dash fields, quote at end of line.
	f.Add(strings.Replace(validSeedLine, "host-a.example.com", `"host,comma.example.com"`, 1))
	f.Add(strings.Replace(validSeedLine, "/path", `"/pa""th"`, 1))
	f.Add(strings.Replace(validSeedLine, "Mozilla/5.0", `""`, 1))
	f.Add(strings.Replace(validSeedLine, "Mozilla/5.0", `"-"`, 1))
	f.Add(`a,"b`)
	f.Add(`"unterminated`)
	f.Add(`"x"garbage,after,quote`)
	f.Add(`""""`)
	f.Add(strings.Repeat(",", NumFields-1))
	f.Add(strings.Repeat(",", NumFields+5))
	f.Add("2011-13-99,25:61:61,x," + strings.Repeat("-,", 22) + "-")

	f.Fuzz(func(t *testing.T, line string) {
		var rec Record
		if err := ParseLine(line, &rec); err != nil {
			return // rejected is fine; not panicking is the property
		}
		var sb strings.Builder
		w := NewWriter(&sb)
		if err := w.Write(&rec); err != nil {
			t.Fatalf("Write failed on accepted record: %v\nline: %q", err, line)
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		out := strings.TrimSuffix(sb.String(), "\n")
		if strings.ContainsRune(out, '\n') {
			// A quoted field carries an embedded newline: representable
			// as a Record but not as one physical log line, so the
			// line-oriented round trip does not apply.
			return
		}
		var rec2 Record
		if err := ParseLine(out, &rec2); err != nil {
			t.Fatalf("round trip failed: %v\noriginal: %q\nrewritten: %q", err, line, out)
		}
		if rec2 != rec {
			t.Fatalf("round trip changed the record:\noriginal line: %q\nrewritten:     %q\n got %+v\nwant %+v",
				line, out, rec2, rec)
		}
	})
}

// FuzzBlockVsReader is a differential fuzz: for any byte stream, the
// block layer (BlockReader + ParseBlock, at an awkward block size that
// forces mid-record boundaries) must produce exactly the records, line
// count and malformed count of the serial line Reader.
func FuzzBlockVsReader(f *testing.F) {
	f.Add("", 16)
	f.Add(validSeedLine+"\n"+validSeedLine, 7)
	f.Add("#comment\n\n"+validSeedLine+"\n", 3)
	f.Add("garbage\n"+validSeedLine+"\r\n#x", 11)
	f.Add(strings.Repeat(validSeedLine+"\n", 8), 64)

	f.Fuzz(func(t *testing.T, input string, size int) {
		if size < 1 || size > 1<<16 {
			size = 1 + (size&0x7fff+1<<15)%(1<<15) // clamp into [1, 32769)
		}
		if len(input) > 1<<16 {
			return // keep single-line growth below MaxLineLen
		}
		want, wantLines, wantMal, werr := scanAll(t, input, false)
		if werr != nil {
			t.Fatal(werr) // non-strict reader only fails on I/O errors
		}
		got, lines, mal, err := blockAll(t, input, size, false)
		if err != nil {
			t.Fatalf("block path failed where scanner succeeded: %v", err)
		}
		if lines != wantLines || mal != wantMal || len(got) != len(want) {
			t.Fatalf("records/lines/malformed = %d/%d/%d, want %d/%d/%d (size %d)",
				len(got), lines, mal, len(want), wantLines, wantMal, size)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("record %d differs (size %d):\n got %+v\nwant %+v", i, size, got[i], want[i])
			}
		}
	})
}

// FuzzParseBytesVsParseLine is the byte-parser's differential oracle:
// for any line, a shared Parser (with its intern cache warm from prior
// inputs) and the string-based ParseLine must agree on accept/reject and
// on every field of the accepted record. This is what licenses the block
// ingest path to use ParseBytes as a drop-in for ParseLine.
func FuzzParseBytesVsParseLine(f *testing.F) {
	f.Add(validSeedLine)
	f.Add(strings.Replace(validSeedLine, "host-a.example.com", `"host,comma.example.com"`, 1))
	f.Add(strings.Replace(validSeedLine, "/path", `"/pa""th"`, 1))
	f.Add(strings.Replace(validSeedLine, "Mozilla/5.0", `""`, 1))
	f.Add(strings.Replace(validSeedLine, "2011-08-03", "2011-02-29", 1))
	f.Add(strings.Replace(validSeedLine, "82.137.200.42", "256.1.1.1", 1))
	f.Add(strings.Replace(validSeedLine, "80", "99999", 1))
	f.Add(`a,"b`)
	f.Add(`"unterminated`)
	f.Add(strings.Repeat(",", NumFields-1))
	f.Add(strings.Repeat(",", NumFields+5))
	f.Add("2011-13-99,25:61:61,x," + strings.Repeat("-,", 22) + "-")

	p := NewParser() // shared across inputs: the intern cache must never leak one line's bytes into another's record
	f.Fuzz(func(t *testing.T, line string) {
		var want Record
		werr := ParseLine(line, &want)
		var got Record
		gerr := p.ParseBytes([]byte(line), &got)
		if (werr == nil) != (gerr == nil) {
			t.Fatalf("accept/reject mismatch: ParseLine err=%v, ParseBytes err=%v\nline: %q", werr, gerr, line)
		}
		if werr != nil {
			return
		}
		if got != want {
			t.Fatalf("records differ:\nline: %q\n got %+v\nwant %+v", line, got, want)
		}
	})
}
