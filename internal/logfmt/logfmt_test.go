package logfmt

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func sampleRecord() Record {
	return Record{
		Time:       time.Date(2011, 8, 3, 8, 15, 30, 0, time.UTC).Unix(),
		TimeTaken:  120,
		ClientIP:   "a1b2c3d4",
		Status:     403,
		SAction:    "TCP_DENIED",
		ScBytes:    729,
		CsBytes:    455,
		Method:     "GET",
		Scheme:     "http",
		Host:       "www.facebook.com",
		Port:       80,
		Path:       "/plugins/like.php",
		Query:      "href=example&proxy=1",
		Ext:        "php",
		UserAgent:  "Mozilla/5.0 (Windows NT 6.1)",
		Filter:     Denied,
		Categories: "unavailable",
		Exception:  ExPolicyDenied,
		Hierarchy:  "DIRECT",
		Supplier:   "www.facebook.com",
	}
}

func writeLine(t *testing.T, rec *Record) string {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Write(rec); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return strings.TrimSuffix(buf.String(), "\n")
}

func TestRoundTrip(t *testing.T) {
	rec := sampleRecord()
	rec.SetProxy(44)
	line := writeLine(t, &rec)
	var got Record
	if err := ParseLine(line, &got); err != nil {
		t.Fatalf("ParseLine(%q): %v", line, err)
	}
	if got != rec {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, rec)
	}
}

func TestRoundTripQuotedFields(t *testing.T) {
	rec := sampleRecord()
	rec.UserAgent = `agent "weird", with comma`
	rec.Query = "a,b"
	line := writeLine(t, &rec)
	var got Record
	if err := ParseLine(line, &got); err != nil {
		t.Fatalf("ParseLine: %v", err)
	}
	if got.UserAgent != rec.UserAgent || got.Query != rec.Query {
		t.Errorf("quoted fields: got %q %q", got.UserAgent, got.Query)
	}
}

func TestRoundTripProperty(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200}
	if err := quick.Check(func(host, path, query, ua string, status uint16, tt uint32, fr uint8, ex uint8) bool {
		clean := func(s string) string {
			// The format cannot carry newlines or CR inside fields (line-
			// oriented); everything else must round-trip.
			s = strings.ReplaceAll(s, "\n", "")
			s = strings.ReplaceAll(s, "\r", "")
			if s == "-" {
				s = "" // "-" is the encoding of empty
			}
			return s
		}
		rec := sampleRecord()
		rec.Host = clean(host)
		rec.Path = clean(path)
		rec.Query = clean(query)
		rec.UserAgent = clean(ua)
		rec.Status = status % 1000
		rec.TimeTaken = tt
		rec.Filter = FilterResult(fr % 3)
		rec.Exception = ExceptionID(int(ex) % NumExceptions)
		line := writeLine(t, &rec)
		var got Record
		if err := ParseLine(line, &got); err != nil {
			t.Logf("parse error for %+v: %v", rec, err)
			return false
		}
		return got == rec
	}, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestParseLineErrors(t *testing.T) {
	base := writeLine(t, &Record{Time: time.Date(2011, 8, 1, 0, 0, 0, 0, time.UTC).Unix()})
	cases := []struct {
		name string
		line string
	}{
		{"too few fields", "a,b,c"},
		{"too many fields", base + ",extra"},
		{"bad date", strings.Replace(base, "2011-08-01", "2011-13-99", 1)},
		{"bad filter", strings.Replace(base, "OBSERVED", "MAYBE", 1)},
		{"bad exception", strings.Replace(base, "OBSERVED,-,-", "OBSERVED,-,weird_exc", 1)},
		{"unterminated quote", strings.Replace(base, "OBSERVED", `"OBSERVED`, 1)},
	}
	for _, tc := range cases {
		var rec Record
		if err := ParseLine(tc.line, &rec); err == nil {
			t.Errorf("%s: no error for %q", tc.name, tc.line)
		}
	}
}

func TestParseLineNumericEdge(t *testing.T) {
	rec := sampleRecord()
	rec.Port = 65535
	rec.ScBytes = 4294967295
	line := writeLine(t, &rec)
	var got Record
	if err := ParseLine(line, &got); err != nil {
		t.Fatal(err)
	}
	if got.Port != 65535 || got.ScBytes != 4294967295 {
		t.Errorf("edge numerics: %d %d", got.Port, got.ScBytes)
	}
}

func TestExceptionClassification(t *testing.T) {
	cases := map[ExceptionID]Class{
		ExNone:                  ClassAllowed,
		ExPolicyDenied:          ClassCensored,
		ExPolicyRedirect:        ClassCensored,
		ExTCPError:              ClassError,
		ExInternalError:         ClassError,
		ExInvalidRequest:        ClassError,
		ExUnsupportedProtocol:   ClassError,
		ExDNSUnresolvedHostname: ClassError,
		ExDNSServerFailure:      ClassError,
		ExUnsupportedEncoding:   ClassError,
		ExInvalidResponse:       ClassError,
	}
	for ex, want := range cases {
		if got := ex.Class(); got != want {
			t.Errorf("%v.Class() = %v, want %v", ex, got, want)
		}
	}
}

func TestEnumStringsRoundTrip(t *testing.T) {
	for e := ExceptionID(0); int(e) < NumExceptions; e++ {
		got, ok := ParseExceptionID(e.String())
		if !ok || got != e {
			t.Errorf("exception %d: %q -> %v %v", e, e.String(), got, ok)
		}
	}
	for _, f := range []FilterResult{Observed, Proxied, Denied} {
		got, ok := ParseFilterResult(f.String())
		if !ok || got != f {
			t.Errorf("filter %v round trip failed", f)
		}
	}
	if _, ok := ParseExceptionID("nope"); ok {
		t.Error("unknown exception accepted")
	}
	if _, ok := ParseFilterResult("nope"); ok {
		t.Error("unknown filter accepted")
	}
}

func TestProxyHelpers(t *testing.T) {
	var rec Record
	for sg := FirstProxy; sg <= LastProxy; sg++ {
		rec.SetProxy(sg)
		if rec.ProxyIP != ProxyBase+string([]byte{byte('0' + sg/10), byte('0' + sg%10)}) {
			t.Errorf("SetProxy(%d) -> %q", sg, rec.ProxyIP)
		}
		if got := rec.Proxy(); got != sg {
			t.Errorf("Proxy() = %d, want %d", got, sg)
		}
	}
	rec.ProxyIP = "10.0.0.1"
	if rec.Proxy() != 0 {
		t.Error("foreign s-ip mapped to a proxy")
	}
	rec.ProxyIP = "82.137.200.41"
	if rec.Proxy() != 0 {
		t.Error("out-of-range suffix mapped to a proxy")
	}
	rec.ProxyIP = ""
	if rec.Proxy() != 0 {
		t.Error("empty s-ip mapped to a proxy")
	}
}

func TestURLAssembly(t *testing.T) {
	rec := Record{Host: "new-syria.com"}
	if got := rec.URL(); got != "new-syria.com" {
		t.Errorf("URL = %q", got)
	}
	rec.Path = "/page"
	rec.Query = "id=7"
	if got := rec.URL(); got != "new-syria.com/page?id=7" {
		t.Errorf("URL = %q", got)
	}
}

func TestUserKey(t *testing.T) {
	rec := Record{ClientIP: "0.0.0.0", UserAgent: "ua"}
	if rec.UserKey() != "" {
		t.Error("zeroed IP produced a user key")
	}
	rec.ClientIP = "deadbeef"
	if rec.UserKey() != "deadbeef|ua" {
		t.Errorf("UserKey = %q", rec.UserKey())
	}
}

func TestReaderSkipsMalformedAndComments(t *testing.T) {
	rec := sampleRecord()
	good := writeLine(t, &rec)
	input := Header() + "\n" +
		"\n" +
		good + "\n" +
		"garbage,line\n" +
		good + "\n"
	r := NewReader(strings.NewReader(input))
	count := 0
	for {
		_, ok := r.Next()
		if !ok {
			break
		}
		count++
	}
	if r.Err() != nil {
		t.Fatal(r.Err())
	}
	if count != 2 {
		t.Errorf("records = %d, want 2", count)
	}
	if r.Malformed() != 1 {
		t.Errorf("malformed = %d, want 1", r.Malformed())
	}
}

func TestReaderStrict(t *testing.T) {
	r := NewReader(strings.NewReader("bad,line\n"))
	r.SetStrict(true)
	if _, ok := r.Next(); ok {
		t.Fatal("strict reader returned a record for garbage")
	}
	if r.Err() == nil {
		t.Fatal("strict reader swallowed the error")
	}
}

func TestReaderRecordReuse(t *testing.T) {
	rec := sampleRecord()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	rec.Host = "first.com"
	if err := w.Write(&rec); err != nil {
		t.Fatal(err)
	}
	rec.Host = "second.com"
	if err := w.Write(&rec); err != nil {
		t.Fatal(err)
	}
	w.Flush()
	r := NewReader(bytes.NewReader(buf.Bytes()))
	r1, ok := r.Next()
	if !ok {
		t.Fatal("missing first record")
	}
	host1 := r1.Host
	r2, ok := r.Next()
	if !ok {
		t.Fatal("missing second record")
	}
	if r1 != r2 {
		t.Error("reader should reuse the record buffer")
	}
	if host1 != "first.com" || r2.Host != "second.com" {
		t.Errorf("hosts: %q then %q", host1, r2.Host)
	}
}

func TestWriterCount(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	rec := sampleRecord()
	for i := 0; i < 5; i++ {
		if err := w.Write(&rec); err != nil {
			t.Fatal(err)
		}
	}
	if w.Count() != 5 {
		t.Errorf("Count = %d", w.Count())
	}
}

func TestHeaderFieldCount(t *testing.T) {
	h := strings.TrimPrefix(Header(), "#Fields: ")
	if got := len(strings.Fields(h)); got != NumFields {
		t.Errorf("header names %d fields, want %d", got, NumFields)
	}
}

func BenchmarkParseLine(b *testing.B) {
	rec := sampleRecord()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Write(&rec)
	w.Flush()
	line := strings.TrimSuffix(buf.String(), "\n")
	var out Record
	b.ReportAllocs()
	b.SetBytes(int64(len(line)))
	for i := 0; i < b.N; i++ {
		if err := ParseLine(line, &out); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWrite(b *testing.B) {
	rec := sampleRecord()
	w := NewWriter(&discard{})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := w.Write(&rec); err != nil {
			b.Fatal(err)
		}
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }
