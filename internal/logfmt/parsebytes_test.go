package logfmt

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"
)

// diffLines is a grab-bag of well-formed and malformed inputs exercised
// by the ParseLine/ParseBytes differential tests: quoted fields, CR
// handling is covered at the block layer, malformed numerics, bad
// enums, wrong field counts, boundary dates.
var diffLines = []string{
	validSeedLine,
	// Quoted fields with escaped quotes and embedded commas.
	`2011-08-03,14:05:59,10,10.1.2.3,-,-,200,TCP_NC_MISS,1000,300,GET,http,"host,with,commas",80,"/a""b",q=1,html,"Mozilla, like Gecko",82.137.200.42,OBSERVED,none,-,DIRECT,sup,text/html,-`,
	// All-dash optional fields.
	"2011-08-03,00:00:00,-,-,-,-,-,-,-,-,-,-,-,-,-,-,-,-,-,OBSERVED,-,-,-,-,-,-",
	// Leap-second and day-overflow normalization.
	"2011-06-30,23:59:60,1,1.2.3.4,-,-,200,A,1,1,GET,http,h,80,/,-,-,ua,82.137.200.42,OBSERVED,none,-,D,s,t,-",
	"2011-02-31,01:02:03,1,1.2.3.4,-,-,200,A,1,1,GET,http,h,80,/,-,-,ua,82.137.200.42,OBSERVED,none,-,D,s,t,-",
	// Malformed: bad month, bad clock, bad numerics, huge number.
	"2011-13-03,14:05:59,1,1.2.3.4,-,-,200,A,1,1,GET,http,h,80,/,-,-,ua,82.137.200.42,OBSERVED,none,-,D,s,t,-",
	"2011-08-03,25:05:59,1,1.2.3.4,-,-,200,A,1,1,GET,http,h,80,/,-,-,ua,82.137.200.42,OBSERVED,none,-,D,s,t,-",
	"2011-08-03,14:05:59,12x,1.2.3.4,-,-,200,A,1,1,GET,http,h,80,/,-,-,ua,82.137.200.42,OBSERVED,none,-,D,s,t,-",
	"2011-08-03,14:05:59,1,1.2.3.4,-,-,9999,A,1,1,GET,http,h,80,/,-,-,ua,82.137.200.42,OBSERVED,none,-,D,s,t,-",
	"2011-08-03,14:05:59,1,1.2.3.4,-,-,200,A,99999999999,1,GET,http,h,80,/,-,-,ua,82.137.200.42,OBSERVED,none,-,D,s,t,-",
	// Malformed: unknown enums.
	"2011-08-03,14:05:59,1,1.2.3.4,-,-,200,A,1,1,GET,http,h,80,/,-,-,ua,82.137.200.42,MAYBE,none,-,D,s,t,-",
	"2011-08-03,14:05:59,1,1.2.3.4,-,-,200,A,1,1,GET,http,h,80,/,-,-,ua,82.137.200.42,OBSERVED,none,weird_exc,D,s,t,-",
	// Wrong field counts.
	"a,b,c",
	validSeedLine + ",extra",
	validSeedLine + ",x,y,z,w,v,u,t,s",
	// Quoted-field errors.
	`"unterminated`,
	`"closed"junk,b`,
	"",
	"plain",
}

// TestParseBytesMatchesParseLine is the deterministic core of the
// differential fuzz target: both parsers must agree on Record output
// and error text for every seed input.
func TestParseBytesMatchesParseLine(t *testing.T) {
	p := NewParser()
	for _, line := range diffLines {
		var a, b Record
		errA := ParseLine(line, &a)
		errB := p.ParseBytes([]byte(line), &b)
		if (errA == nil) != (errB == nil) {
			t.Fatalf("%q: ParseLine err %v, ParseBytes err %v", line, errA, errB)
		}
		if errA != nil {
			if errA.Error() != errB.Error() {
				t.Errorf("%q: error text diverges:\n line:  %v\n bytes: %v", line, errA, errB)
			}
			continue
		}
		if a != b {
			t.Errorf("%q: records diverge:\n line:  %+v\n bytes: %+v", line, a, b)
		}
	}
}

// TestParseBytesPackageLevel covers the pooled package-level entry point.
func TestParseBytesPackageLevel(t *testing.T) {
	var rec Record
	if err := ParseBytes([]byte(validSeedLine), &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Host == "" || rec.Time == 0 {
		t.Fatalf("suspicious record: %+v", rec)
	}
}

// TestParseBytesNoAliasing pins the lifetime contract: Record fields
// must survive the input buffer being clobbered (block buffers are
// pooled and reused).
func TestParseBytesNoAliasing(t *testing.T) {
	p := NewParser()
	buf := []byte(validSeedLine)
	var rec Record
	if err := p.ParseBytes(buf, &rec); err != nil {
		t.Fatal(err)
	}
	want := rec
	for i := range buf {
		buf[i] = 'X'
	}
	if rec != want || rec.Host == strings.Repeat("X", len(rec.Host)) {
		t.Fatalf("record fields alias the input buffer: %+v", rec)
	}
	host, path := rec.Host, rec.Path
	if err := p.ParseBytes([]byte(validSeedLine), &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Host != host || rec.Path != path {
		t.Fatalf("reparse changed fields: %q %q vs %q %q", rec.Host, rec.Path, host, path)
	}
}

// TestParseBytesDateCache sweeps dates (including day overflow handled
// by time.Date normalization) to verify the one-entry date cache and
// the arithmetic clock path agree with ParseLine's time.Date result.
func TestParseBytesDateCache(t *testing.T) {
	p := NewParser()
	var rec, ref Record
	for year := 1999; year <= 2013; year++ {
		for _, md := range [][2]int{{1, 1}, {2, 28}, {2, 29}, {2, 31}, {3, 1}, {6, 30}, {12, 31}} {
			for _, clk := range []string{"00:00:00", "12:34:56", "23:59:59", "23:59:60"} {
				date := fmt.Sprintf("%04d-%02d-%02d", year, md[0], md[1])
				line := date + "," + clk + ",1,1.2.3.4,-,-,200,A,1,1,GET,http,h,80,/,-,-,ua,82.137.200.42,OBSERVED,none,-,D,s,t,-"
				if err := ParseLine(line, &ref); err != nil {
					t.Fatal(err)
				}
				// Parse twice: once on a cold cache, once warm.
				for i := 0; i < 2; i++ {
					if err := p.ParseBytes([]byte(line), &rec); err != nil {
						t.Fatal(err)
					}
					if rec.Time != ref.Time {
						t.Fatalf("%s %s (pass %d): got %d (%s), want %d (%s)", date, clk, i,
							rec.Time, time.Unix(rec.Time, 0).UTC(), ref.Time, time.Unix(ref.Time, 0).UTC())
					}
				}
			}
		}
	}
}

// TestParseBytesInternCaps floods the parser with distinct values and
// checks the interning table stays bounded.
func TestParseBytesInternCaps(t *testing.T) {
	p := NewParser()
	var rec Record
	for i := 0; i < maxInternEntries/16; i++ {
		host := fmt.Sprintf("h%08d.%060d.example.com", i, i)
		line := "2011-08-03,14:05:59,1,1.2.3.4,-,-,200,A,1,1,GET,http," + host + ",80,/,-,-,ua,82.137.200.42,OBSERVED,none,-,D,s,t,-"
		if err := p.ParseBytes([]byte(line), &rec); err != nil {
			t.Fatal(err)
		}
		if rec.Host != host {
			t.Fatalf("host %q != %q", rec.Host, host)
		}
	}
	if p.internBytes > maxInternBytes {
		t.Fatalf("intern table grew past byte cap: %d > %d", p.internBytes, maxInternBytes)
	}
	if len(p.intern) > maxInternEntries {
		t.Fatalf("intern table grew past entry cap: %d", len(p.intern))
	}
}

// TestParseBytesAllocs is the allocation regression guard for the hot
// path: at most one allocation per record (the per-record arena string)
// on warm steady state.
func TestParseBytesAllocs(t *testing.T) {
	p := NewParser()
	lines := [][]byte{
		[]byte(validSeedLine),
		[]byte("2011-08-03,14:06:01,4,10.9.8.7,-,-,200,TCP_HIT,512,128,GET,http,example.org,80,/media/a.png,-,png,Mozilla/5.0,82.137.200.43,PROXIED,none,-,DIRECT,origin,image/png,-"),
	}
	var rec Record
	for _, l := range lines { // warm the intern table
		if err := p.ParseBytes(l, &rec); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(200, func() {
		for _, l := range lines {
			if err := p.ParseBytes(l, &rec); err != nil {
				t.Fatal(err)
			}
		}
	})
	if perRec := avg / float64(len(lines)); perRec > 1 {
		t.Fatalf("ParseBytes allocates %.2f/record, want <= 1", perRec)
	}
}

// TestParseBlockReleaseSafety parses a block, releases and clobbers the
// buffer, and checks the retained records still read correctly — the
// contract the serve ingest path depends on.
func TestParseBlockReleaseSafety(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	want := make([]Record, 0, 64)
	for i := 0; i < 64; i++ {
		rec := sampleRecord()
		rec.Host = fmt.Sprintf("host-%02d.example.com", i)
		rec.Path = fmt.Sprintf("/p/%02d", i)
		rec.Time += int64(i)
		w.Write(&rec)
		want = append(want, rec)
	}
	w.Flush()
	data := getBlockBuf(buf.Len())[:buf.Len()]
	copy(data, buf.Bytes())
	blk := Block{Data: data, FirstLine: 1}
	var got []Record
	res, err := ParseBlock(blk, true, func(r *Record) { got = append(got, *r) })
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		data[i] = 0xEE
	}
	blk.Release()
	if res.Records != len(want) {
		t.Fatalf("parsed %d records, want %d", res.Records, len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d diverges after buffer clobber:\n got  %+v\n want %+v", i, got[i], want[i])
		}
	}
}

func BenchmarkParseBytes(b *testing.B) {
	p := NewParser()
	line := []byte(validSeedLine)
	var out Record
	b.ReportAllocs()
	b.SetBytes(int64(len(line)))
	for i := 0; i < b.N; i++ {
		if err := p.ParseBytes(line, &out); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParseBlockBytes(b *testing.B) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	rec := sampleRecord()
	for i := 0; i < 4096; i++ {
		rec.Time++
		w.Write(&rec)
	}
	w.Flush()
	blk := Block{Data: buf.Bytes(), FirstLine: 1}
	b.ReportAllocs()
	b.SetBytes(int64(buf.Len()))
	for i := 0; i < b.N; i++ {
		if _, err := ParseBlock(blk, true, func(*Record) {}); err != nil {
			b.Fatal(err)
		}
	}
}
