// Package logfmt models the Blue Coat SG-9000 access log format studied in
// the paper: a CSV line of 26 ELFF fields per processed request, including
// the sc-filter-result / x-exception-id pair that drives the paper's whole
// request classification (§3.2–3.3).
//
// The package provides a typed Record, the FilterResult / ExceptionID /
// Class enums with the paper's exact semantics, a fast line parser that
// decodes into a caller-owned Record (gopacket's DecodingLayerParser
// pattern: no allocation per line beyond field substrings), and a writer
// that produces byte-identical lines for round-tripping.
package logfmt

import "time"

// FilterResult is the sc-filter-result field: the action class the proxy
// assigned to the request (§3.2). Note the paper's caveat that this
// reflects the action the proxy performs, not the censorship outcome.
type FilterResult uint8

const (
	// Observed means content is fetched from the Origin Content Server
	// and served to the client.
	Observed FilterResult = iota
	// Proxied means the request was answered from the proxy cache; the
	// outcome depends on the cached value.
	Proxied
	// Denied means the request raised an exception and is not served.
	Denied
)

// String returns the log-file spelling of the filter result.
func (f FilterResult) String() string {
	switch f {
	case Observed:
		return "OBSERVED"
	case Proxied:
		return "PROXIED"
	case Denied:
		return "DENIED"
	}
	return "UNKNOWN"
}

// ParseFilterResult parses the log spelling; ok is false for unknown text.
func ParseFilterResult(s string) (FilterResult, bool) {
	switch s {
	case "OBSERVED":
		return Observed, true
	case "PROXIED":
		return Proxied, true
	case "DENIED":
		return Denied, true
	}
	return Observed, false
}

// ExceptionID is the x-exception-id field. ExNone renders as "-" in the
// logs. The value set is exactly the one reported in Table 3.
type ExceptionID uint8

const (
	ExNone ExceptionID = iota
	ExPolicyDenied
	ExPolicyRedirect
	ExTCPError
	ExInternalError
	ExInvalidRequest
	ExUnsupportedProtocol
	ExDNSUnresolvedHostname
	ExDNSServerFailure
	ExUnsupportedEncoding
	ExInvalidResponse
	exceptionCount // sentinel; keep last
)

// NumExceptions is the number of distinct exception values incl. ExNone.
const NumExceptions = int(exceptionCount)

var exceptionNames = [...]string{
	ExNone:                  "-",
	ExPolicyDenied:          "policy_denied",
	ExPolicyRedirect:        "policy_redirect",
	ExTCPError:              "tcp_error",
	ExInternalError:         "internal_error",
	ExInvalidRequest:        "invalid_request",
	ExUnsupportedProtocol:   "unsupported_protocol",
	ExDNSUnresolvedHostname: "dns_unresolved_hostname",
	ExDNSServerFailure:      "dns_server_failure",
	ExUnsupportedEncoding:   "unsupported_encoding",
	ExInvalidResponse:       "invalid_response",
}

// String returns the log-file spelling of the exception.
func (e ExceptionID) String() string {
	if int(e) < len(exceptionNames) {
		return exceptionNames[e]
	}
	return "unknown_exception"
}

var exceptionByName = func() map[string]ExceptionID {
	m := make(map[string]ExceptionID, len(exceptionNames))
	for i, n := range exceptionNames {
		m[n] = ExceptionID(i)
	}
	return m
}()

// ParseExceptionID parses the log spelling; ok is false for unknown text.
func ParseExceptionID(s string) (ExceptionID, bool) {
	e, ok := exceptionByName[s]
	return e, ok
}

// Class is the paper's §3.3 request classification derived from
// x-exception-id: Allowed, Censored (policy_denied / policy_redirect) or
// Error (every other exception).
type Class uint8

const (
	ClassAllowed Class = iota
	ClassCensored
	ClassError
)

// String names the class.
func (c Class) String() string {
	switch c {
	case ClassAllowed:
		return "allowed"
	case ClassCensored:
		return "censored"
	case ClassError:
		return "error"
	}
	return "unknown"
}

// Class returns the paper's classification for an exception value.
func (e ExceptionID) Class() Class {
	switch e {
	case ExNone:
		return ClassAllowed
	case ExPolicyDenied, ExPolicyRedirect:
		return ClassCensored
	default:
		return ClassError
	}
}

// IsCensorship reports whether the exception encodes a policy decision.
func (e ExceptionID) IsCensorship() bool { return e.Class() == ClassCensored }

// IsError reports whether the exception encodes a network/protocol error.
func (e ExceptionID) IsError() bool { return e.Class() == ClassError }

// ProxyBase is the common prefix of the seven proxies' IP addresses: the
// paper reports s-ip in 82.137.200.42 – 82.137.200.48 and names proxies by
// suffix (SG-42 … SG-48).
const ProxyBase = "82.137.200."

const (
	// FirstProxy and LastProxy bound the SG- suffix range.
	FirstProxy = 42
	LastProxy  = 48
	// NumProxies is the size of the cluster in the leaked data.
	NumProxies = LastProxy - FirstProxy + 1
)

// Record is one parsed log line. Field names follow the ELFF headers in
// Table 2 of the paper. String fields hold "" where the log holds "-".
type Record struct {
	Time        int64  // seconds since Unix epoch (date + time fields, UTC)
	TimeTaken   uint32 // time-taken, milliseconds
	ClientIP    string // c-ip: "0.0.0.0" (suppressed) or a hash (Duser period)
	Username    string // cs-username
	AuthGroup   string // cs-auth-group
	Status      uint16 // sc-status
	SAction     string // s-action, e.g. TCP_NC_MISS, TCP_DENIED, tcp_policy_redirect
	ScBytes     uint32 // sc-bytes
	CsBytes     uint32 // cs-bytes
	Method      string // cs-method: GET/POST/CONNECT/...
	Scheme      string // cs-uri-scheme: http/https/tcp/...
	Host        string // cs-host, lowercase
	Port        uint16 // cs-uri-port
	Path        string // cs-uri-path
	Query       string // cs-uri-query (without '?')
	Ext         string // cs-uri-extension (without dot)
	UserAgent   string // cs(User-Agent)
	ProxyIP     string // s-ip (82.137.200.42 .. .48)
	Filter      FilterResult
	Categories  string // cs-categories as logged ("unavailable", "none", "Blocked sites; unavailable", ...)
	Exception   ExceptionID
	Hierarchy   string // s-hierarchy
	Supplier    string // s-supplier-name
	ContentType string // rs(Content-Type)
	Referer     string // cs(Referer)
}

// NumFields is the column count of the log format.
const NumFields = 26

// Proxy returns the SG suffix (42..48) parsed from s-ip, or 0 if the field
// does not name one of the cluster's proxies.
func (r *Record) Proxy() int {
	ip := r.ProxyIP
	if len(ip) != len(ProxyBase)+2 || ip[:len(ProxyBase)] != ProxyBase {
		return 0
	}
	d1, d2 := ip[len(ProxyBase)], ip[len(ProxyBase)+1]
	if d1 < '0' || d1 > '9' || d2 < '0' || d2 > '9' {
		return 0
	}
	n := int(d1-'0')*10 + int(d2-'0')
	if n < FirstProxy || n > LastProxy {
		return 0
	}
	return n
}

// SetProxy sets s-ip from an SG suffix.
func (r *Record) SetProxy(sg int) {
	r.ProxyIP = ProxyBase + string([]byte{byte('0' + sg/10), byte('0' + sg%10)})
}

// Class returns the paper's request classification.
func (r *Record) Class() Class { return r.Exception.Class() }

// IsCensored reports whether the request was censored by policy.
func (r *Record) IsCensored() bool { return r.Exception.IsCensorship() }

// IsDeniedAny reports whether the request was not served (any exception).
func (r *Record) IsDeniedAny() bool { return r.Exception != ExNone }

// IsProxied reports whether the answer came from the cache.
func (r *Record) IsProxied() bool { return r.Filter == Proxied }

// URL reassembles the request URL the way the filtering engine sees it:
// host + path + "?" + query. Scheme and port are omitted, matching the
// string-matching surface described in §5.4 (cs-host, cs-uri-path,
// cs-uri-query "fully characterize the request").
func (r *Record) URL() string {
	n := len(r.Host) + len(r.Path)
	if r.Query != "" {
		n += 1 + len(r.Query)
	}
	b := make([]byte, 0, n)
	b = append(b, r.Host...)
	b = append(b, r.Path...)
	if r.Query != "" {
		b = append(b, '?')
		b = append(b, r.Query...)
	}
	return string(b)
}

// UserKey approximates a unique user the way §4 does: the pair
// (c-ip, cs-user-agent). Returns "" when the client IP was suppressed
// (zeroed), in which case no user analysis is possible.
func (r *Record) UserKey() string {
	if r.ClientIP == "" || r.ClientIP == "0.0.0.0" {
		return ""
	}
	return r.ClientIP + "|" + r.UserAgent
}

// Timestamp converts the record time to a time.Time in UTC.
func (r *Record) Timestamp() time.Time { return time.Unix(r.Time, 0).UTC() }
