package logfmt

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"sync"
)

// This file is the block ingestion layer: instead of decoding a stream
// line by line on one goroutine (Reader), a BlockReader slices the input
// into large line-aligned byte blocks that can be parsed concurrently by
// a worker pool (see internal/pipeline's RunBlocks). The reader does no
// parsing at all — just boundary snapping — so a single big file is no
// longer limited by one decoding core.

// DefaultBlockSize is the target block size. Big enough that per-block
// overhead (pool round-trips, worker handoff) amortizes over thousands
// of lines; small enough that a worker pool stays load-balanced near
// the end of a file.
const DefaultBlockSize = 256 * 1024

// MaxLineLen bounds a single physical line, mirroring Reader's 1 MiB
// scanner buffer cap. A longer line is a terminal ErrLineTooLong.
const MaxLineLen = 1 << 20

// ErrLineTooLong is returned (wrapped, with a line number) by BlockReader
// when one line exceeds MaxLineLen.
var ErrLineTooLong = errors.New("logfmt: line too long")

// blockBufPool recycles default-sized block buffers between the reader
// and the workers that Release them after parsing.
var blockBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, DefaultBlockSize)
		return &b
	},
}

func getBlockBuf(size int) []byte {
	if size == DefaultBlockSize {
		return *(blockBufPool.Get().(*[]byte))
	}
	return make([]byte, size)
}

func putBlockBuf(b []byte) {
	if cap(b) == DefaultBlockSize {
		b = b[:cap(b)]
		blockBufPool.Put(&b)
	}
}

// Block is one line-aligned chunk of a log stream: every line in Data is
// complete (the final line may lack its trailing newline only at end of
// stream). Blocks own a pooled buffer; call Release once the data has
// been consumed.
type Block struct {
	// Data holds the raw bytes. Valid until Release.
	Data []byte
	// FirstLine is the 1-based physical line number of the first line in
	// Data within the whole stream, for malformed-line attribution.
	FirstLine int
}

// Release returns the block's buffer to the pool. The caller must not
// touch Data afterwards.
func (b *Block) Release() {
	putBlockBuf(b.Data)
	b.Data = nil
}

// BlockReader slices an io.Reader into line-aligned Blocks of roughly the
// configured size, carrying the partial tail line of each read forward
// into the next block. It does not parse; pair it with ParseBlock.
type BlockReader struct {
	r     io.Reader
	size  int
	carry []byte // partial final line of the previous block
	line  int    // physical lines handed out so far
	err   error
	done  bool
}

// NewBlockReader wraps r with DefaultBlockSize blocks.
func NewBlockReader(r io.Reader) *BlockReader {
	return NewBlockReaderSize(r, DefaultBlockSize)
}

// NewBlockReaderSize wraps r with a custom block size (tests use tiny
// sizes to force records across block boundaries). size < 1 uses the
// default.
func NewBlockReaderSize(r io.Reader, size int) *BlockReader {
	if size < 1 {
		size = DefaultBlockSize
	}
	return &BlockReader{r: r, size: size}
}

// Next returns the next block, or ok=false at end of stream or on error
// (see Err). Ownership of the block's buffer passes to the caller, who
// must Release it; successive blocks never share a buffer, so they may be
// consumed concurrently.
func (b *BlockReader) Next() (Block, bool) {
	if b.err != nil || b.done {
		return Block{}, false
	}
	buf := getBlockBuf(b.size)
	if len(b.carry) >= len(buf) {
		// A partial line already overflows the block size (it grew past a
		// previous block): give it room to finish.
		putBlockBuf(buf)
		buf = make([]byte, len(b.carry)+b.size)
	}
	fill := copy(buf, b.carry)
	b.carry = b.carry[:0]
	for {
		for fill < len(buf) {
			n, rerr := b.r.Read(buf[fill:])
			fill += n
			if rerr != nil {
				b.done = true
				if rerr != io.EOF {
					b.err = rerr
					// Like Reader, do not hand out the trailing partial
					// line of a stream that died mid-line.
					if i := bytes.LastIndexByte(buf[:fill], '\n'); i >= 0 {
						fill = i + 1
					} else {
						fill = 0
					}
				}
				if fill == 0 {
					putBlockBuf(buf)
					return Block{}, false
				}
				blk := Block{Data: buf[:fill], FirstLine: b.line + 1}
				b.line += countLines(buf[:fill])
				return blk, true
			}
		}
		// Buffer full: emit everything up to the last newline and carry
		// the partial tail line into the next block.
		if i := bytes.LastIndexByte(buf[:fill], '\n'); i >= 0 {
			b.carry = append(b.carry[:0], buf[i+1:fill]...)
			blk := Block{Data: buf[:i+1], FirstLine: b.line + 1}
			b.line += countLines(buf[:i+1])
			return blk, true
		}
		// No newline in the whole buffer: one line exceeds the block
		// size. Grow (rare) until it fits or trips the line cap.
		if fill >= MaxLineLen {
			b.err = fmt.Errorf("line %d: %w", b.line+1, ErrLineTooLong)
			putBlockBuf(buf)
			return Block{}, false
		}
		grown := make([]byte, 2*len(buf))
		copy(grown, buf[:fill])
		putBlockBuf(buf)
		buf = grown
	}
}

// Err returns the terminal error, nil at clean end of stream.
func (b *BlockReader) Err() error { return b.err }

// Lines returns the number of physical lines handed out so far.
func (b *BlockReader) Lines() int { return b.line }

// countLines counts the physical lines in a block: one per newline, plus
// an unterminated final line.
func countLines(data []byte) int {
	n := bytes.Count(data, []byte{'\n'})
	if len(data) > 0 && data[len(data)-1] != '\n' {
		n++
	}
	return n
}

// BlockResult summarizes one parsed block.
type BlockResult struct {
	// Lines is the number of physical lines in the block, including
	// comments, blanks and malformed lines.
	Lines int
	// Records is the number of well-formed records emitted.
	Records int
	// Malformed is the number of skipped malformed lines (in strict mode,
	// at most 1: parsing stops at the first).
	Malformed int
}

// ParseBlock decodes every line of a block, calling emit for each
// well-formed record. Parsing runs directly on the block's bytes via a
// pooled Parser (see parsebytes.go): repetitive field values resolve
// through the parser's interning table and the high-cardinality tail is
// materialized into one small per-record string, so no Record field ever
// aliases blk.Data — the caller may Release the buffer the moment
// ParseBlock returns while records retain their field strings.
//
// Semantics match Reader line for line: '#' comments and blank lines are
// skipped (after trailing-\r stripping), malformed lines are counted and
// skipped, and in strict mode the first malformed line aborts with a
// "line N: ..." error using the block's absolute line numbering. The
// Record passed to emit is reused between lines; emit must copy the
// struct (retaining its field strings is fine) if it outlives the call.
func ParseBlock(blk Block, strict bool, emit func(*Record)) (BlockResult, error) {
	p := parserPool.Get().(*Parser)
	defer parserPool.Put(p)
	data := blk.Data
	var res BlockResult
	var rec Record
	ln := blk.FirstLine - 1
	for len(data) > 0 {
		var line []byte
		if i := bytes.IndexByte(data, '\n'); i >= 0 {
			line, data = data[:i], data[i+1:]
		} else {
			line, data = data, nil
		}
		ln++
		res.Lines++
		if len(line) > 0 && line[len(line)-1] == '\r' {
			line = line[:len(line)-1]
		}
		if len(line) == 0 || line[0] == '#' { // ELFF comment/header lines
			continue
		}
		if err := p.ParseBytes(line, &rec); err != nil {
			res.Malformed++
			if strict {
				return res, fmt.Errorf("line %d: %w", ln, err)
			}
			continue
		}
		emit(&rec)
		res.Records++
	}
	return res, nil
}
