package logfmt

import (
	"bufio"
	"io"
	"strconv"
	"strings"
	"time"
)

// Writer emits Records as CSV lines in the 26-field order ParseLine
// expects. It buffers internally; call Flush before closing the sink.
type Writer struct {
	w   *bufio.Writer
	buf []byte
	n   uint64
}

// NewWriter wraps w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriterSize(w, 256*1024), buf: make([]byte, 0, 512)}
}

// Header returns the ELFF-style header comment naming all fields, written
// by tools for self-describing corpora (the Reader skips '#' lines).
func Header() string {
	return "#Fields: date time time-taken c-ip cs-username cs-auth-group sc-status " +
		"s-action sc-bytes cs-bytes cs-method cs-uri-scheme cs-host cs-uri-port " +
		"cs-uri-path cs-uri-query cs-uri-extension cs(User-Agent) s-ip " +
		"sc-filter-result cs-categories x-exception-id s-hierarchy " +
		"s-supplier-name rs(Content-Type) cs(Referer)"
}

// WriteHeader writes the header comment line.
func (w *Writer) WriteHeader() error {
	if _, err := w.w.WriteString(Header()); err != nil {
		return err
	}
	return w.w.WriteByte('\n')
}

// Write appends one record.
func (w *Writer) Write(rec *Record) error {
	b := w.buf[:0]
	t := time.Unix(rec.Time, 0).UTC()
	b = appendDate(b, t)
	b = append(b, ',')
	b = appendClock(b, t)
	b = append(b, ',')
	b = strconv.AppendUint(b, uint64(rec.TimeTaken), 10)
	b = appendField(b, rec.ClientIP)
	b = appendField(b, rec.Username)
	b = appendField(b, rec.AuthGroup)
	b = append(b, ',')
	b = strconv.AppendUint(b, uint64(rec.Status), 10)
	b = appendField(b, rec.SAction)
	b = append(b, ',')
	b = strconv.AppendUint(b, uint64(rec.ScBytes), 10)
	b = append(b, ',')
	b = strconv.AppendUint(b, uint64(rec.CsBytes), 10)
	b = appendField(b, rec.Method)
	b = appendField(b, rec.Scheme)
	b = appendField(b, rec.Host)
	b = append(b, ',')
	b = strconv.AppendUint(b, uint64(rec.Port), 10)
	b = appendField(b, rec.Path)
	b = appendField(b, rec.Query)
	b = appendField(b, rec.Ext)
	b = appendField(b, rec.UserAgent)
	b = appendField(b, rec.ProxyIP)
	b = appendField(b, rec.Filter.String())
	b = appendField(b, rec.Categories)
	b = appendField(b, rec.Exception.String())
	b = appendField(b, rec.Hierarchy)
	b = appendField(b, rec.Supplier)
	b = appendField(b, rec.ContentType)
	b = appendField(b, rec.Referer)
	b = append(b, '\n')
	w.buf = b[:0]
	w.n++
	_, err := w.w.Write(b)
	return err
}

// Count returns the number of records written.
func (w *Writer) Count() uint64 { return w.n }

// Flush drains the internal buffer.
func (w *Writer) Flush() error { return w.w.Flush() }

func appendField(b []byte, s string) []byte {
	b = append(b, ',')
	if s == "" {
		return append(b, '-')
	}
	if strings.IndexByte(s, ',') < 0 && strings.IndexByte(s, '"') < 0 && strings.IndexByte(s, '\n') < 0 {
		return append(b, s...)
	}
	b = append(b, '"')
	for i := 0; i < len(s); i++ {
		if s[i] == '"' {
			b = append(b, '"', '"')
		} else {
			b = append(b, s[i])
		}
	}
	return append(b, '"')
}

func appendDate(b []byte, t time.Time) []byte {
	y, m, d := t.Date()
	b = append4(b, y)
	b = append(b, '-')
	b = append2(b, int(m))
	b = append(b, '-')
	return append2(b, d)
}

func appendClock(b []byte, t time.Time) []byte {
	b = append2(b, t.Hour())
	b = append(b, ':')
	b = append2(b, t.Minute())
	b = append(b, ':')
	return append2(b, t.Second())
}

func append2(b []byte, v int) []byte {
	return append(b, byte('0'+v/10), byte('0'+v%10))
}

func append4(b []byte, v int) []byte {
	return append(b, byte('0'+v/1000%10), byte('0'+v/100%10), byte('0'+v/10%10), byte('0'+v%10))
}
