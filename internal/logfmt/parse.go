package logfmt

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strings"
	"time"
)

// Parse errors. ParseLine wraps them with positional context.
var (
	ErrFieldCount = errors.New("logfmt: wrong field count")
	ErrBadTime    = errors.New("logfmt: malformed date/time")
	ErrBadNumber  = errors.New("logfmt: malformed numeric field")
	ErrBadEnum    = errors.New("logfmt: unknown enum value")
)

// ParseLine decodes one CSV log line into rec, overwriting all fields. The
// Record's string fields alias substrings of line, so the caller must not
// mutate line afterwards; this is what makes bulk scans cheap (one string
// header per field, no byte copying).
//
// Lines are the 26-field format produced by Writer. Quoted fields (RFC 4180
// style, used when a value contains a comma or quote) are supported but
// take a slower copying path.
func ParseLine(line string, rec *Record) error {
	var fields [NumFields]string
	n, err := splitCSV(line, fields[:])
	if err != nil {
		return err
	}
	if n != NumFields {
		return fmt.Errorf("%w: got %d, want %d", ErrFieldCount, n, NumFields)
	}

	t, err := parseDateTime(fields[0], fields[1])
	if err != nil {
		return err
	}
	rec.Time = t

	tt, err := atou32(fields[2])
	if err != nil {
		return fmt.Errorf("%w: time-taken %q", ErrBadNumber, fields[2])
	}
	rec.TimeTaken = tt

	rec.ClientIP = undash(fields[3])
	rec.Username = undash(fields[4])
	rec.AuthGroup = undash(fields[5])

	st, err := atou32(fields[6])
	if err != nil || st > 999 {
		return fmt.Errorf("%w: sc-status %q", ErrBadNumber, fields[6])
	}
	rec.Status = uint16(st)

	rec.SAction = undash(fields[7])

	sb, err := atou32(fields[8])
	if err != nil {
		return fmt.Errorf("%w: sc-bytes %q", ErrBadNumber, fields[8])
	}
	rec.ScBytes = sb
	cb, err := atou32(fields[9])
	if err != nil {
		return fmt.Errorf("%w: cs-bytes %q", ErrBadNumber, fields[9])
	}
	rec.CsBytes = cb

	rec.Method = undash(fields[10])
	rec.Scheme = undash(fields[11])
	rec.Host = undash(fields[12])

	pt, err := atou32(fields[13])
	if err != nil || pt > 65535 {
		return fmt.Errorf("%w: cs-uri-port %q", ErrBadNumber, fields[13])
	}
	rec.Port = uint16(pt)

	rec.Path = undash(fields[14])
	rec.Query = undash(fields[15])
	rec.Ext = undash(fields[16])
	rec.UserAgent = undash(fields[17])
	rec.ProxyIP = undash(fields[18])

	fr, ok := ParseFilterResult(fields[19])
	if !ok {
		return fmt.Errorf("%w: sc-filter-result %q", ErrBadEnum, fields[19])
	}
	rec.Filter = fr

	rec.Categories = undash(fields[20])

	ex, ok := ParseExceptionID(fields[21])
	if !ok {
		return fmt.Errorf("%w: x-exception-id %q", ErrBadEnum, fields[21])
	}
	rec.Exception = ex

	rec.Hierarchy = undash(fields[22])
	rec.Supplier = undash(fields[23])
	rec.ContentType = undash(fields[24])
	rec.Referer = undash(fields[25])
	return nil
}

func undash(s string) string {
	if s == "-" {
		return ""
	}
	return s
}

// splitCSV splits line into dst, returning the number of fields. The fast
// path (no quotes anywhere) is a single scan producing substrings.
func splitCSV(line string, dst []string) (int, error) {
	if strings.IndexByte(line, '"') < 0 {
		n := 0
		start := 0
		for i := 0; i < len(line); i++ {
			if line[i] == ',' {
				if n >= len(dst) {
					return n + 1, nil // caller reports count mismatch
				}
				dst[n] = line[start:i]
				n++
				start = i + 1
			}
		}
		if n >= len(dst) {
			return n + 1, nil
		}
		dst[n] = line[start:]
		return n + 1, nil
	}
	return splitCSVQuoted(line, dst)
}

func splitCSVQuoted(line string, dst []string) (int, error) {
	n := 0
	i := 0
	for {
		if n >= len(dst) {
			return n + 1, nil
		}
		if i < len(line) && line[i] == '"' {
			// Quoted field: unescape "" -> ".
			var b strings.Builder
			i++
			for {
				if i >= len(line) {
					return 0, errors.New("logfmt: unterminated quoted field")
				}
				c := line[i]
				if c == '"' {
					if i+1 < len(line) && line[i+1] == '"' {
						b.WriteByte('"')
						i += 2
						continue
					}
					i++
					break
				}
				b.WriteByte(c)
				i++
			}
			dst[n] = b.String()
			n++
			if i >= len(line) {
				return n, nil
			}
			if line[i] != ',' {
				return 0, errors.New("logfmt: garbage after closing quote")
			}
			i++
			continue
		}
		j := i
		for j < len(line) && line[j] != ',' {
			j++
		}
		dst[n] = line[i:j]
		n++
		if j >= len(line) {
			return n, nil
		}
		i = j + 1
	}
}

// parseDateTime parses "2011-08-03" + "14:05:59" into Unix seconds (UTC)
// without time.Parse (which dominates profile time on bulk scans).
func parseDateTime(date, clock string) (int64, error) {
	if len(date) != 10 || date[4] != '-' || date[7] != '-' ||
		len(clock) != 8 || clock[2] != ':' || clock[5] != ':' {
		return 0, fmt.Errorf("%w: %q %q", ErrBadTime, date, clock)
	}
	year, ok1 := atoiFixed(date[0:4])
	month, ok2 := atoiFixed(date[5:7])
	day, ok3 := atoiFixed(date[8:10])
	hh, ok4 := atoiFixed(clock[0:2])
	mm, ok5 := atoiFixed(clock[3:5])
	ss, ok6 := atoiFixed(clock[6:8])
	if !(ok1 && ok2 && ok3 && ok4 && ok5 && ok6) ||
		month < 1 || month > 12 || day < 1 || day > 31 ||
		hh > 23 || mm > 59 || ss > 60 {
		return 0, fmt.Errorf("%w: %q %q", ErrBadTime, date, clock)
	}
	return time.Date(year, time.Month(month), day, hh, mm, ss, 0, time.UTC).Unix(), nil
}

func atoiFixed(s string) (int, bool) {
	n := 0
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c < '0' || c > '9' {
			return 0, false
		}
		n = n*10 + int(c-'0')
	}
	return n, true
}

func atou32(s string) (uint32, error) {
	if s == "" || s == "-" {
		return 0, nil
	}
	if len(s) > 10 {
		return 0, ErrBadNumber
	}
	var n uint64
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c < '0' || c > '9' {
			return 0, ErrBadNumber
		}
		n = n*10 + uint64(c-'0')
		if n > 0xffffffff {
			return 0, ErrBadNumber
		}
	}
	return uint32(n), nil
}

// Reader streams Records from a log file. It tolerates (counts and skips)
// malformed lines, since real-world leak data is never pristine; see
// Malformed() after scanning.
type Reader struct {
	sc        *bufio.Scanner
	rec       Record
	err       error
	line      int
	malformed int
	strict    bool
}

// NewReader wraps r. The internal buffer grows to handle long URLs.
func NewReader(r io.Reader) *Reader {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	return &Reader{sc: sc}
}

// SetStrict makes Next fail on the first malformed line instead of
// skipping it.
func (r *Reader) SetStrict(strict bool) { r.strict = strict }

// Next advances to the next well-formed record, returning false at EOF or
// on error. The returned pointer is reused across calls; copy the Record
// if it must outlive the iteration step.
func (r *Reader) Next() (*Record, bool) {
	for r.sc.Scan() {
		r.line++
		line := r.sc.Text()
		if line == "" || line[0] == '#' { // ELFF comment/header lines
			continue
		}
		if err := ParseLine(line, &r.rec); err != nil {
			r.malformed++
			if r.strict {
				r.err = fmt.Errorf("line %d: %w", r.line, err)
				return nil, false
			}
			continue
		}
		return &r.rec, true
	}
	r.err = r.sc.Err()
	return nil, false
}

// Err returns the terminal error, if any (nil at clean EOF).
func (r *Reader) Err() error { return r.err }

// Malformed returns the number of skipped malformed lines.
func (r *Reader) Malformed() int { return r.malformed }

// Lines returns the number of physical lines consumed so far.
func (r *Reader) Lines() int { return r.line }
