package logfmt

import (
	"errors"
	"io"
	"strings"
	"testing"
	"time"
)

// testRecord builds a valid record with host variation i.
func testRecord(i int) Record {
	return Record{
		Time:      time.Date(2011, 8, 3, 14, 5, 59, 0, time.UTC).Unix() + int64(i),
		TimeTaken: 10,
		ClientIP:  "10.1.2.3",
		Status:    200,
		SAction:   "TCP_NC_MISS",
		ScBytes:   1000,
		CsBytes:   300,
		Method:    "GET",
		Scheme:    "http",
		Host:      "host-" + string(rune('a'+i%26)) + ".example.com",
		Port:      80,
		Path:      "/path/" + strings.Repeat("x", i%7),
		UserAgent: "Mozilla/5.0",
		ProxyIP:   ProxyBase + "42",
		Filter:    Observed,
	}
}

// corpusLines renders n records as CSV, with a header comment first.
func corpusLines(t testing.TB, n int) string {
	t.Helper()
	var sb strings.Builder
	w := NewWriter(&sb)
	if err := w.WriteHeader(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		rec := testRecord(i)
		if err := w.Write(&rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

// scanAll drains input through the line Reader, returning records and
// counters — the reference semantics the block layer must reproduce.
func scanAll(t testing.TB, input string, strict bool) (recs []Record, lines, malformed int, err error) {
	t.Helper()
	r := NewReader(strings.NewReader(input))
	r.SetStrict(strict)
	for {
		rec, ok := r.Next()
		if !ok {
			break
		}
		recs = append(recs, *rec)
	}
	return recs, r.Lines(), r.Malformed(), r.Err()
}

// blockAll drains input through BlockReader+ParseBlock at the given block
// size, serially (block order preserved).
func blockAll(t testing.TB, input string, size int, strict bool) (recs []Record, lines, malformed int, err error) {
	t.Helper()
	br := NewBlockReaderSize(strings.NewReader(input), size)
	for {
		blk, ok := br.Next()
		if !ok {
			break
		}
		res, perr := ParseBlock(blk, strict, func(rec *Record) {
			recs = append(recs, *rec)
		})
		blk.Release()
		lines += res.Lines
		malformed += res.Malformed
		if perr != nil {
			return recs, lines, malformed, perr
		}
	}
	return recs, lines, malformed, br.Err()
}

// Every block size — including tiny ones that split single records across
// many blocks — must reproduce the line Reader exactly: same records,
// same line count, same malformed count.
func TestBlockReaderMatchesScannerAcrossSizes(t *testing.T) {
	input := corpusLines(t, 200)
	want, wantLines, wantMal, werr := scanAll(t, input, false)
	if werr != nil {
		t.Fatal(werr)
	}
	for _, size := range []int{1, 7, 64, 300, 4096, 1 << 20} {
		got, lines, mal, err := blockAll(t, input, size, false)
		if err != nil {
			t.Fatalf("size %d: %v", size, err)
		}
		if lines != wantLines || mal != wantMal {
			t.Fatalf("size %d: lines/malformed = %d/%d, want %d/%d", size, lines, mal, wantLines, wantMal)
		}
		if len(got) != len(want) {
			t.Fatalf("size %d: %d records, want %d", size, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("size %d: record %d differs:\n got %+v\nwant %+v", size, i, got[i], want[i])
			}
		}
	}
}

// A final line with no trailing newline is still a record.
func TestBlockReaderFinalLineWithoutNewline(t *testing.T) {
	input := strings.TrimSuffix(corpusLines(t, 3), "\n")
	for _, size := range []int{5, 1 << 16} {
		got, lines, _, err := blockAll(t, input, size, false)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 3 {
			t.Fatalf("size %d: %d records, want 3", size, len(got))
		}
		if lines != 4 { // header + 3 records
			t.Fatalf("size %d: %d lines, want 4", size, lines)
		}
	}
}

// Comment and blank lines must be skipped wherever a block boundary
// lands, including when a block starts exactly on them, and they still
// advance the physical line count.
func TestBlockReaderCommentsAndBlanksAtBoundaries(t *testing.T) {
	rec := testRecord(1)
	var sb strings.Builder
	w := NewWriter(&sb)
	_ = w.Write(&rec)
	_ = w.Flush()
	line := sb.String()
	input := "#comment A\n\n" + line + "#comment B\n\r\n" + line + "\n#tail"
	want, wantLines, wantMal, _ := scanAll(t, input, false)
	for size := 1; size < len(input)+2; size++ {
		got, lines, mal, err := blockAll(t, input, size, false)
		if err != nil {
			t.Fatalf("size %d: %v", size, err)
		}
		if len(got) != len(want) || lines != wantLines || mal != wantMal {
			t.Fatalf("size %d: records/lines/malformed = %d/%d/%d, want %d/%d/%d",
				size, len(got), lines, mal, len(want), wantLines, wantMal)
		}
	}
}

// Strict mode must attribute the failure to the same physical line number
// as a serial scan, no matter where block boundaries fall.
func TestBlockReaderStrictLineNumbersMatchScanner(t *testing.T) {
	good := corpusLines(t, 10)
	// Corrupt line 7 (header is line 1, records start at line 2).
	rows := strings.SplitAfter(good, "\n")
	rows[6] = "this,is,not,a,record\n"
	input := strings.Join(rows, "")

	_, _, _, werr := scanAll(t, input, true)
	if werr == nil {
		t.Fatal("scanner accepted corrupt corpus")
	}
	for _, size := range []int{3, 32, 512, 1 << 20} {
		_, _, _, err := blockAll(t, input, size, true)
		if err == nil {
			t.Fatalf("size %d: block path accepted corrupt corpus", size)
		}
		if err.Error() != werr.Error() {
			t.Fatalf("size %d: error %q, want %q (scanner parity)", size, err, werr)
		}
	}
}

// Blocks are line-aligned: every block ends in a newline except the last
// of the stream, and FirstLine advances consistently.
func TestBlockReaderAlignmentAndFirstLine(t *testing.T) {
	input := corpusLines(t, 50)
	br := NewBlockReaderSize(strings.NewReader(input), 257)
	nextLine := 1
	var blocks int
	for {
		blk, ok := br.Next()
		if !ok {
			break
		}
		blocks++
		if blk.FirstLine != nextLine {
			t.Fatalf("block %d: FirstLine %d, want %d", blocks, blk.FirstLine, nextLine)
		}
		if blk.Data[len(blk.Data)-1] != '\n' {
			t.Fatalf("block %d is not line-aligned (input ends in a newline)", blocks)
		}
		res, err := ParseBlock(blk, true, func(*Record) {})
		if err != nil {
			t.Fatal(err)
		}
		nextLine += res.Lines
	}
	if blocks < 10 {
		t.Fatalf("only %d blocks for a %d-byte input at size 257", blocks, len(input))
	}
	if err := br.Err(); err != nil {
		t.Fatal(err)
	}
	if got := br.Lines(); got != nextLine-1 {
		t.Fatalf("reader Lines() = %d, want %d", got, nextLine-1)
	}
}

// A single line longer than MaxLineLen is a terminal error carrying its
// line number, not an unbounded buffer growth.
func TestBlockReaderLineTooLong(t *testing.T) {
	input := "short line\n" + strings.Repeat("y", MaxLineLen+10)
	br := NewBlockReaderSize(strings.NewReader(input), 64)
	for {
		blk, ok := br.Next()
		if !ok {
			break
		}
		blk.Release()
	}
	if err := br.Err(); !errors.Is(err, ErrLineTooLong) {
		t.Fatalf("err = %v, want ErrLineTooLong", err)
	} else if !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("err %q does not name line 2", err)
	}
}

// Empty input yields no blocks and a clean end of stream.
func TestBlockReaderEmptyInput(t *testing.T) {
	br := NewBlockReader(strings.NewReader(""))
	if _, ok := br.Next(); ok {
		t.Fatal("got a block from empty input")
	}
	if err := br.Err(); err != nil {
		t.Fatal(err)
	}
}

// An I/O error mid-stream surfaces through Err after the clean prefix is
// delivered, and the partial trailing line of the dead stream is not
// handed out as data.
func TestBlockReaderPropagatesReadError(t *testing.T) {
	boom := errors.New("disk on fire")
	input := corpusLines(t, 5)
	r := io.MultiReader(strings.NewReader(input), errReader{boom})
	br := NewBlockReader(r)
	var recs int
	for {
		blk, ok := br.Next()
		if !ok {
			break
		}
		res, err := ParseBlock(blk, false, func(*Record) {})
		blk.Release()
		if err != nil {
			t.Fatal(err)
		}
		recs += res.Records
	}
	if !errors.Is(br.Err(), boom) {
		t.Fatalf("Err() = %v, want wrapped %v", br.Err(), boom)
	}
	if recs != 5 {
		t.Fatalf("delivered %d records before the error, want 5", recs)
	}
}

type errReader struct{ err error }

func (e errReader) Read([]byte) (int, error) { return 0, e.err }
