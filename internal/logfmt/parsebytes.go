package logfmt

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"
	"time"
)

// This file is the byte-level parsing layer: ParseBytes decodes a log
// line directly from the raw bytes of a block, with no up-front
// []byte->string conversion of the input. Field strings that survive
// into the Record are materialized through two bounded mechanisms owned
// by a Parser:
//
//   - an interning table for the repetitive fields (method, scheme,
//     s-action, content-type, host, client IP, user agent, ...): the
//     first occurrence of a value is copied once, every later
//     occurrence reuses that string with zero allocation. The table is
//     capped in entries and bytes, so adversarial high-cardinality
//     input degrades to plain per-value copies instead of unbounded
//     growth;
//   - a per-record arena for the genuinely high-cardinality fields
//     (path, query, referer): their bytes are gathered into one scratch
//     buffer and materialized with a single string conversion per
//     record, each field aliasing a substring of it.
//
// Either way a Record never aliases the input line, so block buffers
// can be pooled and reused the moment parsing returns — the property
// ParseBlock and the serve ingest path rely on.

// Interning caps per Parser. A Parser is per-worker (pool-recycled), so
// total retained interned bytes are bounded by pool size x maxInternBytes.
const (
	maxInternEntries = 1 << 16
	maxInternBytes   = 1 << 21
	// internCacheSize is the direct-mapped cache in front of the intern
	// map: a cheap 17-byte-sample hash picks a slot, a hit skips the
	// map entirely. Must be a power of two, and large enough that a
	// corpus's client-IP/user-agent/host vocabularies don't thrash it.
	internCacheSize = 1 << 16
)

// Errors of the quoted-field scanner. Messages match the string path in
// parse.go byte for byte; FuzzParseBytesVsParseLine pins that.
var (
	errUnterminatedQuote = errors.New("logfmt: unterminated quoted field")
	errGarbageAfterQuote = errors.New("logfmt: garbage after closing quote")
)

// Parser holds the reusable scratch state behind ParseBytes: the
// interning table, the per-record arena, the quoted-field unescape
// buffer and a one-entry date cache. A Parser is not safe for
// concurrent use; ParseBlock draws one from an internal pool per block,
// which also serves as the package-level ParseBytes backing.
type Parser struct {
	intern      map[string]string
	cache       []string // direct-mapped fast path over intern
	internBytes int
	scratch     []byte // per-record arena, reset every record
	qbuf        []byte // unescape buffer for quoted fields, reset every line
	// fields is the split destination, kept here so ParseBytes does not
	// zero 26 slice headers per line; every slot consumed is one the
	// splitter wrote for the current line.
	fields      [NumFields][]byte
	lastDate    [10]byte
	lastMidnite int64 // Unix seconds of lastDate at 00:00:00 UTC
	haveDate    bool
}

// NewParser returns an empty Parser.
func NewParser() *Parser {
	return &Parser{
		intern: make(map[string]string, 256),
		cache:  make([]string, internCacheSize),
	}
}

var parserPool = sync.Pool{New: func() any { return NewParser() }}

// ParseBytes decodes one CSV log line into rec, overwriting all fields,
// using a pooled Parser. Semantics, validation order and error
// classification are identical to ParseLine; the Record's string fields
// never alias line, so the caller may reuse the byte slice immediately.
// Bulk callers that parse many lines should hold their own Parser and
// call its ParseBytes method to keep the interning table hot.
func ParseBytes(line []byte, rec *Record) error {
	p := parserPool.Get().(*Parser)
	err := p.ParseBytes(line, rec)
	parserPool.Put(p)
	return err
}

// ParseBytes decodes one CSV log line into rec, overwriting all fields.
// It is the byte-level equivalent of ParseLine: same field layout, same
// validation order, same error classification (the differential fuzz
// target pins this). The Record's string fields are interned or copied
// into a per-record arena — never aliased to line.
func (p *Parser) ParseBytes(line []byte, rec *Record) error {
	fields := &p.fields
	n, err := p.splitBytes(line, fields)
	if err != nil {
		return err
	}
	if n != NumFields {
		return fmt.Errorf("%w: got %d, want %d", ErrFieldCount, n, NumFields)
	}

	t, err := p.dateTime(fields[0], fields[1])
	if err != nil {
		return err
	}
	rec.Time = t

	tt, err := atou32b(fields[2])
	if err != nil {
		return fmt.Errorf("%w: time-taken %q", ErrBadNumber, fields[2])
	}
	rec.TimeTaken = tt

	rec.ClientIP = p.str(fields[3])
	rec.Username = p.str(fields[4])
	rec.AuthGroup = p.str(fields[5])

	st, err := atou32b(fields[6])
	if err != nil || st > 999 {
		return fmt.Errorf("%w: sc-status %q", ErrBadNumber, fields[6])
	}
	rec.Status = uint16(st)

	rec.SAction = p.str(fields[7])

	sb, err := atou32b(fields[8])
	if err != nil {
		return fmt.Errorf("%w: sc-bytes %q", ErrBadNumber, fields[8])
	}
	rec.ScBytes = sb
	cb, err := atou32b(fields[9])
	if err != nil {
		return fmt.Errorf("%w: cs-bytes %q", ErrBadNumber, fields[9])
	}
	rec.CsBytes = cb

	rec.Method = p.str(fields[10])
	rec.Scheme = p.str(fields[11])
	rec.Host = p.str(fields[12])

	pt, err := atou32b(fields[13])
	if err != nil || pt > 65535 {
		return fmt.Errorf("%w: cs-uri-port %q", ErrBadNumber, fields[13])
	}
	rec.Port = uint16(pt)

	rec.Ext = p.str(fields[16])
	rec.UserAgent = p.str(fields[17])
	rec.ProxyIP = p.str(fields[18])

	fr, ok := parseFilterResultBytes(fields[19])
	if !ok {
		return fmt.Errorf("%w: sc-filter-result %q", ErrBadEnum, fields[19])
	}
	rec.Filter = fr

	rec.Categories = p.str(fields[20])

	if f := fields[21]; len(f) == 1 && f[0] == '-' {
		rec.Exception = ExNone // the overwhelmingly common case, skip the map
	} else {
		ex, ok := exceptionByName[string(f)] // no-alloc map lookup
		if !ok {
			return fmt.Errorf("%w: x-exception-id %q", ErrBadEnum, f)
		}
		rec.Exception = ex
	}

	rec.Hierarchy = p.str(fields[22])
	rec.Supplier = p.str(fields[23])
	rec.ContentType = p.str(fields[24])

	// The high-cardinality tail: path, query and referer skip the
	// interning table (URL tails are dominated by unique ids, which
	// would only thrash it) and share ONE arena string per record, so
	// even always-distinct URLs cost a single allocation per record.
	pth := undashB(fields[14])
	qry := undashB(fields[15])
	ref := undashB(fields[25])
	if len(pth)+len(qry)+len(ref) == 0 {
		rec.Path, rec.Query, rec.Referer = "", "", ""
	} else {
		s := p.scratch[:0]
		s = append(s, pth...)
		s = append(s, qry...)
		s = append(s, ref...)
		p.scratch = s
		a := string(s)
		rec.Path = a[:len(pth)]
		rec.Query = a[len(pth) : len(pth)+len(qry)]
		rec.Referer = a[len(pth)+len(qry):]
	}
	return nil
}

// str materializes a field value: "-" and "" map to "", everything else
// resolves through the interning table (zero-alloc on hit; the miss
// copies once and, under the caps, remembers the copy).
func (p *Parser) str(b []byte) string {
	if len(b) == 0 || (len(b) == 1 && b[0] == '-') {
		return ""
	}
	s, idx, ok := p.probe(b)
	if ok {
		return s
	}
	s = string(b)
	p.store(s, idx)
	return s
}

// probe looks b up in the interning structures without copying it. A
// direct-mapped cache sampling the first/last eight bytes sits in front
// of the map, so the steady-state cost per field is one tiny hash plus
// one byte comparison instead of a full map probe. On a miss it returns
// the slot index for a later store.
func (p *Parser) probe(b []byte) (string, uint64, bool) {
	n := len(b)
	var a, z uint64
	if n >= 8 {
		a = binary.LittleEndian.Uint64(b)
		z = binary.LittleEndian.Uint64(b[n-8:])
	} else {
		for i := 0; i < n; i++ {
			a = a<<8 | uint64(b[i])
		}
		z = a
	}
	h := (a*0x9e3779b97f4a7c15 ^ z*0xc2b2ae3d27d4eb4f) + uint64(n)
	idx := (h >> 32) & (internCacheSize - 1)
	if s := p.cache[idx]; len(s) == n && s == string(b) { // no-alloc compare
		return s, idx, true
	}
	if s, ok := p.intern[string(b)]; ok { // no-alloc map lookup
		p.cache[idx] = s
		return s, idx, true
	}
	return "", idx, false
}

// store remembers a materialized string under the table caps. Past the
// caps the table is frozen: lookups keep hitting existing entries but
// new values stay unshared copies, so hostile high-cardinality input
// cannot grow parser memory without bound.
func (p *Parser) store(s string, idx uint64) {
	if len(p.intern) < maxInternEntries && p.internBytes+len(s) <= maxInternBytes {
		p.intern[s] = s
		p.cache[idx] = s
		p.internBytes += len(s)
		internedStrings.Add(1)
		internedBytes.Add(uint64(len(s)))
	}
}

// Cumulative interning accounting across every Parser in the process.
// Both are monotone (entries are only ever added; table caps freeze
// growth rather than evict), so they expose cleanly as Prometheus
// counters. The adds sit on the intern *miss* path only, which is cold
// after warmup.
var internedStrings, internedBytes atomic.Uint64

// InternStats reports the cumulative number of strings and bytes
// remembered by parser interning tables process-wide. A high
// strings-per-record ratio means the input's nominally repetitive
// fields are high-cardinality and parsing is degrading to per-value
// copies.
func InternStats() (strings, bytes uint64) {
	return internedStrings.Load(), internedBytes.Load()
}

func undashB(b []byte) []byte {
	if len(b) == 1 && b[0] == '-' {
		return nil
	}
	return b
}

// splitBytes mirrors splitCSV: same field counts on every input
// (including the early n+1 return past NumFields), same quoted-field
// errors. Quote detection is one vectorized IndexByte over the whole
// line (quotes are rare); the comma scan is SWAR — eight bytes per
// load with an exact zero-byte detector — instead of a byte-at-a-time
// loop or one IndexByte call per (mostly tiny) field.
func (p *Parser) splitBytes(line []byte, dst *[NumFields][]byte) (int, error) {
	if bytes.IndexByte(line, '"') >= 0 {
		return p.splitQuotedBytes(line, dst)
	}
	const (
		lo     uint64 = 0x0101010101010101
		hi     uint64 = 0x8080808080808080
		commas        = ',' * lo
	)
	n := 0
	start := 0
	i := 0
	for ; i+8 <= len(line); i += 8 {
		// Exact zero-byte detector (Hacker's Delight): high bit set in
		// every byte of c that is zero, no cross-byte carries — the
		// cheaper (c-lo)&^c&hi variant false-positives on 0x01 bytes
		// following a match.
		c := binary.LittleEndian.Uint64(line[i:]) ^ commas
		m := ^((c &^ hi) + ^hi | c) & hi
		for ; m != 0; m &= m - 1 {
			if n >= len(dst) {
				return n + 1, nil // caller reports count mismatch
			}
			pos := i + bits.TrailingZeros64(m)>>3
			dst[n] = line[start:pos]
			n++
			start = pos + 1
		}
	}
	for ; i < len(line); i++ {
		if line[i] == ',' {
			if n >= len(dst) {
				return n + 1, nil
			}
			dst[n] = line[start:i]
			n++
			start = i + 1
		}
	}
	if n >= len(dst) {
		return n + 1, nil
	}
	dst[n] = line[start:]
	return n + 1, nil
}

// splitQuotedBytes is the slow path for lines containing quotes,
// mirroring splitCSVQuoted. Unescaped field bytes are written into
// p.qbuf (pre-grown to len(line), so appends never reallocate and
// earlier field slices stay valid).
func (p *Parser) splitQuotedBytes(line []byte, dst *[NumFields][]byte) (int, error) {
	if cap(p.qbuf) < len(line) {
		p.qbuf = make([]byte, 0, len(line)+64)
	}
	q := p.qbuf[:0]
	n := 0
	i := 0
	for {
		if n >= len(dst) {
			return n + 1, nil
		}
		if i < len(line) && line[i] == '"' {
			// Quoted field: unescape "" -> " into the scratch buffer.
			start := len(q)
			i++
			for {
				if i >= len(line) {
					return 0, errUnterminatedQuote
				}
				c := line[i]
				if c == '"' {
					if i+1 < len(line) && line[i+1] == '"' {
						q = append(q, '"')
						i += 2
						continue
					}
					i++
					break
				}
				q = append(q, c)
				i++
			}
			dst[n] = q[start:len(q):len(q)]
			n++
			if i >= len(line) {
				return n, nil
			}
			if line[i] != ',' {
				return 0, errGarbageAfterQuote
			}
			i++
			continue
		}
		rest := line[i:]
		j := bytes.IndexByte(rest, ',')
		if j < 0 {
			dst[n] = rest
			return n + 1, nil
		}
		dst[n] = rest[:j]
		n++
		i += j + 1
	}
}

// dateTime is the byte-level parseDateTime with a one-entry date cache:
// consecutive records almost always share a calendar date, so the
// midnight epoch is computed once per distinct date and the clock is
// added arithmetically. Validation and normalization (day overflow,
// leap second) are identical to parseDateTime because the cache key is
// the exact date bytes and misses fall back to time.Date.
func (p *Parser) dateTime(date, clock []byte) (int64, error) {
	if len(date) != 10 || date[4] != '-' || date[7] != '-' ||
		len(clock) != 8 || clock[2] != ':' || clock[5] != ':' {
		return 0, fmt.Errorf("%w: %q %q", ErrBadTime, date, clock)
	}
	hh, ok4 := atoiFixedB(clock[0:2])
	mm, ok5 := atoiFixedB(clock[3:5])
	ss, ok6 := atoiFixedB(clock[6:8])
	if p.haveDate && string(date) == string(p.lastDate[:]) {
		if !(ok4 && ok5 && ok6) || hh > 23 || mm > 59 || ss > 60 {
			return 0, fmt.Errorf("%w: %q %q", ErrBadTime, date, clock)
		}
		return p.lastMidnite + int64(hh)*3600 + int64(mm)*60 + int64(ss), nil
	}
	year, ok1 := atoiFixedB(date[0:4])
	month, ok2 := atoiFixedB(date[5:7])
	day, ok3 := atoiFixedB(date[8:10])
	if !(ok1 && ok2 && ok3 && ok4 && ok5 && ok6) ||
		month < 1 || month > 12 || day < 1 || day > 31 ||
		hh > 23 || mm > 59 || ss > 60 {
		return 0, fmt.Errorf("%w: %q %q", ErrBadTime, date, clock)
	}
	midnight := time.Date(year, time.Month(month), day, 0, 0, 0, 0, time.UTC).Unix()
	copy(p.lastDate[:], date)
	p.lastMidnite = midnight
	p.haveDate = true
	return midnight + int64(hh)*3600 + int64(mm)*60 + int64(ss), nil
}

func atoiFixedB(b []byte) (int, bool) {
	n := 0
	for i := 0; i < len(b); i++ {
		c := b[i]
		if c < '0' || c > '9' {
			return 0, false
		}
		n = n*10 + int(c-'0')
	}
	return n, true
}

// atou32b mirrors atou32: empty and "-" decode as 0.
func atou32b(b []byte) (uint32, error) {
	if len(b) == 0 || (len(b) == 1 && b[0] == '-') {
		return 0, nil
	}
	if len(b) > 10 {
		return 0, ErrBadNumber
	}
	var n uint64
	for i := 0; i < len(b); i++ {
		c := b[i]
		if c < '0' || c > '9' {
			return 0, ErrBadNumber
		}
		n = n*10 + uint64(c-'0')
		if n > 0xffffffff {
			return 0, ErrBadNumber
		}
	}
	return uint32(n), nil
}

// parseFilterResultBytes is ParseFilterResult without the string
// conversion.
func parseFilterResultBytes(b []byte) (FilterResult, bool) {
	switch string(b) { // compiled to no-alloc comparisons
	case "OBSERVED":
		return Observed, true
	case "PROXIED":
		return Proxied, true
	case "DENIED":
		return Denied, true
	}
	return Observed, false
}
