// Package timewin partitions metric-engine state by time bucket, which
// is what turns the all-time aggregate of internal/core into the paper's
// temporal views: per-day censored/allowed volumes, policy shifts across
// the Jul 22 – Aug 5 2011 capture, proxy outages.
//
// A Partition owns a ring of live per-bucket engines (one core.Engine per
// bucket of the configured width) plus one frozen "tail" engine. Fold
// routes each record to its bucket by Record.Time; when a retention
// horizon is configured, buckets that fall behind the newest bucket by
// more than the horizon are compacted — merged into the tail and freed —
// so memory stays bounded by the horizon while all-time queries stay
// exact (the tail plus the live ring is always the complete corpus).
//
// Range queries merge the covered buckets into a caller-provided engine
// (clone-and-Merge, the same primitive behind internal/serve snapshots),
// so a range covering the full capture renders byte-identically to a
// batch run. A range that begins inside the compacted tail cannot be
// answered exactly and returns *RetentionError.
//
// A Partition is not safe for concurrent use; internal/serve gives each
// of its shard goroutines one Partition and serializes queries through
// the shard's message channel.
package timewin

import (
	"fmt"
	"sort"
	"strconv"
	"time"

	"syriafilter/internal/core"
	"syriafilter/internal/logfmt"
)

// Window is a half-open time range [From, To) in Unix seconds. A zero
// From or To leaves that side unbounded, so the zero Window matches
// every record. The same predicate drives Partition range queries and
// `censorlyzer -from/-to` batch filtering, which is what makes the two
// paths agree.
type Window struct {
	From int64 // inclusive; 0 = unbounded
	To   int64 // exclusive; 0 = unbounded
}

// Contains reports whether t falls inside the window.
func (w Window) Contains(t int64) bool {
	return (w.From == 0 || t >= w.From) && (w.To == 0 || t < w.To)
}

// Overlaps reports whether the window intersects [from, to).
func (w Window) Overlaps(from, to int64) bool {
	return (w.To == 0 || from < w.To) && (w.From == 0 || to > w.From)
}

// Covers reports whether the window fully contains [from, to).
func (w Window) Covers(from, to int64) bool {
	return (w.From == 0 || w.From <= from) && (w.To == 0 || w.To >= to)
}

// IsZero reports whether the window is unbounded on both sides.
func (w Window) IsZero() bool { return w.From == 0 && w.To == 0 }

// String renders the window for log and error messages.
func (w Window) String() string {
	f, t := "-inf", "+inf"
	if w.From != 0 {
		f = time.Unix(w.From, 0).UTC().Format(time.RFC3339)
	}
	if w.To != 0 {
		t = time.Unix(w.To, 0).UTC().Format(time.RFC3339)
	}
	return "[" + f + ", " + t + ")"
}

// ParseTime parses a window bound: Unix seconds, RFC3339, or the UTC
// shorthands "2006-01-02T15:04[:05]" and "2006-01-02".
func ParseTime(s string) (int64, error) {
	if n, err := strconv.ParseInt(s, 10, 64); err == nil {
		return n, nil
	}
	for _, layout := range []string{
		time.RFC3339, "2006-01-02T15:04:05", "2006-01-02T15:04", "2006-01-02",
	} {
		if t, err := time.ParseInLocation(layout, s, time.UTC); err == nil {
			return t.Unix(), nil
		}
	}
	return 0, fmt.Errorf("timewin: cannot parse time %q (want unix seconds, RFC3339, 2006-01-02T15:04 or 2006-01-02)", s)
}

// ParseWindow builds a Window from optional from/to strings (each in a
// ParseTime format; "" leaves that side unbounded) and rejects empty
// windows. Both cmd/censorlyzer's -from/-to flags and cmd/censord's
// query parameters parse through here, so the two surfaces cannot
// drift.
func ParseWindow(from, to string) (Window, error) {
	var w Window
	var err error
	if from != "" {
		if w.From, err = ParseTime(from); err != nil {
			return w, err
		}
	}
	if to != "" {
		if w.To, err = ParseTime(to); err != nil {
			return w, err
		}
	}
	if w.From != 0 && w.To != 0 && w.To <= w.From {
		return w, fmt.Errorf("timewin: empty window %s", w)
	}
	return w, nil
}

// ParseStep parses a sub-window width: a Go duration ("2h", "30m") or
// bare seconds.
func ParseStep(s string) (int64, error) {
	if n, err := strconv.ParseInt(s, 10, 64); err == nil {
		return n, nil
	}
	d, err := time.ParseDuration(s)
	if err != nil {
		return 0, fmt.Errorf("timewin: cannot parse step %q (want a duration like 2h or seconds)", s)
	}
	return int64(d / time.Second), nil
}

// RetentionError reports a range query that begins inside the compacted
// tail: those buckets were merged away, so the range cannot be answered
// exactly. HorizonUnix is the first instant still covered bucket-exactly
// (query from >= horizon, or cover the whole corpus for the exact
// all-time answer).
type RetentionError struct {
	HorizonUnix int64
}

func (e *RetentionError) Error() string {
	return fmt.Sprintf("timewin: range begins before the retention horizon %s: older buckets are compacted into the all-time tail; start the range at or after the horizon, or cover the full corpus",
		time.Unix(e.HorizonUnix, 0).UTC().Format(time.RFC3339))
}

// PartitionObs receives compaction events from a Partition. Compaction
// happens inline on the Observe path (the partition is single-threaded
// by contract), so OnCompact is called from whatever goroutine owns the
// partition; a nil *PartitionObs disables the hook at no cost beyond
// the horizon check compact already does.
type PartitionObs struct {
	// OnCompact is called after each compaction pass that merged at
	// least one bucket into the tail, with the number of buckets merged
	// and the pass's wall-clock duration in seconds.
	OnCompact func(buckets int, seconds float64)
	// OnRangeMerge, when non-nil, is called after each RangeInto that
	// merged at least one bucket (or the tail), with the bucket-merge
	// count, the records covered and the merge's wall-clock duration in
	// seconds. Like OnCompact it fires on the goroutine that owns the
	// partition — internal/serve's shard goroutines — so the hook must
	// be safe for concurrent use across partitions. This is the
	// per-shard cost signal behind range-query latency attribution.
	OnRangeMerge func(buckets int, records uint64, seconds float64)
}

// Config configures a Partition.
type Config struct {
	// Options configures every bucket engine (and the tail).
	Options core.Options
	// Metrics restricts buckets to a metric-module subset (nil = every
	// module), exactly like serve.Config.Metrics.
	Metrics []string
	// Bucket is the partition width. Must be at least one second; widths
	// are truncated to whole seconds.
	Bucket time.Duration
	// Retain is the retention horizon: live buckets older than the newest
	// bucket by more than this are compacted into the tail. It is rounded
	// up to a whole number of buckets. 0 keeps every bucket live forever.
	Retain time.Duration
	// Obs, when non-nil, receives compaction events.
	Obs *PartitionObs
}

// BucketMeta describes one live bucket.
type BucketMeta struct {
	StartUnix int64  `json:"start_unix"`
	Start     string `json:"start"`
	Records   uint64 `json:"records"`
}

// Meta summarizes a Partition (or, after MergeMeta, a set of partitions
// sharing one bucket grid) for monitoring and snapshot metadata.
type Meta struct {
	BucketSeconds int64        `json:"bucket_seconds"`
	RetainBuckets int          `json:"retain_buckets,omitempty"`
	Buckets       []BucketMeta `json:"buckets"`
	TailRecords   uint64       `json:"tail_records"`
	TailFromUnix  int64        `json:"tail_from_unix,omitempty"`
	TailToUnix    int64        `json:"tail_to_unix,omitempty"`
}

// MergeMeta folds src into dst: per-bucket record counts are summed by
// bucket start, the tail span is unioned. Both metas must share the same
// bucket grid (internal/serve guarantees this: every shard partition is
// built from one Config).
func MergeMeta(dst *Meta, src Meta) {
	if dst.BucketSeconds == 0 {
		dst.BucketSeconds = src.BucketSeconds
	}
	if dst.RetainBuckets == 0 {
		dst.RetainBuckets = src.RetainBuckets
	}
	dst.Buckets = append(dst.Buckets, src.Buckets...)
	sort.Slice(dst.Buckets, func(i, j int) bool {
		return dst.Buckets[i].StartUnix < dst.Buckets[j].StartUnix
	})
	out := dst.Buckets[:0]
	for _, b := range dst.Buckets {
		if n := len(out); n > 0 && out[n-1].StartUnix == b.StartUnix {
			out[n-1].Records += b.Records
			continue
		}
		out = append(out, b)
	}
	dst.Buckets = out
	dst.TailRecords += src.TailRecords
	if src.TailRecords > 0 {
		if dst.TailFromUnix == 0 || src.TailFromUnix < dst.TailFromUnix {
			dst.TailFromUnix = src.TailFromUnix
		}
		if src.TailToUnix > dst.TailToUnix {
			dst.TailToUnix = src.TailToUnix
		}
	}
}

// Coverage reports what a range merge actually covered. Bucket spans are
// atomic, so the effective [FromUnix, ToUnix) is the requested window
// widened to bucket edges (and to the tail span when the tail was
// merged). Buckets counts bucket *merges* — a cost measure — so an
// aggregate over N shards counts each time bucket up to N times (the
// distinct-bucket layout lives in Meta).
type Coverage struct {
	FromUnix int64  `json:"from_unix"`
	ToUnix   int64  `json:"to_unix"`
	Buckets  int    `json:"buckets"`
	Records  uint64 `json:"records"`
	Tail     bool   `json:"tail"`
}

// Extend unions o into c (used to aggregate per-shard coverages).
func (c *Coverage) Extend(o Coverage) {
	if o.Buckets == 0 && !o.Tail {
		return
	}
	if c.Buckets == 0 && !c.Tail {
		*c = o
		return
	}
	if o.FromUnix < c.FromUnix {
		c.FromUnix = o.FromUnix
	}
	if o.ToUnix > c.ToUnix {
		c.ToUnix = o.ToUnix
	}
	c.Buckets += o.Buckets
	c.Records += o.Records
	c.Tail = c.Tail || o.Tail
}

type bucket struct {
	eng     *core.Engine
	records uint64
}

// Partition is the time-partitioned store: a ring of live bucket engines
// plus the frozen tail. See the package comment for semantics.
type Partition struct {
	opt           core.Options
	metrics       []string
	bucketSecs    int64
	retainBuckets int64

	live  map[int64]*bucket
	order []int64 // sorted live bucket indices

	tail             *core.Engine
	tailRecords      uint64
	tailMin, tailMax int64 // bucket-index span covered by the tail

	spare *core.Engine // validated engine from New, consumed by the first bucket

	obs *PartitionObs
}

// New builds an empty partition. The engine construction also validates
// Metrics, so later bucket creation cannot fail.
func New(cfg Config) (*Partition, error) {
	secs := int64(cfg.Bucket / time.Second)
	if secs < 1 {
		return nil, fmt.Errorf("timewin: bucket width %v is below one second", cfg.Bucket)
	}
	var retain int64
	if cfg.Retain > 0 {
		retain = (int64(cfg.Retain/time.Second) + secs - 1) / secs
		if retain < 1 {
			retain = 1
		}
	}
	spare, err := core.NewEngine(cfg.Options, cfg.Metrics...)
	if err != nil {
		return nil, err
	}
	return &Partition{
		opt:           cfg.Options,
		metrics:       cfg.Metrics,
		bucketSecs:    secs,
		retainBuckets: retain,
		live:          map[int64]*bucket{},
		spare:         spare,
		obs:           cfg.Obs,
	}, nil
}

// BucketSeconds returns the partition width in seconds.
func (p *Partition) BucketSeconds() int64 { return p.bucketSecs }

// RetainBuckets returns the retention horizon in buckets (0 = unlimited).
func (p *Partition) RetainBuckets() int64 { return p.retainBuckets }

func (p *Partition) newEngine() *core.Engine {
	if e := p.spare; e != nil {
		p.spare = nil
		return e
	}
	e, err := core.NewEngine(p.opt, p.metrics...)
	if err != nil {
		// Unreachable: New validated the module names.
		panic("timewin: " + err.Error())
	}
	return e
}

// floorDiv is floor division (bucket indices must round toward -inf so a
// record exactly on a bucket edge always lands in the later bucket).
func floorDiv(t, w int64) int64 {
	q := t / w
	if t%w != 0 && (t < 0) != (w < 0) {
		q--
	}
	return q
}

// Observe folds one record into its time bucket. A record at exactly a
// bucket edge lands in the bucket that starts there. Records at or below
// the compaction horizon fold into the tail, so late arrivals keep the
// all-time view exact instead of resurrecting freed buckets.
func (p *Partition) Observe(rec *logfmt.Record) {
	idx := floorDiv(rec.Time, p.bucketSecs)
	if p.tail != nil && idx <= p.tailMax {
		p.tail.Observe(rec)
		p.tailRecords++
		if idx < p.tailMin {
			p.tailMin = idx
		}
		return
	}
	b := p.live[idx]
	if b == nil {
		b = &bucket{eng: p.newEngine()}
		p.live[idx] = b
		p.insertIdx(idx)
	}
	b.eng.Observe(rec)
	b.records++
	p.compact()
}

func (p *Partition) insertIdx(idx int64) {
	i := sort.Search(len(p.order), func(i int) bool { return p.order[i] >= idx })
	p.order = append(p.order, 0)
	copy(p.order[i+1:], p.order[i:])
	p.order[i] = idx
}

// compact merges every live bucket behind the retention horizon into the
// tail. The horizon trails the newest bucket by data time (not wall
// clock), which keeps historical corpora — the 2011 capture — behaving
// exactly like a live stream.
func (p *Partition) compact() {
	if p.retainBuckets <= 0 || len(p.order) == 0 {
		return
	}
	horizon := p.order[len(p.order)-1] - p.retainBuckets + 1
	if p.order[0] >= horizon {
		return
	}
	var t0 time.Time
	if p.obs != nil && p.obs.OnCompact != nil {
		t0 = time.Now()
	}
	merged := 0
	for len(p.order) > 0 && p.order[0] < horizon {
		idx := p.order[0]
		b := p.live[idx]
		if p.tail == nil {
			p.tail = p.newEngine()
			p.tailMin, p.tailMax = idx, idx
		}
		p.tail.Merge(b.eng)
		p.tailRecords += b.records
		if idx < p.tailMin {
			p.tailMin = idx
		}
		if idx > p.tailMax {
			p.tailMax = idx
		}
		delete(p.live, idx)
		p.order = p.order[1:]
		merged++
	}
	if merged > 0 && p.obs != nil && p.obs.OnCompact != nil {
		p.obs.OnCompact(merged, time.Since(t0).Seconds())
	}
}

// Buckets returns the number of live buckets.
func (p *Partition) Buckets() int { return len(p.order) }

// Records returns the total records folded (tail plus live buckets).
func (p *Partition) Records() uint64 {
	n := p.tailRecords
	for _, idx := range p.order {
		n += p.live[idx].records
	}
	return n
}

// Meta snapshots the partition's bucket layout.
func (p *Partition) Meta() Meta {
	m := Meta{
		BucketSeconds: p.bucketSecs,
		RetainBuckets: int(p.retainBuckets),
		TailRecords:   p.tailRecords,
	}
	for _, idx := range p.order {
		start := idx * p.bucketSecs
		m.Buckets = append(m.Buckets, BucketMeta{
			StartUnix: start,
			Start:     time.Unix(start, 0).UTC().Format(time.RFC3339),
			Records:   p.live[idx].records,
		})
	}
	if p.tail != nil && p.tailRecords > 0 {
		m.TailFromUnix = p.tailMin * p.bucketSecs
		m.TailToUnix = (p.tailMax + 1) * p.bucketSecs
	}
	return m
}

// AllInto merges the complete partition — tail first, then every live
// bucket in time order — into dst, which must share the partition's
// module set and Options. This is the all-time snapshot primitive: its
// result is merge-equivalent to a batch run over the same records.
func (p *Partition) AllInto(dst *core.Engine) {
	if p.tail != nil {
		dst.Merge(p.tail)
	}
	for _, idx := range p.order {
		dst.Merge(p.live[idx].eng)
	}
}

// RangeInto merges every bucket overlapping w into dst and reports what
// was covered. Buckets are atomic: any bucket the window touches is
// merged whole, and the coverage reports the widened effective span. The
// tail is merged only when the window fully covers its span; a window
// that begins inside the tail returns *RetentionError before anything is
// merged, so dst is untouched on error.
func (p *Partition) RangeInto(dst *core.Engine, w Window) (Coverage, error) {
	var cov Coverage
	var t0 time.Time
	if p.obs != nil && p.obs.OnRangeMerge != nil {
		t0 = time.Now()
	}
	if p.tail != nil && p.tailRecords > 0 {
		tailFrom := p.tailMin * p.bucketSecs
		tailTo := (p.tailMax + 1) * p.bucketSecs
		if w.Overlaps(tailFrom, tailTo) {
			if !w.Covers(tailFrom, tailTo) {
				return cov, &RetentionError{HorizonUnix: tailTo}
			}
			dst.Merge(p.tail)
			cov.Extend(Coverage{FromUnix: tailFrom, ToUnix: tailTo, Records: p.tailRecords, Tail: true})
		}
	}
	for _, idx := range p.order {
		from := idx * p.bucketSecs
		to := from + p.bucketSecs
		if !w.Overlaps(from, to) {
			continue
		}
		b := p.live[idx]
		dst.Merge(b.eng)
		cov.Extend(Coverage{FromUnix: from, ToUnix: to, Buckets: 1, Records: b.records})
	}
	if (cov.Buckets > 0 || cov.Tail) && p.obs != nil && p.obs.OnRangeMerge != nil {
		p.obs.OnRangeMerge(cov.Buckets, cov.Records, time.Since(t0).Seconds())
	}
	return cov, nil
}
