package timewin

import (
	"fmt"
	"io"

	"syriafilter/internal/core"
	"syriafilter/internal/statecodec"
)

// Partition state framing. The bucket ring, the frozen tail, and the
// meta that gives them meaning (bucket width, retention horizon) are
// serialized together, so a restored partition resumes with the same
// retention semantics it was checkpointed with:
//
//	"SFTW" | version byte
//	uvarint bucket seconds | uvarint retain buckets
//	bool tail present | [varint tailMin | varint tailMax |
//	                     uvarint tail records | blob tail engine state]
//	uvarint live bucket count
//	per bucket (ascending index): varint index | uvarint records |
//	                              blob engine state
//
// Engine states are the core.Engine.MarshalState encoding.
const (
	partitionStateMagic   = "SFTW"
	partitionStateVersion = 1
)

// MarshalState serializes the partition: meta, tail, and every live
// bucket. Like the engine encoding it is deterministic, so checkpoint
// bytes are a pure function of the partition's logical state.
func (p *Partition) MarshalState() []byte {
	w := statecodec.NewWriter()
	w.Raw([]byte(partitionStateMagic))
	w.Byte(partitionStateVersion)
	w.Uvarint(uint64(p.bucketSecs))
	w.Uvarint(uint64(p.retainBuckets))
	if p.tail != nil {
		w.Bool(true)
		w.Varint(p.tailMin)
		w.Varint(p.tailMax)
		w.Uvarint(p.tailRecords)
		w.Blob(p.tail.MarshalState())
	} else {
		w.Bool(false)
	}
	w.Uvarint(uint64(len(p.order)))
	for _, idx := range p.order {
		b := p.live[idx]
		w.Varint(idx)
		w.Uvarint(b.records)
		w.Blob(b.eng.MarshalState())
	}
	return w.Bytes()
}

// WriteState writes MarshalState to w.
func (p *Partition) WriteState(w io.Writer) error {
	_, err := w.Write(p.MarshalState())
	return err
}

// UnmarshalState folds a state previously produced by MarshalState into
// p: restored buckets merge into existing buckets of the same index (or
// install as new ones), and the restored tail merges into p's tail —
// so restoring into an empty partition reproduces the checkpointed
// state exactly, and restoring into a loaded one is equivalent to
// having ingested both corpora. Decoding is staged: on any error p is
// left untouched.
//
// The checkpoint's bucket width must match p's — bucket indices are
// meaningless across grids. The stored retention horizon is informative
// only; p's own configured horizon governs compaction after the fold.
func (p *Partition) UnmarshalState(b []byte) error {
	st, err := p.decodeState(b)
	if err != nil {
		return err
	}
	p.absorb(st)
	return nil
}

// ReadState reads r to EOF and applies UnmarshalState.
func (p *Partition) ReadState(r io.Reader) error {
	b, err := io.ReadAll(r)
	if err != nil {
		return fmt.Errorf("timewin: reading partition state: %w", err)
	}
	return p.UnmarshalState(b)
}

// partitionState is a fully decoded, not yet applied partition state.
type partitionState struct {
	tail             *core.Engine
	tailMin, tailMax int64
	tailRecords      uint64
	buckets          []decodedBucket
}

type decodedBucket struct {
	idx     int64
	records uint64
	eng     *core.Engine
}

// decodeState parses and validates every byte of b — including every
// embedded engine state — without touching p, so a corrupted or
// truncated checkpoint cannot leave a partially restored partition.
func (p *Partition) decodeState(b []byte) (*partitionState, error) {
	r := statecodec.NewReader(b)
	if magic := r.Raw(len(partitionStateMagic)); r.Err() != nil || string(magic) != partitionStateMagic {
		return nil, fmt.Errorf("timewin: not a partition state stream (bad magic)")
	}
	if v := r.Byte(); r.Err() == nil && v != partitionStateVersion {
		return nil, fmt.Errorf("timewin: partition state version %d unsupported (max %d)", v, partitionStateVersion)
	}
	if secs := r.Uvarint(); r.Err() == nil && secs != uint64(p.bucketSecs) {
		return nil, fmt.Errorf("timewin: checkpoint bucket width %ds does not match configured %ds; rebuild state on the new grid (cold boot) or restore with the original -bucket", secs, p.bucketSecs)
	}
	r.Uvarint() // stored retention horizon, informative only
	st := &partitionState{}
	if r.Bool() {
		st.tailMin = r.Varint()
		st.tailMax = r.Varint()
		st.tailRecords = r.Uvarint()
		eng, err := p.decodeEngine(r.Blob(), r)
		if err != nil {
			return nil, err
		}
		st.tail = eng
	}
	n := r.Count()
	prev := int64(0)
	for i := 0; i < n && r.Err() == nil; i++ {
		idx := r.Varint()
		records := r.Uvarint()
		eng, err := p.decodeEngine(r.Blob(), r)
		if err != nil {
			return nil, err
		}
		if i > 0 && idx <= prev {
			return nil, fmt.Errorf("timewin: bucket indices out of order (%d after %d)", idx, prev)
		}
		prev = idx
		st.buckets = append(st.buckets, decodedBucket{idx: idx, records: records, eng: eng})
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	if r.Remaining() != 0 {
		return nil, fmt.Errorf("timewin: %d trailing bytes after partition state", r.Remaining())
	}
	return st, nil
}

func (p *Partition) decodeEngine(blob []byte, r *statecodec.Reader) (*core.Engine, error) {
	if err := r.Err(); err != nil {
		return nil, err
	}
	eng, err := core.NewEngine(p.opt, p.metrics...)
	if err != nil {
		// Unreachable: New validated the module names.
		panic("timewin: " + err.Error())
	}
	if err := eng.UnmarshalState(blob); err != nil {
		return nil, err
	}
	return eng, nil
}

// Absorb folds every bucket and the tail of other into p, consuming
// other (its engines are installed directly where p has no competing
// state; other must not be used afterwards). Both partitions must share
// the bucket width. This is the restore primitive internal/serve uses
// to fold staged checkpoint shards into live shard partitions, also
// covering shard-count changes (several checkpoint files can be
// absorbed into one shard).
func (p *Partition) Absorb(other *Partition) error {
	if other.bucketSecs != p.bucketSecs {
		return fmt.Errorf("timewin: absorbing partition with bucket width %ds into %ds", other.bucketSecs, p.bucketSecs)
	}
	st := &partitionState{
		tail:        other.tail,
		tailMin:     other.tailMin,
		tailMax:     other.tailMax,
		tailRecords: other.tailRecords,
	}
	for _, idx := range other.order {
		b := other.live[idx]
		st.buckets = append(st.buckets, decodedBucket{idx: idx, records: b.records, eng: b.eng})
	}
	p.absorb(st)
	return nil
}

// absorb applies a decoded state to p. The tail folds first (so its
// span is known before buckets are placed); a bucket at or below the
// resulting tail horizon folds into the tail rather than resurrecting a
// compacted index, exactly like a late record in Observe. A final
// compact re-applies p's own retention policy.
func (p *Partition) absorb(st *partitionState) {
	if st.tail != nil {
		if p.tail == nil {
			p.tail = st.tail
			p.tailMin, p.tailMax = st.tailMin, st.tailMax
		} else {
			p.tail.Merge(st.tail)
			if st.tailMin < p.tailMin {
				p.tailMin = st.tailMin
			}
			if st.tailMax > p.tailMax {
				p.tailMax = st.tailMax
			}
		}
		p.tailRecords += st.tailRecords
	}
	// A tail now covering live bucket indices swallows those buckets
	// (either side's tail may overlap the other's ring).
	if p.tail != nil {
		for len(p.order) > 0 && p.order[0] <= p.tailMax {
			idx := p.order[0]
			b := p.live[idx]
			p.tail.Merge(b.eng)
			p.tailRecords += b.records
			if idx < p.tailMin {
				p.tailMin = idx
			}
			delete(p.live, idx)
			p.order = p.order[1:]
		}
	}
	for i := range st.buckets {
		db := &st.buckets[i]
		if p.tail != nil && db.idx <= p.tailMax {
			p.tail.Merge(db.eng)
			p.tailRecords += db.records
			if db.idx < p.tailMin {
				p.tailMin = db.idx
			}
			continue
		}
		if b := p.live[db.idx]; b != nil {
			b.eng.Merge(db.eng)
			b.records += db.records
			continue
		}
		p.live[db.idx] = &bucket{eng: db.eng, records: db.records}
		p.insertIdx(db.idx)
	}
	p.compact()
}
