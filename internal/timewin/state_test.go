package timewin

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// stateCorpus spreads records over several days so a retained partition
// has both a compacted tail and a live ring.
func stateCorpus() []int64 {
	var times []int64
	for day := 0; day < 6; day++ {
		for h := 0; h < 24; h += 2 {
			times = append(times, base+int64(day)*86400+int64(h)*3600+int64(day*7+h)%1800)
		}
	}
	return times
}

// fillPartition folds deterministic records for times into p. off is
// the position of times[0] in the overall corpus, so split ingests
// (times[:k] at 0, times[k:] at k) generate exactly the records of one
// whole-corpus ingest.
func fillPartition(p *Partition, off int, times []int64) {
	for j, ts := range times {
		i := off + j
		rec := mkRec(ts, "site-"+strings.Repeat("x", i%3+1)+".example.com", i%5 == 0)
		p.Observe(&rec)
	}
}

// restore(checkpoint(P)) must reproduce P: identical Meta (bucket ring
// + tail span), identical all-time results, identical range results,
// and a byte-identical re-encoding.
func TestPartitionStateRoundTrip(t *testing.T) {
	for _, retain := range []time.Duration{0, 36 * time.Hour} {
		p := newPartition(t, time.Hour, retain)
		fillPartition(p, 0, stateCorpus())
		state := p.MarshalState()

		q := newPartition(t, time.Hour, retain)
		if err := q.UnmarshalState(state); err != nil {
			t.Fatalf("retain=%v: %v", retain, err)
		}

		pm, qm := p.Meta(), q.Meta()
		if len(pm.Buckets) != len(qm.Buckets) || pm.TailRecords != qm.TailRecords ||
			pm.TailFromUnix != qm.TailFromUnix || pm.TailToUnix != qm.TailToUnix {
			t.Errorf("retain=%v: Meta differs:\n got %+v\nwant %+v", retain, qm, pm)
		}
		if p.Records() != q.Records() {
			t.Errorf("retain=%v: Records: got %d, want %d", retain, q.Records(), p.Records())
		}

		pa, qa := newEngine(t), newEngine(t)
		p.AllInto(pa)
		q.AllInto(qa)
		sameResults(t, qa, pa)
		if !bytes.Equal(pa.MarshalState(), qa.MarshalState()) {
			t.Errorf("retain=%v: all-time engine state bytes differ after restore", retain)
		}

		// Range query over a live sub-window (inside the retained ring
		// for both retain settings) agrees too.
		w := Window{From: base + 5*86400, To: base + 6*86400}
		pr, qr := newEngine(t), newEngine(t)
		if _, err := p.RangeInto(pr, w); err != nil {
			t.Fatal(err)
		}
		if _, err := q.RangeInto(qr, w); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(pr.MarshalState(), qr.MarshalState()) {
			t.Errorf("retain=%v: range result differs after restore", retain)
		}

		if !bytes.Equal(q.MarshalState(), state) {
			t.Errorf("retain=%v: re-encoded partition state differs", retain)
		}
	}
}

// Retention semantics survive a restore: records older than the
// restored horizon keep folding into the tail, and new buckets keep
// compacting old ones.
func TestPartitionStateRetentionSurvives(t *testing.T) {
	times := stateCorpus()
	// Reference: one partition sees everything.
	ref := newPartition(t, time.Hour, 36*time.Hour)
	fillPartition(ref, 0, times)
	late := mkRec(base+3600, "late.example.com", true) // behind the horizon
	ref.Observe(&late)

	// Checkpoint after the bulk, restore, then the late record.
	p := newPartition(t, time.Hour, 36*time.Hour)
	fillPartition(p, 0, times)
	q := newPartition(t, time.Hour, 36*time.Hour)
	if err := q.UnmarshalState(p.MarshalState()); err != nil {
		t.Fatal(err)
	}
	q.Observe(&late)

	if q.Records() != ref.Records() {
		t.Fatalf("Records: got %d, want %d", q.Records(), ref.Records())
	}
	qm, rm := q.Meta(), ref.Meta()
	if qm.TailRecords != rm.TailRecords {
		t.Errorf("late record did not fold into the restored tail: tail %d, want %d", qm.TailRecords, rm.TailRecords)
	}
	qa, ra := newEngine(t), newEngine(t)
	q.AllInto(qa)
	ref.AllInto(ra)
	if !bytes.Equal(qa.MarshalState(), ra.MarshalState()) {
		t.Error("all-time state differs from the always-live reference")
	}
}

// Restoring into a partition that already holds data folds, which is
// what lets a store absorb checkpoint shards after a shard-count
// change: half A checkpointed + half B ingested == everything ingested.
func TestPartitionStateFoldsIntoLoadedPartition(t *testing.T) {
	times := stateCorpus()
	a := newPartition(t, time.Hour, 0)
	fillPartition(a, 0, times[:len(times)/2])
	b := newPartition(t, time.Hour, 0)
	fillPartition(b, len(times)/2, times[len(times)/2:])
	if err := b.UnmarshalState(a.MarshalState()); err != nil {
		t.Fatal(err)
	}

	all := newPartition(t, time.Hour, 0)
	fillPartition(all, 0, times)

	ba, aa := newEngine(t), newEngine(t)
	b.AllInto(ba)
	all.AllInto(aa)
	if !bytes.Equal(ba.MarshalState(), aa.MarshalState()) {
		t.Error("checkpoint fold differs from single-partition ingest")
	}
	if b.Records() != all.Records() {
		t.Errorf("Records: got %d, want %d", b.Records(), all.Records())
	}
}

// Absorb is the same fold without a byte round-trip.
func TestPartitionAbsorb(t *testing.T) {
	times := stateCorpus()
	a := newPartition(t, time.Hour, 36*time.Hour)
	fillPartition(a, 0, times[:len(times)/2])
	b := newPartition(t, time.Hour, 36*time.Hour)
	fillPartition(b, len(times)/2, times[len(times)/2:])
	if err := b.Absorb(a); err != nil {
		t.Fatal(err)
	}

	all := newPartition(t, time.Hour, 36*time.Hour)
	fillPartition(all, 0, times)
	ba, aa := newEngine(t), newEngine(t)
	b.AllInto(ba)
	all.AllInto(aa)
	if !bytes.Equal(ba.MarshalState(), aa.MarshalState()) {
		t.Error("Absorb differs from single-partition ingest")
	}

	// Mismatched grids are rejected.
	c, err := New(Config{Metrics: testMetrics, Bucket: 30 * time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Absorb(c); err == nil {
		t.Error("absorbing a 30m grid into a 1h grid should fail")
	}
}

// Corrupt, truncated, or grid-mismatched state must fail without
// mutating the partition.
func TestPartitionStateErrors(t *testing.T) {
	p := newPartition(t, time.Hour, 36*time.Hour)
	fillPartition(p, 0, stateCorpus())
	state := p.MarshalState()

	fresh := func() *Partition { return newPartition(t, time.Hour, 36*time.Hour) }
	if err := fresh().UnmarshalState(nil); err == nil {
		t.Error("empty state accepted")
	}
	if err := fresh().UnmarshalState([]byte("NOPE")); err == nil {
		t.Error("garbage accepted")
	}
	step := len(state)/61 + 1
	for n := 0; n < len(state); n += step {
		q := fresh()
		if err := q.UnmarshalState(state[:n]); err == nil {
			t.Fatalf("truncation to %d/%d accepted", n, len(state))
		}
		if q.Records() != 0 || q.Buckets() != 0 {
			t.Fatalf("failed restore left state behind: %d records, %d buckets", q.Records(), q.Buckets())
		}
	}

	// A different bucket width is a different grid: refuse it.
	q, err := New(Config{Metrics: testMetrics, Bucket: 30 * time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if err := q.UnmarshalState(state); err == nil || !strings.Contains(err.Error(), "bucket width") {
		t.Errorf("grid mismatch not rejected: %v", err)
	}
}
