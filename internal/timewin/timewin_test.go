package timewin

import (
	"errors"
	"reflect"
	"testing"
	"time"

	"syriafilter/internal/core"
	"syriafilter/internal/logfmt"
)

// testMetrics keeps bucket engines cheap: the three modules cover a
// dataset counter, the 5-minute time series and the domain counters,
// which is enough to detect any mis-routed or double-merged record.
var testMetrics = []string{"datasets", "timeseries", "domains"}

var base = time.Date(2011, 8, 1, 0, 0, 0, 0, time.UTC).Unix()

func mkRec(t int64, host string, censored bool) logfmt.Record {
	rec := logfmt.Record{
		Time: t, Host: host, Path: "/", Method: "GET", Scheme: "http",
		Port: 80, ClientIP: "0.0.0.0", Filter: logfmt.Observed,
	}
	rec.SetProxy(42)
	if censored {
		rec.Filter = logfmt.Denied
		rec.Exception = logfmt.ExPolicyDenied
	}
	return rec
}

func newPartition(t *testing.T, bucket, retain time.Duration) *Partition {
	t.Helper()
	p, err := New(Config{Metrics: testMetrics, Bucket: bucket, Retain: retain})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func newEngine(t *testing.T) *core.Engine {
	t.Helper()
	e, err := core.NewEngine(core.Options{}, testMetrics...)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// sameResults compares the observable state of two engines through the
// result methods the test modules feed.
func sameResults(t *testing.T, got, want *core.Engine) {
	t.Helper()
	if g, w := got.Dataset(core.DFull), want.Dataset(core.DFull); g != w {
		t.Errorf("Dataset(DFull) = %+v, want %+v", g, w)
	}
	gts := got.TimeSeries(base-40*86400, base+40*86400)
	wts := want.TimeSeries(base-40*86400, base+40*86400)
	if !reflect.DeepEqual(gts, wts) {
		t.Errorf("TimeSeries differs: got %d points, want %d", len(gts), len(wts))
	}
	ga, gc := got.TopDomains(10)
	wa, wc := want.TopDomains(10)
	if !reflect.DeepEqual(ga, wa) || !reflect.DeepEqual(gc, wc) {
		t.Errorf("TopDomains differs:\n got %v / %v\nwant %v / %v", ga, gc, wa, wc)
	}
}

// A record exactly on a bucket edge must land in the bucket that starts
// there, deterministically.
func TestBucketBoundaryRouting(t *testing.T) {
	p := newPartition(t, time.Hour, 0)
	recs := []logfmt.Record{
		mkRec(base, "a.example.com", false),        // bucket 0 start
		mkRec(base+3599, "b.example.com", true),    // bucket 0 last second
		mkRec(base+3600, "c.example.com", false),   // exactly on the edge: bucket 1
		mkRec(base+2*3600, "d.example.com", false), // bucket 2 start
	}
	for i := range recs {
		p.Observe(&recs[i])
	}
	if p.Buckets() != 3 {
		t.Fatalf("Buckets() = %d, want 3", p.Buckets())
	}

	count := func(w Window) uint64 {
		dst := newEngine(t)
		cov, err := p.RangeInto(dst, w)
		if err != nil {
			t.Fatal(err)
		}
		return cov.Records
	}
	if n := count(Window{From: base, To: base + 3600}); n != 2 {
		t.Errorf("first bucket covers %d records, want 2", n)
	}
	if n := count(Window{From: base + 3600, To: base + 2*3600}); n != 1 {
		t.Errorf("edge record bucket covers %d records, want 1", n)
	}
	// A window touching one second of a bucket merges the whole bucket
	// and reports the widened span.
	dst := newEngine(t)
	cov, err := p.RangeInto(dst, Window{From: base + 1, To: base + 2})
	if err != nil {
		t.Fatal(err)
	}
	if cov.FromUnix != base || cov.ToUnix != base+3600 || cov.Records != 2 {
		t.Errorf("coverage = %+v, want bucket-aligned [base, base+3600) with 2 records", cov)
	}
}

// spread produces a corpus across n hourly buckets with mixed classes.
func spread(n int) []logfmt.Record {
	var recs []logfmt.Record
	hosts := []string{"news.example.com", "video.example.org", "blocked.example.net"}
	for i := 0; i < n; i++ {
		for j := 0; j < 3; j++ {
			recs = append(recs, mkRec(base+int64(i)*3600+int64(j*917), hosts[j], j == 2))
		}
	}
	return recs
}

// Retention compaction must bound the live ring while keeping the
// all-time merge exactly equal to a batch run over the same records.
func TestCompactionPreservesAllTime(t *testing.T) {
	p := newPartition(t, time.Hour, 10*time.Hour)
	batch := newEngine(t)
	recs := spread(100)
	for i := range recs {
		p.Observe(&recs[i])
		batch.Observe(&recs[i])
	}
	if p.Buckets() > 10 {
		t.Errorf("live buckets = %d, want <= 10 (retention must bound memory)", p.Buckets())
	}
	m := p.Meta()
	if m.TailRecords == 0 {
		t.Fatal("no records compacted into the tail on a 100-bucket corpus with 10-bucket retention")
	}
	if got := p.Records(); got != uint64(len(recs)) {
		t.Fatalf("Records() = %d, want %d", got, len(recs))
	}

	all := newEngine(t)
	p.AllInto(all)
	sameResults(t, all, batch)

	// The full-corpus range query equals the all-time merge too.
	full := newEngine(t)
	cov, err := p.RangeInto(full, Window{})
	if err != nil {
		t.Fatal(err)
	}
	if cov.Records != uint64(len(recs)) || !cov.Tail {
		t.Errorf("full-range coverage = %+v, want all %d records incl. tail", cov, len(recs))
	}
	sameResults(t, full, batch)
}

// A range inside the retained window is exact; a range that begins
// inside the compacted tail is a RetentionError.
func TestRangeVsRetentionHorizon(t *testing.T) {
	p := newPartition(t, time.Hour, 10*time.Hour)
	recs := spread(100)
	for i := range recs {
		p.Observe(&recs[i])
	}
	m := p.Meta()
	horizon := m.Buckets[0].StartUnix

	// Exact: a window starting at the horizon.
	dst := newEngine(t)
	ref := newEngine(t)
	win := Window{From: horizon, To: horizon + 3*3600}
	cov, err := p.RangeInto(dst, win)
	if err != nil {
		t.Fatal(err)
	}
	for i := range recs {
		if win.Contains(recs[i].Time) {
			ref.Observe(&recs[i])
		}
	}
	sameResults(t, dst, ref)
	if cov.Buckets != 3 || cov.Tail {
		t.Errorf("coverage = %+v, want 3 live buckets and no tail", cov)
	}

	// Inexact: a window reaching into the tail.
	_, err = p.RangeInto(newEngine(t), Window{From: horizon - 3600, To: horizon + 3600})
	var re *RetentionError
	if !errors.As(err, &re) {
		t.Fatalf("range into the tail: err = %v, want RetentionError", err)
	}
	if re.HorizonUnix != m.TailToUnix {
		t.Errorf("horizon = %d, want tail end %d", re.HorizonUnix, m.TailToUnix)
	}
}

// Records arriving behind the horizon fold into the tail, keeping the
// all-time view exact without resurrecting compacted buckets.
func TestLateRecordFoldsIntoTail(t *testing.T) {
	p := newPartition(t, time.Hour, 5*time.Hour)
	batch := newEngine(t)
	recs := spread(30)
	for i := range recs {
		p.Observe(&recs[i])
		batch.Observe(&recs[i])
	}
	buckets := p.Buckets()
	tailBefore := p.Meta().TailRecords

	late := mkRec(base+3600, "late.example.com", true) // far behind the horizon
	p.Observe(&late)
	batch.Observe(&late)

	if p.Buckets() != buckets {
		t.Errorf("late record changed the live ring: %d -> %d buckets", buckets, p.Buckets())
	}
	if got := p.Meta().TailRecords; got != tailBefore+1 {
		t.Errorf("tail records = %d, want %d", got, tailBefore+1)
	}
	all := newEngine(t)
	p.AllInto(all)
	sameResults(t, all, batch)
}

func TestMergeMeta(t *testing.T) {
	var agg Meta
	MergeMeta(&agg, Meta{
		BucketSeconds: 3600,
		Buckets: []BucketMeta{
			{StartUnix: base, Records: 2},
			{StartUnix: base + 3600, Records: 1},
		},
		TailRecords: 5, TailFromUnix: base - 7200, TailToUnix: base,
	})
	MergeMeta(&agg, Meta{
		BucketSeconds: 3600,
		Buckets: []BucketMeta{
			{StartUnix: base, Records: 3},
			{StartUnix: base + 7200, Records: 4},
		},
		TailRecords: 2, TailFromUnix: base - 3600, TailToUnix: base,
	})
	if len(agg.Buckets) != 3 {
		t.Fatalf("merged buckets = %d, want 3", len(agg.Buckets))
	}
	if agg.Buckets[0].Records != 5 || agg.Buckets[1].Records != 1 || agg.Buckets[2].Records != 4 {
		t.Errorf("merged bucket records = %+v", agg.Buckets)
	}
	if agg.TailRecords != 7 || agg.TailFromUnix != base-7200 || agg.TailToUnix != base {
		t.Errorf("merged tail = %d [%d, %d)", agg.TailRecords, agg.TailFromUnix, agg.TailToUnix)
	}
}

func TestParseTimeAndStep(t *testing.T) {
	want := time.Date(2011, 8, 3, 6, 0, 0, 0, time.UTC).Unix()
	for _, s := range []string{"1312351200", "2011-08-03T06:00:00Z", "2011-08-03T06:00:00", "2011-08-03T06:00"} {
		got, err := ParseTime(s)
		if err != nil || got != want {
			t.Errorf("ParseTime(%q) = %d, %v; want %d", s, got, err, want)
		}
	}
	if got, err := ParseTime("2011-08-03"); err != nil || got != want-6*3600 {
		t.Errorf("ParseTime(date) = %d, %v", got, err)
	}
	if _, err := ParseTime("yesterday"); err == nil {
		t.Error("ParseTime accepted garbage")
	}
	if got, err := ParseStep("2h"); err != nil || got != 7200 {
		t.Errorf("ParseStep(2h) = %d, %v", got, err)
	}
	if got, err := ParseStep("86400"); err != nil || got != 86400 {
		t.Errorf("ParseStep(86400) = %d, %v", got, err)
	}
	if _, err := ParseStep("soon"); err == nil {
		t.Error("ParseStep accepted garbage")
	}
}

func TestWindowPredicate(t *testing.T) {
	w := Window{From: 100, To: 200}
	for _, tc := range []struct {
		t    int64
		want bool
	}{{99, false}, {100, true}, {199, true}, {200, false}} {
		if got := w.Contains(tc.t); got != tc.want {
			t.Errorf("Contains(%d) = %v, want %v", tc.t, got, tc.want)
		}
	}
	if !(Window{}).Contains(42) {
		t.Error("zero window must contain everything")
	}
	if !w.Overlaps(150, 250) || w.Overlaps(200, 300) || !w.Covers(100, 200) || w.Covers(99, 200) {
		t.Error("Overlaps/Covers edge semantics broken")
	}
}
