package synth

import (
	"fmt"

	"syriafilter/internal/categorydb"
	"syriafilter/internal/policy"
	"syriafilter/internal/stats"
	"syriafilter/internal/torsim"
)

// behaviour flags mark the sparse censorship-prone habits that concentrate
// censored traffic in few users (Fig. 4: only 1.57% of users are censored,
// and they are far more active than the rest).
type behaviour uint16

const (
	bhSkype       behaviour = 1 << iota // Skype client: update checks + CONNECT
	bhMSN                               // MSN messenger + ceipmsn telemetry
	bhMetacafe                          // keeps requesting the blocked video site
	bhPluginSites                       // browses pages embedding FB social plugins
	bhZynga                             // Facebook games (proxy-bearing tracker URLs)
	bhNews                              // opposition/news sites (mostly blocked)
	bhIsraeli                           // .il sites and Israeli IP literals
	bhAnonymizer                        // web proxies / VPN endpoints
	bhTor                               // Tor client
	bhBitTorrent                        // announces to trackers
	bhGCache                            // reads Google cache copies
	bhFBPages                           // visits targeted Facebook pages
	bhUploader                          // uploads videos (upload.youtube.com)
)

// user is one synthetic Syrian Internet user.
type user struct {
	ip       uint32
	agent    string
	activity float64 // relative request-rate weight (heavy-tailed)
	flags    behaviour
}

var userAgents = []string{
	"Mozilla/5.0 (Windows NT 6.1; rv:5.0) Gecko/20100101 Firefox/5.0",
	"Mozilla/5.0 (Windows NT 5.1) AppleWebKit/534.30 Chrome/12.0.742.122",
	"Mozilla/4.0 (compatible; MSIE 8.0; Windows NT 5.1)",
	"Mozilla/4.0 (compatible; MSIE 7.0; Windows NT 5.1)",
	"Mozilla/5.0 (Windows NT 6.0) AppleWebKit/535.1 Chrome/13.0.782.112",
	"Opera/9.80 (Windows NT 5.1; U; en) Presto/2.9.168 Version/11.50",
	"Skype/5.3.0.120 (Windows)",
	"Mozilla/5.0 (X11; Linux i686; rv:5.0) Gecko/20100101 Firefox/5.0",
}

// skypeAgent is assigned to Skype-flagged users part of the time: the
// paper notes user agents of software retrying censored pages.
const skypeAgentIdx = 6

// buildUsers draws the population. Activity is lognormal-ish (median ~15,
// heavy tail) so a small share of users emits >100 requests.
func buildUsers(r *stats.Rand, n int) []user {
	users := make([]user, n)
	for i := range users {
		u := &users[i]
		u.ip = 0x1f400000 + uint32(i)*7 + r.Uint32()%5 // 31.64.0.0+ Syrian client space
		u.agent = userAgents[r.Intn(len(userAgents)-1)]
		// exp(N(ln 15, 1.05)) request-weight tail.
		u.activity = expApprox(2.7 + 1.05*r.NormFloat64())

		// Sparse censorship-prone behaviours. Probabilities tuned so
		// ~1.5–2% of users ever hit a censored URL while total censored
		// traffic lands near 1% of the corpus. Incidence scales with the
		// user's activity: heavy users are likelier to run IM clients,
		// browse widely, and hit collateral keywords — the correlation the
		// paper observes in Fig. 4(b).
		actF := u.activity / 15
		if actF < 0.4 {
			actF = 0.4
		}
		if actF > 3 {
			actF = 3
		}
		if r.Bool(0.0028 * actF) {
			u.flags |= bhSkype
			if r.Bool(0.5) {
				u.agent = userAgents[skypeAgentIdx]
			}
		}
		if r.Bool(0.002 * actF) {
			u.flags |= bhMSN
		}
		if r.Bool(0.002 * actF) {
			u.flags |= bhMetacafe
		}
		if r.Bool(0.0035 * actF) {
			u.flags |= bhPluginSites
		}
		if r.Bool(0.002 * actF) {
			u.flags |= bhZynga
		}
		if r.Bool(0.0015 * actF) {
			u.flags |= bhNews
		}
		if r.Bool(0.003) {
			u.flags |= bhIsraeli
		}
		if r.Bool(0.006) {
			u.flags |= bhAnonymizer
		}
		if r.Bool(0.012) {
			u.flags |= bhTor
		}
		if r.Bool(0.015) {
			u.flags |= bhBitTorrent
		}
		if r.Bool(0.002) {
			u.flags |= bhGCache
		}
		if r.Bool(0.003) {
			u.flags |= bhFBPages
		}
		if r.Bool(0.002) {
			u.flags |= bhUploader
		}
	}
	// Guarantee every behaviour is represented even in small populations,
	// so scaled-down corpora still contain all traffic kinds.
	seedFlags := []behaviour{
		bhSkype, bhMSN, bhMetacafe, bhPluginSites, bhZynga, bhNews,
		bhIsraeli, bhAnonymizer, bhTor, bhBitTorrent, bhGCache, bhFBPages,
		bhUploader,
	}
	for i, f := range seedFlags {
		if i < len(users) {
			users[i].flags |= f
		}
	}
	return users
}

func expApprox(x float64) float64 {
	// Cheap exp for the activity weights; precision is irrelevant here.
	if x > 12 {
		x = 12
	}
	// exp(x) via repeated squaring of exp(x/16) Taylor series.
	y := 1 + x/16*(1+x/32*(1+x/48))
	y *= y
	y *= y
	y *= y
	y *= y
	return y
}

// world holds the static universe: domains, catalogs, consensus, rules.
type world struct {
	users []user

	// Long-tail browsing domains and their Zipf sampler.
	tail     []string
	tailZipf *stats.Zipf

	// Anonymizer hosts; proxyish ones sometimes emit keyword-bearing URLs.
	anonHosts    []string
	anonProxyish []bool

	// Generated blocked domains (news/forums/NA/other categories)
	// extending the paper list.
	blockedNews   []string
	blockedForums []string
	blockedMisc   []string
	blockedExtra  []string

	// BitTorrent world.
	trackers   []string
	infoHashes [][20]byte
	peerIDs    map[int][20]byte // user index -> stable peer id

	consensus *torsim.Consensus
	catdb     *categorydb.DB
	ruleset   *policy.Ruleset
	engine    *policy.Engine
}

func buildWorld(cfg *Config, r *stats.Rand) (*world, error) {
	w := &world{
		users:   buildUsers(r.Fork(), cfg.Users),
		catdb:   categorydb.PaperSeed(),
		peerIDs: make(map[int][20]byte),
	}

	// Long-tail domains, Zipf-popular (Fig. 2's power-law body). Names are
	// two-label so each is its own registered domain.
	w.tail = make([]string, cfg.TailDomains)
	for i := range w.tail {
		w.tail[i] = fmt.Sprintf("site-%05d%s", i, tldFor(i))
	}
	z, err := stats.NewZipf(len(w.tail), 0.85)
	if err != nil {
		return nil, err
	}
	w.tailZipf = z

	// Anonymizer population: 821 hosts, ~7.3% "proxyish" (their URLs
	// sometimes carry the blacklisted keyword and get censored), the rest
	// never filtered (§7.2, Fig. 10).
	w.anonHosts = make([]string, cfg.AnonymizerHosts)
	w.anonProxyish = make([]bool, cfg.AnonymizerHosts)
	for i := range w.anonHosts {
		w.anonHosts[i] = fmt.Sprintf("%s-%03d.net", anonNames[i%len(anonNames)], i)
		w.anonProxyish[i] = i%14 == 1 // ~7.1%
		w.catdb.Add(w.anonHosts[i], categorydb.CatAnonymizer)
	}

	// Generated blocked domains on top of the paper-named ones, shaping
	// Table 8/9: news dominates the domain count.
	for i := 0; i < cfg.BlockedNewsDomains; i++ {
		d := fmt.Sprintf("syria-news-%02d.info", i)
		w.blockedNews = append(w.blockedNews, d)
		w.catdb.Add(d, categorydb.CatGeneralNews)
	}
	forumStems := []string{"shamtalk", "halabvoice", "muntadayat", "hiwarat",
		"majalisuna", "sahataleil", "deraaboard"}
	for _, stem := range forumStems {
		d := stem + ".org"
		w.blockedForums = append(w.blockedForums, d)
		w.catdb.Add(d, categorydb.CatForums)
	}
	for i := 0; i < 30; i++ {
		// NA bucket: hosts McAfee cannot categorize (Table 9's 42 NA).
		// Each name's letter stem is unique so no token spans domains.
		d := fmt.Sprintf("%s%02d.biz", miscStem(i), i)
		w.blockedMisc = append(w.blockedMisc, d)
	}

	// Category variety for Table 9: a few more blocked streaming /
	// education / internet-service / entertainment sites.
	extras := []struct {
		host string
		cat  categorydb.Category
	}{
		{"shaamtube.net", categorydb.CatStreamingMedia},
		{"aflamhouse.com", categorydb.CatStreamingMedia},
		{"clipdama.net", categorydb.CatStreamingMedia},
		{"watchqanat.com", categorydb.CatStreamingMedia},
		{"tarbiyaonline.org", categorydb.CatEducation},
		{"maktabaty.net", categorydb.CatEducation},
		{"voipdamas.com", categorydb.CatInternetSvcs},
		{"smsgatewaysy.net", categorydb.CatInternetSvcs},
		{"dialupzone.com", categorydb.CatInternetSvcs},
		{"sahratona.com", categorydb.CatEntertainment},
		{"tarabmusic.net", categorydb.CatEntertainment},
	}
	for _, e := range extras {
		w.blockedExtra = append(w.blockedExtra, e.host)
		w.catdb.Add(e.host, e.cat)
	}

	// BitTorrent trackers and content. tracker-proxy.furk.net reproduces
	// §7.3's censored announces (keyword in tracker host).
	w.trackers = []string{
		"tracker.openbittorrent.example", "tracker.publicbt.example",
		"announce.thepiratebay.org", "tracker.mininova.org",
		"tracker-proxy.furk.net",
	}
	nHashes := cfg.TotalRequests / 60
	if nHashes < 300 {
		nHashes = 300
	}
	w.infoHashes = make([][20]byte, nHashes)
	hr := r.Fork()
	for i := range w.infoHashes {
		for j := 0; j < 20; j++ {
			w.infoHashes[i][j] = byte(hr.Uint64())
		}
	}

	w.consensus = torsim.NewConsensus(cfg.Seed^0xf0f0, cfg.TorRelays)

	// Assemble the effective ruleset: paper base + generated domains +
	// hotsptshld.com (Table 5 shows it censored during the Aug 3 peak).
	rs := policy.PaperRuleset()
	rs.Domains = append(rs.Domains, "hotsptshld.com")
	rs.Domains = append(rs.Domains, w.blockedNews...)
	rs.Domains = append(rs.Domains, w.blockedForums...)
	rs.Domains = append(rs.Domains, w.blockedMisc...)
	rs.Domains = append(rs.Domains, w.blockedExtra...)
	w.ruleset = rs
	w.engine = policy.Compile(rs)
	return w, nil
}

func tldFor(i int) string {
	switch i % 11 {
	case 0, 3, 7:
		return ".com"
	case 1, 9:
		return ".net"
	case 2:
		return ".org"
	case 4:
		return ".info"
	case 5:
		return ".com.sy"
	case 6:
		return ".biz" // keeps TLD-collapse honest: .biz has allowed sites
	case 8:
		return ".cc"
	default:
		return ".us"
	}
}

// miscStem derives a distinct 6-letter stem for uncategorized host i.
func miscStem(i int) string {
	b := make([]byte, 6)
	x := uint32(i)*2654435761 + 12345
	for j := range b {
		b[j] = byte('a' + x%26)
		x = x*1103515245 + 12345
	}
	return string(b)
}

var anonNames = []string{
	"vtunnel", "hidebrowse", "cloakweb", "surfshield", "freeway",
	"openpath", "bypassit", "webveil", "tunnelbear", "ghostsurf",
	"netfreedom", "unblockr",
}
