package synth

import (
	"strings"
	"testing"
	"time"

	"syriafilter/internal/policy"
)

func smallGen(t *testing.T, seed uint64) *Generator {
	t.Helper()
	g, err := New(Config{Seed: seed, TotalRequests: 60000})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func drain(g *Generator) []Request {
	var out []Request
	for {
		r, ok := g.Next()
		if !ok {
			return out
		}
		out = append(out, r)
	}
}

func TestConfigValidate(t *testing.T) {
	if _, err := New(Config{Seed: 1, TotalRequests: 0}); err == nil {
		t.Error("zero TotalRequests accepted")
	}
	if _, err := New(Config{Seed: 1, TotalRequests: 100}); err == nil {
		t.Error("tiny corpus accepted")
	}
	cfg := Config{TotalRequests: 50000}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.Users == 0 || cfg.TailDomains == 0 || cfg.AnonymizerHosts != 821 {
		t.Errorf("defaults not applied: %+v", cfg)
	}
}

func TestDeterminism(t *testing.T) {
	a := drain(smallGen(t, 7))
	b := drain(smallGen(t, 7))
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("request %d differs:\n%+v\n%+v", i, a[i], b[i])
		}
	}
	c := drain(smallGen(t, 8))
	if len(c) == len(a) {
		same := true
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical corpora")
		}
	}
}

func TestTimeOrderingAndWindow(t *testing.T) {
	reqs := drain(smallGen(t, 3))
	if len(reqs) < 50000 {
		t.Fatalf("only %d requests generated", len(reqs))
	}
	start := time.Date(2011, 7, 22, 0, 0, 0, 0, time.UTC).Unix()
	end := time.Date(2011, 8, 7, 0, 0, 0, 0, time.UTC).Unix()
	prev := int64(0)
	for i, r := range reqs {
		if r.Time < prev {
			t.Fatalf("request %d out of order: %d after %d", i, r.Time, prev)
		}
		prev = r.Time
		if r.Time < start || r.Time >= end {
			t.Fatalf("request %d outside observation window: %s", i, time.Unix(r.Time, 0).UTC())
		}
	}
}

func TestVolumeNearTarget(t *testing.T) {
	reqs := drain(smallGen(t, 5))
	n := len(reqs)
	if n < 54000 || n > 70000 {
		t.Errorf("realized corpus size %d, want ~60000", n)
	}
}

func TestCorpusContainsAllTrafficKinds(t *testing.T) {
	g := smallGen(t, 11)
	cons := g.Consensus()
	reqs := drain(g)
	var hasConnect, hasTor, hasBT, hasPlugin, hasIsraeliIP, hasFBPage,
		hasUpload, hasGCache, hasAnnounceProxyTracker, hasMetacafe, hasAnon bool
	for i := range reqs {
		r := &reqs[i]
		if r.Method == "CONNECT" {
			hasConnect = true
		}
		if cons.IsRelayEndpoint(r.Host, r.Port) {
			hasTor = true
		}
		if strings.HasPrefix(r.Query, "info_hash=") {
			hasBT = true
			if r.Host == "tracker-proxy.furk.net" {
				hasAnnounceProxyTracker = true
			}
		}
		if strings.HasPrefix(r.Path, "/plugins/") || strings.HasPrefix(r.Path, "/extern/") {
			hasPlugin = true
		}
		if strings.HasPrefix(r.Host, "84.229.") || strings.HasPrefix(r.Host, "212.150.") {
			hasIsraeliIP = true
		}
		if r.Host == "www.facebook.com" && strings.HasPrefix(r.Path, "/Syrian.") {
			hasFBPage = true
		}
		if r.Host == "upload.youtube.com" {
			hasUpload = true
		}
		if r.Host == "webcache.googleusercontent.com" {
			hasGCache = true
		}
		if r.Host == "www.metacafe.com" {
			hasMetacafe = true
		}
		if strings.Contains(r.Host, "vtunnel-") || strings.Contains(r.Host, "hidebrowse-") {
			hasAnon = true
		}
	}
	checks := map[string]bool{
		"CONNECT":            hasConnect,
		"Tor":                hasTor,
		"BitTorrent":         hasBT,
		"FB plugin":          hasPlugin,
		"Israeli IP":         hasIsraeliIP,
		"targeted FB page":   hasFBPage,
		"upload.youtube.com": hasUpload,
		"Google cache":       hasGCache,
		"censored tracker":   hasAnnounceProxyTracker,
		"metacafe":           hasMetacafe,
		"anonymizer":         hasAnon,
	}
	for name, ok := range checks {
		if !ok {
			t.Errorf("corpus lacks %s traffic", name)
		}
	}
}

func TestGroundTruthCensoredShare(t *testing.T) {
	g := smallGen(t, 13)
	engine := g.Engine()
	total, censored := 0, 0
	for {
		r, ok := g.Next()
		if !ok {
			break
		}
		total++
		preq := policy.Request{Host: r.Host, Port: r.Port, Path: r.Path, Query: r.Query, Scheme: r.Scheme, Method: r.Method}
		if engine.Evaluate(&preq).Action != policy.Allow {
			censored++
		}
	}
	share := float64(censored) / float64(total)
	// The paper's Dfull shows ~0.98% policy-censored traffic.
	if share < 0.004 || share > 0.022 {
		t.Errorf("ground-truth censored share = %v, want ~0.01", share)
	}
}

func TestAug3IMSurge(t *testing.T) {
	g, err := New(Config{Seed: 17, TotalRequests: 250000})
	if err != nil {
		t.Fatal(err)
	}
	aug3 := time.Date(2011, 8, 3, 0, 0, 0, 0, time.UTC).Unix()
	imPeak, imOff := 0, 0
	for {
		r, ok := g.Next()
		if !ok {
			break
		}
		if r.Time < aug3 || r.Time >= aug3+24*3600 {
			continue
		}
		isIM := strings.Contains(r.Host, "skype") || r.Host == "messenger.live.com"
		if !isIM {
			continue
		}
		h := float64(r.Time-aug3) / 3600
		switch {
		case h >= 8 && h < 9.5:
			imPeak++
		case h >= 12 && h < 16:
			imOff++
		}
	}
	// Per-hour IM rate in the 8:00–9:30 window must far exceed the
	// afternoon rate (Fig. 6's RCV peak).
	peakRate := float64(imPeak) / 1.5
	offRate := float64(imOff) / 4
	if imPeak == 0 || peakRate < 2*offRate {
		t.Errorf("IM surge missing: peak %.1f/h vs off %.1f/h", peakRate, offRate)
	}
}

func TestFridayDrop(t *testing.T) {
	g, err := New(Config{Seed: 19, TotalRequests: 150000})
	if err != nil {
		t.Fatal(err)
	}
	perDay := map[string]int{}
	for {
		r, ok := g.Next()
		if !ok {
			break
		}
		perDay[time.Unix(r.Time, 0).UTC().Format("2006-01-02")]++
	}
	if perDay["2011-08-05"] >= perDay["2011-08-02"]*3/4 {
		t.Errorf("Friday Aug 5 (%d) should be well below Aug 2 (%d)",
			perDay["2011-08-05"], perDay["2011-08-02"])
	}
	if perDay["2011-07-22"] >= perDay["2011-08-02"]/4 {
		t.Errorf("July days (%d) should be small vs August (%d)",
			perDay["2011-07-22"], perDay["2011-08-02"])
	}
}

func TestRulesetIncludesGeneratedDomains(t *testing.T) {
	g := smallGen(t, 23)
	rs := g.Ruleset()
	// ~105 suspected domains: paper-named + generated.
	if len(rs.Domains) < 90 || len(rs.Domains) > 130 {
		t.Errorf("domain blacklist size = %d, want ~105", len(rs.Domains))
	}
	found := false
	for _, d := range rs.Domains {
		if strings.HasPrefix(d, "syria-news-") {
			found = true
			break
		}
	}
	if !found {
		t.Error("generated news domains missing from ruleset")
	}
}

func TestCategoryDBCoversGeneratedHosts(t *testing.T) {
	g := smallGen(t, 29)
	db := g.CategoryDB()
	if db.Classify("syria-news-01.info") != "General News" {
		t.Error("generated news domain not categorized")
	}
	if !db.IsAnonymizer("vtunnel-000.net") {
		t.Error("generated anonymizer not categorized")
	}
}

func TestUserAgentsAndIPsStable(t *testing.T) {
	g := smallGen(t, 31)
	reqs := drain(g)
	agents := map[uint32]string{}
	for i := range reqs {
		r := &reqs[i]
		if prev, ok := agents[r.ClientIP]; ok && prev != r.UserAgent {
			t.Fatalf("client %x changed user agent", r.ClientIP)
		}
		agents[r.ClientIP] = r.UserAgent
	}
	if len(agents) < 300 {
		t.Errorf("only %d distinct clients", len(agents))
	}
}

func BenchmarkGenerate(b *testing.B) {
	newGen := func(seed uint64) *Generator {
		g, err := New(Config{Seed: seed, TotalRequests: 1000000})
		if err != nil {
			b.Fatal(err)
		}
		return g
	}
	g := newGen(1)
	seed := uint64(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := g.Next(); !ok {
			// Corpus exhausted: roll a fresh one (setup cost excluded).
			b.StopTimer()
			seed++
			g = newGen(seed)
			b.StartTimer()
		}
	}
}
