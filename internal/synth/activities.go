package synth

import (
	"fmt"

	"syriafilter/internal/bittorrent"
	"syriafilter/internal/stats"
	"syriafilter/internal/torsim"
	"syriafilter/internal/urlx"
)

// headSite is one of the high-traffic destinations of Table 4.
type headSite struct {
	host   string
	weight float64
	kind   headKind
}

type headKind uint8

const (
	hkGoogle headKind = iota
	hkXvideos
	hkFacebook
	hkMicrosoft
	hkWindowsUpdate
	hkMSNPortal
	hkYahoo
	hkYouTube
	hkWikipedia
	hkTwitter
	hkAmazon
	hkDailymotion
	hkNewsAllowed
	hkLiveWeb
	hkPlain
)

// headSites carries Table 4's allowed-domain mix. gstatic/fbcdn/analytics/
// doubleclick volume arrives as page assets rather than direct visits.
var headSites = []headSite{
	{"www.google.com", 24, hkGoogle},
	{"www.xvideos.com", 9, hkXvideos},
	{"www.facebook.com", 14, hkFacebook},
	{"www.microsoft.com", 8, hkMicrosoft},
	{"update.windowsupdate.com", 7.5, hkWindowsUpdate},
	{"www.msn.com", 5, hkMSNPortal},
	{"www.yahoo.com", 4.5, hkYahoo},
	{"www.youtube.com", 6, hkYouTube},
	{"ar.wikipedia.org", 2.0, hkWikipedia},
	{"twitter.com", 2.8, hkTwitter},
	{"www.amazon.com", 0.06, hkAmazon},
	{"www.dailymotion.com", 1.6, hkDailymotion},
	{"news.bbc.co.uk", 1.4, hkNewsAllowed},
	{"www.live.com", 1.8, hkLiveWeb},
	// Smaller social networks (Table 13): linkedin/hi5/skyrock mostly
	// allowed; badoo and netlog are URL-blacklisted so every visit is
	// censored (the paper's "never allowed" pair).
	{"www.linkedin.com", 0.35, hkPlain},
	{"www.hi5.com", 0.2, hkPlain},
	{"www.skyrock.com", 0.08, hkPlain},
	{"www.badoo.com", 0.05, hkPlain},
	{"www.netlog.com", 0.04, hkPlain},
	{"www.flickr.com", 0.3, hkPlain},
	{"www.ning.com", 0.05, hkPlain},
	{"www.meetup.com", 0.02, hkPlain},
}

var headCum = func() []float64 {
	cum := make([]float64, len(headSites))
	total := 0.0
	for i, s := range headSites {
		total += s.weight
		cum[i] = total
	}
	return cum
}()

var searchWords = []string{
	"weather", "football", "news", "music", "movies", "recipes", "jobs",
	"damascus", "aleppo", "homs", "university", "currency", "mobile",
	"syria", "lebanon", "ramadan",
}

// toolWords are anti-censorship tool names users search for; any URL
// carrying them is keyword-censored, across many otherwise-allowed
// domains — the cross-domain collateral §5.4 describes.
var toolWords = []string{"hotspotshield", "ultrasurf", "ultrareach"}

// emitHeadVisit renders one visit to a Table 4 head domain, with the
// page-asset fan-out that inflates allowed traffic (§4).
func (g *Generator) emitHeadVisit(u *user, t func() int64) {
	site := headSites[g.r.WeightedChoice(headCum)]
	switch site.kind {
	case hkGoogle:
		q := "q=" + searchWords[g.r.Intn(len(searchWords))]
		g.push(u, t(), site.host, 80, "/search", q)
		if g.r.Bool(0.55) {
			g.push(u, t(), "www.gstatic.com", 80, fmt.Sprintf("/ui/v1/sprite%d.png", g.r.Intn(9)), "")
		}
		// Toolbar-equipped clients fire the §5.4 collateral-damage call.
		if g.r.Bool(0.008) {
			g.push(u, t(), "www.google.com", 80, "/tbproxy/af/query", q)
		}
		// Occasional cached-copy click from the results page (§7.4).
		if g.r.Bool(0.003) {
			g.emitGCache(u, t)
		}
	case hkXvideos:
		g.push(u, t(), site.host, 80, fmt.Sprintf("/video%d/", g.r.Intn(99999)), "")
		g.push(u, t(), "static.xvideos.com", 80, "/v2/css/main.css", "")
		g.pushAdsMaybe(u, t, 0.4)
	case hkFacebook:
		paths := []string{"/home.php", "/profile.php", "/friends/", "/photo.php"}
		g.push(u, t(), site.host, 80, paths[g.r.Intn(len(paths))], fbQuery(g, false))
		for i := 0; i < 1+g.r.Intn(2); i++ {
			g.push(u, t(), "static.ak.fbcdn.net", 80,
				fmt.Sprintf("/rsrc.php/v1/y%d/r/asset%d.png", g.r.Intn(9), g.r.Intn(512)), "")
		}
	case hkMicrosoft:
		if g.r.Bool(0.3) {
			g.push(u, t(), site.host, 80, "/en-us/download/details.aspx", fmt.Sprintf("id=%d", g.r.Intn(9999)))
		} else {
			g.push(u, t(), site.host, 80, "/en-us/default.aspx", "")
		}
	case hkWindowsUpdate:
		g.push(u, t(), site.host, 80, "/v9/windowsupdate/selfupdate/wuident.cab", fmt.Sprintf("%x", g.r.Uint32()))
	case hkMSNPortal:
		g.push(u, t(), site.host, 80, "/", "")
		g.push(u, t(), "col.stb.s-msn.com", 80, "/i/hp/logo.png", "")
		g.pushAdsMaybe(u, t, 0.4)
	case hkYahoo:
		// A slice of Yahoo component URLs carry the keyword (Table 4 shows
		// yahoo.com among the censored despite being mostly allowed).
		if g.r.Bool(0.035) {
			g.push(u, t(), "www.yahoo.com", 80, "/sdk/ajax_proxy.php", "cb="+fmt.Sprint(g.r.Intn(9999)))
		} else {
			g.push(u, t(), site.host, 80, "/", "")
		}
		g.push(u, t(), "l.yimg.com", 80, "/a/i/ww/met/th/logo.png", "")
	case hkYouTube:
		g.push(u, t(), site.host, 80, "/watch", fmt.Sprintf("v=%08x", g.r.Uint32()))
		g.push(u, t(), "i.ytimg.com", 80, fmt.Sprintf("/vi/%08x/default.jpg", g.r.Uint32()), "")
	case hkWikipedia:
		g.push(u, t(), site.host, 80, "/wiki/"+searchWords[g.r.Intn(len(searchWords))], "")
		// Wikipedia pages pull media from the blocked wikimedia.org
		// domain — the mechanism behind Table 4/8's wikimedia entries.
		if g.r.Bool(0.08) {
			g.push(u, t(), "upload.wikimedia.org", 80,
				fmt.Sprintf("/wikipedia/commons/thumb/img%d.jpg", g.r.Intn(2048)), "")
		}
	case hkTwitter:
		g.push(u, t(), site.host, 80, "/", "")
		// A rare Twitter widget URL carries the keyword (163 censored
		// requests in Table 13 against 2.8M allowed).
		if g.r.Bool(0.0005) {
			g.push(u, t(), "twitter.com", 80, "/statuses/proxy_widget.js", "")
		}
	case hkAmazon:
		g.push(u, t(), site.host, 80, fmt.Sprintf("/dp/B%07d", g.r.Intn(9999999)), "")
	case hkDailymotion:
		g.push(u, t(), site.host, 80, fmt.Sprintf("/video/x%05x", g.r.Intn(0xfffff)), "")
		g.pushAdsMaybe(u, t, 0.4)
	case hkNewsAllowed:
		g.push(u, t(), site.host, 80, "/news/world-middle-east-"+fmt.Sprint(10000000+g.r.Intn(999999)), "")
		g.pushAdsMaybe(u, t, 0.4)
	case hkLiveWeb:
		g.push(u, t(), "www.live.com", 80, "/", "")
	case hkPlain:
		g.push(u, t(), site.host, 80, "/", "")
		if g.r.Bool(0.3) {
			g.push(u, t(), site.host, 80, fmt.Sprintf("/profile/%d", g.r.Intn(99999)), "")
		}
	}
	g.maybePlugin(u, t, 0.004)
	g.maybeAnalytics(u, t)
}

// emitTailVisit renders a Zipf long-tail page visit with same-domain
// assets (Fig. 2's power law body).
func (g *Generator) emitTailVisit(u *user, t func() int64) {
	host := g.w.tail[g.w.tailZipf.Rank(g.r)]
	g.push(u, t(), host, 80, "/", "")
	for i, n := 0, g.r.Intn(4); i < n; i++ {
		g.push(u, t(), host, 80, fmt.Sprintf("/static/a%d.css", i), "")
	}
	g.maybeAnalytics(u, t)
	g.pushAdsMaybe(u, t, 0.18)
	g.maybePlugin(u, t, 0.004)
}

// pushAds emits one ad-network asset. A sliver of ad URLs carries the
// keyword (the paper's "ads delivery networks blocked as they generate
// requests containing the word proxy").
func (g *Generator) pushAds(u *user, t func() int64) {
	if g.r.Bool(0.0015) {
		g.push(u, t(), "ad.doubleclick.net", 80, "/adj/site/proxy;sz=728x90", fmt.Sprintf("ord=%d", g.r.Intn(1e9)))
		return
	}
	hosts := []string{"ad.doubleclick.net", "cdn.trafficholder.com", "media.adbrite.com"}
	g.push(u, t(), hosts[g.r.Intn(len(hosts))], 80, fmt.Sprintf("/ads/banner%d.gif", g.r.Intn(64)), "")
}

func (g *Generator) pushAdsMaybe(u *user, t func() int64, p float64) {
	if g.r.Bool(p) {
		g.pushAds(u, t)
	}
}

func (g *Generator) maybeAnalytics(u *user, t func() int64) {
	if g.r.Bool(0.06) {
		g.push(u, t(), "www.google-analytics.com", 80, "/__utm.gif", fmt.Sprintf("utmn=%d", g.r.Intn(1e9)))
	}
}

// fbPluginPaths reproduce Table 15's element mix (weights ∝ the table).
var fbPluginPaths = []struct {
	path   string
	weight float64
}{
	{"/plugins/like.php", 43},
	{"/extern/login_status.php", 39},
	{"/plugins/likebox.php", 4.8},
	{"/plugins/send.php", 4.4},
	{"/plugins/comments.php", 3.4},
	{"/fbml/fbjs_ajax_proxy.php", 2.6},
	{"/connect/canvas_proxy.php", 2.5},
	{"/ajax/proxy.php", 0.10},
	{"/platform/page_proxy.php", 0.09},
	{"/plugins/facepile.php", 0.04},
}

var fbPluginCum = func() []float64 {
	cum := make([]float64, len(fbPluginPaths))
	total := 0.0
	for i, p := range fbPluginPaths {
		total += p.weight
		cum[i] = total
	}
	return cum
}()

// maybePlugin embeds a Facebook social-plugin request with probability p.
// Plugin URLs always carry the keyword (Table 15: zero allowed requests
// for every plugin element), in the path or in the proxied href query.
func (g *Generator) maybePlugin(u *user, t func() int64, p float64) {
	if !g.r.Bool(p) {
		return
	}
	g.pushPlugin(u, t)
}

func (g *Generator) pushPlugin(u *user, t func() int64) {
	pp := fbPluginPaths[g.r.WeightedChoice(fbPluginCum)]
	query := fmt.Sprintf("app_id=%d&href=site-%d.example.com&fb_proxy=1&locale=ar_AR",
		100000+g.r.Intn(899999), g.r.Intn(4096))
	g.push(u, t(), "www.facebook.com", 80, pp.path, query)
}

// emitPluginPage is a plugin-heavy third-party page (flagged users).
func (g *Generator) emitPluginPage(u *user, t func() int64) {
	host := g.w.tail[g.w.tailZipf.Rank(g.r)]
	g.push(u, t(), host, 80, "/article.php", fmt.Sprintf("id=%d", g.r.Intn(9999)))
	for i, n := 0, 1+g.r.Intn(3); i < n; i++ {
		g.pushPlugin(u, t)
	}
	g.maybeAnalytics(u, t)
}

// emitSkype is the Skype client behaviour: repeated update checks and
// CONNECT attempts, all censored (skype.com is domain-blocked). The paper
// observes exactly this: 9% of Skype requests are denied update attempts
// and client software retries augment user activity.
func (g *Generator) emitSkype(u *user, t func() int64) {
	n := 3 + g.r.Intn(7)
	for i := 0; i < n; i++ {
		if g.r.Bool(0.08) {
			g.pushConnect(u, t(), "conn.skype.com", 443)
		} else if g.r.Bool(0.25) {
			g.push(u, t(), "ui.skype.com", 80, "/ui/0/5.3.0.120/en/getlatestversion", "ver=5.3.0.120")
		} else {
			g.push(u, t(), "www.skype.com", 80, "/go/upgrade", "")
		}
	}
}

// emitMSN is MSN messenger signaling plus CEIP telemetry (live.com /
// ceipmsn.com in Table 4's censored column).
func (g *Generator) emitMSN(u *user, t func() int64) {
	n := 3 + g.r.Intn(6)
	for i := 0; i < n; i++ {
		switch g.r.Intn(5) {
		case 0, 1, 2:
			g.push(u, t(), "messenger.live.com", 80, "/gateway/gateway.dll", "Action=poll&SessionID="+fmt.Sprint(g.r.Intn(1e6)))
		case 3:
			g.push(u, t(), "ceipmsn.com", 80, "/data/upload.aspx", "")
		default:
			g.push(u, t(), "www.msn.com", 80, "/", "")
		}
	}
}

// emitMetacafe is the blocked video site loop (Table 4/8's top censored
// domain; routed to SG-48 by the cluster).
func (g *Generator) emitMetacafe(u *user, t func() int64) {
	n := 5 + g.r.Intn(9)
	for i := 0; i < n; i++ {
		g.push(u, t(), "www.metacafe.com", 80,
			fmt.Sprintf("/watch/%d/clip_%d/", 1000000+g.r.Intn(8999999), g.r.Intn(999)), "")
	}
}

// emitZynga mixes allowed game pages with proxy-bearing tracker calls
// (zynga.com appears in both Table 4 columns).
func (g *Generator) emitZynga(u *user, t func() int64) {
	g.push(u, t(), "apps.facebook.com", 80, "/texas_holdem/", "")
	n := 2 + g.r.Intn(5)
	for i := 0; i < n; i++ {
		if g.r.Bool(0.55) {
			g.push(u, t(), "fb.zynga.com", 80, "/dailygames/proxy/track.php", fmt.Sprintf("g=%d", g.r.Intn(64)))
		} else {
			g.push(u, t(), "www.zynga.com", 80, fmt.Sprintf("/games/asset%d.swf", g.r.Intn(256)), "")
		}
	}
}

// emitNews visits opposition/news sites: the URL-blacklisted ones of
// Tables 8/9 plus allowed mainstream outlets.
func (g *Generator) emitNews(u *user, t func() int64) {
	// Most sessions hit the generated blocked-news tail, so Table 9's
	// domain count is dominated by news sites; named outlets get the
	// volume.
	for i, n := 0, 1+g.r.Intn(2); i < n; i++ {
		d := g.w.blockedNews[g.r.Intn(len(g.w.blockedNews))]
		g.push(u, t(), d, 80, "/article/"+fmt.Sprint(g.r.Intn(9999)), "")
	}
	switch g.r.Intn(10) {
	case 0, 1, 2:
		g.push(u, t(), "www.aawsat.com", 80, fmt.Sprintf("/details.asp?article=%d", g.r.Intn(99999)), "")
	case 3:
		g.push(u, t(), "all4syria.info", 80, "/web/archives/"+fmt.Sprint(g.r.Intn(99999)), "")
	case 4:
		g.push(u, t(), "www.islammemo.cc", 80, "/akhbar/arab-news/"+fmt.Sprint(g.r.Intn(9999)), "")
	case 5:
		g.push(u, t(), "www.alquds.co.uk", 80, "/today/"+fmt.Sprint(g.r.Intn(999)), "")
	case 6:
		g.push(u, t(), "new-syria.com", 80, "/", "")
	case 7:
		g.push(u, t(), "www.free-syria.com", 80, "/loadarticle.php", fmt.Sprintf("id=%d", g.r.Intn(9999)))
	default:
		d := g.w.blockedNews[g.r.Intn(len(g.w.blockedNews))]
		g.push(u, t(), d, 80, "/", "")
	}
	// Some sessions also touch blocked forums / uncategorized hosts.
	if g.r.Bool(0.35) {
		d := g.w.blockedForums[g.r.Intn(len(g.w.blockedForums))]
		g.push(u, t(), d, 80, "/showthread.php", fmt.Sprintf("t=%d", g.r.Intn(99999)))
	}
	if g.r.Bool(0.3) {
		d := g.w.blockedMisc[g.r.Intn(len(g.w.blockedMisc))]
		g.push(u, t(), d, 80, "/", "")
	}
	if g.r.Bool(0.35) {
		d := g.w.blockedExtra[g.r.Intn(len(g.w.blockedExtra))]
		g.push(u, t(), d, 80, "/watch/"+fmt.Sprint(g.r.Intn(9999)), "")
	}
	if g.r.Bool(0.3) {
		g.push(u, t(), "english.aljazeera.net", 80, "/news/middleeast/"+fmt.Sprint(g.r.Intn(9999)), "")
	}
	// Israel coverage in mainstream outlets: the keyword in the path gets
	// the article censored on otherwise-allowed domains.
	if g.r.Bool(0.3) {
		hosts := []string{"news.bbc.co.uk", "english.aljazeera.net", "ar.wikipedia.org"}
		h := hosts[g.r.Intn(len(hosts))]
		path := "/news/israel-border-report-" + fmt.Sprint(g.r.Intn(9999))
		if h == "ar.wikipedia.org" {
			path = "/wiki/israel"
		}
		g.push(u, t(), h, 80, path, "")
	}
	if g.r.Bool(0.1) {
		g.push(u, t(), "www.google.com", 80, "/search", "q=israel+news")
	}
}

// emitIsraeli requests Israeli destinations: .il domains (TLD-blocked) and
// raw IPs in the Table 12 subnets.
func (g *Generator) emitIsraeli(u *user, t func() int64) {
	if g.r.Bool(0.45) {
		hosts := []string{"www.panet.co.il", "www.ynet.co.il", "walla.co.il", "sport5.co.il"}
		g.push(u, t(), hosts[g.r.Intn(len(hosts))], 80, "/", "")
		return
	}
	ip := g.israeliIPs[g.r.Intn(len(g.israeliIPs))]
	host := urlx.FormatIPv4(ip)
	if g.r.Bool(0.1) {
		g.pushConnect(u, t(), host, 443)
	} else {
		g.push(u, t(), host, 80, "", "")
	}
}

// emitIPLiteral requests a raw-IP destination in Table 11's country mix.
func (g *Generator) emitIPLiteral(u *user, t func() int64) {
	c := g.countryKeys[g.r.WeightedChoice(g.countryCum)]
	pool := g.countryIPs[c]
	if len(pool) == 0 {
		return
	}
	ip := pool[g.r.Intn(len(pool))]
	g.push(u, t(), urlx.FormatIPv4(ip), 80, "", "")
}

// emitAnonymizer visits a web-proxy/VPN service (§7.2, Fig. 10). Host
// popularity is Zipf-ish: few services get most requests. Proxyish hosts
// sometimes emit keyword-bearing CGI paths and get censored.
func (g *Generator) emitAnonymizer(u *user, t func() int64) {
	// Rank-skewed host pick.
	idx := g.r.Intn(len(g.w.anonHosts))
	if g.r.Bool(0.75) {
		idx = g.r.Intn(1 + len(g.w.anonHosts)/20) // top 5% of services
	}
	host := g.w.anonHosts[idx]
	// A session issues several requests to the service; on the "proxyish"
	// hosts some URLs carry the blacklisted keyword while plain pages get
	// through — producing Fig 10(b)'s mixed allow/censor ratios.
	for i, n := 0, 2+g.r.Intn(4); i < n; i++ {
		if g.w.anonProxyish[idx] && g.r.Bool(0.3) {
			g.push(u, t(), host, 80, "/cgi-bin/nph-proxy.cgi", fmt.Sprintf("url=%s", searchWords[g.r.Intn(len(searchWords))]))
			continue
		}
		paths := []string{"/", "/index.html", "/browse.php", "/surf"}
		g.push(u, t(), host, 80, paths[g.r.Intn(len(paths))], "")
	}
	// Known VPN brands: hotspotshield downloads (keyword-censored).
	if g.r.Bool(0.06) {
		g.push(u, t(), "www.hotspotshield.com", 80, "/download/hss_install.exe", "")
	}
	if g.r.Bool(0.04) {
		g.push(u, t(), "www.ultrareach.com", 80, "/downloads/u1006.exe", "")
	}
	if g.r.Bool(0.04) {
		g.push(u, t(), "ultrasurf.us", 80, "/download/u.zip", "")
	}
	if g.r.Bool(0.05) {
		g.push(u, t(), "hotsptshld.com", 80, "/engine/connect", "")
	}
	// Users hunt for the tools on search engines and wikis; every such
	// URL carries the tool keyword and is censored on allowed domains.
	for i, n := 0, 1+g.r.Intn(2); i < n; i++ {
		word := toolWords[g.r.Intn(len(toolWords))]
		switch g.r.Intn(3) {
		case 0:
			g.push(u, t(), "www.google.com", 80, "/search", "q="+word+"+download")
		case 1:
			g.push(u, t(), "www.yahoo.com", 80, "/search", "p="+word)
		default:
			g.push(u, t(), "ar.wikipedia.org", 80, "/wiki/"+word, "")
		}
	}
}

// emitTor is a Tor client session: directory fetches (Torhttp, ~73% of Tor
// requests in the paper) plus OR-port circuit connections (Toronion).
func (g *Generator) emitTor(u *user, t func() int64) {
	// Tor clients reuse a small guard set, so the same relays recur —
	// which is what makes the Fig. 9 Rfilter contrast observable (a relay
	// censored in one window is allowed in another).
	pick := func() torsim.Relay {
		if g.r.Bool(0.7) {
			k := stats.Hash64(fmt.Sprintf("guard-%d-%d", u.ip, g.r.Intn(3)))
			return g.w.consensus.Relay(int(k % uint64(g.w.consensus.Len())))
		}
		return g.w.consensus.Relay(g.r.Intn(g.w.consensus.Len()))
	}
	n := 2 + g.r.Intn(3)
	for i := 0; i < n; i++ {
		if g.r.Bool(0.73) {
			// Directory fetch: pick a relay that serves the dir protocol.
			for tries := 0; tries < 16; tries++ {
				relay := pick()
				if relay.DirPort != 0 {
					g.push(u, t(), relay.Host(), relay.DirPort, torsim.DirPath(g.r.Intn(5)), "")
					break
				}
			}
			continue
		}
		relay := pick()
		g.pushConnect(u, t(), relay.Host(), relay.ORPort)
	}
}

// emitBT announces torrents to trackers (§7.3). Tracker hosts are benign
// except tracker-proxy.furk.net, whose announces are keyword-censored.
func (g *Generator) emitBT(ui int, t func() int64) {
	u := &g.w.users[ui]
	peer, ok := g.w.peerIDs[ui]
	if !ok {
		peer = bittorrent.NewPeerID(g.r)
		g.w.peerIDs[ui] = peer
	}
	n := 3 + g.r.Intn(6)
	for i := 0; i < n; i++ {
		tracker := g.w.trackers[g.r.Intn(len(g.w.trackers)-1)]
		if g.r.Bool(0.004) {
			tracker = "tracker-proxy.furk.net"
		}
		ann := bittorrent.Announce{
			InfoHash: g.w.infoHashes[g.r.Intn(len(g.w.infoHashes))],
			PeerID:   peer,
			Port:     uint16(49152 + g.r.Intn(16000)),
			Left:     uint64(g.r.Intn(1 << 30)),
			Event:    []string{"", "started", "completed"}[g.r.Intn(3)],
		}
		g.push(u, t(), tracker, 80, "/announce", ann.Query())
	}
}

// emitGCache reads Google-cache copies (§7.4), including copies of
// otherwise-censored pages — which mostly get through.
func (g *Generator) emitGCache(u *user, t func() int64) {
	targets := []string{
		"www.panet.co.il", "aawsat.com", "www.facebook.com/Syrian.Revolution",
		"www.free-syria.com", "site-0001.example.com", "en.wikipedia.org/wiki/Syria",
	}
	target := targets[g.r.Intn(len(targets))]
	n := 1 + g.r.Intn(2)
	for i := 0; i < n; i++ {
		// A tiny fraction of cache URLs embed a blacklisted keyword and
		// get caught (12 censored cache requests in Dfull).
		if g.r.Bool(0.01) {
			g.push(u, t(), "webcache.googleusercontent.com", 80, "/search",
				"q=cache:megaproxy.com/proxy-list")
			continue
		}
		g.push(u, t(), "webcache.googleusercontent.com", 80, "/search", "q=cache:"+target)
	}
}

// fbPageVariants are the query shapes seen on targeted pages: the narrow
// censored set and the ajax variants that slip through (§6).
var fbPageVariants = []string{"", "ref=ts", "ref=ts&__a=11&ajaxpipe=1&quickling[version]=414343%3B0", "sk=info"}

// emitFBPage visits activist Facebook pages, both custom-category-targeted
// (Table 14) and untargeted (Syrian.Revolution.Army etc.).
func (g *Generator) emitFBPage(u *user, t func() int64) {
	targeted := []string{
		"/Syrian.Revolution", "/Syrian.Revolution", "/Syrian.Revolution", // popular
		"/syria.news.F.N.N", "/syria.news.F.N.N",
		"/ShaamNews", "/fffm14", "/barada.channel", "/DaysOfRage",
		"/Syrian.R.V", "/YouthFreeSyria", "/sooryoon", "/Freedom.Of.Syria",
		"/SyrianDayOfRage",
	}
	untargeted := []string{
		"/Syrian.Revolution.Army", "/Syrian.Revolution.Assad",
		"/Syrian.Revolution.Caricature", "/ShaamNewsNetwork",
	}
	n := 1 + g.r.Intn(3)
	for i := 0; i < n; i++ {
		if g.r.Bool(0.3) {
			g.push(u, t(), "www.facebook.com", 80, untargeted[g.r.Intn(len(untargeted))], fbQuery(g, true))
			continue
		}
		path := targeted[g.r.Intn(len(targeted))]
		host := "www.facebook.com"
		if g.r.Bool(0.1) && path == "/Syrian.Revolution" {
			host = "ar-ar.facebook.com"
		}
		g.push(u, t(), host, 80, path, fbPageVariants[g.r.Intn(len(fbPageVariants))])
	}
	// ShaamNews is mostly *allowed* in Table 14 (3,944 allowed vs 114
	// censored): its popular variants carry ajax queries.
	if g.r.Bool(0.6) {
		g.push(u, t(), "www.facebook.com", 80, "/ShaamNews", fbPageVariants[2])
	}
}

func fbQuery(g *Generator, refTS bool) string {
	if refTS && g.r.Bool(0.5) {
		return "ref=ts"
	}
	if g.r.Bool(0.3) {
		return fmt.Sprintf("refid=%d&ref=nf_fr", g.r.Intn(20))
	}
	return ""
}

// emitUpload is a video-upload session against the redirect host
// upload.youtube.com (Table 7's dominant entry).
func (g *Generator) emitUpload(u *user, t func() int64) {
	n := 2 + g.r.Intn(5)
	for i := 0; i < n; i++ {
		g.push(u, t(), "upload.youtube.com", 80, "/upload/rupio", fmt.Sprintf("upload_id=%x", g.r.Uint32()))
	}
	if g.r.Bool(0.1) {
		g.push(u, t(), "competition.mbc.net", 80, "/vote", "")
	}
	if g.r.Bool(0.1) {
		g.push(u, t(), "sharek.aljazeera.net", 80, "/upload", "")
	}
}

// emitHTTPS issues CONNECT tunnels: webmail/social HTTPS plus the blocked
// anonymizer endpoints of §4.
func (g *Generator) emitHTTPS(u *user, t func() int64) {
	switch g.r.Intn(8) {
	case 0:
		g.pushConnect(u, t(), "mail.google.com", 443)
	case 1:
		g.pushConnect(u, t(), "www.facebook.com", 443)
	case 2:
		g.pushConnect(u, t(), "login.yahoo.com", 443)
	case 3:
		g.pushConnect(u, t(), "accounts.google.com", 443)
	case 4:
		if g.r.Bool(0.4) {
			// Israeli destination over TLS: IP-blocked when in a blocked
			// range (§4: censored HTTPS skews to IP-literal destinations).
			ip := g.israeliIPs[g.r.Intn(len(g.israeliIPs))]
			g.pushConnect(u, t(), urlx.FormatIPv4(ip), 443)
		} else {
			g.pushConnect(u, t(), "mail.google.com", 443)
		}
	case 5:
		if g.r.Bool(0.3) {
			// Blocked anonymizer endpoints (NL).
			g.pushConnect(u, t(), []string{"94.75.200.10", "94.75.200.11"}[g.r.Intn(2)], 443)
		} else {
			g.pushConnect(u, t(), "mail.google.com", 443)
		}
	case 6:
		if g.r.Bool(0.1) {
			// Blocked anonymizer endpoint (GB).
			g.pushConnect(u, t(), "31.170.160.5", 443)
		} else {
			g.pushConnect(u, t(), "accounts.google.com", 443)
		}
	default:
		g.pushConnect(u, t(), "secure.wlxrs.com", 443)
	}
}
