package synth

import (
	"sort"

	"syriafilter/internal/categorydb"
	"syriafilter/internal/geoip"
	"syriafilter/internal/policy"
	"syriafilter/internal/stats"
	"syriafilter/internal/torsim"
	"syriafilter/internal/urlx"
)

// Generator streams a calibrated request corpus in time order. Create one
// with New, then drain it with Next. The same Config always produces the
// same corpus.
type Generator struct {
	cfg  Config
	w    *world
	r    *stats.Rand
	days []Day

	userCum []float64 // cumulative activity weights for user selection

	perWeight float64 // requests per unit of (dayWeight * diurnal)

	// Iteration state.
	dayIdx  int
	slot    int
	batch   []Request
	batchI  int
	emitted int

	israeliIPs  []uint32 // sample pool of Israeli addresses (blocked + allowed)
	countryIPs  map[string][]uint32
	countryCum  []float64
	countryKeys []string
}

// New builds a generator. The returned generator owns cfg (a copy).
func New(cfg Config) (*Generator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	r := stats.NewRand(cfg.Seed ^ 0x53594e5448)
	w, err := buildWorld(&cfg, r.Fork())
	if err != nil {
		return nil, err
	}
	g := &Generator{cfg: cfg, w: w, r: r, days: Timeline()}

	weights := make([]float64, len(w.users))
	for i := range w.users {
		weights[i] = w.users[i].activity
	}
	g.userCum = stats.Cumulate(weights)

	total := 0.0
	for _, d := range g.days {
		for s := 0; s < SlotsPerDay; s++ {
			total += d.Weight * diurnal(s)
		}
	}
	g.perWeight = float64(cfg.TotalRequests) / total

	g.buildIPPools(r.Fork())
	return g, nil
}

func (g *Generator) buildIPPools(r *stats.Rand) {
	// Israeli pool: mostly-blocked subnets plus the mostly-allowed /16,
	// shaping Table 12's two groups.
	add := func(dst []uint32, cidr string, n int) []uint32 {
		start, end, err := geoip.ParseCIDR(cidr)
		if err != nil {
			panic("synth: bad pool CIDR " + cidr)
		}
		span := end - start
		for i := 0; i < n; i++ {
			dst = append(dst, start+r.Uint32()%(span+1))
		}
		return dst
	}
	// Israel's traffic is mostly *allowed* (Table 11: 6.69% censorship
	// ratio): the popular destinations live in the mostly-allowed
	// 212.150.0.0/16 and in Israeli space outside the blocked subnets.
	g.israeliIPs = add(g.israeliIPs, "212.150.0.0/16", 60)
	g.israeliIPs = add(g.israeliIPs, "80.179.0.0/16", 90)
	for _, cidr := range policy.PaperBlockedSubnets {
		g.israeliIPs = add(g.israeliIPs, cidr, 3)
	}
	for _, s := range []string{"212.150.10.1", "212.150.20.2", "212.150.30.3"} {
		ip, _ := urlx.ParseIPv4(s)
		// The blocked hosts inside the mostly-allowed /16 are popular
		// destinations (Table 12 shows hundreds of censored requests to
		// just 3 addresses); duplication weights them accordingly.
		g.israeliIPs = append(g.israeliIPs, ip, ip, ip, ip)
	}

	// Other countries' pools with Table 11-shaped visit weights.
	blocks := geoip.CountryBlocks()
	g.countryIPs = make(map[string][]uint32)
	type cw struct {
		c string
		w float64
	}
	weights := []cw{
		{"NL", 58}, {"GB", 12}, {"RU", 3}, {"US", 25}, {"DE", 4},
		{"FR", 2.5}, {"SG", 0.13}, {"BG", 0.13}, {"KW", 0.05}, {"IL", 2},
	}
	var cum []float64
	var keys []string
	wsum := 0.0
	for _, c := range weights {
		pool := []uint32{}
		for _, cidr := range blocks[c.c] {
			pool = add(pool, cidr, 25)
		}
		if c.c == "IL" {
			// Israel's destination mix is the curated pool: mostly allowed
			// space with the Table 12 blocked subnets as a minority.
			pool = g.israeliIPs
		}
		g.countryIPs[c.c] = pool
		wsum += c.w
		cum = append(cum, wsum)
		keys = append(keys, c.c)
	}
	g.countryCum = cum
	g.countryKeys = keys
}

// Ruleset returns the effective ground-truth policy (paper base plus the
// generated blocked domains).
func (g *Generator) Ruleset() *policy.Ruleset { return g.w.ruleset }

// Engine returns the compiled ground-truth policy engine.
func (g *Generator) Engine() *policy.Engine { return g.w.engine }

// CategoryDB returns the category database covering every generated host.
func (g *Generator) CategoryDB() *categorydb.DB { return g.w.catdb }

// Consensus returns the Tor consensus the corpus's Tor traffic targets.
func (g *Generator) Consensus() *torsim.Consensus { return g.w.consensus }

// Users returns the population size.
func (g *Generator) Users() int { return len(g.w.users) }

// Emitted returns the number of requests handed out so far.
func (g *Generator) Emitted() int { return g.emitted }

// Next returns the next request in time order, or ok=false when the
// timeline is exhausted. The returned value is a copy; callers may retain
// it.
func (g *Generator) Next() (Request, bool) {
	for g.batchI >= len(g.batch) {
		if g.dayIdx >= len(g.days) {
			return Request{}, false
		}
		g.fillSlot()
		g.slot++
		if g.slot >= SlotsPerDay {
			g.slot = 0
			g.dayIdx++
		}
	}
	req := g.batch[g.batchI]
	g.batchI++
	g.emitted++
	return req, true
}

// fillSlot generates one 5-minute slot's worth of traffic into g.batch.
func (g *Generator) fillSlot() {
	day := g.days[g.dayIdx]
	want := int(g.perWeight * day.Weight * diurnal(g.slot))
	g.batch = g.batch[:0]
	g.batchI = 0
	if want <= 0 {
		return
	}
	slotStart := day.Date.Unix() + int64(g.slot*SlotSeconds)
	surge := imSurge(day, g.slot)

	for len(g.batch) < want {
		ui := g.r.WeightedChoice(g.userCum)
		g.emitActivity(ui, slotStart, surge)
	}
	sort.Slice(g.batch, func(i, j int) bool { return g.batch[i].Time < g.batch[j].Time })
}

// Activity kinds. Weights are assembled per user from flags.
type activity uint8

const (
	actBrowseHead activity = iota
	actBrowseTail
	actHTTPS
	actIPLiteral
	actSkype
	actMSN
	actMetacafe
	actPlugins
	actZynga
	actNews
	actIsraeli
	actAnonymizer
	actTor
	actBT
	actGCache
	actFBPages
	actUpload
	numActivities
)

func (g *Generator) emitActivity(ui int, slotStart int64, surge float64) {
	u := &g.w.users[ui]
	var w [numActivities]float64
	w[actBrowseHead] = 60
	w[actBrowseTail] = 26
	w[actHTTPS] = 0.8
	w[actIPLiteral] = 3.0
	if u.flags&bhSkype != 0 {
		w[actSkype] = 11 * surge
	}
	if u.flags&bhMSN != 0 {
		w[actMSN] = 10 * surge
	}
	if surge > 1 {
		// Protest-day demand: *everyone* reaches for IM (the paper's
		// explanation for the Fig. 6 peaks), not just habitual users.
		w[actSkype] += 0.35 * (surge - 1)
		w[actMSN] += 0.2 * (surge - 1)
	}
	if u.flags&bhMetacafe != 0 {
		w[actMetacafe] = 22
	}
	if u.flags&bhPluginSites != 0 {
		w[actPlugins] = 18
	}
	if u.flags&bhZynga != 0 {
		w[actZynga] = 14
	}
	if u.flags&bhNews != 0 {
		w[actNews] = 10
	}
	if u.flags&bhIsraeli != 0 {
		w[actIsraeli] = 9
	}
	if u.flags&bhAnonymizer != 0 {
		w[actAnonymizer] = 13
	}
	if u.flags&bhTor != 0 {
		w[actTor] = 15
	}
	if u.flags&bhBitTorrent != 0 {
		w[actBT] = 25
	}
	if u.flags&bhGCache != 0 {
		w[actGCache] = 6
	}
	if u.flags&bhFBPages != 0 {
		w[actFBPages] = 6
	}
	if u.flags&bhUploader != 0 {
		w[actUpload] = 6
	}

	var cum [numActivities]float64
	total := 0.0
	for i, wi := range w {
		total += wi
		cum[i] = total
	}
	x := g.r.Float64() * total
	act := activity(0)
	for i, c := range cum {
		if x < c {
			act = activity(i)
			break
		}
	}

	t := func() int64 { return slotStart + int64(g.r.Intn(SlotSeconds)) }
	switch act {
	case actBrowseHead:
		g.emitHeadVisit(u, t)
	case actBrowseTail:
		g.emitTailVisit(u, t)
	case actHTTPS:
		g.emitHTTPS(u, t)
	case actIPLiteral:
		g.emitIPLiteral(u, t)
	case actSkype:
		g.emitSkype(u, t)
	case actMSN:
		g.emitMSN(u, t)
	case actMetacafe:
		g.emitMetacafe(u, t)
	case actPlugins:
		g.emitPluginPage(u, t)
	case actZynga:
		g.emitZynga(u, t)
	case actNews:
		g.emitNews(u, t)
	case actIsraeli:
		g.emitIsraeli(u, t)
	case actAnonymizer:
		g.emitAnonymizer(u, t)
	case actTor:
		g.emitTor(u, t)
	case actBT:
		g.emitBT(ui, t)
	case actGCache:
		g.emitGCache(u, t)
	case actFBPages:
		g.emitFBPage(u, t)
	case actUpload:
		g.emitUpload(u, t)
	}
}

// push appends a GET request with defaults filled.
func (g *Generator) push(u *user, t int64, host string, port uint16, path, query string) {
	g.batch = append(g.batch, Request{
		Time: t, ClientIP: u.ip, UserAgent: u.agent,
		Method: "GET", Scheme: "http", Host: host, Port: port,
		Path: path, Query: query,
	})
}

// pushConnect appends an HTTPS CONNECT tunnel request.
func (g *Generator) pushConnect(u *user, t int64, host string, port uint16) {
	g.batch = append(g.batch, Request{
		Time: t, ClientIP: u.ip, UserAgent: u.agent,
		Method: "CONNECT", Scheme: "tcp", Host: host, Port: port,
	})
}
