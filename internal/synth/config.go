// Package synth generates the synthetic request workload that substitutes
// for the paper's leaked 600 GB corpus. The generator is calibrated,
// distribution by distribution, to the published statistics:
//
//   - the observation window (July 22, 23, 31 with SG-42 only; August 1–6
//     with all seven proxies) and the request-volume split between them;
//   - the diurnal curve of Fig. 5 with the Friday-protest lull (Aug 4–5)
//     and the Aug 3 morning Instant-Messaging censorship peak of Fig. 6;
//   - the domain popularity of Table 4 (head domains with the paper's
//     shares, Zipf tail) and the page-visit fan-out that inflates allowed
//     traffic relative to censored traffic (§4, Fig. 2);
//   - the user population with heavy-tailed activity and the sparse
//     censorship-prone behaviours that reproduce Fig. 4;
//   - the niche traffic populations analysed in §7: Tor directory/OR
//     traffic, BitTorrent announces, anonymizer services, Google cache.
//
// The generator emits *client requests only*. Filtering verdicts, network
// fates, cache hits, proxy assignment and log rendering belong to
// internal/proxysim, so censorship is decided by the policy engine rather
// than baked into the data.
package synth

import (
	"errors"
	"time"
)

// Day identifies one observed day.
type Day struct {
	Date   time.Time // midnight UTC
	Weight float64   // share of corpus volume relative to a full Aug day
	// SG42Only marks the July days where only proxy SG-42 logged.
	SG42Only bool
	// HashedIPs marks the Duser period where Telecomix preserved hashed
	// client IPs (July 22–23).
	HashedIPs bool
}

// Timeline returns the paper's nine observed days. July days carry ~3% of
// a full day's volume (one proxy, partial coverage), matching the ratio of
// Duser (6.4M requests over two days) to Dfull.
func Timeline() []Day {
	d := func(m time.Month, day int) time.Time {
		return time.Date(2011, m, day, 0, 0, 0, 0, time.UTC)
	}
	return []Day{
		{Date: d(time.July, 22), Weight: 0.030, SG42Only: true, HashedIPs: true},
		{Date: d(time.July, 23), Weight: 0.030, SG42Only: true, HashedIPs: true},
		{Date: d(time.July, 31), Weight: 0.025, SG42Only: true},
		{Date: d(time.August, 1), Weight: 1.0},
		{Date: d(time.August, 2), Weight: 1.0},
		{Date: d(time.August, 3), Weight: 1.05}, // protest day: busy + censorship peaks
		{Date: d(time.August, 4), Weight: 0.85}, // slowdown from Thursday afternoon
		{Date: d(time.August, 5), Weight: 0.55}, // Friday protests: throttled
		{Date: d(time.August, 6), Weight: 0.95},
	}
}

// SlotSeconds is the time-series granularity used throughout (the paper
// plots 5-minute buckets).
const SlotSeconds = 300

// SlotsPerDay is the number of 5-minute slots per day.
const SlotsPerDay = 24 * 3600 / SlotSeconds

// Config parameterizes a corpus.
type Config struct {
	// Seed drives all randomness; equal seeds give identical corpora.
	Seed uint64
	// TotalRequests is the approximate corpus size (the generator emits
	// whole page-visits, so the realized count differs by a few percent).
	TotalRequests int
	// Users is the synthetic user population size. Zero derives a
	// population giving the paper's ~43 requests/user ratio.
	Users int
	// TailDomains is the size of the long-tail domain catalog (Fig. 2's
	// power-law body). Zero means TotalRequests/200 (>= 2000).
	TailDomains int
	// AnonymizerHosts is the number of anonymizer services in the world
	// (§7.2 finds 821 in Dsample). Zero means 821.
	AnonymizerHosts int
	// TorRelays is the consensus size. Zero means torsim.DefaultRelayCount.
	TorRelays int
	// BlockedNewsDomains is how many generated news/opposition domains are
	// URL-blacklisted on top of the paper-named ones; with forums and NA
	// hosts this builds the ~105 suspected domains of §5.4. Zero means 50.
	BlockedNewsDomains int
}

// Validate applies defaults and rejects nonsense.
func (c *Config) Validate() error {
	if c.TotalRequests <= 0 {
		return errors.New("synth: TotalRequests must be positive")
	}
	if c.TotalRequests < 10_000 {
		return errors.New("synth: corpora below 10k requests are too small to be calibrated")
	}
	if c.Users == 0 {
		c.Users = c.TotalRequests / 50
		if c.Users < 500 {
			c.Users = 500
		}
	}
	if c.TailDomains == 0 {
		c.TailDomains = c.TotalRequests / 200
		if c.TailDomains < 2000 {
			c.TailDomains = 2000
		}
	}
	if c.AnonymizerHosts == 0 {
		c.AnonymizerHosts = 821
	}
	if c.TorRelays == 0 {
		c.TorRelays = 1111
	}
	if c.BlockedNewsDomains == 0 {
		c.BlockedNewsDomains = 50
	}
	return nil
}

// Request is one client request before it reaches the filtering proxies.
type Request struct {
	Time      int64  // unix seconds
	ClientIP  uint32 // synthetic client address (pre-anonymization)
	UserAgent string
	Method    string // GET/POST/CONNECT
	Scheme    string // http/https/tcp
	Host      string
	Port      uint16
	Path      string
	Query     string
}

// diurnal returns the relative traffic intensity for a 5-minute slot
// index, shaping Fig. 5: climb through the morning, peak before noon,
// smooth lull in the afternoon, smaller evening bump, quiet night.
func diurnal(slot int) float64 {
	h := float64(slot) / float64(SlotsPerDay) * 24
	switch {
	case h < 5:
		return 0.25
	case h < 9:
		return 0.25 + (h-5)/4*0.95 // morning climb
	case h < 12:
		return 1.2 // late-morning peak
	case h < 17:
		return 0.85 // afternoon lull
	case h < 22:
		return 1.0 // evening
	default:
		return 0.5
	}
}

// imSurge returns the activity multiplier for Instant-Messaging behaviours
// (Skype / MSN messenger) at a given day index and slot, reproducing the
// Aug 3 RCV peaks of Fig. 6: sharp rise 8:00–9:30, smaller bumps around
// 5:00 and 22:00.
func imSurge(day Day, slot int) float64 {
	if day.Date.Month() != time.August || day.Date.Day() != 3 {
		return 1
	}
	h := float64(slot) / float64(SlotsPerDay) * 24
	switch {
	case h >= 8 && h < 9.5:
		return 7
	case h >= 4.75 && h < 5.5:
		return 3.5
	case h >= 22 && h < 23:
		return 3
	default:
		return 1
	}
}
