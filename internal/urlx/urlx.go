// Package urlx provides the small URL-handling helpers the log pipeline
// needs: splitting request URLs into the Blue Coat field quintet (host,
// port, path, query, extension), host normalization, registered-domain
// extraction, and IPv4 literal detection.
//
// It deliberately does not use net/url: Blue Coat logs store the URL
// pre-split across cs-host / cs-uri-path / cs-uri-query / cs-uri-extension,
// and the hot path must not allocate. All functions here operate on string
// slices of their input.
package urlx

import "strings"

// Parts is a request URL decomposed the way the SG-9000 logs it.
type Parts struct {
	Scheme string // "http", "https", "tcp" (CONNECT tunnels)
	Host   string // lowercased hostname or IP literal, no port
	Port   uint16 // 0 when absent; defaulted by scheme in Split
	Path   string // starts with "/" when present
	Query  string // without the leading "?"
	Ext    string // file extension of the last path segment, without dot
}

// Split decomposes a URL string. It accepts absolute URLs
// ("http://h:p/x?q"), scheme-less ("h/x?q"), and bare hosts. Unknown ports
// default to 80 for http and 443 for https.
func Split(raw string) Parts {
	var p Parts
	rest := raw

	if i := strings.Index(rest, "://"); i >= 0 {
		p.Scheme = strings.ToLower(rest[:i])
		rest = rest[i+3:]
	} else {
		p.Scheme = "http"
	}

	// Split host[:port] from path?query.
	hostport := rest
	if i := strings.IndexByte(rest, '/'); i >= 0 {
		hostport = rest[:i]
		rest = rest[i:]
	} else {
		rest = ""
	}

	p.Host, p.Port = SplitHostPort(hostport)
	if p.Port == 0 {
		p.Port = DefaultPort(p.Scheme)
	}

	if i := strings.IndexByte(rest, '?'); i >= 0 {
		p.Path = rest[:i]
		p.Query = rest[i+1:]
	} else {
		p.Path = rest
	}
	p.Ext = PathExt(p.Path)
	return p
}

// SplitHostPort splits "host:port" returning a lowercased host and the
// numeric port (0 when absent or malformed).
func SplitHostPort(hostport string) (string, uint16) {
	host := hostport
	var port uint16
	if i := strings.LastIndexByte(hostport, ':'); i >= 0 {
		if n, ok := atouPort(hostport[i+1:]); ok {
			host = hostport[:i]
			port = n
		}
	}
	return strings.ToLower(host), port
}

// DefaultPort returns the conventional port for a scheme (0 if unknown).
func DefaultPort(scheme string) uint16 {
	switch scheme {
	case "http", "":
		return 80
	case "https", "tcp": // Blue Coat logs CONNECT tunnels as tcp://host:443
		return 443
	case "ftp":
		return 21
	}
	return 0
}

// PathExt returns the extension of the final path segment without the dot,
// or "" if none ("-" in Blue Coat logs is represented as "" internally).
func PathExt(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		switch path[i] {
		case '.':
			ext := path[i+1:]
			if len(ext) > 0 && len(ext) <= 8 {
				return ext
			}
			return ""
		case '/':
			return ""
		}
	}
	return ""
}

// secondLevelSuffixes are public suffixes under which a registered domain
// has three labels, covering the TLDs appearing in the paper's tables
// (.co.uk, .com.sy, .co.il, .net.sy, ...).
var secondLevelSuffixes = map[string]struct{}{
	"co.uk": {}, "org.uk": {}, "ac.uk": {}, "gov.uk": {},
	"com.sy": {}, "net.sy": {}, "org.sy": {}, "gov.sy": {},
	"co.il": {}, "org.il": {}, "net.il": {}, "ac.il": {}, "gov.il": {},
	"com.au": {}, "com.br": {}, "com.cn": {}, "com.eg": {},
	"com.sa": {}, "com.tr": {}, "com.lb": {}, "com.jo": {},
	"co.jp": {}, "co.kr": {}, "co.in": {},
}

// RegisteredDomain reduces a hostname to its registrable domain:
// "upload.youtube.com" -> "youtube.com", "news.bbc.co.uk" -> "bbc.co.uk".
// IP literals and single-label hosts are returned unchanged.
func RegisteredDomain(host string) string {
	if host == "" || IsIPv4(host) {
		return host
	}
	// Walk the last three labels.
	last := strings.LastIndexByte(host, '.')
	if last < 0 {
		return host
	}
	second := strings.LastIndexByte(host[:last], '.')
	if second < 0 {
		return host
	}
	if _, ok := secondLevelSuffixes[host[second+1:]]; ok {
		third := strings.LastIndexByte(host[:second], '.')
		if third < 0 {
			return host
		}
		return host[third+1:]
	}
	return host[second+1:]
}

// TLD returns the final label of host ("il" for "panet.co.il"), or "" for
// IP literals and label-less hosts.
func TLD(host string) string {
	if IsIPv4(host) {
		return ""
	}
	i := strings.LastIndexByte(host, '.')
	if i < 0 || i == len(host)-1 {
		return ""
	}
	return host[i+1:]
}

// IsIPv4 reports whether s is a dotted-quad IPv4 literal.
func IsIPv4(s string) bool {
	_, ok := ParseIPv4(s)
	return ok
}

// ParseIPv4 parses a dotted-quad IPv4 literal into a big-endian uint32.
func ParseIPv4(s string) (uint32, bool) {
	var ip uint32
	part := uint32(0)
	digits := 0
	dots := 0
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= '0' && c <= '9':
			part = part*10 + uint32(c-'0')
			digits++
			if digits > 3 || part > 255 {
				return 0, false
			}
		case c == '.':
			if digits == 0 {
				return 0, false
			}
			ip = ip<<8 | part
			part, digits = 0, 0
			dots++
			if dots > 3 {
				return 0, false
			}
		default:
			return 0, false
		}
	}
	if dots != 3 || digits == 0 {
		return 0, false
	}
	return ip<<8 | part, true
}

// FormatIPv4 renders a big-endian uint32 as a dotted quad.
func FormatIPv4(ip uint32) string {
	var b [15]byte
	n := put8(b[:0], byte(ip>>24))
	n = append(n, '.')
	n = put8(n, byte(ip>>16))
	n = append(n, '.')
	n = put8(n, byte(ip>>8))
	n = append(n, '.')
	n = put8(n, byte(ip))
	return string(n)
}

func put8(dst []byte, v byte) []byte {
	if v >= 100 {
		dst = append(dst, '0'+v/100)
	}
	if v >= 10 {
		dst = append(dst, '0'+(v/10)%10)
	}
	return append(dst, '0'+v%10)
}

func atouPort(s string) (uint16, bool) {
	if len(s) == 0 || len(s) > 5 {
		return 0, false
	}
	n := 0
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c < '0' || c > '9' {
			return 0, false
		}
		n = n*10 + int(c-'0')
	}
	if n > 65535 {
		return 0, false
	}
	return uint16(n), true
}
