package urlx

import (
	"testing"
	"testing/quick"
)

func TestSplitAbsolute(t *testing.T) {
	p := Split("http://www.Facebook.com:8080/plugins/like.php?href=x&proxy=1")
	if p.Scheme != "http" || p.Host != "www.facebook.com" || p.Port != 8080 {
		t.Errorf("scheme/host/port = %q/%q/%d", p.Scheme, p.Host, p.Port)
	}
	if p.Path != "/plugins/like.php" || p.Query != "href=x&proxy=1" || p.Ext != "php" {
		t.Errorf("path/query/ext = %q/%q/%q", p.Path, p.Query, p.Ext)
	}
}

func TestSplitDefaults(t *testing.T) {
	p := Split("skype.com")
	if p.Host != "skype.com" || p.Port != 80 || p.Path != "" || p.Query != "" {
		t.Errorf("bare host parse: %+v", p)
	}
	p = Split("https://mail.google.com/")
	if p.Port != 443 || p.Path != "/" {
		t.Errorf("https defaults: %+v", p)
	}
	p = Split("tcp://212.150.1.1:443")
	if p.Scheme != "tcp" || p.Host != "212.150.1.1" || p.Port != 443 {
		t.Errorf("CONNECT tunnel parse: %+v", p)
	}
}

func TestSplitQueryOnly(t *testing.T) {
	p := Split("google.com/tbproxy/af/query?q=test")
	if p.Path != "/tbproxy/af/query" || p.Query != "q=test" {
		t.Errorf("%+v", p)
	}
	if p.Ext != "" {
		t.Errorf("ext = %q", p.Ext)
	}
}

func TestPathExt(t *testing.T) {
	cases := map[string]string{
		"/a/b.php":        "php",
		"/a/b.tar.gz":     "gz",
		"/a/b":            "",
		"":                "",
		"/dir.d/file":     "",
		"/x.verylongextn": "",
		"/trailing.":      "",
	}
	for in, want := range cases {
		if got := PathExt(in); got != want {
			t.Errorf("PathExt(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestRegisteredDomain(t *testing.T) {
	cases := map[string]string{
		"upload.youtube.com":  "youtube.com",
		"www.facebook.com":    "facebook.com",
		"facebook.com":        "facebook.com",
		"news.bbc.co.uk":      "bbc.co.uk",
		"www.mtn.com.sy":      "mtn.com.sy",
		"a.b.panet.co.il":     "panet.co.il",
		"localhost":           "localhost",
		"192.168.1.1":         "192.168.1.1",
		"static.ak.fbcdn.net": "fbcdn.net",
	}
	for in, want := range cases {
		if got := RegisteredDomain(in); got != want {
			t.Errorf("RegisteredDomain(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestTLD(t *testing.T) {
	cases := map[string]string{
		"panet.co.il": "il",
		"google.com":  "com",
		"10.0.0.1":    "",
		"host":        "",
		"trailing.":   "",
	}
	for in, want := range cases {
		if got := TLD(in); got != want {
			t.Errorf("TLD(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestParseIPv4(t *testing.T) {
	good := map[string]uint32{
		"0.0.0.0":         0,
		"127.0.0.1":       0x7f000001,
		"255.255.255.255": 0xffffffff,
		"82.137.200.42":   0x5289c82a,
	}
	for in, want := range good {
		got, ok := ParseIPv4(in)
		if !ok || got != want {
			t.Errorf("ParseIPv4(%q) = %x ok=%v, want %x", in, got, ok, want)
		}
	}
	for _, bad := range []string{"", "1.2.3", "1.2.3.4.5", "256.1.1.1", "a.b.c.d", "1..2.3", "1.2.3.", "01.2.3.4567"} {
		if _, ok := ParseIPv4(bad); ok {
			t.Errorf("ParseIPv4(%q) accepted", bad)
		}
	}
}

func TestFormatParseRoundTrip(t *testing.T) {
	if err := quick.Check(func(ip uint32) bool {
		got, ok := ParseIPv4(FormatIPv4(ip))
		return ok && got == ip
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSplitHostPort(t *testing.T) {
	h, p := SplitHostPort("Example.COM:9001")
	if h != "example.com" || p != 9001 {
		t.Errorf("got %q %d", h, p)
	}
	h, p = SplitHostPort("example.com")
	if h != "example.com" || p != 0 {
		t.Errorf("got %q %d", h, p)
	}
	// Malformed port: keep whole string as host.
	h, p = SplitHostPort("example.com:http")
	if h != "example.com:http" || p != 0 {
		t.Errorf("got %q %d", h, p)
	}
	if _, p := SplitHostPort("h:70000"); p != 0 {
		t.Errorf("overflow port accepted: %d", p)
	}
}

func TestSplitNeverPanics(t *testing.T) {
	if err := quick.Check(func(raw string) bool {
		p := Split(raw)
		_ = p
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}
