package serve

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"syriafilter/internal/render"
)

func newCkptStore(t *testing.T, f *fixture, shards int) *Store {
	t.Helper()
	store, err := NewStore(Config{Options: f.opt, Shards: shards, Bucket: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	return store
}

func fillStore(t *testing.T, store *Store, f *fixture) {
	t.Helper()
	got, err := store.Add(f.records)
	if err != nil {
		t.Fatal(err)
	}
	if got != uint64(len(f.records)) {
		t.Fatalf("Add accepted %d of %d records", got, len(f.records))
	}
	if _, err := store.Refresh(); err != nil {
		t.Fatal(err)
	}
}

// getBody fetches one URL and returns status + body.
func getBody(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b)
}

// The tentpole invariant at the HTTP layer: a restored store serves
// byte-identical documents for every experiment id — snapshot
// endpoints, the all-time range merge, and a windowed range.
func TestCheckpointRestoreHTTPByteIdentical(t *testing.T) {
	f := corpus(t)
	dir := t.TempDir()

	orig := newCkptStore(t, f, 4)
	fillStore(t, orig, f)
	info, err := orig.Checkpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	if info.Records != uint64(len(f.records)) {
		t.Errorf("checkpoint covers %d records, want %d", info.Records, len(f.records))
	}
	if info.Bytes <= 0 {
		t.Error("checkpoint reports no bytes")
	}

	restored := newCkptStore(t, f, 4)
	defer restored.Close()
	rinfo, err := restored.Restore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rinfo.Records != info.Records {
		t.Errorf("restore reports %d records, want %d", rinfo.Records, info.Records)
	}
	if _, err := restored.Refresh(); err != nil {
		t.Fatal(err)
	}

	srvA := httptest.NewServer(NewServer(orig, f.gen))
	defer srvA.Close()
	srvB := httptest.NewServer(NewServer(restored, f.gen))
	defer srvB.Close()

	for _, id := range render.Order() {
		for _, path := range []string{
			"/v1/experiments/" + id,
			"/v1/range/" + id,
			"/v1/range/" + id + "?from=2011-08-02&to=2011-08-05",
		} {
			sa, ba := getBody(t, srvA.URL+path)
			sb, bb := getBody(t, srvB.URL+path)
			if sa != sb {
				t.Errorf("%s: status %d vs %d", path, sa, sb)
				continue
			}
			if ba != bb {
				t.Errorf("%s: restored body differs from original (%d vs %d bytes)", path, len(bb), len(ba))
			}
		}
	}
	orig.Close()
}

// A checkpoint taken with one shard count restores into stores with
// different shard counts, still byte-identical.
func TestCheckpointRestoreAcrossShardCounts(t *testing.T) {
	f := corpus(t)
	dir := t.TempDir()

	orig := newCkptStore(t, f, 4)
	fillStore(t, orig, f)
	if _, err := orig.Checkpoint(dir); err != nil {
		t.Fatal(err)
	}
	srvA := httptest.NewServer(NewServer(orig, f.gen))
	defer srvA.Close()
	_, wantTable4 := getBody(t, srvA.URL+"/v1/experiments/table4")
	_, wantFig5 := getBody(t, srvA.URL+"/v1/range/fig5")

	for _, shards := range []int{1, 3, 7} {
		restored := newCkptStore(t, f, shards)
		if _, err := restored.Restore(dir); err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if _, err := restored.Refresh(); err != nil {
			t.Fatal(err)
		}
		srvB := httptest.NewServer(NewServer(restored, f.gen))
		if _, got := getBody(t, srvB.URL+"/v1/experiments/table4"); got != wantTable4 {
			t.Errorf("shards=%d: table4 differs after restore", shards)
		}
		if _, got := getBody(t, srvB.URL+"/v1/range/fig5"); got != wantFig5 {
			t.Errorf("shards=%d: fig5 range differs after restore", shards)
		}
		srvB.Close()
		restored.Close()
	}
	orig.Close()
}

// A restored store keeps ingesting: checkpoint half the corpus, restore,
// add the other half — identical to one store that saw everything.
func TestCheckpointIncrementalIngest(t *testing.T) {
	f := corpus(t)
	dir := t.TempDir()
	half := len(f.records) / 2

	first := newCkptStore(t, f, 3)
	first.Add(f.records[:half])
	if _, err := first.Checkpoint(dir); err != nil {
		t.Fatal(err)
	}
	first.Close()

	resumed := newCkptStore(t, f, 3)
	defer resumed.Close()
	if _, err := resumed.Restore(dir); err != nil {
		t.Fatal(err)
	}
	resumed.Add(f.records[half:])
	if _, err := resumed.Refresh(); err != nil {
		t.Fatal(err)
	}

	full := newCkptStore(t, f, 3)
	defer full.Close()
	fillStore(t, full, f)

	srvA := httptest.NewServer(NewServer(resumed, f.gen))
	defer srvA.Close()
	srvB := httptest.NewServer(NewServer(full, f.gen))
	defer srvB.Close()
	for _, id := range []string{"table1", "table4", "fig5", "fig8", "https"} {
		_, got := getBody(t, srvA.URL+"/v1/experiments/"+id)
		_, want := getBody(t, srvB.URL+"/v1/experiments/"+id)
		if got != want {
			t.Errorf("%s: resumed store differs from all-at-once store", id)
		}
	}
	if got, want := resumed.Stats().Ingested, full.Stats().Ingested; got != want {
		t.Errorf("ingested counter: got %d, want %d", got, want)
	}
}

// CloseAndCheckpoint must flush every acked batch before cutting the
// final checkpoint: nothing Add acknowledged may be missing after
// restore.
func TestCloseAndCheckpointFlushes(t *testing.T) {
	f := corpus(t)
	dir := t.TempDir()

	store := newCkptStore(t, f, 4)
	// Many small batches so some are still queued when close begins.
	for i := 0; i+100 <= len(f.records); i += 100 {
		store.Add(f.records[i : i+100])
	}
	acked := uint64(len(f.records) / 100 * 100)
	info, err := store.CloseAndCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	if info.Records != acked {
		t.Fatalf("final checkpoint has %d records, acked %d", info.Records, acked)
	}

	restored := newCkptStore(t, f, 4)
	defer restored.Close()
	rinfo, err := restored.Restore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rinfo.Records != acked {
		t.Errorf("restored %d records, want %d", rinfo.Records, acked)
	}
	if _, err := restored.Refresh(); err != nil {
		t.Fatal(err)
	}
	if got := restored.Current().Records; got != acked {
		t.Errorf("snapshot after restore has %d records, want %d", got, acked)
	}

	// A second close is a no-op and a checkpoint after close fails.
	store.Close()
	if _, err := store.Checkpoint(dir); !errors.Is(err, ErrClosed) {
		t.Errorf("Checkpoint after close: %v, want ErrClosed", err)
	}
	if _, err := store.CloseAndCheckpoint(dir); !errors.Is(err, ErrClosed) {
		t.Errorf("CloseAndCheckpoint after close: %v, want ErrClosed", err)
	}
}

// Corrupted or truncated checkpoints fail cleanly: Restore reports an
// error and the store remains usable and empty (the cold-boot path).
func TestRestoreCorruptCheckpoint(t *testing.T) {
	f := corpus(t)
	dir := t.TempDir()

	orig := newCkptStore(t, f, 2)
	fillStore(t, orig, f)
	if _, err := orig.Checkpoint(dir); err != nil {
		t.Fatal(err)
	}
	orig.Close()

	m, err := readManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	shardFile := filepath.Join(dir, m.Generation, shardFileName(1))
	good, err := os.ReadFile(shardFile)
	if err != nil {
		t.Fatal(err)
	}

	check := func(name string, mutate func() error) {
		t.Helper()
		if err := mutate(); err != nil {
			t.Fatal(err)
		}
		store := newCkptStore(t, f, 2)
		defer store.Close()
		if _, err := store.Restore(dir); err == nil {
			t.Errorf("%s: Restore succeeded on a damaged checkpoint", name)
		}
		// Cold boot fallback: the store still works.
		if got, err := store.Add(f.records[:100]); err != nil || got != 100 {
			t.Errorf("%s: store unusable after failed restore (added %d, err %v)", name, got, err)
		}
		if _, err := store.Refresh(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if got := store.Current().Records; got != 100 {
			t.Errorf("%s: store holds %d records after failed restore + cold ingest, want 100", name, got)
		}
	}

	check("truncated shard file", func() error { return os.WriteFile(shardFile, good[:len(good)/3], 0o644) })
	check("garbage shard file", func() error { return os.WriteFile(shardFile, []byte("not a gzip"), 0o644) })
	check("missing shard file", func() error { return os.Remove(shardFile) })

	// No manifest at all is the distinguishable "nothing to restore".
	empty := t.TempDir()
	store := newCkptStore(t, f, 2)
	defer store.Close()
	if _, err := store.Restore(empty); !errors.Is(err, ErrNoCheckpoint) {
		t.Errorf("Restore of empty dir: %v, want ErrNoCheckpoint", err)
	}
}

// The manifest names only complete generations: a crash that leaves a
// half-written .tmp generation behind is invisible to Restore, and
// successive checkpoints prune old generations.
func TestCheckpointGenerations(t *testing.T) {
	f := corpus(t)
	dir := t.TempDir()

	store := newCkptStore(t, f, 2)
	defer store.Close()
	store.Add(f.records[:1000])
	first, err := store.Checkpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	store.Add(f.records[1000:2000])
	second, err := store.Checkpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	if first.Generation == second.Generation {
		t.Fatalf("generations did not advance: %s", first.Generation)
	}
	// The previous generation is retained as a restore fallback...
	if _, err := os.Stat(filepath.Join(dir, first.Generation)); err != nil {
		t.Errorf("previous generation %s not retained for fallback: %v", first.Generation, err)
	}
	// ...but only the newest keepGens survive the next checkpoint.
	store.Add(f.records[2000:3000])
	third, err := store.Checkpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, first.Generation)); !os.IsNotExist(err) {
		t.Errorf("generation %s not pruned after falling out of the keep window", first.Generation)
	}
	if _, err := os.Stat(filepath.Join(dir, second.Generation)); err != nil {
		t.Errorf("generation %s pruned too eagerly: %v", second.Generation, err)
	}

	// Simulate a crash mid-checkpoint: a stray .tmp generation.
	tmpGen := filepath.Join(dir, "gen-99999999.tmp")
	if err := os.MkdirAll(tmpGen, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(tmpGen, shardFileName(0)), []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	restored := newCkptStore(t, f, 2)
	defer restored.Close()
	info, err := restored.Restore(dir)
	if err != nil {
		t.Fatalf("restore with stray tmp generation: %v", err)
	}
	if info.Generation != third.Generation {
		t.Errorf("restored %s, want %s", info.Generation, third.Generation)
	}
	if info.Records != 3000 {
		t.Errorf("restored %d records, want 3000", info.Records)
	}
}

// Stats surfaces the checkpoint alongside uptime and snapshot age.
func TestStatsCheckpointFields(t *testing.T) {
	f := corpus(t)
	dir := t.TempDir()

	store := newCkptStore(t, f, 2)
	defer store.Close()
	if got := store.Stats().CheckpointAgeS; got != -1 {
		t.Errorf("checkpoint_age_s before any checkpoint = %d, want -1", got)
	}
	store.Add(f.records[:500])
	info, err := store.Checkpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	s := store.Stats()
	if s.CheckpointAgeS < 0 || s.CheckpointAgeS > 60 {
		t.Errorf("checkpoint_age_s = %d", s.CheckpointAgeS)
	}
	if s.CheckpointBytes != info.Bytes || s.CheckpointGeneration != info.Generation {
		t.Errorf("stats checkpoint fields %d/%q, want %d/%q", s.CheckpointBytes, s.CheckpointGeneration, info.Bytes, info.Generation)
	}
	if s.UptimeS < 0 || s.SnapshotAgeS < 0 {
		t.Errorf("uptime_s=%d snapshot_age_s=%d", s.UptimeS, s.SnapshotAgeS)
	}

	// The HTTP surface exposes all three.
	srv := httptest.NewServer(NewServer(store, f.gen))
	defer srv.Close()
	_, body := getBody(t, srv.URL+"/v1/stats")
	for _, field := range []string{`"uptime_s"`, `"snapshot_age_s"`, `"checkpoint_age_s"`, `"checkpoint_generation"`} {
		if !strings.Contains(body, field) {
			t.Errorf("/v1/stats missing %s: %s", field, body)
		}
	}
}
