package serve

import (
	"context"
	"os"
	"path/filepath"
	"time"

	"syriafilter/internal/obs/trace"
)

// WatchDir polls dir every interval and block-ingests files it has not
// seen yet, refreshing the snapshot after each round that ingested
// anything, until stop closes. seen pre-marks paths already ingested
// elsewhere (boot -input files); it is owned by the watcher after the
// call.
//
// A file is only ingested once its size has held still for a full poll
// interval (a producer may still be appending). Transient errors —
// the directory scan failing, a stat or open racing a writer, an
// ingest error — are retried with capped exponential backoff instead
// of being skipped or hammered at the poll rate forever: each
// consecutive failure doubles the wait before the next attempt, up to
// watchMaxBackoffPolls poll intervals, and any success resets it.
func (st *Store) WatchDir(dir string, every time.Duration, seen map[string]bool, stop <-chan struct{}) {
	w := newWatcher(st, dir, every, seen)
	tick := time.NewTicker(every)
	defer tick.Stop()
	for {
		select {
		case <-stop:
			return
		case now := <-tick.C:
			w.poll(now)
		}
	}
}

// watchMaxBackoffPolls caps the exponential backoff at this many poll
// intervals: transient errors retreat quickly, a persistently broken
// path still gets retried forever — just cheaply.
const watchMaxBackoffPolls = 16

// watchBackoff is the capped exponential backoff after n consecutive
// failures (n >= 1): base, 2*base, 4*base, ... capped.
func watchBackoff(n int, base time.Duration) time.Duration {
	d := base
	for i := 1; i < n; i++ {
		d *= 2
		if d >= time.Duration(watchMaxBackoffPolls)*base {
			return time.Duration(watchMaxBackoffPolls) * base
		}
	}
	return d
}

// watcher is the state of one WatchDir loop, poll-driven so tests can
// step it with synthetic clocks.
type watcher struct {
	st    *Store
	dir   string
	every time.Duration
	seen  map[string]bool
	sizes map[string]int64 // last observed size of not-yet-ingested files

	scanFails int       // consecutive ReadDir failures
	nextScan  time.Time // zero = scan on the next poll

	fails map[string]*watchRetry // per-path transient-failure backoff
}

type watchRetry struct {
	failures  int
	notBefore time.Time
}

func newWatcher(st *Store, dir string, every time.Duration, seen map[string]bool) *watcher {
	if seen == nil {
		seen = map[string]bool{}
	}
	return &watcher{
		st: st, dir: dir, every: every, seen: seen,
		sizes: map[string]int64{},
		fails: map[string]*watchRetry{},
	}
}

// bump records one more consecutive failure for path and returns the
// backoff applied before the next attempt.
func (w *watcher) bump(path string, now time.Time) time.Duration {
	r := w.fails[path]
	if r == nil {
		r = &watchRetry{}
		w.fails[path] = r
	}
	r.failures++
	d := watchBackoff(r.failures, w.every)
	r.notBefore = now.Add(d)
	return d
}

// poll runs one watch round at the given time.
func (w *watcher) poll(now time.Time) {
	if now.Before(w.nextScan) {
		return
	}
	entries, err := os.ReadDir(w.dir)
	if err != nil {
		w.scanFails++
		backoff := watchBackoff(w.scanFails, w.every)
		w.nextScan = now.Add(backoff)
		w.st.logger.Warn("watch scan failed, backing off",
			"dir", w.dir, "err", err, "retry_in", backoff, "failures", w.scanFails)
		return
	}
	w.scanFails = 0
	w.nextScan = time.Time{}

	ingested := false
	// One trace per poll round that attempts work: idle rounds (nothing
	// new, everything still growing) stay trace-free so a quiet watcher
	// does not dilute the flight recorder's sampled ring. The root is
	// created lazily at the first ingest attempt.
	var (
		psp       *trace.Span
		pollCtx   = context.Background()
		pollFiles int64
	)
	pollSpan := func() *trace.Span {
		if psp == nil {
			psp = w.st.tracer.Root("watch.poll")
			psp.SetAttrs(trace.Str("dir", w.dir))
			pollCtx = trace.NewContext(pollCtx, psp)
		}
		return psp
	}
	present := make(map[string]bool, len(entries))
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		path := filepath.Clean(filepath.Join(w.dir, e.Name()))
		present[path] = true
		if w.seen[path] {
			continue
		}
		if r := w.fails[path]; r != nil && now.Before(r.notBefore) {
			continue
		}
		info, err := e.Info()
		if err != nil {
			// Stat raced a writer (or the file vanished): back off this
			// path instead of silently re-trying at full rate forever.
			w.st.logger.Warn("watch stat failed, will retry",
				"path", path, "err", err, "retry_in", w.bump(path, now))
			continue
		}
		if last, ok := w.sizes[path]; !ok || last != info.Size() {
			w.sizes[path] = info.Size() // first sighting or still growing
			continue
		}
		pollSpan()
		added, malformed, err := w.st.IngestFilesCtx(pollCtx, []string{path}, 0)
		if err != nil {
			psp.Fail(err)
			w.st.logger.Warn("watch ingest failed, will retry",
				"path", path, "err", err, "retry_in", w.bump(path, now))
			delete(w.sizes, path) // restart the stability window
			continue
		}
		pollFiles++
		delete(w.fails, path)
		w.seen[path] = true
		delete(w.sizes, path)
		if malformed > 0 {
			w.st.logger.Warn("watch skipped malformed lines", "path", path, "count", malformed)
		}
		w.st.logger.Info("watch ingested", "records", added, "path", path)
		ingested = true
	}
	// Files that appeared and vanished before ingesting (temp files,
	// rotations) must not pin tracking state forever: a multi-week
	// watch would otherwise grow these maps unboundedly. seen stays —
	// an ingested file that reappears under the same name must not be
	// double-counted.
	for path := range w.sizes {
		if !present[path] {
			delete(w.sizes, path)
		}
	}
	for path := range w.fails {
		if !present[path] {
			delete(w.fails, path)
		}
	}
	if ingested {
		if _, err := w.st.RefreshCtx(pollCtx); err != nil {
			psp.Fail(err)
			w.st.logger.Warn("watch snapshot failed", "err", err)
		}
	}
	if psp != nil {
		psp.SetAttrs(trace.Int("files", pollFiles))
		psp.End()
	}
}
