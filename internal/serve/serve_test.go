package serve

import (
	"bytes"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"syriafilter/internal/bittorrent"
	"syriafilter/internal/core"
	"syriafilter/internal/logfmt"
	"syriafilter/internal/proxysim"
	"syriafilter/internal/render"
	"syriafilter/internal/synth"
)

type fixture struct {
	gen     *synth.Generator
	records []logfmt.Record
	batch   *core.Analyzer // reference: one batch run over records
	opt     core.Options
}

var (
	fixOnce sync.Once
	fix     *fixture
)

func corpus(t *testing.T) *fixture {
	t.Helper()
	fixOnce.Do(func() {
		gen, err := synth.New(synth.Config{Seed: 23, TotalRequests: 20000})
		if err != nil {
			return
		}
		cluster := proxysim.NewCluster(proxysim.Config{
			Seed: 23, Engine: gen.Engine(), Consensus: gen.Consensus(),
		})
		opt := core.Options{
			Categories: gen.CategoryDB(),
			Consensus:  gen.Consensus(),
			TitleDB:    bittorrent.NewTitleDB(),
		}
		an := core.NewAnalyzer(opt)
		var recs []logfmt.Record
		var rec logfmt.Record
		for {
			req, ok := gen.Next()
			if !ok {
				break
			}
			cluster.Process(&req, &rec)
			an.Observe(&rec)
			recs = append(recs, rec)
		}
		fix = &fixture{gen: gen, records: recs, batch: an, opt: opt}
	})
	if fix == nil {
		t.Fatal("fixture failed to build")
	}
	return fix
}

// encodeCSV renders records in the on-the-wire log format.
func encodeCSV(t *testing.T, recs []logfmt.Record, gz bool) []byte {
	t.Helper()
	var buf bytes.Buffer
	var w *logfmt.Writer
	var zw *gzip.Writer
	if gz {
		zw = gzip.NewWriter(&buf)
		w = logfmt.NewWriter(zw)
	} else {
		w = logfmt.NewWriter(&buf)
	}
	if err := w.WriteHeader(); err != nil {
		t.Fatal(err)
	}
	for i := range recs {
		if err := w.Write(&recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if zw != nil {
		if err := zw.Close(); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// The acceptance criterion: for every experiment id, a censord snapshot
// queried over HTTP returns byte-for-byte the same JSON as a batch core
// run over the same input.
func TestHTTPSnapshotMatchesBatchRun(t *testing.T) {
	f := corpus(t)
	store, err := NewStore(Config{Options: f.opt, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	srv := httptest.NewServer(NewServer(store, f.gen))
	defer srv.Close()

	// Ingest over HTTP in two batches: plain CSV and gzipped CSV.
	half := len(f.records) / 2
	post := func(body []byte, gz bool) map[string]any {
		req, err := http.NewRequest("POST", srv.URL+"/v1/ingest", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if gz {
			req.Header.Set("Content-Encoding", "gzip")
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("ingest status %d", resp.StatusCode)
		}
		out := map[string]any{}
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return out
	}
	r1 := post(encodeCSV(t, f.records[:half], false), false)
	// Gzip body without a Content-Encoding header: detected by magic.
	r2 := post(encodeCSV(t, f.records[half:], true), false)
	if got := r1["added"].(float64) + r2["added"].(float64); int(got) != len(f.records) {
		t.Fatalf("ingested %v records, want %d", got, len(f.records))
	}

	// Build the consistent read view.
	resp, err := http.Post(srv.URL+"/v1/snapshot", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	for _, id := range render.Order() {
		id := id
		t.Run(id, func(t *testing.T) {
			resp, err := http.Get(srv.URL + "/v1/experiments/" + id)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != 200 {
				t.Fatalf("status %d", resp.StatusCode)
			}
			var got bytes.Buffer
			if _, err := got.ReadFrom(resp.Body); err != nil {
				t.Fatal(err)
			}
			doc, err := render.Render(id, render.Context{An: f.batch, Gen: f.gen})
			if err != nil {
				t.Fatal(err)
			}
			want, err := json.Marshal(doc)
			if err != nil {
				t.Fatal(err)
			}
			want = append(want, '\n')
			if !bytes.Equal(got.Bytes(), want) {
				t.Errorf("HTTP snapshot differs from batch run\n got: %.400s\nwant: %.400s", got.Bytes(), want)
			}
		})
	}

	// Numeric aliases and text format.
	for path, frag := range map[string]string{
		"/v1/tables/4?format=text":  "Table 4",
		"/v1/figures/8?format=text": "Tor requests",
		"/v1/tables/table12":        `"table12"`,
	} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 || !strings.Contains(string(body), frag) {
			t.Errorf("%s: status %d, body %.120s", path, resp.StatusCode, body)
		}
	}

	// Wrong-kind and unknown ids 404; generator-free contexts 422 is
	// covered in render tests.
	for _, path := range []string{"/v1/tables/fig8", "/v1/figures/table4", "/v1/experiments/nope"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 404 {
			t.Errorf("%s: status %d, want 404", path, resp.StatusCode)
		}
	}
}

// Concurrent ingest and query must be race-free (run under -race) and
// lose nothing: after quiescing, the snapshot covers every record.
func TestConcurrentIngestAndQuery(t *testing.T) {
	f := corpus(t)
	store, err := NewStore(Config{Options: f.opt, Shards: 4, SnapshotEvery: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	server := NewServer(store, f.gen)

	const writers = 4
	var wgW, wgR sync.WaitGroup
	stop := make(chan struct{})

	// Writers: partition the corpus and Add it batch by batch.
	per := len(f.records) / writers
	for wi := 0; wi < writers; wi++ {
		part := f.records[wi*per : (wi+1)*per]
		wgW.Add(1)
		go func(part []logfmt.Record) {
			defer wgW.Done()
			for len(part) > 0 {
				n := 512
				if n > len(part) {
					n = len(part)
				}
				store.Add(part[:n])
				part = part[n:]
			}
		}(part)
	}

	// Readers: hammer query endpoints while ingestion runs.
	readerErrs := make(chan string, 64)
	for ri := 0; ri < 4; ri++ {
		wgR.Add(1)
		go func() {
			defer wgR.Done()
			// table8 is load-bearing: keyword/domain discovery reads the
			// capped censored-URL store, whose canonical view must be
			// computed without mutating the shared snapshot (two readers
			// rendering it concurrently pin that, under -race).
			paths := []string{"/healthz", "/v1/stats", "/v1/tables/1", "/v1/tables/8", "/v1/tables/8", "/v1/figures/5", "/v1/experiments/https"}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				req := httptest.NewRequest("GET", paths[i%len(paths)], nil)
				rw := httptest.NewRecorder()
				server.ServeHTTP(rw, req)
				if rw.Code != 200 {
					select {
					case readerErrs <- fmt.Sprintf("%s: status %d", paths[i%len(paths)], rw.Code):
					default:
					}
					return
				}
			}
		}()
	}

	wgW.Wait()
	close(stop)
	wgR.Wait()
	select {
	case msg := <-readerErrs:
		t.Fatal(msg)
	default:
	}

	snap, err := store.Refresh()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Records != uint64(writers*per) {
		t.Errorf("final snapshot covers %d records, want %d", snap.Records, writers*per)
	}

	// The quiesced snapshot equals a batch run over the same records.
	batch := core.NewAnalyzer(f.opt)
	for i := 0; i < writers*per; i++ {
		batch.Observe(&f.records[i])
	}
	got, err := render.Render("table1", render.Context{An: snap.An})
	if err != nil {
		t.Fatal(err)
	}
	want, err := render.Render("table1", render.Context{An: batch})
	if err != nil {
		t.Fatal(err)
	}
	gb, _ := json.Marshal(got)
	wb, _ := json.Marshal(want)
	if !bytes.Equal(gb, wb) {
		t.Errorf("concurrent ingest result differs from batch run\n got: %s\nwant: %s", gb, wb)
	}
}

// Closing the store keeps the last snapshot readable and turns Add into
// a no-op.
func TestStoreClose(t *testing.T) {
	f := corpus(t)
	store, err := NewStore(Config{Options: f.opt, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	store.Add(f.records[:1000])
	if _, err := store.Refresh(); err != nil {
		t.Fatal(err)
	}
	store.Close()
	store.Close() // idempotent
	if n, err := store.Add(f.records[:100]); err == nil || n != 0 {
		t.Errorf("Add after Close accepted %d records (err %v)", n, err)
	}
	if snap := store.Current(); snap.Records != 1000 {
		t.Errorf("snapshot after Close has %d records, want 1000", snap.Records)
	}
	if _, err := store.Refresh(); err != nil {
		t.Error("Refresh after Close should be a no-op, not an error")
	}
}
