package serve

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"log/slog"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"syriafilter/internal/core"
	"syriafilter/internal/logfmt"
	"syriafilter/internal/obs"
	"syriafilter/internal/obs/trace"
	"syriafilter/internal/render"
	"syriafilter/internal/synth"
	"syriafilter/internal/timewin"
)

// Server is the HTTP query API over a Store:
//
//	GET  /healthz                     liveness + snapshot freshness
//	GET  /readyz                      readiness (503 while restoring/loading)
//	GET  /metrics                     Prometheus text exposition
//	GET  /v1/stats                    store counters (+ "obs" metric snapshot)
//	GET  /v1/experiments              experiment index (id, kind, title, modules)
//	GET  /v1/experiments/{id}         any experiment (table4, fig8, https, ...)
//	GET  /v1/tables/{id}              tables only; "table4" or bare "4"
//	GET  /v1/figures/{id}             figures only; "fig8" or bare "8"
//	GET  /v1/range/{id}               any experiment over ?from&to (&step)
//	GET  /v1/sync                     incremental long-poll (?since&timeout&ids)
//	POST /v1/ingest                   CSV log lines (gzip ok) into the store
//	POST /v1/snapshot                 force a snapshot rebuild
//	POST /v1/checkpoint               cut a checkpoint now (WithCheckpoint)
//	GET  /debug/traces                flight recorder: retained traces (?limit&min_ms)
//	GET  /debug/traces/{id}           one trace as a nested span tree
//
// Query endpoints serve JSON by default and aligned text with
// ?format=text; ?fresh=1 rebuilds the snapshot before answering. JSON
// bodies are the render.Doc encoding — byte-identical to
// `censorlyzer -json` over the same records, which is what the CI smoke
// test diffs.
//
// Unless the store runs with DisableObs, every route is wrapped in the
// obs middleware: per-route request/status-class counters, an in-flight
// gauge, a latency histogram, and (with WithLogger) a structured access
// log line per request carrying an X-Request-ID.
//
// Read-path caching: doc, range and index responses are cached by
// content generation (snapshot Seq for docs, a window fingerprint for
// ranges) in a byte-bounded LRU, served with strong ETags and gzip
// variants, and revalidated with If-None-Match → 304. GET /v1/sync
// turns the same generations into incremental long-polling: see
// handleSync. The invariant throughout is that a cache-served or
// gzip-served body is byte-identical to a fresh render — keys change
// whenever the content can.
type Server struct {
	store   *Store
	gen     *synth.Generator
	mux     *http.ServeMux
	start   time.Time
	logger  *slog.Logger
	ready   *Readiness
	maxBody int64
	ckptFn  func(ctx context.Context) (CheckpointInfo, error)

	// boot is a per-process nonce prefixed to every ETag and sync
	// token. Seq restarts from zero with the process, so a validator
	// that survived a restart could otherwise match fresh state it does
	// not describe; the nonce makes cross-process validators miss (a
	// full response / full resync) instead of silently serving stale.
	boot string

	cacheBytes    int64
	cache         *docCache
	readm         readMetrics
	syncMaxParked int
	syncWaiting   atomic.Int64
	tracker       syncTracker

	indexPlain []byte
	indexGz    []byte
	indexETag  string
}

// ServerOption customizes NewServer.
type ServerOption func(*Server)

// WithLogger sets the structured logger for per-request access logs
// (nil disables them, the default).
func WithLogger(l *slog.Logger) ServerOption { return func(s *Server) { s.logger = l } }

// WithReadiness wires an external readiness signal into GET /readyz,
// letting the daemon report "restoring"/"loading" during boot (and
// "draining" during shutdown). Without it /readyz follows only the
// store's own restore state.
func WithReadiness(r *Readiness) ServerOption { return func(s *Server) { s.ready = r } }

// WithMaxBody caps POST /v1/ingest request bodies at n wire bytes
// (pre-gunzip); larger uploads fail with 413. <= 0 leaves bodies
// unbounded (the default, for embedders that trust their callers).
func WithMaxBody(n int64) ServerOption { return func(s *Server) { s.maxBody = n } }

// WithCheckpoint enables POST /v1/checkpoint: fn cuts a checkpoint now
// and returns what was written. The daemon wires this to
// Store.CheckpointCtx with its -checkpoint dir (the ctx carries the
// request's trace span); without the option the endpoint answers 501.
func WithCheckpoint(fn func(ctx context.Context) (CheckpointInfo, error)) ServerOption {
	return func(s *Server) { s.ckptFn = fn }
}

// WithDocCacheBytes caps the rendered-doc cache (default
// DefaultDocCacheBytes; <= 0 disables caching — every request renders
// fresh, though ETags and 304s still work because they derive from the
// generation, not the cache).
func WithDocCacheBytes(n int64) ServerOption { return func(s *Server) { s.cacheBytes = n } }

// WithSyncMaxParked bounds how many /v1/sync long-polls may be parked
// at once; excess polls are shed with 429 + Retry-After so a poller
// herd cannot pin unbounded handler goroutines. Default
// DefaultSyncMaxParked; <= 0 sheds every park attempt (long-polling
// effectively disabled, ?since still answers immediately when data
// already changed).
func WithSyncMaxParked(n int) ServerOption { return func(s *Server) { s.syncMaxParked = n } }

// NewServer wires the routes. gen is the optional ground-truth world;
// without it the generator-requiring experiments (probing, groundtruth)
// answer 422.
func NewServer(store *Store, gen *synth.Generator, opts ...ServerOption) *Server {
	s := &Server{store: store, gen: gen, mux: http.NewServeMux(), start: time.Now(),
		boot:       bootNonce(),
		cacheBytes: DefaultDocCacheBytes, syncMaxParked: DefaultSyncMaxParked}
	for _, opt := range opts {
		opt(s)
	}
	s.tracker.docs = map[string]*docTrack{}
	reg := store.Registry()
	if reg != nil {
		s.readm = newReadMetrics(reg)
		reg.GaugeFunc("censord_sync_waiting", "/v1/sync long-polls currently parked.",
			func() float64 { return float64(s.syncWaiting.Load()) })
	}
	s.cache = newDocCache(s.cacheBytes, docCacheMetrics{
		hits: s.readm.cacheHits, misses: s.readm.cacheMisses,
		evictions: s.readm.cacheEvictions, bytes: s.readm.cacheBytes,
	})
	s.buildIndex()
	handle := func(pattern, route string, h http.HandlerFunc) {
		if reg == nil {
			s.mux.Handle(pattern, h)
			return
		}
		s.mux.Handle(pattern, obs.Middleware(obs.NewHTTPMetrics(reg, route), s.logger, store.Tracer(), h))
	}
	handle("GET /healthz", "/healthz", s.handleHealth)
	handle("GET /readyz", "/readyz", s.handleReady)
	handle("GET /v1/stats", "/v1/stats", s.handleStats)
	handle("GET /v1/experiments", "/v1/experiments", s.handleIndex)
	handle("GET /v1/experiments/{id}", "/v1/experiments/{id}", s.handleExperiment)
	handle("GET /v1/tables/{id}", "/v1/tables/{id}", s.handleTable)
	handle("GET /v1/figures/{id}", "/v1/figures/{id}", s.handleFigure)
	handle("GET /v1/range/{id}", "/v1/range/{id}", s.handleRange)
	handle("GET /v1/sync", "/v1/sync", s.handleSync)
	handle("POST /v1/ingest", "/v1/ingest", s.handleIngest)
	handle("POST /v1/snapshot", "/v1/snapshot", s.handleSnapshot)
	handle("POST /v1/checkpoint", "/v1/checkpoint", s.handleCheckpoint)
	handle("GET /debug/traces", "/debug/traces", s.handleTraces)
	handle("GET /debug/traces/{id}", "/debug/traces/{id}", s.handleTrace)
	if reg != nil {
		// The scrape itself is instrumented too — http_requests_total
		// {route="/metrics"} shows scraper health.
		handle("GET /metrics", "/metrics", s.handleMetrics)
	}
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func writeJSON(w http.ResponseWriter, status int, v any) {
	b, err := json.Marshal(v)
	if err != nil {
		http.Error(w, fmt.Sprintf(`{"error":%q}`, err.Error()), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(b)
	w.Write([]byte("\n"))
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// handleHealth is the liveness probe: it answers 200 "ok" whenever the
// process can serve HTTP at all, even mid-restore. Readiness — is this
// instance safe to route traffic to — is /readyz's question.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	snap := s.store.Current()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":           "ok",
		"uptime_seconds":   int64(time.Since(s.start).Seconds()),
		"ingested":         s.store.ingested.Load(),
		"snapshot_seq":     snap.Seq,
		"snapshot_records": snap.Records,
		"snapshot_age_sec": int64(time.Since(snap.Built).Seconds()),
	})
}

// handleReady is the readiness probe: 503 with the blocking state
// ("restoring" during a checkpoint restore, whatever the wired
// Readiness reports during boot) and 200 {"status":"ok"} once the
// instance should receive traffic.
func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	state := s.ready.State() // nil-safe: no signal wired reads "ok"
	if state == "ok" && s.store.Restoring() {
		state = "restoring"
	}
	status := http.StatusOK
	if state != "ok" {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, map[string]any{"status": state})
}

// handleMetrics serves the Prometheus text exposition.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.store.Registry().WritePrometheus(w)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.store.Stats())
}

// buildIndex precomputes the experiment index once at construction:
// the renderer registry and module mapping are immutable after boot,
// so GET /v1/experiments serves frozen bytes (plain and gzip) with a
// content-hash ETag.
func (s *Server) buildIndex() {
	type entry struct {
		ID      string   `json:"id"`
		Kind    string   `json:"kind"`
		Title   string   `json:"title"`
		Modules []string `json:"modules"`
	}
	var out []entry
	for _, id := range render.Order() {
		mods, err := core.ModulesFor(id)
		if err != nil {
			continue
		}
		out = append(out, entry{ID: id, Kind: render.Kind(id), Title: render.Title(id), Modules: mods})
	}
	body, err := render.EncodeJSON(out)
	if err != nil {
		// Unreachable for the static registry; keep the handler failing
		// loudly rather than panicking the constructor.
		return
	}
	s.indexPlain = body
	s.indexGz = gzipBytes(body)
	h := fnv.New64a()
	h.Write(body)
	// Content-derived, deliberately without the boot nonce: identical
	// builds serve identical indexes, so cross-restart 304s are sound
	// here.
	s.indexETag = `"idx-` + strconv.FormatUint(h.Sum64(), 36) + `"`
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if s.indexPlain == nil {
		writeError(w, http.StatusInternalServerError, "experiment index unavailable")
		return
	}
	w.Header().Set("Vary", "Accept-Encoding")
	w.Header().Set("ETag", s.indexETag)
	if etagMatch(r.Header.Get("If-None-Match"), s.indexETag) {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	body := s.indexPlain
	if acceptsGzip(r) {
		w.Header().Set("Content-Encoding", "gzip")
		body = s.indexGz
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(len(body)))
	w.Write(body)
}

// bootNonce builds the per-process validator prefix (see Server.boot).
func bootNonce() string {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d.%d", os.Getpid(), time.Now().UnixNano())
	return strconv.FormatUint(h.Sum64(), 36)
}

// etagFor derives the strong ETag of one cached response variant. The
// key's generation component only changes when the content can, so
// equality of ETags implies byte-equality of bodies — within one
// process life; the boot nonce keeps validators from leaking across
// restarts, where Seq resets.
func (s *Server) etagFor(k docKey) string {
	parts := []string{s.boot, strconv.FormatUint(k.gen, 36), k.id, k.window, k.format}
	if k.gzip {
		parts = append(parts, "gz")
	}
	return `"` + strings.Join(parts, ".") + `"`
}

// etagMatch implements If-None-Match: a comma-separated list of
// entity tags (weak prefixes tolerated, compared strongly) or "*".
func etagMatch(header, etag string) bool {
	if header == "" || etag == "" {
		return false
	}
	if strings.TrimSpace(header) == "*" {
		return true
	}
	for _, part := range strings.Split(header, ",") {
		part = strings.TrimSpace(part)
		part = strings.TrimPrefix(part, "W/")
		if part == etag {
			return true
		}
	}
	return false
}

// acceptsGzip reports whether the client asked for gzip responses.
// Deliberately simple: a "gzip" token anywhere in Accept-Encoding that
// is not explicitly disabled with q=0.
func acceptsGzip(r *http.Request) bool {
	for _, part := range strings.Split(r.Header.Get("Accept-Encoding"), ",") {
		enc, q, hasQ := strings.Cut(strings.TrimSpace(part), ";")
		if strings.TrimSpace(enc) != "gzip" {
			continue
		}
		if hasQ {
			if v := strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(q), "q=")); v == "0" || v == "0.0" || v == "0.00" || v == "0.000" {
				return false
			}
		}
		return true
	}
	return false
}

// gzipBytes compresses b at the default level. gzip output for a given
// input is deterministic (the header carries no mod time), so cached
// and fresh gzip variants stay byte-identical.
func gzipBytes(b []byte) []byte {
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	zw.Write(b)
	zw.Close()
	return buf.Bytes()
}

func (s *Server) handleExperiment(w http.ResponseWriter, r *http.Request) {
	s.serveDoc(w, r, r.PathValue("id"), "")
}

func (s *Server) handleTable(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !strings.HasPrefix(id, "table") {
		id = "table" + id
	}
	s.serveDoc(w, r, id, "table")
}

func (s *Server) handleFigure(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !strings.HasPrefix(id, "fig") {
		id = "fig" + id
	}
	s.serveDoc(w, r, id, "figure")
}

// gateServing rejects requests that would observe (or snapshot)
// half-restored state: while the daemon is restoring a checkpoint or
// replaying boot files, /v1/snapshot, /v1/range and /v1/checkpoint
// would race the async boot — a snapshot cut mid-restore publishes a
// partial view, and range queries merge partially-folded partitions.
// Answer 503 + Retry-After so clients (and LBs) come back once
// /readyz flips. Returns true when the request was rejected.
func (s *Server) gateServing(w http.ResponseWriter) bool {
	state := s.ready.State() // nil-safe: no signal wired reads "ok"
	if state == "ok" && s.store.Restoring() {
		state = "restoring"
	}
	if state == "ok" {
		return false
	}
	w.Header().Set("Retry-After", "1")
	writeError(w, http.StatusServiceUnavailable, "service %s; retry shortly", state)
	return true
}

// handleRange is the windowed query endpoint. Without step it merges
// every bucket the window covers into one transient engine and renders
// the experiment Doc over it — for a window covering the whole corpus
// the body is byte-identical to the all-time snapshot (and to
// `censorlyzer -json`). With step it renders one Doc per step-sized
// sub-window and returns a Series. Ranges that begin inside the
// compacted retention tail answer 422 with the horizon.
//
// Range responses cache under a window-content fingerprint instead of
// the snapshot Seq (range queries read the live partitions, not the
// snapshot): see rangeFingerprint. A fully-frozen window — no records
// arriving inside it — therefore keeps hitting across snapshot
// generations, and its ETag keeps revalidating.
func (s *Server) handleRange(w http.ResponseWriter, r *http.Request) {
	if s.gateServing(w) {
		return
	}
	id := r.PathValue("id")
	if render.Title(id) == "" {
		writeError(w, http.StatusNotFound, "render: unknown experiment id %q (known: %v)", id, render.Order())
		return
	}
	q := r.URL.Query()
	win, err := timewin.ParseWindow(q.Get("from"), q.Get("to"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	var step int64
	if stepStr := q.Get("step"); stepStr != "" {
		if step, err = timewin.ParseStep(stepStr); err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
	}
	format := "json"
	if q.Get("format") == "text" {
		format = "text"
	}
	gz := acceptsGzip(r)

	fp, cacheable := s.rangeFingerprint(r.Context(), win)
	var key docKey
	var etag string
	if cacheable {
		key = docKey{gen: fp, id: id,
			window: fmt.Sprintf("%d:%d:%d", win.From, win.To, step),
			format: format, gzip: gz}
		etag = s.etagFor(key)
		w.Header().Set("Vary", "Accept-Encoding")
		if etagMatch(r.Header.Get("If-None-Match"), etag) {
			// The fingerprint is content-derived, so a match proves the
			// client's body is current even on a cold cache: 304 with
			// zero merge and zero render.
			s.readm.cacheHits.Inc()
			w.Header().Set("ETag", etag)
			w.WriteHeader(http.StatusNotModified)
			return
		}
		if e := s.cache.get(key); e != nil {
			s.writeRangeBody(w, e.etag, e.headers, format, gz, e.body)
			return
		}
	}

	// Miss (or uncacheable): run the real query.
	var body []byte
	var hdrs [][2]string
	if step > 0 {
		body = s.buildRangeSeries(w, r, id, win, step, format)
	} else {
		body, hdrs = s.buildRangeDoc(w, r, id, win, format)
	}
	if body == nil {
		return // the builder wrote the error response
	}
	gzBody := body
	if gz {
		gzBody = gzipBytes(body)
	}
	if cacheable {
		// Verify-then-store: only cache if the window's content did not
		// move while we merged — the fingerprint sandwich proves the body
		// corresponds to the key (per-bucket record counts are monotone,
		// so equal fingerprints before and after bracket an unchanged
		// window).
		if fp2, ok := s.rangeFingerprint(r.Context(), win); ok && fp2 == fp {
			plainKey := key
			plainKey.gzip = false
			s.cache.put(plainKey, &docEntry{body: body, etag: s.etagFor(plainKey), headers: hdrs})
			if gz {
				s.cache.put(key, &docEntry{body: gzBody, etag: etag, headers: hdrs})
			}
		}
	}
	s.writeRangeBody(w, etag, hdrs, format, gz, gzBody)
}

// writeRangeBody writes a 200 range response: optional strong ETag,
// the X-Range-* coverage headers, content type by format, and the
// (possibly gzipped) body.
func (s *Server) writeRangeBody(w http.ResponseWriter, etag string, hdrs [][2]string, format string, gz bool, body []byte) {
	if etag != "" {
		w.Header().Set("ETag", etag)
	}
	for _, h := range hdrs {
		w.Header().Set(h[0], h[1])
	}
	if gz {
		w.Header().Set("Content-Encoding", "gzip")
	}
	if format == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	} else {
		w.Header().Set("Content-Type", "application/json")
	}
	w.Header().Set("Content-Length", strconv.Itoa(len(body)))
	w.Write(body)
}

// buildRangeDoc runs the uncached single-doc range query and encodes
// the response body; on failure it writes the error response itself
// and returns a nil body.
func (s *Server) buildRangeDoc(w http.ResponseWriter, r *http.Request, id string, win timewin.Window, format string) ([]byte, [][2]string) {
	an, cov, err := s.store.RangeCtx(r.Context(), win)
	if err != nil {
		s.writeRangeError(w, err)
		return nil, nil
	}
	rsp := trace.FromContext(r.Context()).Child("render")
	doc, err := render.Render(id, render.Context{An: an, Gen: s.gen})
	rsp.End()
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, "%v", err)
		return nil, nil
	}
	hdrs := [][2]string{
		{"X-Range-From", fmt.Sprint(cov.FromUnix)},
		{"X-Range-To", fmt.Sprint(cov.ToUnix)},
		{"X-Range-Records", fmt.Sprint(cov.Records)},
		// Bucket *merges* summed across shards — the query's cost, not the
		// distinct-bucket layout (/v1/stats reports that).
		{"X-Range-Buckets", fmt.Sprint(cov.Buckets)},
	}
	if format == "text" {
		return []byte(doc.Text()), hdrs
	}
	body, err := render.EncodeJSON(doc)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return nil, nil
	}
	return body, hdrs
}

// buildRangeSeries is buildRangeDoc for ?step= series responses.
func (s *Server) buildRangeSeries(w http.ResponseWriter, r *http.Request, id string, win timewin.Window, step int64, format string) []byte {
	wins, err := s.store.RangeSeriesCtx(r.Context(), win, step)
	if err != nil {
		s.writeRangeError(w, err)
		return nil
	}
	rsp := trace.FromContext(r.Context()).Child("render")
	rsp.SetAttrs(trace.Int("windows", int64(len(wins))))
	series := &render.Series{ID: id, Kind: render.Kind(id), Title: render.Title(id), StepSeconds: step}
	for _, rw := range wins {
		doc, err := render.Render(id, render.Context{An: rw.An, Gen: s.gen})
		if err != nil {
			rsp.Fail(err)
			rsp.End()
			writeError(w, http.StatusUnprocessableEntity, "%v", err)
			return nil
		}
		series.Windows = append(series.Windows, render.SeriesWindow{
			FromUnix: rw.Window.From,
			ToUnix:   rw.Window.To,
			Records:  rw.Coverage.Records,
			Doc:      doc,
		})
	}
	rsp.End()
	if format == "text" {
		return []byte(series.Text())
	}
	body, err := render.EncodeJSON(series)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return nil
	}
	return body
}

// rangeFingerprint hashes the live content of a window — every bucket
// intersecting it (start + record count, summed across shards) plus,
// when the window reaches back to the compacted tail, the tail span
// and count — into a cache generation. Per-bucket record counts only
// grow and buckets only ever leave the ring for the tail (changing
// both sides of the hash), so an equal fingerprint implies an
// identical merged engine and therefore byte-identical rendered
// output: the monotonicity argument that makes Seq a sound doc-cache
// key, applied per bucket. ok=false means the window is not cacheable:
// the store is closed, or the window starts inside the compacted tail
// (the query itself will answer 422 with the horizon).
func (s *Server) rangeFingerprint(ctx context.Context, win timewin.Window) (uint64, bool) {
	sp := trace.FromContext(ctx).Child("cache.lookup")
	defer sp.End()
	meta, err := s.store.liveMeta()
	if err != nil {
		return 0, false
	}
	if win.From != 0 && meta.TailRecords > 0 && win.From < meta.TailToUnix {
		return 0, false
	}
	h := fnv.New64a()
	var b [8]byte
	u := func(v uint64) { binary.LittleEndian.PutUint64(b[:], v); h.Write(b[:]) }
	u(uint64(meta.BucketSeconds))
	if win.From == 0 {
		u(uint64(meta.TailFromUnix))
		u(uint64(meta.TailToUnix))
		u(meta.TailRecords)
	}
	for _, bk := range meta.Buckets {
		end := bk.StartUnix + meta.BucketSeconds
		if (win.From != 0 && end <= win.From) || (win.To != 0 && bk.StartUnix >= win.To) {
			continue
		}
		u(uint64(bk.StartUnix))
		u(bk.Records)
	}
	return h.Sum64(), true
}

// writeRangeError maps range-query failures: retention violations are
// 422 (the data exists only compacted), bad windows/steps are 400, a
// closed store is 503.
func (s *Server) writeRangeError(w http.ResponseWriter, err error) {
	var re *timewin.RetentionError
	switch {
	case errors.As(err, &re):
		writeError(w, http.StatusUnprocessableEntity, "%v", err)
	case errors.Is(err, ErrClosed):
		writeError(w, http.StatusServiceUnavailable, "%v", err)
	default:
		writeError(w, http.StatusBadRequest, "%v", err)
	}
}

// serveDoc serves one experiment against the current (or, with
// ?fresh=1, a just-rebuilt) snapshot, through the rendered-doc cache:
// the response is keyed by (Seq, id, format, gzip), revalidated with
// If-None-Match (304, zero render, zero body — counted as the cheapest
// kind of cache hit), and byte-identical to a fresh render on every
// path. wantKind restricts the endpoint to tables or figures; ""
// accepts any experiment.
func (s *Server) serveDoc(w http.ResponseWriter, r *http.Request, id, wantKind string) {
	if wantKind != "" && render.Kind(id) != wantKind {
		writeError(w, http.StatusNotFound, "%s is not a %s id", id, wantKind)
		return
	}
	snap := s.store.Current()
	if r.URL.Query().Get("fresh") == "1" {
		var err error
		if snap, err = s.store.RefreshCtx(r.Context()); err != nil {
			writeError(w, http.StatusInternalServerError, "snapshot: %v", err)
			return
		}
	}
	format := "json"
	if r.URL.Query().Get("format") == "text" {
		format = "text"
	}
	gz := acceptsGzip(r)
	key := docKey{gen: snap.Seq, id: id, format: format, gzip: gz}
	etag := s.etagFor(key)
	w.Header().Set("Vary", "Accept-Encoding")
	if etagMatch(r.Header.Get("If-None-Match"), etag) {
		// Clients only ever hold ETags from successful responses of this
		// process life (the boot nonce sees to that), so a match proves
		// the body they have is current: no render, no body.
		s.readm.cacheHits.Inc()
		w.Header().Set("ETag", etag)
		w.Header().Set("X-Snapshot-Seq", fmt.Sprint(snap.Seq))
		w.Header().Set("X-Snapshot-Records", fmt.Sprint(snap.Records))
		w.WriteHeader(http.StatusNotModified)
		return
	}
	e, err := s.cachedDoc(r.Context(), snap, id, format, gz)
	if err != nil {
		status := http.StatusUnprocessableEntity
		if strings.Contains(err.Error(), "unknown experiment id") {
			status = http.StatusNotFound
		}
		writeError(w, status, "%v", err)
		return
	}
	w.Header().Set("ETag", etag)
	w.Header().Set("X-Snapshot-Seq", fmt.Sprint(snap.Seq))
	w.Header().Set("X-Snapshot-Records", fmt.Sprint(snap.Records))
	if gz {
		w.Header().Set("Content-Encoding", "gzip")
	}
	if format == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	} else {
		w.Header().Set("Content-Type", "application/json")
	}
	w.Header().Set("Content-Length", strconv.Itoa(len(e.body)))
	w.Write(e.body)
}

// cachedDoc returns the cached encoding of (snap, id, format, gz),
// rendering — and for gz, compressing the (likewise cached) plain
// variant — on miss. Returned entries are byte-identical to a fresh
// render by construction: keys embed the snapshot Seq, which changes
// whenever the folded state can. Render errors are returned, never
// cached.
func (s *Server) cachedDoc(ctx context.Context, snap *Snapshot, id, format string, gz bool) (*docEntry, error) {
	key := docKey{gen: snap.Seq, id: id, format: format, gzip: gz}
	sp := trace.FromContext(ctx).Child("cache.lookup")
	sp.SetAttrs(trace.Str("id", id), trace.Int("seq", int64(snap.Seq)))
	if e := s.cache.get(key); e != nil {
		sp.SetAttrs(trace.Int("hit", 1))
		sp.End()
		return e, nil
	}
	sp.SetAttrs(trace.Int("hit", 0))
	sp.End()
	e := &docEntry{etag: s.etagFor(key)}
	if gz {
		plain, err := s.cachedDoc(ctx, snap, id, format, false)
		if err != nil {
			return nil, err
		}
		e.body = gzipBytes(plain.body)
	} else {
		rsp := trace.FromContext(ctx).Child("render")
		doc, err := render.Render(id, render.Context{An: snap.An, Gen: s.gen})
		if err != nil {
			rsp.Fail(err)
			rsp.End()
			return nil, err
		}
		if format == "text" {
			e.body = []byte(doc.Text())
		} else {
			b, err := render.EncodeJSON(doc)
			if err != nil {
				rsp.Fail(err)
				rsp.End()
				return nil, err
			}
			e.body = b
			e.doc = doc
		}
		rsp.End()
	}
	s.cache.put(key, e)
	return e, nil
}

// handleIngest accepts a batch of CSV log lines (the 26-field Blue Coat
// format of internal/logfmt), transparently gunzipping when the body is
// gzip (Content-Encoding header or magic bytes). The body is sliced into
// line-aligned blocks and parsed on a worker pool (see Store.IngestBlocks),
// so a large upload decodes on every core instead of the request
// goroutine. Malformed lines are counted and skipped, like the file
// reader. ?refresh=1 rebuilds the snapshot after the batch so it is
// immediately queryable.
//
// Failure semantics: with WithMaxBody, an oversized body answers 413
// (the cap applies to wire bytes, before gunzip). A store shedding
// load answers 429 with Retry-After — the daemon never buffers
// unboundedly or hangs the handler on a stalled shard. The response's
// "added" field counts the records folded before the shed, but that
// set is an UNSPECIFIED SUBSET of the batch, not a prefix: records
// hash to shards and parse on independent workers, so drops can land
// at any input position. A shed batch is therefore indivisible from
// the client's view — resending the whole upload re-folds the
// accepted subset (engines fold once per record, nothing dedups),
// dropping it keeps the subset counted. Producers that need exact
// counts should disable shedding (AddTimeout <= 0 / -shed-after -1s)
// and let a full queue block them, or reconcile against
// censord_ingest_records_total after a 429. A closed (draining)
// store answers 503.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	rbody := r.Body
	if s.maxBody > 0 {
		rbody = http.MaxBytesReader(w, r.Body, s.maxBody)
	}
	br := bufio.NewReader(rbody)
	body := io.Reader(br)
	magic, _ := br.Peek(2)
	if r.Header.Get("Content-Encoding") == "gzip" ||
		(len(magic) == 2 && magic[0] == 0x1f && magic[1] == 0x8b) {
		zr, err := gzip.NewReader(body)
		if err != nil {
			writeError(w, http.StatusBadRequest, "gzip: %v", err)
			return
		}
		defer zr.Close()
		body = zr
	}
	added, malformed, err := s.store.IngestBlocksCtx(r.Context(), logfmt.NewBlockReader(body), 0)
	if err != nil {
		var tooBig *http.MaxBytesError
		switch {
		case errors.As(err, &tooBig):
			writeError(w, http.StatusRequestEntityTooLarge,
				"body exceeds the %d byte ingest cap (%d records accepted); split the upload", tooBig.Limit, added)
		case errors.Is(err, ErrOverloaded):
			w.Header().Set("Retry-After", "1")
			writeJSON(w, http.StatusTooManyRequests, map[string]any{
				"error": err.Error(), "added": added, "malformed": malformed,
			})
		case errors.Is(err, ErrClosed):
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusServiceUnavailable, "%v", err)
		default:
			writeError(w, http.StatusBadRequest, "ingest after %d records: %v", added, err)
		}
		return
	}
	resp := map[string]any{"added": added, "malformed": malformed}
	if r.URL.Query().Get("refresh") == "1" {
		snap, err := s.store.RefreshCtx(r.Context())
		if err != nil {
			writeError(w, http.StatusInternalServerError, "snapshot: %v", err)
			return
		}
		resp["snapshot_seq"] = snap.Seq
		resp["snapshot_records"] = snap.Records
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	if s.gateServing(w) {
		return
	}
	snap, err := s.store.RefreshCtx(r.Context())
	if err != nil {
		writeError(w, http.StatusInternalServerError, "snapshot: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"snapshot_seq":     snap.Seq,
		"snapshot_records": snap.Records,
		"built":            snap.Built.UTC().Format(time.RFC3339),
	})
}

// handleCheckpoint cuts a checkpoint on demand (501 when the embedder
// did not wire one — the daemon needs a -checkpoint dir). Gated like
// /v1/snapshot: a checkpoint cut mid-restore would persist a partial
// fold as if it were a complete generation.
func (s *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	if s.ckptFn == nil {
		writeError(w, http.StatusNotImplemented, "checkpointing not configured (start with -checkpoint)")
		return
	}
	if s.gateServing(w) {
		return
	}
	info, err := s.ckptFn(r.Context())
	if err != nil {
		if errors.Is(err, ErrClosed) {
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusServiceUnavailable, "%v", err)
			return
		}
		writeError(w, http.StatusInternalServerError, "checkpoint: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

// traceSummary is one row of the /debug/traces list: enough to scan for
// the slow or errored trace, small enough that a big ring lists fast.
// The span tree itself is one more GET away.
type traceSummary struct {
	ID         string  `json:"id"`
	Root       string  `json:"root"`
	Start      string  `json:"start"`
	DurationMS float64 `json:"duration_ms"`
	Slow       bool    `json:"slow"`
	Error      bool    `json:"error"`
	Spans      int     `json:"spans"`
}

// handleTraces lists the flight recorder's retained traces, newest
// first (?limit caps the list, default 50; ?min_ms filters short
// traces). Deliberately NOT gated by gateServing: the recorder exists
// precisely to diagnose a daemon that is draining, restoring or
// shedding, so it must stay readable in every state — the 503s those
// states produce are themselves traced (status >= 500 marks the trace
// errored, which pins it in the ring).
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	tr := s.store.Tracer()
	if tr == nil {
		writeError(w, http.StatusNotFound, "tracing disabled (store has no tracer)")
		return
	}
	q := r.URL.Query()
	limit := 50
	if v := q.Get("limit"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			limit = n
		}
	}
	var minMS float64
	if v := q.Get("min_ms"); v != "" {
		minMS, _ = strconv.ParseFloat(v, 64)
	}
	traces := tr.Recorder().Snapshot(limit, minMS)
	out := make([]traceSummary, 0, len(traces))
	for _, t := range traces {
		out = append(out, traceSummary{
			ID:         t.ID,
			Root:       t.Root,
			Start:      time.Unix(0, t.StartUnixNano).UTC().Format(time.RFC3339Nano),
			DurationMS: t.DurationMS,
			Slow:       t.Slow,
			Error:      t.Error,
			Spans:      len(t.Spans),
		})
	}
	st := tr.Recorder().Stats()
	st.SlowThresholdMS = float64(tr.Slow()) / float64(time.Millisecond)
	writeJSON(w, http.StatusOK, map[string]any{"stats": st, "traces": out})
}

// handleTrace serves one retained trace as a nested span tree.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	tr := s.store.Tracer()
	if tr == nil {
		writeError(w, http.StatusNotFound, "tracing disabled (store has no tracer)")
		return
	}
	id := r.PathValue("id")
	t := tr.Recorder().Find(id)
	if t == nil {
		writeError(w, http.StatusNotFound,
			"trace %q not retained (evicted, sampled out, or never recorded)", id)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"id":            t.ID,
		"root":          t.Root,
		"start":         time.Unix(0, t.StartUnixNano).UTC().Format(time.RFC3339Nano),
		"duration_ms":   t.DurationMS,
		"slow":          t.Slow,
		"error":         t.Error,
		"dropped_spans": t.DroppedSpans,
		"tree":          t.TreeView(),
	})
}
