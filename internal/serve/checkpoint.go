package serve

import (
	"compress/gzip"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"syriafilter/internal/statecodec"
	"syriafilter/internal/timewin"
)

// Checkpoint layout. A checkpoint directory holds complete generations
// plus one manifest naming the current one:
//
//	dir/MANIFEST.json        -> {"generation":"gen-00000003", ...}
//	dir/gen-00000003/shard-0000.ckpt.gz
//	dir/gen-00000003/shard-0001.ckpt.gz
//	...
//
// Crash safety is rename-based, twice over: a generation is written
// into a ".tmp" directory and renamed whole once every shard file is
// synced, and the manifest is then swapped by its own temp-file +
// rename. Files and directories are fsynced at each step (shard files,
// the generation directory, the parent after each rename), so the
// guarantee covers power loss, not just process death. A crash at any
// point leaves the previous manifest naming the previous complete
// generation — a reader never sees a half-written checkpoint. Older
// generations are pruned only after the manifest swap is durable.
//
// Each shard file is a gzip stream of:
//
//	"SFCK" | version byte
//	uvarint shard index | uvarint shard count | uvarint observed records
//	partition state (timewin.Partition.MarshalState)
const (
	shardStateMagic   = "SFCK"
	shardStateVersion = 1
	manifestName      = "MANIFEST.json"
	manifestFormat    = 1
)

// CheckpointInfo describes one written (or restored) checkpoint.
type CheckpointInfo struct {
	Generation  string `json:"generation"`
	CreatedUnix int64  `json:"created_unix"`
	Shards      int    `json:"shards"`
	Records     uint64 `json:"records"`
	Bytes       int64  `json:"bytes"`
}

// manifest is the on-disk MANIFEST.json.
type manifest struct {
	Format        int    `json:"format"`
	Seq           uint64 `json:"seq"`
	BucketSeconds int64  `json:"bucket_seconds"`
	CheckpointInfo
}

// ErrNoCheckpoint reports a Restore against a directory with no
// manifest: nothing was ever checkpointed there (distinct from a
// corrupted checkpoint, which is a real error).
var ErrNoCheckpoint = errors.New("serve: no checkpoint manifest")

// Checkpoint writes a consistent point-in-time checkpoint of every
// shard into dir and returns what was written. Each shard's state is
// encoded and written by that shard's own goroutine — serialized with
// its ingest stream, so the file is a clean prefix of what the shard
// acked — with all shards working in parallel. Safe to call while
// ingest and queries keep running; only the shard currently encoding
// pauses its ingest.
func (st *Store) Checkpoint(dir string) (CheckpointInfo, error) {
	st.mu.RLock()
	defer st.mu.RUnlock()
	if st.closed {
		return CheckpointInfo{}, ErrClosed
	}
	return st.checkpoint(dir)
}

// checkpoint is Checkpoint without the closed gate, so the final
// checkpoint of CloseAndCheckpoint can run after closed flips.
func (st *Store) checkpoint(dir string) (CheckpointInfo, error) {
	st.ckptMu.Lock()
	defer st.ckptMu.Unlock()
	t0 := time.Now()

	seq := st.ckptSeq.Add(1)
	gen := fmt.Sprintf("gen-%08d", seq)
	tmpDir := filepath.Join(dir, gen+".tmp")
	if err := os.MkdirAll(tmpDir, 0o755); err != nil {
		return CheckpointInfo{}, err
	}
	fail := func(err error) (CheckpointInfo, error) {
		os.RemoveAll(tmpDir)
		return CheckpointInfo{}, err
	}

	// One op per shard, all enqueued before any is awaited, so the
	// shards encode and write their files concurrently.
	type result struct {
		err     error
		bytes   int64
		records uint64
	}
	results := make([]result, len(st.shards))
	dones := make([]chan struct{}, len(st.shards))
	for i, sh := range st.shards {
		i := i
		path := filepath.Join(tmpDir, shardFileName(i))
		dones[i] = make(chan struct{})
		sh.msgs <- shardMsg{done: dones[i], op: func(p *timewin.Partition, observed *uint64) {
			results[i].records = *observed
			results[i].bytes, results[i].err = writeShardFile(path, i, len(st.shards), *observed, p)
		}}
	}
	info := CheckpointInfo{
		Generation:  gen,
		CreatedUnix: time.Now().Unix(),
		Shards:      len(st.shards),
	}
	for i := range dones {
		<-dones[i]
		if err := results[i].err; err != nil {
			// Await the rest before tearing the directory down.
			for j := i + 1; j < len(dones); j++ {
				<-dones[j]
			}
			return fail(fmt.Errorf("serve: checkpoint shard %d: %w", i, err))
		}
		info.Bytes += results[i].bytes
		info.Records += results[i].records
	}

	finalDir := filepath.Join(dir, gen)
	// The shard files are fsynced individually; sync their directory
	// entries, rename the generation whole, and sync the parent so the
	// rename itself is durable — only then may the manifest name it.
	if err := syncDir(tmpDir); err != nil {
		return fail(err)
	}
	if err := os.Rename(tmpDir, finalDir); err != nil {
		return fail(err)
	}
	if err := syncDir(dir); err != nil {
		return CheckpointInfo{}, err
	}
	m := manifest{
		Format:         manifestFormat,
		Seq:            seq,
		BucketSeconds:  st.bucketSecs,
		CheckpointInfo: info,
	}
	if err := writeManifest(dir, &m); err != nil {
		return CheckpointInfo{}, err
	}
	st.lastCkpt.Store(&info)
	st.obsm.checkpoints.Inc()
	st.obsm.checkpointWrite.Observe(time.Since(t0).Seconds())
	pruneGenerations(dir, gen)
	return info, nil
}

func shardFileName(i int) string { return fmt.Sprintf("shard-%04d.ckpt.gz", i) }

// writeShardFile encodes one shard's partition into a gzip-framed file,
// syncing before close so the later directory rename publishes durable
// bytes. Returns the compressed size.
func writeShardFile(path string, idx, count int, observed uint64, p *timewin.Partition) (int64, error) {
	f, err := os.Create(path)
	if err != nil {
		return 0, err
	}
	zw := gzip.NewWriter(f)
	hw := statecodec.NewWriter()
	hw.Raw([]byte(shardStateMagic))
	hw.Byte(shardStateVersion)
	hw.Uvarint(uint64(idx))
	hw.Uvarint(uint64(count))
	hw.Uvarint(observed)
	if _, err = zw.Write(hw.Bytes()); err == nil {
		err = p.WriteState(zw)
	}
	if cerr := zw.Close(); err == nil {
		err = cerr
	}
	if serr := f.Sync(); err == nil {
		err = serr
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(path)
		return 0, err
	}
	fi, err := os.Stat(path)
	if err != nil {
		return 0, err
	}
	return fi.Size(), nil
}

func writeManifest(dir string, m *manifest) error {
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	tmp := filepath.Join(dir, manifestName+".tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	_, err = f.Write(append(b, '\n'))
	if serr := f.Sync(); err == nil {
		err = serr
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, manifestName)); err != nil {
		return err
	}
	// Make the swap durable before old generations are pruned: a power
	// loss must never leave a manifest pointing at a pruned generation.
	return syncDir(dir)
}

// syncDir fsyncs a directory so renames and entries inside it survive
// power loss, not just process death.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// pruneGenerations removes every gen-* entry except keep (best effort:
// a leftover directory costs disk, not correctness).
func pruneGenerations(dir, keep string) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "gen-") || name == keep {
			continue
		}
		os.RemoveAll(filepath.Join(dir, name))
	}
}

// Restore folds the checkpoint named by dir's manifest into the store.
// It is two-phase: every shard file is read and fully decoded into a
// staging partition first — any corruption, truncation or config
// mismatch fails here, leaving the store exactly as it was — and only
// then are the staged partitions absorbed into the live shards (on the
// shard goroutines, like any other op).
//
// The checkpoint's shard count does not need to match the store's:
// files are distributed round-robin and absorbed, since queries always
// merge across all shards. The bucket width must match (bucket grids
// are not convertible); the stored module subset must cover the
// store's (see core.Engine.UnmarshalState).
func (st *Store) Restore(dir string) (CheckpointInfo, error) {
	st.restoring.Store(true)
	defer st.restoring.Store(false)
	t0 := time.Now()
	m, err := readManifest(dir)
	if err != nil {
		return CheckpointInfo{}, err
	}
	if m.BucketSeconds != st.bucketSecs {
		return CheckpointInfo{}, fmt.Errorf("serve: checkpoint bucket width %ds does not match configured %ds", m.BucketSeconds, st.bucketSecs)
	}
	if m.Shards <= 0 {
		return CheckpointInfo{}, fmt.Errorf("serve: manifest names %d shard files", m.Shards)
	}

	genDir := filepath.Join(dir, m.Generation)
	staged := make([]*timewin.Partition, m.Shards)
	counts := make([]uint64, m.Shards)
	errs := make([]error, m.Shards)
	var wg sync.WaitGroup
	for i := 0; i < m.Shards; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			staged[i], counts[i], errs[i] = st.readShardFile(filepath.Join(genDir, shardFileName(i)), i, m.Shards)
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return CheckpointInfo{}, fmt.Errorf("serve: restore shard file %d: %w", i, err)
		}
	}

	// Fold phase: nothing below can fail (Absorb only errors on grid
	// mismatch, checked above), so a successful decode is a successful
	// restore.
	var rerr error
	for j := range staged {
		j := j
		sh := j % len(st.shards)
		err := st.shardOp(sh, func(p *timewin.Partition, observed *uint64) {
			if err := p.Absorb(staged[j]); err != nil {
				rerr = err
				return
			}
			*observed += counts[j]
		})
		if err != nil {
			return CheckpointInfo{}, err
		}
		if rerr != nil {
			return CheckpointInfo{}, rerr
		}
		st.ingested.Add(counts[j])
	}
	// Future checkpoints continue the restored generation sequence, and
	// checkpoint_age_s reports the restored checkpoint until a new one
	// is cut.
	st.ckptSeq.Store(m.Seq)
	st.lastCkpt.Store(&m.CheckpointInfo)
	st.obsm.restores.Inc()
	st.obsm.restoreSeconds.Observe(time.Since(t0).Seconds())
	return m.CheckpointInfo, nil
}

// shardOp runs op on one shard's goroutine.
func (st *Store) shardOp(i int, op func(p *timewin.Partition, observed *uint64)) error {
	st.mu.RLock()
	defer st.mu.RUnlock()
	if st.closed {
		return ErrClosed
	}
	done := make(chan struct{})
	st.shards[i].msgs <- shardMsg{op: op, done: done}
	<-done
	return nil
}

func readManifest(dir string) (*manifest, error) {
	b, err := os.ReadFile(filepath.Join(dir, manifestName))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, fmt.Errorf("%w in %s", ErrNoCheckpoint, dir)
	}
	if err != nil {
		return nil, err
	}
	var m manifest
	if err := json.Unmarshal(b, &m); err != nil {
		return nil, fmt.Errorf("serve: parsing %s: %w", manifestName, err)
	}
	if m.Format != manifestFormat {
		return nil, fmt.Errorf("serve: checkpoint manifest format %d unsupported (max %d)", m.Format, manifestFormat)
	}
	return &m, nil
}

// readShardFile decodes one checkpoint shard file into a fresh staging
// partition built from the store's config.
func (st *Store) readShardFile(path string, idx, count int) (*timewin.Partition, uint64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	zr, err := gzip.NewReader(f)
	if err != nil {
		return nil, 0, err
	}
	defer zr.Close()
	b, err := io.ReadAll(zr)
	if err != nil {
		return nil, 0, err
	}
	r := statecodec.NewReader(b)
	if magic := r.Raw(len(shardStateMagic)); r.Err() != nil || string(magic) != shardStateMagic {
		return nil, 0, fmt.Errorf("not a shard checkpoint (bad magic)")
	}
	if v := r.Byte(); r.Err() == nil && v != shardStateVersion {
		return nil, 0, fmt.Errorf("shard checkpoint version %d unsupported (max %d)", v, shardStateVersion)
	}
	if got := r.Uvarint(); r.Err() == nil && got != uint64(idx) {
		return nil, 0, fmt.Errorf("file claims shard %d, expected %d", got, idx)
	}
	if got := r.Uvarint(); r.Err() == nil && got != uint64(count) {
		return nil, 0, fmt.Errorf("file claims %d shards, manifest says %d", got, count)
	}
	observed := r.Uvarint()
	if err := r.Err(); err != nil {
		return nil, 0, err
	}
	p, err := timewin.New(timewin.Config{
		Options: st.cfg.Options,
		Metrics: st.cfg.Metrics,
		Bucket:  st.cfg.Bucket,
		Retain:  st.cfg.Retain,
	})
	if err != nil {
		return nil, 0, err
	}
	if err := p.UnmarshalState(b[len(b)-r.Remaining():]); err != nil {
		return nil, 0, err
	}
	return p, observed, nil
}
