package serve

import (
	"compress/gzip"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"syriafilter/internal/obs/trace"
	"syriafilter/internal/statecodec"
	"syriafilter/internal/timewin"
)

// Checkpoint layout. A checkpoint directory holds complete generations
// plus one manifest naming the current one:
//
//	dir/MANIFEST.json        -> {"generation":"gen-00000003", ...}
//	dir/gen-00000003/shard-0000.ckpt.gz
//	dir/gen-00000003/shard-0001.ckpt.gz
//	...
//
// Crash safety is rename-based, twice over: a generation is written
// into a ".tmp" directory and renamed whole once every shard file is
// synced, and the manifest is then swapped by its own temp-file +
// rename. Files and directories are fsynced at each step (shard files,
// the generation directory, the parent after each rename), so the
// guarantee covers power loss, not just process death. A crash at any
// point leaves the previous manifest naming the previous complete
// generation — a reader never sees a half-written checkpoint. Older
// generations are pruned only after the manifest swap is durable.
//
// Each shard file is a gzip stream of:
//
//	"SFCK" | version byte
//	uvarint shard index | uvarint shard count | uvarint observed records
//	partition state (timewin.Partition.MarshalState)
const (
	shardStateMagic   = "SFCK"
	shardStateVersion = 1
	manifestName      = "MANIFEST.json"
	manifestFormat    = 1
)

// CheckpointInfo describes one written (or restored) checkpoint.
type CheckpointInfo struct {
	Generation  string `json:"generation"`
	CreatedUnix int64  `json:"created_unix"`
	Shards      int    `json:"shards"`
	Records     uint64 `json:"records"`
	Bytes       int64  `json:"bytes"`
}

// manifest is the on-disk MANIFEST.json.
type manifest struct {
	Format        int    `json:"format"`
	Seq           uint64 `json:"seq"`
	BucketSeconds int64  `json:"bucket_seconds"`
	CheckpointInfo
}

// ErrNoCheckpoint reports a Restore against a directory with no
// manifest: nothing was ever checkpointed there (distinct from a
// corrupted checkpoint, which is a real error).
var ErrNoCheckpoint = errors.New("serve: no checkpoint manifest")

// Checkpoint writes a consistent point-in-time checkpoint of every
// shard into dir and returns what was written. Each shard's state is
// encoded and written by that shard's own goroutine — serialized with
// its ingest stream, so the file is a clean prefix of what the shard
// acked — with all shards working in parallel. Safe to call while
// ingest and queries keep running; only the shard currently encoding
// pauses its ingest.
func (st *Store) Checkpoint(dir string) (CheckpointInfo, error) {
	return st.CheckpointCtx(context.Background(), dir)
}

// CheckpointCtx is Checkpoint inside a traced context: the write (and
// each shard's encode, via "ckpt.shard" children) joins the span ctx
// carries, or becomes its own background "checkpoint.write" trace when
// ctx has none (the periodic -checkpoint-every loop).
func (st *Store) CheckpointCtx(ctx context.Context, dir string) (CheckpointInfo, error) {
	st.mu.RLock()
	defer st.mu.RUnlock()
	if st.closed {
		return CheckpointInfo{}, ErrClosed
	}
	return st.checkpointSpan(dir, trace.FromContext(ctx))
}

// checkpoint is Checkpoint without the closed gate, so the final
// checkpoint of CloseAndCheckpoint can run after closed flips.
func (st *Store) checkpoint(dir string) (CheckpointInfo, error) {
	return st.checkpointSpan(dir, nil)
}

func (st *Store) checkpointSpan(dir string, parent *trace.Span) (info CheckpointInfo, err error) {
	sp := parent.Child("checkpoint.write")
	if parent == nil {
		sp = st.tracer.Root("checkpoint.write")
	}
	defer func() {
		sp.SetAttrs(trace.Str("generation", info.Generation), trace.Int("bytes", info.Bytes))
		sp.Fail(err)
		sp.End()
	}()
	st.ckptMu.Lock()
	defer st.ckptMu.Unlock()
	t0 := time.Now()

	// Continue the directory's sequence, not just this process's: a
	// store checkpointing into a dir it never restored from (or whose
	// restore failed and cold-booted) must number its generation above
	// everything already there — renaming onto a populated directory
	// fails, and newest-first fallback order must mean newest data.
	if _, maxSeq := scanGenerations(dir); maxSeq > st.ckptSeq.Load() {
		st.ckptSeq.Store(maxSeq)
	}
	seq := st.ckptSeq.Add(1)
	gen := fmt.Sprintf("gen-%08d", seq)
	tmpDir := filepath.Join(dir, gen+".tmp")
	if err := os.MkdirAll(tmpDir, 0o755); err != nil {
		return CheckpointInfo{}, err
	}
	fail := func(err error) (CheckpointInfo, error) {
		os.RemoveAll(tmpDir)
		return CheckpointInfo{}, err
	}

	// One op per shard, all enqueued before any is awaited, so the
	// shards encode and write their files concurrently.
	type result struct {
		err     error
		bytes   int64
		records uint64
	}
	results := make([]result, len(st.shards))
	dones := make([]chan struct{}, len(st.shards))
	for i, sh := range st.shards {
		i := i
		path := filepath.Join(tmpDir, shardFileName(i))
		dones[i] = make(chan struct{})
		ssp := sp.Child("ckpt.shard")
		ssp.SetAttrs(trace.Int("shard", int64(i)))
		sh.msgs <- shardMsg{done: dones[i], span: ssp, op: func(p *timewin.Partition, observed *uint64) {
			results[i].records = *observed
			results[i].bytes, results[i].err = writeShardFile(path, i, len(st.shards), *observed, p)
			ssp.Fail(results[i].err)
		}}
	}
	info = CheckpointInfo{
		Generation:  gen,
		CreatedUnix: time.Now().Unix(),
		Shards:      len(st.shards),
	}
	for i := range dones {
		<-dones[i]
		if err := results[i].err; err != nil {
			// Await the rest before tearing the directory down.
			for j := i + 1; j < len(dones); j++ {
				<-dones[j]
			}
			return fail(fmt.Errorf("serve: checkpoint shard %d: %w", i, err))
		}
		info.Bytes += results[i].bytes
		info.Records += results[i].records
	}

	finalDir := filepath.Join(dir, gen)
	// The shard files are fsynced individually; sync their directory
	// entries, rename the generation whole, and sync the parent so the
	// rename itself is durable — only then may the manifest name it.
	if err := syncDir(tmpDir); err != nil {
		return fail(err)
	}
	if err := os.Rename(tmpDir, finalDir); err != nil {
		return fail(err)
	}
	if err := syncDir(dir); err != nil {
		return CheckpointInfo{}, err
	}
	m := manifest{
		Format:         manifestFormat,
		Seq:            seq,
		BucketSeconds:  st.bucketSecs,
		CheckpointInfo: info,
	}
	if err := writeManifest(dir, &m); err != nil {
		return CheckpointInfo{}, err
	}
	st.lastCkpt.Store(&info)
	st.obsm.checkpoints.Inc()
	st.obsm.checkpointWrite.Observe(time.Since(t0).Seconds())
	pruneGenerations(dir, st.keepGens)
	return info, nil
}

func shardFileName(i int) string { return fmt.Sprintf("shard-%04d.ckpt.gz", i) }

// writeShardFile encodes one shard's partition into a gzip-framed file,
// syncing before close so the later directory rename publishes durable
// bytes. Returns the compressed size.
func writeShardFile(path string, idx, count int, observed uint64, p *timewin.Partition) (int64, error) {
	f, err := os.Create(path)
	if err != nil {
		return 0, err
	}
	zw := gzip.NewWriter(f)
	hw := statecodec.NewWriter()
	hw.Raw([]byte(shardStateMagic))
	hw.Byte(shardStateVersion)
	hw.Uvarint(uint64(idx))
	hw.Uvarint(uint64(count))
	hw.Uvarint(observed)
	if _, err = zw.Write(hw.Bytes()); err == nil {
		err = p.WriteState(zw)
	}
	if cerr := zw.Close(); err == nil {
		err = cerr
	}
	if serr := f.Sync(); err == nil {
		err = serr
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(path)
		return 0, err
	}
	fi, err := os.Stat(path)
	if err != nil {
		return 0, err
	}
	return fi.Size(), nil
}

func writeManifest(dir string, m *manifest) error {
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	tmp := filepath.Join(dir, manifestName+".tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	_, err = f.Write(append(b, '\n'))
	if serr := f.Sync(); err == nil {
		err = serr
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, manifestName)); err != nil {
		return err
	}
	// Make the swap durable before old generations are pruned: a power
	// loss must never leave a manifest pointing at a pruned generation.
	return syncDir(dir)
}

// syncDir fsyncs a directory so renames and entries inside it survive
// power loss, not just process death.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// pruneGenerations removes all but the keep newest gen-* directories
// plus any *.tmp debris from crashed checkpoint writes (best effort: a
// leftover directory costs disk, not correctness). Keeping more than
// one generation is what gives Restore somewhere to fall back to when
// the newest is damaged.
func pruneGenerations(dir string, keep int) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	gens, _ := scanGenerations(dir)
	drop := map[string]bool{}
	for i, g := range gens {
		if i >= keep {
			drop[g.name] = true
		}
	}
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "gen-") {
			continue
		}
		if strings.HasSuffix(name, ".tmp") || drop[name] {
			os.RemoveAll(filepath.Join(dir, name))
		}
	}
}

// genEntry is one generation directory found in a checkpoint dir.
type genEntry struct {
	name string
	seq  uint64
}

// scanGenerations lists the complete (non-.tmp) generation directories
// in dir, newest first, plus the highest sequence number seen.
func scanGenerations(dir string) ([]genEntry, uint64) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, 0
	}
	var gens []genEntry
	var maxSeq uint64
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() || !strings.HasPrefix(name, "gen-") || strings.HasSuffix(name, ".tmp") {
			continue
		}
		seq, err := strconv.ParseUint(name[len("gen-"):], 10, 64)
		if err != nil {
			continue
		}
		gens = append(gens, genEntry{name: name, seq: seq})
		if seq > maxSeq {
			maxSeq = seq
		}
	}
	sort.Slice(gens, func(i, j int) bool { return gens[i].seq > gens[j].seq })
	return gens, maxSeq
}

// Restore folds the newest restorable checkpoint generation in dir
// into the store. It walks the generation directories newest to
// oldest: each candidate is read and fully decoded into staging
// partitions first — any corruption, truncation or config mismatch
// fails that generation, leaving the store exactly as it was — and
// only a generation that decodes completely is absorbed into the live
// shards (on the shard goroutines, like any other op). A skipped
// generation is logged and counted in
// censord_checkpoint_restore_fallbacks_total, so a daemon that came
// back up one generation behind is visible, not silent. The manifest
// is advisory: it supplies metadata for the generation it names, but a
// truncated or garbled MANIFEST.json does not cost any data — the walk
// covers every complete generation on disk.
//
// ErrNoCheckpoint means dir holds no checkpoint at all (no manifest,
// no generation directories) — a normal cold boot. Generations that
// exist but all fail to decode are a real error carrying the newest
// generation's failure.
//
// A checkpoint's shard count does not need to match the store's: files
// are distributed round-robin and absorbed, since queries always merge
// across all shards. The bucket width must match (bucket grids are not
// convertible; decode fails otherwise); the stored module subset must
// cover the store's (see core.Engine.UnmarshalState).
func (st *Store) Restore(dir string) (CheckpointInfo, error) {
	st.restoring.Store(true)
	defer st.restoring.Store(false)
	// Restore happens at boot, outside any request, so it is its own
	// background trace; each generation attempt is a child span whose
	// failure records why the walk fell back.
	sp := st.tracer.Root("checkpoint.restore")
	var spErr error
	defer func() {
		sp.Fail(spErr)
		sp.End()
	}()
	t0 := time.Now()

	m, merr := readManifest(dir)
	gens, maxSeq := scanGenerations(dir)
	// Future checkpoints must continue the on-disk sequence even when
	// the restore below fails and the caller cold-boots: a new
	// generation numbered below an existing directory would collide on
	// rename and corrupt the newest-first fallback order.
	if m != nil && m.Seq > maxSeq {
		maxSeq = m.Seq
	}
	if maxSeq > st.ckptSeq.Load() {
		st.ckptSeq.Store(maxSeq)
	}
	if len(gens) == 0 {
		if merr != nil {
			spErr = merr
			return CheckpointInfo{}, merr // missing manifest → ErrNoCheckpoint
		}
		spErr = fmt.Errorf("serve: manifest names %s but no generation directory exists", m.Generation)
		return CheckpointInfo{}, spErr
	}
	if merr != nil {
		st.logger.Warn("checkpoint manifest unusable, walking generations newest to oldest",
			"dir", dir, "err", merr)
	} else if m.Seq > gens[0].seq {
		// The manifest promises a generation newer than anything on
		// disk: whatever the walk recovers is older than the last
		// durable state, which is a fallback even though no decode
		// failed. (The opposite skew — a generation renamed into place
		// before the crash wiped the manifest update — loses nothing.)
		st.obsm.restoreFallbacks.Inc()
		st.logger.Warn("manifest generation missing on disk, falling back to newest present",
			"manifest", m.Generation, "newest", gens[0].name)
	}

	var firstErr error
	for _, g := range gens {
		gsp := sp.Child("restore.generation")
		gsp.SetAttrs(trace.Str("generation", g.name))
		info, folded, err := st.restoreGeneration(dir, g, m)
		gsp.Fail(err)
		gsp.End()
		if err != nil {
			if folded {
				// The fold phase started, so the store may hold a partial
				// generation: absorbing an older one on top would corrupt
				// it. (Unreachable in practice — decode validates
				// everything the fold checks — but never walk past it.)
				spErr = fmt.Errorf("serve: restore %s failed mid-fold: %w", g.name, err)
				return CheckpointInfo{}, spErr
			}
			st.obsm.restoreFallbacks.Inc()
			st.logger.Warn("checkpoint generation unusable, falling back to previous",
				"generation", g.name, "err", err)
			if firstErr == nil {
				firstErr = fmt.Errorf("generation %s: %w", g.name, err)
			}
			continue
		}
		st.lastCkpt.Store(&info)
		st.obsm.restores.Inc()
		st.obsm.restoreSeconds.Observe(time.Since(t0).Seconds())
		sp.SetAttrs(trace.Int("records", int64(info.Records)))
		return info, nil
	}
	spErr = fmt.Errorf("serve: no checkpoint generation in %s decodes: %w", dir, firstErr)
	return CheckpointInfo{}, spErr
}

// restoreGeneration decodes one generation directory completely and,
// only on full success, folds it into the live shards. The shard count
// is taken from the directory itself (every complete generation is
// self-describing), so fallback generations restore even when the
// manifest that described them is gone. folded reports whether the
// fold phase began — an error with folded=true means the store may
// hold partial state and the caller must not try another generation.
func (st *Store) restoreGeneration(dir string, g genEntry, m *manifest) (info CheckpointInfo, folded bool, err error) {
	genDir := filepath.Join(dir, g.name)
	entries, err := os.ReadDir(genDir)
	if err != nil {
		return CheckpointInfo{}, false, err
	}
	shards := 0
	var bytes int64
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "shard-") && strings.HasSuffix(e.Name(), ".ckpt.gz") {
			shards++
			if fi, err := e.Info(); err == nil {
				bytes += fi.Size()
			}
		}
	}
	if shards == 0 {
		return CheckpointInfo{}, false, fmt.Errorf("no shard files in %s", g.name)
	}

	staged := make([]*timewin.Partition, shards)
	counts := make([]uint64, shards)
	errs := make([]error, shards)
	var wg sync.WaitGroup
	for i := 0; i < shards; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			staged[i], counts[i], errs[i] = st.readShardFile(filepath.Join(genDir, shardFileName(i)), i, shards)
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return CheckpointInfo{}, false, fmt.Errorf("shard file %d: %w", i, err)
		}
	}

	// Fold phase: nothing below can fail (Absorb only errors on grid
	// mismatch, which decode already validated), so a successful decode
	// is a successful restore.
	var rerr error
	var records uint64
	for j := range staged {
		j := j
		sh := j % len(st.shards)
		err := st.shardOp(sh, func(p *timewin.Partition, observed *uint64) {
			if err := p.Absorb(staged[j]); err != nil {
				rerr = err
				return
			}
			*observed += counts[j]
		})
		if err != nil {
			return CheckpointInfo{}, j > 0, err
		}
		if rerr != nil {
			return CheckpointInfo{}, true, rerr
		}
		st.ingested.Add(counts[j])
		records += counts[j]
	}

	if m != nil && m.Generation == g.name {
		return m.CheckpointInfo, true, nil
	}
	// A fallback generation has no manifest metadata; reconstruct it
	// from the directory (creation time ≈ the directory's mtime, set by
	// the original rename).
	info = CheckpointInfo{Generation: g.name, Shards: shards, Records: records, Bytes: bytes}
	if fi, err := os.Stat(genDir); err == nil {
		info.CreatedUnix = fi.ModTime().Unix()
	}
	return info, true, nil
}

// shardOp runs op on one shard's goroutine.
func (st *Store) shardOp(i int, op func(p *timewin.Partition, observed *uint64)) error {
	st.mu.RLock()
	defer st.mu.RUnlock()
	if st.closed {
		return ErrClosed
	}
	done := make(chan struct{})
	st.shards[i].msgs <- shardMsg{op: op, done: done}
	<-done
	return nil
}

func readManifest(dir string) (*manifest, error) {
	b, err := os.ReadFile(filepath.Join(dir, manifestName))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, fmt.Errorf("%w in %s", ErrNoCheckpoint, dir)
	}
	if err != nil {
		return nil, err
	}
	var m manifest
	if err := json.Unmarshal(b, &m); err != nil {
		return nil, fmt.Errorf("serve: parsing %s: %w", manifestName, err)
	}
	if m.Format != manifestFormat {
		return nil, fmt.Errorf("serve: checkpoint manifest format %d unsupported (max %d)", m.Format, manifestFormat)
	}
	return &m, nil
}

// readShardFile decodes one checkpoint shard file into a fresh staging
// partition built from the store's config.
func (st *Store) readShardFile(path string, idx, count int) (*timewin.Partition, uint64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	zr, err := gzip.NewReader(f)
	if err != nil {
		return nil, 0, err
	}
	defer zr.Close()
	b, err := io.ReadAll(zr)
	if err != nil {
		return nil, 0, err
	}
	r := statecodec.NewReader(b)
	if magic := r.Raw(len(shardStateMagic)); r.Err() != nil || string(magic) != shardStateMagic {
		return nil, 0, fmt.Errorf("not a shard checkpoint (bad magic)")
	}
	if v := r.Byte(); r.Err() == nil && v != shardStateVersion {
		return nil, 0, fmt.Errorf("shard checkpoint version %d unsupported (max %d)", v, shardStateVersion)
	}
	if got := r.Uvarint(); r.Err() == nil && got != uint64(idx) {
		return nil, 0, fmt.Errorf("file claims shard %d, expected %d", got, idx)
	}
	if got := r.Uvarint(); r.Err() == nil && got != uint64(count) {
		return nil, 0, fmt.Errorf("file claims %d shards, manifest says %d", got, count)
	}
	observed := r.Uvarint()
	if err := r.Err(); err != nil {
		return nil, 0, err
	}
	p, err := timewin.New(timewin.Config{
		Options: st.cfg.Options,
		Metrics: st.cfg.Metrics,
		Bucket:  st.cfg.Bucket,
		Retain:  st.cfg.Retain,
	})
	if err != nil {
		return nil, 0, err
	}
	if err := p.UnmarshalState(b[len(b)-r.Remaining():]); err != nil {
		return nil, 0, err
	}
	return p, observed, nil
}
