package serve

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"io"
	"net/http/httptest"
	"strings"
	"testing"

	"syriafilter/internal/render"
)

// newTestServer builds a store over the first n fixture records, cuts a
// snapshot, and wraps it in a Server with the given options.
func newTestServer(t *testing.T, n int, opts ...ServerOption) (*Store, *Server) {
	t.Helper()
	f := corpus(t)
	store, err := NewStore(Config{Options: f.opt, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(store.Close)
	if n > 0 {
		if _, err := store.Add(f.records[:n]); err != nil {
			t.Fatal(err)
		}
		if _, err := store.Refresh(); err != nil {
			t.Fatal(err)
		}
	}
	return store, NewServer(store, f.gen, opts...)
}

// get runs one in-process GET and returns the recorder.
func get(s *Server, path string, hdr ...[2]string) *httptest.ResponseRecorder {
	req := httptest.NewRequest("GET", path, nil)
	for _, h := range hdr {
		req.Header.Set(h[0], h[1])
	}
	rw := httptest.NewRecorder()
	s.ServeHTTP(rw, req)
	return rw
}

func gunzip(t *testing.T, b []byte) []byte {
	t.Helper()
	zr, err := gzip.NewReader(bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	out, err := io.ReadAll(zr)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// The tentpole invariant: for every experiment id and both formats, the
// cache-served body (second request) is byte-identical to the fresh
// render (first request, and a cache-disabled server over the same
// store), and the gzip variant decompresses to exactly the plain body.
func TestDocCacheByteIdentity(t *testing.T) {
	store, cached := newTestServer(t, 8000)
	uncached := NewServer(store, corpus(t).gen, WithDocCacheBytes(0))

	for _, id := range render.Order() {
		for _, format := range []string{"json", "text"} {
			path := "/v1/experiments/" + id + "?format=" + format
			fresh := get(cached, path) // miss: renders and fills the cache
			hit := get(cached, path)   // hit: served from the cache
			control := get(uncached, path)
			if fresh.Code != 200 || hit.Code != 200 || control.Code != 200 {
				t.Fatalf("%s: status %d/%d/%d", path, fresh.Code, hit.Code, control.Code)
			}
			if !bytes.Equal(hit.Body.Bytes(), fresh.Body.Bytes()) {
				t.Errorf("%s: cache hit differs from fresh render", path)
			}
			if !bytes.Equal(hit.Body.Bytes(), control.Body.Bytes()) {
				t.Errorf("%s: cache hit differs from cache-disabled server", path)
			}
			if fresh.Header().Get("ETag") == "" || fresh.Header().Get("ETag") != hit.Header().Get("ETag") {
				t.Errorf("%s: ETag unstable across cache hit: %q vs %q",
					path, fresh.Header().Get("ETag"), hit.Header().Get("ETag"))
			}
			gz := get(cached, path, [2]string{"Accept-Encoding", "gzip"})
			if gz.Code != 200 || gz.Header().Get("Content-Encoding") != "gzip" {
				t.Fatalf("%s: gzip variant status %d encoding %q", path, gz.Code, gz.Header().Get("Content-Encoding"))
			}
			if !bytes.Equal(gunzip(t, gz.Body.Bytes()), fresh.Body.Bytes()) {
				t.Errorf("%s: gzip variant does not decompress to the plain body", path)
			}
		}
	}
}

// ETags revalidate while the snapshot generation holds and change when
// it moves: If-None-Match answers 304 with no body, and after new
// records and a snapshot cut the same validator gets a full 200 with a
// different tag.
func TestETagRevalidation(t *testing.T) {
	f := corpus(t)
	store, srv := newTestServer(t, 4000)

	first := get(srv, "/v1/tables/4")
	etag := first.Header().Get("ETag")
	if first.Code != 200 || etag == "" {
		t.Fatalf("status %d, etag %q", first.Code, etag)
	}
	reval := get(srv, "/v1/tables/4", [2]string{"If-None-Match", etag})
	if reval.Code != 304 || reval.Body.Len() != 0 {
		t.Fatalf("revalidation: status %d, body %d bytes (want 304, empty)", reval.Code, reval.Body.Len())
	}
	// Weak-prefix and list forms must match too.
	if rw := get(srv, "/v1/tables/4", [2]string{"If-None-Match", `W/"nope", ` + etag}); rw.Code != 304 {
		t.Errorf("list-form If-None-Match: status %d, want 304", rw.Code)
	}

	if _, err := store.Add(f.records[4000:8000]); err != nil {
		t.Fatal(err)
	}
	if _, err := store.Refresh(); err != nil {
		t.Fatal(err)
	}
	after := get(srv, "/v1/tables/4", [2]string{"If-None-Match", etag})
	if after.Code != 200 {
		t.Fatalf("post-cut revalidation: status %d, want 200", after.Code)
	}
	if after.Header().Get("ETag") == etag {
		t.Error("ETag did not change across a snapshot cut with new records")
	}
	if bytes.Equal(after.Body.Bytes(), first.Body.Bytes()) {
		t.Error("body did not change across a snapshot cut with new records")
	}
}

// Refresh with no new records keeps the published snapshot: Seq (and
// with it every cache key and sync token) only moves when data does.
func TestRefreshSkipsWhenUnchanged(t *testing.T) {
	store, _ := newTestServer(t, 2000)
	s1, err := store.Refresh()
	if err != nil {
		t.Fatal(err)
	}
	s2, err := store.Refresh()
	if err != nil {
		t.Fatal(err)
	}
	if s2.Seq != s1.Seq {
		t.Errorf("idle Refresh moved Seq %d -> %d", s1.Seq, s2.Seq)
	}
	if _, err := store.Add(corpus(t).records[2000:2100]); err != nil {
		t.Fatal(err)
	}
	s3, err := store.Refresh()
	if err != nil {
		t.Fatal(err)
	}
	if s3.Seq <= s2.Seq {
		t.Errorf("Refresh after new records kept Seq %d", s3.Seq)
	}
}

// The experiment index is frozen at boot: stable content ETag, 304
// revalidation, and a gzip variant holding the same bytes.
func TestIndexCached(t *testing.T) {
	_, srv := newTestServer(t, 1000)
	first := get(srv, "/v1/experiments")
	etag := first.Header().Get("ETag")
	if first.Code != 200 || !strings.HasPrefix(etag, `"idx-`) {
		t.Fatalf("status %d, etag %q", first.Code, etag)
	}
	if rw := get(srv, "/v1/experiments", [2]string{"If-None-Match", etag}); rw.Code != 304 {
		t.Errorf("index revalidation: status %d, want 304", rw.Code)
	}
	gz := get(srv, "/v1/experiments", [2]string{"Accept-Encoding", "gzip"})
	if gz.Header().Get("Content-Encoding") != "gzip" {
		t.Fatalf("index gzip variant not encoded")
	}
	if !bytes.Equal(gunzip(t, gz.Body.Bytes()), first.Body.Bytes()) {
		t.Error("index gzip variant differs from plain body")
	}
}

// Range responses cache under the window-content fingerprint: a frozen
// window keeps its ETag across snapshot cuts that do not touch it, and
// cache-served range bodies equal fresh merges.
func TestRangeCacheByteIdentity(t *testing.T) {
	store, srv := newTestServer(t, 6000)
	meta := store.Current().Timewin
	if len(meta.Buckets) == 0 {
		t.Skip("fixture produced no live buckets")
	}
	from := meta.Buckets[0].StartUnix
	to := from + meta.BucketSeconds
	path := fmt.Sprintf("/v1/range/table4?from=%d&to=%d", from, to)

	fresh := get(srv, path)
	if fresh.Code != 200 {
		t.Fatalf("%s: status %d body %.200s", path, fresh.Code, fresh.Body.String())
	}
	etag := fresh.Header().Get("ETag")
	if etag == "" {
		t.Fatal("range response carries no ETag")
	}
	hit := get(srv, path)
	if !bytes.Equal(hit.Body.Bytes(), fresh.Body.Bytes()) {
		t.Error("cached range body differs from fresh merge")
	}
	if hit.Header().Get("X-Range-Records") != fresh.Header().Get("X-Range-Records") {
		t.Error("cached range lost its X-Range-* headers")
	}
	if rw := get(srv, path, [2]string{"If-None-Match", etag}); rw.Code != 304 {
		t.Errorf("range revalidation: status %d, want 304", rw.Code)
	}
	// A snapshot cut over unrelated data must not invalidate a frozen
	// window: equal fingerprint, equal ETag, still 304.
	if _, err := store.Refresh(); err != nil {
		t.Fatal(err)
	}
	if rw := get(srv, path, [2]string{"If-None-Match", etag}); rw.Code != 304 {
		t.Errorf("frozen-window revalidation after idle cut: status %d, want 304", rw.Code)
	}
}

// The LRU respects its byte budget and counts evictions.
func TestDocCacheEviction(t *testing.T) {
	c := newDocCache(2048, docCacheMetrics{})
	body := make([]byte, 400)
	var keys []docKey
	for i := 0; i < 8; i++ {
		k := docKey{gen: uint64(i), id: "x", format: "json"}
		c.put(k, &docEntry{body: body, etag: "e"})
		keys = append(keys, k)
	}
	c.mu.Lock()
	n, b := len(c.entries), c.bytes
	c.mu.Unlock()
	if b > 2048 {
		t.Errorf("cache holds %d bytes, budget 2048", b)
	}
	if n >= 8 {
		t.Errorf("cache kept all %d entries; expected evictions", n)
	}
	if c.get(keys[0]) != nil {
		t.Error("coldest entry survived eviction")
	}
	if c.get(keys[7]) == nil {
		t.Error("hottest entry was evicted")
	}
	// Oversized entries are refused outright.
	c.put(docKey{gen: 99, id: "big"}, &docEntry{body: make([]byte, 4096)})
	if c.get(docKey{gen: 99, id: "big"}) != nil {
		t.Error("entry larger than the whole budget was cached")
	}
	// A nil cache (caching disabled) is inert.
	var nc *docCache
	nc.put(keys[0], &docEntry{body: body})
	if nc.get(keys[0]) != nil {
		t.Error("nil cache returned an entry")
	}
}
