package serve

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"syriafilter/internal/logfmt"
)

// scrape fetches GET /metrics and returns the exposition body.
func scrape(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// metricValue extracts the value of the first sample line whose name
// (with optional label block) matches prefix exactly up to the space.
func metricValue(t *testing.T, body, series string) float64 {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		if !strings.HasPrefix(line, series) {
			continue
		}
		rest := line[len(series):]
		if !strings.HasPrefix(rest, " ") {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
		if err != nil {
			t.Fatalf("parsing %q: %v", line, err)
		}
		return v
	}
	t.Fatalf("series %s not found in exposition", series)
	return 0
}

// sampleLine matches a Prometheus text-format sample: name, optional
// label block, one value (integer, float, scientific, +Inf or NaN).
var sampleLine = regexp.MustCompile(
	`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")*\})? ` +
		`(NaN|[+-]?Inf|[+-]?[0-9]*\.?[0-9]+([eE][+-]?[0-9]+)?)$`)

// TestMetricsEndpoint drives ingest, snapshot and checkpoint traffic
// through a server and asserts the scrape covers every subsystem the
// issue names — HTTP, ingest, shard queues, snapshot/timewin,
// checkpoint, runtime — in syntactically valid exposition format.
func TestMetricsEndpoint(t *testing.T) {
	f := corpus(t)
	store, err := NewStore(Config{Options: f.opt, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	srv := httptest.NewServer(NewServer(store, f.gen))
	defer srv.Close()

	body := encodeCSV(t, f.records[:5000], false)
	resp, err := http.Post(srv.URL+"/v1/ingest?refresh=1", "text/csv", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest = %d", resp.StatusCode)
	}
	if _, err := store.Checkpoint(t.TempDir()); err != nil {
		t.Fatal(err)
	}

	text := scrape(t, srv.URL)
	for _, line := range strings.Split(strings.TrimSuffix(text, "\n"), "\n") {
		if strings.HasPrefix(line, "# ") {
			continue
		}
		if !sampleLine.MatchString(line) {
			t.Errorf("invalid exposition line %q", line)
		}
	}

	for series, positive := range map[string]bool{
		"censord_ingest_blocks_total":                        true,
		"censord_ingest_records_total":                       true,
		"censord_ingest_bytes_total":                         true,
		"censord_ingest_malformed_total":                     false,
		"censord_ingest_parse_seconds_count":                 true,
		"censord_ingest_backpressure_seconds_count":          true,
		"censord_store_records_total":                        true,
		"censord_store_shards":                               true,
		"censord_shard_queue_depth{shard=\"0\"}":             false,
		"censord_shard_queue_depth{shard=\"1\"}":             false,
		"censord_snapshot_cuts_total":                        true,
		"censord_snapshot_build_seconds_count":               true,
		"censord_snapshot_seq":                               true,
		"censord_timewin_live_buckets":                       true,
		"censord_timewin_compactions_total":                  false,
		"censord_checkpoint_writes_total":                    true,
		"censord_checkpoint_write_seconds_count":             true,
		"censord_checkpoint_generation":                      true,
		"censord_checkpoint_bytes":                           true,
		"censord_intern_strings_total":                       true,
		"censord_sketch_hlls{module=\"users\"}":              false, // exact engine: present, zero
		`http_requests_total{route="/v1/ingest",code="2xx"}`: true,
		`http_request_seconds_count{route="/v1/ingest"}`:     true,
		`http_in_flight{route="/metrics"}`:                   false,
		"go_goroutines":                                      true,
		"go_heap_alloc_bytes":                                true,
		"go_gc_cycles_total":                                 false,
	} {
		v := metricValue(t, text, series)
		if positive && v <= 0 {
			t.Errorf("%s = %v, want > 0", series, v)
		}
	}

	if n := metricValue(t, text, "censord_ingest_records_total"); n != 5000 {
		t.Errorf("ingest_records_total = %v, want 5000", n)
	}
	if n := metricValue(t, text, "censord_store_records_total"); n != 5000 {
		t.Errorf("store_records_total = %v, want 5000", n)
	}
}

// TestMetricsMonotoneAcrossRestore is the warm-restart contract the
// smoke test scripts assert end to end: record totals and the
// checkpoint generation continue — never reset — across a checkpoint,
// shutdown and restore into a fresh store.
func TestMetricsMonotoneAcrossRestore(t *testing.T) {
	f := corpus(t)
	dir := t.TempDir()

	store1, err := NewStore(Config{Options: f.opt, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	store1.Add(f.records[:4000])
	if _, err := store1.CloseAndCheckpoint(dir); err != nil {
		t.Fatal(err)
	}

	store2, err := NewStore(Config{Options: f.opt, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	if _, err := store2.Restore(dir); err != nil {
		t.Fatal(err)
	}
	store2.Add(f.records[4000:5000])
	srv := httptest.NewServer(NewServer(store2, f.gen))
	defer srv.Close()

	text := scrape(t, srv.URL)
	if n := metricValue(t, text, "censord_store_records_total"); n != 5000 {
		t.Errorf("store_records_total after restore = %v, want 5000", n)
	}
	if g := metricValue(t, text, "censord_checkpoint_generation"); g != 1 {
		t.Errorf("checkpoint_generation after restore = %v, want 1", g)
	}
	if n := metricValue(t, text, "censord_checkpoint_restores_total"); n != 1 {
		t.Errorf("checkpoint_restores_total = %v, want 1", n)
	}

	// A new checkpoint continues the restored sequence.
	if _, err := store2.Checkpoint(dir); err != nil {
		t.Fatal(err)
	}
	text = scrape(t, srv.URL)
	if g := metricValue(t, text, "censord_checkpoint_generation"); g != 2 {
		t.Errorf("checkpoint_generation after new checkpoint = %v, want 2", g)
	}
}

func TestReadyz(t *testing.T) {
	f := corpus(t)
	store, err := NewStore(Config{Options: f.opt, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	get := func(srv *httptest.Server) (int, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b)
	}

	// No readiness wired: always ready.
	plain := httptest.NewServer(NewServer(store, f.gen))
	if code, body := get(plain); code != http.StatusOK || !strings.Contains(body, `"status":"ok"`) {
		t.Fatalf("unwired /readyz = %d %s", code, body)
	}
	plain.Close()

	ready := NewReadiness("restoring")
	srv := httptest.NewServer(NewServer(store, f.gen, WithReadiness(ready)))
	defer srv.Close()
	if code, body := get(srv); code != http.StatusServiceUnavailable || !strings.Contains(body, `"status":"restoring"`) {
		t.Fatalf("restoring /readyz = %d %s", code, body)
	}
	ready.Set("loading")
	if code, body := get(srv); code != http.StatusServiceUnavailable || !strings.Contains(body, `"status":"loading"`) {
		t.Fatalf("loading /readyz = %d %s", code, body)
	}
	ready.Set("ok")
	if code, body := get(srv); code != http.StatusOK || !strings.Contains(body, `"status":"ok"`) {
		t.Fatalf("ready /readyz = %d %s", code, body)
	}
}

// TestStatsWindowedRateAndObs: ingest_mb_per_s reads the last ~10s
// (positive right after an ingest) and /v1/stats embeds the registry
// snapshot under "obs".
func TestStatsWindowedRateAndObs(t *testing.T) {
	f := corpus(t)
	store, err := NewStore(Config{Options: f.opt, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	body := encodeCSV(t, f.records[:2000], false)
	if _, _, err := store.IngestBlocks(logfmt.NewBlockReader(bytes.NewReader(body)), 0); err != nil {
		t.Fatal(err)
	}
	st := store.Stats()
	if st.IngestMBPerS <= 0 {
		t.Errorf("ingest_mb_per_s = %v right after ingest, want > 0", st.IngestMBPerS)
	}
	if st.Obs == nil {
		t.Fatal("stats obs section missing")
	}
	if _, ok := st.Obs["censord_ingest_records_total"]; !ok {
		t.Error("obs section lacks censord_ingest_records_total")
	}
	if _, ok := st.Obs["go_goroutines"]; !ok {
		t.Error("obs section lacks go_goroutines")
	}
}

// TestDisableObs: the uninstrumented store still works end to end (the
// benchmark baseline) — no registry, no /metrics route, no obs section.
func TestDisableObs(t *testing.T) {
	f := corpus(t)
	store, err := NewStore(Config{Options: f.opt, Shards: 2, DisableObs: true})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	if store.Registry() != nil {
		t.Fatal("DisableObs store has a registry")
	}

	store.Add(f.records[:1000])
	if _, err := store.Refresh(); err != nil {
		t.Fatal(err)
	}
	body := encodeCSV(t, f.records[1000:2000], false)
	if _, _, err := store.IngestBlocks(logfmt.NewBlockReader(bytes.NewReader(body)), 0); err != nil {
		t.Fatal(err)
	}
	st := store.Stats()
	if st.Obs != nil {
		t.Error("DisableObs stats carries an obs section")
	}
	if st.IngestMBPerS <= 0 {
		t.Errorf("DisableObs ingest_mb_per_s = %v, want > 0 (per-call fallback)", st.IngestMBPerS)
	}

	srv := httptest.NewServer(NewServer(store, f.gen))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET /metrics on DisableObs store = %d, want 404", resp.StatusCode)
	}
	resp, err = http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /healthz on DisableObs store = %d", resp.StatusCode)
	}
}
