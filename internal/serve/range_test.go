package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"syriafilter/internal/core"
	"syriafilter/internal/logfmt"
	"syriafilter/internal/render"
	"syriafilter/internal/timewin"
)

// rangeStore boots a bucketed store over the shared fixture corpus,
// ingested through Add in corpus (time) order.
func rangeStore(t *testing.T, f *fixture, retain time.Duration) *Store {
	t.Helper()
	store, err := NewStore(Config{Options: f.opt, Shards: 4, Bucket: time.Hour, Retain: retain})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(store.Close)
	for i := 0; i < len(f.records); i += 512 {
		end := i + 512
		if end > len(f.records) {
			end = len(f.records)
		}
		store.Add(f.records[i:end])
	}
	return store
}

// The tentpole acceptance criterion: GET /v1/range/{id} over the full
// ingested window — open bounds or explicit bucket-aligned bounds — is
// byte-identical to the batch `censorlyzer -json` Doc for every
// experiment id.
func TestHTTPRangeMatchesBatchRun(t *testing.T) {
	f := corpus(t)
	store := rangeStore(t, f, 0)
	srv := httptest.NewServer(NewServer(store, f.gen))
	defer srv.Close()

	// Hour-aligned bounds covering the whole Jul 22 – Aug 6 2011 capture.
	from := time.Date(2011, 7, 22, 0, 0, 0, 0, time.UTC).Unix()
	to := time.Date(2011, 8, 7, 0, 0, 0, 0, time.UTC).Unix()

	for _, id := range render.Order() {
		id := id
		t.Run(id, func(t *testing.T) {
			doc, err := render.Render(id, render.Context{An: f.batch, Gen: f.gen})
			if err != nil {
				t.Fatal(err)
			}
			want, err := json.Marshal(doc)
			if err != nil {
				t.Fatal(err)
			}
			want = append(want, '\n')
			for _, query := range []string{"", fmt.Sprintf("?from=%d&to=%d", from, to)} {
				resp, err := http.Get(srv.URL + "/v1/range/" + id + query)
				if err != nil {
					t.Fatal(err)
				}
				body := new(bytes.Buffer)
				body.ReadFrom(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != 200 {
					t.Fatalf("%q: status %d: %.200s", query, resp.StatusCode, body.Bytes())
				}
				if !bytes.Equal(body.Bytes(), want) {
					t.Errorf("range%q differs from batch run\n got: %.300s\nwant: %.300s", query, body.Bytes(), want)
				}
				if query != "" && resp.Header.Get("X-Range-Records") != fmt.Sprint(len(f.records)) {
					t.Errorf("X-Range-Records = %s, want %d", resp.Header.Get("X-Range-Records"), len(f.records))
				}
			}
		})
	}
}

// A sub-range query equals a batch engine fed only the records the
// covered buckets hold, and bucket-edge records land deterministically.
func TestRangeSubWindowMatchesFilteredBatch(t *testing.T) {
	f := corpus(t)
	store := rangeStore(t, f, 0)

	// Aug 3 06:00 – 12:00, hour-aligned: the paper's Table 5 window.
	win := timewin.Window{
		From: time.Date(2011, 8, 3, 6, 0, 0, 0, time.UTC).Unix(),
		To:   time.Date(2011, 8, 3, 12, 0, 0, 0, time.UTC).Unix(),
	}
	an, cov, err := store.Range(win)
	if err != nil {
		t.Fatal(err)
	}
	ref := core.NewAnalyzer(f.opt)
	var n uint64
	for i := range f.records {
		if win.Contains(f.records[i].Time) {
			ref.Observe(&f.records[i])
			n++
		}
	}
	if n == 0 {
		t.Fatal("fixture corpus has no records in the Aug 3 morning window; timestamps are degenerate")
	}
	if cov.Records != n {
		t.Fatalf("coverage records = %d, want %d (bucket-aligned window must match the record predicate)", cov.Records, n)
	}
	if cov.FromUnix != win.From || cov.ToUnix != win.To {
		t.Errorf("coverage span [%d, %d), want the aligned [%d, %d)", cov.FromUnix, cov.ToUnix, win.From, win.To)
	}
	for _, id := range []string{"table1", "table4", "fig5"} {
		got, err := render.Render(id, render.Context{An: an})
		if err != nil {
			t.Fatal(err)
		}
		want, err := render.Render(id, render.Context{An: ref})
		if err != nil {
			t.Fatal(err)
		}
		gb, _ := json.Marshal(got)
		wb, _ := json.Marshal(want)
		if !bytes.Equal(gb, wb) {
			t.Errorf("%s over sub-window differs from filtered batch run\n got: %.300s\nwant: %.300s", id, gb, wb)
		}
	}
}

// Step queries return one Doc per sub-window whose record counts
// partition the corpus; invalid steps and unknown ids fail cleanly.
func TestRangeSeriesEndpoint(t *testing.T) {
	f := corpus(t)
	store := rangeStore(t, f, 0)
	srv := httptest.NewServer(NewServer(store, f.gen))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/v1/range/table1?step=24h")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var series struct {
		ID          string `json:"id"`
		StepSeconds int64  `json:"step_seconds"`
		Windows     []struct {
			FromUnix int64           `json:"from_unix"`
			ToUnix   int64           `json:"to_unix"`
			Records  uint64          `json:"records"`
			Doc      json.RawMessage `json:"doc"`
		} `json:"windows"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&series); err != nil {
		t.Fatal(err)
	}
	if series.ID != "table1" || series.StepSeconds != 86400 {
		t.Fatalf("series header = %q step %d", series.ID, series.StepSeconds)
	}
	// At this corpus size the generator's July days round to zero
	// requests, so the realized capture is the Aug 1–6 week: expect a
	// multi-window series whose per-window records sum to the corpus.
	if len(series.Windows) < 6 {
		t.Fatalf("series has %d day windows, want >= 6 (degenerate timestamps?)", len(series.Windows))
	}
	var sum uint64
	populated := 0
	for _, w := range series.Windows {
		sum += w.Records
		if w.Records > 0 {
			populated++
		}
		if w.ToUnix-w.FromUnix > 86400 || len(w.Doc) == 0 {
			t.Fatalf("window %+v malformed", w)
		}
	}
	if sum != uint64(len(f.records)) {
		t.Errorf("windows cover %d records, want the full %d", sum, len(f.records))
	}
	if populated < 6 {
		t.Errorf("only %d populated day windows, want the Aug 1-6 observed days", populated)
	}

	// An unaligned explicit `to` is widened to the bucket edge, so the
	// last window's reported bounds cover every record its Doc merged.
	aug1 := time.Date(2011, 8, 1, 0, 0, 0, 0, time.UTC).Unix()
	wins, err := store.RangeSeries(timewin.Window{From: aug1, To: aug1 + 24*3600 + 1800}, 24*3600)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(wins); n != 2 {
		t.Fatalf("unaligned-to series has %d windows, want 2", n)
	}
	last := wins[len(wins)-1]
	if last.Window.To != aug1+25*3600 {
		t.Errorf("last window ends at %d, want the bucket-aligned %d", last.Window.To, aug1+25*3600)
	}
	if last.Coverage.Records > 0 && last.Coverage.ToUnix > last.Window.To {
		t.Errorf("coverage %+v exceeds the reported window end %d", last.Coverage, last.Window.To)
	}

	for path, status := range map[string]int{
		"/v1/range/table1?step=90m":                       400, // not a bucket multiple
		"/v1/range/table1?step=junk":                      400,
		"/v1/range/table1?from=9&to=3":                    400,
		"/v1/range/table1?from=yesterday":                 400,
		"/v1/range/nope":                                  404,
		"/v1/range/table1?step=1h&from=1&to=999999999999": 400, // window explosion
	} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != status {
			t.Errorf("%s: status %d, want %d", path, resp.StatusCode, status)
		}
	}
}

// Retention compaction must bound the live ring while keeping the
// all-time snapshot and the full-range query exact; sub-ranges inside
// the compacted tail answer 422.
func TestRetentionCompactionPreservesAllTime(t *testing.T) {
	f := corpus(t)
	store := rangeStore(t, f, 24*time.Hour) // capture spans ~16 days
	srv := httptest.NewServer(NewServer(store, f.gen))
	defer srv.Close()

	snap, err := store.Refresh()
	if err != nil {
		t.Fatal(err)
	}
	meta := snap.Timewin
	if meta.TailRecords == 0 {
		t.Fatal("24h retention over a 16-day corpus compacted nothing")
	}
	// Each shard keeps at most 24 hourly buckets; shard horizons can
	// differ by a few buckets mid-stream, but the aggregated ring must
	// stay near the horizon, far below the ~380 buckets of the corpus.
	if len(meta.Buckets) > 24+store.Stats().Shards {
		t.Errorf("aggregated live buckets = %d, want <= retention horizon (24) + shard slack", len(meta.Buckets))
	}
	var live uint64
	for _, b := range meta.Buckets {
		live += b.Records
	}
	if live+meta.TailRecords != uint64(len(f.records)) {
		t.Errorf("live %d + tail %d != corpus %d", live, meta.TailRecords, len(f.records))
	}

	// All-time snapshot and full-range query both stay byte-exact.
	for path, id := range map[string]string{
		"/v1/experiments/table4": "table4",
		"/v1/range/table4":       "table4",
		"/v1/range/fig5":         "fig5",
	} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body := new(bytes.Buffer)
		body.ReadFrom(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("%s: status %d", path, resp.StatusCode)
		}
		doc, err := render.Render(id, render.Context{An: f.batch, Gen: f.gen})
		if err != nil {
			t.Fatal(err)
		}
		want, _ := json.Marshal(doc)
		want = append(want, '\n')
		if !bytes.Equal(body.Bytes(), want) {
			t.Errorf("%s differs from batch run after compaction", path)
		}
	}

	// A range beginning inside the tail cannot be answered exactly: a
	// window overlapping the compacted span without covering it.
	resp, err := http.Get(srv.URL + fmt.Sprintf("/v1/range/table1?from=%d&to=%d",
		meta.TailFromUnix, meta.TailFromUnix+6*3600))
	if err != nil {
		t.Fatal(err)
	}
	body := new(bytes.Buffer)
	body.ReadFrom(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 422 {
		t.Fatalf("range inside the tail: status %d (%.200s), want 422", resp.StatusCode, body.Bytes())
	}

	// A range within the retained window still answers exactly.
	horizon := meta.Buckets[0].StartUnix
	an, cov, err := store.Range(timewin.Window{From: horizon, To: horizon + 6*3600})
	if err != nil {
		t.Fatal(err)
	}
	ref := core.NewAnalyzer(f.opt)
	var n uint64
	for i := range f.records {
		if ts := f.records[i].Time; ts >= horizon && ts < horizon+6*3600 {
			ref.Observe(&f.records[i])
			n++
		}
	}
	if cov.Records != n || cov.Tail {
		t.Fatalf("retained-window coverage = %+v, want %d live records and no tail", cov, n)
	}
	got, _ := render.Render("table1", render.Context{An: an})
	want, _ := render.Render("table1", render.Context{An: ref})
	gb, _ := json.Marshal(got)
	wb, _ := json.Marshal(want)
	if !bytes.Equal(gb, wb) {
		t.Errorf("retained-window range differs from filtered batch run")
	}
}

// The stats endpoint reports ingest throughput and the bucket layout.
func TestStatsReportsBytesAndBuckets(t *testing.T) {
	f := corpus(t)
	store, err := NewStore(Config{Options: f.opt, Shards: 2, Bucket: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	body := encodeCSV(t, f.records[:4000], false)
	added, _, err := store.IngestBlocks(logfmt.NewBlockReader(bytes.NewReader(body)), 2)
	if err != nil || added != 4000 {
		t.Fatalf("ingest: %d records, err %v", added, err)
	}
	if _, err := store.Refresh(); err != nil {
		t.Fatal(err)
	}
	st := store.Stats()
	if st.IngestedBytes != uint64(len(body)) {
		t.Errorf("IngestedBytes = %d, want the %d posted bytes", st.IngestedBytes, len(body))
	}
	if st.IngestMBPerS <= 0 {
		t.Errorf("IngestMBPerS = %v, want > 0 after a block ingest", st.IngestMBPerS)
	}
	if st.Timewin.BucketSeconds != 3600 || len(st.Timewin.Buckets) == 0 {
		t.Errorf("Timewin meta missing: %+v", st.Timewin)
	}
	var n uint64
	for _, b := range st.Timewin.Buckets {
		n += b.Records
	}
	if n != 4000 {
		t.Errorf("bucket records sum to %d, want 4000", n)
	}
}
