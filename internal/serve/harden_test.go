package serve

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"syriafilter/internal/logfmt"
	"syriafilter/internal/timewin"
)

// A single stalled shard must not hang every ingest path: Add sheds
// with ErrOverloaded once the deadline passes, the shed is counted,
// and unrelated shards and handlers keep working.
func TestAddShedsOnStalledShard(t *testing.T) {
	f := corpus(t)
	store, err := NewStore(Config{Options: f.opt, Shards: 2, AddTimeout: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	srv := httptest.NewServer(NewServer(store, f.gen))
	defer srv.Close()

	// Split the fixture by destination shard so batches can target the
	// stalled shard and the healthy one independently.
	var toStalled, toHealthy []logfmt.Record
	for i := range f.records {
		if shardKey(&f.records[i])%2 == 0 {
			toStalled = append(toStalled, f.records[i])
		} else {
			toHealthy = append(toHealthy, f.records[i])
		}
	}
	if len(toStalled) < 10 || len(toHealthy) < 10 {
		t.Fatalf("fixture too skewed: %d/%d records per shard", len(toStalled), len(toHealthy))
	}

	// Stall shard 0: park its goroutine on a blocking op, then fill its
	// queue so every further send must block.
	release := make(chan struct{})
	stallDone := make(chan struct{})
	store.shards[0].msgs <- shardMsg{done: stallDone,
		op: func(p *timewin.Partition, observed *uint64) { <-release }}
	for i := 0; i < shardQueue; i++ {
		store.shards[0].msgs <- shardMsg{}
	}
	defer close(release)

	start := time.Now()
	added, err := store.Add(toStalled[:10])
	if waited := time.Since(start); waited > 5*time.Second {
		t.Errorf("Add blocked %v on a stalled shard, want ~the 100ms deadline", waited)
	}
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("Add on stalled shard: added=%d err=%v, want ErrOverloaded", added, err)
	}
	if got := store.obsm.shed.Value(); got != 1 {
		t.Errorf("censord_ingest_shed_total = %d, want 1", got)
	}

	// The healthy shard is untouched by the stall.
	if n, err := store.Add(toHealthy[:10]); err != nil || n != 10 {
		t.Errorf("Add to healthy shard: added=%d err=%v, want 10, nil", n, err)
	}

	// And so are unrelated handlers: liveness answers while shard 0 is
	// wedged, and ingest over HTTP sheds with 429 + Retry-After instead
	// of hanging the connection.
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("GET /healthz during shard stall: %d, want 200", resp.StatusCode)
	}

	resp, err = http.Post(srv.URL+"/v1/ingest", "text/csv",
		bytes.NewReader(encodeCSV(t, toStalled[10:20], false)))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("ingest to stalled store: status %d body %s, want 429", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 response missing Retry-After")
	}
	if !strings.Contains(string(body), `"added"`) {
		t.Errorf("429 body %s does not report the accepted-record count", body)
	}
	if got := store.obsm.shed.Value(); got != 2 {
		t.Errorf("censord_ingest_shed_total after HTTP shed = %d, want 2", got)
	}
}

// WithMaxBody caps ingest bodies: one byte over answers 413 and names
// the cap, under the cap still works.
func TestIngestBodyCap(t *testing.T) {
	f := corpus(t)
	store, err := NewStore(Config{Options: f.opt, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	srv := httptest.NewServer(NewServer(store, f.gen, WithMaxBody(512)))
	defer srv.Close()

	big := encodeCSV(t, f.records[:100], false) // far over 512 bytes
	resp, err := http.Post(srv.URL+"/v1/ingest", "text/csv", bytes.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized ingest: status %d body %s, want 413", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "512") {
		t.Errorf("413 body %s does not name the cap", body)
	}

	small := encodeCSV(t, f.records[:1], false)
	if len(small) > 512 {
		t.Fatalf("fixture record encodes to %d bytes, cannot test under-cap path", len(small))
	}
	resp, err = http.Post(srv.URL+"/v1/ingest", "text/csv", bytes.NewReader(small))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("under-cap ingest: status %d, want 200", resp.StatusCode)
	}
}

// While the daemon reports any non-ok readiness state (draining at
// SIGTERM, restoring/loading during boot), the state-observing routes
// answer 503 + Retry-After instead of serving half-built views;
// liveness stays 200.
func TestGateServingWhileNotReady(t *testing.T) {
	f := corpus(t)
	store, err := NewStore(Config{Options: f.opt, Shards: 2, Bucket: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	fillStore(t, store, f)

	ready := NewReadiness("draining")
	srv := httptest.NewServer(NewServer(store, f.gen,
		WithReadiness(ready),
		WithCheckpoint(func(context.Context) (CheckpointInfo, error) { return CheckpointInfo{}, nil })))
	defer srv.Close()

	gated := []struct{ method, path string }{
		{"POST", "/v1/snapshot"},
		{"POST", "/v1/checkpoint"},
		{"GET", "/v1/range/table4?from=2011-07-01&to=2011-09-01"},
	}
	for _, g := range gated {
		req, err := http.NewRequest(g.method, srv.URL+g.path, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Errorf("%s %s while draining: status %d body %s, want 503", g.method, g.path, resp.StatusCode, body)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Errorf("%s %s while draining: missing Retry-After", g.method, g.path)
		}
		if !strings.Contains(string(body), "draining") {
			t.Errorf("%s %s while draining: body %s does not name the state", g.method, g.path, body)
		}
	}

	for _, path := range []string{"/healthz", "/metrics"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Errorf("GET %s while draining: status %d, want 200 (liveness is not readiness)", path, resp.StatusCode)
		}
	}

	// Back to ok: the gate opens.
	ready.Set("ok")
	resp, err := http.Post(srv.URL+"/v1/snapshot", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("POST /v1/snapshot after recovery: status %d, want 200", resp.StatusCode)
	}
}

// Restore must degrade one generation at a time: a damaged newest
// generation falls back to the previous one (counted and logged), a
// damaged manifest alone costs nothing, and only a directory where no
// generation decodes fails — still leaving the store cold-boot usable.
func TestRestoreGenerationFallback(t *testing.T) {
	f := corpus(t)

	// Template checkpoint dir: gen A holds 1000 records, gen B holds
	// 2000 (cumulative) — both retained by the keep window.
	template := t.TempDir()
	store := newCkptStore(t, f, 2)
	if _, err := store.Add(f.records[:1000]); err != nil {
		t.Fatal(err)
	}
	genA, err := store.Checkpoint(template)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := store.Add(f.records[1000:2000]); err != nil {
		t.Fatal(err)
	}
	genB, err := store.Checkpoint(template)
	if err != nil {
		t.Fatal(err)
	}
	store.Close()

	cases := []struct {
		name          string
		mutate        func(t *testing.T, dir string)
		wantRecords   uint64 // 0 = restore must fail
		wantFallbacks uint64
	}{
		{
			name: "truncated manifest still restores newest",
			mutate: func(t *testing.T, dir string) {
				truncateFile(t, filepath.Join(dir, manifestName), 10)
			},
			wantRecords: 2000, wantFallbacks: 0,
		},
		{
			name: "garbled manifest still restores newest",
			mutate: func(t *testing.T, dir string) {
				if err := os.WriteFile(filepath.Join(dir, manifestName), []byte("{not json"), 0o644); err != nil {
					t.Fatal(err)
				}
			},
			wantRecords: 2000, wantFallbacks: 0,
		},
		{
			name: "truncated newest shard falls back one generation",
			mutate: func(t *testing.T, dir string) {
				truncateFile(t, filepath.Join(dir, genB.Generation, shardFileName(0)), 20)
			},
			wantRecords: 1000, wantFallbacks: 1,
		},
		{
			name: "garbled gzip in newest falls back one generation",
			mutate: func(t *testing.T, dir string) {
				garbleFile(t, filepath.Join(dir, genB.Generation, shardFileName(1)))
			},
			wantRecords: 1000, wantFallbacks: 1,
		},
		{
			name: "missing newest generation falls back one generation",
			mutate: func(t *testing.T, dir string) {
				if err := os.RemoveAll(filepath.Join(dir, genB.Generation)); err != nil {
					t.Fatal(err)
				}
			},
			wantRecords: 1000, wantFallbacks: 1,
		},
		{
			name: "every generation damaged fails, store cold-boots",
			mutate: func(t *testing.T, dir string) {
				truncateFile(t, filepath.Join(dir, genA.Generation, shardFileName(0)), 5)
				truncateFile(t, filepath.Join(dir, genB.Generation, shardFileName(0)), 5)
			},
			wantRecords: 0, wantFallbacks: 2,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			copyTree(t, template, dir)
			tc.mutate(t, dir)

			st := newCkptStore(t, f, 2)
			defer st.Close()
			info, err := st.Restore(dir)
			if tc.wantRecords == 0 {
				if err == nil {
					t.Fatalf("Restore succeeded (%+v) on a fully damaged dir", info)
				}
				if errors.Is(err, ErrNoCheckpoint) {
					t.Errorf("fully damaged dir reported ErrNoCheckpoint; want a decode error (data existed)")
				}
			} else {
				if err != nil {
					t.Fatalf("Restore: %v", err)
				}
				if info.Records != tc.wantRecords {
					t.Errorf("restored %d records, want %d", info.Records, tc.wantRecords)
				}
			}
			if got := st.obsm.restoreFallbacks.Value(); got != tc.wantFallbacks {
				t.Errorf("censord_checkpoint_restore_fallbacks_total = %d, want %d", got, tc.wantFallbacks)
			}

			// The store works after any outcome, and a fresh checkpoint
			// continues the on-disk sequence instead of colliding with
			// the surviving generation dirs.
			if _, err := st.Add(f.records[2000:2100]); err != nil {
				t.Fatal(err)
			}
			next, err := st.Checkpoint(dir)
			if err != nil {
				t.Fatalf("checkpoint after restore: %v", err)
			}
			if next.Generation == genA.Generation || next.Generation == genB.Generation {
				t.Errorf("new checkpoint reused generation %s", next.Generation)
			}
			if next.Records != tc.wantRecords+100 {
				t.Errorf("checkpoint after restore covers %d records, want %d", next.Records, tc.wantRecords+100)
			}
		})
	}
}

func truncateFile(t *testing.T, path string, n int64) {
	t.Helper()
	if err := os.Truncate(path, n); err != nil {
		t.Fatal(err)
	}
}

// garbleFile flips bytes in the middle of path, keeping the length (a
// bit-rot corruption the gzip checksum catches, unlike a truncation the
// decoder catches first).
func garbleFile(t *testing.T, path string) {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := len(b) / 2; i < len(b)/2+16 && i < len(b); i++ {
		b[i] ^= 0xff
	}
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
}

func copyTree(t *testing.T, src, dst string) {
	t.Helper()
	err := filepath.Walk(src, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if info.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		b, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(target, b, 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
}
