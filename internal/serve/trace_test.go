package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"syriafilter/internal/obs/trace"
)

// traceNode mirrors the /debug/traces/{id} tree payload for decoding.
type traceNode struct {
	Name       string         `json:"name"`
	DurationMS float64        `json:"duration_ms"`
	Attrs      map[string]any `json:"attrs"`
	Children   []*traceNode   `json:"children"`
}

// walk applies fn to every node in the tree.
func (n *traceNode) walk(fn func(*traceNode)) {
	if n == nil {
		return
	}
	fn(n)
	for _, c := range n.Children {
		c.walk(fn)
	}
}

// The PR's acceptance criterion: a /v1/range request slowed by an
// injected per-shard stall produces a retrievable trace at
// /debug/traces/{id} whose span tree attributes the latency to the
// right stage — the stalled range.shard span dominates, not HTTP
// dispatch or rendering.
func TestRangeTraceAttributesInjectedStall(t *testing.T) {
	f := corpus(t)
	tr := trace.New(trace.Config{Slow: 100 * time.Millisecond})
	store, err := NewStore(Config{
		Options: f.opt, Shards: 4, Bucket: time.Hour, Tracer: tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	const stall = 250 * time.Millisecond
	store.rangeStall = func(shard int) {
		if shard == 0 {
			time.Sleep(stall)
		}
	}
	store.Add(f.records[:4096])
	if _, err := store.Refresh(); err != nil {
		t.Fatal(err)
	}

	srv := httptest.NewServer(NewServer(store, f.gen))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/v1/range/table1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("range status = %d", resp.StatusCode)
	}
	traceID, _, ok := trace.ParseTraceparent(resp.Header.Get("Traceparent"))
	if !ok {
		t.Fatalf("unparsable Traceparent response header: %q", resp.Header.Get("Traceparent"))
	}

	// The stalled request crossed the slow threshold, so the recorder
	// must have pinned it regardless of sampling.
	resp2, err := http.Get(srv.URL + "/debug/traces/" + traceID.String())
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/traces/%s status = %d", traceID, resp2.StatusCode)
	}
	var got struct {
		ID         string     `json:"id"`
		DurationMS float64    `json:"duration_ms"`
		Slow       bool       `json:"slow"`
		Tree       *traceNode `json:"tree"`
	}
	if err := json.NewDecoder(resp2.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got.ID != traceID.String() {
		t.Errorf("trace id = %s, want %s", got.ID, traceID)
	}
	if !got.Slow {
		t.Error("stalled trace not marked slow")
	}

	// Attribution: the slowest range.shard span carries the injected
	// stall (shard 0), dominates the request, and dwarfs both the other
	// shards and the render span — reading this tree answers "where did
	// the time go" correctly.
	var slowShard, render *traceNode
	shardSpans := 0
	got.Tree.walk(func(n *traceNode) {
		switch n.Name {
		case "range.shard":
			shardSpans++
			if slowShard == nil || n.DurationMS > slowShard.DurationMS {
				slowShard = n
			}
		case "render":
			render = n
		}
	})
	if shardSpans != 4 {
		t.Fatalf("range.shard spans = %d, want 4 (one per shard)", shardSpans)
	}
	if slowShard == nil || render == nil {
		t.Fatal("trace tree missing range.shard or render span")
	}
	stallMS := float64(stall) / float64(time.Millisecond)
	if slowShard.DurationMS < stallMS {
		t.Errorf("slowest range.shard = %.1fms, want >= injected %.0fms", slowShard.DurationMS, stallMS)
	}
	if shard, ok := slowShard.Attrs["shard"].(float64); !ok || shard != 0 {
		t.Errorf("slowest range.shard attrs = %v, want shard 0", slowShard.Attrs)
	}
	if slowShard.DurationMS < 0.5*got.DurationMS {
		t.Errorf("stalled shard %.1fms does not dominate request %.1fms",
			slowShard.DurationMS, got.DurationMS)
	}
	if render.DurationMS > slowShard.DurationMS/2 {
		t.Errorf("render %.1fms rivals the stalled shard %.1fms — misattributed",
			render.DurationMS, slowShard.DurationMS)
	}

	// The list view carries the same trace, and /v1/stats surfaces the
	// recorder's retention counters plus build identity.
	var list struct {
		Stats  trace.RecorderStats `json:"stats"`
		Traces []struct {
			ID   string `json:"id"`
			Slow bool   `json:"slow"`
		} `json:"traces"`
	}
	resp3, err := http.Get(srv.URL + "/debug/traces?min_ms=100")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp3.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	found := false
	for _, s := range list.Traces {
		if s.ID == traceID.String() {
			found = s.Slow
		}
	}
	if !found {
		t.Errorf("trace %s not listed slow at /debug/traces?min_ms=100", traceID)
	}
	if list.Stats.KeptSlow == 0 {
		t.Error("recorder stats report no slow traces kept")
	}

	stats := store.Stats()
	if stats.Trace == nil || stats.Trace.SlowThresholdMS != 100 {
		t.Errorf("Stats().Trace = %+v, want slow_threshold_ms 100", stats.Trace)
	}
	if stats.Build.GoVersion == "" {
		t.Error("Stats().Build.GoVersion empty")
	}
}

// Tracing disabled (no Tracer in Config): the debug endpoints answer
// 404 and request handling is unaffected.
func TestTracesEndpointDisabled(t *testing.T) {
	f := corpus(t)
	store, err := NewStore(Config{Options: f.opt, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	store.Add(f.records[:512])
	if _, err := store.Refresh(); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewServer(store, f.gen))
	defer srv.Close()

	for _, path := range []string{"/debug/traces", "/debug/traces/deadbeef"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s with tracing disabled = %d, want 404", path, resp.StatusCode)
		}
	}
	resp, err := http.Get(srv.URL + "/v1/range/table1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("range without tracer = %d, want 200", resp.StatusCode)
	}
	if tp := resp.Header.Get("Traceparent"); tp != "" {
		t.Errorf("Traceparent header emitted with tracing disabled: %q", tp)
	}
}
