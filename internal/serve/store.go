// Package serve turns the batch metric engine into a continuously
// running service: a sharded live store ingests log records while an
// immutable snapshot layer serves every experiment of the paper's
// evaluation over HTTP (see Server).
//
// Architecture: N hash-partitioned shards, each a single goroutine that
// owns one core engine and drains a channel of record batches, so
// ingestion is lock-free and never blocks queries. Snapshots are built
// copy-on-swap: a fresh engine is merged through every shard — each
// merge runs on the shard's own goroutine, between its batches, so
// engines are never touched concurrently — and the result is atomically
// swapped into place. Queries always read a consistent point-in-time
// engine and never take a lock.
package serve

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"syriafilter/internal/core"
	"syriafilter/internal/logfmt"
	"syriafilter/internal/pipeline"
	"syriafilter/internal/stats"
)

// Config configures a Store.
type Config struct {
	// Options configures every shard engine (and snapshot engines).
	Options core.Options
	// Metrics restricts shards to a metric-module subset (nil = every
	// module); derive it with core.ModulesFor to serve fewer experiments
	// more cheaply.
	Metrics []string
	// Shards is the number of engine shards. <= 0 picks GOMAXPROCS,
	// capped at 16.
	Shards int
	// SnapshotEvery rebuilds the read snapshot in the background at this
	// period. 0 disables the background builder: snapshots happen only
	// through Refresh.
	SnapshotEvery time.Duration
}

// Snapshot is one immutable point-in-time view of the store. Its
// analyzer is never written after publication, so any number of queries
// may read it concurrently.
type Snapshot struct {
	An *core.Analyzer
	// Seq increments with every rebuild (0 = the boot-time empty view).
	Seq uint64
	// Records is the number of records folded into this snapshot.
	Records uint64
	// Built is the snapshot's build time.
	Built time.Time
}

// Stats summarizes a Store for monitoring.
type Stats struct {
	Shards          int      `json:"shards"`
	Metrics         []string `json:"metrics"`
	Ingested        uint64   `json:"ingested"`
	SnapshotSeq     uint64   `json:"snapshot_seq"`
	SnapshotRecords uint64   `json:"snapshot_records"`
	SnapshotBuilt   string   `json:"snapshot_built"`
}

// shardMsg is one unit of shard work: either a batch to observe or a
// control op to run between batches (snapshot merges use ops, so they
// serialize with ingestion without any engine lock).
type shardMsg struct {
	batch []logfmt.Record
	op    func(an *core.Analyzer, observed uint64)
	done  chan struct{}
}

type shard struct {
	msgs chan shardMsg
}

func (s *shard) loop(an *core.Analyzer, wg *sync.WaitGroup) {
	defer wg.Done()
	var observed uint64
	for m := range s.msgs {
		if m.op != nil {
			m.op(an, observed)
			close(m.done)
			continue
		}
		for i := range m.batch {
			an.Observe(&m.batch[i])
		}
		observed += uint64(len(m.batch))
	}
}

// shardQueue is the per-shard batch buffer: enough to keep shards busy,
// small enough that Add exerts backpressure instead of buffering
// unboundedly.
const shardQueue = 8

// Store is the sharded live store. See the package comment for the
// concurrency design.
type Store struct {
	cfg    Config
	shards []*shard

	snap      atomic.Pointer[Snapshot]
	seq       atomic.Uint64
	ingested  atomic.Uint64
	refreshMu sync.Mutex // serializes snapshot builds

	mu     sync.RWMutex // guards closed vs. in-flight sends
	closed bool

	wg   sync.WaitGroup
	stop chan struct{}
}

// NewStore builds the shards and starts their goroutines (plus the
// background snapshot builder when Config.SnapshotEvery is set). The
// initial snapshot is an empty view, so queries work immediately.
func NewStore(cfg Config) (*Store, error) {
	if cfg.Shards <= 0 {
		cfg.Shards = runtime.GOMAXPROCS(0)
		if cfg.Shards > 16 {
			cfg.Shards = 16
		}
	}
	st := &Store{cfg: cfg, stop: make(chan struct{})}
	for i := 0; i < cfg.Shards; i++ {
		an, err := core.NewAnalyzerFor(cfg.Options, cfg.Metrics...)
		if err != nil {
			for _, sh := range st.shards {
				close(sh.msgs)
			}
			return nil, err
		}
		sh := &shard{msgs: make(chan shardMsg, shardQueue)}
		st.shards = append(st.shards, sh)
		st.wg.Add(1)
		go sh.loop(an, &st.wg)
	}
	empty, err := core.NewAnalyzerFor(cfg.Options, cfg.Metrics...)
	if err != nil {
		st.Close()
		return nil, err
	}
	st.snap.Store(&Snapshot{An: empty, Built: time.Now()})
	if cfg.SnapshotEvery > 0 {
		st.wg.Add(1)
		go st.refreshLoop(cfg.SnapshotEvery)
	}
	return st, nil
}

func (st *Store) refreshLoop(every time.Duration) {
	defer st.wg.Done()
	tick := time.NewTicker(every)
	defer tick.Stop()
	for {
		select {
		case <-st.stop:
			return
		case <-tick.C:
			st.Refresh()
		}
	}
}

// shardKey routes a record to its shard: hashing client and host keeps
// related records together while distributing both dimensions.
func shardKey(rec *logfmt.Record) uint64 {
	return stats.Hash64(rec.ClientIP) ^ stats.Hash64(rec.Host)
}

// Add routes records to their shards and blocks until every batch is
// enqueued — backpressure, not dropping, under overload. Records are
// copied, so the caller may reuse recs. Returns the number accepted (0
// after Close).
func (st *Store) Add(recs []logfmt.Record) uint64 {
	if len(recs) == 0 {
		return 0
	}
	st.mu.RLock()
	defer st.mu.RUnlock()
	if st.closed {
		return 0
	}
	n := uint64(len(st.shards))
	buckets := make([][]logfmt.Record, n)
	for i := range recs {
		b := shardKey(&recs[i]) % n
		buckets[b] = append(buckets[b], recs[i])
	}
	for i, b := range buckets {
		if len(b) > 0 {
			st.shards[i].msgs <- shardMsg{batch: b}
		}
	}
	st.ingested.Add(uint64(len(recs)))
	return uint64(len(recs))
}

// IngestScanner drains sc into the store in pipeline.BatchSize chunks,
// returning the number of records added and the scanner's terminal
// error. Parsing happens on the calling goroutine; prefer IngestBlocks /
// IngestFiles, which spread it across a worker pool.
func (st *Store) IngestScanner(sc pipeline.Scanner) (uint64, error) {
	var added uint64
	batch := make([]logfmt.Record, 0, pipeline.BatchSize)
	for {
		rec, ok := sc.Next()
		if !ok {
			break
		}
		batch = append(batch, *rec)
		if len(batch) == pipeline.BatchSize {
			added += st.Add(batch)
			batch = batch[:0]
		}
	}
	added += st.Add(batch)
	return added, sc.Err()
}

// ingestAcc is the per-worker accumulator of the block ingest path: it
// buffers parsed records and flushes them into the sharded store in
// pipeline.BatchSize chunks. Field strings of buffered records alias the
// block strings ParseBlock produced, which stay valid for good.
type ingestAcc struct {
	st    *Store
	batch []logfmt.Record
	added uint64
}

func (a *ingestAcc) observe(rec *logfmt.Record) {
	a.batch = append(a.batch, *rec)
	if len(a.batch) == pipeline.BatchSize {
		a.flush()
	}
}

func (a *ingestAcc) flush() {
	if len(a.batch) > 0 {
		a.added += a.st.Add(a.batch)
		a.batch = a.batch[:0]
	}
}

// IngestBlocks drains a block stream into the store with a parse worker
// pool (workers <= 0 uses GOMAXPROCS): line splitting and parsing run
// concurrently instead of on the calling goroutine, so a fat POST body
// or log file no longer decodes on one core. Returns the records added,
// the malformed lines skipped, and the stream's terminal error.
func (st *Store) IngestBlocks(br *logfmt.BlockReader, workers int) (added, malformed uint64, err error) {
	return st.ingestBlockSources([]*pipeline.BlockSource{{R: br}}, workers)
}

// IngestFiles block-ingests every path (gzip-transparent): one block
// reader goroutine per file, all feeding the shared parse pool.
func (st *Store) IngestFiles(paths []string, workers int) (added, malformed uint64, err error) {
	srcs, closer, err := pipeline.OpenBlockFiles(paths)
	if err != nil {
		return 0, 0, err
	}
	defer closer.Close()
	return st.ingestBlockSources(srcs, workers)
}

func (st *Store) ingestBlockSources(srcs []*pipeline.BlockSource, workers int) (uint64, uint64, error) {
	out, stats, err := pipeline.RunBlockSources(srcs, workers,
		func() *ingestAcc {
			return &ingestAcc{st: st, batch: make([]logfmt.Record, 0, pipeline.BatchSize)}
		},
		func(a *ingestAcc, rec *logfmt.Record) { a.observe(rec) },
		func(dst, src *ingestAcc) { src.flush(); dst.added += src.added },
	)
	out.flush()
	return out.added, stats.Malformed, err
}

// Current returns the latest published snapshot (never nil).
func (st *Store) Current() *Snapshot { return st.snap.Load() }

// Refresh builds a new snapshot now and swaps it in: a fresh engine is
// merged through every shard, each merge running on that shard's
// goroutine after the batches enqueued before the request — so the
// snapshot is a consistent prefix of the ingest stream and no engine is
// ever accessed concurrently. Ingestion keeps flowing on the other
// shards while one shard merges.
func (st *Store) Refresh() (*Snapshot, error) {
	st.refreshMu.Lock()
	defer st.refreshMu.Unlock()
	st.mu.RLock()
	if st.closed {
		st.mu.RUnlock()
		return st.Current(), nil
	}
	fresh, err := core.NewAnalyzerFor(st.cfg.Options, st.cfg.Metrics...)
	if err != nil {
		st.mu.RUnlock()
		return nil, err
	}
	var records uint64
	for _, sh := range st.shards {
		done := make(chan struct{})
		sh.msgs <- shardMsg{op: func(an *core.Analyzer, observed uint64) {
			fresh.Merge(an)
			records += observed
		}, done: done}
		<-done
	}
	st.mu.RUnlock()
	snap := &Snapshot{
		An:      fresh,
		Seq:     st.seq.Add(1),
		Records: records,
		Built:   time.Now(),
	}
	st.snap.Store(snap)
	return snap, nil
}

// Stats reports store counters.
func (st *Store) Stats() Stats {
	snap := st.Current()
	metrics := st.cfg.Metrics
	if metrics == nil {
		metrics = core.AllMetrics()
	}
	return Stats{
		Shards:          len(st.shards),
		Metrics:         metrics,
		Ingested:        st.ingested.Load(),
		SnapshotSeq:     snap.Seq,
		SnapshotRecords: snap.Records,
		SnapshotBuilt:   snap.Built.UTC().Format(time.RFC3339),
	}
}

// Close stops the background builder and the shard goroutines. Add
// becomes a no-op; the last published snapshot keeps serving.
func (st *Store) Close() {
	st.mu.Lock()
	if st.closed {
		st.mu.Unlock()
		return
	}
	st.closed = true
	close(st.stop)
	for _, sh := range st.shards {
		close(sh.msgs)
	}
	st.mu.Unlock()
	st.wg.Wait()
}
