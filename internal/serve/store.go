// Package serve turns the batch metric engine into a continuously
// running service: a sharded live store ingests log records while an
// immutable snapshot layer serves every experiment of the paper's
// evaluation over HTTP (see Server).
//
// Architecture: N hash-partitioned shards, each a single goroutine that
// owns one timewin.Partition — a ring of per-time-bucket core engines
// plus a frozen all-time tail — and drains a channel of record batches,
// so ingestion is lock-free and never blocks queries. Snapshots are
// built copy-on-swap: a fresh engine is merged through every shard —
// each merge runs on the shard's own goroutine, between its batches, so
// engines are never touched concurrently — and the result is atomically
// swapped into place. Queries always read a consistent point-in-time
// engine and never take a lock. Range queries (Store.Range,
// Store.RangeSeries) reuse the same shard-op machinery to merge only the
// buckets a time window covers into a transient engine.
package serve

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"syriafilter/internal/core"
	"syriafilter/internal/logfmt"
	"syriafilter/internal/obs"
	"syriafilter/internal/obs/trace"
	"syriafilter/internal/pipeline"
	"syriafilter/internal/stats"
	"syriafilter/internal/timewin"
)

// Config configures a Store.
type Config struct {
	// Options configures every shard engine (and snapshot engines).
	Options core.Options
	// Metrics restricts shards to a metric-module subset (nil = every
	// module); derive it with core.ModulesFor to serve fewer experiments
	// more cheaply.
	Metrics []string
	// Shards is the number of engine shards. <= 0 picks GOMAXPROCS,
	// capped at 16.
	Shards int
	// SnapshotEvery rebuilds the read snapshot in the background at this
	// period. 0 disables the background builder: snapshots happen only
	// through Refresh.
	SnapshotEvery time.Duration
	// Bucket is the time-partition width of every shard's bucket ring
	// (see internal/timewin). <= 0 picks one hour.
	Bucket time.Duration
	// Retain is the retention horizon: buckets older than the newest
	// bucket by more than this are compacted into the frozen all-time
	// tail, bounding live memory. 0 keeps every bucket live.
	Retain time.Duration
	// AddTimeout bounds how long Add may block on a full shard queue
	// before shedding the rest of the call with ErrOverloaded (the HTTP
	// ingest path maps it to 429 + Retry-After). One stalled shard then
	// costs at most one deadline per ingest call instead of hanging
	// every handler forever. 0 picks DefaultAddTimeout; negative blocks
	// forever (the pre-shedding behavior).
	AddTimeout time.Duration
	// KeepGenerations is how many checkpoint generations Checkpoint
	// leaves on disk (the current one included). Restore falls back one
	// generation at a time when the newest is corrupt, so anything
	// below 2 turns a damaged generation into a cold boot. 0 picks
	// DefaultKeepGenerations.
	KeepGenerations int
	// Logger receives restore-fallback and other rare operational
	// warnings. nil logs nothing.
	Logger *slog.Logger
	// Registry receives the store's metrics. nil builds a fresh registry
	// (reachable via Store.Registry). One store per registry: a second
	// store would overwrite the first's sampled series.
	Registry *obs.Registry
	// DisableObs turns off all instrumentation: no registry, nil metric
	// objects (whose methods are no-ops), no per-block hooks. This is
	// the benchmark baseline, not an expected production setting.
	DisableObs bool
	// Tracer, when non-nil, spans every store operation that a request
	// can wait on — shard enqueue, per-shard apply, range merges,
	// snapshot cuts, checkpoint writes — into the request's trace (or a
	// background trace for periodic work). nil disables tracing at zero
	// cost: every span call is a nil-receiver no-op.
	Tracer *trace.Tracer
}

// Snapshot is one immutable point-in-time view of the store. Its
// analyzer is never written after publication, so any number of queries
// may read it concurrently.
type Snapshot struct {
	An *core.Analyzer
	// Seq increments with every rebuild (0 = the boot-time empty view).
	Seq uint64
	// Records is the number of records folded into this snapshot.
	Records uint64
	// Built is the snapshot's build time.
	Built time.Time
	// Timewin is the bucket layout (per-bucket record counts and the
	// compacted tail span, aggregated across shards) at build time.
	Timewin timewin.Meta
}

// Stats summarizes a Store for monitoring. IngestedBytes and
// IngestMBPerS only cover the block ingest paths (IngestBlocks,
// IngestFiles, POST /v1/ingest); records delivered through Add or
// IngestScanner have no byte representation to count. IngestMBPerS is
// a windowed rate — bytes over the last ~10 seconds — so it reads the
// daemon's current load, not a lifetime average diluted by idle time.
// Timewin is the bucket layout of the latest snapshot. Obs is the full
// metric registry snapshot (the JSON face of GET /metrics); absent
// when the store runs with DisableObs.
type Stats struct {
	Shards          int      `json:"shards"`
	Metrics         []string `json:"metrics"`
	Ingested        uint64   `json:"ingested"`
	SnapshotSeq     uint64   `json:"snapshot_seq"`
	SnapshotRecords uint64   `json:"snapshot_records"`
	SnapshotBuilt   string   `json:"snapshot_built"`
	// UptimeS and SnapshotAgeS separate "the process just started" from
	// "the snapshot is stale": a daemon restarted a minute ago off a
	// 6-hour-old checkpoint shows uptime_s=60 with a fresh snapshot,
	// while checkpoint_age_s says how much a crash right now would lose.
	UptimeS      int64 `json:"uptime_s"`
	SnapshotAgeS int64 `json:"snapshot_age_s"`
	// CheckpointAgeS is the age of the last written or restored
	// checkpoint, -1 when none exists yet.
	CheckpointAgeS       int64          `json:"checkpoint_age_s"`
	CheckpointBytes      int64          `json:"checkpoint_bytes,omitempty"`
	CheckpointGeneration string         `json:"checkpoint_generation,omitempty"`
	IngestedBytes        uint64         `json:"ingested_bytes"`
	IngestMBPerS         float64        `json:"ingest_mb_per_s"`
	Timewin              timewin.Meta   `json:"timewin"`
	Obs                  map[string]any `json:"obs,omitempty"`
	// Build identifies the running binary (version, Go toolchain, VCS
	// revision) so a stats scrape is attributable to a deploy.
	Build obs.Build `json:"build"`
	// Trace summarizes the flight recorder (retention counters, slow
	// threshold); absent when the store runs without a Tracer.
	Trace *trace.RecorderStats `json:"trace,omitempty"`
}

// shardMsg is one unit of shard work: either a batch to observe or a
// control op to run between batches (snapshot merges, checkpoint writes
// and restore folds use ops, so they serialize with ingestion without
// any engine lock). Ops receive the shard's observed-record counter by
// pointer: readers report it, restore folds bump it.
type shardMsg struct {
	batch []logfmt.Record
	op    func(p *timewin.Partition, observed *uint64)
	done  chan struct{}
	// span, when non-nil, covers this message's life on the shard: it
	// was started at enqueue time, gets a "dequeued" event when the
	// shard goroutine picks it up (so queue wait and apply time are
	// separable in the trace) and ends after the batch or op ran. The
	// span belongs to the enqueuer's trace; Span is safe to touch from
	// the shard goroutine.
	span *trace.Span
}

type shard struct {
	msgs chan shardMsg
}

func (s *shard) loop(p *timewin.Partition, wg *sync.WaitGroup) {
	defer wg.Done()
	var observed uint64
	for m := range s.msgs {
		m.span.Event("dequeued")
		if m.op != nil {
			m.op(p, &observed)
			close(m.done)
			m.span.End()
			continue
		}
		for i := range m.batch {
			p.Observe(&m.batch[i])
		}
		observed += uint64(len(m.batch))
		m.span.SetAttrs(trace.Int("records", int64(len(m.batch))))
		m.span.End()
	}
}

// shardQueue is the per-shard batch buffer: enough to keep shards busy,
// small enough that Add exerts backpressure instead of buffering
// unboundedly.
const shardQueue = 8

// DefaultAddTimeout is how long Add blocks on a full shard queue before
// shedding (Config.AddTimeout = 0). Generous: healthy shards drain a
// batch in microseconds, so reaching it means a shard is genuinely
// stalled, not briefly busy.
const DefaultAddTimeout = 10 * time.Second

// DefaultKeepGenerations is how many checkpoint generations survive
// pruning (Config.KeepGenerations = 0): the current one plus one
// fallback for Restore to walk to when the newest is damaged.
const DefaultKeepGenerations = 2

// ErrOverloaded reports an Add that shed load: a shard queue stayed
// full past the configured deadline. Some batches of the call may have
// been enqueued (the returned count says how many records); the rest
// were dropped. Callers should back off and retry.
var ErrOverloaded = errors.New("serve: store overloaded (shard queue full past deadline)")

// Store is the sharded live store. See the package comment for the
// concurrency design.
type Store struct {
	cfg        Config
	bucketSecs int64
	addTimeout time.Duration // 0 = never shed
	keepGens   int
	logger     *slog.Logger
	shards     []*shard
	start      time.Time

	snap      atomic.Pointer[Snapshot]
	seq       atomic.Uint64
	ingested  atomic.Uint64
	refreshMu sync.Mutex // serializes snapshot builds

	syncMu sync.Mutex    // guards syncCh rotation
	syncCh chan struct{} // closed and replaced at every snapshot publish

	ingestedBytes atomic.Uint64   // raw log bytes through the block paths
	rate          *obs.RateWindow // windowed byte rate behind ingest_mb_per_s

	reg       *obs.Registry      // nil when DisableObs
	obsm      storeMetrics       // zero value (all no-ops) when DisableObs
	blockObs  *pipeline.BlockObs // nil when DisableObs
	tracer    *trace.Tracer      // nil = tracing disabled
	restoring atomic.Bool        // a checkpoint restore is in flight

	// rangeStall, when non-nil, runs inside every range shard op before
	// the merge — a test hook for injecting per-shard latency so trace
	// attribution can be pinned without depending on real load.
	rangeStall func(shard int)

	ckptSeq  atomic.Uint64                  // checkpoint generation counter
	lastCkpt atomic.Pointer[CheckpointInfo] // most recent written or restored checkpoint
	ckptMu   sync.Mutex                     // serializes Checkpoint runs

	mu     sync.RWMutex // guards closed vs. in-flight sends
	closed bool

	wg   sync.WaitGroup
	stop chan struct{}
}

// NewStore builds the shards and starts their goroutines (plus the
// background snapshot builder when Config.SnapshotEvery is set). The
// initial snapshot is an empty view, so queries work immediately.
func NewStore(cfg Config) (*Store, error) {
	if cfg.Shards <= 0 {
		cfg.Shards = runtime.GOMAXPROCS(0)
		if cfg.Shards > 16 {
			cfg.Shards = 16
		}
	}
	if cfg.Bucket <= 0 {
		cfg.Bucket = time.Hour
	}
	addTimeout := cfg.AddTimeout
	switch {
	case addTimeout == 0:
		addTimeout = DefaultAddTimeout
	case addTimeout < 0:
		addTimeout = 0 // block forever
	}
	keepGens := cfg.KeepGenerations
	if keepGens <= 0 {
		keepGens = DefaultKeepGenerations
	}
	logger := cfg.Logger
	if logger == nil {
		logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	st := &Store{cfg: cfg, bucketSecs: int64(cfg.Bucket / time.Second), addTimeout: addTimeout,
		keepGens: keepGens, logger: logger, start: time.Now(), stop: make(chan struct{}),
		syncCh: make(chan struct{}), rate: &obs.RateWindow{}, tracer: cfg.Tracer}
	var twObs *timewin.PartitionObs
	if !cfg.DisableObs {
		st.reg = cfg.Registry
		if st.reg == nil {
			st.reg = obs.NewRegistry()
		}
		st.obsm = newStoreMetrics(st.reg)
		st.blockObs = st.blockObsHook()
		twObs = st.partitionObsHook()
	}
	var retainBuckets int64
	for i := 0; i < cfg.Shards; i++ {
		p, err := timewin.New(timewin.Config{
			Options: cfg.Options,
			Metrics: cfg.Metrics,
			Bucket:  cfg.Bucket,
			Retain:  cfg.Retain,
			Obs:     twObs,
		})
		if err != nil {
			for _, sh := range st.shards {
				close(sh.msgs)
			}
			return nil, err
		}
		retainBuckets = p.RetainBuckets()
		sh := &shard{msgs: make(chan shardMsg, shardQueue)}
		st.shards = append(st.shards, sh)
		st.wg.Add(1)
		go sh.loop(p, &st.wg)
	}
	empty, err := core.NewAnalyzerFor(cfg.Options, cfg.Metrics...)
	if err != nil {
		st.Close()
		return nil, err
	}
	st.snap.Store(&Snapshot{An: empty, Built: time.Now(), Timewin: timewin.Meta{
		BucketSeconds: st.bucketSecs,
		RetainBuckets: int(retainBuckets),
	}})
	if st.reg != nil {
		st.registerObsFuncs(st.reg)
		obs.RegisterRuntime(st.reg)
	}
	if cfg.SnapshotEvery > 0 {
		st.wg.Add(1)
		go st.refreshLoop(cfg.SnapshotEvery)
	}
	return st, nil
}

func (st *Store) refreshLoop(every time.Duration) {
	defer st.wg.Done()
	tick := time.NewTicker(every)
	defer tick.Stop()
	for {
		select {
		case <-st.stop:
			return
		case <-tick.C:
			st.Refresh()
		}
	}
}

// shardKey routes a record to its shard: hashing client and host keeps
// related records together while distributing both dimensions.
func shardKey(rec *logfmt.Record) uint64 {
	return stats.Hash64(rec.ClientIP) ^ stats.Hash64(rec.Host)
}

// Add routes records to their shards and blocks until every batch is
// enqueued — backpressure under overload, bounded by the configured
// AddTimeout: if a shard queue stays full past the deadline the call
// sheds the remaining batches and returns ErrOverloaded, so one
// stalled shard cannot hang every ingest path forever. The deadline
// covers the whole call, not each shard. Records are copied, so the
// caller may reuse recs. Returns the records actually enqueued (all of
// them when err is nil, 0 with ErrClosed after Close). On
// ErrOverloaded the enqueued count is exact but the enqueued SET is
// not an input-order prefix: records bucket by shard hash, and the
// accepted buckets are whichever enqueued before the stalled one —
// callers must treat a shed batch as indivisible (see handleIngest).
func (st *Store) Add(recs []logfmt.Record) (uint64, error) {
	return st.add(recs, nil)
}

// AddCtx is Add carried inside a traced request: when ctx holds a span
// the enqueue wait, the shed decision and each per-shard apply become
// child spans of it (the apply span covers queue wait plus fold, with a
// "dequeued" event separating them).
func (st *Store) AddCtx(ctx context.Context, recs []logfmt.Record) (uint64, error) {
	return st.add(recs, trace.FromContext(ctx))
}

func (st *Store) add(recs []logfmt.Record, sp *trace.Span) (uint64, error) {
	if len(recs) == 0 {
		return 0, nil
	}
	st.mu.RLock()
	defer st.mu.RUnlock()
	if st.closed {
		return 0, ErrClosed
	}
	n := uint64(len(st.shards))
	buckets := make([][]logfmt.Record, n)
	for i := range recs {
		b := shardKey(&recs[i]) % n
		buckets[b] = append(buckets[b], recs[i])
	}
	// Backpressure visibility: the fast path (queue has room) records a
	// zero wait, the contended path times the blocking send. One lazily
	// armed timer bounds the sum of every blocking send in this call.
	var deadline <-chan time.Time
	var added uint64
	for i, b := range buckets {
		if len(b) == 0 {
			continue
		}
		msg := shardMsg{batch: b}
		if sp != nil {
			msg.span = sp.Child("shard.apply")
			msg.span.SetAttrs(trace.Int("shard", int64(i)))
		}
		select {
		case st.shards[i].msgs <- msg:
			st.obsm.backpressure.Observe(0)
			added += uint64(len(b))
			continue
		default:
		}
		if st.addTimeout > 0 && deadline == nil {
			timer := time.NewTimer(st.addTimeout)
			defer timer.Stop()
			deadline = timer.C
		}
		wait := sp.Child("enqueue.wait")
		wait.SetAttrs(trace.Int("shard", int64(i)))
		t0 := time.Now()
		select {
		case st.shards[i].msgs <- msg:
			st.obsm.backpressure.Observe(time.Since(t0).Seconds())
			wait.End()
			added += uint64(len(b))
		case <-deadline: // nil (never ready) when shedding is disabled
			st.obsm.backpressure.Observe(time.Since(t0).Seconds())
			st.obsm.shed.Inc()
			st.ingested.Add(added)
			err := fmt.Errorf("%w: shard %d after %v (%d of %d records enqueued)",
				ErrOverloaded, i, st.addTimeout, added, len(recs))
			wait.Fail(err)
			wait.End()
			// The apply span was started but its message never enqueued:
			// close it here or the trace would never publish.
			msg.span.Fail(err)
			msg.span.End()
			return added, err
		}
	}
	st.ingested.Add(added)
	return added, nil
}

// IngestScanner drains sc into the store in pipeline.BatchSize chunks,
// returning the number of records added and the scanner's terminal
// error. Parsing happens on the calling goroutine; prefer IngestBlocks /
// IngestFiles, which spread it across a worker pool.
func (st *Store) IngestScanner(sc pipeline.Scanner) (uint64, error) {
	var added uint64
	batch := make([]logfmt.Record, 0, pipeline.BatchSize)
	for {
		rec, ok := sc.Next()
		if !ok {
			break
		}
		batch = append(batch, *rec)
		if len(batch) == pipeline.BatchSize {
			n, err := st.Add(batch)
			added += n
			if err != nil {
				return added, err
			}
			batch = batch[:0]
		}
	}
	n, err := st.Add(batch)
	added += n
	if err != nil {
		return added, err
	}
	return added, sc.Err()
}

// ingestAcc is the per-worker accumulator of the block ingest path: it
// buffers parsed records and flushes them into the sharded store in
// pipeline.BatchSize chunks. Field strings of buffered records alias the
// block strings ParseBlock produced, which stay valid for good.
type ingestAcc struct {
	st    *Store
	sp    *trace.Span // the request span batches attach to (nil untraced)
	batch []logfmt.Record
	added uint64
	err   error // sticky: first Add failure; later records are dropped
}

func (a *ingestAcc) observe(rec *logfmt.Record) {
	if a.err != nil {
		return // shedding: stop buffering, the call is already failed
	}
	a.batch = append(a.batch, *rec)
	if len(a.batch) == pipeline.BatchSize {
		a.flush()
	}
}

func (a *ingestAcc) flush() {
	if len(a.batch) > 0 && a.err == nil {
		n, err := a.st.add(a.batch, a.sp)
		a.added += n
		a.err = err
		a.batch = a.batch[:0]
	}
}

// IngestBlocks drains a block stream into the store with a parse worker
// pool (workers <= 0 uses GOMAXPROCS): line splitting and parsing run
// concurrently instead of on the calling goroutine, so a fat POST body
// or log file no longer decodes on one core. Returns the records added,
// the malformed lines skipped, and the stream's terminal error. On an
// ErrOverloaded shed, added counts an unspecified subset of the
// stream: each worker's sticky error stops only that worker's
// accumulator, so records after the drop point may still have been
// accepted by other workers — the batch is not resumable from added.
func (st *Store) IngestBlocks(br *logfmt.BlockReader, workers int) (added, malformed uint64, err error) {
	return st.ingestBlockSources([]*pipeline.BlockSource{{R: br}}, workers, nil)
}

// IngestBlocksCtx is IngestBlocks carried inside a traced request: the
// block pipeline (read + parse stages, aggregated) and each shard
// enqueue/apply become child spans of the span ctx carries.
func (st *Store) IngestBlocksCtx(ctx context.Context, br *logfmt.BlockReader, workers int) (added, malformed uint64, err error) {
	return st.ingestBlockSources([]*pipeline.BlockSource{{R: br}}, workers, trace.FromContext(ctx))
}

// IngestFiles block-ingests every path (gzip-transparent): one block
// reader goroutine per file, all feeding the shared parse pool.
func (st *Store) IngestFiles(paths []string, workers int) (added, malformed uint64, err error) {
	return st.IngestFilesCtx(context.Background(), paths, workers)
}

// IngestFilesCtx is IngestFiles under a traced context (see
// IngestBlocksCtx).
func (st *Store) IngestFilesCtx(ctx context.Context, paths []string, workers int) (added, malformed uint64, err error) {
	srcs, closer, err := pipeline.OpenBlockFiles(paths)
	if err != nil {
		return 0, 0, err
	}
	defer closer.Close()
	return st.ingestBlockSources(srcs, workers, trace.FromContext(ctx))
}

func (st *Store) ingestBlockSources(srcs []*pipeline.BlockSource, workers int, sp *trace.Span) (uint64, uint64, error) {
	// When traced, wrap the store's block hook so the pipeline's two
	// stages (reading bytes vs parsing them) aggregate into one
	// "pipeline.blocks" child span — per-block spans would drown the
	// trace, per-stage totals are what attribution needs.
	bobs := st.blockObs
	psp := sp.Child("pipeline.blocks")
	var parseNS, readNS atomic.Int64
	if psp != nil {
		inner := st.blockObs
		bobs = &pipeline.BlockObs{
			OnBlock: func(blk pipeline.BlockStats, seconds float64) {
				parseNS.Add(int64(seconds * 1e9))
				if inner != nil && inner.OnBlock != nil {
					inner.OnBlock(blk, seconds)
				}
			},
			OnRead: func(n int, seconds float64) {
				readNS.Add(int64(seconds * 1e9))
				if inner != nil && inner.OnRead != nil {
					inner.OnRead(n, seconds)
				}
			},
		}
	}
	out, stats, err := pipeline.RunBlockSourcesObs(srcs, workers, bobs,
		func() *ingestAcc {
			return &ingestAcc{st: st, sp: sp, batch: make([]logfmt.Record, 0, pipeline.BatchSize)}
		},
		func(a *ingestAcc, rec *logfmt.Record) { a.observe(rec) },
		func(dst, src *ingestAcc) {
			src.flush()
			dst.added += src.added
			if dst.err == nil {
				dst.err = src.err
			}
		},
	)
	out.flush()
	st.ingestedBytes.Add(stats.Bytes)
	if st.blockObs == nil {
		// Uninstrumented stores still get a (coarser, per-call) windowed
		// rate so /v1/stats stays meaningful.
		st.rate.Add(stats.Bytes)
	}
	// A store-side failure (shedding, closed) outranks the stream error:
	// it is what the caller must react to (back off, retry).
	if out.err != nil {
		err = out.err
	}
	if psp != nil {
		psp.SetAttrs(
			trace.Int("records", int64(stats.Records)),
			trace.Int("malformed", int64(stats.Malformed)),
			trace.Int("bytes", int64(stats.Bytes)),
			trace.Float("read_s", float64(readNS.Load())/1e9),
			trace.Float("parse_s", float64(parseNS.Load())/1e9),
		)
		psp.Fail(err)
		psp.End()
	}
	return out.added, stats.Malformed, err
}

// Current returns the latest published snapshot (never nil).
func (st *Store) Current() *Snapshot { return st.snap.Load() }

// Refresh builds a new snapshot now and swaps it in: a fresh engine is
// merged through every shard, each merge running on that shard's
// goroutine after the batches enqueued before the request — so the
// snapshot is a consistent prefix of the ingest stream and no engine is
// ever accessed concurrently. Ingestion keeps flowing on the other
// shards while one shard merges.
func (st *Store) Refresh() (*Snapshot, error) {
	return st.RefreshCtx(context.Background())
}

// RefreshCtx is Refresh inside a traced context: each shard's merge
// becomes a "snapshot.shard" child span. Without a span in ctx the cut
// is traced as its own background "snapshot.cut" trace (when the store
// has a tracer), so periodic snapshot cost shows up in the flight
// recorder too.
//
// RefreshCtx is change-aware: when no records arrived since the
// published snapshot it returns that snapshot without rebuilding, so
// Seq moves only when the folded state can differ. That property is
// what keeps the rendered-doc cache hot and /v1/sync long-polls parked
// across idle background refresh ticks (and makes ?fresh=1 polling
// nearly free on an idle daemon) — but it also means a skipped Refresh
// does not touch Built: snapshot_age_s measures time since the data
// last changed, not since the last Refresh call.
func (st *Store) RefreshCtx(ctx context.Context) (*Snapshot, error) {
	st.refreshMu.Lock()
	defer st.refreshMu.Unlock()
	st.mu.RLock()
	if st.closed {
		st.mu.RUnlock()
		return st.Current(), nil
	}
	// Change detection: one cheap op round summing the shards' observed
	// counters. Counters only grow and each shard's op runs after every
	// batch enqueued before it, so an unchanged total proves the shard
	// streams are at the same prefix the snapshot folded. Seq 0 (the
	// boot-time empty view) always rebuilds: a restore folds records
	// without publishing, and callers use the first Refresh to surface
	// them.
	if cur := st.Current(); cur.Seq > 0 {
		var total uint64
		for _, sh := range st.shards {
			done := make(chan struct{})
			sh.msgs <- shardMsg{op: func(_ *timewin.Partition, observed *uint64) {
				total += *observed
			}, done: done}
			<-done
		}
		if total == cur.Records {
			st.mu.RUnlock()
			st.obsm.snapshotSkips.Inc()
			return cur, nil
		}
	}
	fresh, err := core.NewAnalyzerFor(st.cfg.Options, st.cfg.Metrics...)
	if err != nil {
		st.mu.RUnlock()
		return nil, err
	}
	sp := trace.FromContext(ctx)
	cut := sp.Child("snapshot.cut")
	if sp == nil {
		cut = st.tracer.Root("snapshot.cut")
	}
	t0 := time.Now()
	var records uint64
	var meta timewin.Meta
	for i, sh := range st.shards {
		done := make(chan struct{})
		ssp := cut.Child("snapshot.shard")
		ssp.SetAttrs(trace.Int("shard", int64(i)))
		sh.msgs <- shardMsg{op: func(p *timewin.Partition, observed *uint64) {
			p.AllInto(fresh.Engine)
			timewin.MergeMeta(&meta, p.Meta())
			records += *observed
		}, done: done, span: ssp}
		<-done
	}
	st.mu.RUnlock()
	cut.SetAttrs(trace.Int("records", int64(records)))
	cut.End()
	snap := &Snapshot{
		An:      fresh,
		Seq:     st.seq.Add(1),
		Records: records,
		Built:   time.Now(),
		Timewin: meta,
	}
	st.snap.Store(snap)
	st.wakeSync()
	st.obsm.snapshots.Inc()
	st.obsm.snapshotSeconds.Observe(time.Since(t0).Seconds())
	return snap, nil
}

// wakeSync rotates the change-signal channel and closes the old one,
// waking every parked ChangeSignal waiter. Called after every snapshot
// publish (the new snapshot is visible to Current before the close, so
// a waiter that re-checks on wakeup always observes the change).
func (st *Store) wakeSync() {
	st.syncMu.Lock()
	ch := st.syncCh
	st.syncCh = make(chan struct{})
	st.syncMu.Unlock()
	close(ch)
}

// ChangeSignal returns a channel closed at the next snapshot publish.
// Waiters must re-fetch it after every wakeup (each publish rotates
// the channel), and must fetch it *before* reading Current: publish
// stores the snapshot first and closes the channel second, so
// fetch-then-check can never miss a change.
func (st *Store) ChangeSignal() <-chan struct{} {
	st.syncMu.Lock()
	defer st.syncMu.Unlock()
	return st.syncCh
}

// Done returns a channel closed when the store shuts down, so parked
// long-polls can bail out instead of stalling Close.
func (st *Store) Done() <-chan struct{} { return st.stop }

// Registry returns the store's metric registry (nil with DisableObs).
// Serve it at GET /metrics; Server does this automatically.
func (st *Store) Registry() *obs.Registry { return st.reg }

// Restoring reports whether a checkpoint restore is in flight — the
// store answers queries (against whatever is already folded) but a
// readiness probe should report not-ready.
func (st *Store) Restoring() bool { return st.restoring.Load() }

// ErrClosed is returned by range queries against a closed store (the
// last published snapshot keeps serving all-time queries, but the shard
// partitions that range queries merge from are gone).
var ErrClosed = errors.New("serve: store is closed")

// shardOps runs op on every shard goroutine, one shard at a time (each
// op observes that shard's state at its current stream position, like
// Refresh). Returns ErrClosed on a closed store.
func (st *Store) shardOps(op func(p *timewin.Partition, observed *uint64)) error {
	return st.shardOpsSpan(nil, "", func(_ int, _ *trace.Span, p *timewin.Partition, observed *uint64) {
		op(p, observed)
	})
}

// shardOpsSpan is shardOps under a parent span: when sp is non-nil each
// shard's op gets a child span named name (attrs: shard index) that
// covers queue wait plus execution, with a "dequeued" event at pickup —
// the per-shard attribution a slow query trace needs. The op receives
// its shard's child span (nil untraced) to attach result attrs.
func (st *Store) shardOpsSpan(sp *trace.Span, name string, op func(shard int, sp *trace.Span, p *timewin.Partition, observed *uint64)) error {
	st.mu.RLock()
	defer st.mu.RUnlock()
	if st.closed {
		return ErrClosed
	}
	for i, sh := range st.shards {
		i := i
		done := make(chan struct{})
		var child *trace.Span
		if sp != nil {
			child = sp.Child(name)
			child.SetAttrs(trace.Int("shard", int64(i)))
		}
		sh.msgs <- shardMsg{op: func(p *timewin.Partition, observed *uint64) {
			op(i, child, p, observed)
		}, done: done, span: child}
		<-done
	}
	return nil
}

// Range merges every bucket the window covers — across all shards —
// into a transient analyzer, the clone-and-Merge query primitive of
// internal/timewin lifted to the sharded store. The zero window is the
// exact all-time view (tail included); a window that begins inside the
// compacted tail fails with *timewin.RetentionError.
func (st *Store) Range(w timewin.Window) (*core.Analyzer, timewin.Coverage, error) {
	return st.RangeCtx(context.Background(), w)
}

// RangeCtx is Range inside a traced request: each shard's bucket merge
// becomes a "range.shard" child span carrying the shard index and the
// buckets/records it merged, so a slow range query's trace shows which
// shard (and which stage — queue wait vs merge) ate the time.
func (st *Store) RangeCtx(ctx context.Context, w timewin.Window) (*core.Analyzer, timewin.Coverage, error) {
	fresh, err := core.NewAnalyzerFor(st.cfg.Options, st.cfg.Metrics...)
	if err != nil {
		return nil, timewin.Coverage{}, err
	}
	var cov timewin.Coverage
	var rerr error
	err = st.shardOpsSpan(trace.FromContext(ctx), "range.shard", func(shard int, ssp *trace.Span, p *timewin.Partition, _ *uint64) {
		if st.rangeStall != nil {
			st.rangeStall(shard)
		}
		c, err := p.RangeInto(fresh.Engine, w)
		if err != nil {
			ssp.Fail(err)
			if rerr == nil {
				rerr = err
			}
			return
		}
		ssp.SetAttrs(trace.Int("buckets", int64(c.Buckets)), trace.Int("records", int64(c.Records)))
		cov.Extend(c)
	})
	if err == nil {
		err = rerr
	}
	if err != nil {
		return nil, cov, err
	}
	return fresh, cov, nil
}

// RangeWindow is one sub-window of a RangeSeries result.
type RangeWindow struct {
	Window   timewin.Window
	Coverage timewin.Coverage
	An       *core.Analyzer
}

// maxSeriesWindows bounds a single series query; each window costs one
// transient engine per sub-window plus a merge per covered bucket.
const maxSeriesWindows = 1024

// RangeSeries splits [w.From, w.To) into step-sized sub-windows and
// merges each one's buckets into its own transient analyzer, in a
// single pass over the shards. step must be a positive multiple of the
// bucket width so sub-windows align with bucket edges (an explicit From
// is aligned down, an explicit To aligned up). Open bounds default to
// the live ring: an open From starts at the oldest bucket live in
// *every* shard (the compacted tail cannot be split into sub-windows),
// an open To ends after the newest. An explicit From inside the tail
// fails with *timewin.RetentionError.
func (st *Store) RangeSeries(w timewin.Window, step int64) ([]RangeWindow, error) {
	return st.RangeSeriesCtx(context.Background(), w, step)
}

// RangeSeriesCtx is RangeSeries inside a traced request; per-shard
// merges span exactly like RangeCtx (one "range.shard" child per shard
// covers all that shard's sub-window merges).
func (st *Store) RangeSeriesCtx(ctx context.Context, w timewin.Window, step int64) ([]RangeWindow, error) {
	if step <= 0 || step%st.bucketSecs != 0 {
		return nil, fmt.Errorf("serve: step must be a positive multiple of the bucket width (%ds)", st.bucketSecs)
	}
	meta, err := st.liveMeta()
	if err != nil {
		return nil, err
	}
	if len(meta.Buckets) == 0 {
		return nil, nil
	}
	from := w.From
	if from == 0 {
		from = meta.Buckets[0].StartUnix
		// Shard retention horizons can skew by a bucket mid-stream (a
		// shard compacts only when *it* sees the newest bucket); start
		// at the most advanced tail so no sub-window dips into any
		// shard's compacted span. MergeMeta keeps the max tail end.
		if meta.TailToUnix > from {
			from = meta.TailToUnix
		}
	} else {
		from -= ((from % st.bucketSecs) + st.bucketSecs) % st.bucketSecs // align down to a bucket edge
	}
	to := w.To
	if to == 0 {
		to = meta.Buckets[len(meta.Buckets)-1].StartUnix + st.bucketSecs
	} else if rem := ((to % st.bucketSecs) + st.bucketSecs) % st.bucketSecs; rem != 0 {
		to += st.bucketSecs - rem // align up: buckets are atomic, so the
		// last window's reported bounds must include the whole bucket it merges
	}
	if to <= from {
		return nil, fmt.Errorf("serve: empty range %s", timewin.Window{From: from, To: to})
	}
	if n := (to - from + step - 1) / step; n > maxSeriesWindows {
		return nil, fmt.Errorf("serve: range %s at step %ds is %d windows (max %d); widen the step",
			timewin.Window{From: w.From, To: w.To}, step, n, maxSeriesWindows)
	}
	var wins []RangeWindow
	for s := from; s < to; s += step {
		e := s + step
		if e > to {
			e = to
		}
		an, err := core.NewAnalyzerFor(st.cfg.Options, st.cfg.Metrics...)
		if err != nil {
			return nil, err
		}
		wins = append(wins, RangeWindow{Window: timewin.Window{From: s, To: e}, An: an})
	}
	var rerr error
	err = st.shardOpsSpan(trace.FromContext(ctx), "range.shard", func(shard int, ssp *trace.Span, p *timewin.Partition, _ *uint64) {
		if st.rangeStall != nil {
			st.rangeStall(shard)
		}
		var buckets, records int64
		for i := range wins {
			c, err := p.RangeInto(wins[i].An.Engine, wins[i].Window)
			if err != nil {
				ssp.Fail(err)
				if rerr == nil {
					rerr = err
				}
				return
			}
			buckets += int64(c.Buckets)
			records += int64(c.Records)
			wins[i].Coverage.Extend(c)
		}
		ssp.SetAttrs(trace.Int("buckets", buckets), trace.Int("records", records))
	})
	if err == nil {
		err = rerr
	}
	if err != nil {
		return nil, err
	}
	return wins, nil
}

// liveMeta aggregates the current bucket layout across shards (the
// snapshot's Timewin field is the same thing frozen at build time).
func (st *Store) liveMeta() (timewin.Meta, error) {
	var meta timewin.Meta
	err := st.shardOps(func(p *timewin.Partition, _ *uint64) {
		timewin.MergeMeta(&meta, p.Meta())
	})
	return meta, err
}

// Stats reports store counters.
func (st *Store) Stats() Stats {
	snap := st.Current()
	metrics := st.cfg.Metrics
	if metrics == nil {
		metrics = core.AllMetrics()
	}
	bytes := st.ingestedBytes.Load()
	// Windowed rate: block-ingest bytes over the last ~10 seconds. An
	// idle daemon reads 0 no matter how much it ingested at boot.
	mbps := math.Round(st.rate.Rate(10)/1e6*100) / 100
	out := Stats{
		Shards:          len(st.shards),
		Metrics:         metrics,
		Ingested:        st.ingested.Load(),
		SnapshotSeq:     snap.Seq,
		SnapshotRecords: snap.Records,
		SnapshotBuilt:   snap.Built.UTC().Format(time.RFC3339),
		UptimeS:         int64(time.Since(st.start).Seconds()),
		SnapshotAgeS:    int64(time.Since(snap.Built).Seconds()),
		CheckpointAgeS:  -1,
		IngestedBytes:   bytes,
		IngestMBPerS:    mbps,
		Timewin:         snap.Timewin,
	}
	if ck := st.lastCkpt.Load(); ck != nil {
		out.CheckpointAgeS = int64(time.Since(time.Unix(ck.CreatedUnix, 0)).Seconds())
		out.CheckpointBytes = ck.Bytes
		out.CheckpointGeneration = ck.Generation
	}
	if st.reg != nil {
		out.Obs = st.reg.Snapshot()
	}
	out.Build = obs.ReadBuild()
	if st.tracer != nil {
		ts := st.tracer.Recorder().Stats()
		ts.SlowThresholdMS = float64(st.tracer.Slow()) / float64(time.Millisecond)
		out.Trace = ts
	}
	return out
}

// Tracer returns the store's tracer (nil when tracing is disabled).
func (st *Store) Tracer() *trace.Tracer { return st.tracer }

// Close stops the background builder and the shard goroutines. Add
// becomes a no-op; the last published snapshot keeps serving.
func (st *Store) Close() { st.shutdown(nil) }

// CloseAndCheckpoint closes the store and cuts one final checkpoint
// into dir on the way down, in the only order that cannot lose data:
// new ingestion is rejected first, then the checkpoint ops run on the
// shard goroutines — each shard's channel is FIFO, so every batch
// acked (enqueued) before the close drains into the partition before
// its checkpoint is cut — and only then do the shard goroutines stop.
// This is what makes a graceful SIGTERM in cmd/censord persist
// everything POST /v1/ingest acknowledged.
func (st *Store) CloseAndCheckpoint(dir string) (CheckpointInfo, error) {
	var info CheckpointInfo
	err := ErrClosed
	st.shutdown(func() { info, err = st.checkpoint(dir) })
	return info, err
}

// shutdown marks the store closed (rejecting new Adds), runs the
// optional final op while the shard goroutines are still draining
// their queues, then closes the channels and waits the goroutines out.
func (st *Store) shutdown(final func()) {
	st.mu.Lock()
	if st.closed {
		st.mu.Unlock()
		return
	}
	st.closed = true
	close(st.stop)
	st.mu.Unlock()
	// Between here and closing the channels only ops sent by final can
	// enter the shards: Add and the public op paths check closed, and
	// any send that won the race against closed=true completed while we
	// held the write lock.
	if final != nil {
		final()
	}
	for _, sh := range st.shards {
		close(sh.msgs)
	}
	st.wg.Wait()
}
