package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"syriafilter/internal/render"
)

func decodeSync(t *testing.T, rw *httptest.ResponseRecorder) syncResponse {
	t.Helper()
	if rw.Code != 200 {
		t.Fatalf("sync status %d: %.300s", rw.Code, rw.Body.String())
	}
	var resp syncResponse
	if err := json.Unmarshal(rw.Body.Bytes(), &resp); err != nil {
		t.Fatalf("sync body: %v", err)
	}
	return resp
}

// A zero-token sync against a populated store answers immediately with
// every requested id as a full doc, byte-identical to the GET endpoint.
func TestSyncFullResync(t *testing.T) {
	_, srv := newTestServer(t, 4000)
	resp := decodeSync(t, get(srv, "/v1/sync?ids=table4,fig8"))
	if resp.TimedOut || len(resp.Changed) != 2 {
		t.Fatalf("timed_out=%v changed=%d, want immediate full resync of 2 ids", resp.TimedOut, len(resp.Changed))
	}
	if resp.Next != srv.boot+"."+fmt.Sprint(resp.Seq) {
		t.Errorf("next token %q does not carry the boot nonce and seq", resp.Next)
	}
	for _, ch := range resp.Changed {
		if ch.Full == nil {
			t.Fatalf("%s: zero-token sync must ship the full doc", ch.ID)
		}
		want := get(srv, "/v1/experiments/"+ch.ID).Body.Bytes()
		if !bytes.Equal(ch.Full, bytes.TrimSuffix(want, []byte("\n"))) {
			t.Errorf("%s: sync full doc differs from GET body", ch.ID)
		}
	}
}

// A sync at the current token with new data arriving mid-park wakes on
// the snapshot cut — well before the timeout — and reports only what
// changed.
func TestSyncLongPollWakeup(t *testing.T) {
	f := corpus(t)
	store, srv := newTestServer(t, 4000)
	token := fmt.Sprint(store.Current().Seq)

	done := make(chan syncResponse, 1)
	start := time.Now()
	go func() {
		rw := get(srv, "/v1/sync?ids=table4&timeout=30s&since="+token)
		var resp syncResponse
		json.Unmarshal(rw.Body.Bytes(), &resp)
		done <- resp
	}()
	// Give the poll a moment to park, then change the data and cut.
	time.Sleep(50 * time.Millisecond)
	if _, err := store.Add(f.records[4000:8000]); err != nil {
		t.Fatal(err)
	}
	if _, err := store.Refresh(); err != nil {
		t.Fatal(err)
	}
	select {
	case resp := <-done:
		if elapsed := time.Since(start); elapsed > 10*time.Second {
			t.Errorf("wakeup took %v; the poll rode its timeout instead of the cut", elapsed)
		}
		if resp.TimedOut {
			t.Error("woken poll reported timed_out")
		}
		if len(resp.Changed) != 1 || resp.Changed[0].ID != "table4" {
			t.Errorf("changed = %+v, want exactly table4", resp.Changed)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("long-poll never returned after a snapshot cut")
	}
}

// With no change, the poll parks for its full timeout and returns empty
// with the same token.
func TestSyncTimeout(t *testing.T) {
	store, srv := newTestServer(t, 2000)
	token := fmt.Sprint(store.Current().Seq)
	start := time.Now()
	resp := decodeSync(t, get(srv, "/v1/sync?ids=table4&timeout=150ms&since="+token))
	if elapsed := time.Since(start); elapsed < 100*time.Millisecond {
		t.Errorf("poll returned after %v, before its 150ms timeout", elapsed)
	}
	if !resp.TimedOut || len(resp.Changed) != 0 {
		t.Errorf("timed_out=%v changed=%d, want empty timeout response", resp.TimedOut, len(resp.Changed))
	}
	if resp.Seq != store.Current().Seq {
		t.Errorf("timeout response seq %d, want current %d", resp.Seq, store.Current().Seq)
	}
}

// Sequential sync: after one generation of new data, the second sync
// carries the change; when the renderer can diff, it ships a row-level
// delta that is smaller than the full doc.
func TestSyncIncremental(t *testing.T) {
	f := corpus(t)
	store, srv := newTestServer(t, 4000)
	first := decodeSync(t, get(srv, "/v1/sync?ids=table4"))

	if _, err := store.Add(f.records[4000:4200]); err != nil {
		t.Fatal(err)
	}
	if _, err := store.Refresh(); err != nil {
		t.Fatal(err)
	}
	second := decodeSync(t, get(srv, "/v1/sync?ids=table4&since="+first.Next))
	if len(second.Changed) != 1 {
		t.Fatalf("changed = %d, want 1", len(second.Changed))
	}
	ch := second.Changed[0]
	full := get(srv, "/v1/experiments/table4").Body.Bytes()
	switch {
	case ch.Delta != nil:
		var d render.Delta
		if err := json.Unmarshal(ch.Delta, &d); err != nil {
			t.Fatalf("delta does not decode: %v", err)
		}
		if d.ID != "table4" {
			t.Errorf("delta id %q", d.ID)
		}
		if len(ch.Delta) >= len(full) {
			t.Errorf("delta (%d bytes) not smaller than full doc (%d)", len(ch.Delta), len(full))
		}
	case ch.Full != nil:
		if !bytes.Equal(ch.Full, bytes.TrimSuffix(full, []byte("\n"))) {
			t.Error("sync full doc differs from GET body")
		}
	default:
		t.Fatal("change carries neither full nor delta")
	}

	// An unchanged third sync is empty and immediate.
	third := decodeSync(t, get(srv, "/v1/sync?ids=table4&since="+second.Next))
	if len(third.Changed) != 0 {
		t.Errorf("no-op sync reported %d changes", len(third.Changed))
	}
}

// Tokens from another process life (wrong boot nonce) or beyond the
// current generation trigger a full resync, never a park or stale data;
// malformed tokens are 400.
func TestSyncTokenHandling(t *testing.T) {
	_, srv := newTestServer(t, 2000)
	foreign := decodeSync(t, get(srv, "/v1/sync?ids=table4&since=zzzz.7&timeout=10s"))
	if len(foreign.Changed) != 1 || foreign.Changed[0].Full == nil {
		t.Error("foreign-boot token did not trigger an immediate full resync")
	}
	future := decodeSync(t, get(srv, "/v1/sync?ids=table4&since=999999&timeout=10s"))
	if len(future.Changed) != 1 {
		t.Error("future token did not trigger an immediate full resync")
	}
	if rw := get(srv, "/v1/sync?since=notanumber"); rw.Code != 400 {
		t.Errorf("malformed token: status %d, want 400", rw.Code)
	}
	if rw := get(srv, "/v1/sync?timeout=fast"); rw.Code != 400 {
		t.Errorf("malformed timeout: status %d, want 400", rw.Code)
	}
	if rw := get(srv, "/v1/sync?ids=nope"); rw.Code != 404 {
		t.Errorf("unknown id: status %d, want 404", rw.Code)
	}
	if rw := get(srv, "/v1/sync?format=text"); rw.Code != 400 {
		t.Errorf("format=text: status %d, want 400", rw.Code)
	}
}

// Parked polls resolve when the daemon drains: flipping readiness wakes
// them with 503 instead of letting them pin the shutdown deadline, and
// closing the store does the same.
func TestSyncDrainWakeup(t *testing.T) {
	f := corpus(t)
	for _, tc := range []struct {
		name  string
		drain func(*Store, *Readiness)
	}{
		{"readiness-flip", func(_ *Store, r *Readiness) { r.Set("draining") }},
		{"store-close", func(st *Store, _ *Readiness) { st.Close() }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			store, err := NewStore(Config{Options: f.opt, Shards: 2})
			if err != nil {
				t.Fatal(err)
			}
			defer store.Close()
			if _, err := store.Add(f.records[:1000]); err != nil {
				t.Fatal(err)
			}
			if _, err := store.Refresh(); err != nil {
				t.Fatal(err)
			}
			ready := NewReadiness("ok")
			srv := NewServer(store, f.gen, WithReadiness(ready))
			token := fmt.Sprint(store.Current().Seq)

			done := make(chan *httptest.ResponseRecorder, 1)
			go func() { done <- get(srv, "/v1/sync?ids=table4&timeout=30s&since="+token) }()
			time.Sleep(50 * time.Millisecond)
			tc.drain(store, ready)
			select {
			case rw := <-done:
				if rw.Code != 503 {
					t.Errorf("drained poll answered %d, want 503", rw.Code)
				}
				if rw.Header().Get("Retry-After") == "" {
					t.Error("drained poll carries no Retry-After")
				}
			case <-time.After(10 * time.Second):
				t.Fatal("parked poll hung through drain — SIGTERM would stall")
			}
		})
	}
}

// The parked-poll bound sheds excess long-polls with 429 instead of
// accumulating goroutines; zero disables parking entirely.
func TestSyncParkedShed(t *testing.T) {
	store, srv := newTestServer(t, 2000, WithSyncMaxParked(0))
	token := fmt.Sprint(store.Current().Seq)
	rw := get(srv, "/v1/sync?ids=table4&timeout=10s&since="+token)
	if rw.Code != 429 {
		t.Fatalf("park over the bound answered %d, want 429", rw.Code)
	}
	if rw.Header().Get("Retry-After") == "" {
		t.Error("shed response carries no Retry-After")
	}
	// Shedding only applies to parking: an immediate answer still works.
	if rw := get(srv, "/v1/sync?ids=table4"); rw.Code != 200 {
		t.Errorf("immediate sync sheds too: status %d", rw.Code)
	}

	// With a bound of 1, a second concurrent park sheds while the first
	// stays parked.
	srv2 := NewServer(store, corpus(t).gen, WithSyncMaxParked(1))
	parked := make(chan *httptest.ResponseRecorder, 1)
	// The parked poll resolves at cleanup: closing the store fires its
	// Done arm, so the goroutine never outlives the test binary.
	go func() {
		parked <- get(srv2, "/v1/sync?ids=table4&timeout=30s&since="+token)
	}()
	// Wait until the first poll is actually parked.
	deadline := time.Now().Add(5 * time.Second)
	for srv2.syncWaiting.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("first poll never parked")
		}
		time.Sleep(time.Millisecond)
	}
	if rw := get(srv2, "/v1/sync?ids=table4&timeout=10s&since="+token); rw.Code != 429 {
		t.Errorf("second park answered %d, want 429", rw.Code)
	}
	// A spurious wakeup (same Seq) must re-park, not return early.
	store.wakeSync()
	select {
	case rw := <-parked:
		t.Fatalf("parked poll returned on a no-change wakeup: status %d", rw.Code)
	case <-time.After(100 * time.Millisecond):
	}
}

// The full read path is race-free under load: concurrent ingest,
// snapshot cuts, conditional GETs and sync polls (run with -race).
func TestSyncRaceHammer(t *testing.T) {
	f := corpus(t)
	store, err := NewStore(Config{Options: f.opt, Shards: 4, SnapshotEvery: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	srv := NewServer(store, f.gen)

	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Writer: feed batches and cut snapshots.
	wg.Add(1)
	go func() {
		defer wg.Done()
		recs := f.records
		for len(recs) > 0 {
			n := 256
			if n > len(recs) {
				n = len(recs)
			}
			store.Add(recs[:n])
			recs = recs[n:]
			store.Refresh()
		}
	}()

	errs := make(chan string, 16)
	// Conditional-GET readers: hold the last ETag and revalidate.
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			etag := ""
			for {
				select {
				case <-stop:
					return
				default:
				}
				var rw *httptest.ResponseRecorder
				if etag != "" {
					rw = get(srv, "/v1/tables/4", [2]string{"If-None-Match", etag})
				} else {
					rw = get(srv, "/v1/tables/4")
				}
				if rw.Code != 200 && rw.Code != 304 {
					select {
					case errs <- fmt.Sprintf("GET status %d", rw.Code):
					default:
					}
					return
				}
				if e := rw.Header().Get("ETag"); e != "" {
					etag = e
				}
			}
		}()
	}
	// Sync pollers: ride the token chain with short timeouts.
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			since := ""
			for {
				select {
				case <-stop:
					return
				default:
				}
				rw := get(srv, "/v1/sync?ids=table4,table1&timeout=20ms&since="+since)
				if rw.Code != 200 {
					select {
					case errs <- fmt.Sprintf("sync status %d: %.120s", rw.Code, rw.Body.String()):
					default:
					}
					return
				}
				var resp syncResponse
				if err := json.Unmarshal(rw.Body.Bytes(), &resp); err != nil {
					select {
					case errs <- fmt.Sprintf("sync decode: %v", err):
					default:
					}
					return
				}
				since = resp.Next
			}
		}()
	}

	time.Sleep(600 * time.Millisecond)
	close(stop)
	wg.Wait()
	select {
	case msg := <-errs:
		t.Fatal(msg)
	default:
	}

	// Quiesced: one more token round-trip must drain to empty.
	store.Refresh()
	resp := decodeSync(t, get(srv, "/v1/sync?ids=table4"))
	final := decodeSync(t, get(srv, "/v1/sync?ids=table4&since="+resp.Next))
	if len(final.Changed) != 0 {
		t.Errorf("quiesced sync still reports %d changes", len(final.Changed))
	}
}

// Sync responses honor Accept-Encoding like the doc endpoints.
func TestSyncGzip(t *testing.T) {
	_, srv := newTestServer(t, 2000)
	plain := get(srv, "/v1/sync?ids=table4")
	gz := get(srv, "/v1/sync?ids=table4", [2]string{"Accept-Encoding", "gzip"})
	if gz.Header().Get("Content-Encoding") != "gzip" {
		t.Fatal("sync response not gzip-encoded")
	}
	if !bytes.Equal(gunzip(t, gz.Body.Bytes()), plain.Body.Bytes()) {
		t.Error("gzip sync body differs from plain")
	}
	if !strings.Contains(plain.Header().Get("Vary"), "Accept-Encoding") {
		t.Error("sync response missing Vary: Accept-Encoding")
	}
}
