package serve

import (
	"container/list"
	"sync"

	"syriafilter/internal/obs"
	"syriafilter/internal/render"
)

// DefaultDocCacheBytes is the rendered-doc cache budget when the
// embedder sets none (WithDocCacheBytes overrides, 0 disables). Sized
// for every experiment in both formats across a few generations plus a
// working set of range windows — tens of MB against render costs in
// the milliseconds.
const DefaultDocCacheBytes int64 = 64 << 20

// docKey identifies one cached response variant. gen is the snapshot
// Seq for doc endpoints and the window-content fingerprint for range
// endpoints (see Server.rangeFingerprint); both only change when the
// underlying content can, which is what makes the cache
// invalidation-free: stale keys are never wrong, merely unreachable,
// and the LRU sweep reclaims them.
type docKey struct {
	gen    uint64
	id     string
	window string // "" for snapshot docs, "from:to:step" for ranges
	format string // "json" or "text"
	gzip   bool
}

// docEntry is one cached response: the exact bytes a fresh render
// would produce (the byte-identity invariant TestDocCacheByteIdentity
// pins), the entry's strong ETag, any extra response headers
// (X-Range-*), and — for plain JSON doc entries — the rendered Doc
// itself so /v1/sync can row-diff consecutive generations without
// re-rendering.
type docEntry struct {
	body    []byte
	etag    string
	headers [][2]string
	doc     *render.Doc

	key  docKey
	size int64
}

// docCacheOverhead approximates the per-entry bookkeeping (map slot,
// list element, struct) charged against the byte budget.
const docCacheOverhead = 160

// docCacheMetrics are the cache's obs instruments; the zero value is a
// complete set of nil-receiver no-ops.
type docCacheMetrics struct {
	hits      *obs.Counter
	misses    *obs.Counter
	evictions *obs.Counter
	bytes     *obs.Gauge
}

// docCache is a byte-bounded LRU of rendered responses. A nil
// *docCache is a disabled cache: get always misses (uncounted), put is
// a no-op — so the serving paths carry no "is caching on" branches.
type docCache struct {
	max int64
	m   docCacheMetrics

	mu      sync.Mutex
	entries map[docKey]*list.Element
	lru     *list.List // front = most recently used
	bytes   int64
}

func newDocCache(maxBytes int64, m docCacheMetrics) *docCache {
	if maxBytes <= 0 {
		return nil
	}
	return &docCache{max: maxBytes, m: m, entries: map[docKey]*list.Element{}, lru: list.New()}
}

// get returns the cached entry for k, or nil on a miss. Entries are
// immutable after put; callers may write e.body straight to the wire.
func (c *docCache) get(k docKey) *docEntry {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[k]
	if !ok {
		c.m.misses.Inc()
		return nil
	}
	c.lru.MoveToFront(el)
	c.m.hits.Inc()
	return el.Value.(*docEntry)
}

// put stores e under k and evicts from the cold end until the byte
// budget holds. Concurrent renders of the same key can race here; the
// incumbent wins — by the monotonic-generation argument both bodies
// are byte-identical, so nothing is lost.
func (c *docCache) put(k docKey, e *docEntry) {
	if c == nil {
		return
	}
	e.key = k
	e.size = int64(len(e.body)+len(e.etag)+len(k.id)+len(k.window)+len(k.format)) + docCacheOverhead
	for _, h := range e.headers {
		e.size += int64(len(h[0]) + len(h[1]))
	}
	if e.size > c.max {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[k]; ok {
		c.lru.MoveToFront(el)
		return
	}
	c.entries[k] = c.lru.PushFront(e)
	c.bytes += e.size
	for c.bytes > c.max {
		el := c.lru.Back()
		old := el.Value.(*docEntry)
		c.lru.Remove(el)
		delete(c.entries, old.key)
		c.bytes -= old.size
		c.m.evictions.Inc()
	}
	c.m.bytes.Set(c.bytes)
}
