package serve

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"syriafilter/internal/render"
)

// Block-parallel file ingestion (one block reader per file, parsing on
// the worker pool) must land exactly the scanner path's records: every
// experiment of a snapshot built from IngestFiles matches the batch
// reference byte for byte, gzip input included.
func TestIngestFilesBlocksMatchesBatchRun(t *testing.T) {
	f := corpus(t)
	dir := t.TempDir()
	half := len(f.records) / 2
	plain := filepath.Join(dir, "part1.csv")
	if err := os.WriteFile(plain, encodeCSV(t, f.records[:half], false), 0o644); err != nil {
		t.Fatal(err)
	}
	gz := filepath.Join(dir, "part2.csv.gz")
	if err := os.WriteFile(gz, encodeCSV(t, f.records[half:], true), 0o644); err != nil {
		t.Fatal(err)
	}

	store, err := NewStore(Config{Options: f.opt, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	added, malformed, err := store.IngestFiles([]string{plain, gz}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if added != uint64(len(f.records)) || malformed != 0 {
		t.Fatalf("added/malformed = %d/%d, want %d/0", added, malformed, len(f.records))
	}
	snap, err := store.Refresh()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Records != uint64(len(f.records)) {
		t.Fatalf("snapshot covers %d records, want %d", snap.Records, len(f.records))
	}

	for _, id := range render.Order() {
		got, err := render.Render(id, render.Context{An: snap.An, Gen: f.gen})
		if err != nil {
			t.Fatal(err)
		}
		want, err := render.Render(id, render.Context{An: f.batch, Gen: f.gen})
		if err != nil {
			t.Fatal(err)
		}
		gb, _ := json.Marshal(got)
		wb, _ := json.Marshal(want)
		if !bytes.Equal(gb, wb) {
			t.Errorf("%s: block-ingested snapshot differs from batch run\n got: %.300s\nwant: %.300s", id, gb, wb)
		}
	}
}

// Malformed lines in an ingested file are counted, skipped, and do not
// poison the stream.
func TestIngestFilesBlocksMalformed(t *testing.T) {
	f := corpus(t)
	dir := t.TempDir()
	data := encodeCSV(t, f.records[:1000], false)
	data = append(data, []byte("definitely,not,a,record\n#trailing comment\n")...)
	path := filepath.Join(dir, "dirty.csv")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	store, err := NewStore(Config{Options: f.opt, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	added, malformed, err := store.IngestFiles([]string{path}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if added != 1000 || malformed != 1 {
		t.Fatalf("added/malformed = %d/%d, want 1000/1", added, malformed)
	}
}
