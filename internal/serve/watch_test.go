package serve

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestWatchBackoffMath(t *testing.T) {
	base := time.Second
	want := []time.Duration{
		1 * base, 2 * base, 4 * base, 8 * base, 16 * base,
		16 * base, 16 * base, // capped
	}
	for i, w := range want {
		if got := watchBackoff(i+1, base); got != w {
			t.Errorf("watchBackoff(%d) = %v, want %v", i+1, got, w)
		}
	}
}

// A failing directory scan backs off exponentially instead of hammering
// the filesystem at the poll rate, and recovers as soon as a scan
// succeeds.
func TestWatcherScanBackoff(t *testing.T) {
	f := corpus(t)
	store, err := NewStore(Config{Options: f.opt, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	every := time.Second
	missing := filepath.Join(t.TempDir(), "not-there-yet")
	w := newWatcher(store, missing, every, nil)

	t0 := time.Now()
	w.poll(t0)
	if w.scanFails != 1 {
		t.Fatalf("scanFails after first failed poll = %d, want 1", w.scanFails)
	}
	if got := w.nextScan; !got.Equal(t0.Add(every)) {
		t.Errorf("nextScan = %v, want t0+%v", got.Sub(t0), every)
	}

	// Polls inside the backoff window are no-ops.
	w.poll(t0.Add(every / 2))
	if w.scanFails != 1 {
		t.Errorf("a poll inside the backoff window re-scanned (scanFails=%d)", w.scanFails)
	}

	// The next real attempt doubles the wait.
	w.poll(t0.Add(every))
	if w.scanFails != 2 {
		t.Fatalf("scanFails after second attempt = %d, want 2", w.scanFails)
	}
	if got := w.nextScan; !got.Equal(t0.Add(every).Add(2 * every)) {
		t.Errorf("nextScan after second failure = +%v, want +%v", got.Sub(t0.Add(every)), 2*every)
	}

	// Directory appears: the scan succeeds and the backoff resets.
	if err := os.MkdirAll(missing, 0o755); err != nil {
		t.Fatal(err)
	}
	w.poll(t0.Add(10 * every))
	if w.scanFails != 0 || !w.nextScan.IsZero() {
		t.Errorf("backoff did not reset after a good scan: fails=%d nextScan=%v", w.scanFails, w.nextScan)
	}
}

// A file whose open fails transiently (here: a symlink whose target
// does not exist yet) is retried with backoff, not dropped — and
// ingests normally once the target appears.
func TestWatcherRetriesTransientIngestFailure(t *testing.T) {
	f := corpus(t)
	store, err := NewStore(Config{Options: f.opt, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	dir := t.TempDir()
	target := filepath.Join(t.TempDir(), "payload.csv")
	link := filepath.Join(dir, "incoming.csv")
	if err := os.Symlink(target, link); err != nil {
		t.Fatal(err)
	}

	every := time.Second
	w := newWatcher(store, dir, every, nil)

	t0 := time.Now()
	w.poll(t0) // first sighting: size recorded, nothing ingested
	if len(w.fails) != 0 {
		t.Fatalf("first sighting already failed: %+v", w.fails)
	}

	t1 := t0.Add(every)
	w.poll(t1) // size stable → ingest attempt → open fails → backoff
	r := w.fails[link]
	if r == nil || r.failures != 1 {
		t.Fatalf("transient open failure not recorded: %+v", w.fails)
	}
	if !r.notBefore.Equal(t1.Add(every)) {
		t.Errorf("retry notBefore = +%v after failure, want +%v", r.notBefore.Sub(t1), every)
	}

	// Inside the backoff window nothing is attempted.
	w.poll(t1.Add(every / 2))
	if w.fails[link].failures != 1 {
		t.Errorf("poll inside backoff window re-attempted the path")
	}

	// Target appears; the retry re-establishes the size window, then
	// ingests.
	if err := os.WriteFile(target, encodeCSV(t, f.records[:50], false), 0o644); err != nil {
		t.Fatal(err)
	}
	t2 := t1.Add(every)
	w.poll(t2)            // eligible again: records size
	w.poll(t2.Add(every)) // size stable: ingests
	if !w.seen[filepath.Clean(link)] {
		t.Fatalf("file not ingested after target appeared (fails=%+v)", w.fails)
	}
	if len(w.fails) != 0 {
		t.Errorf("failure state not cleared after success: %+v", w.fails)
	}
	if got := store.ingested.Load(); got != 50 {
		t.Errorf("store ingested %d records via watch, want 50", got)
	}
}
