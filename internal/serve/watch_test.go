package serve

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestWatchBackoffMath(t *testing.T) {
	base := time.Second
	want := []time.Duration{
		1 * base, 2 * base, 4 * base, 8 * base, 16 * base,
		16 * base, 16 * base, // capped
	}
	for i, w := range want {
		if got := watchBackoff(i+1, base); got != w {
			t.Errorf("watchBackoff(%d) = %v, want %v", i+1, got, w)
		}
	}
}

// A failing directory scan backs off exponentially instead of hammering
// the filesystem at the poll rate, and recovers as soon as a scan
// succeeds.
func TestWatcherScanBackoff(t *testing.T) {
	f := corpus(t)
	store, err := NewStore(Config{Options: f.opt, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	every := time.Second
	missing := filepath.Join(t.TempDir(), "not-there-yet")
	w := newWatcher(store, missing, every, nil)

	t0 := time.Now()
	w.poll(t0)
	if w.scanFails != 1 {
		t.Fatalf("scanFails after first failed poll = %d, want 1", w.scanFails)
	}
	if got := w.nextScan; !got.Equal(t0.Add(every)) {
		t.Errorf("nextScan = %v, want t0+%v", got.Sub(t0), every)
	}

	// Polls inside the backoff window are no-ops.
	w.poll(t0.Add(every / 2))
	if w.scanFails != 1 {
		t.Errorf("a poll inside the backoff window re-scanned (scanFails=%d)", w.scanFails)
	}

	// The next real attempt doubles the wait.
	w.poll(t0.Add(every))
	if w.scanFails != 2 {
		t.Fatalf("scanFails after second attempt = %d, want 2", w.scanFails)
	}
	if got := w.nextScan; !got.Equal(t0.Add(every).Add(2 * every)) {
		t.Errorf("nextScan after second failure = +%v, want +%v", got.Sub(t0.Add(every)), 2*every)
	}

	// Directory appears: the scan succeeds and the backoff resets.
	if err := os.MkdirAll(missing, 0o755); err != nil {
		t.Fatal(err)
	}
	w.poll(t0.Add(10 * every))
	if w.scanFails != 0 || !w.nextScan.IsZero() {
		t.Errorf("backoff did not reset after a good scan: fails=%d nextScan=%v", w.scanFails, w.nextScan)
	}
}

// Tracking state for files that appear and then vanish (temp files,
// rotations) is dropped on the next poll instead of accumulating for
// the lifetime of the watcher — a multi-week watch over a spool dir
// must not leak an entry per rotated file. Ingested files stay in
// seen so a reappearing name is not double-counted.
func TestWatcherPrunesVanishedFiles(t *testing.T) {
	f := corpus(t)
	store, err := NewStore(Config{Options: f.opt, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	dir := t.TempDir()
	every := time.Second
	w := newWatcher(store, dir, every, nil)

	// growing: sighted (sizes entry) but never stable before vanishing.
	growing := filepath.Join(dir, "growing.csv")
	if err := os.WriteFile(growing, []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	// failing: a dangling symlink whose ingest attempt fails (fails entry).
	failing := filepath.Join(dir, "failing.csv")
	if err := os.Symlink(filepath.Join(dir, "no-target"), failing); err != nil {
		t.Fatal(err)
	}

	t0 := time.Now()
	w.poll(t0) // first sighting: sizes has both
	// growing grows between polls, so it stays in the stability window.
	if err := os.WriteFile(growing, []byte("still-partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	w.poll(t0.Add(every)) // failing is size-stable → ingest fails → fails entry
	if w.sizes[filepath.Clean(growing)] == 0 {
		t.Fatalf("growing file fell out of the stability window: %+v", w.sizes)
	}
	if w.fails[filepath.Clean(failing)] == nil {
		t.Fatalf("dangling symlink did not record a failure: %+v", w.fails)
	}

	for _, p := range []string{growing, failing} {
		if err := os.Remove(p); err != nil {
			t.Fatal(err)
		}
	}
	w.poll(t0.Add(100 * every))
	if len(w.sizes) != 0 {
		t.Errorf("sizes entries leaked after files vanished: %+v", w.sizes)
	}
	if len(w.fails) != 0 {
		t.Errorf("fails entries leaked after files vanished: %+v", w.fails)
	}
}

// A file whose open fails transiently (here: a symlink whose target
// does not exist yet) is retried with backoff, not dropped — and
// ingests normally once the target appears.
func TestWatcherRetriesTransientIngestFailure(t *testing.T) {
	f := corpus(t)
	store, err := NewStore(Config{Options: f.opt, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	dir := t.TempDir()
	target := filepath.Join(t.TempDir(), "payload.csv")
	link := filepath.Join(dir, "incoming.csv")
	if err := os.Symlink(target, link); err != nil {
		t.Fatal(err)
	}

	every := time.Second
	w := newWatcher(store, dir, every, nil)

	t0 := time.Now()
	w.poll(t0) // first sighting: size recorded, nothing ingested
	if len(w.fails) != 0 {
		t.Fatalf("first sighting already failed: %+v", w.fails)
	}

	t1 := t0.Add(every)
	w.poll(t1) // size stable → ingest attempt → open fails → backoff
	r := w.fails[link]
	if r == nil || r.failures != 1 {
		t.Fatalf("transient open failure not recorded: %+v", w.fails)
	}
	if !r.notBefore.Equal(t1.Add(every)) {
		t.Errorf("retry notBefore = +%v after failure, want +%v", r.notBefore.Sub(t1), every)
	}

	// Inside the backoff window nothing is attempted.
	w.poll(t1.Add(every / 2))
	if w.fails[link].failures != 1 {
		t.Errorf("poll inside backoff window re-attempted the path")
	}

	// Target appears; the retry re-establishes the size window, then
	// ingests.
	if err := os.WriteFile(target, encodeCSV(t, f.records[:50], false), 0o644); err != nil {
		t.Fatal(err)
	}
	t2 := t1.Add(every)
	w.poll(t2)            // eligible again: records size
	w.poll(t2.Add(every)) // size stable: ingests
	if !w.seen[filepath.Clean(link)] {
		t.Fatalf("file not ingested after target appeared (fails=%+v)", w.fails)
	}
	if len(w.fails) != 0 {
		t.Errorf("failure state not cleared after success: %+v", w.fails)
	}
	if got := store.ingested.Load(); got != 50 {
		t.Errorf("store ingested %d records via watch, want 50", got)
	}
}
