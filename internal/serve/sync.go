package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"syriafilter/internal/obs/trace"
	"syriafilter/internal/render"
)

// DefaultSyncMaxParked bounds concurrently parked /v1/sync long-polls
// when the embedder sets none (WithSyncMaxParked overrides). Each
// parked poll costs one goroutine and one connection; past the bound,
// polls shed with 429 + Retry-After.
const DefaultSyncMaxParked = 1024

// DefaultSyncTimeout is how long a /v1/sync long-poll parks when the
// client sends no ?timeout. Below typical LB/proxy idle timeouts so a
// quiet daemon answers (empty) before an intermediary kills the
// connection.
const DefaultSyncTimeout = 25 * time.Second

// maxSyncTimeout caps client-supplied ?timeout values.
const maxSyncTimeout = 5 * time.Minute

// syncTracker remembers, per experiment id, the current rendered doc
// and the one before it, with the snapshot Seq at which each became
// current. That is exactly enough to answer "changed since token?"
// and, when the client's token falls inside the previous doc's reign,
// to ship a row-level delta instead of the full doc. Ids are tracked
// lazily — only those /v1/sync requests actually ask for — so sync
// load determines sync cost.
type syncTracker struct {
	mu   sync.Mutex
	docs map[string]*docTrack
}

type docTrack struct {
	cur     *render.Doc
	curJSON []byte // EncodeJSON bytes (trailing newline included)
	curSeq  uint64 // seq at which cur last changed
	seenSeq uint64 // newest seq evaluated (>= curSeq)
	prev    *render.Doc
	prevSeq uint64 // seq at which prev became current (0 = none)
}

// trackDoc advances id's tracked state to snap and returns it. The
// render goes through the doc cache (same key the GET endpoints use),
// so tracking an id also warms its cache entry. Serialized under the
// tracker lock: seenSeq/curSeq advance monotonically even when
// concurrent sync requests observe different snapshots.
func (s *Server) trackDoc(ctx context.Context, snap *Snapshot, id string) (*docTrack, error) {
	t := &s.tracker
	t.mu.Lock()
	defer t.mu.Unlock()
	dt := t.docs[id]
	if dt == nil {
		dt = &docTrack{}
		t.docs[id] = dt
	}
	if dt.cur == nil || snap.Seq > dt.seenSeq {
		e, err := s.cachedDoc(ctx, snap, id, "json", false)
		if err != nil {
			return nil, err
		}
		if dt.cur == nil || !bytes.Equal(e.body, dt.curJSON) {
			dt.prev, dt.prevSeq = dt.cur, dt.curSeq
			dt.cur, dt.curJSON, dt.curSeq = e.doc, e.body, snap.Seq
		}
		if snap.Seq > dt.seenSeq {
			dt.seenSeq = snap.Seq
		}
	}
	return dt, nil
}

// syncChange is one changed experiment in a /v1/sync response: either
// the full doc (the exact bytes GET /v1/experiments/{id} serves, sans
// trailing newline) or a render.Delta against the doc the client held
// at its since token — whichever encodes smaller.
type syncChange struct {
	ID         string          `json:"id"`
	ChangedSeq uint64          `json:"changed_seq"`
	Full       json.RawMessage `json:"full,omitempty"`
	Delta      json.RawMessage `json:"delta,omitempty"`
}

type syncResponse struct {
	Since    uint64       `json:"since"`
	Next     string       `json:"next"`
	Seq      uint64       `json:"snapshot_seq"`
	Records  uint64       `json:"snapshot_records"`
	TimedOut bool         `json:"timed_out,omitempty"`
	Changed  []syncChange `json:"changed"`
}

// handleSync is the incremental query endpoint, modeled on Matrix
// /sync: GET /v1/sync?since=<token>&timeout=<dur>&ids=<id,id,...>.
//
// Tokens are snapshot generations (prefixed with the boot nonce); the
// zero token means "everything". When the published snapshot is
// already past since, the response is immediate; otherwise the request
// parks until a snapshot cut moves Seq (a change signal woken by
// Refresh), the timeout lapses (an empty response with the same
// token), or the daemon starts draining (503, so SIGTERM never stalls
// behind parked pollers). The response lists only experiments whose
// rendered docs changed since the token — as row-level deltas when the
// renderer can diff cheaply, full docs otherwise — plus the next
// token. Tokens do not survive a daemon restart: a token minted by
// another process life triggers a full resync, never stale data.
func (s *Server) handleSync(w http.ResponseWriter, r *http.Request) {
	if s.gateServing(w) {
		return
	}
	q := r.URL.Query()
	if f := q.Get("format"); f != "" && f != "json" {
		writeError(w, http.StatusBadRequest, "sync: only format=json is supported")
		return
	}
	since, err := s.parseSyncToken(q.Get("since"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	timeout := DefaultSyncTimeout
	if v := q.Get("timeout"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil || d < 0 {
			writeError(w, http.StatusBadRequest, "sync: bad timeout %q (want a Go duration like 30s)", v)
			return
		}
		if d > maxSyncTimeout {
			d = maxSyncTimeout
		}
		timeout = d
	}
	ids := render.Order()
	explicit := false
	if v := q.Get("ids"); v != "" {
		explicit = true
		ids = strings.Split(v, ",")
		for _, id := range ids {
			if render.Title(id) == "" {
				writeError(w, http.StatusNotFound, "render: unknown experiment id %q (known: %v)", id, render.Order())
				return
			}
		}
	}
	// A token from beyond the current generation (another process life,
	// or a client-made number) cannot be positioned in this history:
	// resync from scratch rather than parking forever.
	if cur := s.store.Current(); since > cur.Seq {
		since = 0
	}

	snap, timedOut, ok := s.waitSync(w, r, since, timeout)
	if !ok {
		return // a terminal response (429/503) was written, or the client left
	}

	resp := syncResponse{
		Since:   since,
		Next:    s.boot + "." + strconv.FormatUint(snap.Seq, 10),
		Seq:     snap.Seq,
		Records: snap.Records,

		TimedOut: timedOut,
		Changed:  []syncChange{},
	}
	for _, id := range ids {
		if s.gen == nil && render.NeedsGenerator(id) {
			if explicit {
				writeError(w, http.StatusUnprocessableEntity,
					"render: experiment %s needs the synthetic generator (run without -ingest-only data source?)", id)
				return
			}
			continue // default id set: skip what this daemon cannot render
		}
		dt, err := s.trackDoc(r.Context(), snap, id)
		if err != nil {
			writeError(w, http.StatusUnprocessableEntity, "%v", err)
			return
		}
		if dt.curSeq <= since {
			continue // unchanged since the client's token
		}
		ch := syncChange{ID: id, ChangedSeq: dt.curSeq}
		full := dt.curJSON[:len(dt.curJSON)-1] // strip the newline for embedding
		if dt.prev != nil && dt.prevSeq <= since {
			// The client's token falls inside prev's reign, so prev is
			// exactly what it holds: a delta applies. Ship it only when
			// it actually encodes smaller than the full doc.
			if delta, ok := render.Diff(dt.prev, dt.cur); ok {
				if db, err := json.Marshal(delta); err == nil && len(db) < len(full) {
					ch.Delta = db
				}
			}
		}
		if ch.Delta == nil {
			ch.Full = full
		}
		resp.Changed = append(resp.Changed, ch)
	}
	body, err := render.EncodeJSON(resp)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	w.Header().Set("Vary", "Accept-Encoding")
	if acceptsGzip(r) {
		// Compressed per response, not cached: delta bodies depend on the
		// client's since token.
		w.Header().Set("Content-Encoding", "gzip")
		body = gzipBytes(body)
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(len(body)))
	w.Write(body)
}

// waitSync parks the request until the published snapshot moves past
// since, the timeout lapses, or the daemon drains/closes. ok=false
// means no sync response should be written: a terminal 429/503 already
// was, or the client disconnected.
func (s *Server) waitSync(w http.ResponseWriter, r *http.Request, since uint64, timeout time.Duration) (snap *Snapshot, timedOut, ok bool) {
	snap = s.store.Current()
	if snap.Seq > since || timeout <= 0 {
		return snap, false, true
	}
	if n := s.syncWaiting.Add(1); n > int64(s.syncMaxParked) {
		s.syncWaiting.Add(-1)
		s.readm.syncShed.Inc()
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests,
			"sync: %d long-polls already parked (-sync-max-parked); retry shortly", s.syncMaxParked)
		return nil, false, false
	}
	defer s.syncWaiting.Add(-1)
	s.readm.syncParked.Inc()
	sp := trace.FromContext(r.Context()).Child("sync.park")
	sp.SetAttrs(trace.Int("since", int64(since)))
	t0 := time.Now()
	defer func() {
		s.readm.syncWait.Observe(time.Since(t0).Seconds())
		sp.End()
	}()
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	for {
		// Fetch both signal channels BEFORE re-checking state: publishes
		// and readiness flips rotate their channel after updating state,
		// so fetch-then-check can never sleep through a transition.
		ch := s.store.ChangeSignal()
		rch := s.ready.Changed()
		if snap = s.store.Current(); snap.Seq > since {
			s.readm.syncWakeups.Inc()
			sp.SetAttrs(trace.Int("woken", 1))
			return snap, false, true
		}
		if state := s.ready.State(); state != "ok" || s.store.Restoring() {
			if state == "ok" {
				state = "restoring"
			}
			// Drain-aware wakeup: SIGTERM flips readiness to "draining"
			// before Shutdown, so parked polls resolve instead of pinning
			// the drain deadline.
			sp.Event("drain", trace.Str("state", state))
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusServiceUnavailable, "service %s; retry shortly", state)
			return nil, false, false
		}
		select {
		case <-ch:
		case <-rch:
		case <-timer.C:
			s.readm.syncTimeouts.Inc()
			return s.store.Current(), true, true
		case <-s.store.Done():
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusServiceUnavailable, "%v", ErrClosed)
			return nil, false, false
		case <-r.Context().Done():
			return nil, false, false
		}
	}
}

// parseSyncToken parses a ?since value: empty or "0" is the zero token
// (full sync), a bare integer is accepted for hand-driven curl, and
// the canonical "<boot>.<seq>" form resyncs from zero when the boot
// nonce belongs to another process life.
func (s *Server) parseSyncToken(v string) (uint64, error) {
	if v == "" || v == "0" {
		return 0, nil
	}
	if i := strings.IndexByte(v, '.'); i >= 0 {
		if v[:i] != s.boot {
			return 0, nil
		}
		v = v[i+1:]
	}
	n, err := strconv.ParseUint(v, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("sync: bad since token %q", v)
	}
	return n, nil
}
