package serve

import (
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"syriafilter/internal/core"
	"syriafilter/internal/logfmt"
	"syriafilter/internal/obs"
	"syriafilter/internal/obs/trace"
	"syriafilter/internal/pipeline"
	"syriafilter/internal/timewin"
)

// storeMetrics holds the store's event-driven instruments. Every field
// is a nil-safe obs object, so the zero value (Config.DisableObs) is a
// complete set of no-ops — the ingest and checkpoint paths carry one
// code path whether or not the store is instrumented, which is exactly
// what BenchmarkObsOverhead compares.
type storeMetrics struct {
	blocks       *obs.Counter
	records      *obs.Counter
	malformed    *obs.Counter
	bytes        *obs.Counter
	parseSeconds *obs.Histogram
	readSeconds  *obs.Histogram
	backpressure *obs.Histogram
	shed         *obs.Counter

	snapshots       *obs.Counter
	snapshotSkips   *obs.Counter
	snapshotSeconds *obs.Histogram

	rangeMerges       *obs.Counter
	rangeMergeBuckets *obs.Counter
	rangeMergeSeconds *obs.Histogram

	compactions      *obs.Counter
	compactedBuckets *obs.Counter
	compactSeconds   *obs.Histogram

	checkpoints      *obs.Counter
	checkpointWrite  *obs.Histogram
	restores         *obs.Counter
	restoreSeconds   *obs.Histogram
	restoreFallbacks *obs.Counter
}

func newStoreMetrics(r *obs.Registry) storeMetrics {
	return storeMetrics{
		blocks: r.Counter("censord_ingest_blocks_total",
			"Line-aligned blocks parsed by the block ingest paths."),
		records: r.Counter("censord_ingest_records_total",
			"Well-formed records parsed by the block ingest paths."),
		malformed: r.Counter("censord_ingest_malformed_total",
			"Malformed lines skipped by the block ingest paths."),
		bytes: r.Counter("censord_ingest_bytes_total",
			"Raw log bytes consumed by the block ingest paths (post-gunzip)."),
		parseSeconds: r.Histogram("censord_ingest_parse_seconds",
			"Per-block parse latency.", nil),
		readSeconds: r.Histogram("censord_ingest_read_seconds",
			"Per-block read latency (file/socket I/O plus line snapping, "+
				"before parsing) — the upstream half of ingest.", nil),
		backpressure: r.Histogram("censord_ingest_backpressure_seconds",
			"Time Add spent blocked on a full shard queue (0 = enqueued immediately).", nil),
		shed: r.Counter("censord_ingest_shed_total",
			"Ingest calls shed with ErrOverloaded (HTTP 429) after blocking "+
				"the full backpressure deadline on a stalled shard."),

		snapshots: r.Counter("censord_snapshot_cuts_total",
			"Snapshot rebuilds (Refresh calls that completed)."),
		snapshotSkips: r.Counter("censord_snapshot_skips_total",
			"Refresh calls that found no new records and kept the published "+
				"snapshot (Seq unchanged, so doc-cache keys and sync tokens stay put)."),
		snapshotSeconds: r.Histogram("censord_snapshot_build_seconds",
			"Snapshot build duration.", nil),

		rangeMerges: r.Counter("censord_range_merges_total",
			"Per-shard range merges (RangeInto calls that covered something)."),
		rangeMergeBuckets: r.Counter("censord_range_merge_buckets_total",
			"Bucket merges performed by range queries across all shards."),
		rangeMergeSeconds: r.Histogram("censord_range_merge_seconds",
			"Per-shard range merge duration.", nil),

		compactions: r.Counter("censord_timewin_compactions_total",
			"Retention compaction passes across all shard partitions."),
		compactedBuckets: r.Counter("censord_timewin_compacted_buckets_total",
			"Live buckets merged into the all-time tail by compaction."),
		compactSeconds: r.Histogram("censord_timewin_compact_seconds",
			"Compaction pass duration.", nil),

		checkpoints: r.Counter("censord_checkpoint_writes_total",
			"Checkpoints written."),
		checkpointWrite: r.Histogram("censord_checkpoint_write_seconds",
			"Checkpoint write duration (all shards, fsyncs included).", nil),
		restores: r.Counter("censord_checkpoint_restores_total",
			"Checkpoints restored."),
		restoreSeconds: r.Histogram("censord_checkpoint_restore_seconds",
			"Checkpoint restore duration (decode and fold).", nil),
		restoreFallbacks: r.Counter("censord_checkpoint_restore_fallbacks_total",
			"Checkpoint generations skipped during restore because they "+
				"failed to decode (corruption, truncation, config mismatch)."),
	}
}

// blockObsHook adapts the store's ingest instruments to the pipeline's
// per-block hook, and feeds the windowed byte-rate as blocks complete
// (so a long streaming POST moves ingest_mb_per_s while still running).
func (st *Store) blockObsHook() *pipeline.BlockObs {
	return &pipeline.BlockObs{
		OnBlock: func(b pipeline.BlockStats, seconds float64) {
			st.obsm.blocks.Inc()
			st.obsm.records.Add(b.Records)
			st.obsm.malformed.Add(b.Malformed)
			st.obsm.bytes.Add(b.Bytes)
			st.obsm.parseSeconds.Observe(seconds)
			st.rate.Add(b.Bytes)
		},
		OnRead: func(_ int, seconds float64) {
			st.obsm.readSeconds.Observe(seconds)
		},
	}
}

// partitionObsHook adapts the shared compaction and range-merge
// instruments to timewin's hook. Both fire on shard goroutines
// concurrently; the obs objects are atomic, so one shared hook serves
// every shard. Compaction passes — rare, inline with ingest, and
// invisible to any single request — are additionally recorded as
// single-span background traces so an ingest stall caused by a big
// compaction shows up in the flight recorder.
func (st *Store) partitionObsHook() *timewin.PartitionObs {
	return &timewin.PartitionObs{
		OnCompact: func(buckets int, seconds float64) {
			st.obsm.compactions.Inc()
			st.obsm.compactedBuckets.Add(uint64(buckets))
			st.obsm.compactSeconds.Observe(seconds)
			st.tracer.Op("timewin.compact",
				time.Now().Add(-time.Duration(seconds*float64(time.Second))), nil,
				trace.Int("buckets", int64(buckets)))
		},
		OnRangeMerge: func(buckets int, records uint64, seconds float64) {
			st.obsm.rangeMerges.Inc()
			st.obsm.rangeMergeBuckets.Add(uint64(buckets))
			st.obsm.rangeMergeSeconds.Observe(seconds)
		},
	}
}

// registerObsFuncs registers the scrape-sampled series: state another
// subsystem already maintains (record totals, queue depths, checkpoint
// generation, sketch footprints) read through closures at scrape time
// instead of being double-counted on the hot path.
func (st *Store) registerObsFuncs(r *obs.Registry) {
	obs.RegisterBuildInfo(r)
	r.CounterFunc("censord_store_records_total",
		"Records folded into the store, restored checkpoints included "+
			"(monotone across a warm restart).",
		func() float64 { return float64(st.ingested.Load()) })
	r.GaugeFunc("censord_store_shards", "Configured shard count.",
		func() float64 { return float64(len(st.shards)) })
	for i, sh := range st.shards {
		sh := sh
		r.GaugeFunc("censord_shard_queue_depth",
			"Batches and ops waiting in each shard's channel.",
			func() float64 { return float64(len(sh.msgs)) },
			"shard", strconv.Itoa(i))
	}

	r.GaugeFunc("censord_snapshot_seq", "Sequence number of the published snapshot.",
		func() float64 { return float64(st.Current().Seq) })
	r.GaugeFunc("censord_snapshot_records", "Records folded into the published snapshot.",
		func() float64 { return float64(st.Current().Records) })

	r.GaugeFunc("censord_timewin_live_buckets",
		"Distinct live time buckets across shards, at the published snapshot.",
		func() float64 { return float64(len(st.Current().Timewin.Buckets)) })
	r.GaugeFunc("censord_timewin_tail_records",
		"Records compacted into the all-time tail, at the published snapshot.",
		func() float64 { return float64(st.Current().Timewin.TailRecords) })

	r.GaugeFunc("censord_checkpoint_generation",
		"Generation sequence of the last written or restored checkpoint "+
			"(restores continue the restored sequence).",
		func() float64 { return float64(st.ckptSeq.Load()) })
	r.GaugeFunc("censord_checkpoint_bytes", "Size of the last checkpoint.",
		func() float64 {
			if ck := st.lastCkpt.Load(); ck != nil {
				return float64(ck.Bytes)
			}
			return 0
		})

	for _, mod := range core.SketchedModules {
		mod := mod
		r.GaugeFunc("censord_sketch_topk_entries",
			"Retained Space-Saving entries per module (0 when exact).",
			func() float64 { return float64(st.sketchSizes(mod).TopKEntries) },
			"module", mod)
		r.GaugeFunc("censord_sketch_topk_capacity",
			"Space-Saving capacity per module (0 when exact).",
			func() float64 { return float64(st.sketchSizes(mod).TopKCapacity) },
			"module", mod)
		r.GaugeFunc("censord_sketch_hlls",
			"Live HyperLogLog sketches per module (0 when exact).",
			func() float64 { return float64(st.sketchSizes(mod).HLLs) },
			"module", mod)
	}

	r.CounterFunc("censord_intern_strings_total",
		"Strings added to the parser interning tables (process-wide, cold path only).",
		func() float64 { s, _ := logfmt.InternStats(); return float64(s) })
	r.CounterFunc("censord_intern_bytes_total",
		"Bytes retained by the parser interning tables (process-wide).",
		func() float64 { _, b := logfmt.InternStats(); return float64(b) })
}

// readMetrics holds the read-path instruments: the rendered-doc cache
// and /v1/sync long-polling. Like storeMetrics, the zero value is a
// complete set of nil-receiver no-ops, so a Server over an
// uninstrumented store carries the same code path.
type readMetrics struct {
	cacheHits      *obs.Counter
	cacheMisses    *obs.Counter
	cacheEvictions *obs.Counter
	cacheBytes     *obs.Gauge

	syncParked   *obs.Counter
	syncWakeups  *obs.Counter
	syncTimeouts *obs.Counter
	syncShed     *obs.Counter
	syncWait     *obs.Histogram
}

func newReadMetrics(r *obs.Registry) readMetrics {
	return readMetrics{
		cacheHits: r.Counter("censord_doccache_hits_total",
			"Rendered-doc cache hits, If-None-Match 304 revalidations included "+
				"(both skip the render entirely)."),
		cacheMisses: r.Counter("censord_doccache_misses_total",
			"Rendered-doc cache misses (a full render ran)."),
		cacheEvictions: r.Counter("censord_doccache_evictions_total",
			"Entries evicted from the rendered-doc cache to stay under -doc-cache-bytes."),
		cacheBytes: r.Gauge("censord_doccache_bytes",
			"Bytes held by the rendered-doc cache (bodies plus bookkeeping)."),

		syncParked: r.Counter("censord_sync_parked_total",
			"/v1/sync long-polls parked to wait for a snapshot change."),
		syncWakeups: r.Counter("censord_sync_wakeups_total",
			"Parked /v1/sync long-polls woken by a snapshot cut."),
		syncTimeouts: r.Counter("censord_sync_timeouts_total",
			"Parked /v1/sync long-polls that reached their timeout with no change."),
		syncShed: r.Counter("censord_sync_shed_total",
			"/v1/sync long-polls shed with 429 because -sync-max-parked was reached."),
		syncWait: r.Histogram("censord_sync_wait_seconds",
			"Time parked /v1/sync long-polls spent waiting, whatever ended the wait.", nil),
	}
}

// sketchSizes samples one module's sketch footprint from the published
// snapshot (the merged representative of every shard engine).
func (st *Store) sketchSizes(module string) core.SketchSizes {
	return st.Current().An.Engine.SketchStats()[module]
}

// Readiness is the serving-state signal behind GET /readyz, distinct
// from /healthz liveness: a daemon restoring a checkpoint or replaying
// boot files is alive but not ready. The zero state is "ok"; a nil
// *Readiness always reads ready, so wiring it is optional.
type Readiness struct {
	state atomic.Pointer[string]

	mu      sync.Mutex
	changed chan struct{} // closed and replaced on every Set
}

// NewReadiness builds a readiness signal in the given state.
func NewReadiness(state string) *Readiness {
	r := &Readiness{}
	r.Set(state)
	return r
}

// Set publishes a new state ("restoring", "loading", "ok", ...) and
// wakes everyone parked on Changed — this is what lets a draining
// daemon unblock its /v1/sync long-polls instead of stalling shutdown.
func (r *Readiness) Set(state string) {
	if r == nil {
		return
	}
	r.state.Store(&state)
	r.mu.Lock()
	ch := r.changed
	r.changed = nil
	r.mu.Unlock()
	if ch != nil {
		close(ch)
	}
}

// Changed returns a channel closed at the next Set. Callers must
// re-fetch it after every wakeup (each Set rotates the channel). A nil
// *Readiness returns nil — a channel that never fires, matching its
// permanently-"ok" State.
func (r *Readiness) Changed() <-chan struct{} {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.changed == nil {
		r.changed = make(chan struct{})
	}
	return r.changed
}

// State returns the current state; nil or unset reads "ok".
func (r *Readiness) State() string {
	if r == nil {
		return "ok"
	}
	if s := r.state.Load(); s != nil {
		return *s
	}
	return "ok"
}

// Ready reports whether the state is "ok".
func (r *Readiness) Ready() bool { return r.State() == "ok" }
