package obs

import (
	"runtime"
	"sync"
	"time"
)

// memSampler caches one runtime.ReadMemStats per second, so the
// several runtime gauges sampled by a single scrape pay one
// stop-the-world, not one each.
type memSampler struct {
	mu   sync.Mutex
	at   time.Time
	mem  runtime.MemStats
	once bool
}

func (s *memSampler) sample() *runtime.MemStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.once || time.Since(s.at) > time.Second {
		runtime.ReadMemStats(&s.mem)
		s.at = time.Now()
		s.once = true
	}
	return &s.mem
}

// RegisterRuntime registers Go runtime gauges (goroutines, heap, GC)
// sampled at scrape time. Names follow the conventional go_* prefix so
// standard Grafana dashboards pick them up.
func RegisterRuntime(r *Registry) {
	ms := &memSampler{}
	r.GaugeFunc("go_goroutines", "Number of live goroutines.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	r.GaugeFunc("go_gomaxprocs", "GOMAXPROCS.",
		func() float64 { return float64(runtime.GOMAXPROCS(0)) })
	r.GaugeFunc("go_heap_alloc_bytes", "Bytes of allocated heap objects.",
		func() float64 { return float64(ms.sample().HeapAlloc) })
	r.GaugeFunc("go_heap_sys_bytes", "Bytes of heap obtained from the OS.",
		func() float64 { return float64(ms.sample().HeapSys) })
	r.GaugeFunc("go_heap_objects", "Number of allocated heap objects.",
		func() float64 { return float64(ms.sample().HeapObjects) })
	r.CounterFunc("go_gc_cycles_total", "Completed GC cycles.",
		func() float64 { return float64(ms.sample().NumGC) })
	r.CounterFunc("go_gc_pause_seconds_total", "Cumulative GC stop-the-world pause time.",
		func() float64 { return float64(ms.sample().PauseTotalNs) / 1e9 })
	r.CounterFunc("go_alloc_bytes_total", "Cumulative bytes allocated.",
		func() float64 { return float64(ms.sample().TotalAlloc) })
}
