// Package obs is the daemon's observability layer: a zero-dependency
// metrics registry (atomic counters and gauges, fixed-boundary
// log-bucket histograms), Prometheus text exposition, a structured
// snapshot for embedding in JSON status endpoints, windowed rate
// tracking, Go runtime gauges, and HTTP middleware producing per-route
// metrics plus structured access logs.
//
// Design constraints, in order:
//
//   - The hot path must stay hot. Counter.Inc, Gauge.Set and
//     Histogram.Observe are single atomic operations on pre-resolved
//     objects — no map lookups, no label formatting, no allocation
//     (pinned by TestObsZeroAlloc and BenchmarkObsOverhead). Label
//     resolution happens once, at registration time.
//
//   - Instrumentation must be removable without dual code paths. Every
//     method is nil-receiver safe: a nil *Counter, *Gauge, *Histogram or
//     *RateWindow is a no-op, so a subsystem built without a registry
//     simply leaves its metric fields nil and every call site stays
//     unconditional. This is what BenchmarkObsOverhead's uninstrumented
//     arm measures against.
//
//   - No external dependencies. The exposition writer emits the
//     Prometheus text format (version 0.0.4) directly; histograms use
//     fixed boundaries chosen at registration, so exposition and
//     cross-shard merging never coordinate.
package obs

import "sync/atomic"

// Counter is a monotonically increasing uint64. The zero value is ready
// to use; a nil *Counter is a no-op (see the package comment).
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 for nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable int64 (queue depths, occupancies, generation
// numbers). The zero value is ready; a nil *Gauge is a no-op.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adds d (negative to decrement).
func (g *Gauge) Add(d int64) {
	if g == nil {
		return
	}
	g.v.Add(d)
}

// Value returns the current value (0 for nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}
