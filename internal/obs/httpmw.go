package obs

import (
	"fmt"
	"log/slog"
	"net/http"
	"sync/atomic"
	"time"

	"syriafilter/internal/obs/trace"
)

// HTTPMetrics is one route's pre-resolved instrument set: request
// counters by status class, an in-flight gauge and a latency histogram.
// Resolving them once per route at wiring time keeps the per-request
// path free of map lookups and label formatting.
type HTTPMetrics struct {
	byClass  [6]*Counter // index = status/100 (1xx..5xx; 0 catches the rest)
	inFlight *Gauge
	latency  *Histogram
	route    string
}

var statusClasses = [6]string{"other", "1xx", "2xx", "3xx", "4xx", "5xx"}

// NewHTTPMetrics registers the per-route HTTP series on r:
//
//	http_requests_total{route, code}   counter
//	http_in_flight{route}              gauge
//	http_request_seconds{route}        histogram
func NewHTTPMetrics(r *Registry, route string) *HTTPMetrics {
	m := &HTTPMetrics{route: route}
	for i, class := range statusClasses {
		m.byClass[i] = r.Counter("http_requests_total",
			"HTTP requests by route and status class.", "route", route, "code", class)
	}
	m.inFlight = r.Gauge("http_in_flight", "In-flight HTTP requests by route.", "route", route)
	m.latency = r.Histogram("http_request_seconds",
		"HTTP request latency by route.", nil, "route", route)
	return m
}

// statusWriter captures the response status and size for metrics and
// access logs. It deliberately implements only the core interface plus
// Flush: the API serves buffered JSON/text, so ReaderFrom/Hijacker
// passthrough is not needed.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(b)
	w.bytes += int64(n)
	return n, err
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// reqSeq numbers requests within this process; combined with the boot
// nanotime it yields process-unique request ids without coordination.
var (
	reqSeq  atomic.Uint64
	bootID  = uint64(time.Now().UnixNano()) & 0xffffff
	reqIDFn = func() string { return fmt.Sprintf("%06x-%08x", bootID, reqSeq.Add(1)) }
)

// Middleware wraps next with the route's metrics, a root trace span
// when tr is non-nil and, when logger is non-nil, a structured access
// log line per request carrying a process-unique request id (also
// exposed to the client as X-Request-ID, and honored when the client
// supplies one).
//
// Trace identity: an inbound W3C traceparent header continues the
// caller's trace; absent (or malformed) traceparent, the trace id is
// derived deterministically from the request id, so a trace is
// findable at /debug/traces from the X-Request-ID the client already
// has. The outbound traceparent names the root span so future
// cross-peer fan-out can link to it. Responses with status >= 500 mark
// the trace errored, which pins it in the flight recorder.
func Middleware(m *HTTPMetrics, logger *slog.Logger, tr *trace.Tracer, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		m.inFlight.Add(1)
		defer m.inFlight.Add(-1)

		reqID := r.Header.Get("X-Request-ID")
		if reqID == "" {
			reqID = reqIDFn()
		}
		w.Header().Set("X-Request-ID", reqID)

		var sp *trace.Span
		if tr != nil {
			traceID, parent, ok := trace.ParseTraceparent(r.Header.Get(trace.Traceparent))
			if !ok {
				traceID, parent = trace.DeriveTraceID(reqID), trace.SpanID{}
			}
			sp = tr.RootFrom(r.Method+" "+m.route, traceID, parent)
			sp.SetAttrs(
				trace.Str("request_id", reqID),
				trace.Str("method", r.Method),
				trace.Str("path", r.URL.Path),
			)
			w.Header().Set("Traceparent", trace.FormatTraceparent(sp.TraceID(), sp.ID()))
			r = r.WithContext(trace.NewContext(r.Context(), sp))
		}

		sw := &statusWriter{ResponseWriter: w}
		next.ServeHTTP(sw, r)

		elapsed := time.Since(start)
		status := sw.status
		if status == 0 {
			status = http.StatusOK
		}
		class := status / 100
		if class < 1 || class > 5 {
			class = 0
		}
		m.byClass[class].Inc()
		m.latency.Observe(elapsed.Seconds())

		if sp != nil {
			sp.SetAttrs(trace.Int("status", int64(status)), trace.Int("bytes", sw.bytes))
			if status >= 500 {
				sp.Fail(fmt.Errorf("http %d", status))
			}
			sp.End()
		}

		if logger != nil {
			logger.LogAttrs(r.Context(), slog.LevelInfo, "http",
				slog.String("id", reqID),
				slog.String("method", r.Method),
				slog.String("route", m.route),
				slog.String("path", r.URL.Path),
				slog.Int("status", status),
				slog.Int64("bytes", sw.bytes),
				slog.Duration("dur", elapsed),
				slog.String("remote", r.RemoteAddr),
			)
		}
	})
}
