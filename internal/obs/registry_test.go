package obs

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestPrometheusExposition is the golden test for the text format:
// counters, gauges, labeled series, func-backed series and the
// histogram triplet, with families sorted by name and label values
// escaped.
func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("d_requests_total", "Requests.", "route", "/v1/x", "code", "2xx").Add(3)
	r.Counter("d_requests_total", "Requests.", "route", "/v1/x", "code", "5xx").Add(1)
	r.Gauge("d_in_flight", "In flight.").Set(2)
	r.GaugeFunc("d_queue_depth", "Depth.", func() float64 { return 7 }, "shard", "0")
	r.CounterFunc("d_sampled_total", "Sampled.", func() float64 { return 12.5 })
	h := r.Histogram("d_latency_seconds", "Latency.", []float64{0.01, 0.1, 1})
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(0.05)
	h.Observe(5)
	r.Counter("d_escaped_total", "Esc.", "path", `a"b\c`+"\n").Inc()

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP d_escaped_total Esc.
# TYPE d_escaped_total counter
d_escaped_total{path="a\"b\\c\n"} 1
# HELP d_in_flight In flight.
# TYPE d_in_flight gauge
d_in_flight 2
# HELP d_latency_seconds Latency.
# TYPE d_latency_seconds histogram
d_latency_seconds_bucket{le="0.01"} 1
d_latency_seconds_bucket{le="0.1"} 3
d_latency_seconds_bucket{le="1"} 3
d_latency_seconds_bucket{le="+Inf"} 4
d_latency_seconds_sum 5.105
d_latency_seconds_count 4
# HELP d_queue_depth Depth.
# TYPE d_queue_depth gauge
d_queue_depth{shard="0"} 7
# HELP d_requests_total Requests.
# TYPE d_requests_total counter
d_requests_total{route="/v1/x",code="2xx"} 3
d_requests_total{route="/v1/x",code="5xx"} 1
# HELP d_sampled_total Sampled.
# TYPE d_sampled_total counter
d_sampled_total 12.5
`
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestRegistryIdentity: the same (name, labels) resolves to the same
// metric object, and different labels to different ones.
func TestRegistryIdentity(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "", "k", "1")
	b := r.Counter("x_total", "", "k", "1")
	c := r.Counter("x_total", "", "k", "2")
	if a != b {
		t.Error("same (name, labels) returned distinct counters")
	}
	if a == c {
		t.Error("different labels returned the same counter")
	}
	h1 := r.Histogram("h_seconds", "", []float64{1, 2})
	h2 := r.Histogram("h_seconds", "", nil)
	if h1 != h2 {
		t.Error("re-registration returned a distinct histogram")
	}
}

func TestRegistryTypeClash(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("registering one name as counter and gauge should panic")
		}
	}()
	r := NewRegistry()
	r.Counter("clash", "")
	r.Gauge("clash", "")
}

// TestSnapshot checks the JSON-ready structure /v1/stats embeds:
// unlabeled series flatten to a scalar, labeled families to a
// labels-to-value map, histograms to a quantile summary — and the whole
// thing must marshal.
func TestSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "").Add(5)
	r.Counter("b_total", "", "shard", "0").Add(1)
	r.Counter("b_total", "", "shard", "1").Add(2)
	h := r.Histogram("lat_seconds", "", []float64{1, 2, 4})
	h.Observe(1.5)
	h.Observe(3)

	snap := r.Snapshot()
	if v, ok := snap["a_total"].(uint64); !ok || v != 5 {
		t.Errorf("a_total = %#v, want uint64 5", snap["a_total"])
	}
	bm, ok := snap["b_total"].(map[string]any)
	if !ok || bm[`shard="1"`] != uint64(2) {
		t.Errorf("b_total = %#v, want labeled map with shard=\"1\" -> 2", snap["b_total"])
	}
	hs, ok := snap["lat_seconds"].(snapshotHist)
	if !ok || hs.Count != 2 {
		t.Errorf("lat_seconds = %#v, want snapshotHist with Count 2", snap["lat_seconds"])
	}
	if _, err := json.Marshal(snap); err != nil {
		t.Fatalf("snapshot does not marshal: %v", err)
	}
}
