package obs

import (
	"runtime/debug"
	"sync"
)

// Build identifies the running binary: module version, toolchain and
// VCS state, read once from the build info stamped by `go build`. It
// is embedded in /v1/stats and exported as the classic build_info
// gauge so dashboards can segment every metric by revision.
type Build struct {
	Version     string `json:"version"`
	GoVersion   string `json:"go_version"`
	VCSRevision string `json:"vcs_revision,omitempty"`
	VCSTime     string `json:"vcs_time,omitempty"`
	Dirty       bool   `json:"dirty,omitempty"`
}

var (
	buildOnce sync.Once
	buildInfo Build
)

// ReadBuild returns the binary's build identity. Values degrade
// gracefully: binaries built outside a VCS checkout (or with buildvcs
// off) report "unknown" revision but still carry the Go version.
func ReadBuild() Build {
	buildOnce.Do(func() {
		buildInfo = Build{Version: "unknown", GoVersion: "unknown"}
		bi, ok := debug.ReadBuildInfo()
		if !ok {
			return
		}
		buildInfo.GoVersion = bi.GoVersion
		if v := bi.Main.Version; v != "" && v != "(devel)" {
			buildInfo.Version = v
		} else {
			buildInfo.Version = "devel"
		}
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				buildInfo.VCSRevision = s.Value
			case "vcs.time":
				buildInfo.VCSTime = s.Value
			case "vcs.modified":
				buildInfo.Dirty = s.Value == "true"
			}
		}
	})
	return buildInfo
}

// RegisterBuildInfo exports the build identity on r as the
// conventional constant-1 info gauge:
//
//	censord_build_info{version, goversion, vcs_revision} 1
func RegisterBuildInfo(r *Registry) {
	b := ReadBuild()
	rev := b.VCSRevision
	if rev == "" {
		rev = "unknown"
	}
	r.Gauge("censord_build_info", "Build identity of the running binary (value is always 1).",
		"version", b.Version, "goversion", b.GoVersion, "vcs_revision", rev).Set(1)
}
