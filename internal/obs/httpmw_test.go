package obs

import (
	"bytes"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"syriafilter/internal/obs/trace"
)

func TestMiddleware(t *testing.T) {
	r := NewRegistry()
	m := NewHTTPMetrics(r, "/v1/thing/{id}")
	var logBuf bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(&logBuf, nil))
	h := Middleware(m, logger, nil, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if m.inFlight.Value() != 1 {
			t.Errorf("in_flight during request = %d, want 1", m.inFlight.Value())
		}
		if r.URL.Path == "/v1/thing/miss" {
			http.Error(w, "no", http.StatusNotFound)
			return
		}
		w.Write([]byte("ok"))
	}))

	srv := httptest.NewServer(h)
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/v1/thing/42")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	id := resp.Header.Get("X-Request-ID")
	if id == "" {
		t.Error("no X-Request-ID header")
	}
	resp2, err := http.Get(srv.URL + "/v1/thing/miss")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if id2 := resp2.Header.Get("X-Request-ID"); id2 == id {
		t.Error("request ids not unique")
	}

	// Caller-supplied ids are honored (trace propagation).
	req, _ := http.NewRequest("GET", srv.URL+"/v1/thing/1", nil)
	req.Header.Set("X-Request-ID", "caller-id-7")
	resp3, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if got := resp3.Header.Get("X-Request-ID"); got != "caller-id-7" {
		t.Errorf("X-Request-ID = %q, want caller-supplied caller-id-7", got)
	}

	if n := m.byClass[2].Value(); n != 2 {
		t.Errorf("2xx counter = %d, want 2", n)
	}
	if n := m.byClass[4].Value(); n != 1 {
		t.Errorf("4xx counter = %d, want 1", n)
	}
	if m.inFlight.Value() != 0 {
		t.Errorf("in_flight after requests = %d, want 0", m.inFlight.Value())
	}
	if m.latency.Count() != 3 {
		t.Errorf("latency observations = %d, want 3", m.latency.Count())
	}

	logs := logBuf.String()
	for _, want := range []string{`"route":"/v1/thing/{id}"`, `"status":404`, `"id":"caller-id-7"`} {
		if !strings.Contains(logs, want) {
			t.Errorf("access log missing %s in:\n%s", want, logs)
		}
	}
}

// TestMiddlewareTracing: a traced request gets a root span findable in
// the flight recorder, an inbound traceparent continues the caller's
// trace, a malformed one falls back to the X-Request-ID derivation, and
// 5xx responses mark the trace errored.
func TestMiddlewareTracing(t *testing.T) {
	tr := trace.New(trace.Config{Slow: -1}) // retain everything
	r := NewRegistry()
	m := NewHTTPMetrics(r, "/v1/thing/{id}")
	h := Middleware(m, nil, tr, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if sp := trace.FromContext(r.Context()); sp == nil {
			t.Error("no span in request context")
		}
		if r.URL.Path == "/v1/thing/boom" {
			http.Error(w, "boom", http.StatusInternalServerError)
			return
		}
		w.Write([]byte("ok"))
	}))

	// Inbound traceparent: the response echoes the same trace id with
	// the new root span id, and the recorder holds the trace under it.
	inbound := "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"
	req := httptest.NewRequest("GET", "/v1/thing/42", nil)
	req.Header.Set("traceparent", inbound)
	h.ServeHTTP(httptest.NewRecorder(), req)
	// The recorder publishes synchronously on End, so Find works now.
	found := tr.Recorder().Find("0af7651916cd43dd8448eb211c80319c")
	if found == nil {
		t.Fatal("trace with inbound id not in recorder")
	}
	if found.Error {
		t.Error("2xx trace marked errored")
	}

	// Malformed traceparent: trace id is derived from the request id,
	// so the trace is findable from the X-Request-ID the client got.
	req2 := httptest.NewRequest("GET", "/v1/thing/7", nil)
	req2.Header.Set("traceparent", "garbage")
	req2.Header.Set("X-Request-ID", "fallback-7")
	rec2 := httptest.NewRecorder()
	h.ServeHTTP(rec2, req2)
	want := trace.DeriveTraceID("fallback-7")
	if got := rec2.Header().Get("Traceparent"); !strings.Contains(got, want.String()) {
		t.Errorf("Traceparent = %q, want derived trace id %s", got, want)
	}
	if tr.Recorder().Find(want.String()) == nil {
		t.Error("derived-id trace not in recorder")
	}

	// 5xx pins the trace as errored.
	req3 := httptest.NewRequest("GET", "/v1/thing/boom", nil)
	rec3 := httptest.NewRecorder()
	h.ServeHTTP(rec3, req3)
	tid, _, ok := trace.ParseTraceparent(rec3.Header().Get("Traceparent"))
	if !ok {
		t.Fatalf("response Traceparent unparsable: %q", rec3.Header().Get("Traceparent"))
	}
	boom := tr.Recorder().Find(tid.String())
	if boom == nil {
		t.Fatal("5xx trace not in recorder")
	}
	if !boom.Error {
		t.Error("5xx trace not marked errored")
	}
}

// TestMiddlewareNilLogger: metrics without access logging.
func TestMiddlewareNilLogger(t *testing.T) {
	r := NewRegistry()
	m := NewHTTPMetrics(r, "/x")
	h := Middleware(m, nil, nil, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	req := httptest.NewRequest("GET", "/x", nil)
	h.ServeHTTP(httptest.NewRecorder(), req)
	if m.byClass[2].Value() != 1 {
		t.Errorf("2xx counter = %d, want 1", m.byClass[2].Value())
	}
}
