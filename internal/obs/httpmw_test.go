package obs

import (
	"bytes"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestMiddleware(t *testing.T) {
	r := NewRegistry()
	m := NewHTTPMetrics(r, "/v1/thing/{id}")
	var logBuf bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(&logBuf, nil))
	h := Middleware(m, logger, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if m.inFlight.Value() != 1 {
			t.Errorf("in_flight during request = %d, want 1", m.inFlight.Value())
		}
		if r.URL.Path == "/v1/thing/miss" {
			http.Error(w, "no", http.StatusNotFound)
			return
		}
		w.Write([]byte("ok"))
	}))

	srv := httptest.NewServer(h)
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/v1/thing/42")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	id := resp.Header.Get("X-Request-ID")
	if id == "" {
		t.Error("no X-Request-ID header")
	}
	resp2, err := http.Get(srv.URL + "/v1/thing/miss")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if id2 := resp2.Header.Get("X-Request-ID"); id2 == id {
		t.Error("request ids not unique")
	}

	// Caller-supplied ids are honored (trace propagation).
	req, _ := http.NewRequest("GET", srv.URL+"/v1/thing/1", nil)
	req.Header.Set("X-Request-ID", "caller-id-7")
	resp3, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if got := resp3.Header.Get("X-Request-ID"); got != "caller-id-7" {
		t.Errorf("X-Request-ID = %q, want caller-supplied caller-id-7", got)
	}

	if n := m.byClass[2].Value(); n != 2 {
		t.Errorf("2xx counter = %d, want 2", n)
	}
	if n := m.byClass[4].Value(); n != 1 {
		t.Errorf("4xx counter = %d, want 1", n)
	}
	if m.inFlight.Value() != 0 {
		t.Errorf("in_flight after requests = %d, want 0", m.inFlight.Value())
	}
	if m.latency.Count() != 3 {
		t.Errorf("latency observations = %d, want 3", m.latency.Count())
	}

	logs := logBuf.String()
	for _, want := range []string{`"route":"/v1/thing/{id}"`, `"status":404`, `"id":"caller-id-7"`} {
		if !strings.Contains(logs, want) {
			t.Errorf("access log missing %s in:\n%s", want, logs)
		}
	}
}

// TestMiddlewareNilLogger: metrics without access logging.
func TestMiddlewareNilLogger(t *testing.T) {
	r := NewRegistry()
	m := NewHTTPMetrics(r, "/x")
	h := Middleware(m, nil, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	req := httptest.NewRequest("GET", "/x", nil)
	h.ServeHTTP(httptest.NewRecorder(), req)
	if m.byClass[2].Value() != 1 {
		t.Errorf("2xx counter = %d, want 1", m.byClass[2].Value())
	}
}
