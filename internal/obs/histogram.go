package obs

import (
	"math"
	"sort"
	"sync/atomic"
)

// Histogram is a fixed-boundary histogram: observations are counted
// into len(bounds)+1 buckets (the last catches everything above the
// highest bound) plus a running sum and count. Boundaries are fixed at
// construction, so histograms of the same shape merge bucket-by-bucket
// without coordination — the property that lets per-shard histograms
// aggregate on scrape.
//
// Observe is lock-free and allocation-free: a binary search over the
// boundary slice plus three atomic adds. Concurrent Observe/Merge/
// Snapshot are safe; a snapshot taken during writes is a consistent
// mixture (per-bucket counts are each atomically read, the sum may lag
// the count by in-flight observations — the usual Prometheus weak
// consistency).
//
// A nil *Histogram is a no-op, like every obs type.
type Histogram struct {
	bounds []float64 // sorted upper bounds, le semantics
	counts []atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
	count  atomic.Uint64
}

// NewHistogram builds a histogram over the given sorted upper bounds
// (each bucket counts v <= bound; the implicit +Inf bucket is added).
// Bounds must be strictly increasing and non-empty.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("obs: histogram needs at least one bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram bounds must be strictly increasing")
		}
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// ExpBounds returns n exponentially spaced bounds: start, start*factor,
// start*factor^2, ... — the log-bucket ladder latency histograms use.
func ExpBounds(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("obs: ExpBounds wants start > 0, factor > 1, n >= 1")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// DefLatencyBounds is the default latency ladder in seconds: 50µs to
// ~105s in 21 ~2x steps, wide enough for both a sub-millisecond counter
// bump and a multi-second checkpoint write.
var DefLatencyBounds = ExpBounds(50e-6, 2, 21)

// Observe counts one value. 0-alloc; nil-safe.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Binary search for the first bound >= v; equal values land in the
	// bucket whose upper bound they match (le semantics).
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if h.bounds[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	h.counts[lo].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Merge folds other's buckets into h. Both histograms must share the
// same boundaries (they do when built from the same registration).
func (h *Histogram) Merge(other *Histogram) {
	if h == nil || other == nil {
		return
	}
	if len(h.bounds) != len(other.bounds) {
		panic("obs: merging histograms with different bucket layouts")
	}
	var n uint64
	for i := range other.counts {
		c := other.counts[i].Load()
		h.counts[i].Add(c)
		n += c
	}
	h.count.Add(n)
	os := math.Float64frombits(other.sum.Load())
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + os)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Bounds returns the bucket upper bounds (excluding the implicit +Inf).
func (h *Histogram) Bounds() []float64 { return h.bounds }

// BucketCounts returns the current per-bucket counts (the last entry is
// the +Inf overflow bucket).
func (h *Histogram) BucketCounts() []uint64 {
	out := make([]uint64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// Quantile estimates the q-quantile (0 <= q <= 1) by linear
// interpolation inside the bucket the rank falls in — the same estimate
// Prometheus's histogram_quantile computes. The overflow bucket clamps
// to the highest bound. Returns NaN on an empty histogram.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return math.NaN()
	}
	total := h.count.Load()
	if total == 0 {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum uint64
	for i := range h.counts {
		c := h.counts[i].Load()
		if c == 0 {
			continue
		}
		if float64(cum+c) >= rank {
			if i == len(h.bounds) {
				return h.bounds[len(h.bounds)-1] // clamp at +Inf
			}
			lower := 0.0
			if i > 0 {
				lower = h.bounds[i-1]
			}
			upper := h.bounds[i]
			frac := (rank - float64(cum)) / float64(c)
			if frac < 0 {
				frac = 0
			}
			return lower + (upper-lower)*frac
		}
		cum += c
	}
	return h.bounds[len(h.bounds)-1]
}

// snapshotHist is the JSON-ready summary Registry.Snapshot embeds.
type snapshotHist struct {
	Count uint64  `json:"count"`
	Sum   float64 `json:"sum"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
}

func (h *Histogram) snapshot() snapshotHist {
	s := snapshotHist{Count: h.Count(), Sum: h.Sum()}
	if s.Count > 0 {
		s.P50 = h.Quantile(0.5)
		s.P90 = h.Quantile(0.9)
		s.P99 = h.Quantile(0.99)
	}
	return s
}

// searchBounds is kept for tests that validate Observe's inlined search
// against the stdlib's.
func searchBounds(bounds []float64, v float64) int {
	return sort.SearchFloat64s(bounds, v)
}
