package obs

import (
	"math"
	"sync"
	"testing"
)

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4, 8})
	for _, v := range []float64{0.5, 1, 1.5, 2, 3, 7, 9, 100} {
		h.Observe(v)
	}
	// le semantics: a value equal to a bound lands in that bound's bucket.
	want := []uint64{2, 2, 1, 1, 2} // <=1: {0.5,1}; <=2: {1.5,2}; <=4: {3}; <=8: {7}; +Inf: {9,100}
	got := h.BucketCounts()
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("bucket %d = %d, want %d (all: %v)", i, got[i], want[i], got)
		}
	}
	if h.Count() != 8 {
		t.Errorf("Count = %d, want 8", h.Count())
	}
	if sum := h.Sum(); math.Abs(sum-124) > 1e-9 {
		t.Errorf("Sum = %v, want 124", sum)
	}
}

// TestHistogramSearchMatchesStdlib pins Observe's inlined binary search
// to sort.SearchFloat64s over the boundary ladder, including exact-bound
// and out-of-range values.
func TestHistogramSearchMatchesStdlib(t *testing.T) {
	bounds := ExpBounds(0.001, 2, 12)
	h := NewHistogram(bounds)
	probe := append([]float64{}, bounds...)
	probe = append(probe, 0, 0.0005, 0.0015, 1e9, -1)
	for _, v := range probe {
		before := h.BucketCounts()
		h.Observe(v)
		after := h.BucketCounts()
		hit := -1
		for i := range after {
			if after[i] != before[i] {
				hit = i
				break
			}
		}
		if want := searchBounds(bounds, v); hit != want {
			t.Errorf("Observe(%v) hit bucket %d, stdlib search says %d", v, hit, want)
		}
	}
}

func TestHistogramMerge(t *testing.T) {
	a := NewHistogram([]float64{1, 10})
	b := NewHistogram([]float64{1, 10})
	a.Observe(0.5)
	a.Observe(5)
	b.Observe(5)
	b.Observe(50)
	a.Merge(b)
	want := []uint64{1, 2, 1}
	got := a.BucketCounts()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("merged buckets = %v, want %v", got, want)
		}
	}
	if a.Count() != 4 {
		t.Errorf("merged Count = %d, want 4", a.Count())
	}
	if sum := a.Sum(); math.Abs(sum-60.5) > 1e-9 {
		t.Errorf("merged Sum = %v, want 60.5", sum)
	}
}

func TestHistogramQuantile(t *testing.T) {
	if q := NewHistogram([]float64{1}).Quantile(0.5); !math.IsNaN(q) {
		t.Errorf("empty Quantile = %v, want NaN", q)
	}
	// 100 uniform observations over (0, 10] with bounds every 1: the
	// interpolated quantile should track the true quantile within one
	// bucket width.
	h := NewHistogram([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i) / 10)
	}
	for _, tc := range []struct{ q, want float64 }{
		{0.5, 5}, {0.9, 9}, {0.99, 9.9}, {1, 10}, {0, 0},
	} {
		if got := h.Quantile(tc.q); math.Abs(got-tc.want) > 1 {
			t.Errorf("Quantile(%v) = %v, want %v +- 1", tc.q, got, tc.want)
		}
	}
	// Overflow clamps to the top bound.
	o := NewHistogram([]float64{1, 2})
	o.Observe(100)
	if got := o.Quantile(0.99); got != 2 {
		t.Errorf("overflow Quantile = %v, want clamp to 2", got)
	}
}

// TestConcurrentObserve hammers one histogram and one counter from many
// goroutines; run under -race this is the data-race guard, and the
// final counts must be exact regardless.
func TestConcurrentObserve(t *testing.T) {
	h := NewHistogram(DefLatencyBounds)
	c := &Counter{}
	g := &Gauge{}
	const workers, per = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(float64(i%1000) / 1e4)
				c.Inc()
				g.Add(1)
			}
		}(w)
	}
	wg.Wait()
	if h.Count() != workers*per {
		t.Errorf("histogram Count = %d, want %d", h.Count(), workers*per)
	}
	if c.Value() != workers*per {
		t.Errorf("counter = %d, want %d", c.Value(), workers*per)
	}
	if g.Value() != workers*per {
		t.Errorf("gauge = %d, want %d", g.Value(), workers*per)
	}
}

// TestObsZeroAlloc pins the hot-path contract: counter Inc/Add, gauge
// Set/Add and histogram Observe allocate nothing — including through
// nil receivers (the uninstrumented mode).
func TestObsZeroAlloc(t *testing.T) {
	c := &Counter{}
	g := &Gauge{}
	h := NewHistogram(DefLatencyBounds)
	var nilC *Counter
	var nilH *Histogram
	cases := []struct {
		name string
		fn   func()
	}{
		{"Counter.Inc", func() { c.Inc() }},
		{"Counter.Add", func() { c.Add(3) }},
		{"Gauge.Set", func() { g.Set(7) }},
		{"Gauge.Add", func() { g.Add(-1) }},
		{"Histogram.Observe", func() { h.Observe(0.0042) }},
		{"nil Counter.Inc", func() { nilC.Inc() }},
		{"nil Histogram.Observe", func() { nilH.Observe(1) }},
	}
	for _, tc := range cases {
		if n := testing.AllocsPerRun(1000, tc.fn); n != 0 {
			t.Errorf("%s allocates %v per op, want 0", tc.name, n)
		}
	}
}

func TestRateWindow(t *testing.T) {
	var r RateWindow
	now := int64(1_000_000)
	r.addAt(now, 1000)
	r.addAt(now, 500)
	r.addAt(now+1, 500)
	if got := r.rateAt(now+1, 10); got != 200 {
		t.Errorf("rate = %v, want (1500+500)/10 = 200", got)
	}
	// The window slides: 12s later those adds are stale.
	if got := r.rateAt(now+12, 10); got != 0 {
		t.Errorf("rate after idle = %v, want 0", got)
	}
	// Ring reuse: a slot from a previous lap is overwritten, not summed.
	r.addAt(now+rateSlots, 300)
	if got := r.rateAt(now+rateSlots, 1); got != 300 {
		t.Errorf("rate after lap = %v, want 300", got)
	}
	var nilR *RateWindow
	nilR.Add(5)
	if nilR.Rate(10) != 0 {
		t.Error("nil RateWindow should read 0")
	}
}
