package obs

import (
	"sync"
	"time"
)

// rateSlots is the ring size; it must exceed the largest window Rate is
// asked for, so a slot is always either inside the window or stale.
const rateSlots = 16

// RateWindow tracks a windowed byte (or event) rate: additions are
// bucketed into one-second ring slots and Rate averages the slots that
// fall inside the last `window` seconds. Unlike a lifetime
// bytes/uptime average, the reported rate decays to zero ~window
// seconds after traffic stops — which is what makes /v1/stats'
// ingest_mb_per_s mean "now", not "since boot".
//
// Adds take a mutex; callers add per block (~256 KiB), not per record,
// so contention is negligible. A nil *RateWindow is a no-op.
type RateWindow struct {
	mu   sync.Mutex
	secs [rateSlots]int64
	vals [rateSlots]uint64
}

// Add counts n at the current time.
func (r *RateWindow) Add(n uint64) { r.addAt(time.Now().Unix(), n) }

func (r *RateWindow) addAt(now int64, n uint64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	slot := now % rateSlots
	if r.secs[slot] != now {
		r.secs[slot] = now
		r.vals[slot] = 0
	}
	r.vals[slot] += n
	r.mu.Unlock()
}

// Rate returns the per-second rate over the last window seconds
// (window is clamped to [1, rateSlots-1]).
func (r *RateWindow) Rate(window int) float64 { return r.rateAt(time.Now().Unix(), window) }

func (r *RateWindow) rateAt(now int64, window int) float64 {
	if r == nil {
		return 0
	}
	if window < 1 {
		window = 1
	}
	if window > rateSlots-1 {
		window = rateSlots - 1
	}
	var sum uint64
	r.mu.Lock()
	for i := 0; i < rateSlots; i++ {
		if age := now - r.secs[i]; age >= 0 && age < int64(window) {
			sum += r.vals[i]
		}
	}
	r.mu.Unlock()
	return float64(sum) / float64(window)
}
