package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Registry holds named metric families and renders them in Prometheus
// text exposition format (WritePrometheus) or as a JSON-ready structure
// (Snapshot). Registration is cheap but locked — resolve metrics once
// at wiring time and keep the returned pointers; the returned objects
// are the lock-free hot path.
//
// Families are keyed by name; series within a family by their label
// set. Registering the same (name, labels) twice returns the same
// metric, so independent subsystems can share a series safely.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

type seriesKind int

const (
	kindCounter seriesKind = iota
	kindGauge
	kindHistogram
	kindCounterFunc
	kindGaugeFunc
)

func (k seriesKind) promType() string {
	switch k {
	case kindCounter, kindCounterFunc:
		return "counter"
	case kindHistogram:
		return "histogram"
	default:
		return "gauge"
	}
}

type series struct {
	labels string // pre-rendered `{k="v",...}` or ""
	ctr    *Counter
	gauge  *Gauge
	hist   *Histogram
	fn     func() float64
}

type family struct {
	name   string
	help   string
	kind   seriesKind
	order  []string // label keys in registration order
	series map[string]*series
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: map[string]*family{}}
}

// labelString renders k,v pairs into the exposition label block, with
// values escaped per the text format.
func labelString(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	if len(labels)%2 != 0 {
		panic("obs: labels must be key, value pairs")
	}
	var b strings.Builder
	b.WriteByte('{')
	for i := 0; i < len(labels); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(labels[i])
		b.WriteString(`="`)
		escapeLabel(&b, labels[i+1])
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(b *strings.Builder, v string) {
	for i := 0; i < len(v); i++ {
		switch v[i] {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(v[i])
		}
	}
}

func (r *Registry) family(name, help string, kind seriesKind) *family {
	f := r.fams[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind, series: map[string]*series{}}
		r.fams[name] = f
		return f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: %s registered as %s and %s", name, f.kind.promType(), kind.promType()))
	}
	if f.help == "" {
		f.help = help
	}
	return f
}

func (f *family) get(labels []string) (*series, string) {
	ls := labelString(labels)
	if s := f.series[ls]; s != nil {
		return s, ls
	}
	s := &series{labels: ls}
	f.series[ls] = s
	f.order = append(f.order, ls)
	return s, ls
}

// Counter registers (or returns the existing) counter series.
// labels are key, value pairs: Counter("x_total", "help", "shard", "3").
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name, help, kindCounter)
	s, _ := f.get(labels)
	if s.ctr == nil {
		s.ctr = &Counter{}
	}
	return s.ctr
}

// Gauge registers (or returns the existing) gauge series.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name, help, kindGauge)
	s, _ := f.get(labels)
	if s.gauge == nil {
		s.gauge = &Gauge{}
	}
	return s.gauge
}

// Histogram registers (or returns the existing) histogram series over
// the given bucket bounds (nil = DefLatencyBounds). Re-registration
// ignores the bounds argument and returns the existing histogram.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name, help, kindHistogram)
	s, _ := f.get(labels)
	if s.hist == nil {
		if bounds == nil {
			bounds = DefLatencyBounds
		}
		s.hist = NewHistogram(bounds)
	}
	return s.hist
}

// CounterFunc registers a counter series whose value is sampled from fn
// at scrape time — for monotone values another subsystem already
// maintains (a store's record total, cumulative interned bytes).
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name, help, kindCounterFunc)
	s, _ := f.get(labels)
	s.fn = fn
}

// GaugeFunc registers a gauge series sampled from fn at scrape time —
// queue depths, goroutine counts, heap sizes.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name, help, kindGaugeFunc)
	s, _ := f.get(labels)
	s.fn = fn
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders every family in text exposition format
// (sorted by family name, series in registration order). Func-backed
// series are sampled now.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.fams))
	for name := range r.fams {
		names = append(names, name)
	}
	sort.Strings(names)
	fams := make([]*family, len(names))
	for i, name := range names {
		fams[i] = r.fams[name]
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		if f.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.name, f.help)
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind.promType())
		for _, ls := range f.order {
			s := f.series[ls]
			switch f.kind {
			case kindCounter:
				fmt.Fprintf(&b, "%s%s %d\n", f.name, ls, s.ctr.Value())
			case kindGauge:
				fmt.Fprintf(&b, "%s%s %d\n", f.name, ls, s.gauge.Value())
			case kindCounterFunc, kindGaugeFunc:
				fmt.Fprintf(&b, "%s%s %s\n", f.name, ls, formatFloat(s.fn()))
			case kindHistogram:
				writePromHistogram(&b, f.name, ls, s.hist)
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// writePromHistogram emits the cumulative _bucket/_sum/_count triplet.
// The le label is appended to the series' own labels.
func writePromHistogram(b *strings.Builder, name, ls string, h *Histogram) {
	counts := h.BucketCounts()
	bounds := h.Bounds()
	open, sep := "{", ""
	if ls != "" {
		open, sep = ls[:len(ls)-1], ","
	}
	var cum uint64
	for i, c := range counts {
		cum += c
		le := "+Inf"
		if i < len(bounds) {
			le = formatFloat(bounds[i])
		}
		fmt.Fprintf(b, "%s_bucket%s%sle=%q} %d\n", name, open, sep, le, cum)
	}
	fmt.Fprintf(b, "%s_sum%s %s\n", name, ls, formatFloat(h.Sum()))
	fmt.Fprintf(b, "%s_count%s %d\n", name, ls, h.Count())
}

// Snapshot renders the registry as a JSON-ready map: family name to
// value (single unlabeled series) or to a labels-to-value map.
// Histograms become {count, sum, p50, p90, p99}. This is what
// /v1/stats embeds as its "obs" section.
func (r *Registry) Snapshot() map[string]any {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.fams))
	for _, f := range r.fams {
		fams = append(fams, f)
	}
	r.mu.Unlock()

	out := make(map[string]any, len(fams))
	for _, f := range fams {
		one := func(s *series) any {
			switch f.kind {
			case kindCounter:
				return s.ctr.Value()
			case kindGauge:
				return s.gauge.Value()
			case kindCounterFunc, kindGaugeFunc:
				return s.fn()
			default:
				return s.hist.snapshot()
			}
		}
		if len(f.series) == 1 {
			if s, ok := f.series[""]; ok {
				out[f.name] = one(s)
				continue
			}
		}
		m := make(map[string]any, len(f.series))
		for ls, s := range f.series {
			key := strings.Trim(ls, "{}")
			m[key] = one(s)
		}
		out[f.name] = m
	}
	return out
}
