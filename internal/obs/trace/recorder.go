package trace

import (
	"encoding/json"
	"sort"
	"sync/atomic"
)

// recorderShards spreads recording across independent rings keyed by
// trace-id low bits so concurrent publishers never contend on one
// counter. Power of two.
const recorderShards = 4

// Trace is one completed, immutable trace tree as published to the
// flight recorder and rendered at /debug/traces. Spans are flat with
// parent links; TreeView nests them.
type Trace struct {
	ID            string     `json:"id"`
	Root          string     `json:"root"`
	StartUnixNano int64      `json:"start_unix_nano"`
	EndUnixNano   int64      `json:"end_unix_nano"`
	DurationMS    float64    `json:"duration_ms"`
	Slow          bool       `json:"slow"`
	Error         bool       `json:"error"`
	DroppedSpans  int        `json:"dropped_spans,omitempty"`
	Spans         []SpanData `json:"spans"`
}

// SpanData is one completed span.
type SpanData struct {
	ID            string         `json:"id"`
	Parent        string         `json:"parent,omitempty"`
	Name          string         `json:"name"`
	StartUnixNano int64          `json:"start_unix_nano"`
	EndUnixNano   int64          `json:"end_unix_nano"`
	DurationMS    float64        `json:"duration_ms"`
	Attrs         map[string]any `json:"attrs,omitempty"`
	Events        []EventData    `json:"events,omitempty"`
	Error         string         `json:"error,omitempty"`
	DroppedEvents int            `json:"dropped_events,omitempty"`
}

// EventData is one completed span event.
type EventData struct {
	Name       string         `json:"name"`
	AtUnixNano int64          `json:"at_unix_nano"`
	Attrs      map[string]any `json:"attrs,omitempty"`
}

// SpanNode is a span with its children nested — the tree view.
type SpanNode struct {
	SpanData
	Children []*SpanNode `json:"children,omitempty"`
}

// TreeView nests the flat span list by parent links. Orphans (parent
// dropped past the span cap, or a remote parent from an inherited
// traceparent) attach to the root. Siblings sort by start time.
func (t *Trace) TreeView() *SpanNode {
	if len(t.Spans) == 0 {
		return nil
	}
	nodes := make(map[string]*SpanNode, len(t.Spans))
	for i := range t.Spans {
		nodes[t.Spans[i].ID] = &SpanNode{SpanData: t.Spans[i]}
	}
	root := nodes[t.Spans[0].ID]
	for i := range t.Spans {
		n := nodes[t.Spans[i].ID]
		if n == root {
			continue
		}
		p, ok := nodes[n.Parent]
		if !ok || p == n {
			p = root
		}
		p.Children = append(p.Children, n)
	}
	var sortKids func(n *SpanNode)
	sortKids = func(n *SpanNode) {
		sort.Slice(n.Children, func(i, j int) bool {
			return n.Children[i].StartUnixNano < n.Children[j].StartUnixNano
		})
		for _, c := range n.Children {
			sortKids(c)
		}
	}
	sortKids(root)
	return root
}

// TreeJSON renders the nested tree as compact JSON — the payload of the
// slow-trace log line.
func (t *Trace) TreeJSON() []byte {
	b, err := json.Marshal(t.TreeView())
	if err != nil {
		return []byte("{}")
	}
	return b
}

// ring is a fixed-size lock-free overwrite buffer of completed traces:
// put claims a slot with one atomic add and stores the pointer; readers
// load slots without coordination and may see a torn ordering but never
// a torn trace (traces are immutable once published).
type ring struct {
	pos   atomic.Uint64
	slots []atomic.Pointer[Trace]
}

func newRing(n int) *ring { return &ring{slots: make([]atomic.Pointer[Trace], n)} }

func (r *ring) put(t *Trace) {
	i := (r.pos.Add(1) - 1) % uint64(len(r.slots))
	r.slots[i].Store(t)
}

func (r *ring) collect(out []*Trace) []*Trace {
	for i := range r.slots {
		if t := r.slots[i].Load(); t != nil {
			out = append(out, t)
		}
	}
	return out
}

// recShard pairs two rings: notable (slow or errored traces — never
// evicted by fast traffic) and recent (the sampled remainder). Tail
// retention falls out of the split: a flood of fast requests can only
// cycle the recent ring, so the slow trace the operator is hunting
// stays put until enough *notable* traces displace it.
type recShard struct {
	notable *ring
	recent  *ring
}

// Recorder is the flight recorder: it retains recently completed
// traces for GET /debug/traces. All methods are nil-safe.
type Recorder struct {
	shards [recorderShards]recShard
	sample uint64

	seq         atomic.Uint64 // sampling clock
	total       atomic.Uint64
	keptSlow    atomic.Uint64
	keptError   atomic.Uint64
	keptSampled atomic.Uint64
	dropped     atomic.Uint64
}

func newRecorder(ringSize int, sample uint64) *Recorder {
	r := &Recorder{sample: sample}
	for i := range r.shards {
		r.shards[i] = recShard{notable: newRing(ringSize), recent: newRing(ringSize)}
	}
	return r
}

// record applies tail-based retention to one completed trace and
// reports whether it was kept.
func (r *Recorder) record(t *Trace) bool {
	r.total.Add(1)
	sh := &r.shards[shardOf(t.ID)]
	switch {
	case t.Error:
		r.keptError.Add(1)
		sh.notable.put(t)
	case t.Slow:
		r.keptSlow.Add(1)
		sh.notable.put(t)
	case r.seq.Add(1)%r.sample == 0:
		r.keptSampled.Add(1)
		sh.recent.put(t)
	default:
		r.dropped.Add(1)
		return false
	}
	return true
}

// shardOf picks a shard from the trace id's tail hex digit.
func shardOf(id string) int {
	if len(id) == 0 {
		return 0
	}
	return int(id[len(id)-1]) % recorderShards
}

// Snapshot returns up to limit retained traces, newest first, skipping
// those shorter than minDurMS. limit <= 0 means no limit.
func (r *Recorder) Snapshot(limit int, minDurMS float64) []*Trace {
	if r == nil {
		return nil
	}
	var all []*Trace
	for i := range r.shards {
		all = r.shards[i].notable.collect(all)
		all = r.shards[i].recent.collect(all)
	}
	if minDurMS > 0 {
		kept := all[:0]
		for _, t := range all {
			if t.DurationMS >= minDurMS {
				kept = append(kept, t)
			}
		}
		all = kept
	}
	sort.Slice(all, func(i, j int) bool { return all[i].EndUnixNano > all[j].EndUnixNano })
	if limit > 0 && len(all) > limit {
		all = all[:limit]
	}
	return all
}

// Find returns the retained trace with the given id, or nil.
func (r *Recorder) Find(id string) *Trace {
	if r == nil || id == "" {
		return nil
	}
	sh := &r.shards[shardOf(id)]
	for _, rg := range []*ring{sh.notable, sh.recent} {
		for i := range rg.slots {
			if t := rg.slots[i].Load(); t != nil && t.ID == id {
				return t
			}
		}
	}
	return nil
}

// RecorderStats summarizes retention behavior for /v1/stats.
type RecorderStats struct {
	SlowThresholdMS float64 `json:"slow_threshold_ms"`
	Capacity        int     `json:"capacity"`
	Retained        int     `json:"retained"`
	RecordedTotal   uint64  `json:"recorded_total"`
	KeptSlow        uint64  `json:"kept_slow"`
	KeptError       uint64  `json:"kept_error"`
	KeptSampled     uint64  `json:"kept_sampled"`
	SampledOut      uint64  `json:"sampled_out"`
}

// Stats returns retention counters (nil recorder → nil).
func (r *Recorder) Stats() *RecorderStats {
	if r == nil {
		return nil
	}
	st := &RecorderStats{
		RecordedTotal: r.total.Load(),
		KeptSlow:      r.keptSlow.Load(),
		KeptError:     r.keptError.Load(),
		KeptSampled:   r.keptSampled.Load(),
		SampledOut:    r.dropped.Load(),
	}
	for i := range r.shards {
		sh := &r.shards[i]
		st.Capacity += len(sh.notable.slots) + len(sh.recent.slots)
		for j := range sh.notable.slots {
			if sh.notable.slots[j].Load() != nil {
				st.Retained++
			}
		}
		for j := range sh.recent.slots {
			if sh.recent.slots[j].Load() != nil {
				st.Retained++
			}
		}
	}
	return st
}
