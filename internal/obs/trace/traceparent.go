package trace

import (
	"encoding/hex"
	"hash/fnv"
)

// Traceparent is the W3C trace-context header name.
const Traceparent = "traceparent"

// ParseTraceparent parses a W3C traceparent header value:
//
//	00-<32 hex trace-id>-<16 hex parent-span-id>-<2 hex flags>
//
// Only version 00 is accepted; all-zero trace or span ids are invalid
// per spec. Returns ok=false on any malformed input — the caller then
// falls back to deriving a fresh identity.
func ParseTraceparent(v string) (id TraceID, parent SpanID, ok bool) {
	if len(v) != 55 || v[0] != '0' || v[1] != '0' ||
		v[2] != '-' || v[35] != '-' || v[52] != '-' {
		return id, parent, false
	}
	if _, err := hex.Decode(id[:], []byte(v[3:35])); err != nil {
		return TraceID{}, SpanID{}, false
	}
	if _, err := hex.Decode(parent[:], []byte(v[36:52])); err != nil {
		return TraceID{}, SpanID{}, false
	}
	if _, err := hex.DecodeString(v[53:55]); err != nil {
		return TraceID{}, SpanID{}, false
	}
	if id.IsZero() || parent.IsZero() {
		return TraceID{}, SpanID{}, false
	}
	return id, parent, true
}

// FormatTraceparent renders the outbound traceparent for a span, always
// with the sampled flag set (censord records tail-based, so every
// request is a candidate).
func FormatTraceparent(id TraceID, span SpanID) string {
	b := make([]byte, 0, 55)
	b = append(b, '0', '0', '-')
	b = hexAppend(b, id[:])
	b = append(b, '-')
	b = hexAppend(b, span[:])
	b = append(b, '-', '0', '1')
	return string(b)
}

func hexAppend(dst, src []byte) []byte {
	const digits = "0123456789abcdef"
	for _, c := range src {
		dst = append(dst, digits[c>>4], digits[c&0xf])
	}
	return dst
}

// DeriveTraceID maps an opaque request id (the X-Request-ID header) to
// a deterministic trace id, so a request without a traceparent still
// gets a trace findable from the id the client already logged. FNV-1a
// over two salts fills the 16 bytes.
func DeriveTraceID(requestID string) TraceID {
	var id TraceID
	h := fnv.New64a()
	h.Write([]byte(requestID))
	v := h.Sum64()
	h.Write([]byte{0xff})
	w := h.Sum64()
	for i := 0; i < 8; i++ {
		id[i] = byte(v >> (8 * (7 - i)))
		id[8+i] = byte(w >> (8 * (7 - i)))
	}
	if id.IsZero() {
		id[15] = 1
	}
	return id
}
