// Package trace is the daemon's request-scoped tracing layer: a
// zero-dependency, Dapper-style span tracer plus an always-on in-memory
// flight recorder of recently completed traces. Where internal/obs
// answers "how is the daemon doing in aggregate", this package answers
// "where did the time go inside THAT request": every HTTP request (and
// every background operation — snapshot cuts, checkpoint writes, watch
// polls, compactions) becomes a tree of timed spans, and the trees that
// matter — slow ones past the configured threshold, errored ones — are
// always retained for retrieval at GET /debug/traces, while the fast
// majority is sampled.
//
// Design constraints, in order:
//
//   - The no-trace fast path must be free. Every Span method is
//     nil-receiver safe and allocation-free on a nil receiver, and
//     FromContext on a context without a span allocates nothing (pinned
//     by TestNoTraceZeroAlloc), so instrumented code keeps one
//     unconditional code path whether or not a trace is active —
//     exactly the nil-safe-hook discipline of internal/obs.
//
//   - Retention is tail-based. Whether a trace was worth keeping is
//     only known when it ends (was it slow? did it error?), so the
//     keep/sample decision happens at completion, not at start — no
//     head sampling that throws away the one trace the operator needed.
//
//   - Publication is refcounted, not root-scoped. Spans may outlive
//     the root (a shard applies an ingest batch after the HTTP response
//     went out); a trace is published to the recorder only when its
//     root has ended AND every started span has ended, so the recorded
//     tree is always complete.
//
//   - No external dependencies, no goroutines. The recorder is a set
//     of lock-free atomic-pointer rings; the per-trace accumulator uses
//     one mutex touched only while a trace is actually active.
//
// Trace ids interoperate with W3C trace context (traceparent.go): an
// inbound traceparent header continues the caller's trace, an absent
// one derives the trace id deterministically from the X-Request-ID —
// the groundwork for cross-peer query fan-out, where one range query
// scatters to N censord peers and the per-peer spans join one tree.
package trace

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"log/slog"
	"sync"
	"sync/atomic"
	"time"
)

// TraceID identifies one trace tree (16 bytes, rendered as 32 hex
// digits, W3C-compatible).
type TraceID [16]byte

// IsZero reports whether the id is the invalid all-zeros id.
func (id TraceID) IsZero() bool { return id == TraceID{} }

// String renders the id as 32 lowercase hex digits.
func (id TraceID) String() string { return hex.EncodeToString(id[:]) }

// SpanID identifies one span within a trace (8 bytes, 16 hex digits).
type SpanID [8]byte

// IsZero reports whether the id is the invalid all-zeros id.
func (id SpanID) IsZero() bool { return id == SpanID{} }

// String renders the id as 16 lowercase hex digits.
func (id SpanID) String() string { return hex.EncodeToString(id[:]) }

// DefaultSlow is the slow-trace threshold when Config.Slow is zero: a
// root span at or above it is always retained and logged.
const DefaultSlow = 250 * time.Millisecond

// DefaultSample keeps one in this many fast (not slow, not errored)
// traces when Config.Sample is zero.
const DefaultSample = 16

// DefaultRingSize is the per-ring slot count per recorder shard when
// Config.RingSize is zero. With recorderShards shards and two rings
// each (recent + notable), the default recorder retains up to
// 2*recorderShards*DefaultRingSize completed traces.
const DefaultRingSize = 64

// maxSpansPerTrace bounds one trace's memory: Child calls past the cap
// return nil (a no-op span) and are counted in Trace.DroppedSpans, so a
// runaway loop cannot turn the flight recorder into a heap bomb.
const maxSpansPerTrace = 1024

// maxEventsPerSpan bounds one span's event list the same way; drops are
// counted in SpanData.DroppedEvents.
const maxEventsPerSpan = 128

// Config configures a Tracer.
type Config struct {
	// Slow is the tail-retention threshold: traces whose root duration
	// reaches it are always kept by the recorder and emitted as one
	// structured log line. 0 picks DefaultSlow; negative treats every
	// trace as slow (useful in tests).
	Slow time.Duration
	// Sample keeps one in Sample fast traces (1 = keep all). 0 picks
	// DefaultSample.
	Sample int
	// RingSize is the per-shard, per-ring retention capacity. 0 picks
	// DefaultRingSize.
	RingSize int
	// Logger receives the one-line span-tree dump for each slow or
	// errored trace. nil logs nothing.
	Logger *slog.Logger
}

// Tracer creates traces and feeds their completed trees to its flight
// recorder. A nil *Tracer is a valid no-op: Root and Op return nil
// spans / do nothing, so subsystems hold an unconditional *Tracer field
// exactly like they hold nil-safe obs metrics.
type Tracer struct {
	slow   time.Duration
	logger *slog.Logger
	rec    *Recorder

	// id generation: a crypto-seeded base whisked with a counter by
	// splitmix64 — unique, unpredictable enough for correlation ids,
	// and allocation-free per id.
	idBase uint64
	idSeq  atomic.Uint64
}

// New builds a Tracer and its Recorder.
func New(cfg Config) *Tracer {
	if cfg.Slow == 0 {
		cfg.Slow = DefaultSlow
	}
	if cfg.Sample <= 0 {
		cfg.Sample = DefaultSample
	}
	if cfg.RingSize <= 0 {
		cfg.RingSize = DefaultRingSize
	}
	var seed [8]byte
	if _, err := rand.Read(seed[:]); err != nil {
		binary.LittleEndian.PutUint64(seed[:], uint64(time.Now().UnixNano()))
	}
	return &Tracer{
		slow:   cfg.Slow,
		logger: cfg.Logger,
		rec:    newRecorder(cfg.RingSize, uint64(cfg.Sample)),
		idBase: binary.LittleEndian.Uint64(seed[:]),
	}
}

// Recorder returns the tracer's flight recorder (nil for a nil tracer).
func (tr *Tracer) Recorder() *Recorder {
	if tr == nil {
		return nil
	}
	return tr.rec
}

// Slow returns the slow-trace threshold (0 for a nil tracer).
func (tr *Tracer) Slow() time.Duration {
	if tr == nil {
		return 0
	}
	return tr.slow
}

// splitmix64 is the finalizer of the SplitMix64 generator: a cheap,
// high-quality bijective mix.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func (tr *Tracer) newTraceID() TraceID {
	var id TraceID
	n := tr.idSeq.Add(1)
	binary.BigEndian.PutUint64(id[:8], splitmix64(tr.idBase^n))
	binary.BigEndian.PutUint64(id[8:], splitmix64(tr.idBase+n))
	return id
}

func (tr *Tracer) newSpanID() SpanID {
	var id SpanID
	binary.BigEndian.PutUint64(id[:], splitmix64(tr.idBase^tr.idSeq.Add(1)))
	return id
}

// Root starts a new trace with a fresh trace id and returns its root
// span. nil tracer → nil span.
func (tr *Tracer) Root(name string) *Span {
	if tr == nil {
		return nil
	}
	return tr.root(name, tr.newTraceID(), SpanID{})
}

// RootFrom starts a trace continuing an inherited identity: id becomes
// the trace id (a zero id gets a fresh one) and remoteParent, when
// non-zero, links the root span under the caller's span — the inbound
// half of W3C trace-context propagation.
func (tr *Tracer) RootFrom(name string, id TraceID, remoteParent SpanID) *Span {
	if tr == nil {
		return nil
	}
	if id.IsZero() {
		id = tr.newTraceID()
	}
	return tr.root(name, id, remoteParent)
}

func (tr *Tracer) root(name string, id TraceID, parent SpanID) *Span {
	tc := &active{tracer: tr, id: id}
	s := &Span{
		tc:     tc,
		id:     tr.newSpanID(),
		parent: parent,
		name:   name,
		start:  time.Now(),
		isRoot: true,
	}
	tc.spans = append(tc.spans, s)
	tc.open = 1
	return s
}

// Op records one already-completed background operation as a
// single-span trace: compactions, periodic jobs — anything with a
// start, an end (now) and no children. err marks the trace errored.
func (tr *Tracer) Op(name string, start time.Time, err error, attrs ...Attr) {
	if tr == nil {
		return
	}
	s := tr.Root(name)
	s.start = start
	s.attrs = append(s.attrs, attrs...)
	if err != nil {
		s.Fail(err)
	}
	s.End()
}

// AttrKind discriminates the typed attribute value.
type AttrKind uint8

// Attribute value kinds.
const (
	KindStr AttrKind = iota
	KindInt
	KindFloat
	KindBool
)

// Attr is one typed key/value pair on a span or event. Values are held
// unboxed so constructing an Attr never allocates.
type Attr struct {
	Key  string
	Kind AttrKind
	str  string
	num  int64
	f    float64
}

// Str builds a string attribute.
func Str(k, v string) Attr { return Attr{Key: k, Kind: KindStr, str: v} }

// Int builds an integer attribute.
func Int(k string, v int64) Attr { return Attr{Key: k, Kind: KindInt, num: v} }

// Float builds a float attribute.
func Float(k string, v float64) Attr { return Attr{Key: k, Kind: KindFloat, f: v} }

// Bool builds a boolean attribute.
func Bool(k string, v bool) Attr {
	a := Attr{Key: k, Kind: KindBool}
	if v {
		a.num = 1
	}
	return a
}

// Value returns the attribute's value as an any (boxing; used at
// publication and rendering time, never on the hot path).
func (a Attr) Value() any {
	switch a.Kind {
	case KindInt:
		return a.num
	case KindFloat:
		return a.f
	case KindBool:
		return a.num != 0
	default:
		return a.str
	}
}

// event is one point-in-time marker inside a span.
type event struct {
	name  string
	at    time.Time
	attrs []Attr
}

// active is the shared per-trace accumulator: every span of one
// in-flight trace registers here, and when the root has ended and the
// open-span refcount drains to zero the trace is snapshotted and
// published to the recorder. One mutex per trace: contention exists
// only while a trace is live, and only between goroutines genuinely
// working on the same request.
type active struct {
	tracer *Tracer
	id     TraceID

	mu        sync.Mutex
	spans     []*Span
	open      int
	rootEnded bool
	published bool
	errored   bool
	dropped   int
}

// Span is one timed operation inside a trace. Starting children and
// mutating attrs/events is safe from multiple goroutines (the per-trace
// mutex serializes them); End must be called exactly once per span —
// idempotence is not promised, use defer. All methods are nil-receiver
// safe no-ops, which is the disabled-tracing fast path.
type Span struct {
	tc     *active
	id     SpanID
	parent SpanID
	name   string
	isRoot bool

	start time.Time
	// Everything below tc.mu.
	end       time.Time
	ended     bool
	attrs     []Attr
	events    []event
	errMsg    string
	dropEvent int
}

// TraceID returns the owning trace's id (zero for nil).
func (s *Span) TraceID() TraceID {
	if s == nil {
		return TraceID{}
	}
	return s.tc.id
}

// ID returns the span's id (zero for nil).
func (s *Span) ID() SpanID {
	if s == nil {
		return SpanID{}
	}
	return s.id
}

// Child starts a child span. Returns nil when s is nil or the trace hit
// maxSpansPerTrace (the drop is counted); either way the result is safe
// to use.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	tc := s.tc
	c := &Span{
		tc:     tc,
		parent: s.id,
		name:   name,
		start:  time.Now(),
	}
	tc.mu.Lock()
	if tc.published || len(tc.spans) >= maxSpansPerTrace {
		tc.dropped++
		tc.mu.Unlock()
		return nil
	}
	c.id = tc.tracer.newSpanID()
	tc.spans = append(tc.spans, c)
	tc.open++
	tc.mu.Unlock()
	return c
}

// SetAttrs appends typed attributes to the span.
func (s *Span) SetAttrs(attrs ...Attr) {
	if s == nil {
		return
	}
	s.tc.mu.Lock()
	s.attrs = append(s.attrs, attrs...)
	s.tc.mu.Unlock()
}

// Event records a point-in-time marker on the span.
func (s *Span) Event(name string, attrs ...Attr) {
	if s == nil {
		return
	}
	now := time.Now()
	s.tc.mu.Lock()
	if len(s.events) >= maxEventsPerSpan {
		s.dropEvent++
		s.tc.mu.Unlock()
		return
	}
	var as []Attr
	if len(attrs) > 0 {
		as = append(as, attrs...)
	}
	s.events = append(s.events, event{name: name, at: now, attrs: as})
	s.tc.mu.Unlock()
}

// Fail marks the span (and therefore the whole trace) errored. A nil
// err is ignored, so `sp.Fail(err)` composes with the usual error
// returns without a branch.
func (s *Span) Fail(err error) {
	if s == nil || err == nil {
		return
	}
	s.tc.mu.Lock()
	if s.errMsg == "" {
		s.errMsg = err.Error()
	}
	s.tc.errored = true
	s.tc.mu.Unlock()
}

// End finishes the span. When it is the last open span of a trace
// whose root has ended, the trace is snapshotted and published to the
// flight recorder (and, if slow or errored, logged).
func (s *Span) End() {
	if s == nil {
		return
	}
	now := time.Now()
	tc := s.tc
	tc.mu.Lock()
	if s.ended {
		tc.mu.Unlock()
		return
	}
	s.ended = true
	s.end = now
	tc.open--
	if s.isRoot {
		tc.rootEnded = true
	}
	var done *Trace
	if tc.rootEnded && tc.open <= 0 && !tc.published {
		tc.published = true
		done = tc.snapshotLocked()
	}
	tc.mu.Unlock()
	if done != nil {
		tc.tracer.publish(done)
	}
}

// snapshotLocked freezes the trace into its immutable published form.
// Caller holds tc.mu.
func (tc *active) snapshotLocked() *Trace {
	root := tc.spans[0]
	t := &Trace{
		ID:            tc.id.String(),
		Root:          root.name,
		StartUnixNano: root.start.UnixNano(),
		EndUnixNano:   root.end.UnixNano(),
		Error:         tc.errored,
		DroppedSpans:  tc.dropped,
		Spans:         make([]SpanData, 0, len(tc.spans)),
	}
	t.DurationMS = float64(t.EndUnixNano-t.StartUnixNano) / 1e6
	t.Slow = tc.tracer.slow < 0 || root.end.Sub(root.start) >= tc.tracer.slow
	for _, s := range tc.spans {
		sd := SpanData{
			ID:            s.id.String(),
			Name:          s.name,
			StartUnixNano: s.start.UnixNano(),
			EndUnixNano:   s.end.UnixNano(),
			Error:         s.errMsg,
			DroppedEvents: s.dropEvent,
		}
		if !s.parent.IsZero() {
			sd.Parent = s.parent.String()
		}
		if !s.ended {
			// Unreachable by refcount, but never publish a zero end.
			sd.EndUnixNano = time.Now().UnixNano()
		}
		sd.DurationMS = float64(sd.EndUnixNano-sd.StartUnixNano) / 1e6
		if len(s.attrs) > 0 {
			sd.Attrs = make(map[string]any, len(s.attrs))
			for _, a := range s.attrs {
				sd.Attrs[a.Key] = a.Value()
			}
		}
		for _, e := range s.events {
			ed := EventData{Name: e.name, AtUnixNano: e.at.UnixNano()}
			if len(e.attrs) > 0 {
				ed.Attrs = make(map[string]any, len(e.attrs))
				for _, a := range e.attrs {
					ed.Attrs[a.Key] = a.Value()
				}
			}
			sd.Events = append(sd.Events, ed)
		}
		t.Spans = append(t.Spans, sd)
	}
	return t
}

// publish hands a completed trace to the recorder and logs slow or
// errored ones as one structured line carrying the full span tree.
func (tr *Tracer) publish(t *Trace) {
	kept := tr.rec.record(t)
	if tr.logger == nil || !(t.Slow || t.Error) {
		return
	}
	level := slog.LevelWarn
	if !t.Slow {
		level = slog.LevelInfo
	}
	tr.logger.LogAttrs(nil, level, "slow trace",
		slog.String("trace", t.ID),
		slog.String("root", t.Root),
		slog.Float64("ms", t.DurationMS),
		slog.Bool("error", t.Error),
		slog.Bool("kept", kept),
		slog.Int("spans", len(t.Spans)),
		slog.String("tree", string(t.TreeJSON())),
	)
}

// ctxKey is the context key type for span propagation.
type ctxKey struct{}

// NewContext returns ctx carrying sp. A nil sp returns ctx unchanged,
// so the no-trace path allocates nothing.
func NewContext(ctx context.Context, sp *Span) context.Context {
	if sp == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, sp)
}

// FromContext returns the span carried by ctx, or nil. Never allocates.
func FromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	sp, _ := ctx.Value(ctxKey{}).(*Span)
	return sp
}
