package trace

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// mkTrace publishes one synthetic trace through a tracer configured so
// slow/error classification is controlled by the caller.
func publish(tr *Tracer, slow bool, fail bool) string {
	root := tr.Root("op")
	if slow {
		// Slow threshold is 1ns in these tests, so any real duration
		// qualifies; fast traces are produced with Slow: time.Hour.
		time.Sleep(time.Microsecond)
	}
	if fail {
		root.Fail(fmt.Errorf("boom"))
	}
	root.End()
	return root.TraceID().String()
}

// TestEvictionKeepsNotable is the tail-retention contract: a flood of
// fast traces must not evict slow or errored ones.
func TestEvictionKeepsNotable(t *testing.T) {
	tr := New(Config{Slow: -1, RingSize: 4, Sample: 1})
	slowIDs := make([]string, 0, 4)
	for i := 0; i < 4; i++ {
		slowIDs = append(slowIDs, publish(tr, true, false))
	}

	fast := New(Config{Slow: time.Hour, RingSize: 4, Sample: 1})
	// Reuse the SAME recorder so fast traffic competes with the slow
	// traces for slots.
	fast.rec = tr.rec
	var errID string
	for i := 0; i < 500; i++ {
		if i == 250 {
			root := fast.Root("op")
			root.Fail(fmt.Errorf("x"))
			root.End()
			errID = root.TraceID().String()
		} else {
			publish(fast, false, false)
		}
	}

	for _, id := range slowIDs {
		if tr.rec.Find(id) == nil {
			t.Errorf("slow trace %s evicted by fast traffic", id)
		}
	}
	if tr.rec.Find(errID) == nil {
		t.Error("error trace evicted by fast traffic")
	}
	st := tr.rec.Stats()
	if st.KeptSlow != 4 || st.KeptError != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.SampledOut != 0 && st.KeptSampled+st.SampledOut != 499 {
		t.Fatalf("fast accounting: %+v", st)
	}
}

func TestSampling(t *testing.T) {
	tr := New(Config{Slow: time.Hour, RingSize: 256, Sample: 10})
	for i := 0; i < 100; i++ {
		publish(tr, false, false)
	}
	st := tr.rec.Stats()
	if st.KeptSampled != 10 || st.SampledOut != 90 {
		t.Fatalf("sample 1-in-10 of 100: kept %d dropped %d", st.KeptSampled, st.SampledOut)
	}
}

func TestSnapshotOrderLimitFilter(t *testing.T) {
	tr := New(Config{Slow: -1, RingSize: 64})
	for i := 0; i < 10; i++ {
		publish(tr, false, false)
	}
	all := tr.rec.Snapshot(0, 0)
	if len(all) != 10 {
		t.Fatalf("snapshot len = %d", len(all))
	}
	for i := 1; i < len(all); i++ {
		if all[i-1].EndUnixNano < all[i].EndUnixNano {
			t.Fatal("snapshot not newest-first")
		}
	}
	if got := tr.rec.Snapshot(3, 0); len(got) != 3 {
		t.Fatalf("limit 3 -> %d", len(got))
	}
	if got := tr.rec.Snapshot(0, 1e9); len(got) != 0 {
		t.Fatalf("min filter let %d through", len(got))
	}
}

// TestRecorderContention exercises concurrent publishers against
// concurrent Snapshot/Find/Stats readers; run with -race this pins the
// lock-free ring's safety.
func TestRecorderContention(t *testing.T) {
	tr := New(Config{Slow: -1, RingSize: 8})
	var writers, readers sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		writers.Add(1)
		go func(i int) {
			defer writers.Done()
			for j := 0; j < 300; j++ {
				root := tr.Root("w")
				c := root.Child("c")
				c.SetAttrs(Int("i", int64(i)))
				c.End()
				if j%7 == 0 {
					root.Fail(fmt.Errorf("e"))
				}
				root.End()
			}
		}(i)
	}
	for i := 0; i < 3; i++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, tc := range tr.rec.Snapshot(10, 0) {
					if tc.ID == "" || len(tc.Spans) == 0 {
						t.Error("torn trace observed")
						return
					}
					tr.rec.Find(tc.ID)
					tc.TreeJSON()
				}
				tr.rec.Stats()
			}
		}()
	}
	writersDone := make(chan struct{})
	go func() { writers.Wait(); close(writersDone) }()
	select {
	case <-writersDone:
	case <-time.After(30 * time.Second):
		t.Fatal("contention test wedged")
	}
	close(stop)
	readers.Wait()
	st := tr.rec.Stats()
	if st.RecordedTotal != 4*300 {
		t.Fatalf("recorded %d, want %d", st.RecordedTotal, 4*300)
	}
}

func TestFindMissing(t *testing.T) {
	tr := New(Config{})
	if tr.rec.Find("deadbeef") != nil || tr.rec.Find("") != nil {
		t.Fatal("Find on missing id must be nil")
	}
	var nilRec *Recorder
	if nilRec.Find("x") != nil || nilRec.Snapshot(1, 0) != nil || nilRec.Stats() != nil {
		t.Fatal("nil recorder must no-op")
	}
}
