package trace

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// keepAll returns a tracer that treats every trace as slow, so tests
// never race a wall-clock threshold.
func keepAll(t *testing.T) *Tracer {
	t.Helper()
	return New(Config{Slow: -1})
}

func TestSpanTreePublication(t *testing.T) {
	tr := keepAll(t)
	root := tr.Root("GET /v1/range")
	root.SetAttrs(Str("route", "/v1/range/"), Int("status", 200))
	c1 := root.Child("range.shard")
	c1.SetAttrs(Int("shard", 0))
	c1.Event("dequeued")
	c1.End()
	c2 := root.Child("render")
	c2.End()
	root.End()

	got := tr.Recorder().Find(root.TraceID().String())
	if got == nil {
		t.Fatal("trace not retained")
	}
	if got.Root != "GET /v1/range" || len(got.Spans) != 3 {
		t.Fatalf("trace = root %q, %d spans; want root span + 2 children", got.Root, len(got.Spans))
	}
	if got.Spans[0].Attrs["route"] != "/v1/range/" || got.Spans[0].Attrs["status"] != int64(200) {
		t.Fatalf("root attrs = %v", got.Spans[0].Attrs)
	}
	tree := got.TreeView()
	if tree == nil || len(tree.Children) != 2 {
		t.Fatalf("tree children = %v", tree)
	}
	if tree.Children[0].Name != "range.shard" || len(tree.Children[0].Events) != 1 {
		t.Fatalf("first child = %+v", tree.Children[0])
	}
}

func TestDeferredPublication(t *testing.T) {
	// A child that outlives the root (async shard apply) must delay
	// publication until it ends, and the published tree must include it.
	tr := keepAll(t)
	root := tr.Root("ingest")
	child := root.Child("shard.apply")
	root.End()
	if tr.Recorder().Find(root.TraceID().String()) != nil {
		t.Fatal("trace published while a span was still open")
	}
	child.End()
	got := tr.Recorder().Find(root.TraceID().String())
	if got == nil || len(got.Spans) != 2 {
		t.Fatalf("after last span end: %+v", got)
	}
}

func TestErrorMarksTrace(t *testing.T) {
	tr := New(Config{Slow: time.Hour}) // nothing is slow
	root := tr.Root("POST /v1/ingest")
	root.Fail(errors.New("overloaded"))
	root.End()
	got := tr.Recorder().Find(root.TraceID().String())
	if got == nil {
		t.Fatal("errored trace must always be retained")
	}
	if !got.Error || got.Slow {
		t.Fatalf("flags = slow %v error %v", got.Slow, got.Error)
	}
	if got.Spans[0].Error != "overloaded" {
		t.Fatalf("span error = %q", got.Spans[0].Error)
	}
}

func TestFailNilErrIgnored(t *testing.T) {
	tr := keepAll(t)
	root := tr.Root("op")
	root.Fail(nil)
	root.End()
	if got := tr.Recorder().Find(root.TraceID().String()); got == nil || got.Error {
		t.Fatalf("nil Fail must not mark error: %+v", got)
	}
}

func TestOpRecordsBackgroundTrace(t *testing.T) {
	tr := keepAll(t)
	start := time.Now().Add(-10 * time.Millisecond)
	tr.Op("timewin.compact", start, nil, Int("buckets", 3))
	traces := tr.Recorder().Snapshot(0, 0)
	if len(traces) != 1 || traces[0].Root != "timewin.compact" {
		t.Fatalf("snapshot = %+v", traces)
	}
	if traces[0].DurationMS < 9 {
		t.Fatalf("op duration = %v ms, want >= ~10", traces[0].DurationMS)
	}
}

func TestSpanCap(t *testing.T) {
	tr := keepAll(t)
	root := tr.Root("fanout")
	for i := 0; i < maxSpansPerTrace+10; i++ {
		root.Child(fmt.Sprintf("c%d", i)).End()
	}
	root.End()
	got := tr.Recorder().Find(root.TraceID().String())
	if got == nil {
		t.Fatal("trace not retained")
	}
	if len(got.Spans) != maxSpansPerTrace {
		t.Fatalf("spans = %d, want cap %d", len(got.Spans), maxSpansPerTrace)
	}
	if got.DroppedSpans != 11 {
		t.Fatalf("dropped = %d, want 11", got.DroppedSpans)
	}
}

func TestContextRoundTrip(t *testing.T) {
	tr := keepAll(t)
	sp := tr.Root("r")
	defer sp.End()
	ctx := NewContext(context.Background(), sp)
	if got := FromContext(ctx); got != sp {
		t.Fatalf("FromContext = %v, want %v", got, sp)
	}
	if got := FromContext(context.Background()); got != nil {
		t.Fatalf("bare context span = %v", got)
	}
	if ctx2 := NewContext(context.Background(), nil); FromContext(ctx2) != nil {
		t.Fatal("nil span must not be stored")
	}
}

// TestNoTraceZeroAlloc pins the disabled-tracing fast path: with a nil
// tracer/span every operation — including variadic attrs — must be
// allocation-free.
func TestNoTraceZeroAlloc(t *testing.T) {
	var tr *Tracer
	ctx := context.Background()
	allocs := testing.AllocsPerRun(1000, func() {
		sp := tr.Root("r")
		sp = FromContext(NewContext(ctx, sp))
		c := sp.Child("child")
		c.SetAttrs(Int("records", 12), Str("shard", "3"))
		c.Event("dequeued", Int("depth", 2))
		c.Fail(nil)
		c.End()
		sp.End()
		tr.Op("bg", time.Time{}, nil, Int("n", 1))
		tr.Recorder().Stats()
	})
	if allocs != 0 {
		t.Fatalf("no-trace path allocates %.1f per op, want 0", allocs)
	}
}

func TestIDUniqueness(t *testing.T) {
	tr := keepAll(t)
	seen := make(map[TraceID]bool)
	for i := 0; i < 10000; i++ {
		id := tr.newTraceID()
		if id.IsZero() || seen[id] {
			t.Fatalf("dup or zero id at %d: %v", i, id)
		}
		seen[id] = true
	}
}

func TestConcurrentSpansOneTrace(t *testing.T) {
	// Many goroutines hanging children off one root, as shard workers do.
	tr := keepAll(t)
	root := tr.Root("ingest")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				c := root.Child("shard.apply")
				c.SetAttrs(Int("shard", int64(i)))
				c.Event("dequeued")
				c.End()
			}
		}(i)
	}
	wg.Wait()
	root.End()
	got := tr.Recorder().Find(root.TraceID().String())
	if got == nil || len(got.Spans) != 1+8*50 {
		t.Fatalf("spans = %d, want %d", len(got.Spans), 1+8*50)
	}
}

func TestRootFromInheritsIdentity(t *testing.T) {
	tr := keepAll(t)
	id, parent, ok := ParseTraceparent("00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01")
	if !ok {
		t.Fatal("parse failed")
	}
	sp := tr.RootFrom("GET /v1/stats", id, parent)
	sp.End()
	got := tr.Recorder().Find("4bf92f3577b34da6a3ce929d0e0e4736")
	if got == nil {
		t.Fatal("inherited-id trace not found")
	}
	// The remote parent is not a local span; tree view must still work.
	if tree := got.TreeView(); tree == nil || tree.Name != "GET /v1/stats" {
		t.Fatalf("tree = %+v", tree)
	}
}

func TestTraceparentRoundTrip(t *testing.T) {
	tr := keepAll(t)
	sp := tr.Root("r")
	defer sp.End()
	hdr := FormatTraceparent(sp.TraceID(), sp.ID())
	id, parent, ok := ParseTraceparent(hdr)
	if !ok || id != sp.TraceID() || parent != sp.ID() {
		t.Fatalf("round trip %q -> %v %v %v", hdr, id, parent, ok)
	}
}

func TestParseTraceparentRejectsMalformed(t *testing.T) {
	bad := []string{
		"",
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7",      // no flags
		"01-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",   // version
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01",   // zero trace id
		"00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01",   // zero span id
		"00-4bf92f3577b34da6a3ce929d0e0e47zz-00f067aa0ba902b7-01",   // non-hex
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-x", // trailing
	}
	for _, v := range bad {
		if _, _, ok := ParseTraceparent(v); ok {
			t.Errorf("ParseTraceparent(%q) accepted", v)
		}
	}
}

func TestDeriveTraceIDDeterministic(t *testing.T) {
	a := DeriveTraceID("00000a-00000001")
	b := DeriveTraceID("00000a-00000001")
	c := DeriveTraceID("00000a-00000002")
	if a != b {
		t.Fatal("not deterministic")
	}
	if a == c {
		t.Fatal("distinct request ids collided")
	}
	if a.IsZero() || DeriveTraceID("").IsZero() {
		t.Fatal("derived id must never be zero")
	}
}
