package obs

import (
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// ParseLevel maps a -log-level flag value to a slog.Level.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return slog.LevelDebug, nil
	case "info", "":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("obs: unknown log level %q (want debug, info, warn or error)", s)
}

// NewLogger builds the process logger from the -log-level and
// -log-format flag values: "text" (the default, human-oriented
// logfmt-style lines) or "json" (one JSON object per line, for log
// shippers). Both cmd/censord and cmd/censorlyzer construct their
// logger here, so the two binaries' flags cannot drift.
func NewLogger(w io.Writer, level, format string) (*slog.Logger, error) {
	lv, err := ParseLevel(level)
	if err != nil {
		return nil, err
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch strings.ToLower(strings.TrimSpace(format)) {
	case "text", "":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	}
	return nil, fmt.Errorf("obs: unknown log format %q (want text or json)", format)
}
