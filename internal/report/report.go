// Package report renders analysis results as aligned text tables and
// ASCII series, so each of the paper's tables and figures can be printed
// by cmd/censorlyzer and the examples without any plotting dependency.
// Tables and charts also marshal to JSON (typed rows, not pre-formatted
// strings), so cmd/censord's HTTP API and `censorlyzer -json` share one
// encoder.
package report

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strings"
)

// Cell is one table cell: the original value (for typed JSON encoding)
// plus its text rendering.
type Cell struct {
	Value any
	Text  string
}

// Table accumulates rows and renders them with aligned columns.
type Table struct {
	title   string
	headers []string
	rows    [][]Cell
}

// NewTable starts a table with a title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{title: title, headers: headers}
}

// Title returns the table title.
func (t *Table) Title() string { return t.title }

// Headers returns the column headers.
func (t *Table) Headers() []string { return t.headers }

// NumRows returns the number of appended rows.
func (t *Table) NumRows() int { return len(t.rows) }

// Row appends one row; values are formatted with %v (floats compactly via
// FormatFloat) but kept alongside their rendering for typed JSON output.
func (t *Table) Row(values ...interface{}) *Table {
	row := make([]Cell, len(values))
	for i, v := range values {
		var text string
		switch x := v.(type) {
		case float64:
			text = FormatFloat(x)
		default:
			text = fmt.Sprintf("%v", v)
		}
		row[i] = Cell{Value: v, Text: text}
	}
	t.rows = append(t.rows, row)
	return t
}

// jsonValue returns the typed JSON form of a cell: numbers stay numbers,
// booleans stay booleans, everything else (including non-finite floats,
// which JSON cannot carry) falls back to the rendered text.
func (c Cell) jsonValue() any {
	switch x := c.Value.(type) {
	case int, int8, int16, int32, int64,
		uint, uint8, uint16, uint32, uint64, uintptr,
		bool:
		return x
	case float32:
		if f := float64(x); math.IsNaN(f) || math.IsInf(f, 0) {
			return c.Text
		}
		return x
	case float64:
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return c.Text
		}
		return x
	default:
		return c.Text
	}
}

// RowJSON encodes row i exactly as MarshalJSON renders it inside
// "rows", so callers can diff tables row by row (render.Diff) without
// re-encoding whole documents.
func (t *Table) RowJSON(i int) ([]byte, error) {
	r := t.rows[i]
	row := make([]any, len(r))
	for j, c := range r {
		row[j] = c.jsonValue()
	}
	return json.Marshal(row)
}

// MarshalJSON encodes the table as {"title", "headers", "rows"} with
// typed row values.
func (t *Table) MarshalJSON() ([]byte, error) {
	rows := make([][]any, len(t.rows))
	for i, r := range t.rows {
		row := make([]any, len(r))
		for j, c := range r {
			row[j] = c.jsonValue()
		}
		rows[i] = row
	}
	headers := t.headers
	if headers == nil {
		headers = []string{}
	}
	return json.Marshal(struct {
		Title   string   `json:"title"`
		Headers []string `json:"headers"`
		Rows    [][]any  `json:"rows"`
	}{t.title, headers, rows})
}

// FormatFloat renders floats compactly (4 significant decimals max).
func FormatFloat(x float64) string {
	if x == math.Trunc(x) && math.Abs(x) < 1e12 {
		return fmt.Sprintf("%.0f", x)
	}
	return fmt.Sprintf("%.4f", x)
}

// Percent renders a fraction as "12.34%".
func Percent(frac float64) string { return fmt.Sprintf("%.2f%%", 100*frac) }

// WriteTo renders the table.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	cols := len(t.headers)
	for _, r := range t.rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	widths := make([]int, cols)
	measure := func(row []string) {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	textRow := func(r []Cell) []string {
		out := make([]string, len(r))
		for i, c := range r {
			out[i] = c.Text
		}
		return out
	}
	measure(t.headers)
	for _, r := range t.rows {
		measure(textRow(r))
	}

	var sb strings.Builder
	if t.title != "" {
		sb.WriteString(t.title)
		sb.WriteByte('\n')
		sb.WriteString(strings.Repeat("=", len(t.title)))
		sb.WriteByte('\n')
	}
	writeRow := func(row []string) {
		for i := 0; i < cols; i++ {
			cell := ""
			if i < len(row) {
				cell = row[i]
			}
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(cell)
			sb.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
		}
		// Trim trailing spaces.
		s := sb.String()
		trimmed := strings.TrimRight(s, " ")
		sb.Reset()
		sb.WriteString(trimmed)
		sb.WriteByte('\n')
	}
	if len(t.headers) > 0 {
		writeRow(t.headers)
		total := 0
		for _, w := range widths {
			total += w
		}
		sb.WriteString(strings.Repeat("-", total+2*(cols-1)))
		sb.WriteByte('\n')
	}
	for _, r := range t.rows {
		writeRow(textRow(r))
	}
	n, err := io.WriteString(w, sb.String())
	return int64(n), err
}

// String renders the table to a string.
func (t *Table) String() string {
	var sb strings.Builder
	_, _ = t.WriteTo(&sb)
	return sb.String()
}

// Chart is the data form of one figure panel: a labeled numeric series.
// It marshals naturally to JSON and renders to text either as a
// horizontal bar chart (Series) or, when Spark is set, as a sparkline
// for dense time series.
type Chart struct {
	Title  string    `json:"title"`
	Labels []string  `json:"labels,omitempty"`
	Values []float64 `json:"values"`
	Spark  bool      `json:"spark,omitempty"`
}

// NewChart builds a bar-style chart. labels may be nil.
func NewChart(title string, labels []string, values []float64) *Chart {
	return &Chart{Title: title, Labels: labels, Values: values}
}

// NewSpark builds a sparkline-style chart.
func NewSpark(title string, values []float64) *Chart {
	return &Chart{Title: title, Values: values, Spark: true}
}

// Text renders the chart. width bounds the bar length (ignored for
// sparklines).
func (c *Chart) Text(width int) string {
	if c.Spark {
		if c.Title == "" {
			return Sparkline(c.Values) + "\n"
		}
		return c.Title + "\n" + Sparkline(c.Values) + "\n"
	}
	return Series(c.Title, c.Labels, c.Values, width)
}

// Series renders a numeric series as a horizontal ASCII bar chart, one
// row per point: label, value, bar. Used to print the paper's figures.
func Series(title string, labels []string, values []float64, width int) string {
	if width <= 0 {
		width = 50
	}
	max := 0.0
	for _, v := range values {
		if v > max {
			max = v
		}
	}
	var sb strings.Builder
	if title != "" {
		sb.WriteString(title)
		sb.WriteByte('\n')
	}
	labelW := 0
	for _, l := range labels {
		if len(l) > labelW {
			labelW = len(l)
		}
	}
	for i, v := range values {
		label := ""
		if i < len(labels) {
			label = labels[i]
		}
		bar := 0
		if max > 0 {
			bar = int(v / max * float64(width))
		}
		fmt.Fprintf(&sb, "%-*s %12s |%s\n", labelW, label, FormatFloat(v), strings.Repeat("#", bar))
	}
	return sb.String()
}

// Sparkline compresses a series into one line of block characters, for
// dense time series (Fig 5/6 style).
func Sparkline(values []float64) string {
	if len(values) == 0 {
		return ""
	}
	blocks := []rune("▁▂▃▄▅▆▇█")
	min, max := values[0], values[0]
	for _, v := range values {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	var sb strings.Builder
	for _, v := range values {
		idx := 0
		if max > min {
			idx = int((v - min) / (max - min) * float64(len(blocks)-1))
		}
		sb.WriteRune(blocks[idx])
	}
	return sb.String()
}

// Downsample reduces a series to at most n points by bucket-averaging,
// keeping sparklines terminal-width.
func Downsample(values []float64, n int) []float64 {
	if n <= 0 || len(values) <= n {
		out := make([]float64, len(values))
		copy(out, values)
		return out
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		lo := i * len(values) / n
		hi := (i + 1) * len(values) / n
		if hi <= lo {
			hi = lo + 1
		}
		sum := 0.0
		for _, v := range values[lo:hi] {
			sum += v
		}
		out[i] = sum / float64(hi-lo)
	}
	return out
}
