// Package report renders analysis results as aligned text tables and
// ASCII series, so each of the paper's tables and figures can be printed
// by cmd/censorlyzer and the examples without any plotting dependency.
package report

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Table accumulates rows and renders them with aligned columns.
type Table struct {
	title   string
	headers []string
	rows    [][]string
}

// NewTable starts a table with a title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{title: title, headers: headers}
}

// Row appends one row; values are formatted with %v.
func (t *Table) Row(values ...interface{}) *Table {
	row := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case float64:
			row[i] = FormatFloat(x)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.rows = append(t.rows, row)
	return t
}

// FormatFloat renders floats compactly (4 significant decimals max).
func FormatFloat(x float64) string {
	if x == math.Trunc(x) && math.Abs(x) < 1e12 {
		return fmt.Sprintf("%.0f", x)
	}
	return fmt.Sprintf("%.4f", x)
}

// Percent renders a fraction as "12.34%".
func Percent(frac float64) string { return fmt.Sprintf("%.2f%%", 100*frac) }

// WriteTo renders the table.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	cols := len(t.headers)
	for _, r := range t.rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	widths := make([]int, cols)
	measure := func(row []string) {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	measure(t.headers)
	for _, r := range t.rows {
		measure(r)
	}

	var sb strings.Builder
	if t.title != "" {
		sb.WriteString(t.title)
		sb.WriteByte('\n')
		sb.WriteString(strings.Repeat("=", len(t.title)))
		sb.WriteByte('\n')
	}
	writeRow := func(row []string) {
		for i := 0; i < cols; i++ {
			cell := ""
			if i < len(row) {
				cell = row[i]
			}
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(cell)
			sb.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
		}
		// Trim trailing spaces.
		s := sb.String()
		trimmed := strings.TrimRight(s, " ")
		sb.Reset()
		sb.WriteString(trimmed)
		sb.WriteByte('\n')
	}
	if len(t.headers) > 0 {
		writeRow(t.headers)
		total := 0
		for _, w := range widths {
			total += w
		}
		sb.WriteString(strings.Repeat("-", total+2*(cols-1)))
		sb.WriteByte('\n')
	}
	for _, r := range t.rows {
		writeRow(r)
	}
	n, err := io.WriteString(w, sb.String())
	return int64(n), err
}

// String renders the table to a string.
func (t *Table) String() string {
	var sb strings.Builder
	_, _ = t.WriteTo(&sb)
	return sb.String()
}

// Series renders a numeric series as a horizontal ASCII bar chart, one
// row per point: label, value, bar. Used to print the paper's figures.
func Series(title string, labels []string, values []float64, width int) string {
	if width <= 0 {
		width = 50
	}
	max := 0.0
	for _, v := range values {
		if v > max {
			max = v
		}
	}
	var sb strings.Builder
	if title != "" {
		sb.WriteString(title)
		sb.WriteByte('\n')
	}
	labelW := 0
	for _, l := range labels {
		if len(l) > labelW {
			labelW = len(l)
		}
	}
	for i, v := range values {
		label := ""
		if i < len(labels) {
			label = labels[i]
		}
		bar := 0
		if max > 0 {
			bar = int(v / max * float64(width))
		}
		fmt.Fprintf(&sb, "%-*s %12s |%s\n", labelW, label, FormatFloat(v), strings.Repeat("#", bar))
	}
	return sb.String()
}

// Sparkline compresses a series into one line of block characters, for
// dense time series (Fig 5/6 style).
func Sparkline(values []float64) string {
	if len(values) == 0 {
		return ""
	}
	blocks := []rune("▁▂▃▄▅▆▇█")
	min, max := values[0], values[0]
	for _, v := range values {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	var sb strings.Builder
	for _, v := range values {
		idx := 0
		if max > min {
			idx = int((v - min) / (max - min) * float64(len(blocks)-1))
		}
		sb.WriteRune(blocks[idx])
	}
	return sb.String()
}

// Downsample reduces a series to at most n points by bucket-averaging,
// keeping sparklines terminal-width.
func Downsample(values []float64, n int) []float64 {
	if n <= 0 || len(values) <= n {
		out := make([]float64, len(values))
		copy(out, values)
		return out
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		lo := i * len(values) / n
		hi := (i + 1) * len(values) / n
		if hi <= lo {
			hi = lo + 1
		}
		sum := 0.0
		for _, v := range values[lo:hi] {
			sum += v
		}
		out[i] = sum / float64(hi-lo)
	}
	return out
}
