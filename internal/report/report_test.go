package report

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	tbl := NewTable("Demo", "Domain", "Count", "Share")
	tbl.Row("facebook.com", uint64(1616174), 0.2191)
	tbl.Row("x.il", uint64(3), 0.0001)
	out := tbl.String()
	lines := strings.Split(strings.TrimSuffix(out, "\n"), "\n")
	if len(lines) != 5 { // title, ===, header, ---, 2 rows -> actually 6
		if len(lines) != 6 {
			t.Fatalf("lines = %d:\n%s", len(lines), out)
		}
	}
	if !strings.Contains(out, "Demo") || !strings.Contains(out, "21.91%") == strings.Contains(out, "0.2191") {
		// share rendered as 0.2191 (FormatFloat), presence checked below
	}
	if !strings.Contains(out, "facebook.com") || !strings.Contains(out, "1616174") {
		t.Errorf("missing cells:\n%s", out)
	}
	// Columns align: "Count" header starts at same offset on each row.
	headerIdx := strings.Index(lines[2], "Count")
	rowIdx := strings.Index(lines[4], "1616174")
	if headerIdx < 0 || rowIdx < 0 {
		t.Fatalf("layout unexpected:\n%s", out)
	}
}

func TestTableNoTitleNoHeaders(t *testing.T) {
	tbl := NewTable("")
	tbl.Row("a", 1)
	out := tbl.String()
	if strings.Contains(out, "=") {
		t.Errorf("unexpected title rule:\n%s", out)
	}
	if !strings.HasPrefix(out, "a") {
		t.Errorf("row missing:\n%s", out)
	}
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		1:      "1",
		2.5:    "2.5000",
		0.0157: "0.0157",
	}
	for in, want := range cases {
		if got := FormatFloat(in); got != want {
			t.Errorf("FormatFloat(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestPercent(t *testing.T) {
	if got := Percent(0.2191); got != "21.91%" {
		t.Errorf("Percent = %q", got)
	}
}

func TestSeries(t *testing.T) {
	out := Series("Ports", []string{"80", "443", "9001"}, []float64{100, 50, 1}, 20)
	if !strings.Contains(out, "Ports") {
		t.Error("title missing")
	}
	lines := strings.Split(strings.TrimSuffix(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d", len(lines))
	}
	if !strings.Contains(lines[1], strings.Repeat("#", 20)) {
		t.Errorf("max bar wrong: %q", lines[1])
	}
	if strings.Count(lines[3], "#") > 1 {
		t.Errorf("small bar too long: %q", lines[3])
	}
}

func TestSeriesZeroValues(t *testing.T) {
	out := Series("", []string{"a"}, []float64{0}, 10)
	if strings.Contains(out, "#") {
		t.Errorf("zero series drew bars: %q", out)
	}
}

func TestSparkline(t *testing.T) {
	s := Sparkline([]float64{0, 1, 2, 3})
	if len([]rune(s)) != 4 {
		t.Fatalf("runes = %d", len([]rune(s)))
	}
	if Sparkline(nil) != "" {
		t.Error("empty input should render empty")
	}
	flat := Sparkline([]float64{5, 5, 5})
	if len([]rune(flat)) != 3 {
		t.Error("flat series length wrong")
	}
}

func TestDownsample(t *testing.T) {
	in := make([]float64, 100)
	for i := range in {
		in[i] = float64(i)
	}
	out := Downsample(in, 10)
	if len(out) != 10 {
		t.Fatalf("len = %d", len(out))
	}
	if out[0] >= out[9] {
		t.Error("order lost")
	}
	same := Downsample(in, 200)
	if len(same) != 100 {
		t.Errorf("upsample changed length: %d", len(same))
	}
	// Mutating the copy must not touch the input.
	same[0] = -1
	if in[0] == -1 {
		t.Error("Downsample returned the input slice")
	}
}

func TestTableMarshalJSON(t *testing.T) {
	tbl := NewTable("Demo", "Domain", "Count", "Share")
	tbl.Row("facebook.com", uint64(1616174), 0.2191)
	tbl.Row("x.il", 3, math.Inf(1))
	b, err := json.Marshal(tbl)
	if err != nil {
		t.Fatal(err)
	}
	var got struct {
		Title   string   `json:"title"`
		Headers []string `json:"headers"`
		Rows    [][]any  `json:"rows"`
	}
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatalf("invalid JSON %s: %v", b, err)
	}
	if got.Title != "Demo" || len(got.Headers) != 3 || len(got.Rows) != 2 {
		t.Fatalf("unexpected envelope: %s", b)
	}
	// Typed rows: strings stay strings, numbers stay numbers (decoded as
	// float64 by encoding/json), non-finite floats fall back to text.
	if got.Rows[0][0] != "facebook.com" {
		t.Errorf("row[0][0] = %v", got.Rows[0][0])
	}
	if n, ok := got.Rows[0][1].(float64); !ok || n != 1616174 {
		t.Errorf("row[0][1] = %v (%T), want 1616174 as number", got.Rows[0][1], got.Rows[0][1])
	}
	if n, ok := got.Rows[0][2].(float64); !ok || n != 0.2191 {
		t.Errorf("row[0][2] = %v, want 0.2191 as number", got.Rows[0][2])
	}
	if _, ok := got.Rows[1][2].(string); !ok {
		t.Errorf("non-finite float should marshal as text, got %v (%T)", got.Rows[1][2], got.Rows[1][2])
	}
}

func TestTableMarshalJSONEmpty(t *testing.T) {
	b, err := json.Marshal(NewTable(""))
	if err != nil {
		t.Fatal(err)
	}
	if s := string(b); !strings.Contains(s, `"headers":[]`) || !strings.Contains(s, `"rows":[]`) {
		t.Errorf("empty table should keep empty arrays, got %s", s)
	}
}

func TestChart(t *testing.T) {
	c := NewChart("Fig X", []string{"a", "b"}, []float64{1, 2})
	if out := c.Text(10); !strings.Contains(out, "Fig X") || !strings.Contains(out, "#") {
		t.Errorf("bar chart rendering: %q", out)
	}
	b, err := json.Marshal(c)
	if err != nil {
		t.Fatal(err)
	}
	if s := string(b); !strings.Contains(s, `"labels":["a","b"]`) || !strings.Contains(s, `"values":[1,2]`) {
		t.Errorf("chart JSON: %s", s)
	}
	sp := NewSpark("Fig Y", []float64{1, 2, 3})
	if out := sp.Text(0); !strings.Contains(out, "Fig Y") || !strings.ContainsRune(out, '█') {
		t.Errorf("sparkline rendering: %q", out)
	}
	if b, _ := json.Marshal(sp); !strings.Contains(string(b), `"spark":true`) {
		t.Errorf("spark flag missing: %s", b)
	}
}
