// Package bittorrent models the BitTorrent tracker-announce traffic the
// paper analyzes in §7.3: HTTP GET /announce requests carrying a 20-byte
// info_hash (content identifier) and peer_id (client instance identifier),
// plus the torrent-title resolution step the authors performed by crawling
// torrentz.eu / torrentproject.com (77.4% success rate), which we replace
// with a deterministic TitleDB.
package bittorrent

import (
	"encoding/hex"
	"errors"
	"strings"

	"syriafilter/internal/stats"
)

// Announce is a parsed tracker announce request.
type Announce struct {
	InfoHash   [20]byte
	PeerID     [20]byte
	Port       uint16
	Uploaded   uint64
	Downloaded uint64
	Left       uint64
	Event      string // "started", "stopped", "completed" or ""
}

// HashHex returns the lowercase hex of the info hash.
func (a *Announce) HashHex() string { return hex.EncodeToString(a.InfoHash[:]) }

// PeerIDString returns the peer id as a printable string (it is
// conventionally ASCII: "-UT3110-" + random).
func (a *Announce) PeerIDString() string { return string(a.PeerID[:]) }

// Query renders the announce as a cs-uri-query string, percent-encoding
// the binary hash the way real clients do.
func (a *Announce) Query() string {
	var b strings.Builder
	b.Grow(160)
	b.WriteString("info_hash=")
	writePercent(&b, a.InfoHash[:])
	b.WriteString("&peer_id=")
	writePercent(&b, a.PeerID[:])
	b.WriteString("&port=")
	writeUint(&b, uint64(a.Port))
	b.WriteString("&uploaded=")
	writeUint(&b, a.Uploaded)
	b.WriteString("&downloaded=")
	writeUint(&b, a.Downloaded)
	b.WriteString("&left=")
	writeUint(&b, a.Left)
	if a.Event != "" {
		b.WriteString("&event=")
		b.WriteString(a.Event)
	}
	return b.String()
}

func writePercent(b *strings.Builder, data []byte) {
	const hexdigits = "0123456789abcdef"
	for _, c := range data {
		if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' ||
			c == '-' || c == '_' || c == '.' || c == '~' {
			b.WriteByte(c)
			continue
		}
		b.WriteByte('%')
		b.WriteByte(hexdigits[c>>4])
		b.WriteByte(hexdigits[c&0xf])
	}
}

func writeUint(b *strings.Builder, v uint64) {
	var tmp [20]byte
	i := len(tmp)
	for {
		i--
		tmp[i] = byte('0' + v%10)
		v /= 10
		if v == 0 {
			break
		}
	}
	b.Write(tmp[i:])
}

// Parse errors.
var (
	ErrNotAnnounce = errors.New("bittorrent: not an announce request")
	ErrBadHash     = errors.New("bittorrent: malformed info_hash/peer_id")
)

// IsAnnouncePath reports whether an HTTP path is a tracker announce
// endpoint ("/announce", "/announce.php", "/tracker/announce", ...).
func IsAnnouncePath(path string) bool {
	i := strings.LastIndexByte(path, '/')
	if i < 0 {
		return false
	}
	last := path[i+1:]
	return last == "announce" || strings.HasPrefix(last, "announce.")
}

// ParseAnnounce decodes an announce from a request path and query.
func ParseAnnounce(path, query string) (*Announce, error) {
	if !IsAnnouncePath(path) {
		return nil, ErrNotAnnounce
	}
	a := &Announce{}
	var haveHash, havePeer bool
	for len(query) > 0 {
		var kv string
		if i := strings.IndexByte(query, '&'); i >= 0 {
			kv, query = query[:i], query[i+1:]
		} else {
			kv, query = query, ""
		}
		eq := strings.IndexByte(kv, '=')
		if eq < 0 {
			continue
		}
		key, val := kv[:eq], kv[eq+1:]
		switch key {
		case "info_hash":
			if !decode20(val, &a.InfoHash) {
				return nil, ErrBadHash
			}
			haveHash = true
		case "peer_id":
			if !decode20(val, &a.PeerID) {
				return nil, ErrBadHash
			}
			havePeer = true
		case "port":
			a.Port = uint16(parseUint(val))
		case "uploaded":
			a.Uploaded = parseUint(val)
		case "downloaded":
			a.Downloaded = parseUint(val)
		case "left":
			a.Left = parseUint(val)
		case "event":
			a.Event = val
		}
	}
	if !haveHash || !havePeer {
		return nil, ErrBadHash
	}
	return a, nil
}

// decode20 percent-decodes val into a 20-byte array.
func decode20(val string, out *[20]byte) bool {
	n := 0
	for i := 0; i < len(val); {
		if n >= 20 {
			return false
		}
		c := val[i]
		if c == '%' {
			if i+2 >= len(val) {
				return false
			}
			hi, ok1 := unhex(val[i+1])
			lo, ok2 := unhex(val[i+2])
			if !ok1 || !ok2 {
				return false
			}
			out[n] = hi<<4 | lo
			n++
			i += 3
			continue
		}
		out[n] = c
		n++
		i++
	}
	return n == 20
}

func unhex(c byte) (byte, bool) {
	switch {
	case c >= '0' && c <= '9':
		return c - '0', true
	case c >= 'a' && c <= 'f':
		return c - 'a' + 10, true
	case c >= 'A' && c <= 'F':
		return c - 'A' + 10, true
	}
	return 0, false
}

func parseUint(s string) uint64 {
	var n uint64
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c < '0' || c > '9' {
			return 0
		}
		n = n*10 + uint64(c-'0')
	}
	return n
}

// NewPeerID builds a conventional Azureus-style peer id: "-UT3110-" style
// client prefix plus random suffix drawn from r.
func NewPeerID(r *stats.Rand) [20]byte {
	prefixes := []string{"-UT3110-", "-AZ4500-", "-TR2210-", "-BC0181-", "-DE1360-"}
	var id [20]byte
	p := prefixes[r.Intn(len(prefixes))]
	copy(id[:], p)
	const alnum = "0123456789abcdefghijklmnopqrstuvwxyz"
	for i := len(p); i < 20; i++ {
		id[i] = alnum[r.Intn(len(alnum))]
	}
	return id
}

// TitleDB resolves info hashes to torrent titles, replacing the paper's
// crawl of torrentz.eu and torrentproject.com. Resolution success and
// title content are deterministic functions of the hash, tuned to the
// paper's observations: 77.4% of hashes resolve; resolved titles include
// anti-censorship tools (UltraSurf, HideMyAss, Auto Hide IP, anonymous
// browsers) and IM installers (Skype, MSN, Yahoo Messenger) alongside
// ordinary media titles.
type TitleDB struct {
	// ResolveRate is the probability a hash resolves (default 0.774).
	ResolveRate float64
}

// NewTitleDB returns a resolver with the paper's success rate.
func NewTitleDB() *TitleDB { return &TitleDB{ResolveRate: 0.774} }

// specialTitles mirror §7.3's identified content groups. Weights are
// relative; the remainder of resolutions are generic media titles.
var specialTitles = []struct {
	Title  string
	Weight int
}{
	{"UltraSurf 10.17 censorship bypass", 27},
	{"Auto Hide IP 5.1.8.2 + crack", 6},
	{"HideMyAss VPN setup", 2},
	{"anonymous browser portable", 4},
	{"Skype 5.3 offline installer", 8},
	{"MSN Messenger 2011 setup", 5},
	{"Yahoo Messenger 11 installer", 3},
}

// Resolve returns the title for an info hash and whether resolution
// succeeded. The decision hashes the info hash, so the same content
// resolves identically everywhere.
func (db *TitleDB) Resolve(infoHash [20]byte) (string, bool) {
	h := stats.Hash64(string(infoHash[:]))
	rate := db.ResolveRate
	if rate == 0 {
		rate = 0.774
	}
	// Use the low 32 bits for the success decision.
	if float64(uint32(h))/float64(1<<32) >= rate {
		return "", false
	}
	// ~5% of resolved titles are "special" (tools/IM); weight-select.
	sel := (h >> 32) % 1000
	if sel < 50 {
		total := 0
		for _, s := range specialTitles {
			total += s.Weight
		}
		pick := int((h >> 40) % uint64(total))
		for _, s := range specialTitles {
			pick -= s.Weight
			if pick < 0 {
				return s.Title, true
			}
		}
	}
	return genericTitle(h), true
}

var genericWords = []string{
	"season", "episode", "HDrip", "x264", "album", "live", "arabic",
	"movie", "documentary", "football", "match", "series", "audiobook",
	"collection", "remastered", "comedy",
}

func genericTitle(h uint64) string {
	var b strings.Builder
	for i := 0; i < 3; i++ {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(genericWords[(h>>(8*i))%uint64(len(genericWords))])
	}
	return b.String()
}

// ContainsAnyKeyword reports whether a resolved title contains any of the
// given blacklisted keywords (case-insensitive). §7.3 checks the censored
// keyword list against resolved titles and finds matches among *allowed*
// announces — the point being that BitTorrent slips past URL filtering.
func ContainsAnyKeyword(title string, keywords []string) bool {
	lower := strings.ToLower(title)
	for _, k := range keywords {
		if k != "" && strings.Contains(lower, strings.ToLower(k)) {
			return true
		}
	}
	return false
}
