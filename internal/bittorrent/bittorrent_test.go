package bittorrent

import (
	"strings"
	"testing"
	"testing/quick"

	"syriafilter/internal/stats"
)

func sampleAnnounce(seed uint64) *Announce {
	r := stats.NewRand(seed)
	a := &Announce{
		Port:       51413,
		Uploaded:   1024,
		Downloaded: 4096,
		Left:       700 * 1024 * 1024,
		Event:      "started",
	}
	for i := range a.InfoHash {
		a.InfoHash[i] = byte(r.Uint64())
	}
	a.PeerID = NewPeerID(r)
	return a
}

func TestQueryParseRoundTrip(t *testing.T) {
	a := sampleAnnounce(1)
	got, err := ParseAnnounce("/announce", a.Query())
	if err != nil {
		t.Fatal(err)
	}
	if *got != *a {
		t.Errorf("round trip:\n got %+v\nwant %+v", got, a)
	}
}

func TestQueryParseRoundTripProperty(t *testing.T) {
	if err := quick.Check(func(hash [20]byte, port uint16, up, down, left uint64, evIdx uint8) bool {
		a := &Announce{
			InfoHash:   hash,
			PeerID:     NewPeerID(stats.NewRand(uint64(port))),
			Port:       port,
			Uploaded:   up,
			Downloaded: down,
			Left:       left,
			Event:      []string{"", "started", "stopped", "completed"}[evIdx%4],
		}
		got, err := ParseAnnounce("/announce.php", a.Query())
		return err == nil && *got == *a
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestIsAnnouncePath(t *testing.T) {
	yes := []string{"/announce", "/announce.php", "/tracker/announce", "/a/b/announce.cgi"}
	no := []string{"/", "/scrape", "/announcement", "announce", "/x/announcer"}
	for _, p := range yes {
		if !IsAnnouncePath(p) {
			t.Errorf("IsAnnouncePath(%q) = false", p)
		}
	}
	for _, p := range no {
		if IsAnnouncePath(p) {
			t.Errorf("IsAnnouncePath(%q) = true", p)
		}
	}
}

func TestParseAnnounceErrors(t *testing.T) {
	a := sampleAnnounce(2)
	if _, err := ParseAnnounce("/scrape", a.Query()); err != ErrNotAnnounce {
		t.Errorf("non-announce path: %v", err)
	}
	if _, err := ParseAnnounce("/announce", "port=1"); err != ErrBadHash {
		t.Errorf("missing hash: %v", err)
	}
	if _, err := ParseAnnounce("/announce", "info_hash=abc&peer_id=def"); err != ErrBadHash {
		t.Errorf("short hash: %v", err)
	}
	if _, err := ParseAnnounce("/announce", "info_hash="+strings.Repeat("%zz", 20)); err != ErrBadHash {
		t.Errorf("bad percent: %v", err)
	}
	long := strings.Repeat("a", 21)
	if _, err := ParseAnnounce("/announce", "info_hash="+long+"&peer_id="+long); err != ErrBadHash {
		t.Errorf("long hash: %v", err)
	}
}

func TestParseAnnounceTruncatedPercent(t *testing.T) {
	if _, err := ParseAnnounce("/announce", "info_hash=aaaaaaaaaaaaaaaaaaa%4&peer_id=bbbbbbbbbbbbbbbbbbbb"); err == nil {
		t.Error("truncated percent escape accepted")
	}
}

func TestNewPeerIDShape(t *testing.T) {
	r := stats.NewRand(5)
	id := NewPeerID(r)
	s := string(id[:])
	if s[0] != '-' || s[7] != '-' {
		t.Errorf("peer id shape: %q", s)
	}
	for _, c := range s {
		if c < 0x20 || c > 0x7e {
			t.Errorf("non-printable peer id byte in %q", s)
		}
	}
}

func TestTitleDBRate(t *testing.T) {
	db := NewTitleDB()
	r := stats.NewRand(9)
	const n = 20000
	resolved := 0
	for i := 0; i < n; i++ {
		var h [20]byte
		for j := range h {
			h[j] = byte(r.Uint64())
		}
		if _, ok := db.Resolve(h); ok {
			resolved++
		}
	}
	rate := float64(resolved) / n
	if rate < 0.75 || rate > 0.80 {
		t.Errorf("resolve rate = %v, want ~0.774", rate)
	}
}

func TestTitleDBDeterministic(t *testing.T) {
	db := NewTitleDB()
	var h [20]byte
	copy(h[:], "stable-hash-value-xx")
	t1, ok1 := db.Resolve(h)
	t2, ok2 := db.Resolve(h)
	if t1 != t2 || ok1 != ok2 {
		t.Error("resolution not deterministic")
	}
}

func TestTitleDBSpecialTitlesAppear(t *testing.T) {
	db := NewTitleDB()
	r := stats.NewRand(11)
	found := map[string]bool{}
	for i := 0; i < 100000; i++ {
		var h [20]byte
		for j := range h {
			h[j] = byte(r.Uint64())
		}
		if title, ok := db.Resolve(h); ok {
			for _, want := range []string{"UltraSurf", "HideMyAss", "Auto Hide IP", "Skype"} {
				if strings.Contains(title, want) {
					found[want] = true
				}
			}
		}
	}
	for _, want := range []string{"UltraSurf", "HideMyAss", "Auto Hide IP", "Skype"} {
		if !found[want] {
			t.Errorf("special title %q never produced", want)
		}
	}
}

func TestContainsAnyKeyword(t *testing.T) {
	kws := []string{"proxy", "ultrasurf", "israel"}
	if !ContainsAnyKeyword("UltraSurf 10.17 censorship bypass", kws) {
		t.Error("UltraSurf title not matched")
	}
	if ContainsAnyKeyword("holiday photos album", kws) {
		t.Error("benign title matched")
	}
	if ContainsAnyKeyword("anything", nil) {
		t.Error("empty keyword list matched")
	}
}

func BenchmarkAnnounceQuery(b *testing.B) {
	a := sampleAnnounce(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = a.Query()
	}
}

func BenchmarkParseAnnounce(b *testing.B) {
	a := sampleAnnounce(1)
	q := a.Query()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ParseAnnounce("/announce", q); err != nil {
			b.Fatal(err)
		}
	}
}
