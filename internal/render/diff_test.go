package render

import (
	"bytes"
	"encoding/json"
	"testing"

	"syriafilter/internal/bittorrent"
	"syriafilter/internal/core"
	"syriafilter/internal/logfmt"
	"syriafilter/internal/proxysim"
	"syriafilter/internal/synth"
)

// jsonDoc mirrors the Doc wire encoding closely enough to apply a
// Delta the way a sync client would: rows kept as raw bytes, sections
// addressed by index.
type jsonDoc struct {
	ID       string        `json:"id"`
	Kind     string        `json:"kind"`
	Title    string        `json:"title"`
	Approx   bool          `json:"approx,omitempty"`
	Sections []jsonSection `json:"sections"`
}

type jsonSection struct {
	Type  string          `json:"type"`
	Table *jsonTable      `json:"table,omitempty"`
	Chart json.RawMessage `json:"chart,omitempty"`
	Text  *string         `json:"text,omitempty"`
}

type jsonTable struct {
	Title   string            `json:"title"`
	Headers []string          `json:"headers"`
	Rows    []json.RawMessage `json:"rows"`
}

// applyDelta patches the decoded previous document in place, following
// the client contract documented on Delta.
func applyDelta(t *testing.T, doc *jsonDoc, d *Delta) {
	t.Helper()
	for _, sd := range d.Sections {
		if sd.Index < 0 || sd.Index >= len(doc.Sections) {
			t.Fatalf("delta addresses section %d of %d", sd.Index, len(doc.Sections))
		}
		sec := &doc.Sections[sd.Index]
		switch {
		case sd.Chart != nil:
			b, err := json.Marshal(sd.Chart)
			if err != nil {
				t.Fatal(err)
			}
			sec.Chart = b
		case sd.Text != nil:
			sec.Text = sd.Text
		default:
			if sec.Table == nil {
				t.Fatalf("row patch against non-table section %d", sd.Index)
			}
			for _, p := range sd.Rows {
				for p.Index >= len(sec.Table.Rows) {
					sec.Table.Rows = append(sec.Table.Rows, nil)
				}
				sec.Table.Rows[p.Index] = p.Cells
			}
			if sd.NumRows != nil {
				for *sd.NumRows > len(sec.Table.Rows) {
					sec.Table.Rows = append(sec.Table.Rows, nil)
				}
				sec.Table.Rows = sec.Table.Rows[:*sd.NumRows]
			}
		}
	}
}

// diffCorpus builds two analyzer states where the second strictly
// extends the first — the exact relationship /v1/sync sees between
// consecutive snapshot generations.
func diffCorpus(t *testing.T) (prev, cur Context) {
	t.Helper()
	gen, err := synth.New(synth.Config{Seed: 7, TotalRequests: 12000})
	if err != nil {
		t.Fatal(err)
	}
	cluster := proxysim.NewCluster(proxysim.Config{
		Seed: 7, Engine: gen.Engine(), Consensus: gen.Consensus(),
	})
	opt := core.Options{
		Categories: gen.CategoryDB(),
		Consensus:  gen.Consensus(),
		TitleDB:    bittorrent.NewTitleDB(),
	}
	an1, an2 := core.NewAnalyzer(opt), core.NewAnalyzer(opt)
	var rec logfmt.Record
	i := 0
	for {
		req, ok := gen.Next()
		if !ok {
			break
		}
		cluster.Process(&req, &rec)
		if i < 6000 {
			an1.Observe(&rec)
		}
		an2.Observe(&rec)
		i++
	}
	return Context{An: an1, Gen: gen}, Context{An: an2, Gen: gen}
}

// The delta contract: for every experiment whose consecutive renderings
// Diff accepts, applying the delta to the previous document's JSON
// reproduces the current document's JSON exactly.
func TestDiffApplyReproducesCurrent(t *testing.T) {
	prevCx, curCx := diffCorpus(t)
	diffable, changed := 0, 0
	for _, id := range Order() {
		pd, err := Render(id, prevCx)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		cd, err := Render(id, curCx)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		delta, ok := Diff(pd, cd)
		if !ok {
			continue // structure moved; sync falls back to the full doc
		}
		diffable++
		if len(delta.Sections) > 0 {
			changed++
		}

		pj, err := EncodeJSON(pd)
		if err != nil {
			t.Fatal(err)
		}
		cj, err := EncodeJSON(cd)
		if err != nil {
			t.Fatal(err)
		}
		var got, want jsonDoc
		if err := json.Unmarshal(pj, &got); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if err := json.Unmarshal(cj, &want); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		applyDelta(t, &got, delta)
		gb, _ := json.Marshal(got)
		wb, _ := json.Marshal(want)
		if !bytes.Equal(gb, wb) {
			t.Errorf("%s: applying the delta does not reproduce the current doc\n got: %.300s\nwant: %.300s", id, gb, wb)
		}
	}
	if diffable == 0 {
		t.Fatal("no experiment produced a diffable pair; Diff is refusing everything")
	}
	if changed == 0 {
		t.Fatal("no experiment changed between generations; the fixture proves nothing")
	}
	t.Logf("diffable=%d changed=%d of %d ids", diffable, changed, len(Order()))
}

// Identical documents diff to an empty delta; structural changes are
// refused rather than mis-patched.
func TestDiffEdgeCases(t *testing.T) {
	prevCx, _ := diffCorpus(t)
	d1, err := Render("table4", prevCx)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := Render("table4", prevCx)
	if err != nil {
		t.Fatal(err)
	}
	delta, ok := Diff(d1, d2)
	if !ok || len(delta.Sections) != 0 {
		t.Errorf("identical docs: ok=%v sections=%d, want empty delta", ok, len(delta.Sections))
	}
	other, err := Render("table1", prevCx)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := Diff(d1, other); ok {
		t.Error("Diff accepted documents of different experiments")
	}
	if _, ok := Diff(nil, d1); ok {
		t.Error("Diff accepted a nil previous doc")
	}
}
