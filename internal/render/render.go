// Package render turns an analyzed corpus into presentable experiment
// results. It owns the per-experiment renderers that used to live inside
// cmd/censorlyzer: each experiment id (table1..table15, fig1..fig10,
// https, bt, gcache, probing, groundtruth) maps to a function building a
// Doc — an ordered list of tables, charts and text lines — which renders
// to aligned text for the CLI or to JSON for cmd/censord's HTTP API.
// Both front ends therefore share one encoder, so their outputs are
// byte-comparable.
package render

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"time"

	"syriafilter/internal/core"
	"syriafilter/internal/logfmt"
	"syriafilter/internal/policy"
	"syriafilter/internal/prober"
	"syriafilter/internal/report"
	"syriafilter/internal/synth"
)

// chartWidth bounds bar length in text renderings.
const chartWidth = 40

// Section is one block of a Doc: exactly one of Table, Chart or Text is
// set.
type Section struct {
	Table *report.Table
	Chart *report.Chart
	Text  string
}

// Doc is one experiment's rendered result.
type Doc struct {
	ID       string
	Kind     string // "table", "figure" or "analysis"
	Title    string
	Sections []Section
	// Approx marks results computed from sketch-mode estimates (the
	// analyzer ran with -sketch and this experiment reads a sketched
	// module). Exact-mode renderings never set it, so their text and JSON
	// stay byte-identical to builds that predate sketches.
	Approx bool
}

// addTable appends a table section.
func (d *Doc) addTable(t *report.Table) { d.Sections = append(d.Sections, Section{Table: t}) }

// addChart appends a chart section.
func (d *Doc) addChart(c *report.Chart) { d.Sections = append(d.Sections, Section{Chart: c}) }

// textf appends one line to the trailing text section, starting a new
// one after a table or chart.
func (d *Doc) textf(format string, args ...any) {
	line := fmt.Sprintf(format, args...)
	if n := len(d.Sections); n > 0 && d.Sections[n-1].Table == nil && d.Sections[n-1].Chart == nil {
		d.Sections[n-1].Text += line + "\n"
		return
	}
	d.Sections = append(d.Sections, Section{Text: line + "\n"})
}

// Text renders the whole Doc as terminal text.
func (d *Doc) Text() string {
	var sb strings.Builder
	if d.Approx {
		sb.WriteString("[approx: sketch-mode estimates]\n")
	}
	for i, s := range d.Sections {
		if i > 0 {
			sb.WriteByte('\n')
		}
		switch {
		case s.Table != nil:
			sb.WriteString(s.Table.String())
		case s.Chart != nil:
			sb.WriteString(s.Chart.Text(chartWidth))
		default:
			sb.WriteString(s.Text)
		}
	}
	return sb.String()
}

// MarshalJSON encodes the Doc with a type-discriminated section list.
func (d *Doc) MarshalJSON() ([]byte, error) {
	secs := make([]any, len(d.Sections))
	for i, s := range d.Sections {
		switch {
		case s.Table != nil:
			secs[i] = struct {
				Type  string        `json:"type"`
				Table *report.Table `json:"table"`
			}{"table", s.Table}
		case s.Chart != nil:
			secs[i] = struct {
				Type  string        `json:"type"`
				Chart *report.Chart `json:"chart"`
			}{"chart", s.Chart}
		default:
			secs[i] = struct {
				Type string `json:"type"`
				Text string `json:"text"`
			}{"text", s.Text}
		}
	}
	return json.Marshal(struct {
		ID       string `json:"id"`
		Kind     string `json:"kind"`
		Title    string `json:"title"`
		Approx   bool   `json:"approx,omitempty"`
		Sections []any  `json:"sections"`
	}{d.ID, d.Kind, d.Title, d.Approx, secs})
}

// Context carries what renderers read. An is required. Gen is the
// ground-truth synthetic world; only the experiments for which
// NeedsGenerator reports true require it (they compare recovered policy
// against the generator's ruleset, which a live daemon ingesting foreign
// logs does not have).
type Context struct {
	An  *core.Analyzer
	Gen *synth.Generator
}

type renderer struct {
	title    string
	needsGen bool
	run      func(cx Context, d *Doc)
}

// Kind classifies an experiment id for API routing.
func Kind(id string) string {
	switch {
	case strings.HasPrefix(id, "table"):
		return "table"
	case strings.HasPrefix(id, "fig"):
		return "figure"
	default:
		return "analysis"
	}
}

// Order returns every experiment id in presentation order (the paper's
// table/figure numbering, then the section analyses).
func Order() []string {
	out := make([]string, len(order))
	copy(out, order)
	return out
}

// Title returns the experiment's one-line description ("" if unknown).
func Title(id string) string { return renderers[id].title }

// NeedsGenerator reports whether the experiment requires the synthetic
// ground-truth generator in its Context.
func NeedsGenerator(id string) bool { return renderers[id].needsGen }

// Render builds the Doc for one experiment id. It returns an error for
// unknown ids, for generator-requiring experiments rendered without one,
// and when the analyzer was built without a module the experiment reads
// (subset engines panic there; Render converts that into an error so a
// daemon serving a module subset degrades per-experiment).
func Render(id string, cx Context) (doc *Doc, err error) {
	r, ok := renderers[id]
	if !ok {
		return nil, fmt.Errorf("render: unknown experiment id %q (known: %v)", id, Order())
	}
	if r.needsGen && cx.Gen == nil {
		return nil, fmt.Errorf("render: experiment %q needs the ground-truth generator, which this context does not have", id)
	}
	d := &Doc{ID: id, Kind: Kind(id), Title: r.title}
	if cx.An != nil && cx.An.Sketched() && core.UsesSketchedModules(id) {
		d.Approx = true
	}
	defer func() {
		if rec := recover(); rec != nil {
			doc, err = nil, fmt.Errorf("render: %s: %v", id, rec)
		}
	}()
	r.run(cx, d)
	return d, nil
}

var order = []string{
	"table1", "table3", "table4", "table5", "table6", "table7", "table8",
	"table9", "table10", "table11", "table12", "table13", "table14", "table15",
	"fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10",
	"https", "bt", "gcache", "probing", "groundtruth",
}

func aug(day, hour int) int64 {
	return time.Date(2011, 8, day, hour, 0, 0, 0, time.UTC).Unix()
}

var renderers = map[string]renderer{
	"table1": {title: "Datasets description", run: func(cx Context, d *Doc) {
		tbl := report.NewTable("Table 1", "Dataset", "# Requests")
		for _, ds := range cx.An.Table1() {
			tbl.Row(ds.ID.String(), ds.Requests)
		}
		d.addTable(tbl)
	}},
	"table3": {title: "Decisions and exceptions per dataset", run: func(cx Context, d *Doc) {
		t3 := cx.An.Table3()
		tbl := report.NewTable("Table 3", "Exception", "Class", "Full", "%", "Sample", "User", "Denied")
		full := t3[core.DFull]
		for ex := 0; ex < logfmt.NumExceptions; ex++ {
			e := logfmt.ExceptionID(ex)
			tbl.Row(e.String(), e.Class().String(),
				full.ByException[ex],
				report.Percent(sfrac(full.ByException[ex], full.Total)),
				t3[core.DSample].ByException[ex],
				t3[core.DUser].ByException[ex],
				t3[core.DDenied].ByException[ex])
		}
		tbl.Row("PROXIED (total)", "proxied", full.Proxied,
			report.Percent(sfrac(full.Proxied, full.Total)),
			t3[core.DSample].Proxied, t3[core.DUser].Proxied, t3[core.DDenied].Proxied)
		d.addTable(tbl)
	}},
	"table4": {title: "Top-10 domains (allowed and censored)", run: func(cx Context, d *Doc) {
		allowed, censored := cx.An.TopDomains(10)
		tbl := report.NewTable("Table 4", "Allowed domain", "# Req", "%", "", "Censored domain", "# Req", "%")
		for i := 0; i < 10; i++ {
			var row [8]interface{}
			for j := range row {
				row[j] = ""
			}
			if i < len(allowed) {
				row[0], row[1], row[2] = allowed[i].Domain, allowed[i].Count, report.Percent(allowed[i].Share)
			}
			if i < len(censored) {
				row[4], row[5], row[6] = censored[i].Domain, censored[i].Count, report.Percent(censored[i].Share)
			}
			tbl.Row(row[:7]...)
		}
		d.addTable(tbl)
	}},
	"table5": {title: "Top censored domains, Aug 3 6am-12pm", run: func(cx Context, d *Doc) {
		for _, win := range cx.An.Table5(aug(3, 6), aug(3, 12), 2*3600, 10) {
			from := time.Unix(win.FromUnix, 0).UTC().Format("15:04")
			to := time.Unix(win.ToUnix, 0).UTC().Format("15:04")
			tbl := report.NewTable(fmt.Sprintf("Table 5 window %s-%s", from, to), "Domain", "%")
			for _, row := range win.Top {
				tbl.Row(row.Domain, report.Percent(row.Share))
			}
			d.addTable(tbl)
		}
	}},
	"table6": {title: "Cosine similarity of censored domains across proxies", run: func(cx Context, d *Doc) {
		m := cx.An.ProxySimilarity()
		headers := []string{""}
		for sg := 42; sg <= 48; sg++ {
			headers = append(headers, fmt.Sprintf("SG-%d", sg))
		}
		tbl := report.NewTable("Table 6", headers...)
		for i, row := range m {
			cells := []interface{}{fmt.Sprintf("SG-%d", 42+i)}
			for _, v := range row {
				cells = append(cells, v)
			}
			tbl.Row(cells...)
		}
		d.addTable(tbl)
		d.textf("Default cs-categories labels:")
		for i, l := range cx.An.ProxyCategoryLabels() {
			d.textf("  SG-%d: %q", 42+i, l)
		}
	}},
	"table7": {title: "Top policy_redirect hosts", run: func(cx Context, d *Doc) {
		tbl := report.NewTable("Table 7", "cs_host", "# requests", "%")
		for _, row := range cx.An.RedirectHosts(5) {
			tbl.Row(row.Domain, row.Count, report.Percent(row.Share))
		}
		d.addTable(tbl)
	}},
	"table8": {title: "Suspected URL-censored domains", run: func(cx Context, d *Doc) {
		disc := cx.An.DiscoverFilters(0)
		tbl := report.NewTable(fmt.Sprintf("Table 8 (all %d suspected; top 15 shown)", len(disc.Domains)),
			"Domain", "Censored", "Allowed", "Proxied")
		for i, sd := range disc.Domains {
			if i >= 15 {
				break
			}
			tbl.Row(sd.Domain, sd.Censored, sd.Allowed, sd.Proxied)
		}
		d.addTable(tbl)
	}},
	"table9": {title: "Censored domain categories", run: func(cx Context, d *Doc) {
		disc := cx.An.DiscoverFilters(0)
		tbl := report.NewTable("Table 9", "Category", "# Domains", "Censored requests")
		for _, row := range cx.An.Table9(disc) {
			tbl.Row(row.Category, row.Domains, row.Requests)
		}
		d.addTable(tbl)
	}},
	"table10": {title: "Censored keywords", run: func(cx Context, d *Doc) {
		disc := cx.An.DiscoverFilters(0)
		tbl := report.NewTable("Table 10", "Keyword", "Censored", "Allowed", "Proxied")
		for _, kw := range disc.Keywords {
			tbl.Row(kw.Keyword, kw.Censored, kw.Allowed, kw.Proxied)
		}
		d.addTable(tbl)
	}},
	"table11": {title: "Censorship ratio per country (IP-literal hosts)", run: func(cx Context, d *Doc) {
		tbl := report.NewTable("Table 11", "Country", "Ratio", "# Censored", "# Allowed")
		for _, row := range cx.An.CountryRatios() {
			tbl.Row(row.Country, report.Percent(row.Ratio), row.Censored, row.Allowed)
		}
		d.addTable(tbl)
	}},
	"table12": {title: "Top censored Israeli subnets", run: func(cx Context, d *Doc) {
		tbl := report.NewTable("Table 12", "Subnet", "Cens req", "Cens IPs", "Allow req", "Allow IPs", "Prox req", "Prox IPs")
		for _, row := range cx.An.IsraeliSubnets() {
			tbl.Row(row.Subnet, row.CensoredReqs, row.CensoredIPs,
				row.AllowedReqs, row.AllowedIPs, row.ProxiedReqs, row.ProxiedIPs)
		}
		d.addTable(tbl)
	}},
	"table13": {title: "Censorship across social networks", run: func(cx Context, d *Doc) {
		tbl := report.NewTable("Table 13 (top 10)", "OSN", "Censored", "Allowed", "Proxied")
		for i, row := range cx.An.SocialNetworks() {
			if i >= 10 {
				break
			}
			tbl.Row(row.Domain, row.Censored, row.Allowed, row.Proxied)
		}
		d.addTable(tbl)
	}},
	"table14": {title: "Blocked Facebook pages (custom category)", run: func(cx Context, d *Doc) {
		tbl := report.NewTable("Table 14", "Facebook page", "# Censored", "# Allowed", "# Proxied")
		for _, row := range cx.An.FacebookPages() {
			tbl.Row(row.Page, row.Censored, row.Allowed, row.Proxied)
		}
		d.addTable(tbl)
	}},
	"table15": {title: "Censored Facebook social-plugin elements", run: func(cx Context, d *Doc) {
		tbl := report.NewTable("Table 15", "Element", "Censored", "share of fb censored", "Allowed", "Proxied")
		for _, row := range cx.An.SocialPlugins(10) {
			tbl.Row(row.Path, row.Censored, report.Percent(row.ShareOfFBCensored), row.Allowed, row.Proxied)
		}
		d.addTable(tbl)
	}},
	"fig1": {title: "Destination port distribution", run: func(cx Context, d *Doc) {
		allowed, censored := cx.An.PortDistribution()
		chart := func(name string, pcs []core.PortCount) *report.Chart {
			labels := make([]string, 0, 8)
			values := make([]float64, 0, 8)
			for i, pc := range pcs {
				if i >= 8 {
					break
				}
				labels = append(labels, fmt.Sprint(pc.Port))
				values = append(values, float64(pc.Count))
			}
			return report.NewChart("Fig 1 — "+name, labels, values)
		}
		d.addChart(chart("allowed ports", allowed))
		d.addChart(chart("censored ports", censored))
	}},
	"fig2": {title: "Requests-per-domain distribution (power law)", run: func(cx Context, d *Doc) {
		for _, s := range cx.An.DomainFreqDistribution() {
			d.textf("Fig 2 — %s: %d distinct counts, fitted alpha %.2f",
				s.Class, len(s.Points), s.Alpha)
			show := s.Points
			if len(show) > 8 {
				show = show[:8]
			}
			for _, p := range show {
				d.textf("  %8d requests -> %6d domains", p[0], p[1])
			}
		}
	}},
	"fig3": {title: "Category distribution of censored traffic", run: func(cx Context, d *Doc) {
		rows := cx.An.CensoredCategories(false)
		labels := make([]string, 0, len(rows))
		values := make([]float64, 0, len(rows))
		for i, r := range rows {
			if i >= 12 {
				break
			}
			labels = append(labels, r.Category)
			values = append(values, r.Share*100)
		}
		d.addChart(report.NewChart("Fig 3 — censored categories (% of censored)", labels, values))
	}},
	"fig4": {title: "Per-user censorship (Duser)", run: func(cx Context, d *Doc) {
		rep := cx.An.UserAnalysis()
		d.textf("users: %d, censored users: %d (%.2f%%)",
			rep.TotalUsers, rep.CensoredUsers,
			100*float64(rep.CensoredUsers)/float64(maxInt(1, rep.TotalUsers)))
		d.textf("mean requests/user: censored %.1f vs others %.1f",
			rep.MeanActivityCensored, rep.MeanActivityOthers)
		d.textf("share with >100 requests: censored %.1f%% vs others %.1f%%",
			100*rep.ShareActiveCensored, 100*rep.ShareActiveOthers)
		labels := make([]string, len(rep.CensoredPerUser))
		values := make([]float64, len(rep.CensoredPerUser))
		for i, n := range rep.CensoredPerUser {
			labels[i] = fmt.Sprintf("%d", i+1)
			values[i] = float64(n)
		}
		d.addChart(report.NewChart("Fig 4a — censored requests per censored user", labels, values))
	}},
	"fig5": {title: "Censored/allowed traffic over Aug 1-6", run: func(cx Context, d *Doc) {
		series := cx.An.TimeSeries(aug(1, 0), aug(7, 0))
		al := make([]float64, len(series))
		ce := make([]float64, len(series))
		for i, p := range series {
			al[i] = float64(p.Allowed)
			ce[i] = float64(p.Censored)
		}
		d.addChart(report.NewSpark("Fig 5 — allowed (5-min slots, downsampled):", report.Downsample(al, 72)))
		d.addChart(report.NewSpark("Fig 5 — censored:", report.Downsample(ce, 72)))
	}},
	"fig6": {title: "Relative Censored Volume, Aug 3", run: func(cx Context, d *Doc) {
		pts := cx.An.RCV(aug(3, 0), aug(4, 0))
		values := make([]float64, len(pts))
		for i, p := range pts {
			values[i] = p.RCV
		}
		d.addChart(report.NewSpark("Fig 6 — RCV across Aug 3 (5-min slots):", report.Downsample(values, 96)))
		type hv struct {
			h int
			v float64
		}
		var hours []hv
		for h := 0; h < 24; h++ {
			sum, n := 0.0, 0
			for _, p := range pts {
				if int((p.Unix-aug(3, 0))/3600) == h {
					sum += p.RCV
					n++
				}
			}
			hours = append(hours, hv{h, sum / float64(maxInt(1, n))})
		}
		sort.Slice(hours, func(i, j int) bool {
			if hours[i].v != hours[j].v {
				return hours[i].v > hours[j].v
			}
			return hours[i].h < hours[j].h
		})
		d.textf("peak RCV hours: %02d:00 (%.4f), %02d:00 (%.4f), %02d:00 (%.4f)",
			hours[0].h, hours[0].v, hours[1].h, hours[1].v, hours[2].h, hours[2].v)
	}},
	"fig7": {title: "Per-proxy load and censored share", run: func(cx Context, d *Doc) {
		tbl := report.NewTable("Fig 7", "Proxy", "Total", "Censored", "Censored share")
		for _, l := range cx.An.ProxyLoads() {
			tbl.Row(fmt.Sprintf("SG-%d", l.SG), l.Total, l.Censored,
				report.Percent(sfrac(l.Censored, maxU64(1, l.Total))))
		}
		d.addTable(tbl)
	}},
	"fig8": {title: "Tor traffic", run: func(cx Context, d *Doc) {
		rep := cx.An.TorAnalysis()
		d.textf("Tor requests: %d to %d relays (Torhttp %.1f%%, Toronion %.1f%%)",
			rep.Total, rep.Relays,
			100*sfrac(rep.HTTP, maxU64(1, rep.Total)), 100*sfrac(rep.Onion, maxU64(1, rep.Total)))
		d.textf("censored: %d (%.2f%%), tcp errors: %d (%.1f%%)",
			rep.Censored, 100*sfrac(rep.Censored, maxU64(1, rep.Total)),
			rep.Errors, 100*sfrac(rep.Errors, maxU64(1, rep.Total)))
		for i, n := range rep.CensoredByProxy {
			if n > 0 {
				d.textf("  censored on SG-%d: %d (%.1f%% of censored Tor)",
					42+i, n, 100*sfrac(n, maxU64(1, rep.Censored)))
			}
		}
		hourly := cx.An.TorHourly(aug(1, 0), aug(7, 0))
		values := make([]float64, len(hourly))
		for i, h := range hourly {
			values[i] = float64(h.Total)
		}
		d.addChart(report.NewSpark("Fig 8a — Tor requests/hour, Aug 1-6:", values))
	}},
	"fig9": {title: "Tor re-censoring consistency (Rfilter)", run: func(cx Context, d *Doc) {
		pts := cx.An.RFilter(aug(1, 0), aug(7, 0))
		if pts == nil {
			d.textf("no censored Tor relays in this corpus")
			return
		}
		values := make([]float64, len(pts))
		below := 0
		for i, p := range pts {
			values[i] = p.RFilter
			if p.AllowedSeen && p.RFilter < 1 {
				below++
			}
		}
		d.addChart(report.NewSpark("Fig 9 — Rfilter per hour (1 = fully re-censored):", values))
		d.textf("hours where censored relays were re-allowed: %d of %d", below, len(pts))
	}},
	"fig10": {title: "Anonymizer services", run: func(cx Context, d *Doc) {
		rep := cx.An.Anonymizers()
		d.textf("anonymizer hosts: %d (%d never filtered, %.1f%%), %d requests",
			rep.Hosts, rep.NeverFiltered,
			100*float64(rep.NeverFiltered)/float64(maxInt(1, rep.Hosts)), rep.Requests)
		d.textf("Fig 10a — CDF of requests per never-filtered host:")
		for _, q := range []float64{0.5, 0.9, 0.99} {
			d.textf("  P%.0f: %.0f requests", q*100, rep.RequestsCDF.Quantile(q))
		}
		if rep.FilteredHosts > 0 {
			d.textf("Fig 10b — filtered hosts: %d; allowed/censored ratio median %.2f",
				rep.FilteredHosts, rep.RatioCDF.Quantile(0.5))
		}
	}},
	"https": {title: "HTTPS traffic (§4)", run: func(cx Context, d *Doc) {
		rep := cx.An.HTTPSAnalysis()
		d.textf("HTTPS/CONNECT requests: %d (%.3f%% of traffic)", rep.Total, 100*rep.ShareOfTraffic)
		d.textf("censored: %d (%.2f%% of HTTPS); IP-literal destinations: %d (%.1f%% of censored)",
			rep.Censored, 100*rep.CensoredShare, rep.CensoredIPLiteral, 100*rep.IPLiteralShare)
	}},
	"bt": {title: "BitTorrent (§7.3)", run: func(cx Context, d *Doc) {
		disc := cx.An.DiscoverFilters(0)
		kws := make([]string, 0, len(disc.Keywords))
		for _, kw := range disc.Keywords {
			kws = append(kws, kw.Keyword)
		}
		rep := cx.An.BitTorrent(kws)
		d.textf("announces: %d from %d peers for %d contents", rep.Announces, rep.Users, rep.Contents)
		d.textf("allowed: %.2f%%; censored: %d", 100*rep.AllowedShare, rep.Censored)
		d.textf("titles resolved: %d (%.1f%%); with blacklisted keywords: %d; anti-censorship tools: %d",
			rep.Resolved, 100*rep.ResolvedShare, rep.KeywordTitles, rep.ToolTitles)
		tbl := report.NewTable("Top trackers", "Tracker", "Announces")
		for _, tr := range rep.TopTrackers {
			tbl.Row(tr.Domain, tr.Count)
		}
		d.addTable(tbl)
	}},
	"gcache": {title: "Google cache (§7.4)", run: func(cx Context, d *Doc) {
		rep := cx.An.GoogleCache()
		d.textf("cache requests: %d, censored: %d", rep.Total, rep.Censored)
	}},
	"probing": {title: "Probing-based measurement vs log analysis (§1 claims)", needsGen: true, run: func(cx Context, d *Doc) {
		// A probing campaign over a classic candidate list: popular sites
		// plus the suspected-blocked sites a prober might know about.
		candidates := []string{
			"google.com", "facebook.com", "twitter.com", "youtube.com",
			"wikipedia.org", "amazon.com", "metacafe.com", "skype.com",
			"badoo.com", "netlog.com", "bbc.co.uk", "aljazeera.net",
			"aawsat.com", "panet.co.il", "linkedin.com", "flickr.com",
		}
		pr := prober.New(cx.Gen.Engine())
		rep := pr.Run(prober.HomepageProbes(candidates))
		d.textf("probes: %d, blocked: %d, blocked hosts: %v",
			rep.Probes, rep.Blocked, rep.BlockedHosts)

		kwCov := prober.KeywordCoverage(rep, cx.Gen.Ruleset().Keywords)
		domCov := prober.DomainCoverage(rep, cx.Gen.Ruleset().Domains)
		d.textf("probing keyword recall: %.0f%% (missed: %v)",
			100*kwCov.Recall(), kwCov.MissedRules)
		d.textf("probing domain recall:  %.0f%% (%d of %d rules witnessed)",
			100*domCov.Recall(), domCov.FoundRules, domCov.ReferenceRules)

		disc := cx.An.DiscoverFilters(0)
		kws := map[string]bool{}
		for _, kw := range disc.Keywords {
			kws[kw.Keyword] = true
		}
		logKw := 0
		for _, kw := range cx.Gen.Ruleset().Keywords {
			if kws[kw] {
				logKw++
			}
		}
		d.textf("log-analysis keyword recall: %.0f%% — the §1 advantage of logs over probing",
			100*float64(logKw)/float64(len(cx.Gen.Ruleset().Keywords)))
		full := cx.An.Dataset(core.DFull)
		d.textf("extent: probing cannot measure traffic volume; logs show %s of requests censored",
			report.Percent(sfrac(full.Censored(), full.Total)))
	}},
	"groundtruth": {title: "Recovered policy vs ground truth", needsGen: true, run: func(cx Context, d *Doc) {
		disc := cx.An.DiscoverFilters(0)
		rs := cx.Gen.Ruleset()
		truth := map[string]bool{}
		for _, kw := range rs.Keywords {
			truth[kw] = true
		}
		hits := 0
		for _, kw := range disc.Keywords {
			if truth[kw.Keyword] {
				hits++
			}
		}
		d.textf("keyword recall: %d/%d ground-truth keywords recovered; %d extra tokens",
			hits, len(rs.Keywords), len(disc.Keywords)-hits)
		blocked := 0
		engine := cx.Gen.Engine()
		for _, sd := range disc.Domains {
			if strings.HasPrefix(sd.Domain, ".") {
				blocked++
				continue
			}
			r := policy.Request{Host: sd.Domain, Path: "/", Scheme: "http", Method: "GET", Port: 80}
			if engine.Evaluate(&r).Action != policy.Allow {
				blocked++
			}
		}
		d.textf("domain precision: %d/%d suspected domains are truly blocked", blocked, len(disc.Domains))
	}},
}

func sfrac(a, b uint64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
