package render

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"
)

// SeriesWindow is one step-sized sub-window of a Series: the window
// bounds, the number of records its buckets covered, and the experiment
// Doc rendered over exactly those buckets.
type SeriesWindow struct {
	FromUnix int64
	ToUnix   int64
	Records  uint64
	Doc      *Doc
}

// Series is the windowed counterpart of Doc: one experiment rendered
// per step-sized sub-window of a time range. cmd/censord's
// GET /v1/range/{id}?step= endpoint serves it; the per-window Docs use
// the same encoders as the all-time Doc, so a window's section is
// byte-comparable with a batch run restricted to that window.
type Series struct {
	ID          string
	Kind        string
	Title       string
	StepSeconds int64
	Windows     []SeriesWindow
}

func fmtUTC(unix int64) string {
	return time.Unix(unix, 0).UTC().Format(time.RFC3339)
}

// MarshalJSON encodes the series with RFC3339 window bounds alongside
// the raw Unix seconds.
func (s *Series) MarshalJSON() ([]byte, error) {
	type window struct {
		From     string `json:"from"`
		FromUnix int64  `json:"from_unix"`
		To       string `json:"to"`
		ToUnix   int64  `json:"to_unix"`
		Records  uint64 `json:"records"`
		Doc      *Doc   `json:"doc"`
	}
	wins := make([]window, len(s.Windows))
	for i, w := range s.Windows {
		wins[i] = window{
			From: fmtUTC(w.FromUnix), FromUnix: w.FromUnix,
			To: fmtUTC(w.ToUnix), ToUnix: w.ToUnix,
			Records: w.Records, Doc: w.Doc,
		}
	}
	return json.Marshal(struct {
		ID          string   `json:"id"`
		Kind        string   `json:"kind"`
		Title       string   `json:"title"`
		StepSeconds int64    `json:"step_seconds"`
		Windows     []window `json:"windows"`
	}{s.ID, s.Kind, s.Title, s.StepSeconds, wins})
}

// Text renders the series as terminal text: one headed block per window.
func (s *Series) Text() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s — %s (step %ds, %d windows)\n",
		s.ID, s.Title, s.StepSeconds, len(s.Windows))
	for _, w := range s.Windows {
		fmt.Fprintf(&sb, "\n== %s .. %s (%d records)\n\n", fmtUTC(w.FromUnix), fmtUTC(w.ToUnix), w.Records)
		sb.WriteString(w.Doc.Text())
	}
	return sb.String()
}
