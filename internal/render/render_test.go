package render

import (
	"encoding/json"
	"sync"
	"testing"

	"syriafilter/internal/bittorrent"
	"syriafilter/internal/core"
	"syriafilter/internal/logfmt"
	"syriafilter/internal/proxysim"
	"syriafilter/internal/synth"
)

var (
	fixOnce sync.Once
	fixGen  *synth.Generator
	fixAn   *core.Analyzer
)

// fixture analyzes one small shared corpus for the package tests.
func fixture(t *testing.T) Context {
	t.Helper()
	fixOnce.Do(func() {
		gen, err := synth.New(synth.Config{Seed: 11, TotalRequests: 20000})
		if err != nil {
			return
		}
		cluster := proxysim.NewCluster(proxysim.Config{
			Seed: 11, Engine: gen.Engine(), Consensus: gen.Consensus(),
		})
		an := core.NewAnalyzer(core.Options{
			Categories: gen.CategoryDB(),
			Consensus:  gen.Consensus(),
			TitleDB:    bittorrent.NewTitleDB(),
		})
		var rec logfmt.Record
		for {
			req, ok := gen.Next()
			if !ok {
				break
			}
			cluster.Process(&req, &rec)
			an.Observe(&rec)
		}
		fixGen, fixAn = gen, an
	})
	if fixAn == nil {
		t.Fatal("fixture failed to build")
	}
	return Context{An: fixAn, Gen: fixGen}
}

// Order must cover exactly the experiment ids core knows about.
func TestOrderMatchesCoreExperiments(t *testing.T) {
	want := map[string]bool{}
	for _, id := range core.Experiments() {
		want[id] = true
	}
	seen := map[string]bool{}
	for _, id := range Order() {
		if seen[id] {
			t.Errorf("duplicate id %q in Order()", id)
		}
		seen[id] = true
		if !want[id] {
			t.Errorf("Order() id %q unknown to core.Experiments()", id)
		}
	}
	for id := range want {
		if !seen[id] {
			t.Errorf("core experiment %q missing from Order()", id)
		}
	}
}

// Every experiment renders to non-empty text and valid JSON.
func TestRenderAllExperiments(t *testing.T) {
	cx := fixture(t)
	for _, id := range Order() {
		id := id
		t.Run(id, func(t *testing.T) {
			doc, err := Render(id, cx)
			if err != nil {
				t.Fatal(err)
			}
			if doc.ID != id || doc.Title == "" || len(doc.Sections) == 0 {
				t.Fatalf("incomplete doc: %+v", doc)
			}
			if doc.Text() == "" {
				t.Error("empty text rendering")
			}
			b, err := json.Marshal(doc)
			if err != nil {
				t.Fatalf("marshal: %v", err)
			}
			var decoded struct {
				ID       string `json:"id"`
				Kind     string `json:"kind"`
				Title    string `json:"title"`
				Sections []struct {
					Type string `json:"type"`
				} `json:"sections"`
			}
			if err := json.Unmarshal(b, &decoded); err != nil {
				t.Fatalf("round-trip: %v", err)
			}
			if decoded.ID != id || decoded.Kind != Kind(id) || len(decoded.Sections) != len(doc.Sections) {
				t.Errorf("JSON envelope mismatch: %s", b)
			}
		})
	}
}

func TestRenderErrors(t *testing.T) {
	cx := fixture(t)
	if _, err := Render("table99", cx); err == nil {
		t.Error("unknown id should error")
	}
	// Generator-requiring experiments degrade to an error without one.
	for _, id := range []string{"probing", "groundtruth"} {
		if !NeedsGenerator(id) {
			t.Errorf("NeedsGenerator(%q) = false", id)
		}
		if _, err := Render(id, Context{An: cx.An}); err == nil {
			t.Errorf("%s without generator should error", id)
		}
	}
	if NeedsGenerator("table1") {
		t.Error("table1 should not need the generator")
	}
	// A subset engine missing the needed module yields an error, not a
	// panic (the daemon can be built with a module subset).
	sub, err := core.NewAnalyzerFor(core.Options{}, "datasets")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Render("table4", Context{An: sub}); err == nil {
		t.Error("missing module should surface as an error")
	}
	if _, err := Render("table1", Context{An: sub}); err != nil {
		t.Errorf("table1 on a datasets-only engine should work: %v", err)
	}
}

func TestKind(t *testing.T) {
	for id, want := range map[string]string{
		"table4": "table", "fig8": "figure", "https": "analysis", "bt": "analysis",
	} {
		if got := Kind(id); got != want {
			t.Errorf("Kind(%q) = %q, want %q", id, got, want)
		}
	}
}
