package render

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"

	"syriafilter/internal/bittorrent"
	"syriafilter/internal/core"
	"syriafilter/internal/logfmt"
	"syriafilter/internal/proxysim"
	"syriafilter/internal/synth"
)

var (
	fixOnce sync.Once
	fixGen  *synth.Generator
	fixAn   *core.Analyzer
)

// fixture analyzes one small shared corpus for the package tests.
func fixture(t *testing.T) Context {
	t.Helper()
	fixOnce.Do(func() {
		gen, err := synth.New(synth.Config{Seed: 11, TotalRequests: 20000})
		if err != nil {
			return
		}
		cluster := proxysim.NewCluster(proxysim.Config{
			Seed: 11, Engine: gen.Engine(), Consensus: gen.Consensus(),
		})
		an := core.NewAnalyzer(core.Options{
			Categories: gen.CategoryDB(),
			Consensus:  gen.Consensus(),
			TitleDB:    bittorrent.NewTitleDB(),
		})
		var rec logfmt.Record
		for {
			req, ok := gen.Next()
			if !ok {
				break
			}
			cluster.Process(&req, &rec)
			an.Observe(&rec)
		}
		fixGen, fixAn = gen, an
	})
	if fixAn == nil {
		t.Fatal("fixture failed to build")
	}
	return Context{An: fixAn, Gen: fixGen}
}

// Order must cover exactly the experiment ids core knows about.
func TestOrderMatchesCoreExperiments(t *testing.T) {
	want := map[string]bool{}
	for _, id := range core.Experiments() {
		want[id] = true
	}
	seen := map[string]bool{}
	for _, id := range Order() {
		if seen[id] {
			t.Errorf("duplicate id %q in Order()", id)
		}
		seen[id] = true
		if !want[id] {
			t.Errorf("Order() id %q unknown to core.Experiments()", id)
		}
	}
	for id := range want {
		if !seen[id] {
			t.Errorf("core experiment %q missing from Order()", id)
		}
	}
}

// Every experiment renders to non-empty text and valid JSON.
func TestRenderAllExperiments(t *testing.T) {
	cx := fixture(t)
	for _, id := range Order() {
		id := id
		t.Run(id, func(t *testing.T) {
			doc, err := Render(id, cx)
			if err != nil {
				t.Fatal(err)
			}
			if doc.ID != id || doc.Title == "" || len(doc.Sections) == 0 {
				t.Fatalf("incomplete doc: %+v", doc)
			}
			if doc.Text() == "" {
				t.Error("empty text rendering")
			}
			b, err := json.Marshal(doc)
			if err != nil {
				t.Fatalf("marshal: %v", err)
			}
			var decoded struct {
				ID       string `json:"id"`
				Kind     string `json:"kind"`
				Title    string `json:"title"`
				Sections []struct {
					Type string `json:"type"`
				} `json:"sections"`
			}
			if err := json.Unmarshal(b, &decoded); err != nil {
				t.Fatalf("round-trip: %v", err)
			}
			if decoded.ID != id || decoded.Kind != Kind(id) || len(decoded.Sections) != len(doc.Sections) {
				t.Errorf("JSON envelope mismatch: %s", b)
			}
		})
	}
}

func TestRenderErrors(t *testing.T) {
	cx := fixture(t)
	if _, err := Render("table99", cx); err == nil {
		t.Error("unknown id should error")
	}
	// Generator-requiring experiments degrade to an error without one.
	for _, id := range []string{"probing", "groundtruth"} {
		if !NeedsGenerator(id) {
			t.Errorf("NeedsGenerator(%q) = false", id)
		}
		if _, err := Render(id, Context{An: cx.An}); err == nil {
			t.Errorf("%s without generator should error", id)
		}
	}
	if NeedsGenerator("table1") {
		t.Error("table1 should not need the generator")
	}
	// A subset engine missing the needed module yields an error, not a
	// panic (the daemon can be built with a module subset).
	sub, err := core.NewAnalyzerFor(core.Options{}, "datasets")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Render("table4", Context{An: sub}); err == nil {
		t.Error("missing module should surface as an error")
	}
	if _, err := Render("table1", Context{An: sub}); err != nil {
		t.Errorf("table1 on a datasets-only engine should work: %v", err)
	}
}

func TestKind(t *testing.T) {
	for id, want := range map[string]string{
		"table4": "table", "fig8": "figure", "https": "analysis", "bt": "analysis",
	} {
		if got := Kind(id); got != want {
			t.Errorf("Kind(%q) = %q, want %q", id, got, want)
		}
	}
}

// The Series shape (windowed /v1/range responses) encodes one Doc per
// sub-window with both unix and RFC3339 bounds, and renders as text.
func TestSeriesJSONAndText(t *testing.T) {
	an := core.NewAnalyzer(core.Options{})
	doc, err := Render("table1", Context{An: an})
	if err != nil {
		t.Fatal(err)
	}
	s := &Series{
		ID: "table1", Kind: "table", Title: Title("table1"), StepSeconds: 86400,
		Windows: []SeriesWindow{
			{FromUnix: 1312156800, ToUnix: 1312243200, Records: 7, Doc: doc},
			{FromUnix: 1312243200, ToUnix: 1312329600, Records: 0, Doc: doc},
		},
	}
	b, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var got struct {
		ID          string `json:"id"`
		StepSeconds int64  `json:"step_seconds"`
		Windows     []struct {
			From     string          `json:"from"`
			FromUnix int64           `json:"from_unix"`
			Records  uint64          `json:"records"`
			Doc      json.RawMessage `json:"doc"`
		} `json:"windows"`
	}
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatal(err)
	}
	if got.ID != "table1" || got.StepSeconds != 86400 || len(got.Windows) != 2 {
		t.Fatalf("series round-trip lost shape: %s", b)
	}
	if got.Windows[0].From != "2011-08-01T00:00:00Z" || got.Windows[0].Records != 7 {
		t.Errorf("window 0 = %+v", got.Windows[0])
	}
	wantDoc, _ := json.Marshal(doc)
	if !bytes.Equal(got.Windows[0].Doc, wantDoc) {
		t.Error("per-window doc encoding differs from the standalone Doc encoding")
	}
	text := s.Text()
	for _, frag := range []string{"table1", "step 86400s, 2 windows", "2011-08-01T00:00:00Z", "Table 1"} {
		if !strings.Contains(text, frag) {
			t.Errorf("series text missing %q:\n%s", frag, text)
		}
	}
}
