package render

import (
	"bytes"
	"encoding/json"

	"syriafilter/internal/report"
)

// EncodeJSON is the wire encoding shared by every JSON front end:
// compact json.Marshal plus a trailing newline. `censorlyzer -json`
// prints it and every censord doc endpoint serves it, so the two stay
// byte-comparable by construction (the CI smoke test diffs them).
func EncodeJSON(v any) ([]byte, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// Delta is the incremental form of one changed experiment, carried by
// GET /v1/sync when the client's previous document is known: instead
// of the full Doc, only the sections (and, inside tables, only the
// rows) that changed between two renderings.
//
// A client applies a Delta to the JSON encoding of its previous Doc:
// for each SectionDelta, replace `sections[Index].table.rows[p.Index]`
// with p.Cells for every row patch, truncate or extend the row list to
// NumRows, and replace chart/text sections wholesale. Everything not
// mentioned is unchanged.
type Delta struct {
	ID       string         `json:"id"`
	Sections []SectionDelta `json:"sections"`
}

// SectionDelta patches one section, addressed by index — Diff refuses
// document pairs whose section structure changed, so indexes are
// stable. For a table section Rows carries the changed and appended
// rows and NumRows the new row count (rows at or past it are
// deleted). Chart and text sections are small, so they are replaced
// whole.
type SectionDelta struct {
	Index   int           `json:"index"`
	Rows    []RowPatch    `json:"rows,omitempty"`
	NumRows *int          `json:"num_rows,omitempty"`
	Chart   *report.Chart `json:"chart,omitempty"`
	Text    *string       `json:"text,omitempty"`
}

// RowPatch replaces one table row with its typed-JSON encoding — the
// exact bytes report.Table.MarshalJSON emits for that row.
type RowPatch struct {
	Index int             `json:"index"`
	Cells json.RawMessage `json:"cells"`
}

// Diff computes the row-level delta turning prev into cur, two
// renderings of the same experiment at different snapshots. ok=false
// means the pair is not cheaply diffable — the section structure,
// a table's title or headers, or the approx marker changed — and the
// caller should send the full document instead. An ok Delta with no
// sections means the documents are identical.
func Diff(prev, cur *Doc) (*Delta, bool) {
	if prev == nil || cur == nil || prev.ID != cur.ID || prev.Kind != cur.Kind ||
		prev.Title != cur.Title || prev.Approx != cur.Approx ||
		len(prev.Sections) != len(cur.Sections) {
		return nil, false
	}
	d := &Delta{ID: cur.ID}
	for i := range cur.Sections {
		ps, cs := &prev.Sections[i], &cur.Sections[i]
		switch {
		case cs.Table != nil:
			if ps.Table == nil {
				return nil, false
			}
			sd, ok := diffTable(ps.Table, cs.Table, i)
			if !ok {
				return nil, false
			}
			if sd != nil {
				d.Sections = append(d.Sections, *sd)
			}
		case cs.Chart != nil:
			if ps.Chart == nil {
				return nil, false
			}
			if !chartEqual(ps.Chart, cs.Chart) {
				d.Sections = append(d.Sections, SectionDelta{Index: i, Chart: cs.Chart})
			}
		default:
			if ps.Table != nil || ps.Chart != nil {
				return nil, false
			}
			if ps.Text != cs.Text {
				t := cs.Text
				d.Sections = append(d.Sections, SectionDelta{Index: i, Text: &t})
			}
		}
	}
	return d, true
}

// diffTable row-diffs two tables. A nil *SectionDelta with ok=true
// means the tables are identical.
func diffTable(prev, cur *report.Table, idx int) (*SectionDelta, bool) {
	if prev.Title() != cur.Title() || !stringsEqual(prev.Headers(), cur.Headers()) {
		return nil, false
	}
	sd := &SectionDelta{Index: idx}
	for i := 0; i < cur.NumRows(); i++ {
		cj, err := cur.RowJSON(i)
		if err != nil {
			return nil, false
		}
		if i < prev.NumRows() {
			pj, err := prev.RowJSON(i)
			if err != nil {
				return nil, false
			}
			if bytes.Equal(pj, cj) {
				continue
			}
		}
		sd.Rows = append(sd.Rows, RowPatch{Index: i, Cells: cj})
	}
	if len(sd.Rows) == 0 && cur.NumRows() == prev.NumRows() {
		return nil, true
	}
	n := cur.NumRows()
	sd.NumRows = &n
	return sd, true
}

func chartEqual(a, b *report.Chart) bool {
	if a.Title != b.Title || a.Spark != b.Spark ||
		len(a.Labels) != len(b.Labels) || len(a.Values) != len(b.Values) {
		return false
	}
	if !stringsEqual(a.Labels, b.Labels) {
		return false
	}
	for i := range a.Values {
		if a.Values[i] != b.Values[i] {
			return false
		}
	}
	return true
}

func stringsEqual(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
