// Package statecodec is the binary encoding layer under every
// serializable piece of metric state: checkpoints written by
// internal/serve, bucket rings saved by internal/timewin, and the
// engine state files of `censorlyzer -save-state`.
//
// The format is deliberately small: length-prefixed byte strings,
// varint integers (unsigned and zig-zag signed), single bytes and
// bools, plus an interned string table for the heavy counter maps —
// a registered domain that appears in nine counters of one module is
// written once and referenced by index afterwards. There is no
// reflection and no schema; each consumer writes its fields in a fixed
// order and leads with a version byte so a future layout change can
// migrate old checkpoints instead of misreading them.
//
// Writers never fail. Readers carry a sticky error: the first
// malformed or truncated read poisons the Reader, every later read
// returns a zero value, and the caller checks Err once at the end —
// so decoding corrupted state degrades into one clean error instead
// of a panic or a partially-applied state.
//
// String-table scope is one Writer/Reader pair. Container formats that
// frame multiple independently-skippable sections (the Engine's
// per-module sections) must give each section its own Writer, or a
// skipped section would swallow string definitions that later
// sections reference.
package statecodec

import (
	"encoding/binary"
	"fmt"
)

// Writer accumulates an encoded state buffer. The zero value is not
// ready; use NewWriter.
type Writer struct {
	buf  []byte
	strs map[string]uint64
}

// NewWriter returns an empty writer.
func NewWriter() *Writer { return &Writer{} }

// Bytes returns the encoded buffer. It aliases the writer's internal
// storage; further writes may invalidate it.
func (w *Writer) Bytes() []byte { return w.buf }

// Len returns the number of bytes written so far.
func (w *Writer) Len() int { return len(w.buf) }

// Byte appends one raw byte.
func (w *Writer) Byte(b byte) { w.buf = append(w.buf, b) }

// Bool appends a bool as one byte.
func (w *Writer) Bool(v bool) {
	if v {
		w.Byte(1)
	} else {
		w.Byte(0)
	}
}

// Uvarint appends an unsigned varint.
func (w *Writer) Uvarint(u uint64) { w.buf = binary.AppendUvarint(w.buf, u) }

// Varint appends a zig-zag signed varint.
func (w *Writer) Varint(i int64) { w.buf = binary.AppendVarint(w.buf, i) }

// String appends a length-prefixed string.
func (w *Writer) String(s string) {
	w.Uvarint(uint64(len(s)))
	w.buf = append(w.buf, s...)
}

// Blob appends a length-prefixed byte slice.
func (w *Writer) Blob(b []byte) {
	w.Uvarint(uint64(len(b)))
	w.buf = append(w.buf, b...)
}

// Raw appends bytes with no length prefix; the reader must know the
// width (fixed-size hashes, magic numbers).
func (w *Writer) Raw(b []byte) { w.buf = append(w.buf, b...) }

// StringRef appends s through the writer's intern table: the first
// occurrence is written inline (tag 0 + the string) and assigned the
// next table index; later occurrences write index+1 only.
func (w *Writer) StringRef(s string) {
	if id, ok := w.strs[s]; ok {
		w.Uvarint(id + 1)
		return
	}
	if w.strs == nil {
		w.strs = make(map[string]uint64)
	}
	id := uint64(len(w.strs))
	w.strs[s] = id
	w.Uvarint(0)
	w.String(s)
}

// Reader decodes a buffer written by Writer. All read methods return
// zero values once the reader is poisoned; check Err after decoding.
type Reader struct {
	buf  []byte
	off  int
	strs []string
	err  error
}

// NewReader returns a reader over b. The reader aliases b; the caller
// must not mutate it while decoding.
func NewReader(b []byte) *Reader { return &Reader{buf: b} }

// Err returns the sticky decode error, nil while the stream is healthy.
func (r *Reader) Err() error { return r.err }

// Fail poisons the reader with err (first failure wins).
func (r *Reader) Fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

// Failf poisons the reader with a formatted error (first failure wins).
func (r *Reader) Failf(format string, args ...any) {
	r.Fail(fmt.Errorf(format, args...))
}

// Remaining returns the number of undecoded bytes.
func (r *Reader) Remaining() int { return len(r.buf) - r.off }

// Byte reads one raw byte.
func (r *Reader) Byte() byte {
	if r.err != nil {
		return 0
	}
	if r.off >= len(r.buf) {
		r.Failf("statecodec: truncated input at offset %d", r.off)
		return 0
	}
	b := r.buf[r.off]
	r.off++
	return b
}

// Bool reads a bool.
func (r *Reader) Bool() bool { return r.Byte() != 0 }

// Uvarint reads an unsigned varint.
func (r *Reader) Uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	u, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		r.Failf("statecodec: bad uvarint at offset %d", r.off)
		return 0
	}
	r.off += n
	return u
}

// Varint reads a zig-zag signed varint.
func (r *Reader) Varint() int64 {
	if r.err != nil {
		return 0
	}
	i, n := binary.Varint(r.buf[r.off:])
	if n <= 0 {
		r.Failf("statecodec: bad varint at offset %d", r.off)
		return 0
	}
	r.off += n
	return i
}

// Count reads an element count and validates it against the remaining
// input (every element costs at least one byte), so a corrupted length
// cannot drive a giant allocation.
func (r *Reader) Count() int {
	n := r.Uvarint()
	if r.err != nil {
		return 0
	}
	if n > uint64(r.Remaining()) {
		r.Failf("statecodec: count %d exceeds %d remaining bytes", n, r.Remaining())
		return 0
	}
	return int(n)
}

// String reads a length-prefixed string.
func (r *Reader) String() string {
	n := r.Count()
	if r.err != nil {
		return ""
	}
	s := string(r.buf[r.off : r.off+n])
	r.off += n
	return s
}

// Blob reads a length-prefixed byte slice. The result aliases the
// reader's buffer.
func (r *Reader) Blob() []byte {
	n := r.Count()
	if r.err != nil {
		return nil
	}
	b := r.buf[r.off : r.off+n : r.off+n]
	r.off += n
	return b
}

// Raw reads exactly n bytes with no length prefix. The result aliases
// the reader's buffer.
func (r *Reader) Raw(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || n > r.Remaining() {
		r.Failf("statecodec: raw read of %d bytes with %d remaining", n, r.Remaining())
		return nil
	}
	b := r.buf[r.off : r.off+n : r.off+n]
	r.off += n
	return b
}

// StringRef reads an interned string written by Writer.StringRef.
func (r *Reader) StringRef() string {
	u := r.Uvarint()
	if r.err != nil {
		return ""
	}
	if u == 0 {
		s := r.String()
		if r.err == nil {
			r.strs = append(r.strs, s)
		}
		return s
	}
	if u > uint64(len(r.strs)) {
		r.Failf("statecodec: string ref %d beyond table of %d", u, len(r.strs))
		return ""
	}
	return r.strs[u-1]
}
