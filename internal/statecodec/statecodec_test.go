package statecodec

import (
	"bytes"
	"strings"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	w := NewWriter()
	w.Byte(7)
	w.Bool(true)
	w.Bool(false)
	w.Uvarint(0)
	w.Uvarint(1<<63 + 12345)
	w.Varint(-1)
	w.Varint(1 << 40)
	w.String("")
	w.String("hello, world")
	w.Blob([]byte{1, 2, 3})
	w.Raw([]byte("MAGI"))
	w.StringRef("facebook.com")
	w.StringRef("twitter.com")
	w.StringRef("facebook.com") // second occurrence: back-reference
	w.StringRef("")

	r := NewReader(w.Bytes())
	if got := r.Byte(); got != 7 {
		t.Errorf("Byte = %d", got)
	}
	if !r.Bool() || r.Bool() {
		t.Error("Bool round-trip broken")
	}
	if got := r.Uvarint(); got != 0 {
		t.Errorf("Uvarint = %d", got)
	}
	if got := r.Uvarint(); got != 1<<63+12345 {
		t.Errorf("Uvarint = %d", got)
	}
	if got := r.Varint(); got != -1 {
		t.Errorf("Varint = %d", got)
	}
	if got := r.Varint(); got != 1<<40 {
		t.Errorf("Varint = %d", got)
	}
	if got := r.String(); got != "" {
		t.Errorf("String = %q", got)
	}
	if got := r.String(); got != "hello, world" {
		t.Errorf("String = %q", got)
	}
	if got := r.Blob(); !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Errorf("Blob = %v", got)
	}
	if got := r.Raw(4); string(got) != "MAGI" {
		t.Errorf("Raw = %q", got)
	}
	for i, want := range []string{"facebook.com", "twitter.com", "facebook.com", ""} {
		if got := r.StringRef(); got != want {
			t.Errorf("StringRef %d = %q, want %q", i, got, want)
		}
	}
	if err := r.Err(); err != nil {
		t.Fatalf("Err = %v", err)
	}
	if r.Remaining() != 0 {
		t.Errorf("Remaining = %d", r.Remaining())
	}
}

// StringRef must actually dedup: the second occurrence of a string is a
// one- or two-byte reference, not a re-encoding.
func TestStringRefInterns(t *testing.T) {
	long := strings.Repeat("x", 1000)
	w := NewWriter()
	w.StringRef(long)
	first := w.Len()
	w.StringRef(long)
	if grown := w.Len() - first; grown > 2 {
		t.Errorf("second ref cost %d bytes, want <= 2", grown)
	}
}

// Every truncation of a valid stream must fail cleanly (no panic) and
// leave a sticky error.
func TestTruncation(t *testing.T) {
	w := NewWriter()
	w.Uvarint(300)
	w.String("abcdef")
	w.StringRef("ghij")
	w.Varint(-500)
	full := w.Bytes()
	for n := 0; n < len(full); n++ {
		r := NewReader(full[:n])
		r.Uvarint()
		_ = r.String()
		r.StringRef()
		r.Varint()
		if r.Err() == nil {
			t.Errorf("truncation to %d/%d bytes decoded without error", n, len(full))
		}
	}
}

// A corrupted count must not drive a huge allocation: Count caps at the
// remaining input.
func TestCountGuards(t *testing.T) {
	w := NewWriter()
	w.Uvarint(1 << 40) // a count far beyond the buffer
	r := NewReader(w.Bytes())
	if r.Count(); r.Err() == nil {
		t.Error("oversized count decoded without error")
	}

	r = NewReader(w.Bytes())
	if s := r.String(); r.Err() == nil {
		t.Errorf("oversized string length decoded to %q without error", s)
	}
}

// A bad back-reference fails instead of panicking.
func TestBadStringRef(t *testing.T) {
	w := NewWriter()
	w.Uvarint(5) // references table entry 4, but the table is empty
	r := NewReader(w.Bytes())
	if r.StringRef(); r.Err() == nil {
		t.Error("out-of-range string ref decoded without error")
	}
}

// The sticky error prevents any later read from succeeding.
func TestStickyError(t *testing.T) {
	r := NewReader(nil)
	r.Byte() // poisons
	if r.Err() == nil {
		t.Fatal("empty read should poison")
	}
	if got := r.Uvarint(); got != 0 {
		t.Errorf("post-error Uvarint = %d, want 0", got)
	}
	if got := r.String(); got != "" {
		t.Errorf("post-error String = %q, want empty", got)
	}
}
