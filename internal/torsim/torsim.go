// Package torsim models the Tor network directory data the paper joins
// against its logs in §7.1: relay descriptors (IP, OR port, directory
// port) extracted from consensus/network-status files, the HTTP directory
// protocol paths that identify Tor signaling traffic (Torhttp), and the
// relay endpoints whose TCP connections constitute circuit traffic
// (Toronion).
//
// Since the real July/August 2011 consensus archives are not shipped with
// this repository, NewConsensus procedurally generates a deterministic
// relay population with the structural properties the analysis needs:
// 1,111 relays (the paper identifies exactly that many contacted relays),
// OR ports concentrated on 9001/443 (Fig. 1 shows port 9001 as the third
// most censored port) and directory ports on 9030/80.
package torsim

import (
	"strings"

	"syriafilter/internal/stats"
	"syriafilter/internal/urlx"
)

// Relay is one Tor relay descriptor.
type Relay struct {
	Nickname string
	IP       uint32
	ORPort   uint16
	DirPort  uint16 // 0 if the relay serves no directory
}

// Host returns the relay IP as a dotted quad.
func (r Relay) Host() string { return urlx.FormatIPv4(r.IP) }

// DefaultRelayCount matches the number of distinct relays the paper
// observes being contacted from Syria.
const DefaultRelayCount = 1111

// Consensus is a snapshot of the relay population, valid for the whole
// observation window (relay churn over 9 days is negligible for the
// analyses reproduced here).
type Consensus struct {
	relays []Relay
	byAddr map[uint64]int // ip<<16|port -> relay index (both OR and Dir ports)
}

// NewConsensus generates n relays deterministically from seed.
func NewConsensus(seed uint64, n int) *Consensus {
	r := stats.NewRand(seed ^ 0x70725f72656c6179)
	c := &Consensus{
		relays: make([]Relay, 0, n),
		byAddr: make(map[uint64]int, 2*n),
	}
	used := make(map[uint32]struct{}, n)
	for len(c.relays) < n {
		// Relay IPs live in European/US hosting space; avoid the geoip
		// seed's special subnets (Israel etc.) so analyses don't conflate
		// Tor endpoints with IP-censored destinations.
		ip := 0x55000000 + r.Uint32()%0x20000000 // 85.0.0.0 .. 116.255.255.255
		if _, dup := used[ip]; dup {
			continue
		}
		used[ip] = struct{}{}

		var or uint16
		switch {
		case r.Bool(0.62):
			or = 9001
		case r.Bool(0.5):
			or = 443
		default:
			or = uint16(9000 + r.Intn(200))
		}
		var dir uint16
		if r.Bool(0.55) {
			if r.Bool(0.7) {
				dir = 9030
			} else {
				dir = 80
			}
		}
		relay := Relay{
			Nickname: nickname(r),
			IP:       ip,
			ORPort:   or,
			DirPort:  dir,
		}
		idx := len(c.relays)
		c.relays = append(c.relays, relay)
		c.byAddr[addrKey(ip, or)] = idx
		if dir != 0 {
			c.byAddr[addrKey(ip, dir)] = idx
		}
	}
	return c
}

func addrKey(ip uint32, port uint16) uint64 {
	return uint64(ip)<<16 | uint64(port)
}

func nickname(r *stats.Rand) string {
	const syll = "tornodexitguardrelaymidfastbeta"
	var b strings.Builder
	for i := 0; i < 3; i++ {
		j := r.Intn(len(syll) - 3)
		b.WriteString(syll[j : j+3])
	}
	return b.String()
}

// Len returns the relay count.
func (c *Consensus) Len() int { return len(c.relays) }

// Relays returns the relay table (callers must not mutate it).
func (c *Consensus) Relays() []Relay { return c.relays }

// Relay returns relay i.
func (c *Consensus) Relay(i int) Relay { return c.relays[i] }

// Lookup finds the relay listening on (ip, port), matching either the OR
// or the directory port — the paper's ⟨node IP, port, date⟩ triplet join.
func (c *Consensus) Lookup(ip uint32, port uint16) (Relay, bool) {
	i, ok := c.byAddr[addrKey(ip, port)]
	if !ok {
		return Relay{}, false
	}
	return c.relays[i], true
}

// LookupHost is Lookup over a dotted-quad host string.
func (c *Consensus) LookupHost(host string, port uint16) (Relay, bool) {
	ip, ok := urlx.ParseIPv4(host)
	if !ok {
		return Relay{}, false
	}
	return c.Lookup(ip, port)
}

// IsRelayEndpoint reports whether (host, port) belongs to a relay.
func (c *Consensus) IsRelayEndpoint(host string, port uint16) bool {
	_, ok := c.LookupHost(host, port)
	return ok
}

// Traffic classes of §7.1.
type TrafficClass uint8

const (
	// NotTor means the request does not touch a known relay.
	NotTor TrafficClass = iota
	// TorHTTP is directory-protocol signaling (fetching descriptors,
	// consensus documents, keys) over a relay's directory port.
	TorHTTP
	// TorOnion is OR-port traffic: circuit building and relayed data.
	TorOnion
)

// String names the traffic class.
func (t TrafficClass) String() string {
	switch t {
	case TorHTTP:
		return "Tor-http"
	case TorOnion:
		return "Tor-onion"
	}
	return "not-tor"
}

// dirPrefixes are the Tor directory protocol path prefixes (dir-spec v2),
// the signatures the paper greps for to isolate Torhttp.
var dirPrefixes = []string{
	"/tor/server/",
	"/tor/extra/",
	"/tor/keys",
	"/tor/status/",
	"/tor/status-vote/",
	"/tor/micro/",
	"/tor/rendezvous",
}

// IsDirPath reports whether an HTTP request path speaks the Tor directory
// protocol.
func IsDirPath(path string) bool {
	if !strings.HasPrefix(path, "/tor/") {
		return false
	}
	for _, p := range dirPrefixes {
		if strings.HasPrefix(path, p) {
			return true
		}
	}
	return false
}

// ClassifyRequest classifies a proxied request against the consensus: a
// directory-path GET to a relay (or any request hitting a relay's DirPort)
// is TorHTTP; any other request to a relay endpoint is TorOnion.
func (c *Consensus) ClassifyRequest(host string, port uint16, path string) TrafficClass {
	relay, ok := c.LookupHost(host, port)
	if !ok {
		return NotTor
	}
	if IsDirPath(path) || (relay.DirPort != 0 && port == relay.DirPort && port != relay.ORPort) {
		return TorHTTP
	}
	return TorOnion
}

// DirPath returns a canonical directory-protocol path for fetch kind k,
// used by the traffic generator. Kinds cycle through the dir-spec
// endpoints the paper names (/tor/server/authority.z, /tor/keys, ...).
func DirPath(k int) string {
	switch k % 5 {
	case 0:
		return "/tor/server/authority.z"
	case 1:
		return "/tor/keys/all.z"
	case 2:
		return "/tor/status-vote/current/consensus.z"
	case 3:
		return "/tor/server/all.z"
	default:
		return "/tor/status/all.z"
	}
}
