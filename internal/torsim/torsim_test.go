package torsim

import (
	"testing"

	"syriafilter/internal/urlx"
)

func TestConsensusDeterministic(t *testing.T) {
	a := NewConsensus(1, 100)
	b := NewConsensus(1, 100)
	for i := 0; i < 100; i++ {
		if a.Relay(i) != b.Relay(i) {
			t.Fatalf("relay %d differs between same-seed consensuses", i)
		}
	}
	c := NewConsensus(2, 100)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Relay(i) == c.Relay(i) {
			same++
		}
	}
	if same == 100 {
		t.Fatal("different seeds produced identical consensus")
	}
}

func TestConsensusSize(t *testing.T) {
	c := NewConsensus(7, DefaultRelayCount)
	if c.Len() != DefaultRelayCount {
		t.Fatalf("Len = %d, want %d", c.Len(), DefaultRelayCount)
	}
	// All relay IPs must be unique.
	seen := map[uint32]struct{}{}
	for _, r := range c.Relays() {
		if _, dup := seen[r.IP]; dup {
			t.Fatalf("duplicate relay IP %s", r.Host())
		}
		seen[r.IP] = struct{}{}
	}
}

func TestPortDistribution(t *testing.T) {
	c := NewConsensus(7, DefaultRelayCount)
	or9001 := 0
	for _, r := range c.Relays() {
		if r.ORPort == 9001 {
			or9001++
		}
	}
	// 9001 must dominate (paper: port 9001 ranks third among censored
	// ports because of Tor blocking).
	if frac := float64(or9001) / float64(c.Len()); frac < 0.5 {
		t.Errorf("9001 OR-port share = %v, want majority", frac)
	}
}

func TestLookup(t *testing.T) {
	c := NewConsensus(3, 50)
	r := c.Relay(0)
	got, ok := c.Lookup(r.IP, r.ORPort)
	if !ok || got != r {
		t.Fatalf("Lookup OR port failed: %+v ok=%v", got, ok)
	}
	if r.DirPort != 0 {
		got, ok = c.Lookup(r.IP, r.DirPort)
		if !ok || got != r {
			t.Fatalf("Lookup dir port failed")
		}
	}
	if _, ok := c.Lookup(r.IP, 1); ok {
		t.Error("bogus port matched")
	}
	if _, ok := c.LookupHost("not-an-ip", 9001); ok {
		t.Error("hostname matched")
	}
}

func TestIsDirPath(t *testing.T) {
	yes := []string{
		"/tor/server/authority.z",
		"/tor/keys/all.z",
		"/tor/status-vote/current/consensus.z",
		"/tor/micro/d/abc",
	}
	no := []string{
		"/",
		"/tor",
		"/torrent/file",
		"/tor/unknown/x",
		"tor/server/authority.z",
	}
	for _, p := range yes {
		if !IsDirPath(p) {
			t.Errorf("IsDirPath(%q) = false", p)
		}
	}
	for _, p := range no {
		if IsDirPath(p) {
			t.Errorf("IsDirPath(%q) = true", p)
		}
	}
}

func TestClassifyRequest(t *testing.T) {
	c := NewConsensus(5, 200)
	var withDir, orOnly Relay
	for _, r := range c.Relays() {
		if r.DirPort != 0 && withDir.IP == 0 && r.DirPort != r.ORPort {
			withDir = r
		}
		if r.DirPort == 0 && orOnly.IP == 0 {
			orOnly = r
		}
	}
	if withDir.IP == 0 || orOnly.IP == 0 {
		t.Fatal("consensus lacks needed relay shapes")
	}

	if got := c.ClassifyRequest(withDir.Host(), withDir.DirPort, "/tor/server/all.z"); got != TorHTTP {
		t.Errorf("dir fetch = %v", got)
	}
	if got := c.ClassifyRequest(withDir.Host(), withDir.ORPort, ""); got != TorOnion {
		t.Errorf("OR connect = %v", got)
	}
	if got := c.ClassifyRequest(orOnly.Host(), orOnly.ORPort, "/tor/keys"); got != TorHTTP {
		t.Errorf("dir path over OR port = %v (dir-protocol path should win)", got)
	}
	if got := c.ClassifyRequest("10.9.8.7", 9001, "/tor/keys"); got != NotTor {
		t.Errorf("non-relay = %v", got)
	}
	if got := c.ClassifyRequest("example.com", 80, "/"); got != NotTor {
		t.Errorf("plain web = %v", got)
	}
}

func TestDirPathCycles(t *testing.T) {
	seen := map[string]struct{}{}
	for k := 0; k < 10; k++ {
		p := DirPath(k)
		if !IsDirPath(p) {
			t.Errorf("DirPath(%d) = %q not recognized by IsDirPath", k, p)
		}
		seen[p] = struct{}{}
	}
	if len(seen) < 5 {
		t.Errorf("DirPath variety = %d", len(seen))
	}
}

func TestRelayHostRoundTrip(t *testing.T) {
	c := NewConsensus(11, 20)
	for _, r := range c.Relays() {
		ip, ok := urlx.ParseIPv4(r.Host())
		if !ok || ip != r.IP {
			t.Fatalf("Host round trip failed for %+v", r)
		}
	}
}
