package stats

import (
	"errors"
	"math"
)

// Interval is a two-sided confidence interval for a proportion.
type Interval struct {
	P    float64 // point estimate
	Lo   float64
	Hi   float64
	Conf float64 // confidence level, e.g. 0.95
}

// zFor returns the standard-normal quantile for a two-sided confidence
// level. We only need a handful of levels; the table keeps us stdlib-only
// and exact for the cases the toolkit exposes.
func zFor(conf float64) (float64, error) {
	switch {
	case math.Abs(conf-0.90) < 1e-9:
		return 1.6448536269514722, nil
	case math.Abs(conf-0.95) < 1e-9:
		return 1.959963984540054, nil
	case math.Abs(conf-0.99) < 1e-9:
		return 2.5758293035489004, nil
	default:
		return 0, errors.New("stats: unsupported confidence level (use 0.90, 0.95 or 0.99)")
	}
}

// ProportionCI returns the normal-approximation (Wald) confidence interval
// for a proportion with successes out of n trials. This is the interval the
// paper invokes in §3.3 ([12] eq. 1, ch. 13.9.2) to argue that the 4% sample
// Dsample pins proportions to ±0.0001 of Dfull at 95% confidence.
func ProportionCI(successes, n uint64, conf float64) (Interval, error) {
	if n == 0 {
		return Interval{}, errors.New("stats: ProportionCI with n = 0")
	}
	if successes > n {
		return Interval{}, errors.New("stats: successes exceed trials")
	}
	z, err := zFor(conf)
	if err != nil {
		return Interval{}, err
	}
	p := float64(successes) / float64(n)
	half := z * math.Sqrt(p*(1-p)/float64(n))
	return Interval{P: p, Lo: clamp01(p - half), Hi: clamp01(p + half), Conf: conf}, nil
}

// WilsonCI returns the Wilson score interval, which behaves sanely for
// proportions near 0 or 1 and small n (many of the paper's censored-share
// cells are tiny proportions).
func WilsonCI(successes, n uint64, conf float64) (Interval, error) {
	if n == 0 {
		return Interval{}, errors.New("stats: WilsonCI with n = 0")
	}
	if successes > n {
		return Interval{}, errors.New("stats: successes exceed trials")
	}
	z, err := zFor(conf)
	if err != nil {
		return Interval{}, err
	}
	p := float64(successes) / float64(n)
	nf := float64(n)
	z2 := z * z
	denom := 1 + z2/nf
	center := (p + z2/(2*nf)) / denom
	half := z * math.Sqrt(p*(1-p)/nf+z2/(4*nf*nf)) / denom
	lo, hi := clamp01(center-half), clamp01(center+half)
	// Degenerate observations pin the corresponding bound exactly.
	if successes == 0 {
		lo = 0
	}
	if successes == n {
		hi = 1
	}
	return Interval{P: p, Lo: lo, Hi: hi, Conf: conf}, nil
}

// SampleSizeForHalfWidth returns the n needed so that a Wald interval at the
// given confidence has half-width at most h for worst-case p = 0.5, the
// calculation behind the paper's "n = 32M ⇒ ±0.0001" claim.
func SampleSizeForHalfWidth(h, conf float64) (uint64, error) {
	if !(h > 0) {
		return 0, errors.New("stats: half-width must be positive")
	}
	z, err := zFor(conf)
	if err != nil {
		return 0, err
	}
	n := z * z * 0.25 / (h * h)
	return uint64(math.Ceil(n)), nil
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
