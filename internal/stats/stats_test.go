package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestHistogramBounds(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	h.Add(-1)  // clamps to bucket 0
	h.Add(0)   // bucket 0
	h.Add(9.9) // bucket 4
	h.Add(15)  // clamps to bucket 4
	h.Add(5)   // bucket 2
	b := h.Buckets()
	if b[0] != 2 || b[2] != 1 || b[4] != 2 {
		t.Errorf("buckets = %v", b)
	}
	if h.Total() != 5 {
		t.Errorf("total = %d", h.Total())
	}
}

func TestHistogramMerge(t *testing.T) {
	a := NewHistogram(0, 1, 4)
	b := NewHistogram(0, 1, 4)
	a.Add(0.1)
	b.Add(0.1)
	b.Add(0.9)
	a.Merge(b)
	bu := a.Buckets()
	if bu[0] != 2 || bu[3] != 1 || a.Total() != 3 {
		t.Errorf("merged = %v total=%d", bu, a.Total())
	}
}

func TestHistogramMergeGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on geometry mismatch")
		}
	}()
	NewHistogram(0, 1, 4).Merge(NewHistogram(0, 2, 4))
}

func TestHistogramBucketMid(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	if got := h.BucketMid(0); got != 1 {
		t.Errorf("BucketMid(0) = %v", got)
	}
	if got := h.BucketMid(4); got != 9 {
		t.Errorf("BucketMid(4) = %v", got)
	}
}

func TestCDF(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3, 4})
	cases := []struct{ x, want float64 }{
		{0.5, 0}, {1, 0.25}, {2.5, 0.5}, {4, 1}, {99, 1},
	}
	for _, tc := range cases {
		if got := c.P(tc.x); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("P(%v) = %v, want %v", tc.x, got, tc.want)
		}
	}
	if got := c.Quantile(0.5); got != 2 {
		t.Errorf("median = %v", got)
	}
	if got := c.Quantile(1); got != 4 {
		t.Errorf("q1 = %v", got)
	}
	if got := c.Quantile(0); got != 1 {
		t.Errorf("q0 = %v", got)
	}
}

func TestCDFEmpty(t *testing.T) {
	c := NewCDF(nil)
	if c.P(1) != 0 {
		t.Error("empty CDF P != 0")
	}
	if !math.IsNaN(c.Quantile(0.5)) {
		t.Error("empty CDF quantile not NaN")
	}
	if c.Points(10) != nil {
		t.Error("empty CDF points not nil")
	}
}

func TestCDFMonotone(t *testing.T) {
	if err := quick.Check(func(raw []float64) bool {
		samples := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				samples = append(samples, v)
			}
		}
		c := NewCDF(samples)
		prev := -1.0
		for x := -5.0; x <= 5; x += 0.5 {
			p := c.P(x)
			if p < prev || p < 0 || p > 1 {
				return false
			}
			prev = p
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCDFPoints(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3, 4, 5, 6, 7, 8})
	pts := c.Points(4)
	if len(pts) != 4 {
		t.Fatalf("points len = %d", len(pts))
	}
	if pts[3][0] != 8 || pts[3][1] != 1 {
		t.Errorf("last point = %v", pts[3])
	}
}

func TestWelford(t *testing.T) {
	var w Welford
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(x)
	}
	if math.Abs(w.Mean()-5) > 1e-12 {
		t.Errorf("mean = %v", w.Mean())
	}
	// Sample variance of this classic dataset is 32/7.
	if math.Abs(w.Var()-32.0/7.0) > 1e-9 {
		t.Errorf("var = %v", w.Var())
	}
}

func TestWelfordMergeEqualsSequential(t *testing.T) {
	if err := quick.Check(func(xs []float64, split uint8) bool {
		clean := make([]float64, 0, len(xs))
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e6 {
				clean = append(clean, x)
			}
		}
		if len(clean) < 2 {
			return true
		}
		cut := int(split) % len(clean)
		var whole, a, b Welford
		for _, x := range clean {
			whole.Add(x)
		}
		for _, x := range clean[:cut] {
			a.Add(x)
		}
		for _, x := range clean[cut:] {
			b.Add(x)
		}
		a.Merge(&b)
		return a.N() == whole.N() &&
			math.Abs(a.Mean()-whole.Mean()) < 1e-6 &&
			math.Abs(a.Var()-whole.Var()) < 1e-6*(1+whole.Var())
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCosine(t *testing.T) {
	if got := Cosine([]float64{1, 0}, []float64{1, 0}); math.Abs(got-1) > 1e-12 {
		t.Errorf("identical vectors: %v", got)
	}
	if got := Cosine([]float64{1, 0}, []float64{0, 1}); got != 0 {
		t.Errorf("orthogonal vectors: %v", got)
	}
	if got := Cosine([]float64{1, 1}, []float64{0, 0}); got != 0 {
		t.Errorf("zero vector: %v", got)
	}
}

func TestCosineCountsMatchesDense(t *testing.T) {
	a := map[string]uint64{"x": 3, "y": 4}
	b := map[string]uint64{"y": 4, "z": 3}
	got := CosineCounts(a, b)
	want := Cosine([]float64{3, 4, 0}, []float64{0, 4, 3})
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("sparse %v != dense %v", got, want)
	}
}

func TestCosineCountsSymmetric(t *testing.T) {
	if err := quick.Check(func(ka, kb []uint8) bool {
		a, b := map[string]uint64{}, map[string]uint64{}
		for _, k := range ka {
			a[string(rune('a'+k%16))]++
		}
		for _, k := range kb {
			b[string(rune('a'+k%16))]++
		}
		x, y := CosineCounts(a, b), CosineCounts(b, a)
		return math.Abs(x-y) < 1e-12 && x >= -1e-12 && x <= 1+1e-12
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestJaccard(t *testing.T) {
	set := func(keys ...string) map[string]struct{} {
		m := map[string]struct{}{}
		for _, k := range keys {
			m[k] = struct{}{}
		}
		return m
	}
	if got := Jaccard(set("a", "b"), set("b", "c")); math.Abs(got-1.0/3.0) > 1e-12 {
		t.Errorf("jaccard = %v", got)
	}
	if got := Jaccard(set(), set()); got != 0 {
		t.Errorf("empty jaccard = %v", got)
	}
}

func TestSimilarityMatrix(t *testing.T) {
	profiles := []map[string]uint64{
		{"a": 10, "b": 1},
		{"a": 9, "b": 2},
		{"z": 5},
	}
	m := SimilarityMatrix(profiles)
	if m[0][0] != 1 || m[2][2] != 1 {
		t.Error("diagonal not 1")
	}
	if m[0][1] != m[1][0] {
		t.Error("matrix not symmetric")
	}
	if m[0][2] != 0 {
		t.Errorf("disjoint profiles similarity = %v", m[0][2])
	}
	if m[0][1] < 0.9 {
		t.Errorf("similar profiles similarity = %v", m[0][1])
	}
}

func TestZipfDistribution(t *testing.T) {
	z, err := NewZipf(100, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRand(5)
	counts := make([]int, 100)
	const n = 200000
	for i := 0; i < n; i++ {
		counts[z.Rank(r)]++
	}
	// Rank 0 should be about twice rank 1 and about 10x rank 9 for s=1.
	r01 := float64(counts[0]) / float64(counts[1])
	if r01 < 1.8 || r01 > 2.2 {
		t.Errorf("rank0/rank1 = %v, want ~2", r01)
	}
	r09 := float64(counts[0]) / float64(counts[9])
	if r09 < 8.5 || r09 > 11.5 {
		t.Errorf("rank0/rank9 = %v, want ~10", r09)
	}
}

func TestZipfErrors(t *testing.T) {
	if _, err := NewZipf(0, 1); err == nil {
		t.Error("NewZipf(0,1) should fail")
	}
	if _, err := NewZipf(10, 0); err == nil {
		t.Error("NewZipf(10,0) should fail")
	}
}

func TestFitPowerLawRecoversExponent(t *testing.T) {
	// Generate a continuous power law with alpha=2.5 via inverse transform:
	// x = xmin * (1-u)^(-1/(alpha-1)).
	r := NewRand(21)
	const alpha, xmin = 2.5, 1.0
	samples := make([]float64, 50000)
	for i := range samples {
		samples[i] = xmin * math.Pow(1-r.Float64(), -1/(alpha-1))
	}
	fit, err := FitPowerLaw(samples, xmin)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Alpha-alpha) > 0.05 {
		t.Errorf("fitted alpha = %v, want ~%v", fit.Alpha, alpha)
	}
	if fit.N != len(samples) {
		t.Errorf("fit.N = %d", fit.N)
	}
}

func TestFitPowerLawErrors(t *testing.T) {
	if _, err := FitPowerLaw([]float64{1, 2, 3}, 0); err == nil {
		t.Error("xmin=0 should fail")
	}
	if _, err := FitPowerLaw([]float64{0.1, 0.2}, 1); err == nil {
		t.Error("no samples above xmin should fail")
	}
}

func TestFreqOfFreq(t *testing.T) {
	got := FreqOfFreq([]uint64{1, 1, 2, 5, 5, 5})
	want := [][2]uint64{{1, 2}, {2, 1}, {5, 3}}
	if len(got) != len(want) {
		t.Fatalf("len = %d", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("entry %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestProportionCI(t *testing.T) {
	iv, err := ProportionCI(500, 1000, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(iv.P-0.5) > 1e-12 {
		t.Errorf("P = %v", iv.P)
	}
	halfWant := 1.959963984540054 * math.Sqrt(0.25/1000)
	if math.Abs((iv.Hi-iv.Lo)/2-halfWant) > 1e-9 {
		t.Errorf("half-width = %v, want %v", (iv.Hi-iv.Lo)/2, halfWant)
	}
}

// The paper's §3.3 claim: with n = 32M the proportion is within ±0.0001 at
// 95% confidence. Verify our CI math reproduces that.
func TestPaperSampleClaim(t *testing.T) {
	n := uint64(32_310_958)
	iv, err := ProportionCI(n/2, n, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	half := (iv.Hi - iv.Lo) / 2
	if half > 0.0002 {
		t.Errorf("half-width at n=32M is %v, paper claims <= 1e-4 scale", half)
	}
	need, err := SampleSizeForHalfWidth(0.0002, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if need > n {
		t.Errorf("needed n %d should be <= paper's sample %d", need, n)
	}
}

func TestWilsonCIBehavesAtExtremes(t *testing.T) {
	iv, err := WilsonCI(0, 10, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if iv.Lo != 0 || iv.Hi <= 0 || iv.Hi > 0.5 {
		t.Errorf("Wilson(0/10) = [%v, %v]", iv.Lo, iv.Hi)
	}
	iv, err = WilsonCI(10, 10, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if iv.Hi != 1 || iv.Lo >= 1 || iv.Lo < 0.5 {
		t.Errorf("Wilson(10/10) = [%v, %v]", iv.Lo, iv.Hi)
	}
}

func TestCIErrors(t *testing.T) {
	if _, err := ProportionCI(1, 0, 0.95); err == nil {
		t.Error("n=0 should fail")
	}
	if _, err := ProportionCI(2, 1, 0.95); err == nil {
		t.Error("successes > n should fail")
	}
	if _, err := ProportionCI(1, 2, 0.80); err == nil {
		t.Error("unsupported confidence should fail")
	}
	if _, err := SampleSizeForHalfWidth(0, 0.95); err == nil {
		t.Error("h=0 should fail")
	}
}

func TestHLLAccuracy(t *testing.T) {
	h := NewHyperLogLog(14)
	const n = 100000
	r := NewRand(77)
	seen := make(map[uint64]struct{}, n)
	for len(seen) < n {
		v := r.Uint64()
		seen[v] = struct{}{}
		h.AddHash(v)
	}
	est := float64(h.Estimate())
	if math.Abs(est-n)/n > 0.03 {
		t.Errorf("HLL estimate %v for true %d (err %.2f%%)", est, n, 100*math.Abs(est-n)/n)
	}
}

func TestHLLSmallRange(t *testing.T) {
	h := NewHyperLogLog(10)
	for i := 0; i < 50; i++ {
		h.Add(string(rune('a' + i)))
	}
	est := h.Estimate()
	if est < 45 || est > 55 {
		t.Errorf("small-range estimate = %d, want ~50", est)
	}
}

func TestHLLDuplicatesDontInflate(t *testing.T) {
	h := NewHyperLogLog(12)
	for i := 0; i < 10000; i++ {
		h.Add("same-key")
	}
	if est := h.Estimate(); est != 1 {
		t.Errorf("estimate of singleton stream = %d", est)
	}
}

func TestHLLMerge(t *testing.T) {
	a, b := NewHyperLogLog(12), NewHyperLogLog(12)
	r := NewRand(123)
	for i := 0; i < 5000; i++ {
		v := r.Uint64()
		a.AddHash(v)
		b.AddHash(v) // same elements: merge must not double count
	}
	for i := 0; i < 5000; i++ {
		b.AddHash(r.Uint64())
	}
	a.Merge(b)
	est := float64(a.Estimate())
	if math.Abs(est-10000)/10000 > 0.05 {
		t.Errorf("merged estimate %v, want ~10000", est)
	}
}

func TestHLLPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for bad precision")
		}
	}()
	NewHyperLogLog(3)
}

func TestHash64Stable(t *testing.T) {
	// FNV-1a known-answer test.
	if got := Hash64(""); got != 14695981039346656037 {
		t.Errorf("Hash64(\"\") = %d", got)
	}
	if Hash64("a") == Hash64("b") {
		t.Error("trivial collision")
	}
}
