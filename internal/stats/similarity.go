package stats

import "math"

// Cosine returns the cosine similarity of two equal-length vectors, the
// metric the paper uses in §5.2 (Table 6) to compare censored-domain
// profiles across proxies:
//
//	cos(A, B) = Σ AᵢBᵢ / (√Σ Aᵢ² · √Σ Bᵢ²)
//
// Returns 0 when either vector is all-zero (no basis for similarity).
func Cosine(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("stats: Cosine over vectors of different length")
	}
	var dot, na, nb float64
	for i := range a {
		dot += a[i] * b[i]
		na += a[i] * a[i]
		nb += b[i] * b[i]
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / (math.Sqrt(na) * math.Sqrt(nb))
}

// CosineCounts computes cosine similarity between two sparse count maps
// (domain -> request count), aligning keys as the union of both maps.
func CosineCounts(a, b map[string]uint64) float64 {
	var dot, na, nb float64
	for k, av := range a {
		fa := float64(av)
		na += fa * fa
		if bv, ok := b[k]; ok {
			dot += fa * float64(bv)
		}
	}
	for _, bv := range b {
		fb := float64(bv)
		nb += fb * fb
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / (math.Sqrt(na) * math.Sqrt(nb))
}

// Jaccard returns |A∩B| / |A∪B| for two string sets, used as a secondary
// similarity measure in the proxy-specialization analysis.
func Jaccard(a, b map[string]struct{}) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 0
	}
	inter := 0
	for k := range a {
		if _, ok := b[k]; ok {
			inter++
		}
	}
	union := len(a) + len(b) - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

// SimilarityMatrix computes the full pairwise cosine matrix over n count
// maps (Table 6). The diagonal is 1 when the profile is non-empty.
func SimilarityMatrix(profiles []map[string]uint64) [][]float64 {
	n := len(profiles)
	m := make([][]float64, n)
	for i := range m {
		m[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			var s float64
			if i == j {
				if len(profiles[i]) > 0 {
					s = 1
				}
			} else {
				s = CosineCounts(profiles[i], profiles[j])
			}
			m[i][j] = s
			m[j][i] = s
		}
	}
	return m
}
