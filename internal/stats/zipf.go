package stats

import (
	"errors"
	"math"
	"sort"
)

// Zipf samples ranks 1..n with P(rank=k) ∝ 1/k^s. Fig. 2 of the paper shows
// the per-domain request counts follow a power law; the traffic generator
// uses this sampler for the long tail of domain popularity.
//
// Implementation: precomputed cumulative table + binary search. For the
// table sizes we use (<= a few hundred thousand domains) the table is cheap,
// exact, and much faster than rejection sampling.
type Zipf struct {
	cum []float64
}

// NewZipf builds a Zipf sampler over ranks 1..n with exponent s > 0.
func NewZipf(n int, s float64) (*Zipf, error) {
	if n <= 0 {
		return nil, errors.New("stats: Zipf needs n > 0")
	}
	if !(s > 0) {
		return nil, errors.New("stats: Zipf needs s > 0")
	}
	cum := make([]float64, n)
	total := 0.0
	for k := 1; k <= n; k++ {
		total += math.Pow(float64(k), -s)
		cum[k-1] = total
	}
	return &Zipf{cum: cum}, nil
}

// Rank draws a rank in [0, n) (i.e. zero-based) from the distribution.
func (z *Zipf) Rank(r *Rand) int {
	x := r.Float64() * z.cum[len(z.cum)-1]
	lo, hi := 0, len(z.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cum[mid] <= x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// N returns the support size.
func (z *Zipf) N() int { return len(z.cum) }

// PowerLawFit holds the result of a discrete power-law MLE fit.
type PowerLawFit struct {
	Alpha float64 // scaling exponent
	XMin  float64 // lower cutoff used for the fit
	N     int     // number of samples >= XMin
}

// FitPowerLaw estimates the exponent alpha of P(x) ∝ x^-alpha for samples
// >= xmin using the continuous MLE of Clauset, Shalizi & Newman (2009):
//
//	alpha = 1 + n / Σ ln(xᵢ/xmin)
//
// It is used by the Fig. 2 analysis to report the fitted exponent of the
// requests-per-domain distribution. Returns an error if fewer than two
// samples clear the cutoff.
func FitPowerLaw(samples []float64, xmin float64) (PowerLawFit, error) {
	if xmin <= 0 {
		return PowerLawFit{}, errors.New("stats: FitPowerLaw needs xmin > 0")
	}
	n := 0
	sum := 0.0
	for _, x := range samples {
		if x >= xmin {
			n++
			sum += math.Log(x / xmin)
		}
	}
	if n < 2 || sum == 0 {
		return PowerLawFit{}, errors.New("stats: FitPowerLaw needs >= 2 samples above xmin")
	}
	return PowerLawFit{Alpha: 1 + float64(n)/sum, XMin: xmin, N: n}, nil
}

// FreqOfFreq turns raw counts into the (count, number of keys with that
// count) pairs plotted on Fig. 2's log-log axes, ascending by count.
func FreqOfFreq(counts []uint64) [][2]uint64 {
	m := make(map[uint64]uint64)
	for _, c := range counts {
		m[c]++
	}
	keys := make([]uint64, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	out := make([][2]uint64, 0, len(keys))
	for _, k := range keys {
		out = append(out, [2]uint64{k, m[k]})
	}
	return out
}
