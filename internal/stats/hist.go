package stats

import (
	"math"
	"sort"
)

// Histogram is a fixed-width bucket histogram over [lo, hi). Values outside
// the range are clamped into the first/last bucket so totals are preserved
// (the paper's figures are all bounded-domain: time of day, ports, counts).
type Histogram struct {
	lo, hi  float64
	width   float64
	buckets []uint64
	n       uint64
}

// NewHistogram returns a histogram of nbuckets equal-width buckets over
// [lo, hi). It panics on invalid bounds.
func NewHistogram(lo, hi float64, nbuckets int) *Histogram {
	if !(hi > lo) || nbuckets <= 0 {
		panic("stats: invalid histogram bounds")
	}
	return &Histogram{
		lo: lo, hi: hi,
		width:   (hi - lo) / float64(nbuckets),
		buckets: make([]uint64, nbuckets),
	}
}

// Add records one observation of v.
func (h *Histogram) Add(v float64) { h.AddN(v, 1) }

// AddN records n observations of v.
func (h *Histogram) AddN(v float64, n uint64) {
	h.buckets[h.bucketOf(v)] += n
	h.n += n
}

func (h *Histogram) bucketOf(v float64) int {
	if v < h.lo {
		return 0
	}
	i := int((v - h.lo) / h.width)
	if i >= len(h.buckets) {
		i = len(h.buckets) - 1
	}
	return i
}

// Buckets returns a copy of the bucket counts.
func (h *Histogram) Buckets() []uint64 {
	out := make([]uint64, len(h.buckets))
	copy(out, h.buckets)
	return out
}

// BucketMid returns the midpoint value of bucket i.
func (h *Histogram) BucketMid(i int) float64 {
	return h.lo + (float64(i)+0.5)*h.width
}

// Total returns the number of recorded observations.
func (h *Histogram) Total() uint64 { return h.n }

// Merge folds other (which must have identical geometry) into h.
func (h *Histogram) Merge(other *Histogram) {
	if len(h.buckets) != len(other.buckets) || h.lo != other.lo || h.hi != other.hi {
		panic("stats: merging histograms with different geometry")
	}
	for i, b := range other.buckets {
		h.buckets[i] += b
	}
	h.n += other.n
}

// CDF is an empirical cumulative distribution function built from samples.
// The paper's Figures 4(b) and 10 are exactly this object.
type CDF struct {
	sorted []float64
}

// NewCDF builds an empirical CDF from samples (which it copies and sorts).
func NewCDF(samples []float64) *CDF {
	s := make([]float64, len(samples))
	copy(s, samples)
	sort.Float64s(s)
	return &CDF{sorted: s}
}

// P returns the empirical P(X <= x).
func (c *CDF) P(x float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	i := sort.SearchFloat64s(c.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(c.sorted))
}

// Quantile returns the q-quantile (0 <= q <= 1) using nearest-rank.
func (c *CDF) Quantile(q float64) float64 {
	if len(c.sorted) == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return c.sorted[0]
	}
	if q >= 1 {
		return c.sorted[len(c.sorted)-1]
	}
	i := int(math.Ceil(q*float64(len(c.sorted)))) - 1
	if i < 0 {
		i = 0
	}
	return c.sorted[i]
}

// Len returns the number of samples.
func (c *CDF) Len() int { return len(c.sorted) }

// Points returns up to n (x, P(X<=x)) pairs evenly spaced by rank, for
// rendering. n <= 0 means all points.
func (c *CDF) Points(n int) [][2]float64 {
	total := len(c.sorted)
	if total == 0 {
		return nil
	}
	if n <= 0 || n > total {
		n = total
	}
	out := make([][2]float64, 0, n)
	for i := 0; i < n; i++ {
		rank := (i + 1) * total / n
		if rank < 1 {
			rank = 1
		}
		out = append(out, [2]float64{c.sorted[rank-1], float64(rank) / float64(total)})
	}
	return out
}

// Welford tracks online mean and variance (Welford 1962). Mergeable via the
// parallel-variance (Chan et al.) formula so it composes with the pipeline.
type Welford struct {
	n    uint64
	mean float64
	m2   float64
}

// Add records one observation.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of observations.
func (w *Welford) N() uint64 { return w.n }

// Mean returns the running mean (0 if empty).
func (w *Welford) Mean() float64 { return w.mean }

// Var returns the unbiased sample variance (0 if n < 2).
func (w *Welford) Var() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// Std returns the sample standard deviation.
func (w *Welford) Std() float64 { return math.Sqrt(w.Var()) }

// Merge folds other into w.
func (w *Welford) Merge(other *Welford) {
	if other.n == 0 {
		return
	}
	if w.n == 0 {
		*w = *other
		return
	}
	n := w.n + other.n
	d := other.mean - w.mean
	w.m2 += other.m2 + d*d*float64(w.n)*float64(other.n)/float64(n)
	w.mean += d * float64(other.n) / float64(n)
	w.n = n
}
