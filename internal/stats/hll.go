package stats

import (
	"fmt"
	"math"
	"math/bits"
)

// HyperLogLog estimates set cardinality in fixed memory (Flajolet et al.
// 2007). The user analysis (§4) and the BitTorrent analysis (§7.3) need
// distinct-user and distinct-content counts; at the paper's real scale
// exact sets would be expensive, so the toolkit provides both exact maps
// and this sketch (validated against each other in tests).
type HyperLogLog struct {
	p    uint8 // precision: m = 2^p registers
	regs []uint8
}

// NewHyperLogLog returns a sketch with 2^p registers (4 <= p <= 16). The
// standard error is about 1.04/sqrt(2^p): p=14 gives ~0.8%.
func NewHyperLogLog(p uint8) *HyperLogLog {
	if p < 4 || p > 16 {
		panic("stats: HyperLogLog precision must be in [4, 16]")
	}
	return &HyperLogLog{p: p, regs: make([]uint8, 1<<p)}
}

// AddHash offers a pre-hashed 64-bit value. Use Hash64 (FNV-1a) for strings.
// A splitmix64 finalizer is applied first: FNV's high bits mix poorly for
// short inputs and HLL takes the register index from the top bits.
func (h *HyperLogLog) AddHash(x uint64) {
	x = mix64(x)
	idx := x >> (64 - h.p)
	rest := x<<h.p | 1<<(h.p-1) // ensure non-zero so LeadingZeros is bounded
	rank := uint8(bits.LeadingZeros64(rest)) + 1
	if rank > h.regs[idx] {
		h.regs[idx] = rank
	}
}

// Add offers a string element.
func (h *HyperLogLog) Add(s string) { h.AddHash(Hash64(s)) }

// Estimate returns the estimated cardinality, with small-range correction.
func (h *HyperLogLog) Estimate() uint64 {
	m := float64(len(h.regs))
	var sum float64
	zeros := 0
	for _, r := range h.regs {
		sum += 1 / float64(uint64(1)<<r)
		if r == 0 {
			zeros++
		}
	}
	alpha := 0.7213 / (1 + 1.079/m)
	e := alpha * m * m / sum
	if e <= 2.5*m && zeros > 0 {
		// Linear counting for the small-cardinality regime.
		e = m * math.Log(m/float64(zeros))
	}
	return uint64(e + 0.5)
}

// Precision returns the sketch's precision p (2^p registers).
func (h *HyperLogLog) Precision() uint8 { return h.p }

// Registers returns a copy of the register array, for serialization.
func (h *HyperLogLog) Registers() []uint8 {
	return append([]uint8(nil), h.regs...)
}

// RestoreHyperLogLog rebuilds a sketch from a precision and register
// array previously obtained from Registers. The register slice is copied.
func RestoreHyperLogLog(p uint8, regs []uint8) (*HyperLogLog, error) {
	if p < 4 || p > 16 {
		return nil, fmt.Errorf("stats: HyperLogLog precision %d out of [4, 16]", p)
	}
	if len(regs) != 1<<p {
		return nil, fmt.Errorf("stats: %d HyperLogLog registers, want %d", len(regs), 1<<p)
	}
	h := NewHyperLogLog(p)
	copy(h.regs, regs)
	return h, nil
}

// Merge folds other (same precision) into h.
func (h *HyperLogLog) Merge(other *HyperLogLog) {
	if h.p != other.p {
		panic("stats: merging HyperLogLogs of different precision")
	}
	for i, r := range other.regs {
		if r > h.regs[i] {
			h.regs[i] = r
		}
	}
}

// mix64 is the splitmix64 finalizer, a strong 64-bit bijective mixer.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Hash64 is FNV-1a over the string bytes, the stdlib-compatible hash used
// for HLL input and for the Telecomix-style client-IP pseudonymization.
func Hash64(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}
