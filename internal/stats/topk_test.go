package stats

import (
	"fmt"
	"testing"
	"testing/quick"
)

func TestCounterBasics(t *testing.T) {
	c := NewCounter()
	c.Add("a")
	c.AddN("b", 3)
	c.Add("a")
	if got := c.Count("a"); got != 2 {
		t.Errorf("Count(a) = %d", got)
	}
	if got := c.Count("b"); got != 3 {
		t.Errorf("Count(b) = %d", got)
	}
	if got := c.Count("missing"); got != 0 {
		t.Errorf("Count(missing) = %d", got)
	}
	if c.Total() != 5 || c.Len() != 2 {
		t.Errorf("Total=%d Len=%d", c.Total(), c.Len())
	}
}

func TestCounterMerge(t *testing.T) {
	a, b := NewCounter(), NewCounter()
	a.AddN("x", 2)
	b.AddN("x", 3)
	b.AddN("y", 1)
	a.Merge(b)
	if a.Count("x") != 5 || a.Count("y") != 1 || a.Total() != 6 {
		t.Errorf("merged counter wrong: x=%d y=%d total=%d", a.Count("x"), a.Count("y"), a.Total())
	}
}

func TestCounterTopOrderingDeterministic(t *testing.T) {
	c := NewCounter()
	c.AddN("zeta", 5)
	c.AddN("alpha", 5)
	c.AddN("mid", 7)
	top := c.Top(3)
	if top[0].Key != "mid" || top[1].Key != "alpha" || top[2].Key != "zeta" {
		t.Errorf("Top order = %v", top)
	}
}

func TestCounterTopLimits(t *testing.T) {
	c := NewCounter()
	for i := 0; i < 10; i++ {
		c.AddN(fmt.Sprintf("k%d", i), uint64(i+1))
	}
	if got := len(c.Top(3)); got != 3 {
		t.Errorf("Top(3) len = %d", got)
	}
	if got := len(c.Top(0)); got != 10 {
		t.Errorf("Top(0) len = %d", got)
	}
	if got := len(c.Top(100)); got != 10 {
		t.Errorf("Top(100) len = %d", got)
	}
}

func TestTopKExactWhenUnderCapacity(t *testing.T) {
	tk := NewTopK(16)
	data := map[string]uint64{"a": 5, "b": 3, "c": 9}
	for k, n := range data {
		tk.AddN(k, n)
	}
	for k, n := range data {
		got, errB, ok := tk.Estimate(k)
		if !ok || got != n || errB != 0 {
			t.Errorf("Estimate(%s) = %d±%d ok=%v, want exact %d", k, got, errB, ok, n)
		}
	}
}

// Space-Saving guarantee: any key with true count > N/capacity must be
// tracked, and estimates never underestimate.
func TestTopKHeavyHitterGuarantee(t *testing.T) {
	const capacity = 32
	tk := NewTopK(capacity)
	truth := NewCounter()
	r := NewRand(99)
	z, err := NewZipf(500, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	const n = 50000
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("d%03d", z.Rank(r))
		tk.Add(key)
		truth.Add(key)
	}
	threshold := uint64(n / capacity)
	truth.Each(func(key string, count uint64) {
		if count <= threshold {
			return
		}
		est, _, ok := tk.Estimate(key)
		if !ok {
			t.Errorf("heavy hitter %q (count %d > %d) not tracked", key, count, threshold)
			return
		}
		if est < count {
			t.Errorf("estimate %d underestimates true count %d for %q", est, count, key)
		}
	})
}

func TestTopKErrorBound(t *testing.T) {
	tk := NewTopK(8)
	truth := NewCounter()
	r := NewRand(7)
	for i := 0; i < 20000; i++ {
		key := fmt.Sprintf("k%d", r.Intn(64))
		tk.Add(key)
		truth.Add(key)
	}
	truth.Each(func(key string, count uint64) {
		est, errB, ok := tk.Estimate(key)
		if !ok {
			return
		}
		if est-errB > count {
			t.Errorf("key %q: est-err %d > true %d", key, est-errB, count)
		}
	})
}

func TestTopKMergePreservesNoUnderestimate(t *testing.T) {
	a, b := NewTopK(16), NewTopK(16)
	truth := NewCounter()
	r := NewRand(3)
	z, err := NewZipf(64, 1.3) // skewed stream: heavy hitters are real
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10000; i++ {
		key := fmt.Sprintf("k%d", z.Rank(r))
		truth.Add(key)
		if i%2 == 0 {
			a.Add(key)
		} else {
			b.Add(key)
		}
	}
	a.Merge(b)
	for _, e := range truth.Top(4) {
		est, _, ok := a.Estimate(e.Key)
		if !ok {
			t.Errorf("merged sketch lost heavy key %q", e.Key)
			continue
		}
		if est < e.Count {
			t.Errorf("merged estimate %d < true %d for %q", est, e.Count, e.Key)
		}
	}
}

func TestTopKPanicsOnZeroCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewTopK(0)
}

func TestTopKMatchesCounterOnSmallStreams(t *testing.T) {
	if err := quick.Check(func(keys []uint8) bool {
		tk := NewTopK(256) // capacity exceeds distinct keys: must be exact
		c := NewCounter()
		for _, k := range keys {
			s := fmt.Sprintf("%d", k)
			tk.Add(s)
			c.Add(s)
		}
		ct, st := c.Top(10), tk.Top(10)
		if len(ct) != len(st) {
			return false
		}
		for i := range ct {
			if ct[i] != st[i] {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}
