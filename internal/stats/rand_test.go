package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
}

func TestRandDifferentSeedsDiverge(t *testing.T) {
	a, b := NewRand(1), NewRand(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical values", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRand(7)
	for i := 0; i < 100000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestIntnRange(t *testing.T) {
	r := NewRand(9)
	if err := quick.Check(func(nRaw uint16) bool {
		n := int(nRaw%1000) + 1
		v := r.Intn(n)
		return v >= 0 && v < n
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Intn(0)")
		}
	}()
	NewRand(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	r := NewRand(11)
	const n, trials = 10, 100000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(trials) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d: got %d, want ~%.0f", i, c, want)
		}
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := NewRand(13)
	var w Welford
	for i := 0; i < 200000; i++ {
		w.Add(r.NormFloat64())
	}
	if math.Abs(w.Mean()) > 0.02 {
		t.Errorf("normal mean = %v, want ~0", w.Mean())
	}
	if math.Abs(w.Std()-1) > 0.02 {
		t.Errorf("normal std = %v, want ~1", w.Std())
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := NewRand(17)
	var w Welford
	for i := 0; i < 200000; i++ {
		w.Add(r.ExpFloat64())
	}
	if math.Abs(w.Mean()-1) > 0.02 {
		t.Errorf("exponential mean = %v, want ~1", w.Mean())
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRand(19)
	for _, n := range []int{0, 1, 2, 17, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestForkIndependence(t *testing.T) {
	parent := NewRand(23)
	child := parent.Fork()
	a := make([]uint64, 64)
	for i := range a {
		a[i] = child.Uint64()
	}
	// Parent stream after the fork must not reproduce the child stream.
	for i := 0; i < 64; i++ {
		if parent.Uint64() == a[i] {
			t.Fatal("fork streams overlap")
		}
	}
}

func TestWeightedChoiceRespectsWeights(t *testing.T) {
	r := NewRand(29)
	cum := Cumulate([]float64{1, 0, 3})
	counts := make([]int, 3)
	for i := 0; i < 100000; i++ {
		counts[r.WeightedChoice(cum)]++
	}
	if counts[1] != 0 {
		t.Errorf("zero-weight bucket chosen %d times", counts[1])
	}
	ratio := float64(counts[2]) / float64(counts[0])
	if ratio < 2.7 || ratio > 3.3 {
		t.Errorf("weight ratio = %v, want ~3", ratio)
	}
}

func TestCumulateHandlesNegatives(t *testing.T) {
	cum := Cumulate([]float64{2, -5, 1})
	if cum[0] != 2 || cum[1] != 2 || cum[2] != 3 {
		t.Fatalf("Cumulate = %v", cum)
	}
}

func TestBoolProbability(t *testing.T) {
	r := NewRand(31)
	hits := 0
	const trials = 100000
	for i := 0; i < trials; i++ {
		if r.Bool(0.25) {
			hits++
		}
	}
	p := float64(hits) / trials
	if p < 0.24 || p > 0.26 {
		t.Errorf("Bool(0.25) hit rate %v", p)
	}
}
