package stats

import (
	"fmt"
	"math"
	"testing"
)

// The sketches sit on the per-record ingest hot path, so their Add paths
// must not allocate in steady state (the parse stage is held to
// <= 1 alloc/record; the sketches must not add to that).

func TestHLLAddZeroAllocs(t *testing.T) {
	h := NewHyperLogLog(12)
	key := "user-42-very-ordinary-key"
	if avg := testing.AllocsPerRun(1000, func() { h.Add(key) }); avg != 0 {
		t.Errorf("HLL.Add allocates %.2f allocs/op, want 0", avg)
	}
	if avg := testing.AllocsPerRun(1000, func() { h.AddHash(0xdeadbeef) }); avg != 0 {
		t.Errorf("HLL.AddHash allocates %.2f allocs/op, want 0", avg)
	}
}

func TestTopKAddSteadyStateZeroAllocs(t *testing.T) {
	// Steady state: the key is already tracked, so Add is one map lookup
	// plus a counter bump. (Inserting a NEW key allocates its node; that
	// happens at most capacity times plus once per eviction.)
	tk := NewTopK(64)
	for i := 0; i < 64; i++ {
		tk.AddN(fmt.Sprintf("key-%d", i), uint64(i+2))
	}
	key := "key-7"
	if avg := testing.AllocsPerRun(1000, func() { tk.Add(key) }); avg != 0 {
		t.Errorf("TopK.Add (tracked key) allocates %.2f allocs/op, want 0", avg)
	}
}

// hllRelErr feeds n distinct keys from gen and returns the relative
// estimate error.
func hllRelErr(p uint8, n int, gen func(i int) string) float64 {
	h := NewHyperLogLog(p)
	for i := 0; i < n; i++ {
		h.Add(gen(i))
	}
	return math.Abs(float64(h.Estimate())-float64(n)) / float64(n)
}

// The HLL must stay within its theoretical standard error (1.04/sqrt(m),
// we allow 3 sigma) on adversarially structured key sets, not just on
// uniform random hashes: sequential ids, shared long prefixes, and the
// Zipf-ranked key shapes the corpus actually produces.
func TestHLLErrorBoundAdversarialKeys(t *testing.T) {
	const p = 12
	bound := 3 * 1.04 / math.Sqrt(float64(uint64(1)<<p))
	const n = 50000
	cases := map[string]func(i int) string{
		"sequential":  func(i int) string { return fmt.Sprintf("user-%08d", i) },
		"long-prefix": func(i int) string { return fmt.Sprintf("aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa%d", i) },
		"ip-like":     func(i int) string { return fmt.Sprintf("10.%d.%d.%d", i>>16&255, i>>8&255, i&255) },
	}
	for name, gen := range cases {
		if err := hllRelErr(p, n, gen); err > bound {
			t.Errorf("%s keys: relative error %.4f exceeds 3-sigma bound %.4f", name, err, bound)
		}
	}
}

// Zipf-frequency streams are what the sketches actually see (domains and
// user activity are heavy-tailed); duplicates must not skew the distinct
// estimate.
func TestHLLErrorBoundZipfStream(t *testing.T) {
	const p = 12
	bound := 3 * 1.04 / math.Sqrt(float64(uint64(1)<<p))
	z, err := NewZipf(30000, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRand(99)
	h := NewHyperLogLog(p)
	distinct := map[int]struct{}{}
	for i := 0; i < 400000; i++ {
		rank := z.Rank(r)
		distinct[rank] = struct{}{}
		h.Add(fmt.Sprintf("dom-%d.example.sy", rank))
	}
	n := float64(len(distinct))
	if relErr := math.Abs(float64(h.Estimate())-n) / n; relErr > bound {
		t.Errorf("Zipf stream: relative error %.4f exceeds 3-sigma bound %.4f (true %d, est %d)",
			relErr, bound, len(distinct), h.Estimate())
	}
}

// The Space-Saving sketch must recover the true heavy hitters of a Zipf
// stream: with capacity well above k, the sketch's top-k and the exact
// top-k overlap almost completely. The 0.9 threshold is fixed (seeded
// stream, deterministic sketch), not tuned per run: capacity 1024 puts
// the Space-Saving noise floor (N/capacity ~ 293) well below the rank-50
// count (~600).
func TestTopKZipfOverlap(t *testing.T) {
	z, err := NewZipf(10000, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRand(7)
	exact := NewCounter()
	tk := NewTopK(1024)
	for i := 0; i < 300000; i++ {
		key := fmt.Sprintf("key-%d", z.Rank(r))
		exact.Add(key)
		tk.Add(key)
	}
	const k = 50
	want := map[string]bool{}
	for _, e := range exact.Top(k) {
		want[e.Key] = true
	}
	hits := 0
	for _, e := range tk.Top(k) {
		if want[e.Key] {
			hits++
		}
	}
	if frac := float64(hits) / k; frac < 0.9 {
		t.Errorf("top-%d overlap %.2f, want >= 0.9", k, frac)
	}
	// And tracked estimates never underestimate by more than the recorded
	// error bound permits: est - err <= true <= est.
	tk.EachEntry(func(key string, count, errBound uint64) {
		truth := exact.Count(key)
		if truth > count {
			t.Errorf("%s: estimate %d below true count %d", key, count, truth)
		}
		if count-errBound > truth {
			t.Errorf("%s: estimate %d - err %d exceeds true count %d", key, count, errBound, truth)
		}
	})
}

func TestHLLRestoreRoundTrip(t *testing.T) {
	h := NewHyperLogLog(10)
	for i := 0; i < 5000; i++ {
		h.Add(fmt.Sprintf("key-%d", i))
	}
	got, err := RestoreHyperLogLog(h.Precision(), h.Registers())
	if err != nil {
		t.Fatal(err)
	}
	if got.Estimate() != h.Estimate() {
		t.Errorf("restored estimate %d != original %d", got.Estimate(), h.Estimate())
	}
	if _, err := RestoreHyperLogLog(3, nil); err == nil {
		t.Error("precision 3 should fail")
	}
	if _, err := RestoreHyperLogLog(10, make([]uint8, 7)); err == nil {
		t.Error("short register array should fail")
	}
}

func TestTopKSetEntryRoundTrip(t *testing.T) {
	src := NewTopK(32)
	for i := 0; i < 100; i++ {
		src.AddN(fmt.Sprintf("key-%d", i%40), uint64(i+1))
	}
	dst := NewTopK(src.Capacity())
	src.EachEntry(func(key string, count, errBound uint64) {
		if !dst.SetEntry(key, count, errBound) {
			t.Fatalf("SetEntry(%q) refused within capacity", key)
		}
	})
	if dst.Len() != src.Len() {
		t.Fatalf("restored %d entries, want %d", dst.Len(), src.Len())
	}
	src.EachEntry(func(key string, count, errBound uint64) {
		c, e, ok := dst.Estimate(key)
		if !ok || c != count || e != errBound {
			t.Errorf("%s: restored (%d,%d,%v), want (%d,%d,true)", key, c, e, ok, count, errBound)
		}
	})
	// Over-capacity insert is refused, overwrite of an existing key is not.
	full := NewTopK(1)
	full.SetEntry("a", 1, 0)
	if full.SetEntry("b", 1, 0) {
		t.Error("SetEntry beyond capacity should report false")
	}
	if !full.SetEntry("a", 9, 2) {
		t.Error("SetEntry overwrite of tracked key should succeed")
	}
}
