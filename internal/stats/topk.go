package stats

import "sort"

// Counter is an exact string-keyed frequency counter. It is the reference
// implementation used when memory is not a concern (our corpora are scaled
// down from the paper's 751M requests) and the baseline against which the
// Space-Saving sketch is validated and benchmarked.
type Counter struct {
	m map[string]uint64
	n uint64
}

// NewCounter returns an empty counter.
func NewCounter() *Counter { return &Counter{m: make(map[string]uint64)} }

// Add increments key by one.
func (c *Counter) Add(key string) { c.AddN(key, 1) }

// AddN increments key by n.
func (c *Counter) AddN(key string, n uint64) {
	c.m[key] += n
	c.n += n
}

// Count returns the exact count for key.
func (c *Counter) Count(key string) uint64 { return c.m[key] }

// Total returns the sum of all counts.
func (c *Counter) Total() uint64 { return c.n }

// Len returns the number of distinct keys.
func (c *Counter) Len() int { return len(c.m) }

// Merge folds other into c.
func (c *Counter) Merge(other *Counter) {
	for k, v := range other.m {
		c.m[k] += v
	}
	c.n += other.n
}

// Each calls fn for every (key, count) pair in unspecified order.
func (c *Counter) Each(fn func(key string, count uint64)) {
	for k, v := range c.m {
		fn(k, v)
	}
}

// Entry is a (key, count) pair returned by Top.
type Entry struct {
	Key   string
	Count uint64
}

// Top returns the k most frequent keys in descending count order, ties
// broken lexicographically so output is deterministic.
func (c *Counter) Top(k int) []Entry {
	all := make([]Entry, 0, len(c.m))
	for key, n := range c.m {
		all = append(all, Entry{key, n})
	}
	SortEntries(all)
	if k > 0 && k < len(all) {
		all = all[:k]
	}
	return all
}

// SortEntries sorts entries by descending count, then ascending key.
func SortEntries(entries []Entry) {
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].Count != entries[j].Count {
			return entries[i].Count > entries[j].Count
		}
		return entries[i].Key < entries[j].Key
	})
}

// TopK is the Space-Saving heavy-hitters sketch (Metwally, Agrawal, El
// Abbadi 2005). It tracks at most capacity keys with bounded overestimation
// error: for any key, estimate-true <= minCount at eviction time, and every
// key with true frequency > N/capacity is guaranteed present.
//
// It exists because the real dataset (751M rows) would make exact per-URL
// counting memory-prohibitive; the paper's top-10 tables are exactly the
// heavy-hitter regime the sketch serves. BenchmarkAblationTopK compares it
// with the exact Counter.
type TopK struct {
	capacity int
	counts   map[string]*tkNode
	// Doubly linked list of nodes ordered by ascending count would be the
	// textbook stream-summary structure; a min-scan over a bounded map is
	// simpler and fast enough at the capacities we use (<= 4096).
	min *tkNode
}

type tkNode struct {
	key   string
	count uint64
	err   uint64 // overestimation bound recorded at takeover time
}

// NewTopK returns a Space-Saving sketch tracking at most capacity keys.
func NewTopK(capacity int) *TopK {
	if capacity <= 0 {
		panic("stats: TopK capacity must be positive")
	}
	return &TopK{capacity: capacity, counts: make(map[string]*tkNode, capacity)}
}

// Add offers one occurrence of key to the sketch.
func (t *TopK) Add(key string) { t.AddN(key, 1) }

// AddN offers n occurrences of key to the sketch.
func (t *TopK) AddN(key string, n uint64) {
	if node, ok := t.counts[key]; ok {
		node.count += n
		if node == t.min {
			t.min = nil // stale; recompute lazily
		}
		return
	}
	if len(t.counts) < t.capacity {
		t.counts[key] = &tkNode{key: key, count: n}
		t.min = nil
		return
	}
	// Evict the current minimum and take over its count (+n), recording the
	// inherited count as the error bound for the new key.
	victim := t.minNode()
	delete(t.counts, victim.key)
	t.counts[key] = &tkNode{key: key, count: victim.count + n, err: victim.count}
	t.min = nil
}

func (t *TopK) minNode() *tkNode {
	if t.min != nil {
		return t.min
	}
	var m *tkNode
	for _, node := range t.counts {
		if m == nil || node.count < m.count || (node.count == m.count && node.key < m.key) {
			m = node
		}
	}
	t.min = m
	return m
}

// Estimate returns the estimated count and the overestimation bound for key,
// with ok reporting whether the key is currently tracked.
func (t *TopK) Estimate(key string) (count, errBound uint64, ok bool) {
	node, ok := t.counts[key]
	if !ok {
		return 0, 0, false
	}
	return node.count, node.err, true
}

// Top returns the k highest-count tracked keys (estimates), deterministic
// order as in Counter.Top.
func (t *TopK) Top(k int) []Entry {
	all := make([]Entry, 0, len(t.counts))
	for key, node := range t.counts {
		all = append(all, Entry{key, node.count})
	}
	SortEntries(all)
	if k > 0 && k < len(all) {
		all = all[:k]
	}
	return all
}

// Len returns the number of tracked keys.
func (t *TopK) Len() int { return len(t.counts) }

// Capacity returns the maximum number of tracked keys.
func (t *TopK) Capacity() int { return t.capacity }

// EachEntry calls fn for every tracked key with its estimate and
// overestimation bound, in unspecified order. For serialization and
// error-bound reporting.
func (t *TopK) EachEntry(fn func(key string, count, errBound uint64)) {
	for key, node := range t.counts {
		fn(key, node.count, node.err)
	}
}

// SetEntry installs a tracked key with an explicit estimate and error
// bound, for state restore. It overwrites an existing entry for key and
// reports false (installing nothing) when a new key would exceed the
// sketch's capacity.
func (t *TopK) SetEntry(key string, count, errBound uint64) bool {
	if node, ok := t.counts[key]; ok {
		node.count, node.err = count, errBound
		t.min = nil
		return true
	}
	if len(t.counts) >= t.capacity {
		return false
	}
	t.counts[key] = &tkNode{key: key, count: count, err: errBound}
	t.min = nil
	return true
}

// Merge folds other into t using the mergeable-summaries union (Agarwal et
// al. 2012): a key absent from a full sketch is assiged that sketch's
// minimum count as a conservative upper bound (true count <= min by the
// Space-Saving invariant), estimates add, and the union is truncated back
// to capacity by estimate. Estimates therefore never underestimate.
func (t *TopK) Merge(other *TopK) {
	minOf := func(s *TopK) uint64 {
		if len(s.counts) < s.capacity {
			return 0 // untracked keys truly have count 0
		}
		return s.minNode().count
	}
	minT, minO := minOf(t), minOf(other)

	union := make(map[string]*tkNode, len(t.counts)+len(other.counts))
	for key, node := range t.counts {
		union[key] = &tkNode{key: key, count: node.count, err: node.err}
	}
	for key, node := range other.counts {
		if u, ok := union[key]; ok {
			u.count += node.count
			u.err += node.err
		} else {
			union[key] = &tkNode{key: key, count: node.count + minT, err: node.err + minT}
		}
	}
	for key := range t.counts {
		if _, ok := other.counts[key]; !ok {
			union[key].count += minO
			union[key].err += minO
		}
	}

	all := make([]*tkNode, 0, len(union))
	for _, node := range union {
		all = append(all, node)
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].count != all[j].count {
			return all[i].count > all[j].count
		}
		return all[i].key < all[j].key
	})
	if len(all) > t.capacity {
		all = all[:t.capacity]
	}
	t.counts = make(map[string]*tkNode, len(all))
	for _, node := range all {
		t.counts[node.key] = node
	}
	t.min = nil
}
