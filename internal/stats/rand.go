// Package stats provides the streaming statistics, sampling, and sketching
// primitives used throughout the analysis toolkit: deterministic PRNG,
// Space-Saving top-k, histograms/CDFs, cosine similarity, Zipf sampling,
// power-law fitting, proportion confidence intervals, HyperLogLog
// cardinality estimation, and Welford online moments.
//
// Everything here is allocation-conscious and safe to use from the scan
// pipeline's per-worker accumulators. Nothing reads the wall clock; all
// randomness flows from an explicit seed so experiments are reproducible.
package stats

import "math"

// Rand is a small, fast, deterministic PRNG (splitmix64). It is NOT
// cryptographically secure; it exists so that the traffic generator and the
// samplers produce identical corpora for identical seeds on every platform.
//
// The zero value is a valid generator seeded with 0.
type Rand struct {
	state uint64
}

// NewRand returns a generator seeded with seed.
func NewRand(seed uint64) *Rand { return &Rand{state: seed} }

// Seed resets the generator state.
func (r *Rand) Seed(seed uint64) { r.state = seed }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint32 returns the next 32 uniformly distributed bits.
func (r *Rand) Uint32() uint32 { return uint32(r.Uint64() >> 32) }

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with non-positive n")
	}
	// Lemire's multiply-shift rejection method over 64 bits.
	v := r.Uint64()
	hi, lo := mul64(v, uint64(n))
	if lo < uint64(n) {
		thresh := (-uint64(n)) % uint64(n)
		for lo < thresh {
			v = r.Uint64()
			hi, lo = mul64(v, uint64(n))
		}
	}
	return int(hi)
}

// Int63 returns a uniform non-negative int64.
func (r *Rand) Int63() int64 { return int64(r.Uint64() >> 1) }

// Float64 returns a uniform float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// ExpFloat64 returns an exponentially distributed float64 with rate 1.
func (r *Rand) ExpFloat64() float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -math.Log(u)
}

// NormFloat64 returns a standard normal variate (Box-Muller, one branch).
func (r *Rand) NormFloat64() float64 {
	// Marsaglia polar method without caching the spare value; simple and
	// deterministic, which matters more here than raw speed.
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle pseudo-randomizes the order of n elements using swap.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool { return r.Float64() < p }

// Fork derives an independent generator whose stream does not overlap with
// the parent's for any practical sequence length. Used to hand sub-streams
// to concurrent workers deterministically.
func (r *Rand) Fork() *Rand {
	return NewRand(r.Uint64() ^ 0xd1342543de82ef95)
}

// mul64 returns the 128-bit product of x and y as (hi, lo).
func mul64(x, y uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	x0, x1 := x&mask32, x>>32
	y0, y1 := y&mask32, y>>32
	w0 := x0 * y0
	t := x1*y0 + w0>>32
	w1 := t & mask32
	w2 := t >> 32
	w1 += x0 * y1
	hi = x1*y1 + w2 + w1>>32
	lo = x * y
	return
}

// WeightedChoice selects an index from cumulative weights cum (ascending,
// cum[len-1] is the total). Returns len(cum)-1 on boundary rounding.
func (r *Rand) WeightedChoice(cum []float64) int {
	if len(cum) == 0 {
		panic("stats: WeightedChoice with empty cumulative weights")
	}
	x := r.Float64() * cum[len(cum)-1]
	lo, hi := 0, len(cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if cum[mid] <= x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Cumulate builds a cumulative weight table from weights, for use with
// WeightedChoice. Negative weights are treated as zero.
func Cumulate(weights []float64) []float64 {
	cum := make([]float64, len(weights))
	total := 0.0
	for i, w := range weights {
		if w > 0 {
			total += w
		}
		cum[i] = total
	}
	return cum
}
