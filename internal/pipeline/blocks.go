package pipeline

import (
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"syriafilter/internal/logfmt"
)

// This file is the block ingestion layer. The Scanner layer (Run,
// RunScanners) parses every line on the scanner goroutine, so a single
// large file decodes on one core no matter how many workers exist. Here
// the unit of work shipped to the pool is a raw line-aligned byte block
// (logfmt.Block): reader goroutines only snap blocks to line boundaries,
// and the workers split, parse and fold — so the parse itself spreads
// across every core. Malformed-line counting, strict-mode line numbers
// and gzip transparency match the Scanner layer; see DESIGN.md §4 for
// when to prefer which.

// BlockStats aggregates parse counters across every source and worker of
// a block run.
type BlockStats struct {
	// Lines is the number of physical lines consumed, including comments,
	// blanks and malformed lines.
	Lines uint64
	// Records is the number of well-formed records folded.
	Records uint64
	// Malformed is the number of skipped malformed lines.
	Malformed uint64
	// Bytes is the number of raw log bytes consumed (post-decompression
	// for gzip sources), which is what throughput reporting divides by.
	Bytes uint64
}

// BlockObs is an optional per-block observation hook for the block
// ingestion layer. After each block parses, OnBlock receives that one
// block's counters and its wall-clock parse duration in seconds — the
// raw feed for live ingest metrics (records/s, byte rates, parse-stage
// latency). Calls arrive from whichever goroutine parsed the block, so
// OnBlock must be safe for concurrent use; a nil *BlockObs disables the
// hook, and the only per-block cost of the disabled path is a nil check.
type BlockObs struct {
	OnBlock func(blk BlockStats, seconds float64)
	// OnRead, when non-nil, is called after each block *read* (the
	// upstream half of the pipeline: file/socket I/O plus line
	// snapping, before any parsing) with the block's size and the
	// read's wall-clock duration. Reads happen on the per-source reader
	// goroutines, so OnRead must be safe for concurrent use. Together
	// with OnBlock this splits ingest latency into its two stages —
	// "waiting on bytes" vs "parsing bytes" — which is exactly the
	// attribution a slow-ingest trace needs.
	OnRead func(bytes int, seconds float64)
}

func (o *BlockObs) observe(blk BlockStats, seconds float64) {
	if o == nil || o.OnBlock == nil {
		return
	}
	o.OnBlock(blk, seconds)
}

// next reads one block from src, reporting the read to OnRead.
func (o *BlockObs) next(src *BlockSource) (logfmt.Block, bool) {
	if o == nil || o.OnRead == nil {
		return src.R.Next()
	}
	t0 := time.Now()
	blk, ok := src.R.Next()
	if ok {
		o.OnRead(len(blk.Data), time.Since(t0).Seconds())
	}
	return blk, ok
}

// BlockSource is one block stream plus its error-attribution context.
type BlockSource struct {
	// R yields the line-aligned blocks.
	R *logfmt.BlockReader
	// Path labels errors from this source ("" leaves them unwrapped).
	Path string
	// Strict aborts the run at this source's first malformed line, with
	// the same "line N" numbering the Scanner layer reports.
	Strict bool
}

// blockItem routes one block to the pool with its source index.
type blockItem struct {
	src int
	blk logfmt.Block
}

// RunBlocks drains a single block stream with n parse workers. Each
// worker owns an accumulator from newAcc, parses whole blocks
// (one block-sized string conversion, every record's fields aliasing it)
// and folds records with observe; merge folds worker accumulators into
// the first one, which is returned. n <= 0 uses GOMAXPROCS.
//
// The Record passed to observe is reused between lines: observe must copy
// the struct if it keeps it (retaining field strings is fine). Results
// are deterministic for commutative accumulators, exactly like
// RunScanners — block boundaries and worker count never change what is
// observed, only the order.
func RunBlocks[A any](br *logfmt.BlockReader, n int, newAcc func() A, observe func(A, *logfmt.Record), merge func(dst, src A)) (A, BlockStats, error) {
	return RunBlockSources([]*BlockSource{{R: br}}, n, newAcc, observe, merge)
}

// RunBlockSources reads every source concurrently — one reader goroutine
// per source, all feeding the same n-worker parse pool — and merges the
// per-worker accumulators. The returned error is the first failing
// source's, in srcs order; within one source, the earliest failing line
// wins, so strict-mode errors match a serial scan of that source.
func RunBlockSources[A any](srcs []*BlockSource, n int, newAcc func() A, observe func(A, *logfmt.Record), merge func(dst, src A)) (A, BlockStats, error) {
	return RunBlockSourcesObs(srcs, n, nil, newAcc, observe, merge)
}

// RunBlockSourcesObs is RunBlockSources with a per-block observation
// hook; see BlockObs. A nil obs behaves exactly like RunBlockSources.
func RunBlockSourcesObs[A any](srcs []*BlockSource, n int, obs *BlockObs, newAcc func() A, observe func(A, *logfmt.Record), merge func(dst, src A)) (A, BlockStats, error) {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if len(srcs) == 0 {
		return newAcc(), BlockStats{}, nil
	}
	if n == 1 && len(srcs) == 1 {
		// Serial fast path, mirroring Run's: one source and one worker
		// need no goroutines or channels at all.
		src := srcs[0]
		acc := newAcc()
		var stats BlockStats
		for {
			blk, ok := obs.next(src)
			if !ok {
				break
			}
			var t0 time.Time
			if obs != nil {
				t0 = time.Now()
			}
			res, err := logfmt.ParseBlock(blk, src.Strict, func(rec *logfmt.Record) {
				observe(acc, rec)
			})
			one := BlockStats{
				Lines:     uint64(res.Lines),
				Records:   uint64(res.Records),
				Malformed: uint64(res.Malformed),
				Bytes:     uint64(len(blk.Data)),
			}
			blk.Release()
			if obs != nil {
				obs.observe(one, time.Since(t0).Seconds())
			}
			stats.Bytes += one.Bytes
			stats.Lines += one.Lines
			stats.Records += one.Records
			stats.Malformed += one.Malformed
			if err != nil {
				return acc, stats, wrapPath(src.Path, err)
			}
		}
		return acc, stats, wrapPath(src.Path, src.R.Err())
	}

	// Blocks are large; a small channel keeps memory bounded while the
	// pool stays busy.
	items := make(chan blockItem, n)
	var stop atomic.Bool

	readErrs := make([]error, len(srcs))
	var readWG sync.WaitGroup
	for i, src := range srcs {
		readWG.Add(1)
		go func(i int, src *BlockSource) {
			defer readWG.Done()
			for !stop.Load() {
				blk, ok := obs.next(src)
				if !ok {
					break
				}
				items <- blockItem{src: i, blk: blk}
			}
			readErrs[i] = wrapPath(src.Path, src.R.Err())
		}(i, src)
	}

	// Strict-mode first-error tracking: workers may hit malformed lines
	// out of order, but blocks are dispatched in order per source, so the
	// error in the lowest-FirstLine block of a source is that source's
	// first bad line. Workers keep parsing already-dispatched blocks
	// after stop is set — only the readers quit early — which guarantees
	// every block preceding a reported error has been examined.
	type parseFail struct {
		firstLine int
		err       error
	}
	fails := make([]parseFail, len(srcs))
	var failMu sync.Mutex
	var lines, records, malformed, nbytes atomic.Uint64

	ws := &workerSet[A]{accs: make([]A, n)}
	for w := 0; w < n; w++ {
		ws.wg.Add(1)
		go func(w int) {
			defer ws.wg.Done()
			acc := newAcc()
			for it := range items {
				src := srcs[it.src]
				var t0 time.Time
				if obs != nil {
					t0 = time.Now()
				}
				res, err := logfmt.ParseBlock(it.blk, src.Strict, func(rec *logfmt.Record) {
					observe(acc, rec)
				})
				firstLine := it.blk.FirstLine
				one := BlockStats{
					Lines:     uint64(res.Lines),
					Records:   uint64(res.Records),
					Malformed: uint64(res.Malformed),
					Bytes:     uint64(len(it.blk.Data)),
				}
				it.blk.Release()
				if obs != nil {
					obs.observe(one, time.Since(t0).Seconds())
				}
				nbytes.Add(one.Bytes)
				lines.Add(one.Lines)
				records.Add(one.Records)
				malformed.Add(one.Malformed)
				if err != nil {
					failMu.Lock()
					if fails[it.src].err == nil || firstLine < fails[it.src].firstLine {
						fails[it.src] = parseFail{firstLine, wrapPath(src.Path, err)}
					}
					failMu.Unlock()
					stop.Store(true)
				}
			}
			ws.accs[w] = acc
		}(w)
	}

	readWG.Wait()
	close(items)
	out := drainWorkers(ws, merge)
	stats := BlockStats{
		Lines:     lines.Load(),
		Records:   records.Load(),
		Malformed: malformed.Load(),
		Bytes:     nbytes.Load(),
	}
	for i := range srcs {
		if fails[i].err != nil {
			return out, stats, fails[i].err
		}
		if readErrs[i] != nil {
			return out, stats, readErrs[i]
		}
	}
	return out, stats, nil
}

// RunFilesBlocks opens each path (gzip-transparent, like OpenScanner) and
// runs RunBlockSources with one block reader per file. This is the fast
// bulk-scan entry point: both the per-file reads and all parsing run
// concurrently.
func RunFilesBlocks[A any](paths []string, n int, newAcc func() A, observe func(A, *logfmt.Record), merge func(dst, src A)) (A, BlockStats, error) {
	srcs, closer, err := OpenBlockFiles(paths)
	if err != nil {
		var zero A
		return zero, BlockStats{}, err
	}
	defer closer.Close()
	return RunBlockSources(srcs, n, newAcc, observe, merge)
}

// OpenBlockFile opens one log file as a block source, transparently
// decompressing gzip content under the same rules as OpenScanner. Close
// the returned Closer when done.
func OpenBlockFile(path string) (*BlockSource, io.Closer, error) {
	r, closer, err := OpenReader(path)
	if err != nil {
		return nil, nil, err
	}
	return &BlockSource{R: logfmt.NewBlockReader(r), Path: path}, closer, nil
}

// OpenBlockFiles opens every path with OpenBlockFile. On any error it
// closes what it already opened and returns the error.
func OpenBlockFiles(paths []string) ([]*BlockSource, io.Closer, error) {
	srcs := make([]*BlockSource, 0, len(paths))
	closers := make(multiCloser, 0, len(paths))
	for _, path := range paths {
		src, closer, err := OpenBlockFile(path)
		if err != nil {
			closers.Close()
			return nil, nil, err
		}
		srcs = append(srcs, src)
		closers = append(closers, closer)
	}
	return srcs, closers, nil
}
