// Package pipeline runs record analyses concurrently: one or more sources
// of log records are fanned out to worker goroutines, each folding into
// its own accumulator, and the per-worker accumulators are merged at the
// end. Every accumulator in internal/stats and the core Engine/Analyzer
// support Merge, so any analysis composes with this scheme.
//
// Three ingestion layers are provided. Run drains a single Scanner from
// the calling goroutine. RunScanners adds per-file fan-out: one scanner
// goroutine per source feeds the shared worker pool, so a multi-file
// corpus is decoded in parallel instead of serially through a
// MultiScanner. Both recycle batch buffers through a sync.Pool, keeping
// steady-state allocation per batch near zero. RunBlocks/RunFilesBlocks
// (blocks.go) go further and move the line splitting and parsing itself
// onto the worker pool: sources ship raw line-aligned byte blocks, so
// even a single large file parses on every core.
//
// The design follows the same reasoning as gopacket's FastHash fan-out:
// batches keep channel overhead amortized, and per-worker state avoids
// locks entirely.
package pipeline

import (
	"errors"
	"runtime"
	"sync"

	"syriafilter/internal/logfmt"
)

// Scanner yields records. logfmt.Reader satisfies it; SliceScanner and
// MultiScanner adapt in-memory corpora and file sets.
type Scanner interface {
	// Next returns the next record, or ok=false at the end of the stream.
	// The returned pointer may be reused between calls.
	Next() (*logfmt.Record, bool)
	// Err returns the terminal error, nil on clean EOF.
	Err() error
}

// BatchSize is the number of records per work unit.
const BatchSize = 1024

// batchPool recycles batch buffers between scanners and workers, so a
// steady-state run allocates no new batch arrays after warm-up.
var batchPool = sync.Pool{
	New: func() any {
		b := make([]logfmt.Record, 0, BatchSize)
		return &b
	},
}

func getBatch() *[]logfmt.Record {
	b := batchPool.Get().(*[]logfmt.Record)
	*b = (*b)[:0]
	return b
}

// Run scans src with n workers. Each worker owns an accumulator from
// newAcc and folds records with observe; merge folds worker accumulators
// into the first one, which is returned. n <= 0 uses GOMAXPROCS.
//
// Records handed to observe are private copies, but their backing batch
// is recycled: they are only valid for the duration of the observe call.
// Accumulators that outlive the call must copy what they keep (retaining
// field strings is fine — strings are immutable).
func Run[A any](src Scanner, n int, newAcc func() A, observe func(A, *logfmt.Record), merge func(dst, src A)) (A, error) {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n == 1 {
		acc := newAcc()
		for {
			rec, ok := src.Next()
			if !ok {
				break
			}
			observe(acc, rec)
		}
		return acc, src.Err()
	}

	batches := make(chan *[]logfmt.Record, n*2)
	accs := startWorkers(batches, n, newAcc, observe)

	batch := getBatch()
	for {
		rec, ok := src.Next()
		if !ok {
			break
		}
		*batch = append(*batch, *rec)
		if len(*batch) == BatchSize {
			batches <- batch
			batch = getBatch()
		}
	}
	if len(*batch) > 0 {
		batches <- batch
	} else {
		batchPool.Put(batch)
	}
	close(batches)

	return drainWorkers(accs, merge), src.Err()
}

// RunScanners scans every source concurrently — one scanner goroutine per
// source, all feeding the same n-worker pool — and merges the per-worker
// accumulators. This is the multi-file ingestion layer: for a corpus
// split across per-proxy log files it decodes the files in parallel,
// instead of serially like NewMultiScanner. n <= 0 uses GOMAXPROCS.
//
// Results are deterministic regardless of n or scanner interleaving for
// commutative accumulators. All of internal/core's are, with one caveat:
// its capped stores (Options.MaxStoredCensoredURLs, MaxTokenEntries)
// admit entries in observation order, so determinism holds only while a
// corpus stays under those caps — past them, use Run with a MultiScanner
// and n=1 for a strictly ordered scan. The returned error is the first
// failing scanner's, in srcs order.
func RunScanners[A any](srcs []Scanner, n int, newAcc func() A, observe func(A, *logfmt.Record), merge func(dst, src A)) (A, error) {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if len(srcs) == 1 {
		return Run(srcs[0], n, newAcc, observe, merge)
	}
	if len(srcs) == 0 {
		return newAcc(), nil
	}

	batches := make(chan *[]logfmt.Record, n*2)
	accs := startWorkers(batches, n, newAcc, observe)

	errs := make([]error, len(srcs))
	var scanWG sync.WaitGroup
	for i, src := range srcs {
		scanWG.Add(1)
		go func(i int, src Scanner) {
			defer scanWG.Done()
			batch := getBatch()
			for {
				rec, ok := src.Next()
				if !ok {
					break
				}
				*batch = append(*batch, *rec)
				if len(*batch) == BatchSize {
					batches <- batch
					batch = getBatch()
				}
			}
			if len(*batch) > 0 {
				batches <- batch
			} else {
				batchPool.Put(batch)
			}
			errs[i] = src.Err()
		}(i, src)
	}
	scanWG.Wait()
	close(batches)

	out := drainWorkers(accs, merge)
	for _, err := range errs {
		if err != nil {
			return out, err
		}
	}
	return out, nil
}

// RunFiles opens each path and runs RunScanners with one scanner per
// file. Gzip-compressed files are decompressed transparently (see
// OpenScanner); a missing, unreadable or malformed-gzip file is an
// error, never a silently dropped source.
func RunFiles[A any](paths []string, n int, newAcc func() A, observe func(A, *logfmt.Record), merge func(dst, src A)) (A, error) {
	srcs, closer, err := OpenFiles(paths)
	if err != nil {
		var zero A
		return zero, err
	}
	defer closer.Close()
	return RunScanners(srcs, n, newAcc, observe, merge)
}

// startWorkers launches n workers consuming batches; each returns its
// accumulator through the result slice filled when the channel closes.
func startWorkers[A any](batches <-chan *[]logfmt.Record, n int, newAcc func() A, observe func(A, *logfmt.Record)) *workerSet[A] {
	ws := &workerSet[A]{accs: make([]A, n)}
	for i := 0; i < n; i++ {
		ws.wg.Add(1)
		go func(i int) {
			defer ws.wg.Done()
			acc := newAcc()
			for batch := range batches {
				recs := *batch
				for j := range recs {
					observe(acc, &recs[j])
				}
				batchPool.Put(batch)
			}
			ws.accs[i] = acc
		}(i)
	}
	return ws
}

type workerSet[A any] struct {
	wg   sync.WaitGroup
	accs []A
}

// drainWorkers waits for the workers and folds their accumulators into
// the first one, in worker order.
func drainWorkers[A any](ws *workerSet[A], merge func(dst, src A)) A {
	ws.wg.Wait()
	out := ws.accs[0]
	for i := 1; i < len(ws.accs); i++ {
		merge(out, ws.accs[i])
	}
	return out
}

// SliceScanner adapts an in-memory record slice.
type SliceScanner struct {
	recs []logfmt.Record
	i    int
}

// NewSliceScanner wraps recs (not copied).
func NewSliceScanner(recs []logfmt.Record) *SliceScanner {
	return &SliceScanner{recs: recs}
}

// Next implements Scanner.
func (s *SliceScanner) Next() (*logfmt.Record, bool) {
	if s.i >= len(s.recs) {
		return nil, false
	}
	r := &s.recs[s.i]
	s.i++
	return r, true
}

// Err implements Scanner.
func (s *SliceScanner) Err() error { return nil }

// Reset rewinds the scanner for another pass.
func (s *SliceScanner) Reset() { s.i = 0 }

// FuncScanner adapts a generator function to a Scanner.
type FuncScanner struct {
	fn  func() (*logfmt.Record, bool)
	err error
}

// NewFuncScanner wraps fn.
func NewFuncScanner(fn func() (*logfmt.Record, bool)) *FuncScanner {
	return &FuncScanner{fn: fn}
}

// Next implements Scanner.
func (s *FuncScanner) Next() (*logfmt.Record, bool) { return s.fn() }

// Err implements Scanner.
func (s *FuncScanner) Err() error { return s.err }

// MultiScanner chains several scanners serially, e.g. one logfmt.Reader
// per proxy log file. Prefer RunScanners for parallel multi-file
// ingestion; MultiScanner remains for strict-order single-goroutine
// scans.
type MultiScanner struct {
	scanners []Scanner
	i        int
	err      error
}

// NewMultiScanner chains scanners in order.
func NewMultiScanner(scanners ...Scanner) *MultiScanner {
	return &MultiScanner{scanners: scanners}
}

// Next implements Scanner.
func (m *MultiScanner) Next() (*logfmt.Record, bool) {
	for m.i < len(m.scanners) {
		rec, ok := m.scanners[m.i].Next()
		if ok {
			return rec, true
		}
		if err := m.scanners[m.i].Err(); err != nil {
			m.err = err
			return nil, false
		}
		m.i++
	}
	return nil, false
}

// Err implements Scanner.
func (m *MultiScanner) Err() error { return m.err }

// ErrStopped is returned by sources cancelled mid-scan.
var ErrStopped = errors.New("pipeline: stopped")
