// Package pipeline runs record analyses concurrently: a source of log
// records is fanned out to worker goroutines, each folding into its own
// accumulator, and the per-worker accumulators are merged at the end.
// Every accumulator in internal/stats and the core Analyzer support Merge,
// so any analysis composes with this scheme.
//
// The design follows the same reasoning as gopacket's FastHash fan-out:
// batches keep channel overhead amortized, and per-worker state avoids
// locks entirely.
package pipeline

import (
	"errors"
	"runtime"
	"sync"

	"syriafilter/internal/logfmt"
)

// Scanner yields records. logfmt.Reader satisfies it; SliceScanner and
// MultiReader adapt in-memory corpora and file sets.
type Scanner interface {
	// Next returns the next record, or ok=false at the end of the stream.
	// The returned pointer may be reused between calls.
	Next() (*logfmt.Record, bool)
	// Err returns the terminal error, nil on clean EOF.
	Err() error
}

// BatchSize is the number of records per work unit.
const BatchSize = 1024

// Run scans src with n workers. Each worker owns an accumulator from
// newAcc and folds records with observe; merge folds worker accumulators
// into the first one, which is returned. n <= 0 uses GOMAXPROCS.
//
// Records handed to observe are private copies: they remain valid after
// observe returns, but sharing them across batches is the caller's
// business.
func Run[A any](src Scanner, n int, newAcc func() A, observe func(A, *logfmt.Record), merge func(dst, src A)) (A, error) {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n == 1 {
		acc := newAcc()
		for {
			rec, ok := src.Next()
			if !ok {
				break
			}
			observe(acc, rec)
		}
		return acc, src.Err()
	}

	batches := make(chan []logfmt.Record, n*2)
	accs := make([]A, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			acc := newAcc()
			for batch := range batches {
				for j := range batch {
					observe(acc, &batch[j])
				}
			}
			accs[i] = acc
		}(i)
	}

	batch := make([]logfmt.Record, 0, BatchSize)
	for {
		rec, ok := src.Next()
		if !ok {
			break
		}
		batch = append(batch, *rec)
		if len(batch) == BatchSize {
			batches <- batch
			batch = make([]logfmt.Record, 0, BatchSize)
		}
	}
	if len(batch) > 0 {
		batches <- batch
	}
	close(batches)
	wg.Wait()

	out := accs[0]
	for i := 1; i < n; i++ {
		merge(out, accs[i])
	}
	return out, src.Err()
}

// SliceScanner adapts an in-memory record slice.
type SliceScanner struct {
	recs []logfmt.Record
	i    int
}

// NewSliceScanner wraps recs (not copied).
func NewSliceScanner(recs []logfmt.Record) *SliceScanner {
	return &SliceScanner{recs: recs}
}

// Next implements Scanner.
func (s *SliceScanner) Next() (*logfmt.Record, bool) {
	if s.i >= len(s.recs) {
		return nil, false
	}
	r := &s.recs[s.i]
	s.i++
	return r, true
}

// Err implements Scanner.
func (s *SliceScanner) Err() error { return nil }

// Reset rewinds the scanner for another pass.
func (s *SliceScanner) Reset() { s.i = 0 }

// FuncScanner adapts a generator function to a Scanner.
type FuncScanner struct {
	fn  func() (*logfmt.Record, bool)
	err error
}

// NewFuncScanner wraps fn.
func NewFuncScanner(fn func() (*logfmt.Record, bool)) *FuncScanner {
	return &FuncScanner{fn: fn}
}

// Next implements Scanner.
func (s *FuncScanner) Next() (*logfmt.Record, bool) { return s.fn() }

// Err implements Scanner.
func (s *FuncScanner) Err() error { return s.err }

// MultiScanner chains several scanners, e.g. one logfmt.Reader per proxy
// log file.
type MultiScanner struct {
	scanners []Scanner
	i        int
	err      error
}

// NewMultiScanner chains scanners in order.
func NewMultiScanner(scanners ...Scanner) *MultiScanner {
	return &MultiScanner{scanners: scanners}
}

// Next implements Scanner.
func (m *MultiScanner) Next() (*logfmt.Record, bool) {
	for m.i < len(m.scanners) {
		rec, ok := m.scanners[m.i].Next()
		if ok {
			return rec, true
		}
		if err := m.scanners[m.i].Err(); err != nil {
			m.err = err
			return nil, false
		}
		m.i++
	}
	return nil, false
}

// Err implements Scanner.
func (m *MultiScanner) Err() error { return m.err }

// ErrStopped is returned by sources cancelled mid-scan.
var ErrStopped = errors.New("pipeline: stopped")
