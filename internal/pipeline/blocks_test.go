package pipeline

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"syriafilter/internal/logfmt"
)

// blockFilesRun is RunFilesBlocks over the countAcc fixture.
func blockFilesRun(t *testing.T, paths []string, workers int) (*countAcc, BlockStats, error) {
	t.Helper()
	return RunFilesBlocks(paths, workers, newCountAcc, observeCount, mergeCount)
}

// The block layer must agree with the scanner layer on a multi-file
// corpus, for every worker count.
func TestRunFilesBlocksMatchesScannerLayer(t *testing.T) {
	dir := t.TempDir()
	recs := makeRecords(20000)
	var paths []string
	for i := 0; i < 3; i++ {
		path := filepath.Join(dir, "part-"+string(rune('a'+i))+".csv")
		writeLogFile(t, path, recs[i*5000:(i+2)*5000], false)
		paths = append(paths, path)
	}

	want, err := RunFiles(paths, 1, newCountAcc, observeCount, mergeCount)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 8} {
		got, stats, err := blockFilesRun(t, paths, workers)
		if err != nil {
			t.Fatal(err)
		}
		if got.total != want.total || got.censored != want.censored {
			t.Fatalf("workers=%d: totals %d/%d, want %d/%d",
				workers, got.total, got.censored, want.total, want.censored)
		}
		for k, v := range want.hosts {
			if got.hosts[k] != v {
				t.Fatalf("workers=%d: host %s = %d, want %d", workers, k, got.hosts[k], v)
			}
		}
		if stats.Records != want.total {
			t.Fatalf("stats.Records = %d, want %d", stats.Records, want.total)
		}
		if stats.Malformed != 0 {
			t.Fatalf("stats.Malformed = %d on a clean corpus", stats.Malformed)
		}
		// 3 files x (header + 10000 records).
		if wantLines := uint64(3 * 10001); stats.Lines != wantLines {
			t.Fatalf("stats.Lines = %d, want %d", stats.Lines, wantLines)
		}
		var wantBytes uint64
		for _, path := range paths {
			info, err := os.Stat(path)
			if err != nil {
				t.Fatal(err)
			}
			wantBytes += uint64(info.Size())
		}
		if stats.Bytes != wantBytes {
			t.Fatalf("workers=%d: stats.Bytes = %d, want the %d on-disk bytes", workers, stats.Bytes, wantBytes)
		}
	}
}

// Gzip sources report decompressed bytes, which is what MB/s throughput
// numbers should divide by.
func TestBlockStatsBytesGzip(t *testing.T) {
	dir := t.TempDir()
	recs := makeRecords(2000)
	plain := filepath.Join(dir, "plain.csv")
	writeLogFile(t, plain, recs, false)
	gz := filepath.Join(dir, "zipped.csv.gz")
	writeLogFile(t, gz, recs, true)

	_, plainStats, err := blockFilesRun(t, []string{plain}, 2)
	if err != nil {
		t.Fatal(err)
	}
	_, gzStats, err := blockFilesRun(t, []string{gz}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if plainStats.Bytes == 0 || gzStats.Bytes != plainStats.Bytes {
		t.Fatalf("gzip source counted %d bytes, want the %d decompressed bytes", gzStats.Bytes, plainStats.Bytes)
	}
}

// Gzip files (suffixed or magic-sniffed) are transparent to the block
// layer, like OpenScanner.
func TestRunFilesBlocksGzipTransparent(t *testing.T) {
	dir := t.TempDir()
	recs := makeRecords(3000)
	plain := filepath.Join(dir, "plain.csv")
	writeLogFile(t, plain, recs, false)
	gz := filepath.Join(dir, "zipped.csv.gz")
	writeLogFile(t, gz, recs, true)
	renamed := filepath.Join(dir, "renamed.csv") // gzip content, no suffix
	writeLogFile(t, renamed, recs, true)

	for _, path := range []string{plain, gz, renamed} {
		got, stats, err := blockFilesRun(t, []string{path}, 4)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if got.total != uint64(len(recs)) || stats.Records != uint64(len(recs)) {
			t.Fatalf("%s: got %d/%d records, want %d", path, got.total, stats.Records, len(recs))
		}
	}

	// A .gz file with garbage content must fail loudly, not scan empty.
	bad := filepath.Join(dir, "bad.csv.gz")
	if err := os.WriteFile(bad, []byte("not gzip at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := blockFilesRun(t, []string{plain, bad}, 2); err == nil {
		t.Fatal("malformed gzip accepted")
	} else if !strings.Contains(err.Error(), "bad.csv.gz") {
		t.Fatalf("error %q does not name the bad file", err)
	}
}

// Malformed lines are counted and skipped by default, and the damage
// stays proportional (the vandalized lines only).
func TestRunFilesBlocksMalformedCounting(t *testing.T) {
	dir := t.TempDir()
	recs := makeRecords(5000)
	path := filepath.Join(dir, "corpus.csv")
	writeLogFile(t, path, recs, false)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data = append(data, []byte("garbage,line\nanother bad one\n")...)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	got, stats, err := blockFilesRun(t, []string{path}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got.total != uint64(len(recs)) {
		t.Fatalf("total = %d, want %d", got.total, len(recs))
	}
	if stats.Malformed != 2 {
		t.Fatalf("Malformed = %d, want 2", stats.Malformed)
	}
}

// Strict mode reports the first malformed line of the failing source with
// the same path-wrapped, line-numbered error the scanner layer produces —
// regardless of worker count or which worker trips it.
func TestRunBlockSourcesStrictMatchesScannerError(t *testing.T) {
	dir := t.TempDir()
	recs := makeRecords(8000)
	path := filepath.Join(dir, "corpus.csv")
	writeLogFile(t, path, recs, false)
	rows, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(rows), "\n")
	lines[4000] = "broken,record\n"
	lines[6000] = "also,broken\n" // a later error that must not win
	if err := os.WriteFile(path, []byte(strings.Join(lines, "")), 0o644); err != nil {
		t.Fatal(err)
	}

	// Scanner-layer reference error.
	sc, closer, err := OpenScanner(path)
	if err != nil {
		t.Fatal(err)
	}
	sc.(*pathScanner).Scanner.(*logfmt.Reader).SetStrict(true)
	for {
		if _, ok := sc.Next(); !ok {
			break
		}
	}
	want := sc.Err()
	closer.Close()
	if want == nil {
		t.Fatal("scanner accepted corrupt corpus")
	}

	for _, workers := range []int{1, 4} {
		src, closer, err := OpenBlockFile(path)
		if err != nil {
			t.Fatal(err)
		}
		src.Strict = true
		_, _, gotErr := RunBlockSources([]*BlockSource{src}, workers, newCountAcc, observeCount, mergeCount)
		closer.Close()
		if gotErr == nil {
			t.Fatalf("workers=%d: strict run accepted corrupt corpus", workers)
		}
		if gotErr.Error() != want.Error() {
			t.Fatalf("workers=%d:\n got %q\nwant %q", workers, gotErr, want)
		}
		if !errors.Is(gotErr, logfmt.ErrFieldCount) {
			t.Fatalf("workers=%d: error does not unwrap to ErrFieldCount: %v", workers, gotErr)
		}
	}
}

// An empty source list degenerates cleanly.
func TestRunBlockSourcesEmpty(t *testing.T) {
	acc, stats, err := RunBlockSources(nil, 4, newCountAcc, observeCount, mergeCount)
	if err != nil || acc.total != 0 || stats != (BlockStats{}) {
		t.Fatalf("empty run: acc=%+v stats=%+v err=%v", acc, stats, err)
	}
}

// A missing file is an error before any work starts.
func TestRunFilesBlocksMissingFile(t *testing.T) {
	if _, _, err := blockFilesRun(t, []string{"/does/not/exist.csv"}, 2); err == nil {
		t.Fatal("missing file accepted")
	}
}
