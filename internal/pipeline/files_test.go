package pipeline

import (
	"compress/gzip"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"syriafilter/internal/logfmt"
)

// writeLogFile writes recs to path, gzip-compressed when gz is set.
func writeLogFile(t *testing.T, path string, recs []logfmt.Record, gz bool) {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var w *logfmt.Writer
	var zw *gzip.Writer
	if gz {
		zw = gzip.NewWriter(f)
		w = logfmt.NewWriter(zw)
	} else {
		w = logfmt.NewWriter(f)
	}
	if err := w.WriteHeader(); err != nil {
		t.Fatal(err)
	}
	for i := range recs {
		if err := w.Write(&recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if zw != nil {
		if err := zw.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// Gzipped inputs decode transparently and match the plain-file run, for
// both the suffixed and the magic-sniffed (renamed) case.
func TestRunFilesGzipTransparent(t *testing.T) {
	dir := t.TempDir()
	recs := makeRecords(2500)

	plain := filepath.Join(dir, "plain.csv")
	writeLogFile(t, plain, recs, false)
	gzPath := filepath.Join(dir, "compressed.csv.gz")
	writeLogFile(t, gzPath, recs, true)
	// Gzip content without the .gz suffix: detected by magic header.
	renamed := filepath.Join(dir, "renamed.csv")
	writeLogFile(t, renamed, recs, true)

	want, err := RunFiles([]string{plain}, 2, newCountAcc, observeCount, mergeCount)
	if err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{gzPath, renamed} {
		got, err := RunFiles([]string{path}, 2, newCountAcc, observeCount, mergeCount)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if got.total != want.total || got.censored != want.censored || len(got.hosts) != len(want.hosts) {
			t.Errorf("%s: gzip run (%d/%d) differs from plain run (%d/%d)",
				path, got.total, got.censored, want.total, want.censored)
		}
	}

	// Mixed plain+gz multi-file run sums both.
	both, err := RunFiles([]string{plain, gzPath}, 2, newCountAcc, observeCount, mergeCount)
	if err != nil {
		t.Fatal(err)
	}
	if both.total != 2*want.total {
		t.Errorf("mixed run total = %d, want %d", both.total, 2*want.total)
	}
}

// A .gz file that is not gzip is an open error, not a silent empty
// source.
func TestOpenScannerMalformedGzipHeader(t *testing.T) {
	path := filepath.Join(t.TempDir(), "broken.csv.gz")
	if err := os.WriteFile(path, []byte("this is not gzip\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenScanner(path); err == nil {
		t.Fatal("malformed gzip header should fail at open")
	} else if !strings.Contains(err.Error(), "broken.csv.gz") {
		t.Errorf("error should name the file: %v", err)
	}
	if _, err := RunFiles([]string{path}, 2, newCountAcc, observeCount, mergeCount); err == nil {
		t.Error("RunFiles over a malformed gzip should error")
	}
}

// A gzip stream truncated mid-body surfaces as a scan error naming the
// file, instead of silently dropping the tail.
func TestRunFilesTruncatedGzip(t *testing.T) {
	dir := t.TempDir()
	full := filepath.Join(dir, "full.csv.gz")
	writeLogFile(t, full, makeRecords(5000), true)
	data, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}
	trunc := filepath.Join(dir, "trunc.csv.gz")
	if err := os.WriteFile(trunc, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = RunFiles([]string{trunc}, 2, newCountAcc, observeCount, mergeCount)
	if err == nil {
		t.Fatal("truncated gzip should error")
	}
	if !strings.Contains(err.Error(), "trunc.csv.gz") {
		t.Errorf("error should name the file: %v", err)
	}
}

// An unreadable file errors out of OpenFiles and closes what was already
// opened.
func TestOpenFilesUnreadable(t *testing.T) {
	if os.Geteuid() == 0 {
		t.Skip("running as root: permission bits are not enforced")
	}
	dir := t.TempDir()
	ok := filepath.Join(dir, "ok.csv")
	writeLogFile(t, ok, makeRecords(10), false)
	locked := filepath.Join(dir, "locked.csv")
	writeLogFile(t, locked, makeRecords(10), false)
	if err := os.Chmod(locked, 0o000); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenFiles([]string{ok, locked}); err == nil {
		t.Error("unreadable file should error")
	}
}

func TestNewFileMultiScanner(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.csv")
	b := filepath.Join(dir, "b.csv.gz")
	writeLogFile(t, a, makeRecords(100), false)
	writeLogFile(t, b, makeRecords(50), true)
	sc, closer, err := NewFileMultiScanner(a, b)
	if err != nil {
		t.Fatal(err)
	}
	defer closer.Close()
	n := 0
	for {
		_, ok := sc.Next()
		if !ok {
			break
		}
		n++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if n != 150 {
		t.Errorf("scanned %d records, want 150", n)
	}
}
