package pipeline

import (
	"bufio"
	"compress/gzip"
	"fmt"
	"io"
	"os"
	"strings"

	"syriafilter/internal/logfmt"
)

// OpenReader opens path as a byte stream, transparently decompressing
// gzip content: a file is treated as gzip when its name ends in ".gz" or
// its first two bytes carry the gzip magic (real Blue Coat dumps ship
// gzipped, often without the suffix after renaming). A ".gz" file
// without a valid gzip header is an error, not a silent zero-record
// source. Shared by the Scanner layer (OpenScanner) and the block layer
// (OpenBlockFile), and reused by `censorlyzer -load-state`.
func OpenReader(path string) (io.Reader, io.Closer, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	br := bufio.NewReaderSize(f, 64*1024)
	magic, _ := br.Peek(2)
	isGzMagic := len(magic) == 2 && magic[0] == 0x1f && magic[1] == 0x8b
	if strings.HasSuffix(path, ".gz") || isGzMagic {
		zr, err := gzip.NewReader(br)
		if err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("pipeline: %s: %w", path, err)
		}
		return zr, multiCloser{zr, f}, nil
	}
	return br, f, nil
}

// OpenScanner opens one log file as a record Scanner (gzip-transparent,
// see OpenReader). Errors from the returned Scanner are wrapped with the
// path.
//
// Close the returned Closer when done with the Scanner.
func OpenScanner(path string) (Scanner, io.Closer, error) {
	r, closer, err := OpenReader(path)
	if err != nil {
		return nil, nil, err
	}
	return &pathScanner{Scanner: logfmt.NewReader(r), path: path}, closer, nil
}

// pathScanner adds path context to a file scanner's terminal error, so a
// multi-file run reports which source failed.
type pathScanner struct {
	Scanner
	path string
}

func (p *pathScanner) Err() error {
	return wrapPath(p.path, p.Scanner.Err())
}

// wrapPath adds source context to a terminal error; nil errors and
// anonymous sources pass through.
func wrapPath(path string, err error) error {
	if err == nil || path == "" {
		return err
	}
	return fmt.Errorf("pipeline: %s: %w", path, err)
}

type multiCloser []io.Closer

func (m multiCloser) Close() error {
	var first error
	for _, c := range m {
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// OpenFiles opens every path with OpenScanner. On any error it closes
// what it already opened and returns the error.
func OpenFiles(paths []string) ([]Scanner, io.Closer, error) {
	srcs := make([]Scanner, 0, len(paths))
	closers := make(multiCloser, 0, len(paths))
	for _, path := range paths {
		sc, closer, err := OpenScanner(path)
		if err != nil {
			closers.Close()
			return nil, nil, err
		}
		srcs = append(srcs, sc)
		closers = append(closers, closer)
	}
	return srcs, closers, nil
}

// NewFileMultiScanner chains the paths into one strict-order serial
// scanner (gzip-transparent, like OpenScanner). Prefer RunFiles for
// parallel ingestion; this is for single-goroutine ordered scans.
func NewFileMultiScanner(paths ...string) (*MultiScanner, io.Closer, error) {
	srcs, closer, err := OpenFiles(paths)
	if err != nil {
		return nil, nil, err
	}
	return NewMultiScanner(srcs...), closer, nil
}
