package pipeline

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"syriafilter/internal/logfmt"
)

func makeRecords(n int) []logfmt.Record {
	recs := make([]logfmt.Record, n)
	base := time.Date(2011, 8, 1, 0, 0, 0, 0, time.UTC).Unix()
	for i := range recs {
		recs[i] = logfmt.Record{
			Time:   base + int64(i),
			Host:   "host-" + string(rune('a'+i%7)) + ".example",
			Status: 200,
		}
		if i%13 == 0 {
			recs[i].Exception = logfmt.ExPolicyDenied
		}
	}
	return recs
}

type countAcc struct {
	total    uint64
	censored uint64
	hosts    map[string]uint64
}

func newCountAcc() *countAcc { return &countAcc{hosts: map[string]uint64{}} }

func observeCount(a *countAcc, r *logfmt.Record) {
	a.total++
	if r.IsCensored() {
		a.censored++
	}
	a.hosts[r.Host]++
}

func mergeCount(dst, src *countAcc) {
	dst.total += src.total
	dst.censored += src.censored
	for k, v := range src.hosts {
		dst.hosts[k] += v
	}
}

func TestRunSerialEqualsParallel(t *testing.T) {
	recs := makeRecords(10000)
	serial, err := Run(NewSliceScanner(recs), 1, newCountAcc, observeCount, mergeCount)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8} {
		par, err := Run(NewSliceScanner(recs), workers, newCountAcc, observeCount, mergeCount)
		if err != nil {
			t.Fatal(err)
		}
		if par.total != serial.total || par.censored != serial.censored {
			t.Fatalf("workers=%d: totals %d/%d vs %d/%d",
				workers, par.total, par.censored, serial.total, serial.censored)
		}
		if len(par.hosts) != len(serial.hosts) {
			t.Fatalf("workers=%d: host sets differ", workers)
		}
		for k, v := range serial.hosts {
			if par.hosts[k] != v {
				t.Fatalf("workers=%d: host %s = %d, want %d", workers, k, par.hosts[k], v)
			}
		}
	}
}

func TestRunEmptySource(t *testing.T) {
	acc, err := Run(NewSliceScanner(nil), 4, newCountAcc, observeCount, mergeCount)
	if err != nil {
		t.Fatal(err)
	}
	if acc.total != 0 {
		t.Errorf("total = %d", acc.total)
	}
}

func TestRunDefaultWorkers(t *testing.T) {
	recs := makeRecords(100)
	acc, err := Run(NewSliceScanner(recs), 0, newCountAcc, observeCount, mergeCount)
	if err != nil {
		t.Fatal(err)
	}
	if acc.total != 100 {
		t.Errorf("total = %d", acc.total)
	}
}

func TestSliceScannerReset(t *testing.T) {
	recs := makeRecords(5)
	s := NewSliceScanner(recs)
	n := 0
	for {
		if _, ok := s.Next(); !ok {
			break
		}
		n++
	}
	if n != 5 {
		t.Fatalf("first pass = %d", n)
	}
	s.Reset()
	if _, ok := s.Next(); !ok {
		t.Fatal("reset did not rewind")
	}
}

func TestFuncScanner(t *testing.T) {
	i := 0
	recs := makeRecords(3)
	s := NewFuncScanner(func() (*logfmt.Record, bool) {
		if i >= len(recs) {
			return nil, false
		}
		r := &recs[i]
		i++
		return r, true
	})
	n := 0
	for {
		if _, ok := s.Next(); !ok {
			break
		}
		n++
	}
	if n != 3 || s.Err() != nil {
		t.Errorf("n=%d err=%v", n, s.Err())
	}
}

func TestMultiScanner(t *testing.T) {
	a := NewSliceScanner(makeRecords(3))
	b := NewSliceScanner(makeRecords(4))
	m := NewMultiScanner(a, b)
	n := 0
	for {
		if _, ok := m.Next(); !ok {
			break
		}
		n++
	}
	if n != 7 {
		t.Errorf("n = %d", n)
	}
	if m.Err() != nil {
		t.Errorf("err = %v", m.Err())
	}
}

type errScanner struct{ err error }

func (e *errScanner) Next() (*logfmt.Record, bool) { return nil, false }
func (e *errScanner) Err() error                   { return e.err }

func TestMultiScannerPropagatesError(t *testing.T) {
	wantErr := errors.New("boom")
	m := NewMultiScanner(NewSliceScanner(makeRecords(2)), &errScanner{err: wantErr})
	for {
		if _, ok := m.Next(); !ok {
			break
		}
	}
	if !errors.Is(m.Err(), wantErr) {
		t.Errorf("err = %v", m.Err())
	}
}

func TestRunWithReaderSource(t *testing.T) {
	// End-to-end: records written as CSV, read back through logfmt.Reader,
	// folded by the pipeline.
	var sb strings.Builder
	w := logfmt.NewWriter(&sb)
	recs := makeRecords(500)
	for i := range recs {
		if err := w.Write(&recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	w.Flush()
	acc, err := Run(logfmt.NewReader(strings.NewReader(sb.String())), 3, newCountAcc, observeCount, mergeCount)
	if err != nil {
		t.Fatal(err)
	}
	if acc.total != 500 {
		t.Errorf("total = %d", acc.total)
	}
}

func BenchmarkPipelineSerial(b *testing.B) {
	recs := makeRecords(100000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Run(NewSliceScanner(recs), 1, newCountAcc, observeCount, mergeCount); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPipelineParallel(b *testing.B) {
	recs := makeRecords(100000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Run(NewSliceScanner(recs), 0, newCountAcc, observeCount, mergeCount); err != nil {
			b.Fatal(err)
		}
	}
}

func splitRecords(recs []logfmt.Record, parts int) []Scanner {
	srcs := make([]Scanner, 0, parts)
	per := (len(recs) + parts - 1) / parts
	for i := 0; i < len(recs); i += per {
		end := i + per
		if end > len(recs) {
			end = len(recs)
		}
		srcs = append(srcs, NewSliceScanner(recs[i:end]))
	}
	return srcs
}

func TestRunScannersMatchesRun(t *testing.T) {
	recs := makeRecords(20000)
	want, err := Run(NewSliceScanner(recs), 1, newCountAcc, observeCount, mergeCount)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 8} {
		for _, parts := range []int{1, 3, 7} {
			got, err := RunScanners(splitRecords(recs, parts), workers, newCountAcc, observeCount, mergeCount)
			if err != nil {
				t.Fatal(err)
			}
			if got.total != want.total || got.censored != want.censored {
				t.Fatalf("workers=%d parts=%d: totals %d/%d vs %d/%d",
					workers, parts, got.total, got.censored, want.total, want.censored)
			}
			for k, v := range want.hosts {
				if got.hosts[k] != v {
					t.Fatalf("workers=%d parts=%d: host %s = %d, want %d",
						workers, parts, k, got.hosts[k], v)
				}
			}
		}
	}
}

func TestRunScannersEmpty(t *testing.T) {
	acc, err := RunScanners(nil, 4, newCountAcc, observeCount, mergeCount)
	if err != nil {
		t.Fatal(err)
	}
	if acc.total != 0 {
		t.Errorf("total = %d", acc.total)
	}
}

func TestRunScannersPropagatesError(t *testing.T) {
	wantErr := errors.New("boom")
	srcs := []Scanner{
		NewSliceScanner(makeRecords(2000)),
		&errScanner{err: wantErr},
		NewSliceScanner(makeRecords(1000)),
	}
	acc, err := RunScanners(srcs, 2, newCountAcc, observeCount, mergeCount)
	if !errors.Is(err, wantErr) {
		t.Fatalf("err = %v", err)
	}
	// Healthy scanners are still fully consumed.
	if acc.total != 3000 {
		t.Errorf("total = %d", acc.total)
	}
}

func TestRunFiles(t *testing.T) {
	dir := t.TempDir()
	recs := makeRecords(3000)
	var paths []string
	for part, src := range splitRecords(recs, 3) {
		path := filepath.Join(dir, fmt.Sprintf("part-%d.csv", part))
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		w := logfmt.NewWriter(f)
		for {
			rec, ok := src.Next()
			if !ok {
				break
			}
			if err := w.Write(rec); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		paths = append(paths, path)
	}
	acc, err := RunFiles(paths, 4, newCountAcc, observeCount, mergeCount)
	if err != nil {
		t.Fatal(err)
	}
	if acc.total != 3000 {
		t.Errorf("total = %d", acc.total)
	}
	if _, err := RunFiles([]string{filepath.Join(dir, "missing.csv")}, 2, newCountAcc, observeCount, mergeCount); err == nil {
		t.Error("missing file should error")
	}
}

func BenchmarkPipelinePerFileFanout(b *testing.B) {
	recs := makeRecords(100000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := RunScanners(splitRecords(recs, 7), 0, newCountAcc, observeCount, mergeCount); err != nil {
			b.Fatal(err)
		}
	}
}
