// Package prober implements the probing-based censorship measurement
// methodology of the paper's related work (§2 — Nabi, Verkamp & Gupta,
// Dalek et al.): issue requests for a candidate URL list from inside the
// censored network and record which ones are blocked.
//
// The paper's §1 argues this methodology has two inherent limits compared
// with log analysis: (1) it observes only the candidate list, so it cannot
// enumerate keyword rules or unknown blocked domains, and (2) it cannot
// measure the *extent* of censorship (what share of real traffic is
// affected). This package makes those claims quantifiable: run a prober
// against the same policy engine that produced a corpus, then compare its
// recovered blacklist with internal/core's log-based discovery.
package prober

import (
	"sort"

	"syriafilter/internal/policy"
)

// Probe is one candidate URL to test.
type Probe struct {
	Host  string
	Path  string
	Query string
}

// Result is the outcome of one probe, as visible to a prober: blocked or
// not. (A real prober cannot see the rule kind; it is recorded here for
// evaluation only.)
type Result struct {
	Probe
	Blocked bool
	// TrueKind is ground truth, available only because we own the engine.
	TrueKind policy.RuleKind
}

// Report summarizes a probing campaign.
type Report struct {
	Results []Result
	// BlockedHosts is the deduplicated host list found blocked.
	BlockedHosts []string
	// Probes / Blocked are the campaign totals.
	Probes  int
	Blocked int
}

// Prober issues candidate requests against a filtering engine. In the real
// methodology the "engine" is the live network path; here it is the same
// compiled policy the proxy cluster enforces, which makes the comparison
// exact.
type Prober struct {
	engine *policy.Engine
}

// New returns a prober against engine.
func New(engine *policy.Engine) *Prober { return &Prober{engine: engine} }

// Run tests every probe once.
func (p *Prober) Run(probes []Probe) Report {
	rep := Report{Results: make([]Result, 0, len(probes))}
	blockedHosts := map[string]struct{}{}
	for _, pr := range probes {
		req := policy.Request{
			Host: pr.Host, Path: pr.Path, Query: pr.Query,
			Scheme: "http", Method: "GET", Port: 80,
		}
		v := p.engine.Evaluate(&req)
		blocked := v.Action != policy.Allow
		rep.Results = append(rep.Results, Result{Probe: pr, Blocked: blocked, TrueKind: v.Kind})
		rep.Probes++
		if blocked {
			rep.Blocked++
			blockedHosts[pr.Host] = struct{}{}
		}
	}
	for h := range blockedHosts {
		rep.BlockedHosts = append(rep.BlockedHosts, h)
	}
	sort.Strings(rep.BlockedHosts)
	return rep
}

// HomepageProbes builds the classic probing candidate list: the homepage
// of each host ("GET host/").
func HomepageProbes(hosts []string) []Probe {
	out := make([]Probe, len(hosts))
	for i, h := range hosts {
		out[i] = Probe{Host: h, Path: "/"}
	}
	return out
}

// Coverage compares a probing campaign against a reference blacklist
// (e.g. the ground truth, or the log-based discovery output).
type Coverage struct {
	// ReferenceRules is the size of the reference rule set.
	ReferenceRules int
	// FoundRules counts reference rules witnessed by at least one blocked
	// probe.
	FoundRules int
	// MissedRules lists reference rules no probe triggered — the paper's
	// "inability to enumerate all censored keywords".
	MissedRules []string
}

// Recall returns FoundRules / ReferenceRules.
func (c Coverage) Recall() float64 {
	if c.ReferenceRules == 0 {
		return 0
	}
	return float64(c.FoundRules) / float64(c.ReferenceRules)
}

// KeywordCoverage evaluates how many of the reference keywords a campaign
// witnessed: a keyword is witnessed if some blocked probe's URL contains
// it.
func KeywordCoverage(rep Report, keywords []string) Coverage {
	cov := Coverage{ReferenceRules: len(keywords)}
	for _, kw := range keywords {
		found := false
		for _, r := range rep.Results {
			if !r.Blocked {
				continue
			}
			url := r.Host + r.Path
			if r.Query != "" {
				url += "?" + r.Query
			}
			if containsFold(url, kw) {
				found = true
				break
			}
		}
		if found {
			cov.FoundRules++
		} else {
			cov.MissedRules = append(cov.MissedRules, kw)
		}
	}
	return cov
}

// DomainCoverage evaluates how many reference blocked domains a campaign
// found (a domain counts if some blocked probe targeted it or a subdomain).
func DomainCoverage(rep Report, domains []string) Coverage {
	cov := Coverage{ReferenceRules: len(domains)}
	for _, dom := range domains {
		found := false
		for _, h := range rep.BlockedHosts {
			if h == dom || hasSuffixDot(h, dom) {
				found = true
				break
			}
		}
		if found {
			cov.FoundRules++
		} else {
			cov.MissedRules = append(cov.MissedRules, dom)
		}
	}
	return cov
}

func hasSuffixDot(host, dom string) bool {
	return len(host) > len(dom)+1 &&
		host[len(host)-len(dom):] == dom &&
		host[len(host)-len(dom)-1] == '.'
}

func containsFold(s, sub string) bool {
	// Hosts/paths here are ASCII; simple lowercase both sides.
	return index(lower(s), lower(sub)) >= 0
}

func lower(s string) string {
	b := []byte(s)
	changed := false
	for i, c := range b {
		if c >= 'A' && c <= 'Z' {
			b[i] = c + 32
			changed = true
		}
	}
	if !changed {
		return s
	}
	return string(b)
}

func index(s, sub string) int {
	n, m := len(s), len(sub)
	if m == 0 {
		return 0
	}
outer:
	for i := 0; i+m <= n; i++ {
		for j := 0; j < m; j++ {
			if s[i+j] != sub[j] {
				continue outer
			}
		}
		return i
	}
	return -1
}
