package prober

import (
	"testing"

	"syriafilter/internal/policy"
)

func engine() *policy.Engine { return policy.Compile(policy.PaperRuleset()) }

func TestRunBasics(t *testing.T) {
	p := New(engine())
	rep := p.Run([]Probe{
		{Host: "metacafe.com", Path: "/"},
		{Host: "example.com", Path: "/"},
		{Host: "example.com", Path: "/proxy.php"},
		{Host: "panet.co.il", Path: "/"},
	})
	if rep.Probes != 4 || rep.Blocked != 3 {
		t.Fatalf("probes=%d blocked=%d", rep.Probes, rep.Blocked)
	}
	// example.com blocked once (keyword) and allowed once: the host still
	// counts as blocked-witnessed.
	want := []string{"example.com", "metacafe.com", "panet.co.il"}
	if len(rep.BlockedHosts) != len(want) {
		t.Fatalf("blocked hosts = %v", rep.BlockedHosts)
	}
	for i := range want {
		if rep.BlockedHosts[i] != want[i] {
			t.Fatalf("blocked hosts = %v", rep.BlockedHosts)
		}
	}
	if !rep.Results[0].Blocked || rep.Results[0].TrueKind != policy.KindDomain {
		t.Errorf("metacafe result: %+v", rep.Results[0])
	}
}

func TestHomepageProbes(t *testing.T) {
	probes := HomepageProbes([]string{"a.com", "b.org"})
	if len(probes) != 2 || probes[0].Path != "/" || probes[1].Host != "b.org" {
		t.Fatalf("probes = %+v", probes)
	}
}

// The paper's §1 claim: homepage probing of a site list cannot enumerate
// keyword rules — it only sees the domains on the list.
func TestProbingMissesKeywordsOnHomepageLists(t *testing.T) {
	p := New(engine())
	hosts := []string{
		"metacafe.com", "skype.com", "facebook.com", "twitter.com",
		"google.com", "wikipedia.org", "badoo.com", "amazon.com",
	}
	rep := p.Run(HomepageProbes(hosts))
	cov := KeywordCoverage(rep, policy.PaperKeywords)
	if cov.FoundRules != 0 {
		t.Errorf("homepage probing should find 0 keywords, found %d", cov.FoundRules)
	}
	if cov.Recall() != 0 {
		t.Errorf("recall = %v", cov.Recall())
	}
	if len(cov.MissedRules) != len(policy.PaperKeywords) {
		t.Errorf("missed = %v", cov.MissedRules)
	}
}

// Keyword-bearing probes DO witness keyword rules: the candidate list is
// the binding constraint, which is the point.
func TestProbingFindsKeywordsWhenListed(t *testing.T) {
	p := New(engine())
	rep := p.Run([]Probe{
		{Host: "probe.example", Path: "/proxy"},
		{Host: "probe.example", Path: "/hotspotshield"},
		{Host: "probe.example", Path: "/ultrareach"},
		{Host: "probe.example", Path: "/israel"},
		{Host: "probe.example", Path: "/ultrasurf"},
	})
	cov := KeywordCoverage(rep, policy.PaperKeywords)
	if cov.FoundRules != len(policy.PaperKeywords) {
		t.Errorf("found %d of %d: %v", cov.FoundRules, len(policy.PaperKeywords), cov.MissedRules)
	}
}

func TestDomainCoverage(t *testing.T) {
	p := New(engine())
	rep := p.Run(HomepageProbes([]string{
		"metacafe.com", "www.skype.com", "example.com",
	}))
	cov := DomainCoverage(rep, []string{"metacafe.com", "skype.com", "badoo.com"})
	if cov.FoundRules != 2 {
		t.Errorf("found = %d, want 2 (metacafe via exact, skype via subdomain)", cov.FoundRules)
	}
	if len(cov.MissedRules) != 1 || cov.MissedRules[0] != "badoo.com" {
		t.Errorf("missed = %v", cov.MissedRules)
	}
	if cov.Recall() < 0.66 || cov.Recall() > 0.67 {
		t.Errorf("recall = %v", cov.Recall())
	}
}

func TestCoverageEmptyReference(t *testing.T) {
	var cov Coverage
	if cov.Recall() != 0 {
		t.Error("empty reference recall should be 0")
	}
}

func TestHelperEdges(t *testing.T) {
	if !hasSuffixDot("www.skype.com", "skype.com") {
		t.Error("subdomain suffix failed")
	}
	if hasSuffixDot("notskype.com", "skype.com") {
		t.Error("non-subdomain matched")
	}
	if !containsFold("X.Example/PROXY.php", "proxy") {
		t.Error("case-insensitive contains failed")
	}
	if containsFold("abc", "") == false {
		t.Error("empty needle should match")
	}
}

func BenchmarkProbeCampaign(b *testing.B) {
	p := New(engine())
	hosts := make([]string, 200)
	for i := range hosts {
		hosts[i] = "candidate-" + string(rune('a'+i%26)) + ".example"
	}
	probes := HomepageProbes(hosts)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Run(probes)
	}
}
