package core

import (
	"syriafilter/internal/logfmt"
	"syriafilter/internal/statecodec"
	"syriafilter/internal/urlx"
)

// domainsMetric accumulates per-class registered-domain, host and TLD
// counters: Table 4, Figure 2, and the domain-side inputs of the §5.4
// discovery algorithm (Tables 8–10 share it with the tokens module).
type domainsMetric struct {
	cx *recordCtx
	e  *Engine

	allowed  kcounter // registered domains, allowed
	censored kcounter // registered domains, censored
	denied   kcounter // registered domains, errors
	proxied  kcounter // registered domains, served from cache

	tldCensored kcounter
	tldAllowed  kcounter

	// policy_denied-only domain counts (discovery input; redirects are
	// handled by the custom-category analysis instead), plus host-level
	// counts: URL blacklists can target single hosts (messenger.live.com)
	// whose registered domain stays partly allowed.
	censoredDeny     kcounter
	hostCensoredDeny kcounter
	hostAllowed      kcounter
}

func newDomainsMetric(e *Engine) *domainsMetric {
	return &domainsMetric{
		cx:               &e.cx,
		e:                e,
		allowed:          e.newCounter(),
		censored:         e.newCounter(),
		denied:           e.newCounter(),
		proxied:          e.newCounter(),
		tldCensored:      e.newCounter(),
		tldAllowed:       e.newCounter(),
		censoredDeny:     e.newCounter(),
		hostCensoredDeny: e.newCounter(),
		hostAllowed:      e.newCounter(),
	}
}

func (m *domainsMetric) Name() string { return "domains" }

func (m *domainsMetric) Observe(rec *logfmt.Record) {
	switch {
	case m.cx.proxied:
		m.proxied.Add(m.cx.Domain())
	case m.cx.censored:
		m.censored.Add(m.cx.Domain())
		m.tldCensored.Add(urlx.TLD(rec.Host))
		if rec.Exception == logfmt.ExPolicyDenied {
			m.censoredDeny.Add(m.cx.Domain())
			m.hostCensoredDeny.Add(rec.Host)
		}
	case m.cx.allowed:
		m.allowed.Add(m.cx.Domain())
		m.hostAllowed.Add(rec.Host)
		m.tldAllowed.Add(urlx.TLD(rec.Host))
	default:
		m.denied.Add(m.cx.Domain())
	}
}

func (m *domainsMetric) Merge(other Metric) {
	o := other.(*domainsMetric)
	m.allowed.Merge(o.allowed)
	m.censored.Merge(o.censored)
	m.denied.Merge(o.denied)
	m.proxied.Merge(o.proxied)
	m.tldCensored.Merge(o.tldCensored)
	m.tldAllowed.Merge(o.tldAllowed)
	m.censoredDeny.Merge(o.censoredDeny)
	m.hostCensoredDeny.Merge(o.hostCensoredDeny)
	m.hostAllowed.Merge(o.hostAllowed)
}

// counters returns every counter field, in the fixed encoding order.
func (m *domainsMetric) counters() []*kcounter {
	return []*kcounter{
		&m.allowed, &m.censored, &m.denied, &m.proxied,
		&m.tldCensored, &m.tldAllowed,
		&m.censoredDeny, &m.hostCensoredDeny, &m.hostAllowed,
	}
}

func (m *domainsMetric) sketchSizes() SketchSizes {
	var s SketchSizes
	for _, c := range m.counters() {
		s.add(kcounterSizes(*c))
	}
	return s
}

// EncodeState writes version 1 (exact counters, the historical layout)
// or version 2 (sketch counters) depending on the engine mode.
func (m *domainsMetric) EncodeState(w *statecodec.Writer) {
	if m.e.Sketched() {
		w.Byte(2)
	} else {
		w.Byte(1)
	}
	for _, c := range m.counters() {
		encKCounter(w, *c)
	}
}

func (m *domainsMetric) DecodeState(r *statecodec.Reader) {
	v := checkVersion(r, "domains", 2)
	for _, c := range m.counters() {
		if v == 2 {
			*c = m.e.decKCounterSketch(r)
		} else {
			*c = m.e.decKCounterExact(r)
		}
	}
}
