package core

import (
	"syriafilter/internal/logfmt"
	"syriafilter/internal/statecodec"
	"syriafilter/internal/stats"
	"syriafilter/internal/urlx"
)

// domainsMetric accumulates per-class registered-domain, host and TLD
// counters: Table 4, Figure 2, and the domain-side inputs of the §5.4
// discovery algorithm (Tables 8–10 share it with the tokens module).
type domainsMetric struct {
	cx *recordCtx

	allowed  *stats.Counter // registered domains, allowed
	censored *stats.Counter // registered domains, censored
	denied   *stats.Counter // registered domains, errors
	proxied  *stats.Counter // registered domains, served from cache

	tldCensored *stats.Counter
	tldAllowed  *stats.Counter

	// policy_denied-only domain counts (discovery input; redirects are
	// handled by the custom-category analysis instead), plus host-level
	// counts: URL blacklists can target single hosts (messenger.live.com)
	// whose registered domain stays partly allowed.
	censoredDeny     *stats.Counter
	hostCensoredDeny *stats.Counter
	hostAllowed      *stats.Counter
}

func newDomainsMetric(e *Engine) *domainsMetric {
	return &domainsMetric{
		cx:               &e.cx,
		allowed:          stats.NewCounter(),
		censored:         stats.NewCounter(),
		denied:           stats.NewCounter(),
		proxied:          stats.NewCounter(),
		tldCensored:      stats.NewCounter(),
		tldAllowed:       stats.NewCounter(),
		censoredDeny:     stats.NewCounter(),
		hostCensoredDeny: stats.NewCounter(),
		hostAllowed:      stats.NewCounter(),
	}
}

func (m *domainsMetric) Name() string { return "domains" }

func (m *domainsMetric) Observe(rec *logfmt.Record) {
	switch {
	case m.cx.proxied:
		m.proxied.Add(m.cx.Domain())
	case m.cx.censored:
		m.censored.Add(m.cx.Domain())
		m.tldCensored.Add(urlx.TLD(rec.Host))
		if rec.Exception == logfmt.ExPolicyDenied {
			m.censoredDeny.Add(m.cx.Domain())
			m.hostCensoredDeny.Add(rec.Host)
		}
	case m.cx.allowed:
		m.allowed.Add(m.cx.Domain())
		m.hostAllowed.Add(rec.Host)
		m.tldAllowed.Add(urlx.TLD(rec.Host))
	default:
		m.denied.Add(m.cx.Domain())
	}
}

func (m *domainsMetric) Merge(other Metric) {
	o := other.(*domainsMetric)
	m.allowed.Merge(o.allowed)
	m.censored.Merge(o.censored)
	m.denied.Merge(o.denied)
	m.proxied.Merge(o.proxied)
	m.tldCensored.Merge(o.tldCensored)
	m.tldAllowed.Merge(o.tldAllowed)
	m.censoredDeny.Merge(o.censoredDeny)
	m.hostCensoredDeny.Merge(o.hostCensoredDeny)
	m.hostAllowed.Merge(o.hostAllowed)
}

// counters returns every counter field, in the fixed encoding order.
func (m *domainsMetric) counters() []**stats.Counter {
	return []**stats.Counter{
		&m.allowed, &m.censored, &m.denied, &m.proxied,
		&m.tldCensored, &m.tldAllowed,
		&m.censoredDeny, &m.hostCensoredDeny, &m.hostAllowed,
	}
}

func (m *domainsMetric) EncodeState(w *statecodec.Writer) {
	w.Byte(1)
	for _, c := range m.counters() {
		encCounter(w, *c)
	}
}

func (m *domainsMetric) DecodeState(r *statecodec.Reader) {
	checkVersion(r, "domains", 1)
	for _, c := range m.counters() {
		*c = decCounter(r)
	}
}
