package core

import (
	"sort"

	"syriafilter/internal/logfmt"
	"syriafilter/internal/statecodec"
	"syriafilter/internal/torsim"
)

// torMetric accumulates the §7.1 Tor view: request volumes by protocol,
// censored relays and the hourly series behind Figures 8 and 9. Without a
// consensus in Options the module observes nothing, matching the old
// Analyzer behaviour.
type torMetric struct {
	cx  *recordCtx
	opt *Options

	total, http, onion uint64
	censored, errors   uint64
	censoredByProxy    [logfmt.NumProxies]uint64
	hourly             map[int64]uint64
	censHourly         map[int64]uint64
	censoredIPs        map[uint32]struct{}
	allowedIPsByHour   map[int64]map[uint32]struct{}
}

func newTorMetric(e *Engine) *torMetric {
	return &torMetric{
		cx:               &e.cx,
		opt:              &e.opt,
		hourly:           map[int64]uint64{},
		censHourly:       map[int64]uint64{},
		censoredIPs:      map[uint32]struct{}{},
		allowedIPsByHour: map[int64]map[uint32]struct{}{},
	}
}

func (m *torMetric) Name() string { return "tor" }

func (m *torMetric) Observe(rec *logfmt.Record) {
	if m.opt.Consensus == nil {
		return
	}
	tc := m.opt.Consensus.ClassifyRequest(rec.Host, rec.Port, rec.Path)
	if tc == torsim.NotTor {
		return
	}
	m.total++
	hour := rec.Time / 3600
	m.hourly[hour]++
	switch tc {
	case torsim.TorHTTP:
		m.http++
	case torsim.TorOnion:
		m.onion++
	}
	ip, _ := m.cx.IPv4()
	switch {
	case m.cx.censored:
		m.censored++
		m.censHourly[hour]++
		m.censoredIPs[ip] = struct{}{}
		if sg := rec.Proxy(); sg >= logfmt.FirstProxy && sg <= logfmt.LastProxy {
			m.censoredByProxy[sg-logfmt.FirstProxy]++
		}
	case m.cx.class == logfmt.ClassError:
		m.errors++
	default:
		set := m.allowedIPsByHour[hour]
		if set == nil {
			set = map[uint32]struct{}{}
			m.allowedIPsByHour[hour] = set
		}
		set[ip] = struct{}{}
	}
}

func (m *torMetric) Merge(other Metric) {
	o := other.(*torMetric)
	m.total += o.total
	m.http += o.http
	m.onion += o.onion
	m.censored += o.censored
	m.errors += o.errors
	for i := 0; i < logfmt.NumProxies; i++ {
		m.censoredByProxy[i] += o.censoredByProxy[i]
	}
	mergeI64(m.hourly, o.hourly)
	mergeI64(m.censHourly, o.censHourly)
	for ip := range o.censoredIPs {
		m.censoredIPs[ip] = struct{}{}
	}
	for hour, set := range o.allowedIPsByHour {
		mine := m.allowedIPsByHour[hour]
		if mine == nil {
			mine = map[uint32]struct{}{}
			m.allowedIPsByHour[hour] = mine
		}
		for ip := range set {
			mine[ip] = struct{}{}
		}
	}
}

func (m *torMetric) EncodeState(w *statecodec.Writer) {
	w.Byte(1)
	w.Uvarint(m.total)
	w.Uvarint(m.http)
	w.Uvarint(m.onion)
	w.Uvarint(m.censored)
	w.Uvarint(m.errors)
	w.Uvarint(logfmt.NumProxies)
	for i := 0; i < logfmt.NumProxies; i++ {
		w.Uvarint(m.censoredByProxy[i])
	}
	encI64Counts(w, m.hourly)
	encI64Counts(w, m.censHourly)
	encIPSet(w, m.censoredIPs)
	hours := make([]int64, 0, len(m.allowedIPsByHour))
	for h := range m.allowedIPsByHour {
		hours = append(hours, h)
	}
	sort.Slice(hours, func(i, j int) bool { return hours[i] < hours[j] })
	w.Uvarint(uint64(len(hours)))
	for _, h := range hours {
		w.Varint(h)
		encIPSet(w, m.allowedIPsByHour[h])
	}
}

func (m *torMetric) DecodeState(r *statecodec.Reader) {
	checkVersion(r, "tor", 1)
	m.total = r.Uvarint()
	m.http = r.Uvarint()
	m.onion = r.Uvarint()
	m.censored = r.Uvarint()
	m.errors = r.Uvarint()
	if n := r.Count(); r.Err() == nil && n != logfmt.NumProxies {
		r.Failf("core: %d proxies, want %d", n, logfmt.NumProxies)
		return
	}
	for i := 0; i < logfmt.NumProxies; i++ {
		m.censoredByProxy[i] = r.Uvarint()
	}
	m.hourly = decI64Counts(r)
	m.censHourly = decI64Counts(r)
	m.censoredIPs = decIPSet(r)
	n := r.Count()
	m.allowedIPsByHour = make(map[int64]map[uint32]struct{}, n)
	for i := 0; i < n && r.Err() == nil; i++ {
		h := r.Varint()
		m.allowedIPsByHour[h] = decIPSet(r)
	}
}
