package core

import (
	"syriafilter/internal/logfmt"
	"syriafilter/internal/statecodec"
)

// datasetsMetric accumulates the four datasets of Table 1 and their
// class × exception breakdown (Table 3).
type datasetsMetric struct {
	cx       *recordCtx
	datasets [numDatasets]ClassCounts
}

func newDatasetsMetric(e *Engine) *datasetsMetric {
	return &datasetsMetric{cx: &e.cx}
}

func (m *datasetsMetric) Name() string { return "datasets" }

func (m *datasetsMetric) Observe(rec *logfmt.Record) {
	m.bump(DFull, rec)
	if m.cx.Sampled() {
		m.bump(DSample, rec)
	}
	if m.cx.UserKey() != "" {
		m.bump(DUser, rec)
	}
	if rec.IsDeniedAny() {
		m.bump(DDenied, rec)
	}
}

func (m *datasetsMetric) bump(id DatasetID, rec *logfmt.Record) {
	c := &m.datasets[id]
	c.Total++
	c.ByException[rec.Exception]++
	if m.cx.proxied {
		c.Proxied++
	}
}

func (m *datasetsMetric) Merge(other Metric) {
	o := other.(*datasetsMetric)
	for i := range m.datasets {
		m.datasets[i].merge(&o.datasets[i])
	}
}

func (m *datasetsMetric) EncodeState(w *statecodec.Writer) {
	w.Byte(1)
	w.Uvarint(uint64(len(m.datasets)))
	for i := range m.datasets {
		encClassCounts(w, &m.datasets[i])
	}
}

func (m *datasetsMetric) DecodeState(r *statecodec.Reader) {
	checkVersion(r, "datasets", 1)
	if n := r.Count(); r.Err() == nil && n != len(m.datasets) {
		r.Failf("core: %d datasets, want %d", n, len(m.datasets))
		return
	}
	for i := range m.datasets {
		decClassCounts(r, &m.datasets[i])
	}
}
