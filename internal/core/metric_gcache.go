package core

import (
	"syriafilter/internal/logfmt"
	"syriafilter/internal/statecodec"
)

// gcacheMetric accumulates webcache.googleusercontent.com traffic (§7.4).
type gcacheMetric struct {
	cx              *recordCtx
	total, censored uint64
}

func newGCacheMetric(e *Engine) *gcacheMetric {
	return &gcacheMetric{cx: &e.cx}
}

func (m *gcacheMetric) Name() string { return "gcache" }

func (m *gcacheMetric) Observe(rec *logfmt.Record) {
	if rec.Host != "webcache.googleusercontent.com" {
		return
	}
	m.total++
	if m.cx.censored {
		m.censored++
	}
}

func (m *gcacheMetric) Merge(other Metric) {
	o := other.(*gcacheMetric)
	m.total += o.total
	m.censored += o.censored
}

func (m *gcacheMetric) EncodeState(w *statecodec.Writer) {
	w.Byte(1)
	w.Uvarint(m.total)
	w.Uvarint(m.censored)
}

func (m *gcacheMetric) DecodeState(r *statecodec.Reader) {
	checkVersion(r, "gcache", 1)
	m.total = r.Uvarint()
	m.censored = r.Uvarint()
}
