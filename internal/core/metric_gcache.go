package core

import "syriafilter/internal/logfmt"

// gcacheMetric accumulates webcache.googleusercontent.com traffic (§7.4).
type gcacheMetric struct {
	cx              *recordCtx
	total, censored uint64
}

func newGCacheMetric(e *Engine) *gcacheMetric {
	return &gcacheMetric{cx: &e.cx}
}

func (m *gcacheMetric) Name() string { return "gcache" }

func (m *gcacheMetric) Observe(rec *logfmt.Record) {
	if rec.Host != "webcache.googleusercontent.com" {
		return
	}
	m.total++
	if m.cx.censored {
		m.censored++
	}
}

func (m *gcacheMetric) Merge(other Metric) {
	o := other.(*gcacheMetric)
	m.total += o.total
	m.censored += o.censored
}
