package core

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// sketchedCorpus builds a sketch-mode analyzer over the shared fixture
// records (default precision/capacity unless overridden).
func sketchedCorpus(t testing.TB, precision uint8, k int) *Analyzer {
	t.Helper()
	f := corpus(t)
	an := NewAnalyzer(fixtureOptions(f).WithSketches(precision, k))
	for i := range f.records {
		an.Observe(&f.records[i])
	}
	return an
}

// Sketch mode must not perturb anything outside the four sketched
// modules: every experiment that reads only exact modules renders
// byte-identically to the exact engine.
func TestSketchNonSketchedExperimentsByteIdentical(t *testing.T) {
	f := corpus(t)
	sk := sketchedCorpus(t, 0, 0)
	for _, id := range Experiments() {
		if UsesSketchedModules(id) {
			continue
		}
		want := experimentRender[id](f.analyzer)
		if got := experimentRender[id](sk); got != want {
			t.Errorf("%s: sketch-mode result differs from exact mode\n got: %.300s\nwant: %.300s", id, got, want)
		}
	}
}

// The headline user counts must stay within the HLL's 3-sigma error of
// the exact engine's counts.
func TestSketchUserEstimatesWithinBound(t *testing.T) {
	f := corpus(t)
	sk := sketchedCorpus(t, 0, 0)
	exact := f.analyzer.UserAnalysis()
	approx := sk.UserAnalysis()
	bound := 3 * 1.04 / math.Sqrt(float64(uint64(1)<<DefaultSketchPrecision))
	check := func(name string, got, want int) {
		if want == 0 {
			t.Fatalf("%s: exact corpus has 0 users; fixture too small", name)
		}
		if relErr := math.Abs(float64(got)-float64(want)) / float64(want); relErr > bound {
			t.Errorf("%s: sketch estimate %d vs exact %d (rel err %.4f > bound %.4f)",
				name, got, want, relErr, bound)
		}
	}
	check("TotalUsers", approx.TotalUsers, exact.TotalUsers)
	check("CensoredUsers", approx.CensoredUsers, exact.CensoredUsers)
}

// With sketches, tracked-entry counts stay bounded by the configured
// capacity no matter how many distinct keys the corpus holds. The
// fixture's distinct-user count is >= 10x the capacity used here, so the
// exact engine provably could not fit in the same footprint.
func TestSketchBoundedEntries(t *testing.T) {
	f := corpus(t)
	exactUsers := f.analyzer.UserAnalysis().TotalUsers
	const k = 64
	if exactUsers < 10*k {
		t.Fatalf("fixture has %d distinct users, need >= %d for a meaningful bound", exactUsers, 10*k)
	}
	sk := sketchedCorpus(t, 10, k)
	um := sk.mUsers("test")
	if got := um.topTotal.Len(); got > k {
		t.Errorf("users topTotal tracks %d entries, capacity %d", got, k)
	}
	if got := um.topCensored.Len(); got > k {
		t.Errorf("users topCensored tracks %d entries, capacity %d", got, k)
	}
	dm := sk.mDomains("test")
	for _, c := range dm.counters() {
		scc, ok := (*c).(*sketchCounter)
		if !ok {
			t.Fatal("sketched engine holds a non-sketch domains counter")
		}
		if got := scc.topk.Len(); got > k {
			t.Errorf("domains counter tracks %d entries, capacity %d", got, k)
		}
	}
	// The HLL estimate still sees the full population the top-k dropped.
	if est := um.hllTotal.Estimate(); float64(est) < 0.8*float64(exactUsers) {
		t.Errorf("users HLL estimate %d way below exact %d", est, exactUsers)
	}
}

// restore(checkpoint(S)) == S, byte-identically, in sketch mode: every
// experiment renders the same and the re-encoded state matches the first
// encoding.
func TestSketchStateRoundTrip(t *testing.T) {
	f := corpus(t)
	sk := sketchedCorpus(t, 0, 0)
	state := sk.MarshalState()

	fresh := NewAnalyzer(fixtureOptions(f).WithSketches(0, 0))
	if err := fresh.UnmarshalState(state); err != nil {
		t.Fatal(err)
	}
	for _, id := range Experiments() {
		want := experimentRender[id](sk)
		if got := experimentRender[id](fresh); got != want {
			t.Errorf("%s: restored sketch analyzer renders differently", id)
		}
	}
	if again := fresh.MarshalState(); !bytes.Equal(again, state) {
		t.Errorf("re-encoded sketch state differs: %d vs %d bytes", len(again), len(state))
	}
}

// Sketch-mode engines merge deterministically, like exact ones: a serial
// engine and a merge of two halves encode identical state bytes.
func TestSketchMergeDeterministic(t *testing.T) {
	f := corpus(t)
	opt := fixtureOptions(f).WithSketches(0, 0)
	half1, half2 := NewAnalyzer(opt), NewAnalyzer(opt)
	for i := range f.records {
		if i%2 == 0 {
			half1.Observe(&f.records[i])
		} else {
			half2.Observe(&f.records[i])
		}
	}
	half1.Merge(half2)
	if !bytes.Equal(half1.MarshalState(), half1.MarshalState()) {
		t.Error("two MarshalState calls on the merged sketch engine disagree")
	}
}

// An exact (v1) checkpoint loads into a sketched engine by replay: the
// distinct-count estimates land within the HLL bound of the exact counts.
func TestSketchLoadsExactState(t *testing.T) {
	f := corpus(t)
	state := f.analyzer.MarshalState()
	sk := NewAnalyzer(fixtureOptions(f).WithSketches(0, 0))
	if err := sk.UnmarshalState(state); err != nil {
		t.Fatal(err)
	}
	exact := f.analyzer.UserAnalysis()
	approx := sk.UserAnalysis()
	bound := 3 * 1.04 / math.Sqrt(float64(uint64(1)<<DefaultSketchPrecision))
	relErr := math.Abs(float64(approx.TotalUsers)-float64(exact.TotalUsers)) / float64(exact.TotalUsers)
	if relErr > bound {
		t.Errorf("replayed TotalUsers %d vs exact %d (rel err %.4f > %.4f)",
			approx.TotalUsers, exact.TotalUsers, relErr, bound)
	}
	// Replayed totals are exact (scalars survive replay losslessly).
	skDm := sk.mDomains("test")
	exDm := f.analyzer.mDomains("test")
	if skDm.allowed.Total() != exDm.allowed.Total() {
		t.Errorf("replayed allowed-domains total %d != exact %d",
			skDm.allowed.Total(), exDm.allowed.Total())
	}
}

// A sketch (v2) checkpoint must refuse to load into an exact engine with
// an error that names the fix.
func TestExactEngineRefusesSketchState(t *testing.T) {
	f := corpus(t)
	sk := sketchedCorpus(t, 0, 0)
	exact := NewAnalyzer(fixtureOptions(f))
	err := exact.UnmarshalState(sk.MarshalState())
	if err == nil {
		t.Fatal("exact engine loaded sketch state without error")
	}
	if !strings.Contains(err.Error(), "-sketch") {
		t.Errorf("error %q does not point at -sketch", err)
	}
}
