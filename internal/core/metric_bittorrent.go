package core

import (
	"syriafilter/internal/bittorrent"
	"syriafilter/internal/logfmt"
	"syriafilter/internal/statecodec"
	"syriafilter/internal/stats"
)

// bittorrentMetric accumulates tracker-announce traffic (§7.3): distinct
// peers, contents, and per-tracker announce counts.
type bittorrentMetric struct {
	cx *recordCtx

	total, censored uint64
	peers           map[[20]byte]struct{}
	hashes          map[[20]byte]struct{}
	trackers        *stats.Counter
}

func newBitTorrentMetric(e *Engine) *bittorrentMetric {
	return &bittorrentMetric{
		cx:       &e.cx,
		peers:    map[[20]byte]struct{}{},
		hashes:   map[[20]byte]struct{}{},
		trackers: stats.NewCounter(),
	}
}

func (m *bittorrentMetric) Name() string { return "bittorrent" }

func (m *bittorrentMetric) Observe(rec *logfmt.Record) {
	if !bittorrent.IsAnnouncePath(rec.Path) {
		return
	}
	ann, err := bittorrent.ParseAnnounce(rec.Path, rec.Query)
	if err != nil {
		return
	}
	m.total++
	m.peers[ann.PeerID] = struct{}{}
	m.hashes[ann.InfoHash] = struct{}{}
	m.trackers.Add(rec.Host)
	if m.cx.censored {
		m.censored++
	}
}

func (m *bittorrentMetric) Merge(other Metric) {
	o := other.(*bittorrentMetric)
	m.total += o.total
	m.censored += o.censored
	for k := range o.peers {
		m.peers[k] = struct{}{}
	}
	for k := range o.hashes {
		m.hashes[k] = struct{}{}
	}
	m.trackers.Merge(o.trackers)
}

func (m *bittorrentMetric) EncodeState(w *statecodec.Writer) {
	w.Byte(1)
	w.Uvarint(m.total)
	w.Uvarint(m.censored)
	encHashSet(w, m.peers)
	encHashSet(w, m.hashes)
	encCounter(w, m.trackers)
}

func (m *bittorrentMetric) DecodeState(r *statecodec.Reader) {
	checkVersion(r, "bittorrent", 1)
	m.total = r.Uvarint()
	m.censored = r.Uvarint()
	m.peers = decHashSet(r)
	m.hashes = decHashSet(r)
	m.trackers = decCounter(r)
}
