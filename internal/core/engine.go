package core

import (
	"fmt"
	"sort"

	"syriafilter/internal/categorydb"
	"syriafilter/internal/logfmt"
	"syriafilter/internal/statecodec"
	"syriafilter/internal/stats"
	"syriafilter/internal/urlx"
)

// Metric is one self-contained analysis module: an accumulator for the
// state behind one slice of the paper's evaluation (a table, a figure, or
// a closely related group of them). Modules are independent — an Engine
// can run any subset — and mergeable, so they compose with the parallel
// pipeline the same way the monolithic Analyzer always did.
type Metric interface {
	// Name returns the module's registry name (stable, lowercase).
	Name() string
	// Observe folds one record into the module. The record and the
	// engine's shared recordCtx are only valid for the duration of the
	// call.
	Observe(rec *logfmt.Record)
	// Merge folds another instance of the same module into this one.
	// Implementations may assume other has the same dynamic type.
	Merge(other Metric)
	// EncodeState serializes the module's accumulated state. The
	// encoding must be deterministic (map iteration sorted) and lead
	// with a module version byte, so a checkpoint re-encodes
	// byte-identically and a future layout change can migrate old
	// state. Configuration reached through the engine's Options is not
	// state and is not written.
	EncodeState(w *statecodec.Writer)
	// DecodeState replaces the module's state with one previously
	// written by EncodeState (any accumulated state is discarded, not
	// merged). Failures are reported through the reader's sticky error.
	DecodeState(r *statecodec.Reader)
}

// recordCtx caches per-record derived values shared across modules, so
// e.g. the registered domain is computed once per record no matter how
// many modules consume it. Cheap derivations are eager; allocating or
// scan-heavy ones are memoized on first use.
type recordCtx struct {
	rec         *logfmt.Record
	class       logfmt.Class
	censored    bool
	allowed     bool
	proxied     bool
	slot        int64
	sampleOneIn uint64

	sampled    bool
	sampledSet bool
	domain     string
	domainSet  bool
	userKey    string
	userSet    bool
	ipv4       uint32
	isIP       bool
	ipSet      bool
	cat        categorydb.Category
	catSet     bool

	// catDB/catCache back HostCategory: the suffix walk in
	// categorydb.Classify costs several map probes per call, so the
	// engine keeps a bounded host -> category cache that collapses it to
	// one probe for the (heavily repeated) hosts of a real corpus.
	catDB    *categorydb.DB
	catCache map[string]categorydb.Category
}

// maxCatCache bounds the engine's host-category cache; a corpus with
// more distinct hosts just degrades to uncached Classify calls.
const maxCatCache = 1 << 16

func (c *recordCtx) reset(rec *logfmt.Record, sampleOneIn uint64) {
	c.rec = rec
	c.class = rec.Class()
	c.censored = c.class == logfmt.ClassCensored
	c.allowed = c.class == logfmt.ClassAllowed
	c.proxied = rec.IsProxied()
	c.slot = rec.Time / SlotSeconds
	c.sampleOneIn = sampleOneIn
	c.sampledSet = false
	c.domainSet = false
	c.userSet = false
	c.ipSet = false
	c.catSet = false
}

// Sampled reports the record's Dsample membership, hashed at most once.
func (c *recordCtx) Sampled() bool {
	if !c.sampledSet {
		c.sampled = sampleHit(c.rec, c.sampleOneIn)
		c.sampledSet = true
	}
	return c.sampled
}

// Domain returns the record's registered domain, computed at most once.
func (c *recordCtx) Domain() string {
	if !c.domainSet {
		c.domain = urlx.RegisteredDomain(c.rec.Host)
		c.domainSet = true
	}
	return c.domain
}

// UserKey returns the record's §4 user key, computed at most once.
func (c *recordCtx) UserKey() string {
	if !c.userSet {
		c.userKey = c.rec.UserKey()
		c.userSet = true
	}
	return c.userKey
}

// HostCategory classifies the record's host against the category DB,
// at most once per record and through the engine's host cache.
func (c *recordCtx) HostCategory() categorydb.Category {
	if !c.catSet {
		host := c.rec.Host
		cat, ok := c.catCache[host]
		if !ok {
			cat = c.catDB.Classify(host)
			if len(c.catCache) < maxCatCache {
				c.catCache[host] = cat
			}
		}
		c.cat = cat
		c.catSet = true
	}
	return c.cat
}

// IPv4 parses the host as an IPv4 literal, at most once.
func (c *recordCtx) IPv4() (uint32, bool) {
	if !c.ipSet {
		c.ipv4, c.isIP = urlx.ParseIPv4(c.rec.Host)
		c.ipSet = true
	}
	return c.ipv4, c.isIP
}

// sampleHit implements the deterministic 1-in-N Dsample membership.
func sampleHit(rec *logfmt.Record, oneIn uint64) bool {
	h := stats.Hash64(rec.Host) ^ uint64(rec.Time)*0x9e3779b97f4a7c15 ^ uint64(len(rec.Path))
	return h%oneIn == 0
}

// moduleDef is one registry entry: a module name and its constructor.
// Constructors receive the engine so modules can share its Options and
// recordCtx.
type moduleDef struct {
	name  string
	build func(e *Engine) Metric
}

// moduleRegistry lists every metric module in canonical order. The order
// fixes both Observe dispatch and Merge pairing.
var moduleRegistry = []moduleDef{
	{"datasets", func(e *Engine) Metric { return newDatasetsMetric(e) }},
	{"domains", func(e *Engine) Metric { return newDomainsMetric(e) }},
	{"ports", func(e *Engine) Metric { return newPortsMetric(e) }},
	{"timeseries", func(e *Engine) Metric { return newTimeseriesMetric(e) }},
	{"proxies", func(e *Engine) Metric { return newProxiesMetric(e) }},
	{"users", func(e *Engine) Metric { return newUsersMetric(e) }},
	{"categories", func(e *Engine) Metric { return newCategoriesMetric(e) }},
	{"redirects", func(e *Engine) Metric { return newRedirectsMetric(e) }},
	{"tokens", func(e *Engine) Metric { return newTokensMetric(e) }},
	{"countries", func(e *Engine) Metric { return newCountriesMetric(e) }},
	{"subnets", func(e *Engine) Metric { return newSubnetsMetric(e) }},
	{"osn", func(e *Engine) Metric { return newOSNMetric(e) }},
	{"facebook", func(e *Engine) Metric { return newFacebookMetric(e) }},
	{"tor", func(e *Engine) Metric { return newTorMetric(e) }},
	{"anonymizers", func(e *Engine) Metric { return newAnonymizersMetric(e) }},
	{"https", func(e *Engine) Metric { return newHTTPSMetric(e) }},
	{"bittorrent", func(e *Engine) Metric { return newBitTorrentMetric(e) }},
	{"gcache", func(e *Engine) Metric { return newGCacheMetric(e) }},
}

// AllMetrics returns every registered module name in canonical order.
func AllMetrics() []string {
	out := make([]string, len(moduleRegistry))
	for i, d := range moduleRegistry {
		out[i] = d.name
	}
	return out
}

// Engine composes metric modules: it derives the shared per-record
// context once, dispatches each record to every registered module, and
// merges module-by-module. A full engine (every module) is exactly the
// old monolithic Analyzer; a subset engine pays only for the modules the
// requested tables and figures need.
//
// Like the Analyzer, an Engine is not safe for concurrent use; run one
// per pipeline worker and Merge.
type Engine struct {
	opt     Options
	cx      recordCtx
	modules []Metric
	byName  map[string]Metric
}

// NewEngine builds an engine with the named modules, in registry order
// regardless of argument order. No names selects every module. Unknown
// names are an error.
func NewEngine(opt Options, metrics ...string) (*Engine, error) {
	opt.defaults()
	want := map[string]bool{}
	for _, name := range metrics {
		want[name] = true
	}
	e := &Engine{opt: opt, byName: make(map[string]Metric)}
	e.cx.catDB = e.opt.Categories
	e.cx.catCache = make(map[string]categorydb.Category)
	for _, d := range moduleRegistry {
		if len(metrics) > 0 && !want[d.name] {
			continue
		}
		m := d.build(e)
		e.modules = append(e.modules, m)
		e.byName[d.name] = m
		delete(want, d.name)
	}
	if len(metrics) > 0 && len(want) > 0 {
		unknown := make([]string, 0, len(want))
		for name := range want {
			unknown = append(unknown, name)
		}
		sort.Strings(unknown)
		return nil, fmt.Errorf("core: unknown metric modules %v (known: %v)", unknown, AllMetrics())
	}
	return e, nil
}

// Metrics returns the names of this engine's registered modules, in
// dispatch order.
func (e *Engine) Metrics() []string {
	out := make([]string, len(e.modules))
	for i, m := range e.modules {
		out[i] = m.Name()
	}
	return out
}

// Metric returns the named module, or nil when it is not registered.
func (e *Engine) Metric(name string) Metric { return e.byName[name] }

// Observe folds one record into every registered module.
func (e *Engine) Observe(rec *logfmt.Record) {
	e.cx.reset(rec, e.opt.SampleOneIn)
	for _, m := range e.modules {
		m.Observe(rec)
	}
}

// Merge folds b into e. Both engines must carry the same module set and
// have been built with equivalent Options.
func (e *Engine) Merge(b *Engine) {
	if len(e.modules) != len(b.modules) {
		panic(fmt.Sprintf("core: merging engines with different module sets: %v vs %v", e.Metrics(), b.Metrics()))
	}
	for i, m := range e.modules {
		o := b.modules[i]
		if m.Name() != o.Name() {
			panic(fmt.Sprintf("core: merging engines with different module sets: %v vs %v", e.Metrics(), b.Metrics()))
		}
		m.Merge(o)
	}
}

// inSample reports the deterministic Dsample membership of rec under this
// engine's options.
func (e *Engine) inSample(rec *logfmt.Record) bool {
	return sampleHit(rec, e.opt.SampleOneIn)
}

// mod returns the named module or panics with a clear message naming the
// result that needed it. Result methods call it so that asking a subset
// engine for a table it was not built for fails loudly instead of
// returning silently-empty rows.
func (e *Engine) mod(name, result string) Metric {
	m := e.byName[name]
	if m == nil {
		panic(fmt.Sprintf("core: %s needs metric module %q, which this engine was built without (have %v)", result, name, e.Metrics()))
	}
	return m
}

// Typed module accessors for the result functions.

func (e *Engine) mDatasets(result string) *datasetsMetric {
	return e.mod("datasets", result).(*datasetsMetric)
}

func (e *Engine) mDomains(result string) *domainsMetric {
	return e.mod("domains", result).(*domainsMetric)
}

func (e *Engine) mPorts(result string) *portsMetric {
	return e.mod("ports", result).(*portsMetric)
}

func (e *Engine) mTimeseries(result string) *timeseriesMetric {
	return e.mod("timeseries", result).(*timeseriesMetric)
}

func (e *Engine) mProxies(result string) *proxiesMetric {
	return e.mod("proxies", result).(*proxiesMetric)
}

func (e *Engine) mUsers(result string) *usersMetric {
	return e.mod("users", result).(*usersMetric)
}

func (e *Engine) mCategories(result string) *categoriesMetric {
	return e.mod("categories", result).(*categoriesMetric)
}

func (e *Engine) mRedirects(result string) *redirectsMetric {
	return e.mod("redirects", result).(*redirectsMetric)
}

func (e *Engine) mTokens(result string) *tokensMetric {
	return e.mod("tokens", result).(*tokensMetric)
}

func (e *Engine) mCountries(result string) *countriesMetric {
	return e.mod("countries", result).(*countriesMetric)
}

func (e *Engine) mSubnets(result string) *subnetsMetric {
	return e.mod("subnets", result).(*subnetsMetric)
}

func (e *Engine) mOSN(result string) *osnMetric {
	return e.mod("osn", result).(*osnMetric)
}

func (e *Engine) mFacebook(result string) *facebookMetric {
	return e.mod("facebook", result).(*facebookMetric)
}

func (e *Engine) mTor(result string) *torMetric {
	return e.mod("tor", result).(*torMetric)
}

func (e *Engine) mAnonymizers(result string) *anonymizersMetric {
	return e.mod("anonymizers", result).(*anonymizersMetric)
}

func (e *Engine) mHTTPS(result string) *httpsMetric {
	return e.mod("https", result).(*httpsMetric)
}

func (e *Engine) mBitTorrent(result string) *bittorrentMetric {
	return e.mod("bittorrent", result).(*bittorrentMetric)
}

func (e *Engine) mGCache(result string) *gcacheMetric {
	return e.mod("gcache", result).(*gcacheMetric)
}
