// Package core implements the paper's analyses: the §3.3 request
// classification and dataset construction, and one result function per
// table and figure of the evaluation (see DESIGN.md for the experiment
// index). The heart of the package is the Engine, a single-pass,
// mergeable composition of independent metric modules (one per analysis
// family); the Analyzer facade is a full engine — feed it every log
// record once (directly or through internal/pipeline), then ask it for
// any result. Subset engines, built via NewEngine or NewAnalyzerFor with
// the module names from ModulesFor, pay only for the tables and figures
// they will be asked for.
//
// The inference analyses — censored-string discovery (§5.4), proxy
// specialization (§5.2), Tor blocking consistency (§7.1) — recover the
// filtering policy from the logs alone; because the synthetic corpus is
// produced by a known ground-truth policy, the tests in this package can
// validate recall and precision, which the original study could not.
package core

import (
	"strings"

	"syriafilter/internal/bittorrent"
	"syriafilter/internal/categorydb"
	"syriafilter/internal/geoip"
	"syriafilter/internal/logfmt"
	"syriafilter/internal/torsim"
)

// Options configures an Engine or Analyzer. Categories and GeoDB are
// required for the category/country analyses; Consensus and TitleDB
// unlock the Tor and BitTorrent analyses.
type Options struct {
	Categories *categorydb.DB
	GeoDB      *geoip.DB
	Consensus  *torsim.Consensus
	TitleDB    *bittorrent.TitleDB
	// SampleOneIn builds Dsample as a deterministic 1-in-N sample
	// (default 25, the paper's 4%).
	SampleOneIn uint64
	// MaxStoredCensoredURLs caps the URL store used by keyword discovery
	// (default 500_000; censored traffic is ~1% so this is rarely hit).
	MaxStoredCensoredURLs int
	// MaxTokenEntries caps the allowed-token vocabulary (default 4M).
	MaxTokenEntries int
	// Sketches switches the cardinality-heavy modules to bounded-memory
	// sketches; see SketchOptions and WithSketches.
	Sketches SketchOptions
}

func (o *Options) defaults() {
	if o.Categories == nil {
		o.Categories = categorydb.PaperSeed()
	}
	if o.GeoDB == nil {
		o.GeoDB = geoip.SyriaEra()
	}
	if o.SampleOneIn == 0 {
		o.SampleOneIn = 25
	}
	if o.MaxStoredCensoredURLs == 0 {
		o.MaxStoredCensoredURLs = 500_000
	}
	if o.MaxTokenEntries == 0 {
		o.MaxTokenEntries = 4 << 20
	}
	o.Sketches.defaults()
}

// DatasetID indexes the four datasets of Table 1.
type DatasetID int

// Dataset identifiers, in Table 1 order.
const (
	DFull DatasetID = iota
	DSample
	DUser
	DDenied
	numDatasets
)

// String names the dataset.
func (d DatasetID) String() string {
	switch d {
	case DFull:
		return "Full"
	case DSample:
		return "Sample"
	case DUser:
		return "User"
	case DDenied:
		return "Denied"
	}
	return "?"
}

// ClassCounts is one dataset's row group in Table 3.
type ClassCounts struct {
	Total       uint64
	ByException [logfmt.NumExceptions]uint64
	Proxied     uint64 // records answered from cache (any exception)
}

// Allowed returns the OBSERVED+no-exception count.
func (c *ClassCounts) Allowed() uint64 { return c.ByException[logfmt.ExNone] }

// Censored returns policy_denied + policy_redirect.
func (c *ClassCounts) Censored() uint64 {
	return c.ByException[logfmt.ExPolicyDenied] + c.ByException[logfmt.ExPolicyRedirect]
}

// Errors returns the network-error total.
func (c *ClassCounts) Errors() uint64 {
	var n uint64
	for ex, cnt := range c.ByException {
		if logfmt.ExceptionID(ex).IsError() {
			n += cnt
		}
	}
	return n
}

// Denied returns all non-allowed requests.
func (c *ClassCounts) Denied() uint64 { return c.Total - c.Allowed() }

func (c *ClassCounts) merge(o *ClassCounts) {
	c.Total += o.Total
	c.Proxied += o.Proxied
	for i := range c.ByException {
		c.ByException[i] += o.ByException[i]
	}
}

type userStat struct {
	Total    uint64
	Censored uint64
}

type triple struct{ Censored, Allowed, Proxied uint64 }

type pageStat struct {
	Censored, Allowed, Proxied uint64
	CustomCategory             bool // ever seen with the "Blocked sites" label
}

type censoredURL struct {
	Domain string
	URL    string
	Host   string
}

// SlotSeconds matches the paper's 5-minute series granularity.
const SlotSeconds = 300

// OSNWatchlist is the §6 population: the top-25 social networks (Alexa,
// Nov 2013, as the paper selected) plus three Arabic-speaking-world ones.
var OSNWatchlist = []string{
	"facebook.com", "twitter.com", "linkedin.com", "pinterest.com",
	"plus.google.com", "tumblr.com", "instagram.com", "vk.com", "flickr.com",
	"myspace.com", "tagged.com", "ask.fm", "meetup.com", "meetme.com",
	"classmates.com", "xing.com", "renren.com", "weibo.com", "orkut.com",
	"badoo.com", "skyrock.com", "ning.com", "hi5.com", "last.fm",
	"livejournal.com", "netlog.com", "salamworld.com", "muslimup.com",
}

// Analyzer is the backward-compatible facade over a full Engine: every
// metric module registered, every result method available. It remains
// the right type for callers that want the whole evaluation; use
// NewAnalyzerFor (or NewEngine) to pay for a subset only.
//
// Like the Engine, an Analyzer is not safe for concurrent use; run one
// per pipeline worker and Merge.
type Analyzer struct {
	*Engine
}

// NewAnalyzer builds an empty analyzer running every metric module.
func NewAnalyzer(opt Options) *Analyzer {
	a, err := NewAnalyzerFor(opt)
	if err != nil {
		panic(err) // unreachable: no subset names to reject
	}
	return a
}

// NewAnalyzerFor builds an analyzer restricted to the named metric
// modules (none = all). Result methods whose module is absent panic;
// derive the names from ModulesFor so the subset matches the experiments
// you will run.
func NewAnalyzerFor(opt Options, metrics ...string) (*Analyzer, error) {
	e, err := NewEngine(opt, metrics...)
	if err != nil {
		return nil, err
	}
	return &Analyzer{Engine: e}, nil
}

// Merge folds b into a. Both must have been built with equivalent
// Options and the same module subset.
func (a *Analyzer) Merge(b *Analyzer) { a.Engine.Merge(b.Engine) }

func bumpTriple(ts *triple, censored, allowed, isProxied bool) {
	switch {
	case isProxied:
		ts.Proxied++
	case censored:
		ts.Censored++
	case allowed:
		ts.Allowed++
	}
}

// isCodeExt reports whether ext names a web-platform resource type.
func isCodeExt(ext string) bool {
	switch ext {
	case "php", "js", "css", "cgi", "aspx", "asp", "dll", "gif", "png", "jpg", "html", "htm", "xml", "json":
		return true
	}
	return false
}

// tokenizeRecord yields the URL's candidate keyword tokens: maximal runs
// of ASCII letters (length 4–24) from host+path+query, lowercased. Digits
// break tokens, which keeps session ids and hashes out of the vocabulary.
func tokenizeRecord(rec *logfmt.Record, yield func(string)) {
	emit := func(s string) {
		start := -1
		for i := 0; i <= len(s); i++ {
			var c byte
			if i < len(s) {
				c = s[i]
			}
			isAlpha := c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
			if isAlpha {
				if start < 0 {
					start = i
				}
				continue
			}
			if start >= 0 {
				if n := i - start; n >= 4 && n <= 24 {
					yield(strings.ToLower(s[start:i]))
				}
				start = -1
			}
		}
	}
	emit(rec.Host)
	emit(rec.Path)
	emit(rec.Query)
}

// TokenizeURL exposes the discovery tokenizer for tests and tools.
func TokenizeURL(host, path, query string) []string {
	rec := logfmt.Record{Host: host, Path: path, Query: query}
	var out []string
	tokenizeRecord(&rec, func(tok string) { out = append(out, tok) })
	return out
}

func mergeU16(dst, src map[uint16]uint64) {
	for k, v := range src {
		dst[k] += v
	}
}

func mergeI64(dst, src map[int64]uint64) {
	for k, v := range src {
		dst[k] += v
	}
}

func mergeStr(dst, src map[string]uint64) {
	for k, v := range src {
		dst[k] += v
	}
}
