// Package core implements the paper's analyses: the §3.3 request
// classification and dataset construction, and one result function per
// table and figure of the evaluation (see DESIGN.md for the experiment
// index). The heart of the package is Analyzer, a single-pass, mergeable
// accumulator: feed it every log record once (directly or through
// internal/pipeline), then ask it for any result.
//
// The inference analyses — censored-string discovery (§5.4), proxy
// specialization (§5.2), Tor blocking consistency (§7.1) — recover the
// filtering policy from the logs alone; because the synthetic corpus is
// produced by a known ground-truth policy, the tests in this package can
// validate recall and precision, which the original study could not.
package core

import (
	"strings"

	"syriafilter/internal/bittorrent"
	"syriafilter/internal/categorydb"
	"syriafilter/internal/geoip"
	"syriafilter/internal/logfmt"
	"syriafilter/internal/stats"
	"syriafilter/internal/torsim"
	"syriafilter/internal/urlx"
)

// Options configures an Analyzer. Categories and GeoDB are required for
// the category/country analyses; Consensus and TitleDB unlock the Tor and
// BitTorrent analyses.
type Options struct {
	Categories *categorydb.DB
	GeoDB      *geoip.DB
	Consensus  *torsim.Consensus
	TitleDB    *bittorrent.TitleDB
	// SampleOneIn builds Dsample as a deterministic 1-in-N sample
	// (default 25, the paper's 4%).
	SampleOneIn uint64
	// MaxStoredCensoredURLs caps the URL store used by keyword discovery
	// (default 500_000; censored traffic is ~1% so this is rarely hit).
	MaxStoredCensoredURLs int
	// MaxTokenEntries caps the allowed-token vocabulary (default 4M).
	MaxTokenEntries int
}

func (o *Options) defaults() {
	if o.Categories == nil {
		o.Categories = categorydb.PaperSeed()
	}
	if o.GeoDB == nil {
		o.GeoDB = geoip.SyriaEra()
	}
	if o.SampleOneIn == 0 {
		o.SampleOneIn = 25
	}
	if o.MaxStoredCensoredURLs == 0 {
		o.MaxStoredCensoredURLs = 500_000
	}
	if o.MaxTokenEntries == 0 {
		o.MaxTokenEntries = 4 << 20
	}
}

// DatasetID indexes the four datasets of Table 1.
type DatasetID int

// Dataset identifiers, in Table 1 order.
const (
	DFull DatasetID = iota
	DSample
	DUser
	DDenied
	numDatasets
)

// String names the dataset.
func (d DatasetID) String() string {
	switch d {
	case DFull:
		return "Full"
	case DSample:
		return "Sample"
	case DUser:
		return "User"
	case DDenied:
		return "Denied"
	}
	return "?"
}

// ClassCounts is one dataset's row group in Table 3.
type ClassCounts struct {
	Total       uint64
	ByException [logfmt.NumExceptions]uint64
	Proxied     uint64 // records answered from cache (any exception)
}

// Allowed returns the OBSERVED+no-exception count.
func (c *ClassCounts) Allowed() uint64 { return c.ByException[logfmt.ExNone] }

// Censored returns policy_denied + policy_redirect.
func (c *ClassCounts) Censored() uint64 {
	return c.ByException[logfmt.ExPolicyDenied] + c.ByException[logfmt.ExPolicyRedirect]
}

// Errors returns the network-error total.
func (c *ClassCounts) Errors() uint64 {
	var n uint64
	for ex, cnt := range c.ByException {
		if logfmt.ExceptionID(ex).IsError() {
			n += cnt
		}
	}
	return n
}

// Denied returns all non-allowed requests.
func (c *ClassCounts) Denied() uint64 { return c.Total - c.Allowed() }

func (c *ClassCounts) merge(o *ClassCounts) {
	c.Total += o.Total
	c.Proxied += o.Proxied
	for i := range c.ByException {
		c.ByException[i] += o.ByException[i]
	}
}

type userStat struct {
	Total    uint64
	Censored uint64
}

type subnetStat struct {
	Censored, Allowed, Proxied       uint64
	CensoredIPs, AllowedIPs, ProxIPs map[uint32]struct{}
}

func newSubnetStat() *subnetStat {
	return &subnetStat{
		CensoredIPs: map[uint32]struct{}{},
		AllowedIPs:  map[uint32]struct{}{},
		ProxIPs:     map[uint32]struct{}{},
	}
}

type triple struct{ Censored, Allowed, Proxied uint64 }

type pageStat struct {
	Censored, Allowed, Proxied uint64
	CustomCategory             bool // ever seen with the "Blocked sites" label
}

// Analyzer accumulates everything the result functions need in one pass.
// It is not safe for concurrent use; run one per pipeline worker and
// Merge.
type Analyzer struct {
	opt Options

	datasets [numDatasets]ClassCounts

	// Domains (registered) per class.
	domAllowed  *stats.Counter
	domCensored *stats.Counter
	domDenied   *stats.Counter // errors
	domProxied  *stats.Counter
	tldCensored *stats.Counter
	tldAllowed  *stats.Counter

	// Ports.
	portAllowed  map[uint16]uint64
	portCensored map[uint16]uint64

	// Time series (5-minute slots since epoch).
	slotAllowed  map[int64]uint64
	slotCensored map[int64]uint64

	// Per-proxy (index = SG-42..48 mapped to 0..6).
	proxyTotal        [logfmt.NumProxies]uint64
	proxyCensored     [logfmt.NumProxies]uint64
	proxySlotTotal    [logfmt.NumProxies]map[int64]uint64
	proxySlotCensored [logfmt.NumProxies]map[int64]uint64
	proxyCensDomains  [logfmt.NumProxies]map[string]uint64
	proxyLabels       [logfmt.NumProxies]map[string]uint64 // default category label sightings

	// Users (Duser window only).
	users map[string]*userStat

	// Censored categories (Fig 3 on Dsample; Table 9 uses discovery).
	catCensoredSample *stats.Counter
	catCensoredFull   *stats.Counter

	// Redirects (Table 7): full host -> count.
	redirectHosts *stats.Counter

	// Censored domains per hour (Table 5's peak-window breakdown).
	censHourDomains map[int64]map[string]uint64

	// policy_denied-only domain counts (discovery input; redirects are
	// handled by the custom-category analysis instead), plus host-level
	// counts: URL blacklists can target single hosts (messenger.live.com)
	// whose registered domain stays partly allowed.
	domCensoredDeny  *stats.Counter
	hostCensoredDeny *stats.Counter
	hostAllowed      *stats.Counter

	// Keyword discovery: allowed-URL token counts + stored censored URLs.
	tokAllowed   *stats.Counter
	tokProxied   *stats.Counter
	censoredURLs []censoredURL

	// IP-literal hosts (Table 11/12).
	countryCensored *stats.Counter
	countryAllowed  *stats.Counter
	subnets         map[string]*subnetStat

	// Social networks (Table 13) and Facebook internals (Tables 14/15).
	osn     map[string]*triple
	fbPages map[string]*pageStat
	fbPaths map[string]*triple // facebook.com path stats (plugins)
	fbCens  uint64             // censored requests on facebook.com domain

	// Tor (§7.1, Figs 8-9).
	torTotal, torHTTP, torOnion uint64
	torCensored, torErrors      uint64
	torCensoredByProxy          [logfmt.NumProxies]uint64
	torHourly                   map[int64]uint64
	torCensHourly               map[int64]uint64
	torSG44SlotCens             map[int64]uint64
	torCensoredIPs              map[uint32]struct{}
	torAllowedIPsByHour         map[int64]map[uint32]struct{}

	// Anonymizers (Fig 10).
	anonAllowed  *stats.Counter
	anonCensored *stats.Counter

	// HTTPS (§4).
	httpsTotal, httpsCensored, httpsCensoredIPHost uint64

	// BitTorrent (§7.3).
	btTotal, btCensored uint64
	btPeers             map[[20]byte]struct{}
	btHashes            map[[20]byte]struct{}
	btTrackers          *stats.Counter

	// Google cache (§7.4).
	gcTotal, gcCensored uint64
}

type censoredURL struct {
	Domain string
	URL    string
	Host   string
}

// NewAnalyzer builds an empty analyzer.
func NewAnalyzer(opt Options) *Analyzer {
	opt.defaults()
	a := &Analyzer{
		opt:                 opt,
		domAllowed:          stats.NewCounter(),
		domCensored:         stats.NewCounter(),
		domDenied:           stats.NewCounter(),
		domProxied:          stats.NewCounter(),
		tldCensored:         stats.NewCounter(),
		tldAllowed:          stats.NewCounter(),
		portAllowed:         map[uint16]uint64{},
		portCensored:        map[uint16]uint64{},
		slotAllowed:         map[int64]uint64{},
		slotCensored:        map[int64]uint64{},
		users:               map[string]*userStat{},
		catCensoredSample:   stats.NewCounter(),
		catCensoredFull:     stats.NewCounter(),
		redirectHosts:       stats.NewCounter(),
		censHourDomains:     map[int64]map[string]uint64{},
		domCensoredDeny:     stats.NewCounter(),
		hostCensoredDeny:    stats.NewCounter(),
		hostAllowed:         stats.NewCounter(),
		tokAllowed:          stats.NewCounter(),
		tokProxied:          stats.NewCounter(),
		countryCensored:     stats.NewCounter(),
		countryAllowed:      stats.NewCounter(),
		subnets:             map[string]*subnetStat{},
		osn:                 map[string]*triple{},
		fbPages:             map[string]*pageStat{},
		fbPaths:             map[string]*triple{},
		torHourly:           map[int64]uint64{},
		torCensHourly:       map[int64]uint64{},
		torSG44SlotCens:     map[int64]uint64{},
		torCensoredIPs:      map[uint32]struct{}{},
		torAllowedIPsByHour: map[int64]map[uint32]struct{}{},
		anonAllowed:         stats.NewCounter(),
		anonCensored:        stats.NewCounter(),
		btPeers:             map[[20]byte]struct{}{},
		btHashes:            map[[20]byte]struct{}{},
		btTrackers:          stats.NewCounter(),
	}
	for i := 0; i < logfmt.NumProxies; i++ {
		a.proxySlotTotal[i] = map[int64]uint64{}
		a.proxySlotCensored[i] = map[int64]uint64{}
		a.proxyCensDomains[i] = map[string]uint64{}
		a.proxyLabels[i] = map[string]uint64{}
	}
	for _, osn := range OSNWatchlist {
		a.osn[osn] = &triple{}
	}
	return a
}

// SlotSeconds matches the paper's 5-minute series granularity.
const SlotSeconds = 300

// OSNWatchlist is the §6 population: the top-25 social networks (Alexa,
// Nov 2013, as the paper selected) plus three Arabic-speaking-world ones.
var OSNWatchlist = []string{
	"facebook.com", "twitter.com", "linkedin.com", "pinterest.com",
	"plus.google.com", "tumblr.com", "instagram.com", "vk.com", "flickr.com",
	"myspace.com", "tagged.com", "ask.fm", "meetup.com", "meetme.com",
	"classmates.com", "xing.com", "renren.com", "weibo.com", "orkut.com",
	"badoo.com", "skyrock.com", "ning.com", "hi5.com", "last.fm",
	"livejournal.com", "netlog.com", "salamworld.com", "muslimup.com",
}

// Observe folds one record into the analyzer.
func (a *Analyzer) Observe(rec *logfmt.Record) {
	class := rec.Class()
	censored := class == logfmt.ClassCensored
	allowed := class == logfmt.ClassAllowed
	isProxied := rec.IsProxied()
	domain := urlx.RegisteredDomain(rec.Host)
	slot := rec.Time / SlotSeconds

	// --- Datasets (Tables 1 and 3) ---
	a.observeDataset(DFull, rec, isProxied)
	if a.inSample(rec) {
		a.observeDataset(DSample, rec, isProxied)
	}
	userKey := rec.UserKey()
	if userKey != "" {
		a.observeDataset(DUser, rec, isProxied)
	}
	if rec.IsDeniedAny() {
		a.observeDataset(DDenied, rec, isProxied)
	}

	// --- Domains, TLDs, ports, time series ---
	switch {
	case isProxied:
		a.domProxied.Add(domain)
	case censored:
		a.domCensored.Add(domain)
		a.tldCensored.Add(urlx.TLD(rec.Host))
		a.portCensored[rec.Port]++
		a.slotCensored[slot]++
		hour := rec.Time / 3600
		hd := a.censHourDomains[hour]
		if hd == nil {
			hd = map[string]uint64{}
			a.censHourDomains[hour] = hd
		}
		hd[domain]++
		if rec.Exception == logfmt.ExPolicyDenied {
			a.domCensoredDeny.Add(domain)
			a.hostCensoredDeny.Add(rec.Host)
		}
	case allowed:
		a.domAllowed.Add(domain)
		a.hostAllowed.Add(rec.Host)
		a.tldAllowed.Add(urlx.TLD(rec.Host))
		a.portAllowed[rec.Port]++
		a.slotAllowed[slot]++
	default:
		a.domDenied.Add(domain)
	}

	// --- Per proxy ---
	if sg := rec.Proxy(); sg >= logfmt.FirstProxy && sg <= logfmt.LastProxy {
		pi := sg - logfmt.FirstProxy
		a.proxyTotal[pi]++
		a.proxySlotTotal[pi][slot]++
		if censored {
			a.proxyCensored[pi]++
			a.proxySlotCensored[pi][slot]++
			a.proxyCensDomains[pi][domain]++
		}
		if rec.Categories != "" && !strings.Contains(rec.Categories, "Blocked") {
			a.proxyLabels[pi][rec.Categories]++
		}
	}

	// --- Users (Fig 4) ---
	if userKey != "" {
		us := a.users[userKey]
		if us == nil {
			us = &userStat{}
			a.users[userKey] = us
		}
		us.Total++
		if censored {
			us.Censored++
		}
	}

	// --- Categories of censored traffic (Fig 3) ---
	if censored {
		cat := string(a.opt.Categories.Classify(rec.Host))
		if urlx.IsIPv4(rec.Host) {
			cat = "Content Server" // CDNs/raw hosts; the paper's top bucket
		}
		a.catCensoredFull.Add(cat)
		if a.inSample(rec) {
			a.catCensoredSample.Add(cat)
		}
	}

	// --- Redirects (Table 7) ---
	if rec.Exception == logfmt.ExPolicyRedirect {
		a.redirectHosts.Add(rec.Host)
	}

	// --- Discovery inputs (§5.4) ---
	if allowed && !isProxied {
		a.tokenize(rec, func(tok string) {
			if a.tokAllowed.Len() < a.opt.MaxTokenEntries || a.tokAllowed.Count(tok) > 0 {
				a.tokAllowed.Add(tok)
			}
		})
	}
	if isProxied {
		a.tokenize(rec, func(tok string) { a.tokProxied.Add(tok) })
	}
	if rec.Exception == logfmt.ExPolicyDenied && len(a.censoredURLs) < a.opt.MaxStoredCensoredURLs {
		a.censoredURLs = append(a.censoredURLs, censoredURL{
			Domain: domain, URL: rec.URL(), Host: rec.Host,
		})
	}

	// --- IP-literal hosts (Tables 11/12) ---
	if ip, isIP := urlx.ParseIPv4(rec.Host); isIP {
		country := a.opt.GeoDB.Country(ip)
		if country != "" {
			if censored {
				a.countryCensored.Add(country)
			} else if allowed {
				a.countryAllowed.Add(country)
			}
		}
		a.observeSubnet(ip, censored, allowed, isProxied)
	}

	// --- Social networks (Table 13) ---
	if ts, ok := a.osn[domain]; ok {
		a.bumpTriple(ts, censored, allowed, isProxied)
	}
	if domain == "facebook.com" {
		a.observeFacebook(rec, censored, allowed, isProxied)
	}

	// --- Tor (§7.1) ---
	if a.opt.Consensus != nil {
		a.observeTor(rec, censored, class)
	}

	// --- Anonymizers (Fig 10) ---
	if a.opt.Categories.IsAnonymizer(rec.Host) {
		if censored {
			a.anonCensored.Add(rec.Host)
		} else if allowed {
			a.anonAllowed.Add(rec.Host)
		}
	}

	// --- HTTPS (§4) ---
	if rec.Method == "CONNECT" || rec.Scheme == "https" || rec.Scheme == "tcp" {
		a.httpsTotal++
		if censored {
			a.httpsCensored++
			if urlx.IsIPv4(rec.Host) {
				a.httpsCensoredIPHost++
			}
		}
	}

	// --- BitTorrent (§7.3) ---
	if bittorrent.IsAnnouncePath(rec.Path) {
		if ann, err := bittorrent.ParseAnnounce(rec.Path, rec.Query); err == nil {
			a.btTotal++
			a.btPeers[ann.PeerID] = struct{}{}
			a.btHashes[ann.InfoHash] = struct{}{}
			a.btTrackers.Add(rec.Host)
			if censored {
				a.btCensored++
			}
		}
	}

	// --- Google cache (§7.4) ---
	if rec.Host == "webcache.googleusercontent.com" {
		a.gcTotal++
		if censored {
			a.gcCensored++
		}
	}
}

func (a *Analyzer) bumpTriple(ts *triple, censored, allowed, isProxied bool) {
	switch {
	case isProxied:
		ts.Proxied++
	case censored:
		ts.Censored++
	case allowed:
		ts.Allowed++
	}
}

func (a *Analyzer) observeDataset(id DatasetID, rec *logfmt.Record, isProxied bool) {
	c := &a.datasets[id]
	c.Total++
	c.ByException[rec.Exception]++
	if isProxied {
		c.Proxied++
	}
}

// inSample implements the deterministic 1-in-N Dsample membership.
func (a *Analyzer) inSample(rec *logfmt.Record) bool {
	h := stats.Hash64(rec.Host) ^ uint64(rec.Time)*0x9e3779b97f4a7c15 ^ uint64(len(rec.Path))
	return h%a.opt.SampleOneIn == 0
}

func (a *Analyzer) observeSubnet(ip uint32, censored, allowed, isProxied bool) {
	r, ok := a.opt.GeoDB.Lookup(ip)
	if !ok || r.Country != "IL" {
		return
	}
	st := a.subnets[r.Subnet]
	if st == nil {
		st = newSubnetStat()
		a.subnets[r.Subnet] = st
	}
	switch {
	case isProxied:
		st.Proxied++
		st.ProxIPs[ip] = struct{}{}
	case censored:
		st.Censored++
		st.CensoredIPs[ip] = struct{}{}
	case allowed:
		st.Allowed++
		st.AllowedIPs[ip] = struct{}{}
	}
}

func (a *Analyzer) observeFacebook(rec *logfmt.Record, censored, allowed, isProxied bool) {
	if censored {
		a.fbCens++
	}
	path := rec.Path
	if path == "" || path == "/" {
		return
	}
	// Multi-segment paths and code-ish extensions are platform elements
	// (plugins etc.); other single-segment paths are pages. Page names may
	// contain dots (syria.news.F.N.N), so the extension alone is not a
	// reliable discriminator.
	if strings.Contains(path[1:], "/") || isCodeExt(rec.Ext) {
		ts := a.fbPaths[path]
		if ts == nil {
			ts = &triple{}
			a.fbPaths[path] = ts
		}
		a.bumpTriple(ts, censored, allowed, isProxied)
		return
	}
	ps := a.fbPages[path]
	if ps == nil {
		ps = &pageStat{}
		a.fbPages[path] = ps
	}
	switch {
	case isProxied:
		ps.Proxied++
	case censored:
		ps.Censored++
	case allowed:
		ps.Allowed++
	}
	if strings.Contains(rec.Categories, "Blocked sites") {
		ps.CustomCategory = true
	}
}

// isCodeExt reports whether ext names a web-platform resource type.
func isCodeExt(ext string) bool {
	switch ext {
	case "php", "js", "css", "cgi", "aspx", "asp", "dll", "gif", "png", "jpg", "html", "htm", "xml", "json":
		return true
	}
	return false
}

func (a *Analyzer) observeTor(rec *logfmt.Record, censored bool, class logfmt.Class) {
	tc := a.opt.Consensus.ClassifyRequest(rec.Host, rec.Port, rec.Path)
	if tc == torsim.NotTor {
		return
	}
	a.torTotal++
	hour := rec.Time / 3600
	a.torHourly[hour]++
	switch tc {
	case torsim.TorHTTP:
		a.torHTTP++
	case torsim.TorOnion:
		a.torOnion++
	}
	ip, _ := urlx.ParseIPv4(rec.Host)
	switch {
	case censored:
		a.torCensored++
		a.torCensHourly[hour]++
		a.torCensoredIPs[ip] = struct{}{}
		if sg := rec.Proxy(); sg >= logfmt.FirstProxy && sg <= logfmt.LastProxy {
			a.torCensoredByProxy[sg-logfmt.FirstProxy]++
			if sg == 44 {
				a.torSG44SlotCens[rec.Time/SlotSeconds]++
			}
		}
	case class == logfmt.ClassError:
		a.torErrors++
	default:
		set := a.torAllowedIPsByHour[hour]
		if set == nil {
			set = map[uint32]struct{}{}
			a.torAllowedIPsByHour[hour] = set
		}
		set[ip] = struct{}{}
	}
}

// tokenize yields the URL's candidate keyword tokens: maximal runs of
// ASCII letters (length 4–24) from host+path+query, lowercased. Digits
// break tokens, which keeps session ids and hashes out of the vocabulary.
func (a *Analyzer) tokenize(rec *logfmt.Record, yield func(string)) {
	emit := func(s string) {
		start := -1
		for i := 0; i <= len(s); i++ {
			var c byte
			if i < len(s) {
				c = s[i]
			}
			isAlpha := c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
			if isAlpha {
				if start < 0 {
					start = i
				}
				continue
			}
			if start >= 0 {
				if n := i - start; n >= 4 && n <= 24 {
					yield(strings.ToLower(s[start:i]))
				}
				start = -1
			}
		}
	}
	emit(rec.Host)
	emit(rec.Path)
	emit(rec.Query)
}

// TokenizeURL exposes the discovery tokenizer for tests and tools.
func TokenizeURL(host, path, query string) []string {
	rec := logfmt.Record{Host: host, Path: path, Query: query}
	var out []string
	(&Analyzer{}).tokenize(&rec, func(tok string) { out = append(out, tok) })
	return out
}

// Merge folds b into a. Both must have been built with equivalent Options.
func (a *Analyzer) Merge(b *Analyzer) {
	for i := range a.datasets {
		a.datasets[i].merge(&b.datasets[i])
	}
	a.domAllowed.Merge(b.domAllowed)
	a.domCensored.Merge(b.domCensored)
	a.domDenied.Merge(b.domDenied)
	a.domProxied.Merge(b.domProxied)
	a.tldCensored.Merge(b.tldCensored)
	a.tldAllowed.Merge(b.tldAllowed)
	mergeU16(a.portAllowed, b.portAllowed)
	mergeU16(a.portCensored, b.portCensored)
	mergeI64(a.slotAllowed, b.slotAllowed)
	mergeI64(a.slotCensored, b.slotCensored)
	for i := 0; i < logfmt.NumProxies; i++ {
		a.proxyTotal[i] += b.proxyTotal[i]
		a.proxyCensored[i] += b.proxyCensored[i]
		mergeI64(a.proxySlotTotal[i], b.proxySlotTotal[i])
		mergeI64(a.proxySlotCensored[i], b.proxySlotCensored[i])
		mergeStr(a.proxyCensDomains[i], b.proxyCensDomains[i])
		mergeStr(a.proxyLabels[i], b.proxyLabels[i])
		a.torCensoredByProxy[i] += b.torCensoredByProxy[i]
	}
	for k, v := range b.users {
		if mine, ok := a.users[k]; ok {
			mine.Total += v.Total
			mine.Censored += v.Censored
		} else {
			cp := *v
			a.users[k] = &cp
		}
	}
	a.catCensoredSample.Merge(b.catCensoredSample)
	a.catCensoredFull.Merge(b.catCensoredFull)
	a.redirectHosts.Merge(b.redirectHosts)
	for hour, hd := range b.censHourDomains {
		mine := a.censHourDomains[hour]
		if mine == nil {
			mine = map[string]uint64{}
			a.censHourDomains[hour] = mine
		}
		mergeStr(mine, hd)
	}
	a.domCensoredDeny.Merge(b.domCensoredDeny)
	a.hostCensoredDeny.Merge(b.hostCensoredDeny)
	a.hostAllowed.Merge(b.hostAllowed)
	a.tokAllowed.Merge(b.tokAllowed)
	a.tokProxied.Merge(b.tokProxied)
	a.censoredURLs = append(a.censoredURLs, b.censoredURLs...)
	if len(a.censoredURLs) > a.opt.MaxStoredCensoredURLs {
		a.censoredURLs = a.censoredURLs[:a.opt.MaxStoredCensoredURLs]
	}
	a.countryCensored.Merge(b.countryCensored)
	a.countryAllowed.Merge(b.countryAllowed)
	for k, v := range b.subnets {
		st := a.subnets[k]
		if st == nil {
			st = newSubnetStat()
			a.subnets[k] = st
		}
		st.Censored += v.Censored
		st.Allowed += v.Allowed
		st.Proxied += v.Proxied
		for ip := range v.CensoredIPs {
			st.CensoredIPs[ip] = struct{}{}
		}
		for ip := range v.AllowedIPs {
			st.AllowedIPs[ip] = struct{}{}
		}
		for ip := range v.ProxIPs {
			st.ProxIPs[ip] = struct{}{}
		}
	}
	for k, v := range b.osn {
		ts := a.osn[k]
		if ts == nil {
			ts = &triple{}
			a.osn[k] = ts
		}
		ts.Censored += v.Censored
		ts.Allowed += v.Allowed
		ts.Proxied += v.Proxied
	}
	for k, v := range b.fbPages {
		ps := a.fbPages[k]
		if ps == nil {
			ps = &pageStat{}
			a.fbPages[k] = ps
		}
		ps.Censored += v.Censored
		ps.Allowed += v.Allowed
		ps.Proxied += v.Proxied
		ps.CustomCategory = ps.CustomCategory || v.CustomCategory
	}
	for k, v := range b.fbPaths {
		ts := a.fbPaths[k]
		if ts == nil {
			ts = &triple{}
			a.fbPaths[k] = ts
		}
		ts.Censored += v.Censored
		ts.Allowed += v.Allowed
		ts.Proxied += v.Proxied
	}
	a.fbCens += b.fbCens
	a.torTotal += b.torTotal
	a.torHTTP += b.torHTTP
	a.torOnion += b.torOnion
	a.torCensored += b.torCensored
	a.torErrors += b.torErrors
	mergeI64(a.torHourly, b.torHourly)
	mergeI64(a.torCensHourly, b.torCensHourly)
	mergeI64(a.torSG44SlotCens, b.torSG44SlotCens)
	for ip := range b.torCensoredIPs {
		a.torCensoredIPs[ip] = struct{}{}
	}
	for hour, set := range b.torAllowedIPsByHour {
		mine := a.torAllowedIPsByHour[hour]
		if mine == nil {
			mine = map[uint32]struct{}{}
			a.torAllowedIPsByHour[hour] = mine
		}
		for ip := range set {
			mine[ip] = struct{}{}
		}
	}
	a.anonAllowed.Merge(b.anonAllowed)
	a.anonCensored.Merge(b.anonCensored)
	a.httpsTotal += b.httpsTotal
	a.httpsCensored += b.httpsCensored
	a.httpsCensoredIPHost += b.httpsCensoredIPHost
	a.btTotal += b.btTotal
	a.btCensored += b.btCensored
	for k := range b.btPeers {
		a.btPeers[k] = struct{}{}
	}
	for k := range b.btHashes {
		a.btHashes[k] = struct{}{}
	}
	a.btTrackers.Merge(b.btTrackers)
	a.gcTotal += b.gcTotal
	a.gcCensored += b.gcCensored
}

func mergeU16(dst, src map[uint16]uint64) {
	for k, v := range src {
		dst[k] += v
	}
}

func mergeI64(dst, src map[int64]uint64) {
	for k, v := range src {
		dst[k] += v
	}
}

func mergeStr(dst, src map[string]uint64) {
	for k, v := range src {
		dst[k] += v
	}
}
