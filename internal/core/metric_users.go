package core

import (
	"syriafilter/internal/logfmt"
	"syriafilter/internal/statecodec"
)

// usersMetric accumulates per-user totals over the Duser window: Figure 4
// and the §4 headline user numbers.
type usersMetric struct {
	cx    *recordCtx
	users map[string]*userStat
}

func newUsersMetric(e *Engine) *usersMetric {
	return &usersMetric{cx: &e.cx, users: map[string]*userStat{}}
}

func (m *usersMetric) Name() string { return "users" }

func (m *usersMetric) Observe(rec *logfmt.Record) {
	key := m.cx.UserKey()
	if key == "" {
		return
	}
	us := m.users[key]
	if us == nil {
		us = &userStat{}
		m.users[key] = us
	}
	us.Total++
	if m.cx.censored {
		us.Censored++
	}
}

func (m *usersMetric) Merge(other Metric) {
	o := other.(*usersMetric)
	for k, v := range o.users {
		if mine, ok := m.users[k]; ok {
			mine.Total += v.Total
			mine.Censored += v.Censored
		} else {
			cp := *v
			m.users[k] = &cp
		}
	}
}

func (m *usersMetric) EncodeState(w *statecodec.Writer) {
	w.Byte(1)
	w.Uvarint(uint64(len(m.users)))
	for _, k := range sortedStrKeys(m.users) {
		us := m.users[k]
		w.StringRef(k)
		w.Uvarint(us.Total)
		w.Uvarint(us.Censored)
	}
}

func (m *usersMetric) DecodeState(r *statecodec.Reader) {
	checkVersion(r, "users", 1)
	n := r.Count()
	m.users = make(map[string]*userStat, n)
	for i := 0; i < n && r.Err() == nil; i++ {
		k := r.StringRef()
		m.users[k] = &userStat{Total: r.Uvarint(), Censored: r.Uvarint()}
	}
}
