package core

import (
	"syriafilter/internal/logfmt"
	"syriafilter/internal/statecodec"
	"syriafilter/internal/stats"
)

// usersMetric accumulates per-user totals over the Duser window: Figure 4
// and the §4 headline user numbers.
//
// In sketch mode the per-user map is replaced by two HyperLogLogs (distinct
// users / distinct censored users) and two Space-Saving sketches (per-user
// total and censored request counts), so memory stays bounded no matter how
// many distinct user keys the corpus holds. The headline counts become HLL
// estimates and the Fig 4 histogram/CDFs are computed over the retained
// top-k heavy users only.
type usersMetric struct {
	cx *recordCtx

	// Exact mode.
	users map[string]*userStat

	// Sketch mode.
	sketched    bool
	hllTotal    *stats.HyperLogLog
	hllCensored *stats.HyperLogLog
	topTotal    *stats.TopK
	topCensored *stats.TopK
}

func newUsersMetric(e *Engine) *usersMetric {
	m := &usersMetric{cx: &e.cx}
	if e.Sketched() {
		so := e.opt.Sketches
		m.sketched = true
		m.hllTotal = stats.NewHyperLogLog(so.Precision)
		m.hllCensored = stats.NewHyperLogLog(so.Precision)
		m.topTotal = stats.NewTopK(so.TopK)
		m.topCensored = stats.NewTopK(so.TopK)
	} else {
		m.users = map[string]*userStat{}
	}
	return m
}

func (m *usersMetric) Name() string { return "users" }

func (m *usersMetric) Observe(rec *logfmt.Record) {
	key := m.cx.UserKey()
	if key == "" {
		return
	}
	if m.sketched {
		m.hllTotal.Add(key)
		m.topTotal.Add(key)
		if m.cx.censored {
			m.hllCensored.Add(key)
			m.topCensored.Add(key)
		}
		return
	}
	us := m.users[key]
	if us == nil {
		us = &userStat{}
		m.users[key] = us
	}
	us.Total++
	if m.cx.censored {
		us.Censored++
	}
}

// observeN replays an aggregated per-user record (state restore path).
func (m *usersMetric) observeN(key string, total, censored uint64) {
	if m.sketched {
		m.hllTotal.Add(key)
		m.topTotal.AddN(key, total)
		if censored > 0 {
			m.hllCensored.Add(key)
			m.topCensored.AddN(key, censored)
		}
		return
	}
	us := m.users[key]
	if us == nil {
		us = &userStat{}
		m.users[key] = us
	}
	us.Total += total
	us.Censored += censored
}

func (m *usersMetric) Merge(other Metric) {
	o := other.(*usersMetric)
	if m.sketched {
		m.hllTotal.Merge(o.hllTotal)
		m.hllCensored.Merge(o.hllCensored)
		m.topTotal.Merge(o.topTotal)
		m.topCensored.Merge(o.topCensored)
		return
	}
	for k, v := range o.users {
		if mine, ok := m.users[k]; ok {
			mine.Total += v.Total
			mine.Censored += v.Censored
		} else {
			cp := *v
			m.users[k] = &cp
		}
	}
}

func (m *usersMetric) sketchSizes() SketchSizes {
	if !m.sketched {
		return SketchSizes{}
	}
	return SketchSizes{
		TopKEntries:  m.topTotal.Len() + m.topCensored.Len(),
		TopKCapacity: m.topTotal.Capacity() + m.topCensored.Capacity(),
		HLLs:         2,
	}
}

// report computes the Fig 4 / §4 user view in the metric's counting mode.
func (m *usersMetric) report() UserReport {
	rep := UserReport{CensoredPerUser: make([]uint64, 16)}
	var actC, actO []float64
	if m.sketched {
		rep.TotalUsers = int(m.hllTotal.Estimate())
		rep.CensoredUsers = int(m.hllCensored.Estimate())
		// Histogram and activity CDFs over the retained heavy users: a
		// user is "censored" when the censored sketch still tracks it.
		m.topTotal.EachEntry(func(key string, total, _ uint64) {
			if cens, _, ok := m.topCensored.Estimate(key); ok {
				bucket := int(cens) - 1
				if bucket >= len(rep.CensoredPerUser) {
					bucket = len(rep.CensoredPerUser) - 1
				}
				rep.CensoredPerUser[bucket]++
				actC = append(actC, float64(total))
			} else {
				actO = append(actO, float64(total))
			}
		})
	} else {
		for _, us := range m.users {
			rep.TotalUsers++
			if us.Censored > 0 {
				rep.CensoredUsers++
				bucket := int(us.Censored) - 1
				if bucket >= len(rep.CensoredPerUser) {
					bucket = len(rep.CensoredPerUser) - 1
				}
				rep.CensoredPerUser[bucket]++
				actC = append(actC, float64(us.Total))
			} else {
				actO = append(actO, float64(us.Total))
			}
		}
	}
	rep.ActivityCensored = stats.NewCDF(actC)
	rep.ActivityOthers = stats.NewCDF(actO)
	rep.ShareActiveCensored = 1 - rep.ActivityCensored.P(100)
	rep.ShareActiveOthers = 1 - rep.ActivityOthers.P(100)
	rep.MeanActivityCensored = mean(actC)
	rep.MeanActivityOthers = mean(actO)
	return rep
}

func (m *usersMetric) EncodeState(w *statecodec.Writer) {
	if m.sketched {
		w.Byte(2)
		encHLL(w, m.hllTotal)
		encHLL(w, m.hllCensored)
		encTopK(w, m.topTotal)
		encTopK(w, m.topCensored)
		return
	}
	w.Byte(1)
	w.Uvarint(uint64(len(m.users)))
	for _, k := range sortedStrKeys(m.users) {
		us := m.users[k]
		w.StringRef(k)
		w.Uvarint(us.Total)
		w.Uvarint(us.Censored)
	}
}

func (m *usersMetric) DecodeState(r *statecodec.Reader) {
	v := checkVersion(r, "users", 2)
	if v == 2 {
		if !m.sketched {
			r.Failf("core: checkpoint carries sketch state; rebuild the engine with sketches enabled (-sketch)")
			return
		}
		m.hllTotal = decHLL(r)
		m.hllCensored = decHLL(r)
		m.topTotal = decTopK(r)
		m.topCensored = decTopK(r)
		return
	}
	// v1 (exact) state: load verbatim, or replay into the sketches when
	// this engine runs sketched — an exact checkpoint is always a valid
	// sketch input.
	n := r.Count()
	if !m.sketched {
		m.users = make(map[string]*userStat, n)
	}
	for i := 0; i < n && r.Err() == nil; i++ {
		k := r.StringRef()
		total := r.Uvarint()
		censored := r.Uvarint()
		if r.Err() != nil {
			return
		}
		m.observeN(k, total, censored)
	}
}
