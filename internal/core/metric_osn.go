package core

import (
	"syriafilter/internal/logfmt"
	"syriafilter/internal/statecodec"
)

// osnMetric accumulates censored/allowed/proxied counts across the §6
// social-network watchlist (Table 13). The map is pre-seeded with the
// whole watchlist so never-seen OSNs still report zero rows.
type osnMetric struct {
	cx  *recordCtx
	osn map[string]*triple
}

func newOSNMetric(e *Engine) *osnMetric {
	m := &osnMetric{cx: &e.cx, osn: map[string]*triple{}}
	for _, osn := range OSNWatchlist {
		m.osn[osn] = &triple{}
	}
	return m
}

func (m *osnMetric) Name() string { return "osn" }

func (m *osnMetric) Observe(rec *logfmt.Record) {
	if ts, ok := m.osn[m.cx.Domain()]; ok {
		bumpTriple(ts, m.cx.censored, m.cx.allowed, m.cx.proxied)
	}
}

func (m *osnMetric) Merge(other Metric) {
	o := other.(*osnMetric)
	for k, v := range o.osn {
		ts := m.osn[k]
		if ts == nil {
			ts = &triple{}
			m.osn[k] = ts
		}
		ts.Censored += v.Censored
		ts.Allowed += v.Allowed
		ts.Proxied += v.Proxied
	}
}

func (m *osnMetric) EncodeState(w *statecodec.Writer) {
	w.Byte(1)
	encTripleMap(w, m.osn)
}

func (m *osnMetric) DecodeState(r *statecodec.Reader) {
	checkVersion(r, "osn", 1)
	m.osn = decTripleMap(r)
}
