package core

import (
	"math"
	"testing"

	"syriafilter/internal/logfmt"
	"syriafilter/internal/stats"
	"syriafilter/internal/urlx"
)

// §3.3 of the paper justifies working on the 4% sample Dsample with a
// confidence-interval argument: at the sample's size, any proportion
// measured on the sample is within a tight interval of the full-corpus
// proportion. Validate that claim on our corpus: for every traffic class,
// the Dsample share must fall inside the 99% Wald interval implied by the
// sample size (with a small slack because our sampling is deterministic
// hashing rather than i.i.d. draws).
func TestSampleProportionsWithinCI(t *testing.T) {
	f := corpus(t)
	full := f.analyzer.Dataset(DFull)
	sample := f.analyzer.Dataset(DSample)
	if sample.Total == 0 {
		t.Fatal("empty sample")
	}

	classes := []struct {
		name string
		full uint64
		samp uint64
	}{
		{"allowed", full.Allowed(), sample.Allowed()},
		{"censored", full.Censored(), sample.Censored()},
		{"errors", full.Errors(), sample.Errors()},
		{"tcp_error", full.ByException[logfmt.ExTCPError], sample.ByException[logfmt.ExTCPError]},
		{"internal_error", full.ByException[logfmt.ExInternalError], sample.ByException[logfmt.ExInternalError]},
	}
	for _, c := range classes {
		pFull := float64(c.full) / float64(full.Total)
		iv, err := stats.ProportionCI(c.samp, sample.Total, 0.99)
		if err != nil {
			t.Fatal(err)
		}
		// Allow 3x the half-width as slack for the deterministic sampler.
		half := (iv.Hi - iv.Lo) / 2
		if math.Abs(iv.P-pFull) > 3*half+0.002 {
			t.Errorf("%s: sample %.5f vs full %.5f exceeds CI half-width %.5f",
				c.name, iv.P, pFull, half)
		}
	}
}

// The §3.3 numerical claim itself: at the paper's sample size (n = 32.3M)
// and its observed proportions (e.g. allowed = 93.28%), the 95% interval
// half-width is at most 1e-4. (At worst-case p = 0.5 the half-width is
// 1.7e-4; the paper's claim is about the proportions it reports.)
func TestPaperSampleSizeClaim(t *testing.T) {
	const n = 32_310_958
	for _, p := range []float64{0.9328, 0.0088, 0.0625} { // Table 3's Dsample shares
		iv, err := stats.ProportionCI(uint64(p*n), n, 0.95)
		if err != nil {
			t.Fatal(err)
		}
		if half := (iv.Hi - iv.Lo) / 2; half > 1.01e-4 {
			t.Errorf("half-width at p=%v is %v, paper claims <= 1e-4", p, half)
		}
	}
}

// Top-domain rankings agree between sample-scale corpora and the full
// corpus for the heavy hitters: the property that lets the paper use
// Dsample for summary statistics.
func TestSamplePreservesHeavyHitters(t *testing.T) {
	f := corpus(t)
	// Recompute a sampled top-domains from the raw records.
	sampleCensored := stats.NewCounter()
	an := f.analyzer
	for i := range f.records {
		rec := &f.records[i]
		if an.inSample(rec) && rec.Class() == logfmt.ClassCensored && !rec.IsProxied() {
			sampleCensored.Add(hostDomain(rec))
		}
	}
	_, fullTop := an.TopDomains(3)
	sampleTop := sampleCensored.Top(3)
	if len(sampleTop) < 3 {
		t.Skip("sample too small for top-3 comparison at this corpus size")
	}
	fullSet := map[string]bool{}
	for _, r := range fullTop {
		fullSet[r.Domain] = true
	}
	agree := 0
	for _, e := range sampleTop {
		if fullSet[e.Key] {
			agree++
		}
	}
	if agree < 2 {
		t.Errorf("sample top-3 %v disagrees with full top-3 %v", sampleTop, fullTop)
	}
}

func hostDomain(rec *logfmt.Record) string {
	// mirror the analyzer's registered-domain keying
	return urlx.RegisteredDomain(rec.Host)
}
