package core

import (
	"fmt"
	"sort"
)

// experimentModules declares, for every experiment id of the paper's
// evaluation (the ids cmd/censorlyzer accepts), exactly the metric
// modules its result functions read. This is the subset-selection table:
// producing one table pays only for that table's modules.
var experimentModules = map[string][]string{
	"table1":  {"datasets"},
	"table3":  {"datasets"},
	"table4":  {"domains"},
	"table5":  {"timeseries"},
	"table6":  {"proxies"},
	"table7":  {"redirects"},
	"table8":  {"domains", "tokens"},
	"table9":  {"domains", "tokens"},
	"table10": {"domains", "tokens"},
	"table11": {"countries"},
	"table12": {"subnets"},
	"table13": {"osn"},
	"table14": {"facebook"},
	"table15": {"facebook"},
	"fig1":    {"ports"},
	"fig2":    {"domains"},
	"fig3":    {"categories"},
	"fig4":    {"users"},
	"fig5":    {"timeseries"},
	"fig6":    {"timeseries"},
	"fig7":    {"proxies"},
	"fig8":    {"tor"},
	"fig9":    {"tor"},
	"fig10":   {"anonymizers"},
	"https":   {"https"},
	// bt resolves titles against the discovered keyword blacklist, so it
	// needs the discovery inputs on top of the announce counters.
	"bt":          {"bittorrent", "domains", "tokens"},
	"gcache":      {"gcache"},
	"probing":     {"datasets", "domains", "tokens"},
	"groundtruth": {"domains", "tokens"},
}

// Experiments returns every known experiment id, sorted.
func Experiments() []string {
	out := make([]string, 0, len(experimentModules))
	for id := range experimentModules {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// ModulesFor returns the union of metric modules needed by the named
// experiments, in canonical registry order. Unknown ids are an error.
func ModulesFor(ids ...string) ([]string, error) {
	want := map[string]bool{}
	for _, id := range ids {
		mods, ok := experimentModules[id]
		if !ok {
			return nil, fmt.Errorf("core: unknown experiment id %q (known: %v)", id, Experiments())
		}
		for _, m := range mods {
			want[m] = true
		}
	}
	out := make([]string, 0, len(want))
	for _, d := range moduleRegistry {
		if want[d.name] {
			out = append(out, d.name)
		}
	}
	return out, nil
}
