package core

import (
	"sort"

	"syriafilter/internal/statecodec"
	"syriafilter/internal/stats"
)

// SketchOptions switches the four cardinality-heavy modules (users,
// domains, subnets, tokens) from exact maps to bounded-memory sketches:
// HyperLogLog for distinct counts and Space-Saving top-k for frequency
// tables. With sketches enabled the engine's memory no longer grows with
// the key space — the trade is that those modules' results become
// estimates (marked approximate in rendered docs) while every other
// module stays byte-identical to exact mode.
type SketchOptions struct {
	// Enabled turns sketch mode on.
	Enabled bool
	// Precision is the HyperLogLog precision p (2^p registers,
	// ~1.04/sqrt(2^p) standard error). Default 12 (~1.6%).
	Precision uint8
	// TopK is the Space-Saving capacity per frequency table. Default 4096.
	TopK int
}

// DefaultSketchPrecision and DefaultSketchTopK are the -sketch defaults.
const (
	DefaultSketchPrecision = 12
	DefaultSketchTopK      = 4096
)

func (s *SketchOptions) defaults() {
	if !s.Enabled {
		return
	}
	if s.Precision == 0 {
		s.Precision = DefaultSketchPrecision
	}
	if s.TopK == 0 {
		s.TopK = DefaultSketchTopK
	}
}

// WithSketches returns a copy of the options with sketch mode enabled at
// the given HLL precision and top-k capacity (0 selects the defaults).
func (o Options) WithSketches(precision uint8, k int) Options {
	o.Sketches = SketchOptions{Enabled: true, Precision: precision, TopK: k}
	return o
}

// Sketched reports whether this engine runs the cardinality modules on
// sketches instead of exact maps.
func (e *Engine) Sketched() bool { return e.opt.Sketches.Enabled }

// SketchedModules lists the modules whose results become estimates in
// sketch mode.
var SketchedModules = []string{"users", "domains", "subnets", "tokens"}

// UsesSketchedModules reports whether the named experiment reads any
// module that sketch mode approximates.
func UsesSketchedModules(id string) bool {
	for _, m := range experimentModules[id] {
		for _, s := range SketchedModules {
			if m == s {
				return true
			}
		}
	}
	return false
}

// SketchSizes summarizes one module's live sketch footprint for the
// observability layer: retained Space-Saving entries vs. capacity, and
// the number of HyperLogLog sketches (each 2^precision registers).
type SketchSizes struct {
	TopKEntries  int
	TopKCapacity int
	HLLs         int
}

func (s *SketchSizes) add(o SketchSizes) {
	s.TopKEntries += o.TopKEntries
	s.TopKCapacity += o.TopKCapacity
	s.HLLs += o.HLLs
}

// sketchSizer is implemented by the sketchable modules so SketchStats
// can aggregate without knowing each module's layout.
type sketchSizer interface {
	sketchSizes() SketchSizes
}

// SketchStats reports the live sketch footprint per module. It returns
// nil when the engine runs exact (nothing is sketched). The caller owns
// the map; internal/serve samples it on every /metrics scrape against
// the current snapshot engine.
func (e *Engine) SketchStats() map[string]SketchSizes {
	if !e.Sketched() {
		return nil
	}
	out := map[string]SketchSizes{}
	for _, name := range e.Metrics() {
		if s, ok := e.Metric(name).(sketchSizer); ok {
			out[name] = s.sketchSizes()
		}
	}
	return out
}

// kcounterSizes reports a kcounter's sketch footprint (zero for exact).
func kcounterSizes(c kcounter) SketchSizes {
	if sc, ok := c.(*sketchCounter); ok {
		return SketchSizes{TopKEntries: sc.topk.Len(), TopKCapacity: sc.topk.Capacity(), HLLs: 1}
	}
	return SketchSizes{}
}

// kcounter is the counting abstraction behind the sketchable frequency
// tables: an exact map-backed stats.Counter, or a bounded Space-Saving
// top-k paired with a HyperLogLog for the distinct count. Observe paths
// write through the interface; result functions read estimates through
// it without knowing the mode.
type kcounter interface {
	Add(key string)
	AddN(key string, n uint64)
	// Count returns the key's exact count, or the sketch estimate
	// (0 when the sketch no longer tracks the key).
	Count(key string) uint64
	Total() uint64
	// Distinct returns the number of distinct keys (HLL estimate in
	// sketch mode).
	Distinct() uint64
	Top(k int) []stats.Entry
	// Each visits every tracked (key, count) pair — all keys exactly, or
	// the sketch's retained top-k — in unspecified order.
	Each(fn func(key string, n uint64))
	Merge(other kcounter)
}

// newCounter builds the engine-appropriate kcounter.
func (e *Engine) newCounter() kcounter {
	if e.opt.Sketches.Enabled {
		return newSketchCounter(e.opt.Sketches)
	}
	return exactCounter{stats.NewCounter()}
}

// exactCounter adapts *stats.Counter to kcounter.
type exactCounter struct {
	*stats.Counter
}

func (c exactCounter) Distinct() uint64     { return uint64(c.Len()) }
func (c exactCounter) Merge(other kcounter) { c.Counter.Merge(other.(exactCounter).Counter) }
func (c exactCounter) Each(fn func(string, uint64)) {
	c.Counter.Each(fn)
}

// sketchCounter is the bounded-memory kcounter: Space-Saving for the
// frequency table, HyperLogLog for the distinct count, and an exact
// running total (a scalar, so it costs nothing to keep exact).
type sketchCounter struct {
	topk  *stats.TopK
	hll   *stats.HyperLogLog
	total uint64
}

func newSketchCounter(so SketchOptions) *sketchCounter {
	return &sketchCounter{
		topk: stats.NewTopK(so.TopK),
		hll:  stats.NewHyperLogLog(so.Precision),
	}
}

func (c *sketchCounter) Add(key string) { c.AddN(key, 1) }

func (c *sketchCounter) AddN(key string, n uint64) {
	c.topk.AddN(key, n)
	c.hll.Add(key)
	c.total += n
}

func (c *sketchCounter) Count(key string) uint64 {
	est, _, ok := c.topk.Estimate(key)
	if !ok {
		return 0
	}
	return est
}

func (c *sketchCounter) Total() uint64           { return c.total }
func (c *sketchCounter) Distinct() uint64        { return c.hll.Estimate() }
func (c *sketchCounter) Top(k int) []stats.Entry { return c.topk.Top(k) }

func (c *sketchCounter) Each(fn func(string, uint64)) {
	c.topk.EachEntry(func(key string, count, _ uint64) { fn(key, count) })
}

func (c *sketchCounter) Merge(other kcounter) {
	o := other.(*sketchCounter)
	c.topk.Merge(o.topk)
	c.hll.Merge(o.hll)
	c.total += o.total
}

// --- sketch state codecs ---

// encHLL / decHLL code a HyperLogLog as precision + raw registers.
func encHLL(w *statecodec.Writer, h *stats.HyperLogLog) {
	w.Byte(h.Precision())
	w.Raw(h.Registers())
}

func decHLL(r *statecodec.Reader) *stats.HyperLogLog {
	p := r.Byte()
	if r.Err() != nil {
		return nil
	}
	if p < 4 || p > 16 {
		r.Failf("core: HLL precision %d out of [4, 16]", p)
		return nil
	}
	h, err := stats.RestoreHyperLogLog(p, r.Raw(1<<p))
	if r.Err() != nil {
		return nil
	}
	if err != nil {
		r.Failf("core: %v", err)
		return nil
	}
	return h
}

// encTopK / decTopK code a Space-Saving sketch as capacity plus the
// tracked (key, estimate, error-bound) triples in sorted key order.
func encTopK(w *statecodec.Writer, t *stats.TopK) {
	type ent struct {
		key        string
		count, err uint64
	}
	entries := make([]ent, 0, t.Len())
	t.EachEntry(func(key string, count, errBound uint64) {
		entries = append(entries, ent{key, count, errBound})
	})
	sort.Slice(entries, func(i, j int) bool { return entries[i].key < entries[j].key })
	w.Uvarint(uint64(t.Capacity()))
	w.Uvarint(uint64(len(entries)))
	for _, e := range entries {
		w.StringRef(e.key)
		w.Uvarint(e.count)
		w.Uvarint(e.err)
	}
}

func decTopK(r *statecodec.Reader) *stats.TopK {
	capacity := r.Uvarint()
	if r.Err() != nil {
		return nil
	}
	if capacity == 0 || capacity > 1<<24 {
		r.Failf("core: top-k capacity %d out of range", capacity)
		return nil
	}
	t := stats.NewTopK(int(capacity))
	n := r.Count()
	for i := 0; i < n && r.Err() == nil; i++ {
		key := r.StringRef()
		count := r.Uvarint()
		errBound := r.Uvarint()
		if r.Err() != nil {
			return t
		}
		if !t.SetEntry(key, count, errBound) {
			r.Failf("core: top-k state holds %d entries, capacity %d", n, capacity)
			return t
		}
	}
	return t
}

// encSketchCounter / decSketchCounter code a sketchCounter.
func encSketchCounter(w *statecodec.Writer, c *sketchCounter) {
	w.Uvarint(c.total)
	encTopK(w, c.topk)
	encHLL(w, c.hll)
}

func decSketchCounter(r *statecodec.Reader) *sketchCounter {
	c := &sketchCounter{}
	c.total = r.Uvarint()
	c.topk = decTopK(r)
	c.hll = decHLL(r)
	return c
}

// encKCounter writes a kcounter in the mode-appropriate layout; the
// caller's module version byte records which one is in the stream
// (exact modules stay on their v1 layout, sketched modules bump to v2).
func encKCounter(w *statecodec.Writer, c kcounter) {
	switch cc := c.(type) {
	case exactCounter:
		encCounter(w, cc.Counter)
	case *sketchCounter:
		encSketchCounter(w, cc)
	}
}

// decKCounterExact decodes a v1 (exact) counter section into the
// engine's counting mode: verbatim for an exact engine, replayed
// key-by-key into a fresh sketch for a sketched one (an exact checkpoint
// is always a valid sketch input; the reverse is not).
func (e *Engine) decKCounterExact(r *statecodec.Reader) kcounter {
	if !e.opt.Sketches.Enabled {
		return exactCounter{decCounter(r)}
	}
	c := newSketchCounter(e.opt.Sketches)
	n := r.Count()
	for i := 0; i < n && r.Err() == nil; i++ {
		k := r.StringRef()
		c.AddN(k, r.Uvarint())
	}
	return c
}

// decKCounterSketch decodes a v2 (sketch) counter section; only a
// sketched engine can hold it.
func (e *Engine) decKCounterSketch(r *statecodec.Reader) kcounter {
	if !e.opt.Sketches.Enabled {
		r.Failf("core: checkpoint carries sketch state; rebuild the engine with sketches enabled (-sketch)")
		return exactCounter{stats.NewCounter()}
	}
	return decSketchCounter(r)
}
