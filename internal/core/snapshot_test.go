package core

import (
	"fmt"
	"strings"
	"testing"

	"syriafilter/internal/bittorrent"
)

func renderEverything(a *Analyzer) string {
	var sb strings.Builder
	for _, id := range Experiments() {
		fmt.Fprintf(&sb, "%s: %s\n", id, experimentRender[id](a))
	}
	return sb.String()
}

// A clone must reproduce every experiment byte-for-byte, and must stay
// frozen while the source engine keeps observing — the copy-on-swap
// property internal/serve snapshots depend on.
func TestCloneEquivalenceAndIsolation(t *testing.T) {
	f := corpus(t)
	opt := Options{
		Categories: f.gen.CategoryDB(),
		Consensus:  f.gen.Consensus(),
		TitleDB:    bittorrent.NewTitleDB(),
	}

	// Feed the first half, snapshot, then keep feeding the live engine.
	half := len(f.records) / 2
	live := NewAnalyzer(opt)
	for i := 0; i < half; i++ {
		live.Observe(&f.records[i])
	}
	snap := live.Clone()
	wantHalf := renderEverything(snap)

	for i := half; i < len(f.records); i++ {
		live.Observe(&f.records[i])
	}

	// Isolation: the snapshot did not move.
	if got := renderEverything(snap); got != wantHalf {
		t.Error("snapshot changed while the source engine kept observing")
	}

	// Equivalence: a batch run over the same first half matches the
	// snapshot byte-for-byte.
	batch := NewAnalyzer(opt)
	for i := 0; i < half; i++ {
		batch.Observe(&f.records[i])
	}
	if got := renderEverything(batch); got != wantHalf {
		t.Error("snapshot differs from a batch run over the same records")
	}

	// The live engine caught the full corpus: it matches the package
	// fixture (which observed every record).
	if got, want := renderEverything(live), renderEverything(f.analyzer); got != want {
		t.Error("live engine after cloning differs from the batch fixture")
	}
}

// Clones of subset engines carry the subset, not the full registry.
func TestCloneSubset(t *testing.T) {
	sub, err := NewAnalyzerFor(Options{}, "datasets", "domains")
	if err != nil {
		t.Fatal(err)
	}
	c := sub.Clone()
	if got := fmt.Sprint(c.Metrics()); got != fmt.Sprint(sub.Metrics()) {
		t.Errorf("clone modules = %v, want %v", c.Metrics(), sub.Metrics())
	}
}
