package core

// Clone returns a deep, independent copy of e: a fresh engine with the
// same Options and module set, with e's state merged in. Records
// observed by e afterwards do not affect the clone, which makes Clone
// the copy-on-swap snapshot primitive behind internal/serve's live
// store.
//
// Clone relies on the same contract as pipeline merging: module Merge
// implementations copy state out of their source instead of aliasing
// its maps or slices. The shared Options databases (category DB, Tor
// consensus, title DB) are reference-shared — they are immutable after
// construction.
//
// The capped stores (Options.MaxStoredCensoredURLs, MaxTokenEntries)
// admit entries in observation order, so a clone taken after a cap was
// hit preserves the source's admitted set — equivalence with an
// order-shuffled batch run holds only below the caps, exactly as for
// parallel ingestion.
func (e *Engine) Clone() *Engine {
	n, err := NewEngine(e.opt, e.Metrics()...)
	if err != nil {
		// Unreachable: e.Metrics() only returns registered module names.
		panic("core: Clone: " + err.Error())
	}
	n.Merge(e)
	return n
}

// Clone returns a deep, independent copy of the analyzer.
func (a *Analyzer) Clone() *Analyzer { return &Analyzer{Engine: a.Engine.Clone()} }
