package core

// Clone returns a deep, independent copy of e: a fresh engine with the
// same Options and module set, with e's state merged in. Records
// observed by e afterwards do not affect the clone, which makes Clone
// the copy-on-swap snapshot primitive behind internal/serve's live
// store.
//
// Clone relies on the same contract as pipeline merging: module Merge
// implementations copy state out of their source instead of aliasing
// its maps or slices. The shared Options databases (category DB, Tor
// consensus, title DB) are reference-shared — they are immutable after
// construction.
//
// The censored-URL store (Options.MaxStoredCensoredURLs) keeps the k
// smallest entries by (Domain, URL, Host) — an order-independent
// selection — so clones agree with order-shuffled batch runs even past
// that cap. The token-vocabulary cap (MaxTokenEntries) still admits in
// observation order; equivalence past it holds only for identical
// observation orders, exactly as for parallel ingestion.
func (e *Engine) Clone() *Engine {
	n, err := NewEngine(e.opt, e.Metrics()...)
	if err != nil {
		// Unreachable: e.Metrics() only returns registered module names.
		panic("core: Clone: " + err.Error())
	}
	n.Merge(e)
	return n
}

// Clone returns a deep, independent copy of the analyzer.
func (a *Analyzer) Clone() *Analyzer { return &Analyzer{Engine: a.Engine.Clone()} }
