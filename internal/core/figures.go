package core

import (
	"sort"

	"syriafilter/internal/bittorrent"
	"syriafilter/internal/logfmt"
	"syriafilter/internal/stats"
)

// --- Figure 1 ---

// PortCount is one bar of Fig 1.
type PortCount struct {
	Port  uint16
	Count uint64
}

// PortDistribution returns the allowed and censored per-port request
// counts, descending by count.
func (a *Analyzer) PortDistribution() (allowed, censored []PortCount) {
	return sortPorts(a.portAllowed), sortPorts(a.portCensored)
}

func sortPorts(m map[uint16]uint64) []PortCount {
	out := make([]PortCount, 0, len(m))
	for p, n := range m {
		out = append(out, PortCount{Port: p, Count: n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Port < out[j].Port
	})
	return out
}

// --- Figure 2 ---

// FreqSeries is one curve of Fig 2: (requests-per-domain, #domains) pairs
// plus the fitted power-law exponent.
type FreqSeries struct {
	Class  string
	Points [][2]uint64 // (request count, number of domains with that count)
	Alpha  float64     // fitted exponent (0 if the fit failed)
}

// DomainFreqDistribution returns the Fig 2 curves for allowed, denied
// (errors) and censored traffic.
func (a *Analyzer) DomainFreqDistribution() []FreqSeries {
	mk := func(name string, c *stats.Counter) FreqSeries {
		counts := make([]uint64, 0, c.Len())
		samples := make([]float64, 0, c.Len())
		c.Each(func(_ string, n uint64) {
			counts = append(counts, n)
			samples = append(samples, float64(n))
		})
		fs := FreqSeries{Class: name, Points: stats.FreqOfFreq(counts)}
		if fit, err := stats.FitPowerLaw(samples, 1); err == nil {
			fs.Alpha = fit.Alpha
		}
		return fs
	}
	return []FreqSeries{
		mk("allowed", a.domAllowed),
		mk("denied", a.domDenied),
		mk("censored", a.domCensored),
	}
}

// --- Figure 3 ---

// CategoryShare is one bar of Fig 3.
type CategoryShare struct {
	Category string
	Count    uint64
	Share    float64
}

// CensoredCategories returns the category distribution of censored
// traffic. sample selects the Dsample-based variant the paper plots.
func (a *Analyzer) CensoredCategories(sample bool) []CategoryShare {
	c := a.catCensoredFull
	if sample {
		c = a.catCensoredSample
	}
	total := c.Total()
	entries := c.Top(0)
	out := make([]CategoryShare, len(entries))
	for i, e := range entries {
		out[i] = CategoryShare{Category: e.Key, Count: e.Count, Share: frac(e.Count, total)}
	}
	return out
}

// --- Figure 4 ---

// UserReport is Fig 4 plus the §4 headline user numbers.
type UserReport struct {
	TotalUsers    int
	CensoredUsers int
	// CensoredPerUser is the histogram of censored-request counts among
	// censored users (Fig 4a), bucket i = i+1 censored requests, last
	// bucket is ">= len".
	CensoredPerUser []uint64
	// ActivityCensored / ActivityOthers are the request-count CDFs of
	// Fig 4b.
	ActivityCensored *stats.CDF
	ActivityOthers   *stats.CDF
	// ShareActiveCensored / ShareActiveOthers report P(requests > 100),
	// the paper's 50%-vs-5% contrast.
	ShareActiveCensored float64
	ShareActiveOthers   float64
	// MeanActivityCensored / MeanActivityOthers give the scale-free
	// version of the same contrast for scaled-down corpora.
	MeanActivityCensored float64
	MeanActivityOthers   float64
}

// UserAnalysis computes the Duser-based per-user view.
func (a *Analyzer) UserAnalysis() UserReport {
	rep := UserReport{CensoredPerUser: make([]uint64, 16)}
	var actC, actO []float64
	for _, us := range a.users {
		rep.TotalUsers++
		if us.Censored > 0 {
			rep.CensoredUsers++
			bucket := int(us.Censored) - 1
			if bucket >= len(rep.CensoredPerUser) {
				bucket = len(rep.CensoredPerUser) - 1
			}
			rep.CensoredPerUser[bucket]++
			actC = append(actC, float64(us.Total))
		} else {
			actO = append(actO, float64(us.Total))
		}
	}
	rep.ActivityCensored = stats.NewCDF(actC)
	rep.ActivityOthers = stats.NewCDF(actO)
	rep.ShareActiveCensored = 1 - rep.ActivityCensored.P(100)
	rep.ShareActiveOthers = 1 - rep.ActivityOthers.P(100)
	rep.MeanActivityCensored = mean(actC)
	rep.MeanActivityOthers = mean(actO)
	return rep
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// --- Figures 5 and 6 ---

// SeriesPoint is one 5-minute bucket of Fig 5.
type SeriesPoint struct {
	Unix     int64
	Allowed  uint64
	Censored uint64
}

// TimeSeries returns the censored/allowed series over [fromUnix, toUnix),
// with empty slots materialized as zeros.
func (a *Analyzer) TimeSeries(fromUnix, toUnix int64) []SeriesPoint {
	var out []SeriesPoint
	for t := fromUnix - fromUnix%SlotSeconds; t < toUnix; t += SlotSeconds {
		slot := t / SlotSeconds
		out = append(out, SeriesPoint{
			Unix:     t,
			Allowed:  a.slotAllowed[slot],
			Censored: a.slotCensored[slot],
		})
	}
	return out
}

// RCVPoint is one Fig 6 sample: the Relative Censored traffic Volume.
type RCVPoint struct {
	Unix int64
	RCV  float64 // censored / total in the slot (0 when the slot is empty)
}

// RCV computes Fig 6 over [fromUnix, toUnix).
func (a *Analyzer) RCV(fromUnix, toUnix int64) []RCVPoint {
	var out []RCVPoint
	for t := fromUnix - fromUnix%SlotSeconds; t < toUnix; t += SlotSeconds {
		slot := t / SlotSeconds
		cens := a.slotCensored[slot]
		total := cens + a.slotAllowed[slot]
		p := RCVPoint{Unix: t}
		if total > 0 {
			p.RCV = float64(cens) / float64(total)
		}
		out = append(out, p)
	}
	return out
}

// --- Figure 7 ---

// ProxyLoad is the Fig 7 summary for one proxy.
type ProxyLoad struct {
	SG       int
	Total    uint64
	Censored uint64
}

// ProxyLoads returns per-proxy totals (SG-42..48 order).
func (a *Analyzer) ProxyLoads() []ProxyLoad {
	out := make([]ProxyLoad, logfmt.NumProxies)
	for i := range out {
		out[i] = ProxyLoad{
			SG:       logfmt.FirstProxy + i,
			Total:    a.proxyTotal[i],
			Censored: a.proxyCensored[i],
		}
	}
	return out
}

// ProxyShareSeries returns, for each 5-minute slot in [from, to), each
// proxy's share of (total | censored) traffic — the stacked bands of
// Fig 7.
func (a *Analyzer) ProxyShareSeries(fromUnix, toUnix int64, censored bool) []([7]float64) {
	src := a.proxySlotTotal
	if censored {
		src = a.proxySlotCensored
	}
	var out [][7]float64
	for t := fromUnix - fromUnix%SlotSeconds; t < toUnix; t += SlotSeconds {
		slot := t / SlotSeconds
		var row [7]float64
		var total uint64
		for i := 0; i < logfmt.NumProxies; i++ {
			total += src[i][slot]
		}
		if total > 0 {
			for i := 0; i < logfmt.NumProxies; i++ {
				row[i] = float64(src[i][slot]) / float64(total)
			}
		}
		out = append(out, row)
	}
	return out
}

// --- Figure 8 ---

// TorReport is the §7.1 summary.
type TorReport struct {
	Total    uint64
	HTTP     uint64 // Torhttp: directory protocol
	Onion    uint64 // Toronion: OR-port traffic
	Censored uint64
	Errors   uint64
	// CensoredByProxy indexes SG-42..48.
	CensoredByProxy [7]uint64
	// Relays is the number of distinct relays contacted.
	Relays int
}

// TorAnalysis returns the Tor summary (zero-valued without a consensus).
func (a *Analyzer) TorAnalysis() TorReport {
	rep := TorReport{
		Total: a.torTotal, HTTP: a.torHTTP, Onion: a.torOnion,
		Censored: a.torCensored, Errors: a.torErrors,
		CensoredByProxy: a.torCensoredByProxy,
	}
	relays := map[uint32]struct{}{}
	for ip := range a.torCensoredIPs {
		relays[ip] = struct{}{}
	}
	for _, set := range a.torAllowedIPsByHour {
		for ip := range set {
			relays[ip] = struct{}{}
		}
	}
	rep.Relays = len(relays)
	return rep
}

// HourPoint is one Fig 8(a) bar.
type HourPoint struct {
	Unix     int64
	Total    uint64
	Censored uint64
}

// TorHourly returns the per-hour Tor request series over [from, to).
func (a *Analyzer) TorHourly(fromUnix, toUnix int64) []HourPoint {
	var out []HourPoint
	for t := fromUnix - fromUnix%3600; t < toUnix; t += 3600 {
		hour := t / 3600
		out = append(out, HourPoint{Unix: t, Total: a.torHourly[hour], Censored: a.torCensHourly[hour]})
	}
	return out
}

// --- Figure 9 ---

// RFilterPoint is one Fig 9 sample.
type RFilterPoint struct {
	Unix    int64
	RFilter float64
	// AllowedSeen reports whether any Tor traffic was allowed in the bin
	// (the paper plots empty bins distinctly).
	AllowedSeen bool
}

// RFilter computes the §7.1 re-censoring consistency metric per hour bin:
//
//	Rfilter(k) = 1 - |Censored-IPs ∩ Allowed-IPs(k)| / |Censored-IPs|
//
// over [fromUnix, toUnix). Returns nil if no Tor relay was ever censored.
func (a *Analyzer) RFilter(fromUnix, toUnix int64) []RFilterPoint {
	if len(a.torCensoredIPs) == 0 {
		return nil
	}
	total := float64(len(a.torCensoredIPs))
	var out []RFilterPoint
	for t := fromUnix - fromUnix%3600; t < toUnix; t += 3600 {
		hour := t / 3600
		allowed := a.torAllowedIPsByHour[hour]
		inter := 0
		for ip := range allowed {
			if _, ok := a.torCensoredIPs[ip]; ok {
				inter++
			}
		}
		out = append(out, RFilterPoint{
			Unix:        t,
			RFilter:     1 - float64(inter)/total,
			AllowedSeen: len(allowed) > 0,
		})
	}
	return out
}

// --- Figure 10 ---

// AnonymizerReport is the §7.2 summary.
type AnonymizerReport struct {
	Hosts         int // distinct anonymizer hosts seen
	NeverFiltered int // hosts with zero censored requests
	Requests      uint64
	// RequestsCDF is Fig 10(a): #requests per never-filtered host.
	RequestsCDF *stats.CDF
	// RatioCDF is Fig 10(b): allowed/censored ratio for filtered hosts.
	RatioCDF *stats.CDF
	// FilteredHosts is the Fig 10(b) population size.
	FilteredHosts int
}

// Anonymizers computes the anonymizer-service view.
func (a *Analyzer) Anonymizers() AnonymizerReport {
	rep := AnonymizerReport{}
	hosts := map[string]struct{}{}
	a.anonAllowed.Each(func(h string, _ uint64) { hosts[h] = struct{}{} })
	a.anonCensored.Each(func(h string, _ uint64) { hosts[h] = struct{}{} })
	rep.Hosts = len(hosts)
	rep.Requests = a.anonAllowed.Total() + a.anonCensored.Total()

	var reqs, ratios []float64
	for h := range hosts {
		cens := a.anonCensored.Count(h)
		allow := a.anonAllowed.Count(h)
		if cens == 0 {
			rep.NeverFiltered++
			reqs = append(reqs, float64(allow))
			continue
		}
		rep.FilteredHosts++
		ratios = append(ratios, float64(allow)/float64(cens))
	}
	rep.RequestsCDF = stats.NewCDF(reqs)
	rep.RatioCDF = stats.NewCDF(ratios)
	return rep
}

// --- §4 HTTPS ---

// HTTPSReport is the §4 HTTPS summary.
type HTTPSReport struct {
	Total             uint64
	ShareOfTraffic    float64
	Censored          uint64
	CensoredShare     float64
	CensoredIPLiteral uint64
	// IPLiteralShare is the share of censored HTTPS whose destination is
	// a raw IP (the paper reports 82%).
	IPLiteralShare float64
}

// HTTPSAnalysis summarizes CONNECT/HTTPS traffic.
func (a *Analyzer) HTTPSAnalysis() HTTPSReport {
	rep := HTTPSReport{
		Total:             a.httpsTotal,
		Censored:          a.httpsCensored,
		CensoredIPLiteral: a.httpsCensoredIPHost,
	}
	rep.ShareOfTraffic = frac(a.httpsTotal, a.datasets[DFull].Total)
	rep.CensoredShare = frac(a.httpsCensored, a.httpsTotal)
	rep.IPLiteralShare = frac(a.httpsCensoredIPHost, a.httpsCensored)
	return rep
}

// --- §7.3 BitTorrent ---

// BitTorrentReport is the §7.3 summary.
type BitTorrentReport struct {
	Announces     uint64
	Users         int // distinct peer ids
	Contents      int // distinct info hashes
	Censored      uint64
	AllowedShare  float64
	Resolved      int     // info hashes resolved to titles
	ResolvedShare float64 // the paper reports 77.4%
	// KeywordTitles counts resolved titles containing a blacklisted
	// keyword — their announces were nonetheless allowed (§7.3's point).
	KeywordTitles int
	// ToolTitles counts resolved titles naming anti-censorship tools.
	ToolTitles  int
	TopTrackers []DomainShare
}

// BitTorrent summarizes tracker-announce traffic. keywords is the
// blacklist to check titles against (pass the Table 10 discovery output
// or the ground-truth list).
func (a *Analyzer) BitTorrent(keywords []string) BitTorrentReport {
	rep := BitTorrentReport{
		Announces: a.btTotal,
		Users:     len(a.btPeers),
		Contents:  len(a.btHashes),
		Censored:  a.btCensored,
	}
	rep.AllowedShare = frac(a.btTotal-a.btCensored, a.btTotal)
	rep.TopTrackers = sharesOf(a.btTrackers, 5)
	if a.opt.TitleDB != nil {
		tools := []string{"ultrasurf", "hidemyass", "hide ip", "anonymous browser"}
		for hash := range a.btHashes {
			title, ok := a.opt.TitleDB.Resolve(hash)
			if !ok {
				continue
			}
			rep.Resolved++
			if bittorrent.ContainsAnyKeyword(title, keywords) {
				rep.KeywordTitles++
			}
			if bittorrent.ContainsAnyKeyword(title, tools) {
				rep.ToolTitles++
			}
		}
		rep.ResolvedShare = frac(uint64(rep.Resolved), uint64(rep.Contents))
	}
	return rep
}

// --- §7.4 Google cache ---

// GoogleCacheReport is the §7.4 summary.
type GoogleCacheReport struct {
	Total    uint64
	Censored uint64
}

// GoogleCache summarizes webcache.googleusercontent.com traffic.
func (a *Analyzer) GoogleCache() GoogleCacheReport {
	return GoogleCacheReport{Total: a.gcTotal, Censored: a.gcCensored}
}
