package core

import (
	"sort"

	"syriafilter/internal/bittorrent"
	"syriafilter/internal/logfmt"
	"syriafilter/internal/stats"
)

// --- Figure 1 ---

// PortCount is one bar of Fig 1.
type PortCount struct {
	Port  uint16
	Count uint64
}

// PortDistribution returns the allowed and censored per-port request
// counts, descending by count.
func (e *Engine) PortDistribution() (allowed, censored []PortCount) {
	m := e.mPorts("PortDistribution")
	return sortPorts(m.allowed), sortPorts(m.censored)
}

func sortPorts(m map[uint16]uint64) []PortCount {
	out := make([]PortCount, 0, len(m))
	for p, n := range m {
		out = append(out, PortCount{Port: p, Count: n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Port < out[j].Port
	})
	return out
}

// --- Figure 2 ---

// FreqSeries is one curve of Fig 2: (requests-per-domain, #domains) pairs
// plus the fitted power-law exponent.
type FreqSeries struct {
	Class  string
	Points [][2]uint64 // (request count, number of domains with that count)
	Alpha  float64     // fitted exponent (0 if the fit failed)
}

// DomainFreqDistribution returns the Fig 2 curves for allowed, denied
// (errors) and censored traffic.
func (e *Engine) DomainFreqDistribution() []FreqSeries {
	dm := e.mDomains("DomainFreqDistribution")
	mk := func(name string, c kcounter) FreqSeries {
		var counts []uint64
		var samples []float64
		// Top(0) yields a sorted order, so the float summation inside
		// FitPowerLaw is deterministic run to run.
		for _, en := range c.Top(0) {
			counts = append(counts, en.Count)
			samples = append(samples, float64(en.Count))
		}
		fs := FreqSeries{Class: name, Points: stats.FreqOfFreq(counts)}
		if fit, err := stats.FitPowerLaw(samples, 1); err == nil {
			fs.Alpha = fit.Alpha
		}
		return fs
	}
	return []FreqSeries{
		mk("allowed", dm.allowed),
		mk("denied", dm.denied),
		mk("censored", dm.censored),
	}
}

// --- Figure 3 ---

// CategoryShare is one bar of Fig 3.
type CategoryShare struct {
	Category string
	Count    uint64
	Share    float64
}

// CensoredCategories returns the category distribution of censored
// traffic. sample selects the Dsample-based variant the paper plots.
func (e *Engine) CensoredCategories(sample bool) []CategoryShare {
	m := e.mCategories("CensoredCategories")
	c := m.censoredFull
	if sample {
		c = m.censoredSample
	}
	total := c.Total()
	entries := c.Top(0)
	out := make([]CategoryShare, len(entries))
	for i, en := range entries {
		out[i] = CategoryShare{Category: en.Key, Count: en.Count, Share: frac(en.Count, total)}
	}
	return out
}

// --- Figure 4 ---

// UserReport is Fig 4 plus the §4 headline user numbers.
type UserReport struct {
	TotalUsers    int
	CensoredUsers int
	// CensoredPerUser is the histogram of censored-request counts among
	// censored users (Fig 4a), bucket i = i+1 censored requests, last
	// bucket is ">= len".
	CensoredPerUser []uint64
	// ActivityCensored / ActivityOthers are the request-count CDFs of
	// Fig 4b.
	ActivityCensored *stats.CDF
	ActivityOthers   *stats.CDF
	// ShareActiveCensored / ShareActiveOthers report P(requests > 100),
	// the paper's 50%-vs-5% contrast.
	ShareActiveCensored float64
	ShareActiveOthers   float64
	// MeanActivityCensored / MeanActivityOthers give the scale-free
	// version of the same contrast for scaled-down corpora.
	MeanActivityCensored float64
	MeanActivityOthers   float64
}

// UserAnalysis computes the Duser-based per-user view (estimates when the
// engine runs sketched).
func (e *Engine) UserAnalysis() UserReport {
	return e.mUsers("UserAnalysis").report()
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// --- Figures 5 and 6 ---

// SeriesPoint is one 5-minute bucket of Fig 5.
type SeriesPoint struct {
	Unix     int64
	Allowed  uint64
	Censored uint64
}

// TimeSeries returns the censored/allowed series over [fromUnix, toUnix),
// with empty slots materialized as zeros.
func (e *Engine) TimeSeries(fromUnix, toUnix int64) []SeriesPoint {
	m := e.mTimeseries("TimeSeries")
	var out []SeriesPoint
	for t := fromUnix - fromUnix%SlotSeconds; t < toUnix; t += SlotSeconds {
		s := m.at(t / SlotSeconds)
		out = append(out, SeriesPoint{
			Unix:     t,
			Allowed:  s.allowed,
			Censored: s.censored,
		})
	}
	return out
}

// RCVPoint is one Fig 6 sample: the Relative Censored traffic Volume.
type RCVPoint struct {
	Unix int64
	RCV  float64 // censored / total in the slot (0 when the slot is empty)
}

// RCV computes Fig 6 over [fromUnix, toUnix).
func (e *Engine) RCV(fromUnix, toUnix int64) []RCVPoint {
	m := e.mTimeseries("RCV")
	var out []RCVPoint
	for t := fromUnix - fromUnix%SlotSeconds; t < toUnix; t += SlotSeconds {
		s := m.at(t / SlotSeconds)
		cens := s.censored
		total := cens + s.allowed
		p := RCVPoint{Unix: t}
		if total > 0 {
			p.RCV = float64(cens) / float64(total)
		}
		out = append(out, p)
	}
	return out
}

// --- Figure 7 ---

// ProxyLoad is the Fig 7 summary for one proxy.
type ProxyLoad struct {
	SG       int
	Total    uint64
	Censored uint64
}

// ProxyLoads returns per-proxy totals (SG-42..48 order).
func (e *Engine) ProxyLoads() []ProxyLoad {
	m := e.mProxies("ProxyLoads")
	out := make([]ProxyLoad, logfmt.NumProxies)
	for i := range out {
		out[i] = ProxyLoad{
			SG:       logfmt.FirstProxy + i,
			Total:    m.total[i],
			Censored: m.censored[i],
		}
	}
	return out
}

// ProxyShareSeries returns, for each 5-minute slot in [from, to), each
// proxy's share of (total | censored) traffic — the stacked bands of
// Fig 7.
func (e *Engine) ProxyShareSeries(fromUnix, toUnix int64, censored bool) []([7]float64) {
	m := e.mProxies("ProxyShareSeries")
	var out [][7]float64
	for t := fromUnix - fromUnix%SlotSeconds; t < toUnix; t += SlotSeconds {
		var row [7]float64
		if ps := m.at(t / SlotSeconds); ps != nil {
			src := &ps.total
			if censored {
				src = &ps.censored
			}
			var total uint64
			for i := 0; i < logfmt.NumProxies; i++ {
				total += src[i]
			}
			if total > 0 {
				for i := 0; i < logfmt.NumProxies; i++ {
					row[i] = float64(src[i]) / float64(total)
				}
			}
		}
		out = append(out, row)
	}
	return out
}

// --- Figure 8 ---

// TorReport is the §7.1 summary.
type TorReport struct {
	Total    uint64
	HTTP     uint64 // Torhttp: directory protocol
	Onion    uint64 // Toronion: OR-port traffic
	Censored uint64
	Errors   uint64
	// CensoredByProxy indexes SG-42..48.
	CensoredByProxy [7]uint64
	// Relays is the number of distinct relays contacted.
	Relays int
}

// TorAnalysis returns the Tor summary (zero-valued without a consensus).
func (e *Engine) TorAnalysis() TorReport {
	m := e.mTor("TorAnalysis")
	rep := TorReport{
		Total: m.total, HTTP: m.http, Onion: m.onion,
		Censored: m.censored, Errors: m.errors,
		CensoredByProxy: m.censoredByProxy,
	}
	relays := map[uint32]struct{}{}
	for ip := range m.censoredIPs {
		relays[ip] = struct{}{}
	}
	for _, set := range m.allowedIPsByHour {
		for ip := range set {
			relays[ip] = struct{}{}
		}
	}
	rep.Relays = len(relays)
	return rep
}

// HourPoint is one Fig 8(a) bar.
type HourPoint struct {
	Unix     int64
	Total    uint64
	Censored uint64
}

// TorHourly returns the per-hour Tor request series over [from, to).
func (e *Engine) TorHourly(fromUnix, toUnix int64) []HourPoint {
	m := e.mTor("TorHourly")
	var out []HourPoint
	for t := fromUnix - fromUnix%3600; t < toUnix; t += 3600 {
		hour := t / 3600
		out = append(out, HourPoint{Unix: t, Total: m.hourly[hour], Censored: m.censHourly[hour]})
	}
	return out
}

// --- Figure 9 ---

// RFilterPoint is one Fig 9 sample.
type RFilterPoint struct {
	Unix    int64
	RFilter float64
	// AllowedSeen reports whether any Tor traffic was allowed in the bin
	// (the paper plots empty bins distinctly).
	AllowedSeen bool
}

// RFilter computes the §7.1 re-censoring consistency metric per hour bin:
//
//	Rfilter(k) = 1 - |Censored-IPs ∩ Allowed-IPs(k)| / |Censored-IPs|
//
// over [fromUnix, toUnix). Returns nil if no Tor relay was ever censored.
func (e *Engine) RFilter(fromUnix, toUnix int64) []RFilterPoint {
	m := e.mTor("RFilter")
	if len(m.censoredIPs) == 0 {
		return nil
	}
	total := float64(len(m.censoredIPs))
	var out []RFilterPoint
	for t := fromUnix - fromUnix%3600; t < toUnix; t += 3600 {
		hour := t / 3600
		allowed := m.allowedIPsByHour[hour]
		inter := 0
		for ip := range allowed {
			if _, ok := m.censoredIPs[ip]; ok {
				inter++
			}
		}
		out = append(out, RFilterPoint{
			Unix:        t,
			RFilter:     1 - float64(inter)/total,
			AllowedSeen: len(allowed) > 0,
		})
	}
	return out
}

// --- Figure 10 ---

// AnonymizerReport is the §7.2 summary.
type AnonymizerReport struct {
	Hosts         int // distinct anonymizer hosts seen
	NeverFiltered int // hosts with zero censored requests
	Requests      uint64
	// RequestsCDF is Fig 10(a): #requests per never-filtered host.
	RequestsCDF *stats.CDF
	// RatioCDF is Fig 10(b): allowed/censored ratio for filtered hosts.
	RatioCDF *stats.CDF
	// FilteredHosts is the Fig 10(b) population size.
	FilteredHosts int
}

// Anonymizers computes the anonymizer-service view.
func (e *Engine) Anonymizers() AnonymizerReport {
	m := e.mAnonymizers("Anonymizers")
	rep := AnonymizerReport{}
	hosts := map[string]struct{}{}
	m.allowed.Each(func(h string, _ uint64) { hosts[h] = struct{}{} })
	m.censored.Each(func(h string, _ uint64) { hosts[h] = struct{}{} })
	rep.Hosts = len(hosts)
	rep.Requests = m.allowed.Total() + m.censored.Total()

	var reqs, ratios []float64
	for h := range hosts {
		cens := m.censored.Count(h)
		allow := m.allowed.Count(h)
		if cens == 0 {
			rep.NeverFiltered++
			reqs = append(reqs, float64(allow))
			continue
		}
		rep.FilteredHosts++
		ratios = append(ratios, float64(allow)/float64(cens))
	}
	rep.RequestsCDF = stats.NewCDF(reqs)
	rep.RatioCDF = stats.NewCDF(ratios)
	return rep
}

// --- §4 HTTPS ---

// HTTPSReport is the §4 HTTPS summary.
type HTTPSReport struct {
	Total             uint64
	ShareOfTraffic    float64
	Censored          uint64
	CensoredShare     float64
	CensoredIPLiteral uint64
	// IPLiteralShare is the share of censored HTTPS whose destination is
	// a raw IP (the paper reports 82%).
	IPLiteralShare float64
}

// HTTPSAnalysis summarizes CONNECT/HTTPS traffic.
func (e *Engine) HTTPSAnalysis() HTTPSReport {
	m := e.mHTTPS("HTTPSAnalysis")
	rep := HTTPSReport{
		Total:             m.total,
		Censored:          m.censored,
		CensoredIPLiteral: m.censoredIPLit,
	}
	rep.ShareOfTraffic = frac(m.total, m.grandTotal)
	rep.CensoredShare = frac(m.censored, m.total)
	rep.IPLiteralShare = frac(m.censoredIPLit, m.censored)
	return rep
}

// --- §7.3 BitTorrent ---

// BitTorrentReport is the §7.3 summary.
type BitTorrentReport struct {
	Announces     uint64
	Users         int // distinct peer ids
	Contents      int // distinct info hashes
	Censored      uint64
	AllowedShare  float64
	Resolved      int     // info hashes resolved to titles
	ResolvedShare float64 // the paper reports 77.4%
	// KeywordTitles counts resolved titles containing a blacklisted
	// keyword — their announces were nonetheless allowed (§7.3's point).
	KeywordTitles int
	// ToolTitles counts resolved titles naming anti-censorship tools.
	ToolTitles  int
	TopTrackers []DomainShare
}

// BitTorrent summarizes tracker-announce traffic. keywords is the
// blacklist to check titles against (pass the Table 10 discovery output
// or the ground-truth list).
func (e *Engine) BitTorrent(keywords []string) BitTorrentReport {
	m := e.mBitTorrent("BitTorrent")
	rep := BitTorrentReport{
		Announces: m.total,
		Users:     len(m.peers),
		Contents:  len(m.hashes),
		Censored:  m.censored,
	}
	rep.AllowedShare = frac(m.total-m.censored, m.total)
	rep.TopTrackers = sharesOf(m.trackers, 5)
	if e.opt.TitleDB != nil {
		tools := []string{"ultrasurf", "hidemyass", "hide ip", "anonymous browser"}
		for hash := range m.hashes {
			title, ok := e.opt.TitleDB.Resolve(hash)
			if !ok {
				continue
			}
			rep.Resolved++
			if bittorrent.ContainsAnyKeyword(title, keywords) {
				rep.KeywordTitles++
			}
			if bittorrent.ContainsAnyKeyword(title, tools) {
				rep.ToolTitles++
			}
		}
		rep.ResolvedShare = frac(uint64(rep.Resolved), uint64(rep.Contents))
	}
	return rep
}

// --- §7.4 Google cache ---

// GoogleCacheReport is the §7.4 summary.
type GoogleCacheReport struct {
	Total    uint64
	Censored uint64
}

// GoogleCache summarizes webcache.googleusercontent.com traffic.
func (e *Engine) GoogleCache() GoogleCacheReport {
	m := e.mGCache("GoogleCache")
	return GoogleCacheReport{Total: m.total, Censored: m.censored}
}
