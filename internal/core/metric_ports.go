package core

import (
	"syriafilter/internal/logfmt"
	"syriafilter/internal/statecodec"
)

// portsMetric accumulates the per-port request counts of Figure 1.
type portsMetric struct {
	cx       *recordCtx
	allowed  map[uint16]uint64
	censored map[uint16]uint64
}

func newPortsMetric(e *Engine) *portsMetric {
	return &portsMetric{
		cx:       &e.cx,
		allowed:  map[uint16]uint64{},
		censored: map[uint16]uint64{},
	}
}

func (m *portsMetric) Name() string { return "ports" }

func (m *portsMetric) Observe(rec *logfmt.Record) {
	switch {
	case m.cx.proxied:
	case m.cx.censored:
		m.censored[rec.Port]++
	case m.cx.allowed:
		m.allowed[rec.Port]++
	}
}

func (m *portsMetric) Merge(other Metric) {
	o := other.(*portsMetric)
	mergeU16(m.allowed, o.allowed)
	mergeU16(m.censored, o.censored)
}

func (m *portsMetric) EncodeState(w *statecodec.Writer) {
	w.Byte(1)
	encU16Counts(w, m.allowed)
	encU16Counts(w, m.censored)
}

func (m *portsMetric) DecodeState(r *statecodec.Reader) {
	checkVersion(r, "ports", 1)
	m.allowed = decU16Counts(r)
	m.censored = decU16Counts(r)
}
