package core

import "syriafilter/internal/logfmt"

// portsMetric accumulates the per-port request counts of Figure 1.
type portsMetric struct {
	cx       *recordCtx
	allowed  map[uint16]uint64
	censored map[uint16]uint64
}

func newPortsMetric(e *Engine) *portsMetric {
	return &portsMetric{
		cx:       &e.cx,
		allowed:  map[uint16]uint64{},
		censored: map[uint16]uint64{},
	}
}

func (m *portsMetric) Name() string { return "ports" }

func (m *portsMetric) Observe(rec *logfmt.Record) {
	switch {
	case m.cx.proxied:
	case m.cx.censored:
		m.censored[rec.Port]++
	case m.cx.allowed:
		m.allowed[rec.Port]++
	}
}

func (m *portsMetric) Merge(other Metric) {
	o := other.(*portsMetric)
	mergeU16(m.allowed, o.allowed)
	mergeU16(m.censored, o.censored)
}
