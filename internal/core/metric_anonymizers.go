package core

import (
	"syriafilter/internal/categorydb"
	"syriafilter/internal/logfmt"
	"syriafilter/internal/statecodec"
	"syriafilter/internal/stats"
)

// anonymizersMetric accumulates the §7.2 anonymizer-service host counts
// (Figure 10).
type anonymizersMetric struct {
	cx *recordCtx

	allowed  *stats.Counter
	censored *stats.Counter
}

func newAnonymizersMetric(e *Engine) *anonymizersMetric {
	return &anonymizersMetric{
		cx:       &e.cx,
		allowed:  stats.NewCounter(),
		censored: stats.NewCounter(),
	}
}

func (m *anonymizersMetric) Name() string { return "anonymizers" }

func (m *anonymizersMetric) Observe(rec *logfmt.Record) {
	if m.cx.HostCategory() != categorydb.CatAnonymizer {
		return
	}
	if m.cx.censored {
		m.censored.Add(rec.Host)
	} else if m.cx.allowed {
		m.allowed.Add(rec.Host)
	}
}

func (m *anonymizersMetric) Merge(other Metric) {
	o := other.(*anonymizersMetric)
	m.allowed.Merge(o.allowed)
	m.censored.Merge(o.censored)
}

func (m *anonymizersMetric) EncodeState(w *statecodec.Writer) {
	w.Byte(1)
	encCounter(w, m.allowed)
	encCounter(w, m.censored)
}

func (m *anonymizersMetric) DecodeState(r *statecodec.Reader) {
	checkVersion(r, "anonymizers", 1)
	m.allowed = decCounter(r)
	m.censored = decCounter(r)
}
