package core

import (
	"syriafilter/internal/logfmt"
	"syriafilter/internal/statecodec"
	"syriafilter/internal/stats"
)

// countriesMetric accumulates per-country censored/allowed counts over
// IP-literal destinations (Table 11).
type countriesMetric struct {
	cx  *recordCtx
	opt *Options

	censored *stats.Counter
	allowed  *stats.Counter
}

func newCountriesMetric(e *Engine) *countriesMetric {
	return &countriesMetric{
		cx:       &e.cx,
		opt:      &e.opt,
		censored: stats.NewCounter(),
		allowed:  stats.NewCounter(),
	}
}

func (m *countriesMetric) Name() string { return "countries" }

func (m *countriesMetric) Observe(rec *logfmt.Record) {
	ip, isIP := m.cx.IPv4()
	if !isIP {
		return
	}
	country := m.opt.GeoDB.Country(ip)
	if country == "" {
		return
	}
	if m.cx.censored {
		m.censored.Add(country)
	} else if m.cx.allowed {
		m.allowed.Add(country)
	}
}

func (m *countriesMetric) Merge(other Metric) {
	o := other.(*countriesMetric)
	m.censored.Merge(o.censored)
	m.allowed.Merge(o.allowed)
}

func (m *countriesMetric) EncodeState(w *statecodec.Writer) {
	w.Byte(1)
	encCounter(w, m.censored)
	encCounter(w, m.allowed)
}

func (m *countriesMetric) DecodeState(r *statecodec.Reader) {
	checkVersion(r, "countries", 1)
	m.censored = decCounter(r)
	m.allowed = decCounter(r)
}
