package core

import (
	"sort"

	"syriafilter/internal/logfmt"
	"syriafilter/internal/statecodec"
)

// timeseriesMetric accumulates the 5-minute allowed/censored series of
// Figures 5 and 6 plus the per-hour censored-domain counts behind
// Table 5's peak-window breakdown.
type timeseriesMetric struct {
	cx           *recordCtx
	slotAllowed  map[int64]uint64
	slotCensored map[int64]uint64
	// censHourDomains maps hour -> censored domain -> count.
	censHourDomains map[int64]map[string]uint64
}

func newTimeseriesMetric(e *Engine) *timeseriesMetric {
	return &timeseriesMetric{
		cx:              &e.cx,
		slotAllowed:     map[int64]uint64{},
		slotCensored:    map[int64]uint64{},
		censHourDomains: map[int64]map[string]uint64{},
	}
}

func (m *timeseriesMetric) Name() string { return "timeseries" }

func (m *timeseriesMetric) Observe(rec *logfmt.Record) {
	switch {
	case m.cx.proxied:
	case m.cx.censored:
		m.slotCensored[m.cx.slot]++
		hour := rec.Time / 3600
		hd := m.censHourDomains[hour]
		if hd == nil {
			hd = map[string]uint64{}
			m.censHourDomains[hour] = hd
		}
		hd[m.cx.Domain()]++
	case m.cx.allowed:
		m.slotAllowed[m.cx.slot]++
	}
}

func (m *timeseriesMetric) Merge(other Metric) {
	o := other.(*timeseriesMetric)
	mergeI64(m.slotAllowed, o.slotAllowed)
	mergeI64(m.slotCensored, o.slotCensored)
	for hour, hd := range o.censHourDomains {
		mine := m.censHourDomains[hour]
		if mine == nil {
			mine = map[string]uint64{}
			m.censHourDomains[hour] = mine
		}
		mergeStr(mine, hd)
	}
}

func (m *timeseriesMetric) EncodeState(w *statecodec.Writer) {
	w.Byte(1)
	encI64Counts(w, m.slotAllowed)
	encI64Counts(w, m.slotCensored)
	hours := make([]int64, 0, len(m.censHourDomains))
	for h := range m.censHourDomains {
		hours = append(hours, h)
	}
	sort.Slice(hours, func(i, j int) bool { return hours[i] < hours[j] })
	w.Uvarint(uint64(len(hours)))
	for _, h := range hours {
		w.Varint(h)
		encStrCounts(w, m.censHourDomains[h])
	}
}

func (m *timeseriesMetric) DecodeState(r *statecodec.Reader) {
	checkVersion(r, "timeseries", 1)
	m.slotAllowed = decI64Counts(r)
	m.slotCensored = decI64Counts(r)
	n := r.Count()
	m.censHourDomains = make(map[int64]map[string]uint64, n)
	for i := 0; i < n && r.Err() == nil; i++ {
		h := r.Varint()
		m.censHourDomains[h] = decStrCounts(r)
	}
}
