package core

import (
	"sort"

	"syriafilter/internal/logfmt"
	"syriafilter/internal/statecodec"
)

// timeseriesMetric accumulates the 5-minute allowed/censored series of
// Figures 5 and 6 plus the per-hour censored-domain counts behind
// Table 5's peak-window breakdown.
//
// Slots are stored as one map of per-slot structs rather than parallel
// maps, with a one-entry cache of the last slot touched: real corpora
// arrive roughly time-sorted, so consecutive records almost always share
// a 5-minute slot and the hot path is two pointer increments instead of
// two map inserts per record.
type timeseriesMetric struct {
	cx    *recordCtx
	slots map[int64]*tsSlot
	// censHourDomains maps hour -> censored domain -> count.
	censHourDomains map[int64]map[string]uint64

	lastSlotID int64
	lastSlot   *tsSlot
	lastHourID int64
	lastHour   map[string]uint64
}

// tsSlot is one 5-minute bucket. A field is zero when that class was
// never observed in the slot (the encoded state skips zero fields, so it
// stays byte-compatible with the historical parallel-map layout).
type tsSlot struct {
	allowed  uint64
	censored uint64
}

func newTimeseriesMetric(e *Engine) *timeseriesMetric {
	return &timeseriesMetric{
		cx:              &e.cx,
		slots:           map[int64]*tsSlot{},
		censHourDomains: map[int64]map[string]uint64{},
	}
}

func (m *timeseriesMetric) Name() string { return "timeseries" }

// slot returns the bucket for id, creating it if needed, through the
// one-entry cache.
func (m *timeseriesMetric) slot(id int64) *tsSlot {
	if m.lastSlot != nil && m.lastSlotID == id {
		return m.lastSlot
	}
	s := m.slots[id]
	if s == nil {
		s = &tsSlot{}
		m.slots[id] = s
	}
	m.lastSlotID, m.lastSlot = id, s
	return s
}

// at returns the bucket for id without creating it (zero value when the
// slot was never observed) — the read-side accessor for figures.
func (m *timeseriesMetric) at(id int64) tsSlot {
	if s := m.slots[id]; s != nil {
		return *s
	}
	return tsSlot{}
}

func (m *timeseriesMetric) Observe(rec *logfmt.Record) {
	switch {
	case m.cx.proxied:
	case m.cx.censored:
		m.slot(m.cx.slot).censored++
		hour := rec.Time / 3600
		hd := m.lastHour
		if hd == nil || m.lastHourID != hour {
			hd = m.censHourDomains[hour]
			if hd == nil {
				hd = map[string]uint64{}
				m.censHourDomains[hour] = hd
			}
			m.lastHourID, m.lastHour = hour, hd
		}
		hd[m.cx.Domain()]++
	case m.cx.allowed:
		m.slot(m.cx.slot).allowed++
	}
}

func (m *timeseriesMetric) Merge(other Metric) {
	o := other.(*timeseriesMetric)
	for id, os := range o.slots {
		s := m.slots[id]
		if s == nil {
			s = &tsSlot{}
			m.slots[id] = s
		}
		s.allowed += os.allowed
		s.censored += os.censored
	}
	for hour, hd := range o.censHourDomains {
		mine := m.censHourDomains[hour]
		if mine == nil {
			mine = map[string]uint64{}
			m.censHourDomains[hour] = mine
		}
		mergeStr(mine, hd)
	}
}

// sortedSlotIDs returns the slot ids in ascending order.
func (m *timeseriesMetric) sortedSlotIDs() []int64 {
	ids := make([]int64, 0, len(m.slots))
	for id := range m.slots {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func (m *timeseriesMetric) EncodeState(w *statecodec.Writer) {
	w.Byte(1)
	// Encode the allowed and censored series as two separate count maps,
	// skipping zero fields — byte-identical to the historical layout
	// where each series was its own map holding only observed slots.
	ids := m.sortedSlotIDs()
	for _, sel := range []func(*tsSlot) uint64{
		func(s *tsSlot) uint64 { return s.allowed },
		func(s *tsSlot) uint64 { return s.censored },
	} {
		n := 0
		for _, id := range ids {
			if sel(m.slots[id]) > 0 {
				n++
			}
		}
		w.Uvarint(uint64(n))
		for _, id := range ids {
			if v := sel(m.slots[id]); v > 0 {
				w.Varint(id)
				w.Uvarint(v)
			}
		}
	}
	hours := make([]int64, 0, len(m.censHourDomains))
	for h := range m.censHourDomains {
		hours = append(hours, h)
	}
	sort.Slice(hours, func(i, j int) bool { return hours[i] < hours[j] })
	w.Uvarint(uint64(len(hours)))
	for _, h := range hours {
		w.Varint(h)
		encStrCounts(w, m.censHourDomains[h])
	}
}

func (m *timeseriesMetric) DecodeState(r *statecodec.Reader) {
	checkVersion(r, "timeseries", 1)
	m.slots = map[int64]*tsSlot{}
	m.lastSlot, m.lastHour = nil, nil
	for pass := 0; pass < 2; pass++ {
		n := r.Count()
		for i := 0; i < n && r.Err() == nil; i++ {
			id := r.Varint()
			v := r.Uvarint()
			s := m.slots[id]
			if s == nil {
				s = &tsSlot{}
				m.slots[id] = s
			}
			if pass == 0 {
				s.allowed = v
			} else {
				s.censored = v
			}
		}
	}
	n := r.Count()
	m.censHourDomains = make(map[int64]map[string]uint64, n)
	for i := 0; i < n && r.Err() == nil; i++ {
		h := r.Varint()
		m.censHourDomains[h] = decStrCounts(r)
	}
}
