package core

import (
	"fmt"
	"reflect"
	"sort"
	"testing"

	"syriafilter/internal/logfmt"
)

// censoredRecord builds a policy_denied record for host i. Hosts are
// generated in a deliberately shuffled order (stride walk) so arrival
// order and value order disagree.
func censoredRecord(i int) logfmt.Record {
	host := fmt.Sprintf("site-%04d.example.com", i)
	return logfmt.Record{
		Time:      1312380000 + int64(i),
		ClientIP:  "10.0.0.1",
		Status:    403,
		Method:    "GET",
		Scheme:    "http",
		Host:      host,
		Port:      80,
		Path:      "/page",
		ProxyIP:   logfmt.ProxyBase + "42",
		Filter:    logfmt.Denied,
		Exception: logfmt.ExPolicyDenied,
	}
}

func censoredSetOf(t *testing.T, e *Engine) []censoredURL {
	t.Helper()
	return append([]censoredURL(nil), e.mTokens("test").censored()...)
}

// Past MaxStoredCensoredURLs, the kept censored-URL set must be a pure
// function of the corpus: identical whether the corpus is observed by one
// engine or split across eight engines merged in any order.
func TestCensoredURLCapDeterministicAcrossWorkers(t *testing.T) {
	const maxKeep = 50
	const total = 8 * maxKeep // well past the maxKeep
	opt := Options{MaxStoredCensoredURLs: maxKeep}

	newEngine := func() *Engine {
		e, err := NewEngine(opt, "tokens")
		if err != nil {
			t.Fatal(err)
		}
		return e
	}

	// Stride walk: record j carries host (j*37 mod total), so arrival
	// order differs from (Domain, URL) order.
	recAt := func(j int) logfmt.Record { return censoredRecord(j * 37 % total) }

	single := newEngine()
	for j := 0; j < total; j++ {
		rec := recAt(j)
		single.Observe(&rec)
	}
	want := censoredSetOf(t, single)
	if len(want) != maxKeep {
		t.Fatalf("single-engine store kept %d entries, want maxKeep %d", len(want), maxKeep)
	}

	for name, order := range map[string][]int{
		"forward": {0, 1, 2, 3, 4, 5, 6, 7},
		"reverse": {7, 6, 5, 4, 3, 2, 1, 0},
		"shuffle": {3, 0, 6, 1, 7, 2, 5, 4},
	} {
		workers := make([]*Engine, 8)
		for w := range workers {
			workers[w] = newEngine()
		}
		for j := 0; j < total; j++ {
			rec := recAt(j)
			workers[j%8].Observe(&rec) // round-robin partition
		}
		dst := workers[order[0]]
		for _, w := range order[1:] {
			dst.Merge(workers[w])
		}
		got := censoredSetOf(t, dst)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("merge order %s: kept set differs from single-engine run (got %d entries, want %d)",
				name, len(got), len(want))
		}
	}
}

// The store must never grow past 2x the maxKeep while observing, and the
// entries it keeps are exactly the maxKeep smallest of everything seen.
func TestCensoredURLCapBoundsAndSelection(t *testing.T) {
	const maxKeep = 10
	e, err := NewEngine(Options{MaxStoredCensoredURLs: maxKeep}, "tokens")
	if err != nil {
		t.Fatal(err)
	}
	for i := 200 - 1; i >= 0; i-- { // descending arrival: worst case for first-k-by-arrival
		rec := censoredRecord(i)
		e.Observe(&rec)
		if n := len(e.mTokens("test").censoredURLs); n > 2*maxKeep {
			t.Fatalf("store grew to %d entries (maxKeep %d)", n, maxKeep)
		}
	}
	got := censoredSetOf(t, e)
	if len(got) != maxKeep {
		t.Fatalf("kept %d entries, want %d", len(got), maxKeep)
	}
	// The maxKeep smallest by (Domain, URL, Host) are exactly hosts 0..maxKeep-1.
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i].URL < got[j].URL }) {
		t.Error("canonical set not sorted")
	}
	for i, cu := range got {
		wantHost := fmt.Sprintf("site-%04d.example.com", i)
		if cu.Host != wantHost {
			t.Errorf("kept[%d].Host = %q, want %q", i, cu.Host, wantHost)
		}
	}
}
