package core

import (
	"strings"

	"syriafilter/internal/logfmt"
	"syriafilter/internal/statecodec"
)

// facebookMetric accumulates the facebook.com-internal views: targeted
// pages (Table 14) and platform elements / social plugins (Table 15).
type facebookMetric struct {
	cx    *recordCtx
	pages map[string]*pageStat
	paths map[string]*triple // facebook.com path stats (plugins)
	cens  uint64             // censored requests on facebook.com domain
}

func newFacebookMetric(e *Engine) *facebookMetric {
	return &facebookMetric{
		cx:    &e.cx,
		pages: map[string]*pageStat{},
		paths: map[string]*triple{},
	}
}

func (m *facebookMetric) Name() string { return "facebook" }

func (m *facebookMetric) Observe(rec *logfmt.Record) {
	if m.cx.Domain() != "facebook.com" {
		return
	}
	if m.cx.censored {
		m.cens++
	}
	path := rec.Path
	if path == "" || path == "/" {
		return
	}
	// Multi-segment paths and code-ish extensions are platform elements
	// (plugins etc.); other single-segment paths are pages. Page names may
	// contain dots (syria.news.F.N.N), so the extension alone is not a
	// reliable discriminator.
	if strings.Contains(path[1:], "/") || isCodeExt(rec.Ext) {
		ts := m.paths[path]
		if ts == nil {
			ts = &triple{}
			m.paths[path] = ts
		}
		bumpTriple(ts, m.cx.censored, m.cx.allowed, m.cx.proxied)
		return
	}
	ps := m.pages[path]
	if ps == nil {
		ps = &pageStat{}
		m.pages[path] = ps
	}
	switch {
	case m.cx.proxied:
		ps.Proxied++
	case m.cx.censored:
		ps.Censored++
	case m.cx.allowed:
		ps.Allowed++
	}
	if strings.Contains(rec.Categories, "Blocked sites") {
		ps.CustomCategory = true
	}
}

func (m *facebookMetric) Merge(other Metric) {
	o := other.(*facebookMetric)
	for k, v := range o.pages {
		ps := m.pages[k]
		if ps == nil {
			ps = &pageStat{}
			m.pages[k] = ps
		}
		ps.Censored += v.Censored
		ps.Allowed += v.Allowed
		ps.Proxied += v.Proxied
		ps.CustomCategory = ps.CustomCategory || v.CustomCategory
	}
	for k, v := range o.paths {
		ts := m.paths[k]
		if ts == nil {
			ts = &triple{}
			m.paths[k] = ts
		}
		ts.Censored += v.Censored
		ts.Allowed += v.Allowed
		ts.Proxied += v.Proxied
	}
	m.cens += o.cens
}

func (m *facebookMetric) EncodeState(w *statecodec.Writer) {
	w.Byte(1)
	w.Uvarint(m.cens)
	w.Uvarint(uint64(len(m.pages)))
	for _, k := range sortedStrKeys(m.pages) {
		ps := m.pages[k]
		w.StringRef(k)
		w.Uvarint(ps.Censored)
		w.Uvarint(ps.Allowed)
		w.Uvarint(ps.Proxied)
		w.Bool(ps.CustomCategory)
	}
	encTripleMap(w, m.paths)
}

func (m *facebookMetric) DecodeState(r *statecodec.Reader) {
	checkVersion(r, "facebook", 1)
	m.cens = r.Uvarint()
	n := r.Count()
	m.pages = make(map[string]*pageStat, n)
	for i := 0; i < n && r.Err() == nil; i++ {
		k := r.StringRef()
		m.pages[k] = &pageStat{
			Censored:       r.Uvarint(),
			Allowed:        r.Uvarint(),
			Proxied:        r.Uvarint(),
			CustomCategory: r.Bool(),
		}
	}
	m.paths = decTripleMap(r)
}
