package core

import (
	"fmt"
	"runtime"
	"strings"
	"testing"

	"syriafilter/internal/bittorrent"
	"syriafilter/internal/logfmt"
	"syriafilter/internal/pipeline"
)

// benchKeywords is a fixed blacklist so the bt render does not depend on
// running discovery first.
var btKeywords = []string{"proxy", "hotspotshield", "ultrareach", "israel", "ultrasurf"}

// renderUserReport flattens the CDF pointers into deterministic text.
func renderUserReport(rep UserReport) string {
	return fmt.Sprintf("%d %d %v %.9f %.9f %.9f %.9f q50=%.3f/%.3f",
		rep.TotalUsers, rep.CensoredUsers, rep.CensoredPerUser,
		rep.ShareActiveCensored, rep.ShareActiveOthers,
		rep.MeanActivityCensored, rep.MeanActivityOthers,
		rep.ActivityCensored.Quantile(0.5), rep.ActivityOthers.Quantile(0.5))
}

func renderAnonymizers(rep AnonymizerReport) string {
	return fmt.Sprintf("%d %d %d %d q50=%.3f q90=%.3f ratio50=%.3f",
		rep.Hosts, rep.NeverFiltered, rep.Requests, rep.FilteredHosts,
		rep.RequestsCDF.Quantile(0.5), rep.RequestsCDF.Quantile(0.9),
		rep.RatioCDF.Quantile(0.5))
}

// experimentRender produces, per experiment id, a deterministic byte
// rendering of every result that experiment reads — the equivalence
// oracle for subset engines.
var experimentRender = map[string]func(*Analyzer) string{
	"table1":  func(a *Analyzer) string { return fmt.Sprintf("%#v", a.Table1()) },
	"table3":  func(a *Analyzer) string { return fmt.Sprintf("%#v", a.Table3()) },
	"table4":  func(a *Analyzer) string { al, ce := a.TopDomains(25); return fmt.Sprintf("%#v %#v", al, ce) },
	"table5":  func(a *Analyzer) string { return fmt.Sprintf("%#v", a.Table5(aug(3, 6), aug(3, 12), 2*3600, 10)) },
	"table6":  func(a *Analyzer) string { return fmt.Sprintf("%v %v", a.ProxySimilarity(), a.ProxyCategoryLabels()) },
	"table7":  func(a *Analyzer) string { return fmt.Sprintf("%#v", a.RedirectHosts(10)) },
	"table8":  func(a *Analyzer) string { return fmt.Sprintf("%#v", a.DiscoverFilters(0).Domains) },
	"table9":  func(a *Analyzer) string { return fmt.Sprintf("%#v", a.Table9(a.DiscoverFilters(0))) },
	"table10": func(a *Analyzer) string { return fmt.Sprintf("%#v", a.DiscoverFilters(0).Keywords) },
	"table11": func(a *Analyzer) string { return fmt.Sprintf("%#v", a.CountryRatios()) },
	"table12": func(a *Analyzer) string { return fmt.Sprintf("%#v", a.IsraeliSubnets()) },
	"table13": func(a *Analyzer) string { return fmt.Sprintf("%#v", a.SocialNetworks()) },
	"table14": func(a *Analyzer) string { return fmt.Sprintf("%#v", a.FacebookPages()) },
	"table15": func(a *Analyzer) string { return fmt.Sprintf("%#v", a.SocialPlugins(20)) },
	"fig1":    func(a *Analyzer) string { al, ce := a.PortDistribution(); return fmt.Sprintf("%#v %#v", al, ce) },
	"fig2":    func(a *Analyzer) string { return fmt.Sprintf("%#v", a.DomainFreqDistribution()) },
	"fig3": func(a *Analyzer) string {
		return fmt.Sprintf("%#v %#v", a.CensoredCategories(false), a.CensoredCategories(true))
	},
	"fig4": func(a *Analyzer) string { return renderUserReport(a.UserAnalysis()) },
	"fig5": func(a *Analyzer) string { return fmt.Sprintf("%#v", a.TimeSeries(aug(1, 0), aug(7, 0))) },
	"fig6": func(a *Analyzer) string { return fmt.Sprintf("%#v", a.RCV(aug(3, 0), aug(4, 0))) },
	"fig7": func(a *Analyzer) string {
		return fmt.Sprintf("%#v %v", a.ProxyLoads(), a.ProxyShareSeries(aug(3, 0), aug(3, 6), true))
	},
	"fig8": func(a *Analyzer) string {
		return fmt.Sprintf("%#v %#v", a.TorAnalysis(), a.TorHourly(aug(1, 0), aug(7, 0)))
	},
	"fig9":   func(a *Analyzer) string { return fmt.Sprintf("%#v", a.RFilter(aug(1, 0), aug(7, 0))) },
	"fig10":  func(a *Analyzer) string { return renderAnonymizers(a.Anonymizers()) },
	"https":  func(a *Analyzer) string { return fmt.Sprintf("%#v", a.HTTPSAnalysis()) },
	"bt":     func(a *Analyzer) string { return fmt.Sprintf("%#v", a.BitTorrent(btKeywords)) },
	"gcache": func(a *Analyzer) string { return fmt.Sprintf("%#v", a.GoogleCache()) },
	"probing": func(a *Analyzer) string {
		d := a.Dataset(DFull)
		return fmt.Sprintf("%#v %#v", d, a.DiscoverFilters(0))
	},
	"groundtruth": func(a *Analyzer) string { return fmt.Sprintf("%#v", a.DiscoverFilters(0)) },
}

// Every subset engine must reproduce the full Analyzer's results
// byte-for-byte on the shared corpus.
func TestSubsetEnginesMatchFullAnalyzer(t *testing.T) {
	f := corpus(t)
	for _, id := range Experiments() {
		id := id
		t.Run(id, func(t *testing.T) {
			render, ok := experimentRender[id]
			if !ok {
				t.Fatalf("no render oracle for experiment %q", id)
			}
			mods, err := ModulesFor(id)
			if err != nil {
				t.Fatal(err)
			}
			sub, err := NewAnalyzerFor(Options{
				Categories: f.gen.CategoryDB(),
				Consensus:  f.gen.Consensus(),
				TitleDB:    bittorrent.NewTitleDB(),
			}, mods...)
			if err != nil {
				t.Fatal(err)
			}
			if got := len(sub.Metrics()); got != len(mods) {
				t.Fatalf("subset engine has %d modules, want %d", got, len(mods))
			}
			for i := range f.records {
				sub.Observe(&f.records[i])
			}
			want := render(f.analyzer)
			got := render(sub)
			if got != want {
				t.Errorf("subset result differs from full analyzer\n got: %.300s\nwant: %.300s", got, want)
			}
		})
	}
}

// Parallel per-file ingestion must merge deterministically: the same
// per-proxy file split analyzed with 1 worker and with GOMAXPROCS
// workers yields byte-identical results, which also match the serial
// in-memory reference.
func TestParallelPerFileIngestDeterministic(t *testing.T) {
	f := corpus(t)

	// Split the corpus per proxy, mirroring the real on-disk layout.
	parts := make([][]logfmt.Record, logfmt.NumProxies)
	for i := range f.records {
		pi := f.records[i].Proxy() - logfmt.FirstProxy
		parts[pi] = append(parts[pi], f.records[i])
	}

	opt := Options{
		Categories: f.gen.CategoryDB(),
		Consensus:  f.gen.Consensus(),
		TitleDB:    bittorrent.NewTitleDB(),
	}
	runWith := func(workers int) *Analyzer {
		srcs := make([]pipeline.Scanner, 0, len(parts))
		for _, part := range parts {
			srcs = append(srcs, pipeline.NewSliceScanner(part))
		}
		an, err := pipeline.RunScanners(srcs, workers,
			func() *Analyzer { return NewAnalyzer(opt) },
			func(a *Analyzer, r *logfmt.Record) { a.Observe(r) },
			func(dst, src *Analyzer) { dst.Merge(src) },
		)
		if err != nil {
			t.Fatal(err)
		}
		return an
	}

	renderAll := func(a *Analyzer) string {
		var sb strings.Builder
		for _, id := range Experiments() {
			fmt.Fprintf(&sb, "%s: %s\n", id, experimentRender[id](a))
		}
		return sb.String()
	}

	serial := runWith(1)
	parallel := runWith(runtime.GOMAXPROCS(0))
	again := runWith(runtime.GOMAXPROCS(0))

	want := renderAll(f.analyzer)
	if got := renderAll(serial); got != want {
		t.Error("1-worker per-file ingest differs from serial reference")
	}
	if got := renderAll(parallel); got != want {
		t.Error("GOMAXPROCS per-file ingest differs from serial reference")
	}
	if renderAll(parallel) != renderAll(again) {
		t.Error("two GOMAXPROCS runs disagree: merge is not deterministic")
	}
}

func TestEngineRegistry(t *testing.T) {
	names := AllMetrics()
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			t.Errorf("duplicate module name %q", n)
		}
		seen[n] = true
	}
	// Module Name() methods must agree with their registry names.
	e, err := NewEngine(Options{})
	if err != nil {
		t.Fatal(err)
	}
	got := e.Metrics()
	if len(got) != len(names) {
		t.Fatalf("full engine has %d modules, registry has %d", len(got), len(names))
	}
	for i, n := range names {
		if got[i] != n {
			t.Errorf("module %d: Name() = %q, registry name %q", i, got[i], n)
		}
		if e.Metric(n) == nil {
			t.Errorf("Metric(%q) = nil on a full engine", n)
		}
	}
	// Every experiment's declared modules must exist.
	for id, mods := range experimentModules {
		for _, m := range mods {
			if !seen[m] {
				t.Errorf("experiment %q names unknown module %q", id, m)
			}
		}
	}
}

func TestEngineErrors(t *testing.T) {
	if _, err := NewEngine(Options{}, "nope"); err == nil {
		t.Error("unknown module name should error")
	}
	if _, err := NewAnalyzerFor(Options{}, "datasets", "bogus"); err == nil {
		t.Error("unknown module name should error")
	}
	if _, err := ModulesFor("table99"); err == nil {
		t.Error("unknown experiment id should error")
	}

	// Asking a subset engine for a result it was not built for panics
	// with a message naming the module.
	sub, err := NewAnalyzerFor(Options{}, "datasets")
	if err != nil {
		t.Fatal(err)
	}
	func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Error("expected panic from missing module")
				return
			}
			if msg := fmt.Sprint(r); !strings.Contains(msg, "domains") {
				t.Errorf("panic message should name the missing module: %v", msg)
			}
		}()
		sub.TopDomains(5)
	}()

	// Merging engines with different module sets panics.
	a, _ := NewEngine(Options{}, "datasets")
	b, _ := NewEngine(Options{}, "datasets", "domains")
	func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic from mismatched merge")
			}
		}()
		a.Merge(b)
	}()
}

func TestModulesForUnion(t *testing.T) {
	mods, err := ModulesFor("table1", "table4", "fig5", "table8")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"datasets", "domains", "timeseries", "tokens"}
	if len(mods) != len(want) {
		t.Fatalf("modules = %v, want %v", mods, want)
	}
	for i := range want {
		if mods[i] != want[i] {
			t.Fatalf("modules = %v, want %v (canonical order)", mods, want)
		}
	}
}
