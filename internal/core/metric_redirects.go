package core

import (
	"syriafilter/internal/logfmt"
	"syriafilter/internal/statecodec"
	"syriafilter/internal/stats"
)

// redirectsMetric accumulates the policy_redirect host counts of Table 7.
type redirectsMetric struct {
	hosts *stats.Counter
}

func newRedirectsMetric(*Engine) *redirectsMetric {
	return &redirectsMetric{hosts: stats.NewCounter()}
}

func (m *redirectsMetric) Name() string { return "redirects" }

func (m *redirectsMetric) Observe(rec *logfmt.Record) {
	if rec.Exception == logfmt.ExPolicyRedirect {
		m.hosts.Add(rec.Host)
	}
}

func (m *redirectsMetric) Merge(other Metric) {
	m.hosts.Merge(other.(*redirectsMetric).hosts)
}

func (m *redirectsMetric) EncodeState(w *statecodec.Writer) {
	w.Byte(1)
	encCounter(w, m.hosts)
}

func (m *redirectsMetric) DecodeState(r *statecodec.Reader) {
	checkVersion(r, "redirects", 1)
	m.hosts = decCounter(r)
}
