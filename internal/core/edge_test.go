package core

import (
	"testing"
	"time"

	"syriafilter/internal/logfmt"
)

// Every result function must behave on an empty analyzer: no panics, sane
// zero values. This guards cmd/censorlyzer against degenerate inputs
// (e.g. an empty or fully corrupted log file).
func TestEmptyAnalyzerResults(t *testing.T) {
	a := NewAnalyzer(Options{})
	from := time.Date(2011, 8, 1, 0, 0, 0, 0, time.UTC).Unix()
	to := time.Date(2011, 8, 2, 0, 0, 0, 0, time.UTC).Unix()

	if got := a.Table1(); len(got) != 4 || got[0].Requests != 0 {
		t.Errorf("Table1 = %+v", got)
	}
	if d := a.Dataset(DFull); d.Total != 0 || d.Censored() != 0 || d.Errors() != 0 {
		t.Errorf("Dataset = %+v", d)
	}
	al, ce := a.TopDomains(10)
	if len(al) != 0 || len(ce) != 0 {
		t.Errorf("TopDomains = %v / %v", al, ce)
	}
	if wins := a.Table5(from, to, 7200, 5); len(wins) != 12 {
		t.Errorf("Table5 windows = %d", len(wins))
	}
	m := a.ProxySimilarity()
	if len(m) != 7 || m[0][0] != 0 { // empty profiles: no self-similarity
		t.Errorf("similarity = %v", m)
	}
	if rows := a.RedirectHosts(5); len(rows) != 0 {
		t.Errorf("redirects = %v", rows)
	}
	d := a.DiscoverFilters(0)
	if len(d.Domains) != 0 || len(d.Keywords) != 0 {
		t.Errorf("discovery = %+v", d)
	}
	if rows := a.Table9(d); len(rows) != 0 {
		t.Errorf("table9 = %v", rows)
	}
	if rows := a.CountryRatios(); len(rows) != 0 {
		t.Errorf("countries = %v", rows)
	}
	if rows := a.IsraeliSubnets(); len(rows) != 0 {
		t.Errorf("subnets = %v", rows)
	}
	if rows := a.FacebookPages(); len(rows) != 0 {
		t.Errorf("pages = %v", rows)
	}
	if rows := a.SocialPlugins(10); len(rows) != 0 {
		t.Errorf("plugins = %v", rows)
	}
	rep := a.UserAnalysis()
	if rep.TotalUsers != 0 || rep.CensoredUsers != 0 {
		t.Errorf("users = %+v", rep)
	}
	if pts := a.RCV(from, to); len(pts) != 288 {
		t.Errorf("RCV points = %d", len(pts))
	}
	if pts := a.RFilter(from, to); pts != nil {
		t.Errorf("RFilter should be nil without censored relays, got %d points", len(pts))
	}
	tor := a.TorAnalysis()
	if tor.Total != 0 {
		t.Errorf("tor = %+v", tor)
	}
	anon := a.Anonymizers()
	if anon.Hosts != 0 || anon.NeverFiltered != 0 {
		t.Errorf("anonymizers = %+v", anon)
	}
	https := a.HTTPSAnalysis()
	if https.Total != 0 || https.ShareOfTraffic != 0 {
		t.Errorf("https = %+v", https)
	}
	bt := a.BitTorrent(nil)
	if bt.Announces != 0 || bt.AllowedShare != 0 {
		t.Errorf("bt = %+v", bt)
	}
	if gc := a.GoogleCache(); gc.Total != 0 {
		t.Errorf("gcache = %+v", gc)
	}
}

// Merging an empty analyzer is the identity.
func TestMergeEmptyIsIdentity(t *testing.T) {
	f := corpus(t)
	a := NewAnalyzer(Options{Categories: f.gen.CategoryDB(), Consensus: f.gen.Consensus()})
	for i := range f.records {
		a.Observe(&f.records[i])
	}
	before := a.Dataset(DFull)
	beforeTor := a.TorAnalysis()
	empty := NewAnalyzer(Options{Categories: f.gen.CategoryDB(), Consensus: f.gen.Consensus()})
	a.Merge(empty)
	if a.Dataset(DFull) != before {
		t.Error("merge with empty changed dataset counts")
	}
	if a.TorAnalysis() != beforeTor {
		t.Error("merge with empty changed tor counts")
	}
}

// Classification sanity on hand-built records.
func TestObserveSingleRecords(t *testing.T) {
	a := NewAnalyzer(Options{})
	rec := logfmt.Record{
		Time: time.Date(2011, 8, 2, 9, 0, 0, 0, time.UTC).Unix(),
		Host: "www.example.com", Port: 80, Path: "/x",
		Filter: logfmt.Observed, Exception: logfmt.ExNone,
	}
	rec.SetProxy(43)
	a.Observe(&rec)

	rec2 := rec
	rec2.Host = "blocked.example"
	rec2.Filter = logfmt.Denied
	rec2.Exception = logfmt.ExPolicyDenied
	a.Observe(&rec2)

	rec3 := rec
	rec3.Exception = logfmt.ExTCPError
	rec3.Filter = logfmt.Denied
	a.Observe(&rec3)

	d := a.Dataset(DFull)
	if d.Total != 3 || d.Allowed() != 1 || d.Censored() != 1 || d.Errors() != 1 {
		t.Fatalf("counts = %+v", d)
	}
	al, ce := a.TopDomains(5)
	if len(al) != 1 || al[0].Domain != "example.com" {
		t.Errorf("allowed = %v", al)
	}
	if len(ce) != 1 || ce[0].Domain != "blocked.example" {
		t.Errorf("censored = %v", ce)
	}
	loads := a.ProxyLoads()
	if loads[1].Total != 3 || loads[1].Censored != 1 { // SG-43
		t.Errorf("loads = %+v", loads)
	}
}

// The tokenizer drives keyword discovery; pin its behaviour.
func TestTokenizeURL(t *testing.T) {
	toks := TokenizeURL("www.Google.com", "/tbproxy/af/query", "q=israel+news&id=123abc999")
	want := map[string]bool{
		"google": true, "tbproxy": true, "query": true, "israel": true, "news": true,
	}
	got := map[string]bool{}
	for _, tok := range toks {
		got[tok] = true
	}
	for w := range want {
		if !got[w] {
			t.Errorf("missing token %q in %v", w, toks)
		}
	}
	// Short runs and digit-broken runs excluded.
	for _, bad := range []string{"af", "q", "id", "abc", "www", "com"} {
		if got[bad] {
			t.Errorf("unexpected token %q", bad)
		}
	}
}

func TestTokenizeLengthBounds(t *testing.T) {
	long := "/" + string(make([]byte, 30))
	for i := range long[1:] {
		_ = i
	}
	toks := TokenizeURL("h.example", "/abcdefghijklmnopqrstuvwxyz", "")
	for _, tok := range toks {
		if len(tok) > 24 {
			t.Errorf("token over bound: %q", tok)
		}
	}
	_ = long
	if toks := TokenizeURL("", "/abc", ""); len(toks) != 0 {
		t.Errorf("3-char token kept: %v", toks)
	}
}

// Dsample membership is deterministic: the same record always lands in or
// out of the sample, so reruns and merges agree.
func TestSampleDeterministic(t *testing.T) {
	a := NewAnalyzer(Options{})
	rec := logfmt.Record{
		Time: time.Date(2011, 8, 2, 9, 0, 0, 0, time.UTC).Unix(),
		Host: "determinism.example", Path: "/p",
	}
	in1 := a.inSample(&rec)
	for i := 0; i < 100; i++ {
		if a.inSample(&rec) != in1 {
			t.Fatal("sample membership flapped")
		}
	}
}
