package core

import (
	"syriafilter/internal/logfmt"
	"syriafilter/internal/stats"
)

// cappedCounter bounds a token vocabulary: once max distinct keys exist,
// only already-seen keys keep counting. max <= 0 means unbounded.
type cappedCounter struct {
	counter *stats.Counter
	max     int
}

func newCappedCounter(max int) *cappedCounter {
	return &cappedCounter{counter: stats.NewCounter(), max: max}
}

func (c *cappedCounter) add(tok string) {
	if c.max > 0 && c.counter.Len() >= c.max && c.counter.Count(tok) == 0 {
		return
	}
	c.counter.Add(tok)
}

// tokensMetric accumulates the §5.4 keyword-discovery inputs: the
// allowed-URL and proxied-URL token vocabularies and the stored censored
// URLs. Tables 8–10 combine it with the domains module.
type tokensMetric struct {
	cx  *recordCtx
	opt *Options

	allowed      *cappedCounter
	proxied      *cappedCounter
	censoredURLs []censoredURL
}

func newTokensMetric(e *Engine) *tokensMetric {
	return &tokensMetric{
		cx:      &e.cx,
		opt:     &e.opt,
		allowed: newCappedCounter(e.opt.MaxTokenEntries),
		proxied: newCappedCounter(0),
	}
}

func (m *tokensMetric) Name() string { return "tokens" }

func (m *tokensMetric) Observe(rec *logfmt.Record) {
	if m.cx.allowed && !m.cx.proxied {
		tokenizeRecord(rec, m.allowed.add)
	}
	if m.cx.proxied {
		tokenizeRecord(rec, m.proxied.add)
	}
	if rec.Exception == logfmt.ExPolicyDenied && len(m.censoredURLs) < m.opt.MaxStoredCensoredURLs {
		m.censoredURLs = append(m.censoredURLs, censoredURL{
			Domain: m.cx.Domain(), URL: rec.URL(), Host: rec.Host,
		})
	}
}

func (m *tokensMetric) Merge(other Metric) {
	o := other.(*tokensMetric)
	m.allowed.counter.Merge(o.allowed.counter)
	m.proxied.counter.Merge(o.proxied.counter)
	m.censoredURLs = append(m.censoredURLs, o.censoredURLs...)
	if len(m.censoredURLs) > m.opt.MaxStoredCensoredURLs {
		m.censoredURLs = m.censoredURLs[:m.opt.MaxStoredCensoredURLs]
	}
}
