package core

import (
	"sort"

	"syriafilter/internal/logfmt"
	"syriafilter/internal/statecodec"
)

// cappedCounter bounds a token vocabulary: once max distinct keys exist,
// only already-seen keys keep counting. max <= 0 means unbounded. In
// sketch mode the cap is moot — the sketch is bounded by construction —
// so add skips the extra lookup.
type cappedCounter struct {
	counter kcounter
	exact   bool
	max     int
}

func newCappedCounter(e *Engine, max int) *cappedCounter {
	return &cappedCounter{counter: e.newCounter(), exact: !e.Sketched(), max: max}
}

func (c *cappedCounter) add(tok string) {
	if c.exact && c.max > 0 && c.counter.Distinct() >= uint64(c.max) && c.counter.Count(tok) == 0 {
		return
	}
	c.counter.Add(tok)
}

// tokensMetric accumulates the §5.4 keyword-discovery inputs: the
// allowed-URL and proxied-URL token vocabularies and the stored censored
// URLs. Tables 8–10 combine it with the domains module.
type tokensMetric struct {
	cx  *recordCtx
	opt *Options
	e   *Engine

	allowed      *cappedCounter
	proxied      *cappedCounter
	censoredURLs []censoredURL
}

func newTokensMetric(e *Engine) *tokensMetric {
	return &tokensMetric{
		cx:      &e.cx,
		opt:     &e.opt,
		e:       e,
		allowed: newCappedCounter(e, e.opt.MaxTokenEntries),
		proxied: newCappedCounter(e, 0),
	}
}

func (m *tokensMetric) Name() string { return "tokens" }

func (m *tokensMetric) Observe(rec *logfmt.Record) {
	if m.cx.allowed && !m.cx.proxied {
		tokenizeRecord(rec, m.allowed.add)
	}
	if m.cx.proxied {
		tokenizeRecord(rec, m.proxied.add)
	}
	if rec.Exception == logfmt.ExPolicyDenied && m.opt.MaxStoredCensoredURLs > 0 {
		max := m.opt.MaxStoredCensoredURLs
		if len(m.censoredURLs) >= 2*max {
			m.censoredURLs = keepSmallestCensored(m.censoredURLs, max)
		}
		m.censoredURLs = append(m.censoredURLs, censoredURL{
			Domain: m.cx.Domain(), URL: rec.URL(), Host: rec.Host,
		})
	}
}

func (m *tokensMetric) sketchSizes() SketchSizes {
	var s SketchSizes
	s.add(kcounterSizes(m.allowed.counter))
	s.add(kcounterSizes(m.proxied.counter))
	return s
}

func (m *tokensMetric) Merge(other Metric) {
	o := other.(*tokensMetric)
	m.allowed.counter.Merge(o.allowed.counter)
	m.proxied.counter.Merge(o.proxied.counter)
	m.censoredURLs = append(m.censoredURLs, o.censoredURLs...)
	if len(m.censoredURLs) > m.opt.MaxStoredCensoredURLs {
		m.censoredURLs = keepSmallestCensored(m.censoredURLs, m.opt.MaxStoredCensoredURLs)
	}
}

// EncodeState writes the censored-URL store in its canonical sorted,
// capped form (the view every consumer reads), so the encoding is a
// pure function of the observed corpus even when the raw slice briefly
// holds up to 2x the cap between compactions.
func (m *tokensMetric) EncodeState(w *statecodec.Writer) {
	if m.e.Sketched() {
		w.Byte(2)
	} else {
		w.Byte(1)
	}
	encKCounter(w, m.allowed.counter)
	encKCounter(w, m.proxied.counter)
	urls := m.censored()
	w.Uvarint(uint64(len(urls)))
	for i := range urls {
		w.StringRef(urls[i].Domain)
		w.String(urls[i].URL)
		w.StringRef(urls[i].Host)
	}
}

func (m *tokensMetric) DecodeState(r *statecodec.Reader) {
	v := checkVersion(r, "tokens", 2)
	if v == 2 {
		m.allowed.counter = m.e.decKCounterSketch(r)
		m.proxied.counter = m.e.decKCounterSketch(r)
	} else {
		m.allowed.counter = m.e.decKCounterExact(r)
		m.proxied.counter = m.e.decKCounterExact(r)
	}
	n := r.Count()
	m.censoredURLs = make([]censoredURL, 0, n)
	for i := 0; i < n && r.Err() == nil; i++ {
		m.censoredURLs = append(m.censoredURLs, censoredURL{
			Domain: r.StringRef(), URL: r.String(), Host: r.StringRef(),
		})
	}
}

// censored returns the store in its canonical form — sorted by
// (Domain, URL, Host) and truncated to the cap — which is the view every
// consumer reads. Between compactions the raw slice may briefly hold up
// to 2x the cap; canonicalizing at the read boundary keeps the exposed
// set (and its order) a pure function of the observed corpus. It works
// on a copy: published snapshots are queried concurrently (serve's
// immutability contract), so a read must never reorder shared state.
func (m *tokensMetric) censored() []censoredURL {
	s := append([]censoredURL(nil), m.censoredURLs...)
	if max := m.opt.MaxStoredCensoredURLs; max > 0 && len(s) > max {
		return keepSmallestCensored(s, max)
	}
	sortCensored(s)
	return s
}

// keepSmallestCensored truncates the store to the max smallest entries
// under the (Domain, URL, Host) order. Selecting by value rather than by
// arrival makes the kept set a pure function of the observed multiset:
// each worker's store always contains the k smallest entries it has seen
// (Observe compacts at 2k, amortizing the sort), so any merge order or
// worker count converges on the k smallest of the whole corpus — unlike
// first-k-by-arrival, which depended on scheduler interleaving past the
// cap.
func keepSmallestCensored(s []censoredURL, max int) []censoredURL {
	if max < 0 {
		max = 0
	}
	sortCensored(s)
	return s[:max]
}

func sortCensored(s []censoredURL) {
	sort.Slice(s, func(i, j int) bool {
		a, b := &s[i], &s[j]
		if a.Domain != b.Domain {
			return a.Domain < b.Domain
		}
		if a.URL != b.URL {
			return a.URL < b.URL
		}
		return a.Host < b.Host
	})
}
