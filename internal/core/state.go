package core

import (
	"bytes"
	"fmt"
	"io"
	"sort"

	"syriafilter/internal/statecodec"
	"syriafilter/internal/stats"
)

// Engine state framing. The engine writes one named, length-prefixed
// section per registered module, so a reader can pair sections with
// modules by registry name: a subset engine round-trips its subset, a
// full engine reads a full checkpoint, and a future registry reorder
// changes nothing. Each section is encoded with its own
// statecodec.Writer (own string table), which is what makes unknown
// sections skippable.
//
//	"SFEN" | format version byte | uvarint section count
//	per section: string module name | blob payload
//
// A payload is the module's EncodeState output and leads with that
// module's own version byte.
const (
	engineStateMagic   = "SFEN"
	engineStateVersion = 1
)

// MarshalState serializes the engine's accumulated metric state. The
// encoding is deterministic: marshaling the same logical state (however
// it was reached — one pass, parallel merge, or a decode) produces
// identical bytes, which is what lets tests pin restore(checkpoint(S))
// == S at the byte level.
func (e *Engine) MarshalState() []byte {
	w := statecodec.NewWriter()
	w.Raw([]byte(engineStateMagic))
	w.Byte(engineStateVersion)
	w.Uvarint(uint64(len(e.modules)))
	for _, m := range e.modules {
		mw := statecodec.NewWriter()
		m.EncodeState(mw)
		w.String(m.Name())
		w.Blob(mw.Bytes())
	}
	return w.Bytes()
}

// UnmarshalState replaces the engine's metric state with a state
// previously produced by MarshalState. Call it on a freshly built
// engine with the same Options the writing engine used: the stream
// carries accumulated counts only, not the configuration databases.
//
// Sections are paired with modules by name. A section for a module this
// engine was not built with is skipped (a full checkpoint loads into a
// subset engine); a registered module with no section is an error — the
// module would silently serve empty results otherwise.
func (e *Engine) UnmarshalState(b []byte) error {
	r := statecodec.NewReader(b)
	if magic := r.Raw(len(engineStateMagic)); r.Err() != nil || string(magic) != engineStateMagic {
		return fmt.Errorf("core: not an engine state stream (bad magic)")
	}
	if v := r.Byte(); r.Err() == nil && v != engineStateVersion {
		return fmt.Errorf("core: engine state version %d unsupported (max %d)", v, engineStateVersion)
	}
	n := r.Count()
	decoded := make(map[string]bool, n)
	for i := 0; i < n && r.Err() == nil; i++ {
		name := r.String()
		payload := r.Blob()
		if r.Err() != nil {
			break
		}
		m := e.byName[name]
		if m == nil {
			continue // a module this engine was built without
		}
		if decoded[name] {
			return fmt.Errorf("core: duplicate state section %q", name)
		}
		decoded[name] = true
		mr := statecodec.NewReader(payload)
		m.DecodeState(mr)
		if err := mr.Err(); err != nil {
			return fmt.Errorf("core: module %q: %w", name, err)
		}
		if left := mr.Remaining(); left != 0 {
			return fmt.Errorf("core: module %q: %d trailing bytes", name, left)
		}
	}
	if err := r.Err(); err != nil {
		return err
	}
	if r.Remaining() != 0 {
		return fmt.Errorf("core: %d trailing bytes after engine state", r.Remaining())
	}
	if len(decoded) < len(e.modules) {
		var missing []string
		for _, m := range e.modules {
			if !decoded[m.Name()] {
				missing = append(missing, m.Name())
			}
		}
		return fmt.Errorf("core: state stream has no sections for modules %v; rebuild the checkpoint with a matching module subset", missing)
	}
	return nil
}

// WriteState writes MarshalState to w.
func (e *Engine) WriteState(w io.Writer) error {
	_, err := w.Write(e.MarshalState())
	return err
}

// ReadState reads r to EOF and applies UnmarshalState.
func (e *Engine) ReadState(r io.Reader) error {
	b, err := io.ReadAll(r)
	if err != nil {
		return fmt.Errorf("core: reading engine state: %w", err)
	}
	return e.UnmarshalState(b)
}

// checkVersion reads and validates a module's leading version byte.
func checkVersion(r *statecodec.Reader, module string, max byte) byte {
	v := r.Byte()
	if r.Err() == nil && (v == 0 || v > max) {
		r.Failf("core: %s state version %d unsupported (max %d)", module, v, max)
	}
	return v
}

// --- shared field codecs ---
//
// All of them iterate in sorted key order, making every module encoding
// a pure function of its logical state.

func sortedStrKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// encStrCounts / decStrCounts code a map[string]uint64 with interned keys.
func encStrCounts(w *statecodec.Writer, m map[string]uint64) {
	w.Uvarint(uint64(len(m)))
	for _, k := range sortedStrKeys(m) {
		w.StringRef(k)
		w.Uvarint(m[k])
	}
}

func decStrCounts(r *statecodec.Reader) map[string]uint64 {
	n := r.Count()
	m := make(map[string]uint64, n)
	for i := 0; i < n && r.Err() == nil; i++ {
		k := r.StringRef()
		m[k] = r.Uvarint()
	}
	return m
}

// encCounter / decCounter code a stats.Counter (the total is recomputed
// on decode: a Counter's total is the sum of its entries).
func encCounter(w *statecodec.Writer, c *stats.Counter) {
	type kv struct {
		k string
		v uint64
	}
	entries := make([]kv, 0, c.Len())
	c.Each(func(k string, v uint64) { entries = append(entries, kv{k, v}) })
	sort.Slice(entries, func(i, j int) bool { return entries[i].k < entries[j].k })
	w.Uvarint(uint64(len(entries)))
	for _, e := range entries {
		w.StringRef(e.k)
		w.Uvarint(e.v)
	}
}

func decCounter(r *statecodec.Reader) *stats.Counter {
	n := r.Count()
	c := stats.NewCounter()
	for i := 0; i < n && r.Err() == nil; i++ {
		k := r.StringRef()
		c.AddN(k, r.Uvarint())
	}
	return c
}

func decI64Counts(r *statecodec.Reader) map[int64]uint64 {
	n := r.Count()
	m := make(map[int64]uint64, n)
	for i := 0; i < n && r.Err() == nil; i++ {
		k := r.Varint()
		m[k] = r.Uvarint()
	}
	return m
}

func encI64Counts(w *statecodec.Writer, m map[int64]uint64) {
	keys := make([]int64, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	w.Uvarint(uint64(len(m)))
	for _, k := range keys {
		w.Varint(k)
		w.Uvarint(m[k])
	}
}

func encU16Counts(w *statecodec.Writer, m map[uint16]uint64) {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, int(k))
	}
	sort.Ints(keys)
	w.Uvarint(uint64(len(m)))
	for _, k := range keys {
		w.Uvarint(uint64(k))
		w.Uvarint(m[uint16(k)])
	}
}

func decU16Counts(r *statecodec.Reader) map[uint16]uint64 {
	n := r.Count()
	m := make(map[uint16]uint64, n)
	for i := 0; i < n && r.Err() == nil; i++ {
		k := r.Uvarint()
		v := r.Uvarint()
		if k > 0xffff {
			r.Failf("core: port %d out of range", k)
			return m
		}
		m[uint16(k)] = v
	}
	return m
}

// encIPSet / decIPSet code a set of IPv4 addresses as sorted deltas.
func encIPSet(w *statecodec.Writer, set map[uint32]struct{}) {
	ips := make([]uint32, 0, len(set))
	for ip := range set {
		ips = append(ips, ip)
	}
	sort.Slice(ips, func(i, j int) bool { return ips[i] < ips[j] })
	w.Uvarint(uint64(len(ips)))
	var prev uint32
	for _, ip := range ips {
		w.Uvarint(uint64(ip - prev))
		prev = ip
	}
}

func decIPSet(r *statecodec.Reader) map[uint32]struct{} {
	n := r.Count()
	set := make(map[uint32]struct{}, n)
	var prev uint64
	for i := 0; i < n && r.Err() == nil; i++ {
		prev += r.Uvarint()
		if prev > 0xffffffff {
			r.Failf("core: IPv4 delta overflows at entry %d", i)
			return set
		}
		set[uint32(prev)] = struct{}{}
	}
	return set
}

// encHashSet / decHashSet code a set of 20-byte digests, sorted.
func encHashSet(w *statecodec.Writer, set map[[20]byte]struct{}) {
	hashes := make([][20]byte, 0, len(set))
	for h := range set {
		hashes = append(hashes, h)
	}
	sort.Slice(hashes, func(i, j int) bool {
		return bytes.Compare(hashes[i][:], hashes[j][:]) < 0
	})
	w.Uvarint(uint64(len(hashes)))
	for i := range hashes {
		w.Raw(hashes[i][:])
	}
}

func decHashSet(r *statecodec.Reader) map[[20]byte]struct{} {
	n := r.Count()
	set := make(map[[20]byte]struct{}, n)
	for i := 0; i < n && r.Err() == nil; i++ {
		var h [20]byte
		copy(h[:], r.Raw(20))
		if r.Err() != nil {
			return set
		}
		set[h] = struct{}{}
	}
	return set
}

// encTripleMap / decTripleMap code a map of censored/allowed/proxied
// triples (the osn watchlist, facebook platform paths).
func encTripleMap(w *statecodec.Writer, m map[string]*triple) {
	w.Uvarint(uint64(len(m)))
	for _, k := range sortedStrKeys(m) {
		ts := m[k]
		w.StringRef(k)
		w.Uvarint(ts.Censored)
		w.Uvarint(ts.Allowed)
		w.Uvarint(ts.Proxied)
	}
}

func decTripleMap(r *statecodec.Reader) map[string]*triple {
	n := r.Count()
	m := make(map[string]*triple, n)
	for i := 0; i < n && r.Err() == nil; i++ {
		k := r.StringRef()
		m[k] = &triple{Censored: r.Uvarint(), Allowed: r.Uvarint(), Proxied: r.Uvarint()}
	}
	return m
}

// encClassCounts / decClassCounts code one dataset row group.
func encClassCounts(w *statecodec.Writer, c *ClassCounts) {
	w.Uvarint(c.Total)
	w.Uvarint(c.Proxied)
	w.Uvarint(uint64(len(c.ByException)))
	for _, v := range c.ByException {
		w.Uvarint(v)
	}
}

func decClassCounts(r *statecodec.Reader, c *ClassCounts) {
	*c = ClassCounts{}
	c.Total = r.Uvarint()
	c.Proxied = r.Uvarint()
	if n := r.Count(); r.Err() == nil && n != len(c.ByException) {
		r.Failf("core: %d exception counters, want %d", n, len(c.ByException))
		return
	}
	for i := range c.ByException {
		c.ByException[i] = r.Uvarint()
	}
}
