package core

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"syriafilter/internal/bittorrent"
	"syriafilter/internal/logfmt"
	"syriafilter/internal/statecodec"
)

func fixtureOptions(f *fixture) Options {
	return Options{
		Categories: f.gen.CategoryDB(),
		Consensus:  f.gen.Consensus(),
		TitleDB:    bittorrent.NewTitleDB(),
	}
}

// renderAllExperiments is the byte-level equivalence oracle: every
// experiment's full result rendering.
func renderAllExperiments(a *Analyzer) string {
	var sb strings.Builder
	for _, id := range Experiments() {
		fmt.Fprintf(&sb, "%s: %s\n", id, experimentRender[id](a))
	}
	return sb.String()
}

// restore(marshal(S)) must reproduce S exactly: every experiment result
// byte-identical, and the re-encoded state byte-identical to the first
// encoding.
func TestEngineStateRoundTrip(t *testing.T) {
	f := corpus(t)
	state := f.analyzer.MarshalState()

	fresh := NewAnalyzer(fixtureOptions(f))
	if err := fresh.UnmarshalState(state); err != nil {
		t.Fatal(err)
	}
	want := renderAllExperiments(f.analyzer)
	if got := renderAllExperiments(fresh); got != want {
		t.Error("restored analyzer renders differently from the original")
	}
	if again := fresh.MarshalState(); !bytes.Equal(again, state) {
		t.Errorf("re-encoded state differs: %d vs %d bytes", len(again), len(state))
	}
}

// Marshaling must be deterministic across equivalent engines: a
// serially observed engine and a merge of two halves encode the same
// state bytes (map iteration order must not leak into the encoding).
func TestEngineStateDeterministic(t *testing.T) {
	f := corpus(t)
	opt := fixtureOptions(f)

	half1, half2 := NewAnalyzer(opt), NewAnalyzer(opt)
	for i := range f.records {
		if i%2 == 0 {
			half1.Observe(&f.records[i])
		} else {
			half2.Observe(&f.records[i])
		}
	}
	half1.Merge(half2)
	if !bytes.Equal(half1.MarshalState(), f.analyzer.MarshalState()) {
		t.Error("merged-engine state bytes differ from serial engine state bytes")
	}
	// And repeated marshaling of the same engine is stable.
	if !bytes.Equal(f.analyzer.MarshalState(), f.analyzer.MarshalState()) {
		t.Error("two MarshalState calls on the same engine disagree")
	}
}

// A subset engine round-trips through its own state, and a full
// checkpoint loads into a subset engine (extra sections skipped).
func TestEngineStateSubsets(t *testing.T) {
	f := corpus(t)
	opt := fixtureOptions(f)
	fullState := f.analyzer.MarshalState()

	for _, id := range []string{"table4", "fig8", "table12", "bt"} {
		mods, err := ModulesFor(id)
		if err != nil {
			t.Fatal(err)
		}
		sub, err := NewAnalyzerFor(opt, mods...)
		if err != nil {
			t.Fatal(err)
		}
		for i := range f.records {
			sub.Observe(&f.records[i])
		}
		want := experimentRender[id](sub)

		// Subset state -> subset engine.
		restored, err := NewAnalyzerFor(opt, mods...)
		if err != nil {
			t.Fatal(err)
		}
		if err := restored.UnmarshalState(sub.MarshalState()); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if got := experimentRender[id](restored); got != want {
			t.Errorf("%s: subset state round-trip changed the result", id)
		}

		// Full checkpoint -> subset engine.
		fromFull, err := NewAnalyzerFor(opt, mods...)
		if err != nil {
			t.Fatal(err)
		}
		if err := fromFull.UnmarshalState(fullState); err != nil {
			t.Fatalf("%s: loading full state: %v", id, err)
		}
		if got := experimentRender[id](fromFull); got != want {
			t.Errorf("%s: full checkpoint loaded into subset engine changed the result", id)
		}
	}
}

// Loading a subset checkpoint into an engine that needs more modules
// must fail loudly, not serve silently-empty results.
func TestEngineStateMissingModules(t *testing.T) {
	f := corpus(t)
	opt := fixtureOptions(f)
	sub, err := NewAnalyzerFor(opt, "datasets")
	if err != nil {
		t.Fatal(err)
	}
	full := NewAnalyzer(opt)
	err = full.UnmarshalState(sub.MarshalState())
	if err == nil {
		t.Fatal("full engine accepted a datasets-only checkpoint")
	}
	if !strings.Contains(err.Error(), "domains") {
		t.Errorf("error should name a missing module: %v", err)
	}
}

// Sections are paired by name, not position: a stream with its module
// sections reordered decodes to the same state.
func TestEngineStateSectionOrderIndependent(t *testing.T) {
	f := corpus(t)
	state := f.analyzer.MarshalState()

	// Reparse the outer framing and rebuild the stream with the
	// sections reversed.
	header := len(engineStateMagic) + 1
	r := statecodec.NewReader(state[header:])
	n := r.Count()
	type section struct {
		name    string
		payload []byte
	}
	secs := make([]section, 0, n)
	for i := 0; i < n; i++ {
		secs = append(secs, section{r.String(), r.Blob()})
	}
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
	w := statecodec.NewWriter()
	w.Raw(state[:header])
	w.Uvarint(uint64(n))
	for i := n - 1; i >= 0; i-- {
		w.String(secs[i].name)
		w.Blob(secs[i].payload)
	}

	fresh := NewAnalyzer(fixtureOptions(f))
	if err := fresh.UnmarshalState(w.Bytes()); err != nil {
		t.Fatal(err)
	}
	if renderAllExperiments(fresh) != renderAllExperiments(f.analyzer) {
		t.Error("section-reversed state decodes to a different analyzer")
	}
}

// Corrupted and truncated state must fail with an error — never panic,
// and never quietly succeed on a prefix.
func TestEngineStateCorruption(t *testing.T) {
	f := corpus(t)
	state := f.analyzer.MarshalState()
	fresh := func() *Analyzer { return NewAnalyzer(fixtureOptions(f)) }

	if err := fresh().UnmarshalState(nil); err == nil {
		t.Error("empty state accepted")
	}
	if err := fresh().UnmarshalState([]byte("BOGUS-not-a-state")); err == nil {
		t.Error("garbage state accepted")
	}
	// A flipped version byte must be rejected.
	bad := append([]byte(nil), state...)
	bad[len(engineStateMagic)] = 99
	if err := fresh().UnmarshalState(bad); err == nil {
		t.Error("unknown format version accepted")
	}
	// Truncations at various points (every point would be slow at this
	// corpus size; step through a spread).
	step := len(state)/97 + 1
	for n := 0; n < len(state); n += step {
		if err := fresh().UnmarshalState(state[:n]); err == nil {
			t.Fatalf("truncation to %d/%d bytes accepted", n, len(state))
		}
	}
	// Trailing garbage is rejected too.
	if err := fresh().UnmarshalState(append(append([]byte(nil), state...), 0xFF)); err == nil {
		t.Error("trailing bytes accepted")
	}
}

// FuzzStateRoundTrip feeds arbitrary log lines through the engine and
// pins the codec invariant: encode → decode → re-encode is
// byte-identical, and every experiment renders identically.
func FuzzStateRoundTrip(f *testing.F) {
	f.Add([]byte("2011-08-03 11:01:02 1.2.3.4 200 OBSERVED - http://example.com/x.html GET example.com 80 /x.html html - 1234 56 - Mozilla news \"News\" SG-42 - - - - - -\n"))
	f.Add([]byte("garbage\nmore garbage\n"))
	f.Add([]byte{})
	fz := corpus(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		an := NewAnalyzer(fixtureOptions(fz))
		// Parse fuzz bytes as log lines; malformed lines are skipped, so
		// arbitrary input still drives Observe with whatever parses.
		for _, line := range bytes.Split(data, []byte("\n")) {
			var rec logfmt.Record
			if err := logfmt.ParseLine(string(line), &rec); err == nil {
				an.Observe(&rec)
			}
		}
		// Mix in a slice of the realistic corpus so the state is never
		// trivially empty.
		off := 0
		if len(data) > 0 {
			off = int(data[0]) * 37 % len(fz.records)
		}
		for i := off; i < len(fz.records) && i < off+500; i++ {
			an.Observe(&fz.records[i])
		}

		state := an.MarshalState()
		restored := NewAnalyzer(fixtureOptions(fz))
		if err := restored.UnmarshalState(state); err != nil {
			t.Fatalf("decode of freshly encoded state failed: %v", err)
		}
		if again := restored.MarshalState(); !bytes.Equal(again, state) {
			t.Fatalf("re-encode differs: %d vs %d bytes", len(again), len(state))
		}
		if renderAllExperiments(restored) != renderAllExperiments(an) {
			t.Fatal("restored analyzer renders differently")
		}
	})
}
