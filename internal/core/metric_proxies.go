package core

import (
	"strings"

	"syriafilter/internal/logfmt"
	"syriafilter/internal/statecodec"
)

// proxiesMetric accumulates the per-proxy (SG-42..48) load, censored
// volume, censored-domain profiles and default category labels: Table 6
// and Figure 7.
type proxiesMetric struct {
	cx           *recordCtx
	total        [logfmt.NumProxies]uint64
	censored     [logfmt.NumProxies]uint64
	slotTotal    [logfmt.NumProxies]map[int64]uint64
	slotCensored [logfmt.NumProxies]map[int64]uint64
	censDomains  [logfmt.NumProxies]map[string]uint64
	labels       [logfmt.NumProxies]map[string]uint64 // default category label sightings
}

func newProxiesMetric(e *Engine) *proxiesMetric {
	m := &proxiesMetric{cx: &e.cx}
	for i := 0; i < logfmt.NumProxies; i++ {
		m.slotTotal[i] = map[int64]uint64{}
		m.slotCensored[i] = map[int64]uint64{}
		m.censDomains[i] = map[string]uint64{}
		m.labels[i] = map[string]uint64{}
	}
	return m
}

func (m *proxiesMetric) Name() string { return "proxies" }

func (m *proxiesMetric) Observe(rec *logfmt.Record) {
	sg := rec.Proxy()
	if sg < logfmt.FirstProxy || sg > logfmt.LastProxy {
		return
	}
	pi := sg - logfmt.FirstProxy
	m.total[pi]++
	m.slotTotal[pi][m.cx.slot]++
	if m.cx.censored {
		m.censored[pi]++
		m.slotCensored[pi][m.cx.slot]++
		m.censDomains[pi][m.cx.Domain()]++
	}
	if rec.Categories != "" && !strings.Contains(rec.Categories, "Blocked") {
		m.labels[pi][rec.Categories]++
	}
}

func (m *proxiesMetric) Merge(other Metric) {
	o := other.(*proxiesMetric)
	for i := 0; i < logfmt.NumProxies; i++ {
		m.total[i] += o.total[i]
		m.censored[i] += o.censored[i]
		mergeI64(m.slotTotal[i], o.slotTotal[i])
		mergeI64(m.slotCensored[i], o.slotCensored[i])
		mergeStr(m.censDomains[i], o.censDomains[i])
		mergeStr(m.labels[i], o.labels[i])
	}
}

func (m *proxiesMetric) EncodeState(w *statecodec.Writer) {
	w.Byte(1)
	w.Uvarint(logfmt.NumProxies)
	for i := 0; i < logfmt.NumProxies; i++ {
		w.Uvarint(m.total[i])
		w.Uvarint(m.censored[i])
		encI64Counts(w, m.slotTotal[i])
		encI64Counts(w, m.slotCensored[i])
		encStrCounts(w, m.censDomains[i])
		encStrCounts(w, m.labels[i])
	}
}

func (m *proxiesMetric) DecodeState(r *statecodec.Reader) {
	checkVersion(r, "proxies", 1)
	if n := r.Count(); r.Err() == nil && n != logfmt.NumProxies {
		r.Failf("core: %d proxies, want %d", n, logfmt.NumProxies)
		return
	}
	for i := 0; i < logfmt.NumProxies && r.Err() == nil; i++ {
		m.total[i] = r.Uvarint()
		m.censored[i] = r.Uvarint()
		m.slotTotal[i] = decI64Counts(r)
		m.slotCensored[i] = decI64Counts(r)
		m.censDomains[i] = decStrCounts(r)
		m.labels[i] = decStrCounts(r)
	}
}
