package core

import (
	"sort"
	"strings"

	"syriafilter/internal/logfmt"
	"syriafilter/internal/statecodec"
)

// proxiesMetric accumulates the per-proxy (SG-42..48) load, censored
// volume, censored-domain profiles and default category labels: Table 6
// and Figure 7.
//
// The per-slot series are stored as one map of per-slot arrays with a
// one-entry cache of the last slot touched (see timeseriesMetric for the
// rationale): on a roughly time-sorted corpus the hot path is an array
// increment, not a map insert.
type proxiesMetric struct {
	cx          *recordCtx
	total       [logfmt.NumProxies]uint64
	censored    [logfmt.NumProxies]uint64
	slots       map[int64]*proxySlot
	censDomains [logfmt.NumProxies]map[string]uint64
	labels      [logfmt.NumProxies]map[string]uint64 // default category label sightings

	lastSlotID int64
	lastSlot   *proxySlot
}

// proxySlot is one 5-minute bucket of per-proxy counts. Zero entries
// mean "never observed" and are skipped when encoding, keeping the state
// byte-compatible with the historical per-proxy-map layout.
type proxySlot struct {
	total    [logfmt.NumProxies]uint64
	censored [logfmt.NumProxies]uint64
}

func newProxiesMetric(e *Engine) *proxiesMetric {
	m := &proxiesMetric{cx: &e.cx, slots: map[int64]*proxySlot{}}
	for i := 0; i < logfmt.NumProxies; i++ {
		m.censDomains[i] = map[string]uint64{}
		m.labels[i] = map[string]uint64{}
	}
	return m
}

func (m *proxiesMetric) Name() string { return "proxies" }

// slot returns the bucket for id, creating it if needed, through the
// one-entry cache.
func (m *proxiesMetric) slot(id int64) *proxySlot {
	if m.lastSlot != nil && m.lastSlotID == id {
		return m.lastSlot
	}
	s := m.slots[id]
	if s == nil {
		s = &proxySlot{}
		m.slots[id] = s
	}
	m.lastSlotID, m.lastSlot = id, s
	return s
}

// at returns the bucket for id without creating it (zero value when the
// slot was never observed) — the read-side accessor for figures.
func (m *proxiesMetric) at(id int64) *proxySlot {
	return m.slots[id]
}

func (m *proxiesMetric) Observe(rec *logfmt.Record) {
	sg := rec.Proxy()
	if sg < logfmt.FirstProxy || sg > logfmt.LastProxy {
		return
	}
	pi := sg - logfmt.FirstProxy
	m.total[pi]++
	ps := m.slot(m.cx.slot)
	ps.total[pi]++
	if m.cx.censored {
		m.censored[pi]++
		ps.censored[pi]++
		m.censDomains[pi][m.cx.Domain()]++
	}
	if rec.Categories != "" && !strings.Contains(rec.Categories, "Blocked") {
		m.labels[pi][rec.Categories]++
	}
}

func (m *proxiesMetric) Merge(other Metric) {
	o := other.(*proxiesMetric)
	for id, os := range o.slots {
		s := m.slots[id]
		if s == nil {
			s = &proxySlot{}
			m.slots[id] = s
		}
		for i := 0; i < logfmt.NumProxies; i++ {
			s.total[i] += os.total[i]
			s.censored[i] += os.censored[i]
		}
	}
	for i := 0; i < logfmt.NumProxies; i++ {
		m.total[i] += o.total[i]
		m.censored[i] += o.censored[i]
		mergeStr(m.censDomains[i], o.censDomains[i])
		mergeStr(m.labels[i], o.labels[i])
	}
}

func (m *proxiesMetric) EncodeState(w *statecodec.Writer) {
	w.Byte(1)
	w.Uvarint(logfmt.NumProxies)
	ids := make([]int64, 0, len(m.slots))
	for id := range m.slots {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	// Per proxy, the slot series encode as count maps that skip zero
	// entries — byte-identical to the historical layout of one map per
	// proxy holding only the slots that proxy observed.
	encSeries := func(sel func(*proxySlot) uint64) {
		n := 0
		for _, id := range ids {
			if sel(m.slots[id]) > 0 {
				n++
			}
		}
		w.Uvarint(uint64(n))
		for _, id := range ids {
			if v := sel(m.slots[id]); v > 0 {
				w.Varint(id)
				w.Uvarint(v)
			}
		}
	}
	for i := 0; i < logfmt.NumProxies; i++ {
		i := i
		w.Uvarint(m.total[i])
		w.Uvarint(m.censored[i])
		encSeries(func(s *proxySlot) uint64 { return s.total[i] })
		encSeries(func(s *proxySlot) uint64 { return s.censored[i] })
		encStrCounts(w, m.censDomains[i])
		encStrCounts(w, m.labels[i])
	}
}

func (m *proxiesMetric) DecodeState(r *statecodec.Reader) {
	checkVersion(r, "proxies", 1)
	if n := r.Count(); r.Err() == nil && n != logfmt.NumProxies {
		r.Failf("core: %d proxies, want %d", n, logfmt.NumProxies)
		return
	}
	m.slots = map[int64]*proxySlot{}
	m.lastSlot = nil
	decSeries := func(i int, censored bool) {
		n := r.Count()
		for j := 0; j < n && r.Err() == nil; j++ {
			id := r.Varint()
			v := r.Uvarint()
			s := m.slots[id]
			if s == nil {
				s = &proxySlot{}
				m.slots[id] = s
			}
			if censored {
				s.censored[i] = v
			} else {
				s.total[i] = v
			}
		}
	}
	for i := 0; i < logfmt.NumProxies && r.Err() == nil; i++ {
		m.total[i] = r.Uvarint()
		m.censored[i] = r.Uvarint()
		decSeries(i, false)
		decSeries(i, true)
		m.censDomains[i] = decStrCounts(r)
		m.labels[i] = decStrCounts(r)
	}
}
