package core

import (
	"syriafilter/internal/logfmt"
	"syriafilter/internal/statecodec"
)

// httpsMetric accumulates the §4 HTTPS/CONNECT view. It counts every
// record (grandTotal) so the traffic share is self-contained and a
// subset engine needs no datasets module.
type httpsMetric struct {
	cx *recordCtx

	grandTotal    uint64
	total         uint64
	censored      uint64
	censoredIPLit uint64
}

func newHTTPSMetric(e *Engine) *httpsMetric {
	return &httpsMetric{cx: &e.cx}
}

func (m *httpsMetric) Name() string { return "https" }

func (m *httpsMetric) Observe(rec *logfmt.Record) {
	m.grandTotal++
	if rec.Method != "CONNECT" && rec.Scheme != "https" && rec.Scheme != "tcp" {
		return
	}
	m.total++
	if m.cx.censored {
		m.censored++
		if _, isIP := m.cx.IPv4(); isIP {
			m.censoredIPLit++
		}
	}
}

func (m *httpsMetric) Merge(other Metric) {
	o := other.(*httpsMetric)
	m.grandTotal += o.grandTotal
	m.total += o.total
	m.censored += o.censored
	m.censoredIPLit += o.censoredIPLit
}

func (m *httpsMetric) EncodeState(w *statecodec.Writer) {
	w.Byte(1)
	w.Uvarint(m.grandTotal)
	w.Uvarint(m.total)
	w.Uvarint(m.censored)
	w.Uvarint(m.censoredIPLit)
}

func (m *httpsMetric) DecodeState(r *statecodec.Reader) {
	checkVersion(r, "https", 1)
	m.grandTotal = r.Uvarint()
	m.total = r.Uvarint()
	m.censored = r.Uvarint()
	m.censoredIPLit = r.Uvarint()
}
