package core

import (
	"syriafilter/internal/logfmt"
	"syriafilter/internal/statecodec"
	"syriafilter/internal/stats"
)

// categoriesMetric accumulates the category distribution of censored
// traffic (Figure 3), on the full corpus and on Dsample.
type categoriesMetric struct {
	cx *recordCtx

	censoredSample *stats.Counter
	censoredFull   *stats.Counter
}

func newCategoriesMetric(e *Engine) *categoriesMetric {
	return &categoriesMetric{
		cx:             &e.cx,
		censoredSample: stats.NewCounter(),
		censoredFull:   stats.NewCounter(),
	}
}

func (m *categoriesMetric) Name() string { return "categories" }

func (m *categoriesMetric) Observe(rec *logfmt.Record) {
	if !m.cx.censored {
		return
	}
	cat := string(m.cx.HostCategory())
	if _, isIP := m.cx.IPv4(); isIP {
		cat = "Content Server" // CDNs/raw hosts; the paper's top bucket
	}
	m.censoredFull.Add(cat)
	if m.cx.Sampled() {
		m.censoredSample.Add(cat)
	}
}

func (m *categoriesMetric) Merge(other Metric) {
	o := other.(*categoriesMetric)
	m.censoredSample.Merge(o.censoredSample)
	m.censoredFull.Merge(o.censoredFull)
}

func (m *categoriesMetric) EncodeState(w *statecodec.Writer) {
	w.Byte(1)
	encCounter(w, m.censoredSample)
	encCounter(w, m.censoredFull)
}

func (m *categoriesMetric) DecodeState(r *statecodec.Reader) {
	checkVersion(r, "categories", 1)
	m.censoredSample = decCounter(r)
	m.censoredFull = decCounter(r)
}
