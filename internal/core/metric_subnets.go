package core

import (
	"syriafilter/internal/logfmt"
	"syriafilter/internal/statecodec"
	"syriafilter/internal/stats"
)

// subnetStat is the per-subnet accumulator behind Table 12. The subnet key
// space itself is bounded (the fixed Israeli ranges), but the distinct-IP
// sets are not — in sketch mode each set becomes a HyperLogLog so memory
// stays constant per subnet regardless of how many client IPs appear.
type subnetStat struct {
	Censored, Allowed, Proxied uint64

	// Exact mode.
	CensoredIPs, AllowedIPs, ProxIPs map[uint32]struct{}

	// Sketch mode.
	CensHLL, AllowHLL, ProxHLL *stats.HyperLogLog
}

func newSubnetStat() *subnetStat {
	return &subnetStat{
		CensoredIPs: map[uint32]struct{}{},
		AllowedIPs:  map[uint32]struct{}{},
		ProxIPs:     map[uint32]struct{}{},
	}
}

func newSubnetStatSketch(p uint8) *subnetStat {
	return &subnetStat{
		CensHLL:  stats.NewHyperLogLog(p),
		AllowHLL: stats.NewHyperLogLog(p),
		ProxHLL:  stats.NewHyperLogLog(p),
	}
}

func (st *subnetStat) sketched() bool { return st.CensHLL != nil }

// CensoredIPCount etc. report the distinct-IP counts in the stat's mode.
func (st *subnetStat) CensoredIPCount() uint64 {
	if st.sketched() {
		return st.CensHLL.Estimate()
	}
	return uint64(len(st.CensoredIPs))
}

func (st *subnetStat) AllowedIPCount() uint64 {
	if st.sketched() {
		return st.AllowHLL.Estimate()
	}
	return uint64(len(st.AllowedIPs))
}

func (st *subnetStat) ProxiedIPCount() uint64 {
	if st.sketched() {
		return st.ProxHLL.Estimate()
	}
	return uint64(len(st.ProxIPs))
}

// subnetsMetric accumulates per-subnet request and distinct-IP counts over
// the Israeli address ranges (Table 12).
type subnetsMetric struct {
	cx       *recordCtx
	opt      *Options
	sketched bool
	subnets  map[string]*subnetStat
}

func newSubnetsMetric(e *Engine) *subnetsMetric {
	return &subnetsMetric{cx: &e.cx, opt: &e.opt, sketched: e.Sketched(), subnets: map[string]*subnetStat{}}
}

func (m *subnetsMetric) Name() string { return "subnets" }

func (m *subnetsMetric) stat(subnet string) *subnetStat {
	st := m.subnets[subnet]
	if st == nil {
		if m.sketched {
			st = newSubnetStatSketch(m.opt.Sketches.Precision)
		} else {
			st = newSubnetStat()
		}
		m.subnets[subnet] = st
	}
	return st
}

func (m *subnetsMetric) Observe(rec *logfmt.Record) {
	ip, isIP := m.cx.IPv4()
	if !isIP {
		return
	}
	r, ok := m.opt.GeoDB.Lookup(ip)
	if !ok || r.Country != "IL" {
		return
	}
	st := m.stat(r.Subnet)
	switch {
	case m.cx.proxied:
		st.Proxied++
		m.addIP(st.ProxIPs, st.ProxHLL, ip)
	case m.cx.censored:
		st.Censored++
		m.addIP(st.CensoredIPs, st.CensHLL, ip)
	case m.cx.allowed:
		st.Allowed++
		m.addIP(st.AllowedIPs, st.AllowHLL, ip)
	}
}

func (m *subnetsMetric) addIP(set map[uint32]struct{}, hll *stats.HyperLogLog, ip uint32) {
	if m.sketched {
		hll.AddHash(uint64(ip))
		return
	}
	set[ip] = struct{}{}
}

func (m *subnetsMetric) sketchSizes() SketchSizes {
	if !m.sketched {
		return SketchSizes{}
	}
	// No frequency sketches here: each subnet carries three distinct-IP
	// HyperLogLogs (censored / allowed / proxied).
	return SketchSizes{HLLs: 3 * len(m.subnets)}
}

func (m *subnetsMetric) Merge(other Metric) {
	o := other.(*subnetsMetric)
	for k, v := range o.subnets {
		st := m.stat(k)
		st.Censored += v.Censored
		st.Allowed += v.Allowed
		st.Proxied += v.Proxied
		if m.sketched {
			st.CensHLL.Merge(v.CensHLL)
			st.AllowHLL.Merge(v.AllowHLL)
			st.ProxHLL.Merge(v.ProxHLL)
			continue
		}
		for ip := range v.CensoredIPs {
			st.CensoredIPs[ip] = struct{}{}
		}
		for ip := range v.AllowedIPs {
			st.AllowedIPs[ip] = struct{}{}
		}
		for ip := range v.ProxIPs {
			st.ProxIPs[ip] = struct{}{}
		}
	}
}

func (m *subnetsMetric) EncodeState(w *statecodec.Writer) {
	if m.sketched {
		w.Byte(2)
	} else {
		w.Byte(1)
	}
	w.Uvarint(uint64(len(m.subnets)))
	for _, k := range sortedStrKeys(m.subnets) {
		st := m.subnets[k]
		w.StringRef(k)
		w.Uvarint(st.Censored)
		w.Uvarint(st.Allowed)
		w.Uvarint(st.Proxied)
		if m.sketched {
			encHLL(w, st.CensHLL)
			encHLL(w, st.AllowHLL)
			encHLL(w, st.ProxHLL)
		} else {
			encIPSet(w, st.CensoredIPs)
			encIPSet(w, st.AllowedIPs)
			encIPSet(w, st.ProxIPs)
		}
	}
}

func (m *subnetsMetric) DecodeState(r *statecodec.Reader) {
	v := checkVersion(r, "subnets", 2)
	if v == 2 && !m.sketched {
		r.Failf("core: checkpoint carries sketch state; rebuild the engine with sketches enabled (-sketch)")
		return
	}
	n := r.Count()
	m.subnets = make(map[string]*subnetStat, n)
	for i := 0; i < n && r.Err() == nil; i++ {
		k := r.StringRef()
		st := m.stat(k)
		st.Censored = r.Uvarint()
		st.Allowed = r.Uvarint()
		st.Proxied = r.Uvarint()
		switch {
		case v == 2:
			st.CensHLL = decHLL(r)
			st.AllowHLL = decHLL(r)
			st.ProxHLL = decHLL(r)
		case m.sketched:
			// v1 (exact) state into a sketched engine: replay the IP
			// sets into the HLLs.
			for _, hll := range []*stats.HyperLogLog{st.CensHLL, st.AllowHLL, st.ProxHLL} {
				for ip := range decIPSet(r) {
					hll.AddHash(uint64(ip))
				}
			}
		default:
			st.CensoredIPs = decIPSet(r)
			st.AllowedIPs = decIPSet(r)
			st.ProxIPs = decIPSet(r)
		}
	}
}
