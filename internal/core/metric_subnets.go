package core

import "syriafilter/internal/logfmt"

// subnetsMetric accumulates per-subnet request and distinct-IP counts over
// the Israeli address ranges (Table 12).
type subnetsMetric struct {
	cx      *recordCtx
	opt     *Options
	subnets map[string]*subnetStat
}

func newSubnetsMetric(e *Engine) *subnetsMetric {
	return &subnetsMetric{cx: &e.cx, opt: &e.opt, subnets: map[string]*subnetStat{}}
}

func (m *subnetsMetric) Name() string { return "subnets" }

func (m *subnetsMetric) Observe(rec *logfmt.Record) {
	ip, isIP := m.cx.IPv4()
	if !isIP {
		return
	}
	r, ok := m.opt.GeoDB.Lookup(ip)
	if !ok || r.Country != "IL" {
		return
	}
	st := m.subnets[r.Subnet]
	if st == nil {
		st = newSubnetStat()
		m.subnets[r.Subnet] = st
	}
	switch {
	case m.cx.proxied:
		st.Proxied++
		st.ProxIPs[ip] = struct{}{}
	case m.cx.censored:
		st.Censored++
		st.CensoredIPs[ip] = struct{}{}
	case m.cx.allowed:
		st.Allowed++
		st.AllowedIPs[ip] = struct{}{}
	}
}

func (m *subnetsMetric) Merge(other Metric) {
	o := other.(*subnetsMetric)
	for k, v := range o.subnets {
		st := m.subnets[k]
		if st == nil {
			st = newSubnetStat()
			m.subnets[k] = st
		}
		st.Censored += v.Censored
		st.Allowed += v.Allowed
		st.Proxied += v.Proxied
		for ip := range v.CensoredIPs {
			st.CensoredIPs[ip] = struct{}{}
		}
		for ip := range v.AllowedIPs {
			st.AllowedIPs[ip] = struct{}{}
		}
		for ip := range v.ProxIPs {
			st.ProxIPs[ip] = struct{}{}
		}
	}
}
