package core

import (
	"syriafilter/internal/logfmt"
	"syriafilter/internal/statecodec"
)

// subnetsMetric accumulates per-subnet request and distinct-IP counts over
// the Israeli address ranges (Table 12).
type subnetsMetric struct {
	cx      *recordCtx
	opt     *Options
	subnets map[string]*subnetStat
}

func newSubnetsMetric(e *Engine) *subnetsMetric {
	return &subnetsMetric{cx: &e.cx, opt: &e.opt, subnets: map[string]*subnetStat{}}
}

func (m *subnetsMetric) Name() string { return "subnets" }

func (m *subnetsMetric) Observe(rec *logfmt.Record) {
	ip, isIP := m.cx.IPv4()
	if !isIP {
		return
	}
	r, ok := m.opt.GeoDB.Lookup(ip)
	if !ok || r.Country != "IL" {
		return
	}
	st := m.subnets[r.Subnet]
	if st == nil {
		st = newSubnetStat()
		m.subnets[r.Subnet] = st
	}
	switch {
	case m.cx.proxied:
		st.Proxied++
		st.ProxIPs[ip] = struct{}{}
	case m.cx.censored:
		st.Censored++
		st.CensoredIPs[ip] = struct{}{}
	case m.cx.allowed:
		st.Allowed++
		st.AllowedIPs[ip] = struct{}{}
	}
}

func (m *subnetsMetric) Merge(other Metric) {
	o := other.(*subnetsMetric)
	for k, v := range o.subnets {
		st := m.subnets[k]
		if st == nil {
			st = newSubnetStat()
			m.subnets[k] = st
		}
		st.Censored += v.Censored
		st.Allowed += v.Allowed
		st.Proxied += v.Proxied
		for ip := range v.CensoredIPs {
			st.CensoredIPs[ip] = struct{}{}
		}
		for ip := range v.AllowedIPs {
			st.AllowedIPs[ip] = struct{}{}
		}
		for ip := range v.ProxIPs {
			st.ProxIPs[ip] = struct{}{}
		}
	}
}

func (m *subnetsMetric) EncodeState(w *statecodec.Writer) {
	w.Byte(1)
	w.Uvarint(uint64(len(m.subnets)))
	for _, k := range sortedStrKeys(m.subnets) {
		st := m.subnets[k]
		w.StringRef(k)
		w.Uvarint(st.Censored)
		w.Uvarint(st.Allowed)
		w.Uvarint(st.Proxied)
		encIPSet(w, st.CensoredIPs)
		encIPSet(w, st.AllowedIPs)
		encIPSet(w, st.ProxIPs)
	}
}

func (m *subnetsMetric) DecodeState(r *statecodec.Reader) {
	checkVersion(r, "subnets", 1)
	n := r.Count()
	m.subnets = make(map[string]*subnetStat, n)
	for i := 0; i < n && r.Err() == nil; i++ {
		k := r.StringRef()
		m.subnets[k] = &subnetStat{
			Censored:    r.Uvarint(),
			Allowed:     r.Uvarint(),
			Proxied:     r.Uvarint(),
			CensoredIPs: decIPSet(r),
			AllowedIPs:  decIPSet(r),
			ProxIPs:     decIPSet(r),
		}
	}
}
