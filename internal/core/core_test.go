package core

import (
	"sync"
	"testing"
	"time"

	"syriafilter/internal/bittorrent"
	"syriafilter/internal/logfmt"
	"syriafilter/internal/pipeline"
	"syriafilter/internal/policy"
	"syriafilter/internal/proxysim"
	"syriafilter/internal/synth"
)

// fixture builds one shared analyzed corpus for the whole test package:
// the full generate → filter → analyze path at a size large enough for
// every table to be populated.
type fixture struct {
	gen      *synth.Generator
	analyzer *Analyzer
	records  []logfmt.Record
}

var (
	fixOnce sync.Once
	fix     *fixture
)

func corpus(t testing.TB) *fixture {
	t.Helper()
	fixOnce.Do(func() {
		gen, err := synth.New(synth.Config{Seed: 42, TotalRequests: 300000})
		if err != nil {
			t.Fatal(err)
		}
		cluster := proxysim.NewCluster(proxysim.Config{
			Seed: 42, Engine: gen.Engine(), Consensus: gen.Consensus(),
		})
		an := NewAnalyzer(Options{
			Categories: gen.CategoryDB(),
			Consensus:  gen.Consensus(),
			TitleDB:    bittorrent.NewTitleDB(),
		})
		var recs []logfmt.Record
		var rec logfmt.Record
		for {
			req, ok := gen.Next()
			if !ok {
				break
			}
			cluster.Process(&req, &rec)
			an.Observe(&rec)
			recs = append(recs, rec)
		}
		fix = &fixture{gen: gen, analyzer: an, records: recs}
	})
	if fix == nil {
		t.Fatal("fixture failed to build")
	}
	return fix
}

func aug(day, hour int) int64 {
	return time.Date(2011, 8, day, hour, 0, 0, 0, time.UTC).Unix()
}

// --- Tables 1 and 3 ---

func TestTable1DatasetShapes(t *testing.T) {
	f := corpus(t)
	t1 := f.analyzer.Table1()
	if len(t1) != 4 {
		t.Fatalf("datasets = %d", len(t1))
	}
	full := t1[DFull].Requests
	if full != uint64(len(f.records)) {
		t.Errorf("Dfull = %d, records = %d", full, len(f.records))
	}
	sample := t1[DSample].Requests
	if frac(sample, full) < 0.03 || frac(sample, full) > 0.05 {
		t.Errorf("Dsample share = %v, want ~0.04", frac(sample, full))
	}
	duser := t1[DUser].Requests
	if duser == 0 || duser > full/10 {
		t.Errorf("Duser = %d of %d", duser, full)
	}
	denied := t1[DDenied].Requests
	if frac(denied, full) < 0.04 || frac(denied, full) > 0.09 {
		t.Errorf("Ddenied share = %v, want ~0.063", frac(denied, full))
	}
}

func TestTable3TrafficShares(t *testing.T) {
	f := corpus(t)
	d := f.analyzer.Dataset(DFull)
	allowed := frac(d.Allowed(), d.Total)
	censored := frac(d.Censored(), d.Total)
	errors := frac(d.Errors(), d.Total)
	proxied := frac(d.Proxied, d.Total)
	// Paper: 93.25% / 0.98% / 5.30% / 0.47%.
	if allowed < 0.90 || allowed > 0.96 {
		t.Errorf("allowed share = %v", allowed)
	}
	if censored < 0.005 || censored > 0.02 {
		t.Errorf("censored share = %v", censored)
	}
	if errors < 0.04 || errors > 0.07 {
		t.Errorf("error share = %v", errors)
	}
	if proxied < 0.003 || proxied > 0.007 {
		t.Errorf("proxied share = %v", proxied)
	}
	// tcp_error dominates the denied breakdown, then internal_error
	// (Table 3: 45.3% vs 31.0% of denied).
	den := f.analyzer.Dataset(DDenied)
	if den.ByException[logfmt.ExTCPError] <= den.ByException[logfmt.ExInternalError] {
		t.Error("tcp_error should exceed internal_error")
	}
	if den.ByException[logfmt.ExInternalError] <= den.ByException[logfmt.ExInvalidRequest] {
		t.Error("internal_error should exceed invalid_request")
	}
	// The classes partition every dataset.
	for id := DFull; id < numDatasets; id++ {
		c := f.analyzer.Dataset(id)
		if c.Allowed()+c.Censored()+c.Errors() != c.Total {
			t.Errorf("%v classes don't partition: %+v", id, c)
		}
	}
}

// --- Table 4 ---

func TestTable4TopDomains(t *testing.T) {
	f := corpus(t)
	allowed, censored := f.analyzer.TopDomains(10)
	if len(allowed) != 10 || len(censored) != 10 {
		t.Fatalf("rows: %d/%d", len(allowed), len(censored))
	}
	if allowed[0].Domain != "google.com" {
		t.Errorf("top allowed = %s, paper: google.com", allowed[0].Domain)
	}
	top3 := map[string]bool{}
	for _, row := range censored[:3] {
		top3[row.Domain] = true
	}
	if !top3["facebook.com"] || !top3["metacafe.com"] {
		t.Errorf("top censored should contain facebook.com and metacafe.com: %v", censored[:3])
	}
	inTop := func(rows []DomainShare, dom string) bool {
		for _, r := range rows {
			if r.Domain == dom {
				return true
			}
		}
		return false
	}
	for _, dom := range []string{"skype.com", "live.com", "google.com", "yahoo.com", "wikimedia.org", "zynga.com"} {
		if !inTop(censored, dom) {
			t.Errorf("censored top-10 missing %s", dom)
		}
	}
	// google and facebook appear in BOTH columns (the paper's key
	// sophistication observation).
	if !inTop(allowed, "facebook.com") || !inTop(censored, "google.com") {
		t.Error("google/facebook should appear in both columns")
	}
}

// --- Table 5 ---

func TestTable5PeakWindows(t *testing.T) {
	f := corpus(t)
	wins := f.analyzer.Table5(aug(3, 6), aug(3, 12), 2*3600, 10)
	if len(wins) != 3 {
		t.Fatalf("windows = %d", len(wins))
	}
	// The 8-10am window contains the IM surge: skype must rank high.
	var skypeShare, skypeShareOff float64
	for _, row := range wins[1].Top {
		if row.Domain == "skype.com" {
			skypeShare = row.Share
		}
	}
	for _, row := range wins[0].Top {
		if row.Domain == "skype.com" {
			skypeShareOff = row.Share
		}
	}
	if skypeShare == 0 {
		t.Fatal("skype.com missing from the 8-10am censored window")
	}
	if skypeShare < skypeShareOff {
		t.Errorf("skype censored share should peak 8-10am: %v vs %v", skypeShare, skypeShareOff)
	}
}

// --- Table 6 ---

func TestTable6ProxySimilarity(t *testing.T) {
	f := corpus(t)
	m := f.analyzer.ProxySimilarity()
	if len(m) != 7 {
		t.Fatalf("matrix size = %d", len(m))
	}
	for i := range m {
		if m[i][i] != 1 {
			t.Errorf("diagonal [%d] = %v", i, m[i][i])
		}
		for j := range m {
			if m[i][j] != m[j][i] {
				t.Errorf("asymmetry at %d,%d", i, j)
			}
		}
	}
	// SG-48 (index 6) censors a different profile (metacafe/skype): its
	// average similarity to SG-43..47 must be well below theirs to each
	// other — the paper's specialization finding.
	simTo48 := (m[1][6] + m[2][6] + m[4][6] + m[5][6]) / 4
	simAmong := (m[1][2] + m[1][4] + m[2][4] + m[2][5] + m[4][5] + m[1][5]) / 6
	if simTo48 >= simAmong {
		t.Errorf("SG-48 similarity %.3f should be below peer similarity %.3f", simTo48, simAmong)
	}
}

func TestProxyCategoryLabels(t *testing.T) {
	f := corpus(t)
	labels := f.analyzer.ProxyCategoryLabels()
	for i, label := range labels {
		sg := 42 + i
		want := "unavailable"
		if sg == 43 || sg == 48 {
			want = "none"
		}
		if label != want {
			t.Errorf("SG-%d label = %q, want %q", sg, label, want)
		}
	}
}

// --- Table 7 ---

func TestTable7RedirectHosts(t *testing.T) {
	f := corpus(t)
	rows := f.analyzer.RedirectHosts(5)
	if len(rows) == 0 {
		t.Fatal("no redirect hosts")
	}
	if rows[0].Domain != "upload.youtube.com" {
		t.Errorf("top redirect host = %s, paper: upload.youtube.com", rows[0].Domain)
	}
	found := map[string]bool{}
	for _, r := range rows {
		found[r.Domain] = true
	}
	if !found["www.facebook.com"] {
		t.Error("www.facebook.com missing from redirect hosts")
	}
}

// --- Tables 8/10: discovery vs ground truth ---

func TestTable8DomainDiscovery(t *testing.T) {
	f := corpus(t)
	d := f.analyzer.DiscoverFilters(0)
	got := map[string]bool{}
	for _, sd := range d.Domains {
		got[sd.Domain] = true
	}
	// Recall on the paper-named blocked domains that carry real traffic.
	for _, dom := range []string{"metacafe.com", "skype.com", "wikimedia.org", ".il", "amazon.com", "aawsat.com", "ceipmsn.com"} {
		if !got[dom] {
			t.Errorf("discovery missed blocked domain %s", dom)
		}
	}
	// Precision: every discovered domain must be consistent with the
	// ground-truth ruleset (a URL-blacklist suffix match or keyword in the
	// host name).
	engine := f.gen.Engine()
	for _, sd := range d.Domains {
		if sd.Domain[0] == '.' {
			continue
		}
		r := reqFor(sd.Domain)
		v := engine.Evaluate(&r)
		if v.Action == policy.Allow {
			t.Errorf("discovered domain %s is not blocked by ground truth", sd.Domain)
		}
	}
	// The suspected list has the paper's scale (~105).
	if len(d.Domains) < 25 || len(d.Domains) > 140 {
		t.Errorf("suspected domains = %d, paper: 105", len(d.Domains))
	}
	// metacafe must rank first (Table 8).
	if d.Domains[0].Domain != "metacafe.com" {
		t.Errorf("top suspected = %s, paper: metacafe.com", d.Domains[0].Domain)
	}
}

func TestTable10KeywordDiscovery(t *testing.T) {
	f := corpus(t)
	d := f.analyzer.DiscoverFilters(0)
	got := map[string]uint64{}
	for _, kw := range d.Keywords {
		got[kw.Keyword] = kw.Censored
	}
	// Recall: all five ground-truth keywords that carry traffic.
	for _, kw := range []string{"proxy", "hotspotshield", "ultrareach", "israel", "ultrasurf"} {
		if _, ok := got[kw]; !ok {
			t.Errorf("discovery missed keyword %q (got %v)", kw, d.Keywords)
		}
	}
	// proxy dominates (Table 10: 53.6% of censored traffic).
	if len(d.Keywords) > 0 && d.Keywords[0].Keyword != "proxy" {
		t.Errorf("top keyword = %q, paper: proxy", d.Keywords[0].Keyword)
	}
	// Precision: discovered keywords never appear in allowed URLs by
	// construction; additionally they must be "real" in the ground truth
	// sense — every keyword must hit the ground-truth engine when planted
	// in a URL.
	engine := f.gen.Engine()
	for _, kw := range d.Keywords {
		r := reqFor("probe.example")
		r.Path = "/" + kw.Keyword
		if engine.Evaluate(&r).Action == policy.Allow {
			t.Logf("note: keyword %q censored in corpus but not a ground-truth rule (correlated token)", kw.Keyword)
		}
	}
}

// --- Table 9 ---

func TestTable9Categories(t *testing.T) {
	f := corpus(t)
	d := f.analyzer.DiscoverFilters(0)
	rows := f.analyzer.Table9(d)
	if len(rows) < 4 {
		t.Fatalf("categories = %d", len(rows))
	}
	byCat := map[string]CategoryDomains{}
	for _, r := range rows {
		byCat[r.Category] = r
	}
	// IM leads by requests (Table 9: 16.63%), news leads by domain count.
	if im := byCat["Instant Messaging"]; im.Requests == 0 {
		t.Error("Instant Messaging category missing")
	}
	news := byCat["General News"]
	if news.Domains < 10 {
		t.Errorf("General News domains = %d, should dominate the domain count", news.Domains)
	}
	for _, r := range rows {
		if r.Category != "General News" && r.Category != "NA" && r.Domains > news.Domains {
			t.Errorf("%s has more domains (%d) than General News (%d)", r.Category, r.Domains, news.Domains)
		}
	}
}

// --- Table 11 ---

func TestTable11CountryRatios(t *testing.T) {
	f := corpus(t)
	rows := f.analyzer.CountryRatios()
	if len(rows) < 4 {
		t.Fatalf("countries = %d", len(rows))
	}
	if rows[0].Country != "IL" {
		t.Errorf("top censorship ratio = %s, paper: Israel", rows[0].Country)
	}
	var il CountryRatio
	for _, r := range rows {
		if r.Country == "IL" {
			il = r
		}
	}
	// Israel is mostly allowed (paper ratio 6.69%) yet far above others.
	if il.Ratio < 0.01 || il.Ratio > 0.5 {
		t.Errorf("IL ratio = %v, want small but dominant", il.Ratio)
	}
	if il.Allowed == 0 {
		t.Error("IL should have allowed traffic")
	}
	for _, r := range rows[1:] {
		if r.Ratio > il.Ratio {
			t.Errorf("%s ratio %v exceeds Israel's %v", r.Country, r.Ratio, il.Ratio)
		}
	}
}

// --- Table 12 ---

func TestTable12Subnets(t *testing.T) {
	f := corpus(t)
	rows := f.analyzer.IsraeliSubnets()
	if len(rows) < 3 {
		t.Fatalf("subnets = %d", len(rows))
	}
	byNet := map[string]SubnetStat{}
	for _, r := range rows {
		byNet[r.Subnet] = r
	}
	// Fully blocked group: censored > 0, allowed == 0.
	for _, net := range []string{"84.229.0.0/16", "46.120.0.0/15"} {
		st, ok := byNet[net]
		if !ok {
			continue // low-volume subnet may not appear in a scaled corpus
		}
		if st.AllowedReqs != 0 {
			t.Errorf("%s should be fully censored, allowed=%d", net, st.AllowedReqs)
		}
		if st.CensoredReqs == 0 {
			t.Errorf("%s has no censored requests", net)
		}
	}
	// Mostly-allowed group: 212.150.0.0/16 has allowed >> censored and
	// few censored IPs (paper: 3).
	st, ok := byNet["212.150.0.0/16"]
	if !ok {
		t.Fatal("212.150.0.0/16 missing")
	}
	if st.AllowedReqs <= st.CensoredReqs {
		t.Errorf("212.150/16 should be mostly allowed: %+v", st)
	}
	if st.CensoredIPs == 0 || st.CensoredIPs > 3 {
		t.Errorf("212.150/16 censored IPs = %d, paper: 3", st.CensoredIPs)
	}
}

// --- Table 13 ---

func TestTable13SocialNetworks(t *testing.T) {
	f := corpus(t)
	rows := f.analyzer.SocialNetworks()
	byDom := map[string]OSNStat{}
	for _, r := range rows {
		byDom[r.Domain] = r
	}
	fb := byDom["facebook.com"]
	if fb.Censored == 0 || fb.Allowed == 0 {
		t.Errorf("facebook should be censored AND allowed: %+v", fb)
	}
	if rows[0].Domain != "facebook.com" {
		t.Errorf("top censored OSN = %s, paper: facebook.com", rows[0].Domain)
	}
	// Most OSNs are not censored at all.
	uncensored := 0
	for _, r := range rows {
		if r.Censored == 0 {
			uncensored++
		}
	}
	if uncensored < len(rows)/2 {
		t.Errorf("only %d/%d OSNs uncensored; paper: most", uncensored, len(rows))
	}
	tw := byDom["twitter.com"]
	if tw.Allowed == 0 {
		t.Error("twitter should be mostly allowed")
	}
	if tw.Censored > tw.Allowed/10 {
		t.Errorf("twitter censored %d vs allowed %d: should be marginal", tw.Censored, tw.Allowed)
	}
}

// --- Table 14 ---

func TestTable14FacebookPages(t *testing.T) {
	f := corpus(t)
	rows := f.analyzer.FacebookPages()
	if len(rows) < 5 {
		t.Fatalf("targeted pages = %d", len(rows))
	}
	byPage := map[string]FBPage{}
	for _, r := range rows {
		byPage[r.Page] = r
	}
	sr, ok := byPage["Syrian.Revolution"]
	if !ok {
		t.Fatal("Syrian.Revolution missing")
	}
	if sr.Censored == 0 {
		t.Error("Syrian.Revolution never censored")
	}
	if sr.Allowed == 0 {
		t.Error("Syrian.Revolution should also have allowed (ajax-variant) requests")
	}
	// Untargeted lookalike pages must not be in the custom category.
	if _, bad := byPage["Syrian.Revolution.Army"]; bad {
		t.Error("Syrian.Revolution.Army wrongly in the custom category")
	}
	// ShaamNews: mostly allowed despite being targeted (Table 14).
	if sn, ok := byPage["ShaamNews"]; ok && sn.Allowed < sn.Censored {
		t.Errorf("ShaamNews should be mostly allowed: %+v", sn)
	}
}

// --- Table 15 ---

func TestTable15SocialPlugins(t *testing.T) {
	f := corpus(t)
	rows := f.analyzer.SocialPlugins(10)
	if len(rows) < 5 {
		t.Fatalf("plugin rows = %d", len(rows))
	}
	if rows[0].Path != "/plugins/like.php" {
		t.Errorf("top plugin = %s, paper: /plugins/like.php", rows[0].Path)
	}
	if rows[1].Path != "/extern/login_status.php" {
		t.Errorf("second plugin = %s, paper: /extern/login_status.php", rows[1].Path)
	}
	for _, r := range rows {
		if r.Allowed != 0 {
			t.Errorf("plugin %s has allowed requests; Table 15 shows none", r.Path)
		}
	}
	// The top two cover the bulk of facebook censored traffic (paper: >80%).
	if share := rows[0].ShareOfFBCensored + rows[1].ShareOfFBCensored; share < 0.5 {
		t.Errorf("top-2 plugin share of fb censored = %v, paper: >0.8", share)
	}
}

// --- Figure 1 ---

func TestFig1Ports(t *testing.T) {
	f := corpus(t)
	allowed, censored := f.analyzer.PortDistribution()
	if allowed[0].Port != 80 {
		t.Errorf("top allowed port = %d", allowed[0].Port)
	}
	if censored[0].Port != 80 {
		t.Errorf("top censored port = %d", censored[0].Port)
	}
	// 443 and 9001 must appear among top censored ports (Fig 1).
	seen := map[uint16]bool{}
	for i, pc := range censored {
		if i < 5 {
			seen[pc.Port] = true
		}
	}
	if !seen[443] {
		t.Error("443 missing from top censored ports")
	}
	if !seen[9001] {
		t.Error("9001 (Tor) missing from top censored ports")
	}
}

// --- Figure 2 ---

func TestFig2PowerLaw(t *testing.T) {
	f := corpus(t)
	series := f.analyzer.DomainFreqDistribution()
	if len(series) != 3 {
		t.Fatalf("series = %d", len(series))
	}
	for _, s := range series {
		if len(s.Points) == 0 {
			t.Errorf("%s series empty", s.Class)
			continue
		}
		if s.Class == "allowed" {
			if s.Alpha < 1.1 || s.Alpha > 3.5 {
				t.Errorf("allowed power-law alpha = %v, want heavy tail", s.Alpha)
			}
			// Many domains receive few requests; few receive many.
			first := s.Points[0]
			last := s.Points[len(s.Points)-1]
			if first[0] != 1 && first[0] != 2 {
				t.Errorf("min request count = %d", first[0])
			}
			if last[1] > first[1] {
				t.Error("head should be rarer than tail")
			}
		}
	}
}

// --- Figure 3 ---

func TestFig3Categories(t *testing.T) {
	f := corpus(t)
	rows := f.analyzer.CensoredCategories(false)
	if len(rows) < 5 {
		t.Fatalf("categories = %d", len(rows))
	}
	byCat := map[string]float64{}
	for _, r := range rows {
		byCat[r.Category] = r.Share
	}
	// Key Fig 3 shapes: SN/IM/Streaming present; Social Networking high
	// (plugin collateral), Streaming Media and IM substantial.
	if byCat["Streaming Media"] < 0.05 {
		t.Errorf("Streaming Media share = %v", byCat["Streaming Media"])
	}
	if byCat["Instant Messaging"] < 0.05 {
		t.Errorf("Instant Messaging share = %v", byCat["Instant Messaging"])
	}
	if byCat["Social Networking"] == 0 {
		t.Error("Social Networking missing")
	}
}

// --- Figure 4 ---

func TestFig4Users(t *testing.T) {
	f := corpus(t)
	rep := f.analyzer.UserAnalysis()
	if rep.TotalUsers == 0 {
		t.Fatal("no users in Duser")
	}
	censFrac := float64(rep.CensoredUsers) / float64(rep.TotalUsers)
	// Paper: 1.57% of users censored.
	if censFrac < 0.002 || censFrac > 0.08 {
		t.Errorf("censored user fraction = %v, paper: 0.0157", censFrac)
	}
	// Censored users are more active (paper: 50% > 100 requests vs 5%).
	// At reduced corpus scale the absolute >100 threshold may be empty,
	// so the scale-free mean comparison is the invariant.
	if rep.CensoredUsers > 5 && rep.MeanActivityCensored <= rep.MeanActivityOthers {
		t.Errorf("censored users should be more active: mean %v vs %v",
			rep.MeanActivityCensored, rep.MeanActivityOthers)
	}
	var histTotal uint64
	for _, n := range rep.CensoredPerUser {
		histTotal += n
	}
	if histTotal != uint64(rep.CensoredUsers) {
		t.Errorf("Fig 4a histogram total %d != censored users %d", histTotal, rep.CensoredUsers)
	}
}

// --- Figures 5 and 6 ---

func TestFig5TimeSeries(t *testing.T) {
	f := corpus(t)
	series := f.analyzer.TimeSeries(aug(1, 0), aug(7, 0))
	if len(series) != 6*24*12 {
		t.Fatalf("series length = %d", len(series))
	}
	var day2, day5 uint64
	for _, p := range series {
		switch {
		case p.Unix >= aug(2, 0) && p.Unix < aug(3, 0):
			day2 += p.Allowed + p.Censored
		case p.Unix >= aug(5, 0) && p.Unix < aug(6, 0):
			day5 += p.Allowed + p.Censored
		}
	}
	if day5 >= day2 {
		t.Errorf("Friday Aug 5 (%d) should be below Aug 2 (%d)", day5, day2)
	}
	// Diurnal shape: night (3:00) below late morning (11:00) on Aug 2.
	night := series[(24+3)*12].Allowed
	morning := series[(24+11)*12].Allowed
	if night >= morning {
		t.Errorf("diurnal shape inverted: night %d vs morning %d", night, morning)
	}
}

func TestFig6RCVPeak(t *testing.T) {
	f := corpus(t)
	pts := f.analyzer.RCV(aug(3, 0), aug(4, 0))
	if len(pts) != 288 {
		t.Fatalf("points = %d", len(pts))
	}
	avg := func(fromH, toH float64) float64 {
		sum, n := 0.0, 0
		for _, p := range pts {
			h := float64(p.Unix-aug(3, 0)) / 3600
			if h >= fromH && h < toH {
				sum += p.RCV
				n++
			}
		}
		return sum / float64(n)
	}
	peak := avg(8, 9.5)
	lull := avg(13, 17)
	if peak <= lull*1.5 {
		t.Errorf("RCV peak %v should clearly exceed afternoon %v", peak, lull)
	}
}

// --- Figure 7 ---

func TestFig7ProxyLoads(t *testing.T) {
	f := corpus(t)
	loads := f.analyzer.ProxyLoads()
	if len(loads) != 7 {
		t.Fatalf("proxies = %d", len(loads))
	}
	// Load fairly distributed; SG-42 higher (July coverage).
	var min, max uint64 = ^uint64(0), 0
	for _, l := range loads[1:] { // exclude SG-42
		if l.Total < min {
			min = l.Total
		}
		if l.Total > max {
			max = l.Total
		}
	}
	if float64(min) < 0.7*float64(max) {
		t.Errorf("proxy load imbalance: min %d max %d", min, max)
	}
	// SG-48 carries a disproportionate share of censored traffic.
	var sg48 ProxyLoad
	var otherCens uint64
	for _, l := range loads {
		if l.SG == 48 {
			sg48 = l
		} else {
			otherCens += l.Censored
		}
	}
	avgOther := otherCens / 6
	if sg48.Censored < 2*avgOther {
		t.Errorf("SG-48 censored %d vs peer average %d: specialization missing", sg48.Censored, avgOther)
	}
	shares := f.analyzer.ProxyShareSeries(aug(3, 0), aug(3, 6), false)
	if len(shares) != 72 {
		t.Fatalf("share series = %d", len(shares))
	}
	for _, row := range shares {
		sum := 0.0
		for _, v := range row {
			sum += v
		}
		if sum != 0 && (sum < 0.999 || sum > 1.001) {
			t.Errorf("share row sums to %v", sum)
		}
	}
}

// --- Figure 8 ---

func TestFig8Tor(t *testing.T) {
	f := corpus(t)
	rep := f.analyzer.TorAnalysis()
	if rep.Total == 0 {
		t.Fatal("no Tor traffic identified")
	}
	// Torhttp dominates (paper: 73%).
	if frac(rep.HTTP, rep.Total) < 0.5 {
		t.Errorf("Torhttp share = %v, paper: 0.73", frac(rep.HTTP, rep.Total))
	}
	// Small censored fraction (paper: 1.38%), all onion, almost all SG-44.
	cf := frac(rep.Censored, rep.Total)
	if cf == 0 || cf > 0.2 {
		t.Errorf("Tor censored fraction = %v", cf)
	}
	var others uint64
	for i, n := range rep.CensoredByProxy {
		if 42+i != 44 {
			others += n
		}
	}
	if frac(rep.CensoredByProxy[44-42], rep.Censored) < 0.95 {
		t.Errorf("SG-44 censored share = %v, paper: 0.999",
			frac(rep.CensoredByProxy[44-42], rep.Censored))
	}
	hourly := f.analyzer.TorHourly(aug(1, 0), aug(7, 0))
	if len(hourly) != 144 {
		t.Fatalf("hourly = %d", len(hourly))
	}
	var total uint64
	for _, h := range hourly {
		total += h.Total
	}
	if total == 0 {
		t.Error("hourly series empty")
	}
}

// --- Figure 9 ---

func TestFig9RFilter(t *testing.T) {
	f := corpus(t)
	pts := f.analyzer.RFilter(aug(1, 0), aug(7, 0))
	if pts == nil {
		t.Fatal("RFilter nil: no censored relays")
	}
	varies := false
	for _, p := range pts {
		if p.RFilter < 0 || p.RFilter > 1 {
			t.Fatalf("RFilter out of range: %v", p.RFilter)
		}
		if p.AllowedSeen && p.RFilter < 0.999 {
			varies = true
		}
	}
	if !varies {
		t.Error("RFilter never drops below 1: inconsistent blocking not visible")
	}
}

// --- Figure 10 ---

func TestFig10Anonymizers(t *testing.T) {
	f := corpus(t)
	rep := f.analyzer.Anonymizers()
	if rep.Hosts < 20 {
		t.Fatalf("anonymizer hosts = %d", rep.Hosts)
	}
	nf := float64(rep.NeverFiltered) / float64(rep.Hosts)
	// Paper: 92.7% never filtered.
	if nf < 0.75 || nf > 0.999 {
		t.Errorf("never-filtered share = %v, paper: 0.927", nf)
	}
	if rep.RequestsCDF.Len() == 0 {
		t.Error("requests CDF empty")
	}
	if rep.FilteredHosts > 0 && rep.RatioCDF.Len() != rep.FilteredHosts {
		t.Errorf("ratio CDF size %d != filtered hosts %d", rep.RatioCDF.Len(), rep.FilteredHosts)
	}
}

// --- §4 HTTPS ---

func TestHTTPSAnalysis(t *testing.T) {
	f := corpus(t)
	rep := f.analyzer.HTTPSAnalysis()
	if rep.Total == 0 {
		t.Fatal("no HTTPS traffic")
	}
	if rep.ShareOfTraffic > 0.02 {
		t.Errorf("HTTPS share = %v, should be small", rep.ShareOfTraffic)
	}
	// Censored HTTPS skews to IP-literal destinations (paper: 82%).
	if rep.Censored > 0 && rep.IPLiteralShare < 0.25 {
		t.Errorf("IP-literal share of censored HTTPS = %v", rep.IPLiteralShare)
	}
}

// --- §7.3 BitTorrent ---

func TestBitTorrentAnalysis(t *testing.T) {
	f := corpus(t)
	rep := f.analyzer.BitTorrent([]string{"proxy", "hotspotshield", "ultrareach", "israel", "ultrasurf"})
	if rep.Announces == 0 || rep.Users == 0 || rep.Contents == 0 {
		t.Fatalf("BT empty: %+v", rep)
	}
	// Paper: 99.97% of announces allowed.
	if rep.AllowedShare < 0.98 {
		t.Errorf("allowed share = %v", rep.AllowedShare)
	}
	// Title resolution near 77.4%.
	if rep.ResolvedShare < 0.7 || rep.ResolvedShare > 0.85 {
		t.Errorf("resolved share = %v, paper: 0.774", rep.ResolvedShare)
	}
	if rep.ToolTitles == 0 {
		t.Error("no anti-censorship tool titles found")
	}
}

// --- §7.4 Google cache ---

func TestGoogleCacheAnalysis(t *testing.T) {
	f := corpus(t)
	rep := f.analyzer.GoogleCache()
	if rep.Total == 0 {
		t.Fatal("no Google cache traffic")
	}
	// Nearly all cache requests get through (paper: 12 censored of 4860).
	if frac(rep.Censored, rep.Total) > 0.1 {
		t.Errorf("cache censored share = %v", frac(rep.Censored, rep.Total))
	}
}

// --- Pipeline equivalence: merged parallel analysis == serial ---

func TestPipelineMergeEquivalence(t *testing.T) {
	f := corpus(t)
	newAcc := func() *Analyzer {
		return NewAnalyzer(Options{
			Categories: f.gen.CategoryDB(),
			Consensus:  f.gen.Consensus(),
			TitleDB:    bittorrent.NewTitleDB(),
		})
	}
	merged, err := pipeline.Run(pipeline.NewSliceScanner(f.records), 4,
		newAcc,
		func(a *Analyzer, r *logfmt.Record) { a.Observe(r) },
		func(dst, src *Analyzer) { dst.Merge(src) },
	)
	if err != nil {
		t.Fatal(err)
	}
	want := f.analyzer.Dataset(DFull)
	got := merged.Dataset(DFull)
	if got != want {
		t.Errorf("merged Dfull differs:\n got %+v\nwant %+v", got, want)
	}
	wa, wc := f.analyzer.TopDomains(10)
	ga, gc := merged.TopDomains(10)
	for i := range wa {
		if ga[i] != wa[i] {
			t.Errorf("allowed row %d: %+v != %+v", i, ga[i], wa[i])
		}
	}
	for i := range wc {
		if gc[i] != wc[i] {
			t.Errorf("censored row %d: %+v != %+v", i, gc[i], wc[i])
		}
	}
	if merged.TorAnalysis() != f.analyzer.TorAnalysis() {
		t.Error("merged Tor report differs")
	}
}

func reqFor(host string) policy.Request {
	return policy.Request{Host: host, Path: "/", Scheme: "http", Method: "GET", Port: 80}
}
